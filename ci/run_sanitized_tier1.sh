#!/usr/bin/env bash
# Sanitizer gate for the tier-1 suite: builds the repo twice (TSan, ASan)
# into dedicated build trees and runs `ctest -L tier1` under each.
#
# Usage:
#   ci/run_sanitized_tier1.sh [thread|address|chaos|compression|all] [extra ctest args...]
#
# Defaults to `all`. Extra arguments are forwarded to ctest, e.g.
#   ci/run_sanitized_tier1.sh thread -R Churn --repeat until-fail:20
# runs the churn tests 20x under TSan — the loop that gates the
# WritersAndReadersRace / NoStaleReadsUnderReorgChurn flake fixes.
#
# `chaos` runs only the seeded fault-injection suite (ChaosTest: StoC
# kill/restart under failpoint-injected RPC errors, 10 seeds) under TSan
# — the gate for the failure-detection/repair work (ISSUE 9). `all` runs
# it after the two full tier-1 passes.
#
# `compression` runs only the block-compression / cache-tier suites
# (Compressor, stored-block corruption, two-queue admission, compressed
# tier, compressed-fragment repair) under ASan — decompression scratch
# buffers and the trailer parsing paths are where out-of-bounds reads
# would hide. `all` includes these tests via the full ASan tier-1 pass.
#
# Sanitized runs are several times slower than the plain suite; -j is
# capped below the machine width so the timing-sensitive churn tests do
# not time out purely from oversubscription.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
mode="${1:-all}"
shift || true

jobs=$(( $(nproc) / 2 ))
(( jobs >= 2 )) || jobs=2

run_one() {
  local sanitizer="$1"; shift
  local build_dir="${repo_root}/build-${sanitizer}san"
  echo "==> [${sanitizer}] configure + build (${build_dir})"
  cmake -S "${repo_root}" -B "${build_dir}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSANITIZE="${sanitizer}" >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)" >/dev/null
  echo "==> [${sanitizer}] ctest -L tier1 -j ${jobs} $*"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="detect_leaks=0" \
    ctest --test-dir "${build_dir}" -L tier1 -j "${jobs}" \
          --output-on-failure "$@"
}

# Chaos stage: the 10-seed kill/restart + failpoint suite, serialized
# (-j 1) because each seed churns a whole cluster and the suite's timing
# assumptions (death verdicts, probe intervals) degrade when oversubscribed.
run_chaos() {
  local build_dir="${repo_root}/build-threadsan"
  echo "==> [chaos] configure + build (${build_dir})"
  cmake -S "${repo_root}" -B "${build_dir}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSANITIZE=thread >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)" >/dev/null
  echo "==> [chaos] ctest -R ChaosTest (TSan, 10 seeds)"
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
    ctest --test-dir "${build_dir}" -R "ChaosTest" -j 1 \
          --output-on-failure "$@"
}

# Compression stage: ASan over the codec, trailer-corruption, cache-tier,
# and compressed-repair suites. Fast enough to run on every change to the
# read path; the full `address` pass subsumes it.
run_compression() {
  local build_dir="${repo_root}/build-addresssan"
  echo "==> [compression] configure + build (${build_dir})"
  cmake -S "${repo_root}" -B "${build_dir}" \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSANITIZE=address >/dev/null
  cmake --build "${build_dir}" -j "$(nproc)" >/dev/null
  echo "==> [compression] ctest compression/cache suites (ASan)"
  ASAN_OPTIONS="detect_leaks=0" \
    ctest --test-dir "${build_dir}" \
          -R "CompressorTest|FormatTest|SSTableReaderTest|TwoQueueLRUCacheTest|BlockCacheClusterTest|RepairTest.RebuiltFragmentsAreByteIdenticalCompressedImages" \
          -j "${jobs}" --output-on-failure "$@"
}

case "${mode}" in
  thread|address)
    run_one "${mode}" "$@"
    ;;
  chaos)
    run_chaos "$@"
    ;;
  compression)
    run_compression "$@"
    ;;
  all)
    run_one thread "$@"
    run_one address "$@"
    run_chaos "$@"
    ;;
  *)
    echo "usage: $0 [thread|address|chaos|compression|all] [extra ctest args...]" >&2
    exit 2
    ;;
esac
echo "==> sanitized tier-1: PASS (${mode})"
