#include "ltc/lookup_index.h"

namespace nova {
namespace ltc {
namespace {

size_t HashKey(const Slice& key) {
  // FNV-1a.
  size_t h = 1469598103934665603ull;
  for (size_t i = 0; i < key.size(); i++) {
    h ^= static_cast<uint8_t>(key[i]);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

LookupIndex::Shard& LookupIndex::shard(const Slice& key) const {
  return shards_[HashKey(key) % kShards];
}

void LookupIndex::Update(const Slice& key, uint64_t mid, uint64_t seq) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> l(s.mu);
  Slot& slot = s.map[key.ToString()];
  if (seq >= slot.seq) {
    slot.mid = mid;
    slot.seq = seq;
  }
}

bool LookupIndex::Lookup(const Slice& key, uint64_t* mid) const {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.map.find(key.ToString());
  if (it == s.map.end()) {
    return false;
  }
  *mid = it->second.mid;
  return true;
}

bool LookupIndex::LookupWithSeq(const Slice& key, uint64_t* mid,
                                uint64_t* seq) const {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.map.find(key.ToString());
  if (it == s.map.end()) {
    return false;
  }
  *mid = it->second.mid;
  *seq = it->second.seq;
  return true;
}

void LookupIndex::EraseIf(const Slice& key, uint64_t expected_mid) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.map.find(key.ToString());
  if (it != s.map.end() && it->second.mid == expected_mid) {
    s.map.erase(it);
  }
}

void LookupIndex::UpdateIfIn(const Slice& key,
                             const std::set<uint64_t>& old_mids,
                             uint64_t new_mid) {
  Shard& s = shard(key);
  std::lock_guard<std::mutex> l(s.mu);
  auto it = s.map.find(key.ToString());
  if (it != s.map.end() && old_mids.count(it->second.mid)) {
    it->second.mid = new_mid;
  }
}

size_t LookupIndex::size() const {
  size_t total = 0;
  for (int i = 0; i < kShards; i++) {
    std::lock_guard<std::mutex> l(shards_[i].mu);
    total += shards_[i].map.size();
  }
  return total;
}

size_t LookupIndex::ApproximateBytes() const {
  size_t entries = size();
  // key + mid + hashmap overhead, mirroring the paper's estimate of
  // (avg key size + 4B pointer + 8B file number) per unique key.
  return entries * 48;
}

void MidTable::SetMemtable(uint64_t mid, MemTableRef mem) {
  std::lock_guard<std::mutex> l(mu_);
  Entry& e = map_[mid];
  e.memtable = std::move(mem);
  e.is_file = false;
}

void MidTable::SetFile(uint64_t mid, uint64_t file_number) {
  std::lock_guard<std::mutex> l(mu_);
  Entry& e = map_[mid];
  e.memtable.reset();
  e.file_number = file_number;
  e.is_file = true;
}

bool MidTable::Get(uint64_t mid, Entry* entry) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = map_.find(mid);
  if (it == map_.end()) {
    return false;
  }
  *entry = it->second;
  return true;
}

void MidTable::Erase(uint64_t mid) {
  std::lock_guard<std::mutex> l(mu_);
  map_.erase(mid);
}

size_t MidTable::size() const {
  std::lock_guard<std::mutex> l(mu_);
  return map_.size();
}

}  // namespace ltc
}  // namespace nova
