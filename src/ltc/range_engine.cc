#include "ltc/range_engine.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "sim/cost_model.h"
#include "sstable/merging_iterator.h"
#include "util/coding.h"
#include "util/logging.h"

namespace nova {
namespace ltc {
namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

RangeEngine::RangeEngine(const RangeEngineOptions& options,
                         stoc::StocClient* client,
                         const std::vector<rdma::NodeId>& stocs,
                         sim::CpuThrottle* throttle, ThreadPool* flush_pool,
                         ThreadPool* compaction_pool, Cache* block_cache,
                         Cache* compressed_cache)
    : options_(options),
      client_(client),
      stocs_(stocs),
      throttle_(throttle == nullptr ? sim::CpuThrottle::Unlimited()
                                    : throttle),
      flush_pool_(flush_pool),
      compaction_pool_(compaction_pool) {
  DrangeOptions dopt = options_.drange;
  drange_ = std::make_unique<DrangeManager>(options_.lower, options_.upper,
                                            dopt);
  versions_ = std::make_unique<lsm::VersionSet>(
      options_.lsm, [this](const Slice& record) {
        return ManifestAppend(record);
      });
  if (block_cache == nullptr && options_.block_cache_bytes > 0) {
    owned_block_cache_.reset(NewShardedLRUCache(
        options_.block_cache_bytes, /*shard_bits=*/4,
        options_.cache_hot_fraction));
    block_cache = owned_block_cache_.get();
  }
  block_cache_ = block_cache;
  if (compressed_cache == nullptr && options_.compressed_cache_bytes > 0) {
    // The compressed tier is a plain LRU: everything in it is already
    // "cold storage" relative to the hot tier, so no two-queue split.
    owned_compressed_cache_.reset(NewShardedLRUCache(
        options_.compressed_cache_bytes, /*shard_bits=*/4,
        /*hot_fraction=*/1.0));
    compressed_cache = owned_compressed_cache_.get();
  }
  compressed_cache_ = compressed_cache;
  // 0 = unset: standalone engines default to the fast built-in codec;
  // -1 (or any negative) forces raw blocks.
  int codec = options_.compression_codec;
  if (codec == 0) {
    codec = kNovaLzCompression;
  }
  compressor_ = codec > 0 ? GetCompressor(static_cast<uint8_t>(codec))
                          : nullptr;
  table_cache_ = std::make_unique<lsm::TableCache>(
      client_, block_cache_, options_.range_id,
      /*cache_data_blocks=*/block_cache_ != nullptr,
      std::max(0, options_.readahead_blocks), &readahead_counters_,
      compressed_cache_);
  lsm::PlacementOptions popt;
  popt.stocs = stocs;
  popt.range_id = options_.range_id;
  popt.max_sstable_size = options_.max_sstable_size;
  placer_ = std::make_unique<lsm::SSTablePlacer>(client_, popt);
  executor_ = std::make_unique<lsm::CompactionExecutor>(
      table_cache_.get(), placer_.get(), throttle_);
  CompactionSchedulerOptions sched_opt;
  sched_opt.offload = options_.offload_compaction;
  sched_opt.max_jobs_per_stoc = options_.max_compaction_jobs > 0
                                    ? options_.max_compaction_jobs
                                    : 2;
  scheduler_ =
      std::make_unique<CompactionScheduler>(client_, stocs, sched_opt);
  logc_ = std::make_unique<logc::LogClient>(client_, options_.range_id,
                                            options_.log);
  range_index_ =
      std::make_unique<RangeIndex>(options_.lower, options_.upper);
  // Read-path knobs override the shared client's policy when set (the
  // usual single-tenant configuration gives every range the same values;
  // with differing values the last-constructed range wins).
  if (options_.read_replica_d != 0 || options_.read_hedging != 0) {
    stoc::ReadPolicy policy = client_->read_policy();
    if (options_.read_replica_d != 0) {
      policy.replica_d = std::max(1, options_.read_replica_d);
    }
    if (options_.read_hedging != 0) {
      policy.hedge = options_.read_hedging > 0;
    }
    client_->set_read_policy(policy);
  }
}

RangeEngine::~RangeEngine() { stopping_.store(true); }

MemTableRef RangeEngine::NewMemTableLocked(int drange_id) {
  // Idempotent per Drange: two writers that both stalled on a full δ
  // budget must not each install a replacement — the loser's table would
  // be orphaned (never flushed) and leak a memtable slot forever.
  auto existing = actives_.find(drange_id);
  if (existing != actives_.end() && existing->second.active != nullptr &&
      !existing->second.active->immutable()) {
    return existing->second.active;
  }
  uint64_t mid = next_mid_.fetch_add(1);
  auto mem = std::make_shared<MemTable>(icmp_, mid);
  mem->set_drange_id(drange_id);
  mem->set_generation(generation_hint_);
  all_memtables_[mid] = mem;
  actives_[drange_id] = DrangeMem{mem};
  mid_table_.SetMemtable(mid, mem);
  std::string lo = options_.lower;
  std::string hi = options_.upper;
  if (options_.enable_dranges) {
    auto bounds = drange_->DrangeBounds(drange_id);
    if (!bounds.first.empty() || !bounds.second.empty()) {
      lo = bounds.first;
      hi = bounds.second;
    }
  }
  range_index_->AddMemtable(mid, lo, hi);
  mem_spans_[mid] = {lo, hi};
  if (options_.log.mode != logc::LogMode::kNone) {
    logc_->CreateLogFile(mid, stocs_);
    mem->set_log_file_id(mid);
  }
  return mem;
}

void RangeEngine::Bootstrap() {
  std::unique_lock<std::mutex> lk(mu_);
  if (options_.enable_dranges) {
    for (int d = 0; d < drange_->num_dranges(); d++) {
      NewMemTableLocked(d);
    }
  } else {
    for (int d = 0; d < options_.num_active_memtables; d++) {
      NewMemTableLocked(d);
    }
  }
}

Status RangeEngine::Put(const Slice& key, const Slice& value) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  throttle_->Charge(costs.request_dispatch_us + costs.put_base_us +
                    (options_.enable_lookup_index
                         ? costs.lookup_index_update_us
                         : 0) +
                    (options_.enable_range_index
                         ? costs.range_index_update_us
                         : 0));
  SequenceNumber seq = last_sequence_.fetch_add(1) + 1;
  Status s = RouteAndAppend(seq, kTypeValue, key, value);
  if (s.ok()) {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.puts++;
  }
  return s;
}

Status RangeEngine::Delete(const Slice& key) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  throttle_->Charge(costs.request_dispatch_us + costs.put_base_us);
  SequenceNumber seq = last_sequence_.fetch_add(1) + 1;
  return RouteAndAppend(seq, kTypeDeletion, key, Slice());
}

Status RangeEngine::RouteAndAppend(SequenceNumber seq, ValueType type,
                                   const Slice& key, const Slice& value) {
  static thread_local Random tl_rng(
      reinterpret_cast<uint64_t>(&tl_rng) ^ 0x1234567);
  const sim::CostModel& costs = sim::DefaultCostModel();
  foreground_writes_.fetch_add(1, std::memory_order_acquire);
  struct WriteGuard {
    std::atomic<int>* n;
    ~WriteGuard() { n->fetch_sub(1, std::memory_order_release); }
  } write_guard{&foreground_writes_};
  for (int attempt = 0; attempt < 1000; attempt++) {
    if (stopping_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("range decommissioned");
    }
    MemTableRef mem;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Write stall: L0 too large (Challenge 1).
      if (l0_bytes_.load() >= options_.lsm.l0_stop_bytes) {
        auto t0 = Clock::now();
        {
          std::lock_guard<std::mutex> sl(stats_mu_);
          stats_.stall_events++;
        }
        stall_cv_.wait(lk, [this] {
          return l0_bytes_.load() < options_.lsm.l0_stop_bytes ||
                 stopping_.load();
        });
        uint64_t us = ElapsedUs(t0);
        std::lock_guard<std::mutex> sl(stats_mu_);
        stats_.stall_us += us;
      }
      if (stopping_.load()) {
        return Status::Unavailable("engine stopping");
      }
      int did;
      if (options_.enable_dranges) {
        did = drange_->RouteWrite(key);
        if (did < 0) {
          return Status::InvalidArgument("key outside range");
        }
      } else {
        did = static_cast<int>(
            tl_rng.Uniform(options_.num_active_memtables));
      }
      auto it = actives_.find(did);
      if (it == actives_.end() || it->second.active == nullptr) {
        // Write stall: all δ memtables in use.
        if (static_cast<int>(all_memtables_.size()) >=
            options_.max_memtables) {
          auto t0 = Clock::now();
          {
            std::lock_guard<std::mutex> sl(stats_mu_);
            stats_.stall_events++;
          }
          stall_cv_.wait(lk, [this] {
            return static_cast<int>(all_memtables_.size()) <
                       options_.max_memtables ||
                   stopping_.load();
          });
          uint64_t us = ElapsedUs(t0);
          std::lock_guard<std::mutex> sl(stats_mu_);
          stats_.stall_us += us;
          if (stopping_.load()) {
            return Status::Unavailable("engine stopping");
          }
        }
        mem = NewMemTableLocked(did);
      } else {
        mem = it->second.active;
      }
      if (mem->ApproximateMemoryUsage() >= options_.memtable_size) {
        RotateLocked(did, &lk);
        auto it2 = actives_.find(did);
        if (it2 == actives_.end() || it2->second.active == nullptr) {
          continue;  // stalled and state changed; retry
        }
        mem = it2->second.active;
      }
      if (options_.enable_range_index) {
        // If a reorg moved this Drange's bounds between routing and
        // rotation, the key may fall outside the memtable's range-index
        // registration; expand it so scans keep seeing every key.
        auto span_it = mem_spans_.find(mem->id());
        if (span_it != mem_spans_.end()) {
          auto& span = span_it->second;
          bool below =
              !span.first.empty() && key.compare(span.first) < 0;
          bool above =
              !span.second.empty() && key.compare(span.second) >= 0;
          if (below || above) {
            std::string upper_key = key.ToString() + std::string(1, '\0');
            range_index_->AddMemtable(mem->id(), key.ToString(), upper_key);
            if (below) span.first = key.ToString();
            if (above) span.second = upper_key;
          }
        }
      }
    }

    // Log record first (durability ordering, Section 2.1/5), then the
    // memtable append. Both happen outside the lifecycle lock.
    if (options_.log.mode != logc::LogMode::kNone) {
      throttle_->Charge(costs.log_append_us * options_.log.num_replicas);
      logc::LogRecord rec;
      rec.memtable_id = mem->id();
      rec.sequence = seq;
      rec.type = type;
      rec.key = key.ToString();
      rec.value = value.ToString();
      Status ls = logc_->Append(mem->id(), rec);
      if (!ls.ok()) {
        // Benign when the memtable rotated under us: AddIfActive below
        // fails too and the retry re-logs to the new active.
        NOVA_DEBUG("log append raced rotation: %s", ls.ToString().c_str());
      }
    }
    if (mem->AddIfActive(seq, type, key, value)) {
      if (options_.enable_lookup_index) {
        lookup_index_.Update(key, mem->id(), seq);
      }
      return Status::OK();
    }
    // The memtable became immutable under us; retry with the new active.
  }
  return Status::Busy("put retry limit exceeded");
}

void RangeEngine::RotateLocked(int drange_id,
                               std::unique_lock<std::mutex>* lk) {
  auto it = actives_.find(drange_id);
  if (it == actives_.end() || it->second.active == nullptr) {
    return;
  }
  MemTableRef old = it->second.active;
  if (old->ApproximateMemoryUsage() < options_.memtable_size) {
    return;  // somebody else already rotated
  }
  old->MarkImmutable();
  flush_queue_.push_back(old);
  it->second.active = nullptr;
  // Stall if we are at the memtable budget δ.
  if (static_cast<int>(all_memtables_.size()) >= options_.max_memtables) {
    auto t0 = Clock::now();
    {
      std::lock_guard<std::mutex> sl(stats_mu_);
      stats_.stall_events++;
    }
    stall_cv_.wait(*lk, [this] {
      return static_cast<int>(all_memtables_.size()) <
                 options_.max_memtables ||
             stopping_.load();
    });
    uint64_t us = ElapsedUs(t0);
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.stall_us += us;
  }
  if (stopping_.load()) {
    return;
  }
  NewMemTableLocked(drange_id);
}

Status RangeEngine::Get(const Slice& key, std::string* value) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  throttle_->Charge(costs.request_dispatch_us + costs.get_base_us);
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.gets++;
  }
  SequenceNumber snapshot = last_sequence_.load();
  LookupKey lkey(key, snapshot);
  Status result;

  if (options_.enable_lookup_index) {
    // A hit may go momentarily stale while a memtable merge retires its
    // mid (the index is rewritten before the old mid is erased), so a
    // stale hit retries; if it stays inconsistent, fall through to the
    // exhaustive memtable sweep below which is always correct.
    bool inconsistent_hit = false;
    uint64_t claimed_seq = 0;
    for (int retry = 0; retry < 3; retry++) {
      uint64_t mid;
      if (!lookup_index_.LookupWithSeq(key, &mid, &claimed_seq)) {
        inconsistent_hit = false;
        break;
      }
      MidTable::Entry entry;
      if (!mid_table_.Get(mid, &entry)) {
        inconsistent_hit = true;
        continue;  // merge in flight: the index will be re-pointed
      }
      if (!entry.is_file) {
        throttle_->Charge(costs.memtable_probe_us);
        if (entry.memtable->Get(lkey, value, &result)) {
          std::lock_guard<std::mutex> l(stats_mu_);
          stats_.lookup_index_hits++;
          return result;
        }
        inconsistent_hit = true;  // slot should have held this key
        continue;
      }
      lsm::FileMetaRef meta = FindL0File(entry.file_number);
      if (meta != nullptr) {
        lsm::TableCache::Handle handle;
        Status s = table_cache_->GetReader(meta, &handle);
        if (s.ok()) {
          throttle_->Charge(costs.l0_sstable_probe_us);
          if (handle.reader->Get(lkey, value, &result)) {
            std::lock_guard<std::mutex> l(stats_mu_);
            stats_.lookup_index_hits++;
            return result;
          }
        }
        inconsistent_hit = false;
        break;
      }
      // The L0 file was compacted into L1+: self-clean the index.
      lookup_index_.EraseIf(key, mid);
      mid_table_.Erase(mid);
      inconsistent_hit = false;
      break;
    }
    SequenceNumber best_seq = 0;
    bool found = false;
    std::string best_value;
    Status best_status;
    if (inconsistent_hit) {
      // Exhaustive-but-safe path: probe every memtable; the L0 probe
      // below then takes the best across memtables and L0 (an old
      // memtable can coexist with a newer already-flushed L0 version).
      std::vector<MemTableRef> mems;
      {
        std::lock_guard<std::mutex> lk(mu_);
        mems.reserve(all_memtables_.size());
        for (auto& [m, mem] : all_memtables_) {
          mems.push_back(mem);
        }
      }
      for (auto& mem : mems) {
        throttle_->Charge(costs.memtable_probe_us);
        std::string v;
        Status s;
        SequenceNumber seq;
        if (mem->Get(lkey, &v, &s, &seq) && (!found || seq > best_seq)) {
          found = true;
          best_seq = seq;
          best_value = std::move(v);
          best_status = s;
        }
      }
    }
    {
      std::lock_guard<std::mutex> l(stats_mu_);
      stats_.lookup_index_misses++;
    }
    // Index miss: during normal operation any key in a memtable or L0
    // SSTable is indexed, but after recovery/migration L0-resident keys
    // may not be (the index is rebuilt from log records only). Probe
    // overlapping L0 files bloom-first — cheap, and preserves safety.
    {
      lsm::VersionRef version = versions_->current();
      for (const auto& f : version->files(0)) {
        if (key.compare(f->smallest.user_key()) < 0 ||
            key.compare(f->largest.user_key()) > 0) {
          continue;
        }
        lsm::TableCache::Handle handle;
        if (!table_cache_->GetReader(f, &handle).ok()) {
          continue;
        }
        if (!handle.reader->KeyMayMatch(key)) {
          continue;
        }
        throttle_->Charge(costs.l0_sstable_probe_us);
        std::string v;
        Status s;
        SequenceNumber seq;
        if (handle.reader->Get(lkey, &v, &s, &seq)) {
          if (!found || seq > best_seq) {
            found = true;
            best_seq = seq;
            best_value = std::move(v);
            best_status = s;
          }
        }
      }
      if (found && (!inconsistent_hit || best_seq >= claimed_seq)) {
        if (best_status.ok()) {
          *value = std::move(best_value);
        }
        return best_status;
      }
    }
    // Either nothing found yet, or the index claimed a newer version than
    // anything in the memtables/L0 — it was compacted into the levels.
    // Consult the levels and return the newest of both.
    {
      std::string lv;
      SequenceNumber lseq = 0;
      Status ls = SearchLevels(lkey, &lv, &lseq);
      if (!ls.IsNotFound() && (!found || lseq > best_seq)) {
        if (ls.ok()) {
          *value = std::move(lv);
        }
        return ls;
      }
    }
    if (found) {
      if (best_status.ok()) {
        *value = std::move(best_value);
      }
      return best_status;
    }
    return Status::NotFound("key not found");
  }

  // Ablation path (Challenge 2): no lookup index — probe every memtable
  // and every L0 SSTable, keeping the entry with the highest sequence.
  std::vector<MemTableRef> mems;
  {
    std::lock_guard<std::mutex> lk(mu_);
    mems.reserve(all_memtables_.size());
    for (auto& [mid, mem] : all_memtables_) {
      mems.push_back(mem);
    }
  }
  SequenceNumber best_seq = 0;
  bool found = false;
  std::string best_value;
  Status best_status;
  for (auto& mem : mems) {
    throttle_->Charge(costs.memtable_probe_us);
    std::string v;
    Status s;
    SequenceNumber seq;
    if (mem->Get(lkey, &v, &s, &seq)) {
      if (!found || seq > best_seq) {
        found = true;
        best_seq = seq;
        best_value = std::move(v);
        best_status = s;
      }
    }
  }
  lsm::VersionRef version = versions_->current();
  for (const auto& f : version->files(0)) {
    if (key.compare(f->smallest.user_key()) < 0 ||
        key.compare(f->largest.user_key()) > 0) {
      continue;
    }
    lsm::TableCache::Handle handle;
    if (!table_cache_->GetReader(f, &handle).ok()) {
      continue;
    }
    if (!handle.reader->KeyMayMatch(key)) {
      continue;  // bloom rejected: skip the index seek and probe charge
    }
    throttle_->Charge(costs.l0_sstable_probe_us);
    std::string v;
    Status s;
    SequenceNumber seq;
    if (handle.reader->Get(lkey, &v, &s, &seq)) {
      if (!found || seq > best_seq) {
        found = true;
        best_seq = seq;
        best_value = std::move(v);
        best_status = s;
      }
    }
  }
  if (found) {
    if (best_status.ok()) {
      *value = std::move(best_value);
    }
    return best_status;
  }
  return SearchLevels(lkey, value);
}

Status RangeEngine::SearchLevels(const LookupKey& lkey, std::string* value,
                                 SequenceNumber* seq_out) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  lsm::VersionRef version = versions_->current();
  for (int level = 1; level < version->num_levels(); level++) {
    // Levels are normally sorted and disjoint, but while compactions are
    // in flight a level can transiently hold overlapping files, so probe
    // every overlapping file and keep the newest version.
    auto files = version->OverlappingFiles(level, lkey.user_key(),
                                           lkey.user_key());
    SequenceNumber best_seq = 0;
    bool found = false;
    std::string best_value;
    Status best_status;
    for (const auto& f : files) {
      lsm::TableCache::Handle handle;
      Status s = table_cache_->GetReader(f, &handle);
      if (!s.ok()) {
        if (s.IsUnavailable()) {
          degraded_gets_.fetch_add(1);
        }
        continue;
      }
      if (!handle.reader->KeyMayMatch(lkey.user_key())) {
        continue;  // bloom filter skip (Section 4.1.1)
      }
      throttle_->Charge(costs.high_level_probe_us);
      std::string v;
      Status result;
      SequenceNumber seq;
      if (handle.reader->Get(lkey, &v, &result, &seq) &&
          (!found || seq > best_seq)) {
        found = true;
        best_seq = seq;
        best_value = std::move(v);
        best_status = result;
      }
    }
    if (found) {
      if (seq_out != nullptr) {
        *seq_out = best_seq;
      }
      if (best_status.ok()) {
        *value = std::move(best_value);
      }
      return best_status;
    }
  }
  return Status::NotFound("key not found");
}

lsm::FileMetaRef RangeEngine::FindL0File(uint64_t number) {
  return FindL0FileIn(versions_->current(), number);
}

lsm::FileMetaRef RangeEngine::FindL0FileIn(const lsm::VersionRef& version,
                                           uint64_t number) {
  for (const auto& f : version->files(0)) {
    if (f->number == number) {
      return f;
    }
  }
  return nullptr;
}

Status RangeEngine::Scan(
    const Slice& start_key, int num_records,
    std::vector<std::pair<std::string, std::string>>* out) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  throttle_->Charge(costs.request_dispatch_us + costs.scan_seek_us);
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.scans++;
  }
  SequenceNumber snapshot = last_sequence_.load();

  std::string pos = start_key.ToString();
  std::string last_emitted;
  bool has_last = false;

  while (static_cast<int>(out->size()) < num_records) {
    // Determine the table set for this stretch of keyspace.
    std::vector<uint64_t> l0_numbers;
    std::string upper;
    std::vector<Iterator*> children;
    std::vector<lsm::TableCache::Handle> pins;
    std::vector<MemTableRef> mem_pins;
    if (options_.enable_range_index) {
      RangeIndex::PartitionView view = range_index_->Collect(pos);
      if (!view.valid) {
        break;
      }
      l0_numbers = std::move(view.l0_files);
      upper = view.upper;
      // Pin the collected memtables. A miss means a flush committed
      // after the collect, so the memtable's keys now live in an L0
      // file the collect did not see — merging this view would silently
      // drop them. Throw the stretch away and re-collect.
      bool stale = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        for (uint64_t mid : view.memtables) {
          auto it = all_memtables_.find(mid);
          if (it == all_memtables_.end()) {
            stale = true;
            break;
          }
          mem_pins.push_back(it->second);
          children.push_back(it->second->NewIterator());
        }
      }
      if (stale) {
        for (Iterator* c : children) {
          delete c;
        }
        continue;
      }
    } else {
      // Ablation: merge everything (Challenge 2's slow scan). Pin under
      // the same lock as the collect so no flush can retire a memtable
      // in between.
      std::lock_guard<std::mutex> lk(mu_);
      for (auto& [mid, mem] : all_memtables_) {
        mem_pins.push_back(mem);
        children.push_back(mem->NewIterator());
      }
      upper = options_.upper;
    }

    // One consistent LSM view for the whole stretch, captured after the
    // memtables are pinned: an L0 number the collect saw that compaction
    // has since retired is covered by this version's deeper levels, and
    // a flush that committed after pinning merely duplicates a pinned
    // memtable (the emit loop dedupes by user key). Mixing the collect's
    // L0 list with a different version's L1 files is how scans used to
    // lose keys mid-compaction.
    lsm::VersionRef version = versions_->current();
    if (!options_.enable_range_index) {
      for (const auto& f : version->files(0)) {
        l0_numbers.push_back(f->number);
      }
    }
    for (uint64_t number : l0_numbers) {
      lsm::FileMetaRef f = FindL0FileIn(version, number);
      if (f == nullptr) {
        continue;  // compacted away; this version's L1+ covers it
      }
      lsm::TableCache::Handle handle;
      if (table_cache_->GetReader(f, &handle).ok()) {
        pins.push_back(handle);
        children.push_back(handle.reader->NewIterator());
      }
    }
    for (int level = 1; level < version->num_levels(); level++) {
      auto files = version->OverlappingFiles(level, pos, upper);
      for (const auto& f : files) {
        lsm::TableCache::Handle handle;
        if (table_cache_->GetReader(f, &handle).ok()) {
          pins.push_back(handle);
          children.push_back(handle.reader->NewIterator());
        }
      }
    }
    throttle_->Charge(costs.scan_per_table_us * children.size());

    std::unique_ptr<Iterator> merged(
        NewMergingIterator(&icmp_, std::move(children)));
    LookupKey lkey(pos, snapshot);
    merged->Seek(lkey.internal_key());
    bool reached_upper = false;
    while (merged->Valid() && static_cast<int>(out->size()) < num_records) {
      throttle_->Charge(costs.scan_per_record_us);
      ParsedInternalKey parsed;
      if (!ParseInternalKey(merged->key(), &parsed)) {
        return Status::Corruption("bad key during scan");
      }
      if (!upper.empty() && parsed.user_key.compare(upper) >= 0) {
        reached_upper = true;
        break;
      }
      if (parsed.sequence > snapshot) {
        merged->Next();
        continue;
      }
      if (has_last && parsed.user_key.compare(last_emitted) == 0) {
        merged->Next();  // an older version of an already-handled key
        continue;
      }
      last_emitted.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      if (parsed.type != kTypeDeletion) {
        out->emplace_back(last_emitted, merged->value().ToString());
      }
      merged->Next();
    }
    (void)reached_upper;
    if (upper.empty()) {
      break;  // end of the keyspace
    }
    if (!options_.enable_range_index) {
      // The ablation merged the whole table set in one pass; stepping to
      // `upper` would re-collect the same set and spin forever whenever
      // the range holds fewer than num_records keys past `pos`.
      break;
    }
    if (upper <= pos) {
      break;  // partition failed to advance; never loop in place
    }
    pos = upper;  // continue in the next partition (Section 4.1.2)
    throttle_->Charge(costs.scan_seek_us);
  }
  return Status::OK();
}

void RangeEngine::MaintenanceTick() {
  // 1. Drange reorganization (Section 4.1).
  if (options_.enable_dranges && drange_->NeedsReorg()) {
    std::vector<int> changed = drange_->MaybeReorg();
    if (!changed.empty()) {
      HandleReorg(changed);
    }
  }
  // 2. Dispatch queued flushes. First break the parked-small-immutable
  // cycle: Drange merge outputs wait in small_immutables_ for the *next*
  // flush of their Drange to gather them (FlushTask), but when they and
  // the actives together exhaust the δ budget, puts and rotations stall
  // and that next flush never materializes. With the budget at the cap
  // and nothing queued or in flight, force-flush the parked tables —
  // at the cap merge_has_room is false, so FlushTask writes them out as
  // SSTables and frees budget.
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (flush_queue_.empty() && flushes_inflight_ == 0 &&
        static_cast<int>(all_memtables_.size()) >= options_.max_memtables) {
      for (auto& [did, mids] : small_immutables_) {
        for (uint64_t mid : mids) {
          auto it = all_memtables_.find(mid);
          if (it != all_memtables_.end()) {
            flush_queue_.push_back(it->second);
          }
        }
        mids.clear();
      }
    }
    while (!flush_queue_.empty()) {
      MemTableRef mem = flush_queue_.front();
      flush_queue_.erase(flush_queue_.begin());
      flushes_inflight_++;
      flush_pool_->Submit([this, mem] { FlushTask(mem); });
    }
  }
  // 3. Compactions.
  ScheduleCompactions();
}

void RangeEngine::HandleReorg(const std::vector<int>& changed) {
  // Rotate every active memtable: reorganized Dranges get fresh memtables
  // with a bumped generation id (Section 4.1's second technique).
  std::lock_guard<std::mutex> lk(mu_);
  uint32_t next_gen = 0;
  for (auto& [did, dm] : actives_) {
    if (dm.active != nullptr) {
      next_gen = std::max(next_gen, dm.active->generation() + 1);
    }
  }
  for (auto& [did, dm] : actives_) {
    if (dm.active != nullptr) {
      dm.active->MarkImmutable();
      flush_queue_.push_back(dm.active);
    }
  }
  actives_.clear();
  // New actives are created lazily on the next put with the new Drange
  // ids; record the generation they must carry.
  generation_hint_ = next_gen;
  // Refine the range index at the new boundaries; splits are idempotent.
  if (options_.enable_range_index) {
    for (const std::string& b : drange_->Boundaries()) {
      range_index_->SplitAt(b);
    }
  }
}

void RangeEngine::FlushTask(MemTableRef mem) {
  const sim::CostModel& costs = sim::DefaultCostModel();
  throttle_->Charge(costs.flush_per_record_us * mem->num_entries());
  uint64_t unique = mem->CountUniqueKeys();
  int did = mem->drange_id();

  // The merge path keeps the table in memory, so it must leave slack in
  // the δ budget: with θ Dranges each holding an active plus a merged
  // small immutable, merging at the cap would deadlock rotation.
  bool merge_has_room;
  {
    std::lock_guard<std::mutex> lk(mu_);
    merge_has_room = static_cast<int>(all_memtables_.size()) + 1 <
                     options_.max_memtables;
  }
  Status s;
  if (options_.enable_memtable_merge && unique > 0 && merge_has_room &&
      unique < static_cast<uint64_t>(options_.unique_key_threshold)) {
    // Small memtable: merge with the Drange's other small immutables
    // instead of writing an SSTable (Section 4.2).
    std::vector<MemTableRef> mems = {mem};
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (uint64_t mid : small_immutables_[did]) {
        auto it = all_memtables_.find(mid);
        if (it != all_memtables_.end()) {
          mems.push_back(it->second);
        }
      }
      small_immutables_[did].clear();
    }
    s = MergeSmallMemtables(mems, did);
  } else if (unique == 0) {
    // Empty memtable: just drop it.
    std::lock_guard<std::mutex> lk(mu_);
    all_memtables_.erase(mem->id());
    mem_spans_.erase(mem->id());
    mid_table_.Erase(mem->id());
    range_index_->RemoveMemtable(mem->id());
    logc_->DeleteLogFile(mem->id());
  } else {
    s = FlushToSSTable({mem}, did, mem->generation());
  }
  if (!s.ok()) {
    NOVA_WARN("flush failed: %s", s.ToString().c_str());
    // Requeue so data is not lost.
    std::lock_guard<std::mutex> lk(mu_);
    flush_queue_.push_back(mem);
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    flushes_inflight_--;
  }
  stall_cv_.notify_all();
}

Status RangeEngine::MergeSmallMemtables(const std::vector<MemTableRef>& mems,
                                        int drange_id) {
  // Merge-iterate the inputs, keep only the newest version per key.
  std::vector<Iterator*> children;
  for (const auto& m : mems) {
    children.push_back(m->NewIterator());
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp_, std::move(children)));

  uint64_t new_mid = next_mid_.fetch_add(1);
  auto new_mem = std::make_shared<MemTable>(icmp_, new_mid);
  new_mem->set_drange_id(drange_id);

  std::set<uint64_t> old_mids;
  for (const auto& m : mems) {
    old_mids.insert(m->id());
  }

  // New log file first so the merged table is as durable as its sources.
  if (options_.log.mode != logc::LogMode::kNone) {
    Status ls = logc_->CreateLogFile(new_mid, stocs_);
    if (!ls.ok()) {
      return ls;
    }
  }

  std::string last_key;
  bool has_last = false;
  uint64_t unique = 0;
  merged->SeekToFirst();
  while (merged->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged->key(), &parsed)) {
      return Status::Corruption("bad key during memtable merge");
    }
    if (!has_last || parsed.user_key.compare(last_key) != 0) {
      last_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      unique++;
      new_mem->Add(parsed.sequence, parsed.type, parsed.user_key,
                   merged->value());
      if (options_.log.mode != logc::LogMode::kNone) {
        logc::LogRecord rec;
        rec.memtable_id = new_mid;
        rec.sequence = parsed.sequence;
        rec.type = parsed.type;
        rec.key = last_key;
        rec.value = merged->value().ToString();
        logc_->Append(new_mid, rec);
      }
    }
    merged->Next();
  }
  new_mem->MarkImmutable();

  if (unique >= static_cast<uint64_t>(options_.unique_key_threshold) ||
      new_mem->ApproximateMemoryUsage() >= options_.memtable_size) {
    // Merged result grew past the threshold: flush it for real. Old
    // memtables are released below either way.
    Status fs = FlushToSSTable(mems, drange_id, mems[0]->generation());
    logc_->DeleteLogFile(new_mid);
    return fs;
  }

  // Install the merged memtable and re-index its keys. Each key is
  // re-pointed with the merged entry's *own* sequence number through the
  // seq-guarded Update: a newer version living in an active memtable (or
  // indexed by a racing merge) always keeps the slot, so the index
  // invariant — the slot's table contains key@slot.seq — stays intact
  // under concurrent merges.
  mid_table_.SetMemtable(new_mid, new_mem);
  (void)old_mids;
  {
    std::unique_ptr<Iterator> it(new_mem->NewIterator());
    it->SeekToFirst();
    while (it->Valid()) {
      ParsedInternalKey parsed;
      if (ParseInternalKey(it->key(), &parsed)) {
        lookup_index_.Update(parsed.user_key, new_mid, parsed.sequence);
      }
      it->Next();
    }
  }
  std::string lo = new_mem->SmallestUserKey();
  std::string hi_inclusive = new_mem->LargestUserKey();
  range_index_->AddMemtable(new_mid, lo, hi_inclusive + std::string(1, '\0'));
  {
    std::lock_guard<std::mutex> lk(mu_);
    all_memtables_[new_mid] = new_mem;
    // Append (not assign): a concurrent merge on the same Drange may have
    // installed its own table between our gather and now.
    small_immutables_[drange_id].push_back(new_mid);
    for (const auto& m : mems) {
      all_memtables_.erase(m->id());
      mem_spans_.erase(m->id());
    }
  }
  for (const auto& m : mems) {
    mid_table_.Erase(m->id());
    range_index_->RemoveMemtable(m->id());
    logc_->DeleteLogFile(m->id());
  }
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.memtable_merges++;
  }
  stall_cv_.notify_all();
  return Status::OK();
}

Status RangeEngine::FlushToSSTable(const std::vector<MemTableRef>& mems,
                                   int drange_id, uint32_t generation) {
  std::vector<Iterator*> children;
  for (const auto& m : mems) {
    children.push_back(m->NewIterator());
  }
  std::unique_ptr<Iterator> merged(
      NewMergingIterator(&icmp_, std::move(children)));

  SSTableBuilderOptions bopt;
  bopt.compressor = compressor_;
  SSTableBuilder builder(bopt);
  std::string last_key;
  bool has_last = false;
  merged->SeekToFirst();
  while (merged->Valid()) {
    ParsedInternalKey parsed;
    if (!ParseInternalKey(merged->key(), &parsed)) {
      return Status::Corruption("bad key during flush");
    }
    // Retain only the newest version of each key (Section 4.2).
    if (!has_last || parsed.user_key.compare(last_key) != 0) {
      last_key.assign(parsed.user_key.data(), parsed.user_key.size());
      has_last = true;
      builder.Add(merged->key(), merged->value());
    }
    merged->Next();
  }
  if (builder.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& m : mems) {
      all_memtables_.erase(m->id());
      mid_table_.Erase(m->id());
      range_index_->RemoveMemtable(m->id());
      logc_->DeleteLogFile(m->id());
    }
    return Status::OK();
  }

  uint64_t number = versions_->NewFileNumber();
  lsm::PlacementOptions popt = placer_->options();
  auto built = builder.Finish(number, popt.rho);
  uint64_t data_size = built.data.size();
  uint64_t raw_size = built.raw_bytes;
  lsm::FileMetaData meta;
  Status s = placer_->Write(std::move(built), drange_id, generation, &meta);
  if (!s.ok()) {
    return s;
  }

  lsm::VersionEdit edit;
  edit.new_files.emplace_back(0, meta);
  if (options_.enable_dranges) {
    edit.drange_state = drange_->Serialize();
  }
  versions_->SetLastSequence(last_sequence_.load());
  s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    return s;
  }
  l0_bytes_.store(versions_->current()->LevelBytes(0));

  // Atomically redirect the mids to the new L0 file, publish it in the
  // range index, then retire the memtables.
  for (const auto& m : mems) {
    mid_table_.SetFile(m->id(), number);
  }
  {
    std::lock_guard<std::mutex> cl(compaction_mu_);
    for (const auto& m : mems) {
      file_to_mids_[number].push_back(m->id());
    }
  }
  range_index_->AddL0File(number, meta.smallest.user_key().ToString(),
                          meta.largest.user_key().ToString());
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto& m : mems) {
      all_memtables_.erase(m->id());
      mem_spans_.erase(m->id());
      range_index_->RemoveMemtable(m->id());
    }
  }
  for (const auto& m : mems) {
    logc_->DeleteLogFile(m->id());
  }
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.flushes++;
    stats_.bytes_flushed += data_size;
    stats_.sstable_stored_bytes += data_size;
    stats_.sstable_raw_bytes += raw_size;
  }
  stall_cv_.notify_all();
  return Status::OK();
}

void RangeEngine::ScheduleCompactions() {
  std::lock_guard<std::mutex> cl(compaction_mu_);
  if (compactions_inflight_ >= options_.max_parallel_compactions) {
    return;
  }
  lsm::VersionRef v = versions_->current();
  std::vector<lsm::CompactionJob> jobs = lsm::CompactionPicker::Pick(
      *versions_, v,
      options_.max_parallel_compactions - compactions_inflight_);
  for (auto& job : jobs) {
    bool busy = false;
    for (const auto& f : job.inputs) {
      if (compacting_files_.count(f->number)) busy = true;
    }
    for (const auto& f : job.inputs_next) {
      if (compacting_files_.count(f->number)) busy = true;
    }
    // Defer jobs whose key range overlaps an in-flight compaction: two
    // concurrent jobs over overlapping ranges would emit overlapping
    // SSTables into the same sorted level.
    std::string job_lo, job_hi;
    auto extend_hull = [&](const std::vector<lsm::FileMetaRef>& files) {
      for (const auto& f : files) {
        std::string lo = f->smallest.user_key().ToString();
        std::string hi = f->largest.user_key().ToString();
        if (job_lo.empty() || lo < job_lo) job_lo = lo;
        if (job_hi.empty() || hi > job_hi) job_hi = hi;
      }
    };
    extend_hull(job.inputs);
    extend_hull(job.inputs_next);
    for (const auto& [lo, hi] : inflight_hulls_) {
      if (job_lo <= hi && lo <= job_hi) busy = true;
    }
    if (busy) {
      continue;
    }
    if (job.input_level == 0 && options_.enable_dranges) {
      job.boundaries = drange_->Boundaries();
    }
    job.max_output_bytes = options_.max_sstable_size;
    // The gather pipeline depth travels with the job so an offloaded run
    // honors this LTC's knob (-1 = forced serial).
    job.readahead_blocks = std::max(0, options_.compaction_readahead_blocks);
    // The output codec travels with the job too: an offloaded StoC must
    // write blocks this LTC can read back.
    job.compression_codec = compressor_ != nullptr ? compressor_->id() : 0;
    uint64_t estimate =
        job.total_input_bytes() / std::max<uint64_t>(1, job.max_output_bytes) +
        job.boundaries.size() + 4;
    job.first_output_number = versions_->ReserveFileNumbers(estimate);
    for (const auto& f : job.inputs) {
      compacting_files_.insert(f->number);
    }
    for (const auto& f : job.inputs_next) {
      compacting_files_.insert(f->number);
    }
    compactions_inflight_++;
    inflight_hulls_.emplace_back(job_lo, job_hi);
    Clock::time_point queued_at = Clock::now();
    compaction_pool_->Submit([this, job = std::move(job), job_lo, job_hi,
                              queued_at] {
      RunCompaction(job, ElapsedUs(queued_at));
      std::lock_guard<std::mutex> cl(compaction_mu_);
      for (size_t i = 0; i < inflight_hulls_.size(); i++) {
        if (inflight_hulls_[i].first == job_lo &&
            inflight_hulls_[i].second == job_hi) {
          inflight_hulls_.erase(inflight_hulls_.begin() + i);
          break;
        }
      }
    });
  }
}

void RangeEngine::RunCompaction(lsm::CompactionJob job, uint64_t queue_us) {
  lsm::CompactionResult result;
  bool offloaded = false;
  // The scheduler offloads to the least-loaded StoC (Section 4.3
  // "Offloading") and retries locally on failure, so the job completes
  // exactly once wherever it ran.
  Status s = scheduler_->Run(job, executor_.get(), &result, &offloaded);
  if (s.ok()) {
    ApplyCompactionResult(job, result);
  } else {
    NOVA_WARN("compaction failed: %s", s.ToString().c_str());
  }
  {
    std::lock_guard<std::mutex> sl(stats_mu_);
    stats_.compaction_queue_us += queue_us;
    stats_.compaction_gather_waves += result.gather_waves;
    stats_.compaction_bytes_read += result.bytes_read;
    stats_.compaction_bytes_written += result.bytes_written;
    stats_.sstable_stored_bytes += result.bytes_written;
    stats_.sstable_raw_bytes += result.raw_bytes_written;
  }
  {
    std::lock_guard<std::mutex> cl(compaction_mu_);
    for (const auto& f : job.inputs) {
      compacting_files_.erase(f->number);
    }
    for (const auto& f : job.inputs_next) {
      compacting_files_.erase(f->number);
    }
    compactions_inflight_--;
  }
  // l0_bytes_ was lowered outside mu_ (ApplyCompactionResult), so without
  // this empty critical section the notify can land in the window between
  // a stalled writer's predicate check and its block — and if this was
  // the last scheduled compaction nothing ever notifies again (all the
  // writers are stalled, so the flush queue stays empty). Taking mu_
  // orders the store before either the writer's re-check or its block.
  { std::lock_guard<std::mutex> lk(mu_); }
  stall_cv_.notify_all();
}

void RangeEngine::ApplyCompactionResult(const lsm::CompactionJob& job,
                                        const lsm::CompactionResult& result) {
  lsm::VersionEdit edit;
  for (const auto& f : job.inputs) {
    edit.deleted_files.emplace_back(job.input_level, f->number);
  }
  for (const auto& f : job.inputs_next) {
    edit.deleted_files.emplace_back(job.output_level, f->number);
  }
  for (const auto& out : result.outputs) {
    edit.new_files.emplace_back(job.output_level, out);
  }
  Status s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    NOVA_WARN("compaction apply failed: %s", s.ToString().c_str());
    return;
  }
  l0_bytes_.store(versions_->current()->LevelBytes(0));

  // Lookup-index upkeep (Section 4.1.1): keys whose MIDToTable entries
  // pointed at a compacted L0 file now resolve through the levels.
  if (job.input_level == 0) {
    std::lock_guard<std::mutex> cl(compaction_mu_);
    for (const auto& f : job.inputs) {
      auto it = file_to_mids_.find(f->number);
      if (it != file_to_mids_.end()) {
        for (uint64_t mid : it->second) {
          mid_table_.Erase(mid);
        }
        file_to_mids_.erase(it);
      }
      range_index_->RemoveL0File(f->number);
    }
  }
  // Retire the inputs: delete the StoC blocks first, then drop cache
  // entries in one sweep for all dead files. Sweeping after the deletes
  // closes (almost all of) the window where an in-flight read of the old
  // version re-inserts a dead file's block that nothing would invalidate
  // again; dead entries are otherwise unreachable and would squat on the
  // charge budget until LRU churn reached them.
  std::vector<uint64_t> dead;
  for (const auto* files : {&job.inputs, &job.inputs_next}) {
    for (const auto& f : *files) {
      dead.push_back(f->number);
      DeleteFileBlocks(*f);
    }
  }
  table_cache_->EvictBatch(dead);
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    stats_.compactions++;
  }
}

void RangeEngine::DeleteFileBlocks(const lsm::FileMetaData& meta) {
  for (const auto& replicas : meta.fragments) {
    for (const auto& loc : replicas) {
      client_->DeleteFile(loc.stoc_id, loc.file_id, false);
    }
  }
  for (const auto& loc : meta.meta_replicas) {
    client_->DeleteFile(loc.stoc_id, loc.file_id, false);
  }
  if (meta.parity.valid()) {
    client_->DeleteFile(meta.parity.stoc_id, meta.parity.file_id, false);
  }
}

Status RangeEngine::ManifestAppend(const Slice& record) {
  std::string framed;
  PutFixed32(&framed, static_cast<uint32_t>(record.size()));
  framed.append(record.data(), record.size());
  int ok_count = 0;
  int replicas = std::min<int>(std::max(1, options_.manifest_replicas),
                               static_cast<int>(stocs_.size()));
  for (int r = 0; r < replicas; r++) {
    uint64_t file_id =
        stoc::MakeFileId(options_.range_id, 0, stoc::FileKind::kManifest,
                         static_cast<uint8_t>(r));
    stoc::StocBlockHandle handle;
    Status s = client_->AppendBlock(stocs_[r], file_id, framed, &handle);
    if (s.ok()) {
      ok_count++;
    }
  }
  if (ok_count == 0 && !stocs_.empty()) {
    return Status::IOError("no manifest replica reachable");
  }
  return Status::OK();
}

Status RangeEngine::ReadManifestRecords(std::vector<std::string>* records) {
  int replicas = std::min<int>(std::max(1, options_.manifest_replicas),
                               static_cast<int>(stocs_.size()));
  std::vector<std::string> best;
  for (int r = 0; r < replicas; r++) {
    uint64_t file_id =
        stoc::MakeFileId(options_.range_id, 0, stoc::FileKind::kManifest,
                         static_cast<uint8_t>(r));
    std::string contents;
    if (!client_->ReadBlock(stocs_[r], file_id, 0, 0, &contents).ok()) {
      continue;  // stale or unreachable replica
    }
    std::vector<std::string> parsed;
    Slice in(contents);
    while (in.size() >= 4) {
      uint32_t len = DecodeFixed32(in.data());
      in.remove_prefix(4);
      if (in.size() < len) {
        break;  // torn tail
      }
      parsed.emplace_back(in.data(), len);
      in.remove_prefix(len);
    }
    // The replica with the most edits has the highest manifest version;
    // shorter ones are stale (Section 3: stale manifest replicas).
    if (parsed.size() > best.size()) {
      best = std::move(parsed);
    }
  }
  if (best.empty()) {
    return Status::NotFound("no manifest records");
  }
  *records = std::move(best);
  return Status::OK();
}

Status RangeEngine::RecoverFromManifest(int recovery_threads) {
  std::vector<std::string> records;
  Status s = ReadManifestRecords(&records);
  if (s.ok()) {
    s = versions_->Recover(records);
    if (!s.ok()) {
      return s;
    }
  }
  last_sequence_.store(versions_->last_sequence());
  std::string dstate = versions_->drange_state();
  if (!dstate.empty()) {
    drange_->Deserialize(dstate);
  }
  l0_bytes_.store(versions_->current()->LevelBytes(0));
  // Rebuild the range index from the recovered Dranges and L0 files
  // (Section 4.5).
  if (options_.enable_range_index) {
    for (const std::string& b : drange_->Boundaries()) {
      range_index_->SplitAt(b);
    }
    lsm::VersionRef v = versions_->current();
    for (const auto& f : v->files(0)) {
      range_index_->AddL0File(f->number, f->smallest.user_key().ToString(),
                              f->largest.user_key().ToString());
    }
  }
  return RebuildFromLogs(recovery_threads);
}

Status RangeEngine::RebuildFromLogs(int recovery_threads) {
  std::map<uint64_t, std::vector<logc::LogRecord>> by_memtable;
  std::map<uint64_t, std::vector<stoc::InMemFileHandle>> handles;
  Status s = logc::LogClient::FetchAllLogRecords(
      client_, stocs_, options_.range_id, &by_memtable, &handles);
  if (!s.ok()) {
    return s;
  }
  // Adopt the surviving log files so flushing the rebuilt memtables can
  // reclaim their StoC memory.
  for (auto& [file_id, replicas] : handles) {
    logc_->Adopt(stoc::FileIdNumber(file_id), std::move(replicas));
  }
  std::vector<std::pair<uint64_t, std::vector<logc::LogRecord>*>> work;
  for (auto& [mid, recs] : by_memtable) {
    work.emplace_back(mid, &recs);
  }
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> max_seq{last_sequence_.load()};
  const sim::CostModel& costs = sim::DefaultCostModel();
  auto worker = [&] {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= work.size()) {
        return;
      }
      auto [mid, recs] = work[i];
      auto mem = std::make_shared<MemTable>(icmp_, mid);
      mem->set_drange_id(-1);
      for (const auto& rec : *recs) {
        throttle_->Charge(costs.flush_per_record_us);
        mem->Add(rec.sequence, rec.type, rec.key, rec.value);
        if (options_.enable_lookup_index) {
          lookup_index_.Update(rec.key, mid, rec.sequence);
        }
        uint64_t prev = max_seq.load();
        while (rec.sequence > prev &&
               !max_seq.compare_exchange_weak(prev, rec.sequence)) {
        }
      }
      mem->MarkImmutable();
      mid_table_.SetMemtable(mid, mem);
      std::string lo = mem->SmallestUserKey();
      std::string hi = mem->LargestUserKey();
      if (options_.enable_range_index && !lo.empty()) {
        range_index_->AddMemtable(mid, lo, hi + std::string(1, '\0'));
      }
      std::lock_guard<std::mutex> lk(mu_);
      all_memtables_[mid] = mem;
      flush_queue_.push_back(mem);
      if (mid >= next_mid_.load()) {
        next_mid_.store(mid + 1);
      }
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < std::max(1, recovery_threads); t++) {
    threads.emplace_back(worker);
  }
  for (auto& t : threads) {
    t.join();
  }
  last_sequence_.store(max_seq.load());

  // Rebuild lookup-index entries for keys living in L0 SSTables. Without
  // this, a rebuilt memtable holding an *old* version of a key would win
  // index lookups over a newer version that was flushed before the crash.
  // Each L0 file gets a synthetic mid so MIDToTable resolves to it and
  // compaction upkeep retires the entries normally.
  if (options_.enable_lookup_index) {
    lsm::VersionRef v = versions_->current();
    // Keys whose newest version was compacted into L1+ before the crash
    // must not be claimed by an older memtable/L0 version: live operation
    // leaves such keys with a dangling index slot that still carries the
    // newest seq, and Get uses that claimed seq to route down to the
    // levels. Recreate the same shape here by claiming every L1+ key
    // under one sentinel mid that is never registered in MIDToTable —
    // a hit on it fails to resolve and falls through to SearchLevels.
    // This pass runs before the L0 pass so an L0 copy at the same seq
    // wins the slot (>= guard) and keeps the resolvable fast path.
    uint64_t levels_mid = next_mid_.fetch_add(1);
    for (int level = 1; level < v->num_levels(); level++) {
      for (const auto& f : v->files(level)) {
        lsm::TableCache::Handle handle;
        if (!table_cache_->GetReader(f, &handle).ok()) {
          continue;
        }
        std::unique_ptr<Iterator> it(handle.reader->NewIterator());
        for (it->SeekToFirst(); it->Valid(); it->Next()) {
          throttle_->Charge(costs.flush_per_record_us);
          ParsedInternalKey parsed;
          if (ParseInternalKey(it->key(), &parsed)) {
            lookup_index_.Update(parsed.user_key, levels_mid,
                                 parsed.sequence);
          }
        }
      }
    }
    for (const auto& f : v->files(0)) {
      lsm::TableCache::Handle handle;
      if (!table_cache_->GetReader(f, &handle).ok()) {
        continue;
      }
      uint64_t synthetic_mid = next_mid_.fetch_add(1);
      mid_table_.SetFile(synthetic_mid, f->number);
      {
        std::lock_guard<std::mutex> cl(compaction_mu_);
        file_to_mids_[f->number].push_back(synthetic_mid);
      }
      std::unique_ptr<Iterator> it(handle.reader->NewIterator());
      it->SeekToFirst();
      while (it->Valid()) {
        throttle_->Charge(costs.flush_per_record_us);
        ParsedInternalKey parsed;
        if (ParseInternalKey(it->key(), &parsed)) {
          lookup_index_.Update(parsed.user_key, synthetic_mid,
                               parsed.sequence);
        }
        it->Next();
      }
    }
  }
  return Status::OK();
}

std::string RangeEngine::ExtractMigrationState() {
  lsm::VersionEdit snapshot;
  lsm::VersionRef v = versions_->current();
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      snapshot.new_files.emplace_back(level, *f);
    }
  }
  snapshot.last_sequence = last_sequence_.load();
  snapshot.next_file_number = versions_->NewFileNumber() + 1;
  snapshot.drange_state = drange_->Serialize();
  std::string out;
  snapshot.EncodeTo(&out);
  return out;
}

Status RangeEngine::InstallFromMigrationState(const Slice& state,
                                              int recovery_threads) {
  lsm::VersionEdit edit;
  Status s = edit.DecodeFrom(state);
  if (!s.ok()) {
    return s;
  }
  std::string record;
  edit.EncodeTo(&record);
  s = versions_->Recover({record});
  if (!s.ok()) {
    return s;
  }
  last_sequence_.store(edit.last_sequence);
  if (!edit.drange_state.empty()) {
    drange_->Deserialize(edit.drange_state);
  }
  l0_bytes_.store(versions_->current()->LevelBytes(0));
  if (options_.enable_range_index) {
    for (const std::string& b : drange_->Boundaries()) {
      range_index_->SplitAt(b);
    }
    lsm::VersionRef v = versions_->current();
    for (const auto& f : v->files(0)) {
      range_index_->AddL0File(f->number, f->smallest.user_key().ToString(),
                              f->largest.user_key().ToString());
    }
  }
  return RebuildFromLogs(recovery_threads);
}

void RangeEngine::BeginDecommission() {
  stopping_.store(true);
  // Same lost-wakeup pairing as FinishCompaction: stopping_ is stored
  // outside mu_, and a writer blocking on stall_cv_ must not miss the
  // only notify that will ever release it.
  { std::lock_guard<std::mutex> lk(mu_); }
  stall_cv_.notify_all();
}

void RangeEngine::FlushAllMemtables() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [did, dm] : actives_) {
    if (dm.active != nullptr && dm.active->num_entries() > 0) {
      dm.active->MarkImmutable();
      flush_queue_.push_back(dm.active);
      dm.active = nullptr;
    }
  }
}

void RangeEngine::WaitForQuiescence(bool flush_all) {
  for (;;) {
    MaintenanceTick();
    bool idle;
    {
      std::lock_guard<std::mutex> lk(mu_);
      idle = flush_queue_.empty() && flushes_inflight_ == 0;
    }
    if (idle && stopping_.load()) {
      // Decommission (migration/removal): writers that entered
      // RouteAndAppend before stopping_ was set may still have log
      // appends in flight; hand off only after they have returned.
      idle = foreground_writes_.load(std::memory_order_acquire) == 0;
    }
    if (idle) {
      std::lock_guard<std::mutex> cl(compaction_mu_);
      idle = compactions_inflight_ == 0;
    }
    if (idle && flush_all) {
      lsm::VersionRef v = versions_->current();
      idle = lsm::CompactionPicker::Pick(*versions_, v, 1).empty();
    }
    if (idle) {
      return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

std::string RangeEngine::DebugMaintenanceState() {
  std::string out;
  char buf[256];
  {
    std::lock_guard<std::mutex> lk(mu_);
    snprintf(buf, sizeof(buf),
             "flush_queue=%zu inflight_flushes=%d memtables=%zu",
             flush_queue_.size(), flushes_inflight_, all_memtables_.size());
    out += buf;
    out += " actives=[";
    for (const auto& [did, dm] : actives_) {
      snprintf(buf, sizeof(buf), "%d:%s ", did,
               dm.active == nullptr
                   ? "null"
                   : std::to_string(dm.active->num_entries()).c_str());
      out += buf;
    }
    out += "] small=[";
    for (const auto& [did, mids] : small_immutables_) {
      snprintf(buf, sizeof(buf), "%d:%zu ", did, mids.size());
      out += buf;
    }
    out += "] mems=[";
    for (const auto& [mid, mem] : all_memtables_) {
      snprintf(buf, sizeof(buf), "%llu:%llu%s ",
               (unsigned long long)mid, (unsigned long long)mem->num_entries(),
               mem->immutable() ? "i" : "");
      out += buf;
    }
    out += "]";
  }
  {
    std::lock_guard<std::mutex> cl(compaction_mu_);
    snprintf(buf, sizeof(buf),
             " inflight_compactions=%d compacting_files=%zu hulls=%zu",
             compactions_inflight_, compacting_files_.size(),
             inflight_hulls_.size());
    out += buf;
  }
  return out;
}

RangeStats RangeEngine::stats() const {
  RangeStats out;
  {
    std::lock_guard<std::mutex> l(stats_mu_);
    out = stats_;
  }
  if (owned_block_cache_ != nullptr) {
    // Shared caches are reported once at the LtcServer level instead.
    out.block_cache_hits = owned_block_cache_->hits();
    out.block_cache_misses = owned_block_cache_->misses();
    out.block_cache_bytes = owned_block_cache_->TotalCharge();
  }
  if (owned_compressed_cache_ != nullptr) {
    out.block_cache_compressed_hits = owned_compressed_cache_->hits();
    out.block_cache_compressed_misses = owned_compressed_cache_->misses();
    out.block_cache_compressed_bytes = owned_compressed_cache_->TotalCharge();
  }
  out.readahead_issued =
      readahead_counters_.issued.load(std::memory_order_relaxed);
  out.readahead_hits =
      readahead_counters_.hits.load(std::memory_order_relaxed);
  CompactionScheduler::Stats sched = scheduler_->stats();
  out.compaction_offloads = sched.offloads;
  out.compaction_offload_failures = sched.offload_failures;
  out.compaction_local_fallbacks = sched.local_fallbacks;
  return out;
}

bool RangeEngine::IsFileNumberLive(uint64_t number) {
  lsm::VersionRef v = versions_->current();
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      if (f->number == number) {
        return true;
      }
    }
  }
  return false;
}

Status RangeEngine::SwapFileMeta(const lsm::FileMetaData& updated) {
  // Claim the file number in compacting_files_ so no compaction starts on
  // it while the swap's manifest append is in flight; conversely, a file
  // already claimed by a compaction returns Busy — by the time the repair
  // manager retries, the compaction has either retired the file (repair is
  // moot) or released it.
  {
    std::lock_guard<std::mutex> cl(compaction_mu_);
    if (compacting_files_.count(updated.number)) {
      return Status::Busy("file is being compacted");
    }
    compacting_files_.insert(updated.number);
  }
  struct Unclaim {
    RangeEngine* e;
    uint64_t number;
    ~Unclaim() {
      std::lock_guard<std::mutex> cl(e->compaction_mu_);
      e->compacting_files_.erase(number);
    }
  } unclaim{this, updated.number};
  // Locate the file's level; compactions cannot move it while we hold the
  // claim, so the snapshot stays accurate through LogAndApply.
  lsm::VersionRef v = versions_->current();
  int level = -1;
  for (int l = 0; l < v->num_levels() && level < 0; l++) {
    for (const auto& f : v->files(l)) {
      if (f->number == updated.number) {
        level = l;
        break;
      }
    }
  }
  if (level < 0) {
    return Status::NotFound("file no longer live");
  }
  lsm::VersionEdit edit;
  edit.deleted_files.emplace_back(level, updated.number);
  edit.new_files.emplace_back(level, updated);
  Status s = versions_->LogAndApply(&edit);
  if (!s.ok()) {
    return s;
  }
  // Readers holding the old FileMetaRef keep working (the surviving
  // replica locations are unchanged); evict the cached reader so new
  // opens see the repaired placement.
  table_cache_->Evict(updated.number);
  return Status::OK();
}

std::string RangeEngine::DebugLookupState(const Slice& key) {
  char buf[256];
  uint64_t mid = 0, iseq = 0;
  if (!lookup_index_.LookupWithSeq(key, &mid, &iseq)) {
    return "no-index-entry";
  }
  MidTable::Entry entry;
  if (!mid_table_.Get(mid, &entry)) {
    snprintf(buf, sizeof(buf), "mid=%llu iseq=%llu midtable-missing",
             (unsigned long long)mid, (unsigned long long)iseq);
    return buf;
  }
  if (entry.is_file) {
    snprintf(buf, sizeof(buf), "mid=%llu iseq=%llu file=%llu l0=%d",
             (unsigned long long)mid, (unsigned long long)iseq,
             (unsigned long long)entry.file_number,
             FindL0File(entry.file_number) != nullptr);
    return buf;
  }
  LookupKey lkey(key, kMaxSequenceNumber);
  std::string v;
  Status s;
  SequenceNumber seq = 0;
  bool found = entry.memtable->Get(lkey, &v, &s, &seq);
  snprintf(buf, sizeof(buf),
           "mid=%llu iseq=%llu memtable found=%d seq=%llu val=%.12s "
           "drange=%d entries=%llu",
           (unsigned long long)mid, (unsigned long long)iseq, found,
           (unsigned long long)seq, v.c_str(), entry.memtable->drange_id(),
           (unsigned long long)entry.memtable->num_entries());
  return buf;
}

std::string RangeEngine::DebugFindNewest(const Slice& key) {
  LookupKey lkey(key, kMaxSequenceNumber);
  char buf[256];
  SequenceNumber best = 0;
  std::string where = "nowhere";
  std::vector<std::pair<uint64_t, MemTableRef>> mems;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [m, mem] : all_memtables_) {
      mems.emplace_back(m, mem);
    }
  }
  for (auto& [m, mem] : mems) {
    std::string v;
    Status s;
    SequenceNumber seq = 0;
    if (mem->Get(lkey, &v, &s, &seq) && seq > best) {
      best = seq;
      snprintf(buf, sizeof(buf), "memtable mid=%llu seq=%llu im=%d dr=%d",
               (unsigned long long)m, (unsigned long long)seq,
               mem->immutable(), mem->drange_id());
      where = buf;
    }
  }
  lsm::VersionRef version = versions_->current();
  for (int level = 0; level < version->num_levels(); level++) {
    for (const auto& f : version->files(level)) {
      lsm::TableCache::Handle handle;
      if (!table_cache_->GetReader(f, &handle).ok()) continue;
      std::string v;
      Status s;
      SequenceNumber seq = 0;
      if (handle.reader->Get(lkey, &v, &s, &seq) && seq > best) {
        best = seq;
        snprintf(buf, sizeof(buf), "L%d file=%llu seq=%llu", level,
                 (unsigned long long)f->number, (unsigned long long)seq);
        where = buf;
      }
    }
  }
  return where;
}

int RangeEngine::num_memtables() {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<int>(all_memtables_.size());
}

}  // namespace ltc
}  // namespace nova
