#include "ltc/range_index.h"

#include <algorithm>
#include <mutex>

namespace nova {
namespace ltc {

RangeIndex::RangeIndex(std::string lower, std::string upper) {
  Partition p;
  p.lower = std::move(lower);
  p.upper = std::move(upper);
  partitions_.push_back(std::move(p));
}

bool RangeIndex::Overlaps(const Partition& p, const std::string& lo,
                          const std::string& hi, bool hi_inclusive) const {
  // Partition [p.lower, p.upper) vs [lo, hi) or [lo, hi].
  if (!p.upper.empty() && lo >= p.upper) {
    return false;
  }
  if (!hi.empty()) {
    if (hi_inclusive) {
      if (hi < p.lower) {
        return false;
      }
    } else {
      if (hi <= p.lower) {
        return false;
      }
    }
  }
  return true;
}

void RangeIndex::AddMemtable(uint64_t mid, const std::string& lo,
                             const std::string& hi) {
  std::unique_lock<std::shared_mutex> l(mu_);
  for (auto& p : partitions_) {
    if (Overlaps(p, lo, hi, /*hi_inclusive=*/false)) {
      p.memtables.insert(mid);
    }
  }
}

void RangeIndex::RemoveMemtable(uint64_t mid) {
  std::unique_lock<std::shared_mutex> l(mu_);
  for (auto& p : partitions_) {
    p.memtables.erase(mid);
  }
}

void RangeIndex::AddL0File(uint64_t number, const std::string& lo,
                           const std::string& hi) {
  std::unique_lock<std::shared_mutex> l(mu_);
  for (auto& p : partitions_) {
    if (Overlaps(p, lo, hi, /*hi_inclusive=*/true)) {
      p.l0_files.insert(number);
    }
  }
}

void RangeIndex::RemoveL0File(uint64_t number) {
  std::unique_lock<std::shared_mutex> l(mu_);
  for (auto& p : partitions_) {
    p.l0_files.erase(number);
  }
}

void RangeIndex::SplitAt(const std::string& boundary) {
  std::unique_lock<std::shared_mutex> l(mu_);
  for (size_t i = 0; i < partitions_.size(); i++) {
    Partition& p = partitions_[i];
    bool contains = (p.lower < boundary) &&
                    (p.upper.empty() || boundary < p.upper);
    if (!contains) {
      continue;
    }
    Partition right;
    right.lower = boundary;
    right.upper = p.upper;
    right.memtables = p.memtables;  // both halves inherit (Section 4.1.2)
    right.l0_files = p.l0_files;
    p.upper = boundary;
    partitions_.insert(partitions_.begin() + i + 1, std::move(right));
    return;
  }
}

RangeIndex::PartitionView RangeIndex::Collect(const Slice& key) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  PartitionView view;
  // Binary search for the partition containing key.
  std::string k = key.ToString();
  int lo = 0;
  int hi = static_cast<int>(partitions_.size()) - 1;
  int found = -1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    const Partition& p = partitions_[mid];
    if (!p.upper.empty() && k >= p.upper) {
      lo = mid + 1;
    } else if (k < p.lower) {
      hi = mid - 1;
      found = mid;  // first partition after the key so far
    } else {
      found = mid;
      break;
    }
  }
  if (found < 0) {
    return view;
  }
  const Partition& p = partitions_[found];
  view.valid = true;
  view.lower = p.lower;
  view.upper = p.upper;
  view.memtables.assign(p.memtables.begin(), p.memtables.end());
  view.l0_files.assign(p.l0_files.begin(), p.l0_files.end());
  return view;
}

size_t RangeIndex::num_partitions() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return partitions_.size();
}

size_t RangeIndex::ApproximateBytes() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  size_t bytes = 0;
  for (const auto& p : partitions_) {
    bytes += p.lower.size() + p.upper.size() +
             8 * (p.memtables.size() + p.l0_files.size()) + 32;
  }
  return bytes;
}

}  // namespace ltc
}  // namespace nova
