// Dynamic ranges (paper Section 4.1, Definitions 4.1-4.4).
//
// A range's keyspace is carved into θ Dranges, each holding up to γ
// Tranges that count the writes they receive. The manager:
//  * routes each write to the Drange containing its key (duplicated
//    point-Dranges pick a member at random, reducing write contention on
//    one hot key);
//  * performs *minor* reorganizations — shuffling edge Tranges of an
//    overloaded Drange to its neighbors — when a Drange's write share
//    exceeds 1/θ + ε;
//  * performs *major* reorganizations — rebuilding all Dranges/Tranges
//    from sampled write frequencies, duplicating Dranges that are single
//    hot points — when minor ones cannot balance the load.
// The manager starts with one Drange covering the whole range; the first
// major reorganization (triggered once enough samples accumulate)
// constructs the θ-way partition, matching the paper's "constructs them
// dynamically at runtime".
#ifndef NOVA_LTC_DRANGE_H_
#define NOVA_LTC_DRANGE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "util/random.h"
#include "util/slice.h"

namespace nova {
namespace ltc {

struct DrangeOptions {
  int theta = 8;    // Dranges per range
  int gamma = 4;    // Tranges per Drange
  /// Minor reorg triggers when a Drange's write share > 1/θ + ε.
  double epsilon = 0.04;
  /// Major reorg triggers when the share exceeds 1/θ by this factor and a
  /// minor reorg cannot fix it (e.g. a single hot Trange).
  double major_factor = 2.0;
  /// Writes sampled into the frequency reservoir (1 in sample_rate).
  int sample_rate = 8;
  size_t reservoir_size = 4096;
  /// Writes that must be observed before the first major reorg.
  uint64_t warmup_writes = 1024;
  /// Freeze after the first major reorg (the paper's Nova-LSM-S variant).
  bool static_after_first_major = false;
};

class DrangeManager {
 public:
  /// Manages [lower, upper); upper empty = unbounded above.
  DrangeManager(std::string lower, std::string upper,
                const DrangeOptions& options);

  /// Record a write and return the Drange index to append to.
  int RouteWrite(const Slice& key);

  /// Drange index whose [lower, upper) contains key, ignoring duplicates
  /// (used by scans / boundary queries). -1 if out of range.
  int DrangeForKey(const Slice& key) const;

  int num_dranges() const;
  /// [lower, upper) of Drange i.
  std::pair<std::string, std::string> DrangeBounds(int i) const;

  /// True when the hottest Drange's share exceeds 1/θ + ε.
  bool NeedsReorg() const;
  /// Perform a minor (or, if needed, major) reorganization. Returns the
  /// indices of Dranges whose boundaries changed — the caller must rotate
  /// their active memtables and bump the generation (Section 4.1).
  /// Returns empty if nothing changed.
  std::vector<int> MaybeReorg();

  /// Sorted interior boundaries (Drange upper bounds, deduplicated) —
  /// exactly what parallel L0 compaction splits on (Section 4.3) and what
  /// the range index refines itself with.
  std::vector<std::string> Boundaries() const;

  /// Standard deviation of per-Drange write shares (paper Section 8.2.1's
  /// load-imbalance metric).
  double LoadImbalance() const;

  uint64_t num_minor_reorgs() const { return minor_reorgs_.load(); }
  uint64_t num_major_reorgs() const { return major_reorgs_.load(); }
  int num_duplicated_dranges() const;

  /// Serialization for the MANIFEST / migration (Section 4.5).
  std::string Serialize() const;
  bool Deserialize(const Slice& input);

 private:
  struct Trange {
    std::string lower;
    std::string upper;  // empty = +inf
    uint64_t writes = 0;
  };
  struct Drange {
    std::string lower;
    std::string upper;
    std::vector<Trange> tranges;
    /// >= 0 for duplicated point-Dranges; members share the group id.
    int dup_group = -1;
    uint64_t writes = 0;
  };

  bool KeyInDrange(const Drange& d, const Slice& key) const;
  int FindDrangeLocked(const Slice& key) const;
  void MinorReorgLocked(int hot, std::vector<int>* changed);
  void MajorReorgLocked(std::vector<int>* changed);
  double MaxShareLocked(int* hot_index) const;

  std::string lower_;
  std::string upper_;
  DrangeOptions options_;

  mutable std::shared_mutex mu_;
  std::vector<Drange> dranges_;
  uint64_t total_writes_ = 0;
  std::vector<std::string> reservoir_;
  uint64_t sample_counter_ = 0;
  bool frozen_ = false;
  mutable std::mutex rng_mu_;
  Random rng_{0xd7a93e};

  std::atomic<uint64_t> minor_reorgs_{0};
  std::atomic<uint64_t> major_reorgs_{0};
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_DRANGE_H_
