#include "ltc/repair_manager.h"

#include <algorithm>
#include <chrono>

#include "stoc/stoc_common.h"
#include "util/logging.h"

namespace nova {
namespace ltc {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedUs(Clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               start)
      .count();
}

bool IsDead(const std::vector<rdma::NodeId>& dead, int32_t stoc) {
  return std::find(dead.begin(), dead.end(), stoc) != dead.end();
}

/// Lost pieces a file has on the given dead StoCs (the cheap
/// metadata-only pass that publishes the degraded gauge before any
/// repair I/O starts).
int CountDegraded(const lsm::FileMetaData& meta,
                  const std::vector<rdma::NodeId>& dead) {
  int n = 0;
  for (const auto& replicas : meta.fragments) {
    for (const auto& loc : replicas) {
      if (IsDead(dead, loc.stoc_id)) n++;
    }
  }
  for (const auto& loc : meta.meta_replicas) {
    if (IsDead(dead, loc.stoc_id)) n++;
  }
  if (meta.parity.valid() && IsDead(dead, meta.parity.stoc_id)) n++;
  return n;
}

}  // namespace

RepairManager::RepairManager(
    stoc::StocClient* client,
    std::function<std::vector<RangeEngine*>()> engines,
    const RepairOptions& options)
    : client_(client),
      engines_(std::move(engines)),
      options_(options),
      budget_refilled_(Clock::now()) {}

RepairManager::~RepairManager() { Stop(); }

void RepairManager::Start() {
  if (!options_.enabled || running_.exchange(true)) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void RepairManager::Stop() {
  running_.store(false);
  if (thread_.joinable()) {
    thread_.join();
  }
}

void RepairManager::Loop() {
  while (running_.load(std::memory_order_relaxed)) {
    ScanOnce();
    std::this_thread::sleep_for(
        std::chrono::milliseconds(options_.scan_interval_ms));
  }
}

RepairStats RepairManager::stats() const {
  RepairStats out;
  out.degraded_fragments = degraded_fragments_.load(std::memory_order_relaxed);
  out.repaired_fragments = repaired_fragments_.load(std::memory_order_relaxed);
  out.repaired_bytes = repaired_bytes_.load(std::memory_order_relaxed);
  out.repair_us = repair_us_.load(std::memory_order_relaxed);
  return out;
}

void RepairManager::ScanOnce() {
  coord::Membership* membership = client_->membership();
  if (membership == nullptr) {
    return;
  }
  std::vector<rdma::NodeId> dead = membership->DeadNodes();
  if (dead.empty()) {
    degraded_fragments_.store(0, std::memory_order_relaxed);
    if (window_open_) {
      repair_us_.fetch_add(ElapsedUs(window_start_),
                           std::memory_order_relaxed);
      window_open_ = false;
    }
    return;
  }
  std::vector<RangeEngine*> engines = engines_();

  // Pass 1 (metadata only): publish the degraded gauge before repair I/O
  // starts, so pollers observe the peak even when repair is fast.
  uint64_t found = 0;
  for (RangeEngine* engine : engines) {
    lsm::VersionRef v = engine->versions()->current();
    for (int level = 0; level < v->num_levels(); level++) {
      for (const auto& f : v->files(level)) {
        found += CountDegraded(*f, dead);
      }
    }
  }
  degraded_fragments_.store(found, std::memory_order_relaxed);
  if (found > 0 && !window_open_) {
    window_open_ = true;
    window_start_ = Clock::now();
  }
  if (found == 0) {
    if (window_open_) {
      repair_us_.fetch_add(ElapsedUs(window_start_),
                           std::memory_order_relaxed);
      window_open_ = false;
    }
    return;
  }

  // Pass 2: repair file by file. Each file's pieces are rebuilt from
  // survivors and the new placement swapped in atomically; a file that
  // cannot be repaired yet (compaction claim, no healthy target, budget
  // withdrawn mid-scan) simply stays degraded until the next scan.
  uint64_t remaining = found;
  for (RangeEngine* engine : engines) {
    lsm::VersionRef v = engine->versions()->current();
    for (int level = 0; level < v->num_levels(); level++) {
      for (const auto& f : v->files(level)) {
        if (CountDegraded(*f, dead) == 0) {
          continue;
        }
        FileRepairOutcome outcome = RepairFile(engine, f, dead);
        remaining -= std::min<uint64_t>(remaining, outcome.repaired);
        degraded_fragments_.store(remaining, std::memory_order_relaxed);
        if (!running_.load(std::memory_order_relaxed) &&
            thread_.joinable()) {
          return;  // Stop() requested mid-scan
        }
      }
    }
  }
  if (remaining == 0 && window_open_) {
    repair_us_.fetch_add(ElapsedUs(window_start_), std::memory_order_relaxed);
    window_open_ = false;
  }
}

Status RepairManager::FetchFragment(const lsm::FileMetaData& meta,
                                    int fragment, std::string* out) {
  // Surviving replicas first (cheap path)...
  std::vector<stoc::GatherRead::Target> targets;
  for (const lsm::BlockLocation& loc : meta.fragments[fragment]) {
    if (client_->IsRoutable(loc.stoc_id)) {
      targets.push_back({loc.stoc_id, loc.file_id});
    }
  }
  if (!targets.empty()) {
    Status s = client_->ReadReplicated(targets, 0,
                                       meta.fragment_sizes[fragment], out);
    if (s.ok()) {
      return s;
    }
  }
  // ... else rebuild from parity + the other fragments in one gather
  // (mirrors StocBlockFetcher::ReconstructFromParity).
  if (!meta.parity.valid()) {
    return Status::Unavailable("fragment lost and no parity block");
  }
  std::vector<stoc::GatherRead> reads;
  reads.emplace_back();
  reads.back().replicas.push_back({meta.parity.stoc_id, meta.parity.file_id});
  for (int f = 0; f < static_cast<int>(meta.fragments.size()); f++) {
    if (f == fragment) {
      continue;
    }
    reads.emplace_back();
    reads.back().size = meta.fragment_sizes[f];
    for (const lsm::BlockLocation& loc : meta.fragments[f]) {
      reads.back().replicas.push_back({loc.stoc_id, loc.file_id});
    }
  }
  Status s = client_->GatherReads(&reads);
  if (!s.ok()) {
    return !reads[0].status.ok()
               ? reads[0].status
               : Status::Unavailable("second fragment loss; parity "
                                     "insufficient for repair");
  }
  std::string acc = std::move(reads[0].data);
  for (size_t i = 1; i < reads.size(); i++) {
    const std::string& other = reads[i].data;
    for (size_t j = 0; j < other.size() && j < acc.size(); j++) {
      acc[j] ^= other[j];
    }
  }
  acc.resize(meta.fragment_sizes[fragment]);
  *out = std::move(acc);
  return Status::OK();
}

rdma::NodeId RepairManager::PickTarget(
    const std::vector<rdma::NodeId>& candidates,
    const std::vector<rdma::NodeId>& exclude) {
  if (candidates.empty()) {
    return -1;
  }
  // Rotate the starting point so repair load spreads across the healthy
  // StoCs instead of piling onto the first one.
  size_t start = rr_seed_++ % candidates.size();
  for (size_t i = 0; i < candidates.size(); i++) {
    rdma::NodeId n = candidates[(start + i) % candidates.size()];
    if (!client_->IsRoutable(n)) {
      continue;
    }
    if (std::find(exclude.begin(), exclude.end(), n) != exclude.end()) {
      continue;
    }
    return n;
  }
  return -1;
}

bool RepairManager::WaitForBudget(uint64_t bytes) {
  if (options_.bandwidth_bytes_per_sec == 0) {
    return true;
  }
  double rate = static_cast<double>(options_.bandwidth_bytes_per_sec);
  auto refill = [&] {
    Clock::time_point now = Clock::now();
    double secs = std::chrono::duration<double>(now - budget_refilled_).count();
    // Burst cap of one second of budget; debt from an oversized piece is
    // paid down over subsequent refills, so pieces larger than the cap
    // still eventually go through instead of deadlocking.
    budget_bytes_ = std::min(budget_bytes_ + secs * rate, rate);
    budget_refilled_ = now;
  };
  refill();
  while (budget_bytes_ < 0) {
    if (thread_.joinable() && !running_.load(std::memory_order_relaxed)) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    refill();
  }
  budget_bytes_ -= static_cast<double>(bytes);
  return true;
}

RepairManager::FileRepairOutcome RepairManager::RepairFile(
    RangeEngine* engine, const lsm::FileMetaRef& file,
    const std::vector<rdma::NodeId>& dead) {
  FileRepairOutcome outcome;
  lsm::FileMetaData updated = *file;
  const std::vector<rdma::NodeId> candidates =
      engine->placer()->options().stocs;
  // Newly written replacement blocks, rolled back if the swap fails so a
  // retried repair never appends a second copy into the same StoC file.
  std::vector<std::pair<rdma::NodeId, uint64_t>> written;
  uint64_t bytes_written = 0;
  int repaired = 0;
  bool skipped = false;

  auto write_piece = [&](rdma::NodeId target, uint64_t file_id,
                         const std::string& data) {
    if (!WaitForBudget(data.size())) {
      return false;
    }
    // Clear any partial block a previously failed repair attempt left
    // behind under this id (idempotence), then write the replacement.
    client_->DeleteFile(target, file_id, false);
    stoc::StocBlockHandle handle;
    Status s = client_->AppendBlock(target, file_id, data, &handle);
    if (!s.ok()) {
      return false;
    }
    written.emplace_back(target, file_id);
    bytes_written += data.size();
    return true;
  };

  // Data fragments: every lost replica of fragment f gets the fragment
  // bytes (fetched once) rewritten to a healthy StoC not already holding
  // a copy of the same fragment.
  for (int f = 0; f < static_cast<int>(updated.fragments.size()); f++) {
    std::string data;
    bool fetched = false;
    for (int r = 0; r < static_cast<int>(updated.fragments[f].size()); r++) {
      lsm::BlockLocation& loc = updated.fragments[f][r];
      if (!IsDead(dead, loc.stoc_id)) {
        continue;
      }
      outcome.degraded++;
      if (!fetched) {
        Status s = FetchFragment(updated, f, &data);
        if (!s.ok()) {
          NOVA_WARN("repair: fragment %d of file %llu unrecoverable: %s", f,
                    (unsigned long long)updated.number, s.ToString().c_str());
          skipped = true;
          break;  // nothing to write for this fragment's lost replicas
        }
        fetched = true;
      }
      std::vector<rdma::NodeId> exclude;
      for (const lsm::BlockLocation& other : updated.fragments[f]) {
        exclude.push_back(other.stoc_id);
      }
      rdma::NodeId target = PickTarget(candidates, exclude);
      if (target < 0 || !write_piece(target, loc.file_id, data)) {
        skipped = true;
        continue;
      }
      loc = {target, loc.file_id};
      repaired++;
    }
  }

  // Metadata replicas: rebuilt from any surviving replica (they are
  // identical copies of the index + bloom block).
  {
    std::string meta_block;
    bool fetched = false;
    for (int r = 0; r < static_cast<int>(updated.meta_replicas.size()); r++) {
      lsm::BlockLocation& loc = updated.meta_replicas[r];
      if (!IsDead(dead, loc.stoc_id)) {
        continue;
      }
      outcome.degraded++;
      if (!fetched) {
        std::vector<stoc::GatherRead::Target> survivors;
        for (const lsm::BlockLocation& other : updated.meta_replicas) {
          if (!IsDead(dead, other.stoc_id)) {
            survivors.push_back({other.stoc_id, other.file_id});
          }
        }
        if (survivors.empty() ||
            !client_->ReadReplicated(survivors, 0, 0, &meta_block).ok()) {
          skipped = true;
          break;
        }
        fetched = true;
      }
      std::vector<rdma::NodeId> exclude;
      for (const lsm::BlockLocation& other : updated.meta_replicas) {
        exclude.push_back(other.stoc_id);
      }
      rdma::NodeId target = PickTarget(candidates, exclude);
      if (target < 0 || !write_piece(target, loc.file_id, meta_block)) {
        skipped = true;
        continue;
      }
      loc = {target, loc.file_id};
      repaired++;
    }
  }

  // Parity: recomputed as the XOR of all data fragments, zero-padded to
  // the longest (exactly how the placer built it).
  if (updated.parity.valid() && IsDead(dead, updated.parity.stoc_id)) {
    outcome.degraded++;
    uint64_t max_frag = 0;
    for (uint64_t fs : updated.fragment_sizes) {
      max_frag = std::max(max_frag, fs);
    }
    std::string parity(max_frag, '\0');
    bool ok = true;
    for (int f = 0; f < static_cast<int>(updated.fragments.size()); f++) {
      std::string data;
      if (!FetchFragment(updated, f, &data).ok()) {
        ok = false;
        break;
      }
      for (size_t j = 0; j < data.size(); j++) {
        parity[j] ^= data[j];
      }
    }
    std::vector<rdma::NodeId> exclude;
    for (const auto& replicas : updated.fragments) {
      for (const lsm::BlockLocation& other : replicas) {
        exclude.push_back(other.stoc_id);
      }
    }
    rdma::NodeId target = ok ? PickTarget(candidates, exclude) : -1;
    if (target < 0 && ok) {
      // Co-locating parity with a fragment beats leaving it lost.
      target = PickTarget(candidates, {});
    }
    if (!ok || target < 0 ||
        !write_piece(target, updated.parity.file_id, parity)) {
      skipped = true;
    } else {
      updated.parity = {target, updated.parity.file_id};
      repaired++;
    }
  }

  if (repaired == 0) {
    return outcome;
  }
  Status s = engine->SwapFileMeta(updated);
  if (!s.ok()) {
    // Compaction holds the file (Busy) or already retired it (NotFound):
    // roll the fresh blocks back and let the next scan decide.
    for (const auto& [stoc, file_id] : written) {
      client_->DeleteFile(stoc, file_id, false);
    }
    return outcome;
  }
  outcome.repaired = repaired;
  repaired_fragments_.fetch_add(repaired, std::memory_order_relaxed);
  repaired_bytes_.fetch_add(bytes_written, std::memory_order_relaxed);
  if (skipped) {
    NOVA_WARN("repair: file %llu partially repaired (%d of %d pieces)",
              (unsigned long long)updated.number, repaired, outcome.degraded);
  }
  return outcome;
}

}  // namespace ltc
}  // namespace nova
