#include "ltc/ltc_server.h"

#include <chrono>

namespace nova {
namespace ltc {

LtcServer::LtcServer(rdma::RdmaFabric* fabric,
                     const LtcServerOptions& options)
    : fabric_(fabric), options_(options) {
  throttle_ = std::make_unique<sim::CpuThrottle>(options_.cpu_rate_us_per_sec);
  endpoint_ = std::make_unique<rdma::RpcEndpoint>(
      fabric_, options_.node, options_.num_xchg_threads, throttle_.get());
  endpoint_->set_request_handler(
      [](rdma::NodeId, uint64_t, const Slice&) {});
  stoc_client_ = std::make_unique<stoc::StocClient>(endpoint_.get());
  stoc::ReadPolicy read_policy = stoc_client_->read_policy();
  read_policy.replica_d = std::max(1, options_.read_replica_d);
  read_policy.hedge = options_.read_hedging;
  stoc_client_->set_read_policy(read_policy);
  if (options_.block_cache_bytes > 0) {
    block_cache_.reset(NewShardedLRUCache(options_.block_cache_bytes,
                                          /*shard_bits=*/4,
                                          options_.cache_hot_fraction));
  }
  if (options_.compressed_cache_bytes > 0) {
    // Plain LRU: the compressed tier is already the demotion target, so
    // no two-queue split inside it.
    compressed_cache_.reset(NewShardedLRUCache(
        options_.compressed_cache_bytes, /*shard_bits=*/4,
        /*hot_fraction=*/1.0));
  }
  flush_pool_ = std::make_unique<ThreadPool>("ltc-flush",
                                             options_.num_flush_threads);
  compaction_pool_ = std::make_unique<ThreadPool>(
      "ltc-compaction", options_.num_compaction_threads);
  repair_manager_ = std::make_unique<RepairManager>(
      stoc_client_.get(), [this] { return ranges(); }, options_.repair);
}

LtcServer::~LtcServer() { Stop(); }

void LtcServer::Start() {
  if (running_.exchange(true)) {
    return;
  }
  fabric_->AddNode(options_.node);
  endpoint_->Start();
  maintenance_thread_ = std::thread([this] { MaintenanceLoop(); });
  repair_manager_->Start();
}

void LtcServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  if (maintenance_thread_.joinable()) {
    maintenance_thread_.join();
  }
  // Repair must stop before the ranges and pools it scans go away.
  repair_manager_->Stop();
  flush_pool_->Shutdown();
  compaction_pool_->Shutdown();
  endpoint_->Stop();
}

void LtcServer::MaintenanceLoop() {
  while (running_.load(std::memory_order_relaxed)) {
    {
      std::lock_guard<std::mutex> l(mu_);
      for (auto& [id, engine] : ranges_) {
        engine->MaintenanceTick();
      }
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(options_.maintenance_interval_us));
  }
}

RangeEngine* LtcServer::AddRange(const RangeEngineOptions& options,
                                 const std::vector<rdma::NodeId>& stocs) {
  RangeEngine* engine = AddRangeForRecovery(options, stocs);
  engine->Bootstrap();
  return engine;
}

RangeEngine* LtcServer::AddRangeForRecovery(
    const RangeEngineOptions& options,
    const std::vector<rdma::NodeId>& stocs) {
  RangeEngineOptions opt = options;
  if (opt.readahead_blocks == 0) {
    opt.readahead_blocks = options_.readahead_blocks;
  }
  if (opt.compaction_readahead_blocks == 0) {
    opt.compaction_readahead_blocks = options_.compaction_readahead_blocks;
  }
  if (opt.max_compaction_jobs == 0) {
    opt.max_compaction_jobs = options_.max_compaction_jobs;
  }
  if (opt.compression_codec == 0) {
    opt.compression_codec = options_.compression_codec;
  }
  auto engine = std::make_unique<RangeEngine>(
      opt, stoc_client_.get(), stocs, throttle_.get(),
      flush_pool_.get(), compaction_pool_.get(), block_cache_.get(),
      compressed_cache_.get());
  RangeEngine* ptr = engine.get();
  std::lock_guard<std::mutex> l(mu_);
  ranges_[options.range_id] = std::move(engine);
  return ptr;
}

RangeEngine* LtcServer::DetachRange(uint32_t range_id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = ranges_.find(range_id);
  if (it == ranges_.end()) {
    return nullptr;
  }
  RangeEngine* engine = it->second.get();
  retired_ranges_.push_back(std::move(it->second));
  ranges_.erase(it);
  return engine;
}

RangeEngine* LtcServer::GetRange(uint32_t range_id) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = ranges_.find(range_id);
  return it == ranges_.end() ? nullptr : it->second.get();
}

std::vector<RangeEngine*> LtcServer::ranges() {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<RangeEngine*> out;
  out.reserve(ranges_.size());
  for (auto& [id, engine] : ranges_) {
    out.push_back(engine.get());
  }
  return out;
}

RangeEngine* LtcServer::RouteKey(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  for (auto& [id, engine] : ranges_) {
    const RangeEngineOptions& opt = engine->options();
    bool ge_lower = opt.lower.empty() || key.compare(opt.lower) >= 0;
    bool lt_upper = opt.upper.empty() || key.compare(opt.upper) < 0;
    if (ge_lower && lt_upper) {
      return engine.get();
    }
  }
  return nullptr;
}

Status LtcServer::Put(const Slice& key, const Slice& value) {
  RangeEngine* engine = RouteKey(key);
  if (engine == nullptr) {
    return Status::InvalidArgument("no range for key at this LTC");
  }
  return engine->Put(key, value);
}

Status LtcServer::Get(const Slice& key, std::string* value) {
  RangeEngine* engine = RouteKey(key);
  if (engine == nullptr) {
    return Status::InvalidArgument("no range for key at this LTC");
  }
  return engine->Get(key, value);
}

Status LtcServer::Delete(const Slice& key) {
  RangeEngine* engine = RouteKey(key);
  if (engine == nullptr) {
    return Status::InvalidArgument("no range for key at this LTC");
  }
  return engine->Delete(key);
}

Status LtcServer::Scan(
    const Slice& start_key, int num_records,
    std::vector<std::pair<std::string, std::string>>* out) {
  RangeEngine* engine = RouteKey(start_key);
  if (engine == nullptr) {
    return Status::InvalidArgument("no range for key at this LTC");
  }
  Status s = engine->Scan(start_key, num_records, out);
  // A scan spanning two application ranges continues in the next range
  // (read committed across ranges, Section 8.1).
  while (s.ok() && static_cast<int>(out->size()) < num_records) {
    const std::string& upper = engine->options().upper;
    if (upper.empty()) {
      break;
    }
    engine = RouteKey(upper);
    if (engine == nullptr) {
      break;
    }
    // num_records is the *total* target: Scan appends until out holds it.
    s = engine->Scan(upper, num_records, out);
  }
  return s;
}

RangeStats LtcServer::TotalStats() {
  RangeStats total;
  for (RangeEngine* engine : ranges()) {
    total += engine->stats();
  }
  if (block_cache_ != nullptr) {
    // Ranges sharing the node cache report zero above (see RangeStats);
    // the shared cache is accounted once here.
    total.block_cache_hits += block_cache_->hits();
    total.block_cache_misses += block_cache_->misses();
    total.block_cache_bytes += block_cache_->TotalCharge();
  }
  if (compressed_cache_ != nullptr) {
    total.block_cache_compressed_hits += compressed_cache_->hits();
    total.block_cache_compressed_misses += compressed_cache_->misses();
    total.block_cache_compressed_bytes += compressed_cache_->TotalCharge();
  }
  // The StoC client (and its read-path replica selection) is likewise
  // shared across this LTC's ranges: counted once, node-wide.
  total.pod_reads += stoc_client_->pod_reads();
  total.hedged_issued += stoc_client_->hedged_issued();
  total.hedged_won += stoc_client_->hedged_won();
  total.bytes_over_wire +=
      stoc_client_->bytes_sent() + stoc_client_->bytes_received();
  RepairStats repair = repair_manager_->stats();
  total.degraded_fragments += repair.degraded_fragments;
  total.repaired_fragments += repair.repaired_fragments;
  total.repaired_bytes += repair.repaired_bytes;
  total.repair_us += repair.repair_us;
  return total;
}

}  // namespace ltc
}  // namespace nova
