// CompactionScheduler: decides where each compaction job runs (paper
// Section 4.3 "Offloading compactions to StoCs"). The seed implementation
// offloaded round-robin with no feedback: a StoC already saturated with
// jobs kept receiving more, and a failed offload silently dropped the job
// until the picker rediscovered it. The scheduler instead tracks in-flight
// jobs per StoC, offloads to the least-loaded StoC under a per-StoC bound
// (beyond the bound the LTC compacts locally rather than queue behind a
// busy StoC), and retries any failed offload locally so a job admitted to
// the scheduler always completes exactly once.
#ifndef NOVA_LTC_COMPACTION_SCHEDULER_H_
#define NOVA_LTC_COMPACTION_SCHEDULER_H_

#include <map>
#include <mutex>
#include <vector>

#include "lsm/compaction.h"
#include "stoc/stoc_client.h"

namespace nova {
namespace ltc {

struct CompactionSchedulerOptions {
  /// Offload at all? When false every job runs on the LTC.
  bool offload = false;
  /// In-flight jobs per StoC before the scheduler stops offloading there.
  int max_jobs_per_stoc = 2;
};

class CompactionScheduler {
 public:
  struct Stats {
    uint64_t offloads = 0;          // jobs completed on a StoC
    uint64_t offload_failures = 0;  // offload RPCs that failed
    uint64_t local_fallbacks = 0;   // failed offloads retried locally
    uint64_t local_runs = 0;        // jobs run locally (incl. fallbacks)
  };

  CompactionScheduler(stoc::StocClient* client,
                      std::vector<rdma::NodeId> stocs,
                      const CompactionSchedulerOptions& options);

  CompactionScheduler(const CompactionScheduler&) = delete;
  CompactionScheduler& operator=(const CompactionScheduler&) = delete;

  /// Run the job to completion: offload to the least-loaded StoC when
  /// enabled and one is under the bound, otherwise execute on `local`.
  /// A failed offload (RPC error, empty response from a StoC whose
  /// handler failed, or an undeserializable result) falls back to
  /// `local` — the job is never dropped. *offloaded reports where the
  /// successful run happened.
  Status Run(const lsm::CompactionJob& job, lsm::CompactionExecutor* local,
             lsm::CompactionResult* result, bool* offloaded);

  /// Elasticity: replace the candidate StoC set.
  void UpdateStocs(const std::vector<rdma::NodeId>& stocs);

  Stats stats() const;
  /// In-flight offloaded jobs on one StoC (tests).
  int inflight(rdma::NodeId stoc) const;

 private:
  /// Reserve a slot on the least-loaded StoC; false = run locally.
  bool Acquire(rdma::NodeId* target);
  void Release(rdma::NodeId target);

  stoc::StocClient* client_;
  CompactionSchedulerOptions options_;
  mutable std::mutex mu_;
  std::vector<rdma::NodeId> stocs_;
  std::map<rdma::NodeId, int> inflight_;
  Stats stats_;
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_COMPACTION_SCHEDULER_H_
