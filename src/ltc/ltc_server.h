// LtcServer: one LSM-tree Component node hosting ω ranges (paper
// Section 3). Client worker threads call Put/Get/Scan/Delete, which route
// by key to the owning RangeEngine; a maintenance thread drives every
// range's reorganizations, flush dispatch, and compaction scheduling; the
// shared flush/compaction pools mirror the paper's dedicated thread
// groups; the RPC endpoint's xchg threads carry all StoC traffic.
#ifndef NOVA_LTC_LTC_SERVER_H_
#define NOVA_LTC_LTC_SERVER_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ltc/range_engine.h"
#include "ltc/repair_manager.h"
#include "rdma/rpc.h"
#include "stoc/stoc_client.h"

namespace nova {
namespace ltc {

struct LtcServerOptions {
  rdma::NodeId node = 0;
  /// 0 = unlimited (unit tests); otherwise virtual CPU us/sec.
  double cpu_rate_us_per_sec = 0;
  int num_xchg_threads = 2;
  int num_flush_threads = 4;
  int num_compaction_threads = 4;
  int maintenance_interval_us = 1000;
  /// One data-block cache shared by all ranges on this LTC (StoC read
  /// path, charge-bounded sharded LRU). 0 = no data-block caching.
  size_t block_cache_bytes = 0;
  /// Compressed-block tier shared by all ranges: verbatim stored bytes
  /// kept after (or instead of) the uncompressed hot tier, served by
  /// decompressing in LTC memory rather than a StoC round-trip. 0 = no
  /// compressed tier.
  size_t compressed_cache_bytes = 0;
  /// Hot-tier fraction of block_cache_bytes for the two-queue
  /// scan-resistant admission policy (see NewShardedLRUCache); >= 1
  /// disables the split (classic LRU, the A/B baseline).
  double cache_hot_fraction = 0.75;
  /// Node-wide default for RangeEngineOptions::compression_codec: the
  /// codec SSTable data blocks are written with. 0 = unset — resolves to
  /// the built-in fast codec (kNovaLzCompression); -1 = store raw.
  int compression_codec = 0;
  /// Node-wide default for RangeEngineOptions::readahead_blocks; applied
  /// to every added range that leaves its own knob at 0 (unset).
  int readahead_blocks = 0;
  /// Node-wide default for RangeEngineOptions::compaction_readahead_blocks
  /// (compaction input-gather pipeline depth), same 0-means-unset scheme.
  int compaction_readahead_blocks = 0;
  /// Node-wide default for RangeEngineOptions::max_compaction_jobs
  /// (in-flight offloaded compactions per StoC).
  int max_compaction_jobs = 0;
  /// Read-path power-of-d: replicas a multi-replica StoC read fans out
  /// to, first success winning (paper §4/§6 component selection applied
  /// to reads). Node-wide default; per-range knobs may override.
  int read_replica_d = 2;
  /// Hedge straggling StoC reads to the next-least-loaded replica after
  /// a p99-derived delay.
  bool read_hedging = true;
  /// Automatic re-replication of fragments lost to dead StoCs (ISSUE 9).
  /// Only meaningful once the cluster wires a Membership into the StoC
  /// client; without one the repair scan is a no-op.
  RepairOptions repair;
};

class LtcServer {
 public:
  LtcServer(rdma::RdmaFabric* fabric, const LtcServerOptions& options);
  ~LtcServer();

  LtcServer(const LtcServer&) = delete;
  LtcServer& operator=(const LtcServer&) = delete;

  void Start();
  void Stop();

  /// Create (and bootstrap) a range on this LTC. stocs is the set of
  /// StoCs the range may use.
  RangeEngine* AddRange(const RangeEngineOptions& options,
                        const std::vector<rdma::NodeId>& stocs);
  /// Create a range without bootstrapping (recovery / migration target).
  RangeEngine* AddRangeForRecovery(const RangeEngineOptions& options,
                                   const std::vector<rdma::NodeId>& stocs);
  /// Detach a range (migration source): it stops receiving requests from
  /// this server but stays alive (retired) so racing operations holding a
  /// pointer cannot use freed memory. Returns the detached engine.
  RangeEngine* DetachRange(uint32_t range_id);

  RangeEngine* GetRange(uint32_t range_id);
  std::vector<RangeEngine*> ranges();
  /// The range whose [lower, upper) contains key; nullptr if none here.
  RangeEngine* RouteKey(const Slice& key);

  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Scan(const Slice& start_key, int num_records,
              std::vector<std::pair<std::string, std::string>>* out);

  rdma::NodeId node() const { return options_.node; }
  sim::CpuThrottle* throttle() { return throttle_.get(); }
  stoc::StocClient* stoc_client() { return stoc_client_.get(); }
  rdma::RpcEndpoint* endpoint() { return endpoint_.get(); }
  ThreadPool* flush_pool() { return flush_pool_.get(); }
  ThreadPool* compaction_pool() { return compaction_pool_.get(); }
  /// Node-wide data-block cache (nullptr when block_cache_bytes == 0).
  Cache* block_cache() { return block_cache_.get(); }
  /// Node-wide compressed tier (nullptr when compressed_cache_bytes == 0).
  Cache* compressed_cache() { return compressed_cache_.get(); }
  RepairManager* repair_manager() { return repair_manager_.get(); }

  /// Aggregate stats over all ranges.
  RangeStats TotalStats();

 private:
  void MaintenanceLoop();

  rdma::RdmaFabric* fabric_;
  LtcServerOptions options_;
  std::unique_ptr<sim::CpuThrottle> throttle_;
  std::unique_ptr<rdma::RpcEndpoint> endpoint_;
  std::unique_ptr<stoc::StocClient> stoc_client_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<Cache> compressed_cache_;
  std::unique_ptr<ThreadPool> flush_pool_;
  std::unique_ptr<ThreadPool> compaction_pool_;
  std::unique_ptr<RepairManager> repair_manager_;

  std::mutex mu_;
  std::map<uint32_t, std::unique_ptr<RangeEngine>> ranges_;
  std::vector<std::unique_ptr<RangeEngine>> retired_ranges_;

  std::atomic<bool> running_{false};
  std::thread maintenance_thread_;
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_LTC_SERVER_H_
