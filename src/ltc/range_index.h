// The range index (paper Section 4.1.2, Figure 7): an ordered list of
// keyspace partitions, each listing the memtables and Level-0 SSTables
// whose key ranges overlap it. A scan binary-searches the partition
// containing its start key and merges only that partition's tables (plus
// higher levels) instead of every memtable and L0 SSTable. Drange
// reorganizations split partitions, which inherit their parent's entries.
#ifndef NOVA_LTC_RANGE_INDEX_H_
#define NOVA_LTC_RANGE_INDEX_H_

#include <cstdint>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "util/slice.h"

namespace nova {
namespace ltc {

class RangeIndex {
 public:
  /// Covers [lower, upper); empty upper = unbounded.
  RangeIndex(std::string lower, std::string upper);

  /// Register a memtable whose keys lie within [lo, hi) (its Drange's
  /// bounds; empty hi = unbounded).
  void AddMemtable(uint64_t mid, const std::string& lo, const std::string& hi);
  void RemoveMemtable(uint64_t mid);

  /// Register an L0 SSTable spanning [lo, hi] (inclusive largest key).
  void AddL0File(uint64_t number, const std::string& lo,
                 const std::string& hi);
  void RemoveL0File(uint64_t number);

  /// Split the partition containing boundary at it; both halves inherit
  /// the parent's entries.
  void SplitAt(const std::string& boundary);

  struct PartitionView {
    std::vector<uint64_t> memtables;
    std::vector<uint64_t> l0_files;
    std::string lower;
    std::string upper;  // empty = unbounded
    bool valid = false;
  };
  /// The partition containing key (or the first partition at/after it).
  PartitionView Collect(const Slice& key) const;

  size_t num_partitions() const;
  /// Approximate memory footprint (paper: 6 KB at its scale).
  size_t ApproximateBytes() const;

 private:
  struct Partition {
    std::string lower;
    std::string upper;
    std::set<uint64_t> memtables;
    std::set<uint64_t> l0_files;
  };

  bool Overlaps(const Partition& p, const std::string& lo,
                const std::string& hi_exclusive,
                bool hi_inclusive_mode) const;

  mutable std::shared_mutex mu_;
  std::vector<Partition> partitions_;  // sorted by lower bound
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_RANGE_INDEX_H_
