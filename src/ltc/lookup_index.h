// The lookup index (paper Section 4.1.1, Challenge 2): key -> unique
// memtable id (mid), plus the indirect MIDToTable map from mid to either a
// live memtable or the Level-0 SSTable its contents were flushed into.
// A get that hits the index searches exactly one memtable or one L0
// SSTable instead of all of them.
#ifndef NOVA_LTC_LOOKUP_INDEX_H_
#define NOVA_LTC_LOOKUP_INDEX_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>

#include "mem/memtable.h"

namespace nova {
namespace ltc {

class LookupIndex {
 public:
  static constexpr int kShards = 16;

  /// Point key at mid. seq is the sequence number of the write; stale
  /// racers (lower seq) never overwrite a newer mapping.
  void Update(const Slice& key, uint64_t mid, uint64_t seq);
  bool Lookup(const Slice& key, uint64_t* mid) const;
  /// Like Lookup but also exposes the recorded sequence (tests/debug).
  bool LookupWithSeq(const Slice& key, uint64_t* mid, uint64_t* seq) const;
  /// Erase key only if it still maps to expected_mid (lazy cleanup).
  void EraseIf(const Slice& key, uint64_t expected_mid);
  /// Rewrite key -> new_mid only if its current mid is in old_mids (used
  /// when small memtables are merged into a new one, Section 4.2).
  void UpdateIfIn(const Slice& key, const std::set<uint64_t>& old_mids,
                  uint64_t new_mid);
  size_t size() const;
  /// Approximate memory footprint (paper reports 240 MB at its scale).
  size_t ApproximateBytes() const;

 private:
  struct Slot {
    uint64_t mid = 0;
    uint64_t seq = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Slot> map;
  };
  Shard& shard(const Slice& key) const;

  mutable Shard shards_[kShards];
};

/// MIDToTable: mid -> memtable pointer or L0 SSTable file number. Flushing
/// a memtable atomically swaps its entry from the pointer to the file
/// number; compacting the L0 file into L1 erases the entry.
class MidTable {
 public:
  struct Entry {
    MemTableRef memtable;     // set while the data lives in a memtable
    uint64_t file_number = 0;  // set after the flush
    bool is_file = false;
  };

  void SetMemtable(uint64_t mid, MemTableRef mem);
  /// Atomic flush handoff: the mid now resolves to the L0 file.
  void SetFile(uint64_t mid, uint64_t file_number);
  bool Get(uint64_t mid, Entry* entry) const;
  void Erase(uint64_t mid);
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> map_;
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_LOOKUP_INDEX_H_
