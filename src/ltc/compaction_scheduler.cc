#include "ltc/compaction_scheduler.h"

#include <algorithm>

#include "util/logging.h"

namespace nova {
namespace ltc {

CompactionScheduler::CompactionScheduler(
    stoc::StocClient* client, std::vector<rdma::NodeId> stocs,
    const CompactionSchedulerOptions& options)
    : client_(client), options_(options), stocs_(std::move(stocs)) {}

bool CompactionScheduler::Acquire(rdma::NodeId* target) {
  if (!options_.offload) {
    return false;
  }
  std::lock_guard<std::mutex> lk(mu_);
  bool found = false;
  int best_load = options_.max_jobs_per_stoc;
  for (rdma::NodeId stoc : stocs_) {
    // Membership exclusion: never offload to a suspect/dead StoC — the
    // job would burn its whole RPC deadline before falling back locally.
    if (!client_->IsRoutable(stoc)) {
      continue;
    }
    int load = 0;
    auto it = inflight_.find(stoc);
    if (it != inflight_.end()) {
      load = it->second;
    }
    if (load < best_load) {
      best_load = load;
      *target = stoc;
      found = true;
    }
  }
  if (found) {
    inflight_[*target]++;
  }
  return found;
}

void CompactionScheduler::Release(rdma::NodeId target) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = inflight_.find(target);
  if (it != inflight_.end() && --it->second <= 0) {
    inflight_.erase(it);
  }
}

Status CompactionScheduler::Run(const lsm::CompactionJob& job,
                                lsm::CompactionExecutor* local,
                                lsm::CompactionResult* result,
                                bool* offloaded) {
  *offloaded = false;
  rdma::NodeId target;
  if (Acquire(&target)) {
    std::string resp;
    Status s = client_->Compaction(target, job.Serialize(), &resp);
    if (s.ok() && resp.empty()) {
      // The StoC accepted the RPC but its handler failed (missing
      // deserialized inputs, no compaction support, ...).
      s = Status::IOError("StoC returned no compaction result");
    }
    if (s.ok()) {
      s = result->Deserialize(resp);
    }
    Release(target);
    std::lock_guard<std::mutex> lk(mu_);
    if (s.ok()) {
      stats_.offloads++;
      *offloaded = true;
      return s;
    }
    stats_.offload_failures++;
    stats_.local_fallbacks++;
    NOVA_WARN("compaction offload to stoc %d failed (%s); retrying locally",
              static_cast<int>(target), s.ToString().c_str());
    *result = lsm::CompactionResult();
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    stats_.local_runs++;
  }
  return local->Run(job, result);
}

void CompactionScheduler::UpdateStocs(const std::vector<rdma::NodeId>& stocs) {
  std::lock_guard<std::mutex> lk(mu_);
  stocs_ = stocs;
}

CompactionScheduler::Stats CompactionScheduler::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

int CompactionScheduler::inflight(rdma::NodeId stoc) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = inflight_.find(stoc);
  return it == inflight_.end() ? 0 : it->second;
}

}  // namespace ltc
}  // namespace nova
