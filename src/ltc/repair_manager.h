// RepairManager (ISSUE 9 tentpole, layer 2): automatic re-replication.
//
// A background scan walks every hosted range's current Version looking for
// fragment / metadata / parity replicas placed on StoCs the membership has
// declared dead. Each lost piece is rebuilt from the surviving copies
// (replica read, or a parity XOR gather when every replica of a data
// fragment is gone), written to a healthy StoC under a bounded
// repair-bandwidth budget, and the file's placement metadata is swapped
// atomically through RangeEngine::SwapFileMeta — so post-repair reads take
// the normal (non-parity) path again without any operator action.
//
// The scan is driven by the death verdict only (Membership::DeadNodes):
// suspect nodes may still come back, and re-replicating on every blip
// would waste the bandwidth budget the verdict exists to protect.
#ifndef NOVA_LTC_REPAIR_MANAGER_H_
#define NOVA_LTC_REPAIR_MANAGER_H_

#include <atomic>
#include <functional>
#include <thread>
#include <vector>

#include "ltc/range_engine.h"
#include "stoc/stoc_client.h"

namespace nova {
namespace ltc {

struct RepairOptions {
  bool enabled = true;
  /// Token-bucket cap on repair write bytes per second. 0 = unlimited.
  /// Repair competes with foreground traffic for StoC disk bandwidth;
  /// the budget keeps MTTR bounded without starving client writes.
  uint64_t bandwidth_bytes_per_sec = 0;
  /// How often the scan thread looks for degraded files.
  int scan_interval_ms = 50;
};

struct RepairStats {
  /// Gauge: lost replicas known at the last scan that are not yet
  /// re-replicated (0 = fully healed).
  uint64_t degraded_fragments = 0;
  uint64_t repaired_fragments = 0;
  uint64_t repaired_bytes = 0;
  /// Measured repair window: cumulative wall time from a death verdict
  /// first exposing degraded pieces until a scan found none remaining
  /// (what bench_table02_mttf reports next to the analytical MTTF).
  uint64_t repair_us = 0;
};

class RepairManager {
 public:
  /// engines() is sampled on every scan so ranges added, migrated, or
  /// detached after construction are picked up; the membership is read
  /// from the client (set by the cluster after the coordinator exists).
  RepairManager(stoc::StocClient* client,
                std::function<std::vector<RangeEngine*>()> engines,
                const RepairOptions& options);
  ~RepairManager();

  RepairManager(const RepairManager&) = delete;
  RepairManager& operator=(const RepairManager&) = delete;

  void Start();
  void Stop();

  /// One synchronous scan-and-repair pass (the thread loop body; exposed
  /// so tests and benchmarks can drive repair deterministically).
  void ScanOnce();

  RepairStats stats() const;

 private:
  struct FileRepairOutcome {
    int degraded = 0;  // lost pieces found in this file
    int repaired = 0;  // pieces re-replicated and swapped in
  };

  void Loop();
  /// Repair every lost piece of one file; returns what it found/fixed.
  FileRepairOutcome RepairFile(RangeEngine* engine,
                               const lsm::FileMetaRef& file,
                               const std::vector<rdma::NodeId>& dead);
  /// Read the full bytes of data fragment `fragment`, from a surviving
  /// replica if any, else by parity reconstruction.
  Status FetchFragment(const lsm::FileMetaData& meta, int fragment,
                       std::string* out);
  /// Pick a healthy target StoC not in `exclude`; -1 if none.
  rdma::NodeId PickTarget(const std::vector<rdma::NodeId>& candidates,
                          const std::vector<rdma::NodeId>& exclude);
  /// Block until the token bucket covers `bytes` (or stopping).
  bool WaitForBudget(uint64_t bytes);

  stoc::StocClient* client_;
  std::function<std::vector<RangeEngine*>()> engines_;
  RepairOptions options_;

  std::atomic<bool> running_{false};
  std::thread thread_;

  // Token bucket (only touched by the scan thread / ScanOnce callers).
  double budget_bytes_ = 0;
  std::chrono::steady_clock::time_point budget_refilled_{};

  // Measured repair window: opened when a scan first sees degraded
  // pieces, closed by the first scan that sees none.
  bool window_open_ = false;
  std::chrono::steady_clock::time_point window_start_{};

  std::atomic<uint64_t> degraded_fragments_{0};
  std::atomic<uint64_t> repaired_fragments_{0};
  std::atomic<uint64_t> repaired_bytes_{0};
  std::atomic<uint64_t> repair_us_{0};
  uint64_t rr_seed_ = 0x5eedbeef;
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_REPAIR_MANAGER_H_
