// RangeEngine: one application range's LSM-tree at an LTC (paper
// Section 4). It ties together every Nova-LSM mechanism:
//   * θ Dranges, each with an active memtable; minor/major reorganizations
//     rotate affected actives and bump the generation id;
//   * the lookup index (key -> memtable | L0 SSTable via MIDToTable) and
//     the range index (keyspace partitions -> overlapping tables);
//   * flushing with the small-memtable merge policy (< ~100 unique keys
//     are re-logged into a fresh memtable instead of hitting disk);
//   * write stalls when all δ memtables are in use or L0 exceeds its
//     limit (Challenge 1), with stall time accounted for the benchmarks;
//   * disjoint parallel L0 compactions split at Drange boundaries,
//     executed locally or offloaded to StoCs round-robin;
//   * crash recovery from the replicated MANIFEST + log records, and
//     range migration between LTCs (Sections 4.5, 8.2.6, 9).
//
// Thread model: client worker threads call Put/Get/Scan/Delete; the
// owning LtcServer drives MaintenanceTick() from its maintenance thread
// and provides shared flush/compaction pools.
#ifndef NOVA_LTC_RANGE_ENGINE_H_
#define NOVA_LTC_RANGE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "logc/log_client.h"
#include "lsm/compaction.h"
#include "lsm/table_io.h"
#include "ltc/compaction_scheduler.h"
#include "lsm/version.h"
#include "ltc/drange.h"
#include "ltc/lookup_index.h"
#include "ltc/range_index.h"
#include "mem/memtable.h"
#include "sim/cpu_throttle.h"
#include "util/thread_pool.h"

namespace nova {
namespace ltc {

struct RangeEngineOptions {
  uint32_t range_id = 0;
  std::string lower;
  std::string upper;  // empty = unbounded

  DrangeOptions drange;
  /// false => the paper's Nova-LSM-R ablation: writes pick a random
  /// active memtable, L0 SSTables span the whole keyspace.
  bool enable_dranges = true;
  bool enable_lookup_index = true;
  bool enable_range_index = true;
  /// Merge immutable memtables with < unique_key_threshold unique keys
  /// instead of flushing them (Section 4.2; off in Nova-LSM-R/S).
  bool enable_memtable_merge = true;
  int unique_key_threshold = 100;

  size_t memtable_size = 256 << 10;  // τ
  int max_memtables = 32;            // δ
  /// Active memtables when Dranges are disabled (Nova-R); with Dranges,
  /// the number of Dranges (θ, plus duplicates) governs actives.
  int num_active_memtables = 8;  // α

  lsm::LsmOptions lsm;
  logc::LogOptions log;
  /// Data-block cache budget for the StoC read path when this engine runs
  /// standalone (no cache passed to the constructor). 0 = no data-block
  /// caching, every read fetches from a StoC. Engines hosted by an
  /// LtcServer normally share one node-wide cache instead
  /// (LtcServerOptions::block_cache_bytes).
  size_t block_cache_bytes = 0;
  /// Compressed-block cache budget (the second tier: verbatim stored
  /// bytes, served by decompressing in LTC memory instead of a StoC
  /// round-trip) when this engine runs standalone. 0 = no compressed
  /// tier. LtcServer-hosted engines share the node-wide tier instead
  /// (LtcServerOptions::compressed_cache_bytes).
  size_t compressed_cache_bytes = 0;
  /// Codec data blocks are written with (CompressionCodec id). 0 = unset —
  /// LtcServer-hosted engines inherit LtcServerOptions::compression_codec,
  /// standalone engines default to kNovaLzCompression; -1 = force raw.
  int compression_codec = 0;
  /// Hot-tier fraction of a privately owned block cache (see
  /// NewShardedLRUCache); >= 1 disables the two-queue split.
  double cache_hot_fraction = 0.75;
  /// Scan readahead: how many data blocks an SSTable scan iterator keeps
  /// in flight past its position (prefetched into the block cache while
  /// the current block drains). 0 = unset — LtcServer-hosted engines
  /// inherit LtcServerOptions::readahead_blocks; -1 = force off.
  int readahead_blocks = 0;
  uint64_t max_sstable_size = 512 << 10;
  int max_parallel_compactions = 4;
  /// Offload compaction jobs to StoCs (Section 4.3); the scheduler picks
  /// the least-loaded StoC and falls back to local execution.
  bool offload_compaction = false;
  /// In-flight offloaded jobs per StoC before new jobs run locally
  /// instead. 0 = unset — LtcServer-hosted engines inherit
  /// LtcServerOptions::max_compaction_jobs.
  int max_compaction_jobs = 0;
  /// Compaction input-gather pipeline depth: data blocks each input
  /// stream keeps in flight while the merge drains the current one
  /// (travels with offloaded jobs). 0 = unset — inherit
  /// LtcServerOptions::compaction_readahead_blocks; -1 = force serial.
  int compaction_readahead_blocks = 0;
  /// Replicas of the MANIFEST file.
  int manifest_replicas = 1;
  /// Read-path power-of-d: replicas a multi-replica StoC read fans out to
  /// (first success wins). 0 = unset — LtcServer-hosted engines inherit
  /// LtcServerOptions::read_replica_d; -1 = force single-replica.
  int read_replica_d = 0;
  /// Speculative hedging of straggling StoC reads. 0 = unset — inherit
  /// LtcServerOptions::read_hedging; 1 = on; -1 = force off.
  int read_hedging = 0;
};

struct RangeStats {
  uint64_t puts = 0;
  uint64_t gets = 0;
  uint64_t scans = 0;
  uint64_t stall_us = 0;
  uint64_t stall_events = 0;
  uint64_t flushes = 0;
  uint64_t memtable_merges = 0;
  uint64_t compactions = 0;
  uint64_t bytes_flushed = 0;
  uint64_t lookup_index_hits = 0;
  uint64_t lookup_index_misses = 0;
  /// Data-block cache counters. Filled from the engine's privately owned
  /// cache; when ranges share an LTC-wide cache the per-range numbers stay
  /// zero and LtcServer::TotalStats() reports the shared cache once.
  uint64_t block_cache_hits = 0;
  uint64_t block_cache_misses = 0;
  uint64_t block_cache_bytes = 0;
  /// Compressed-tier counters (same ownership rule as the hot tier).
  uint64_t block_cache_compressed_hits = 0;
  uint64_t block_cache_compressed_misses = 0;
  uint64_t block_cache_compressed_bytes = 0;
  /// Compression accounting: stored (possibly compressed) vs raw bytes of
  /// every SSTable this range built (flushes + compactions, including
  /// offloaded ones). raw/stored = the achieved compression ratio.
  uint64_t sstable_stored_bytes = 0;
  uint64_t sstable_raw_bytes = 0;
  /// StoC wire traffic (StocClient byte counters; shared-client rule as
  /// pod_reads — filled once by LtcServer::TotalStats).
  uint64_t bytes_over_wire = 0;
  /// Scan-readahead counters: prefetches issued and prefetches that
  /// served a block the scan then consumed.
  uint64_t readahead_issued = 0;
  uint64_t readahead_hits = 0;
  /// Compaction pipeline accounting (includes offloaded jobs, which
  /// report their numbers back in the CompactionResult): prefetch waves
  /// issued by input gathers, input/output bytes moved, and total time
  /// jobs spent queued between scheduling and execution start.
  uint64_t compaction_gather_waves = 0;
  uint64_t compaction_bytes_read = 0;
  uint64_t compaction_bytes_written = 0;
  uint64_t compaction_queue_us = 0;
  /// Scheduler outcomes: jobs completed on a StoC, offload attempts that
  /// failed, and failed offloads retried (successfully or not) locally.
  uint64_t compaction_offloads = 0;
  uint64_t compaction_offload_failures = 0;
  uint64_t compaction_local_fallbacks = 0;
  /// Read-path replica selection (StocClient counters). Like the shared
  /// block cache, the client is usually shared across an LTC's ranges:
  /// per-range numbers stay zero and LtcServer::TotalStats() reports the
  /// shared client once.
  uint64_t pod_reads = 0;
  uint64_t hedged_issued = 0;
  uint64_t hedged_won = 0;
  /// Repair accounting (ISSUE 9; filled by ltc::RepairManager through
  /// LtcServer::TotalStats — per-range numbers stay zero).
  /// degraded_fragments is a gauge: fragment/parity/meta replicas whose
  /// StoC is currently dead and which have not been re-replicated yet.
  uint64_t degraded_fragments = 0;
  uint64_t repaired_fragments = 0;
  uint64_t repaired_bytes = 0;
  /// Wall time from a death verdict to the scan that found the node's
  /// files fully re-replicated (the measured repair window).
  uint64_t repair_us = 0;

  /// The single roll-up used by LtcServer and Cluster TotalStats — new
  /// fields only need to be added here.
  RangeStats& operator+=(const RangeStats& o) {
    puts += o.puts;
    gets += o.gets;
    scans += o.scans;
    stall_us += o.stall_us;
    stall_events += o.stall_events;
    flushes += o.flushes;
    memtable_merges += o.memtable_merges;
    compactions += o.compactions;
    bytes_flushed += o.bytes_flushed;
    lookup_index_hits += o.lookup_index_hits;
    lookup_index_misses += o.lookup_index_misses;
    block_cache_hits += o.block_cache_hits;
    block_cache_misses += o.block_cache_misses;
    block_cache_bytes += o.block_cache_bytes;
    block_cache_compressed_hits += o.block_cache_compressed_hits;
    block_cache_compressed_misses += o.block_cache_compressed_misses;
    block_cache_compressed_bytes += o.block_cache_compressed_bytes;
    sstable_stored_bytes += o.sstable_stored_bytes;
    sstable_raw_bytes += o.sstable_raw_bytes;
    bytes_over_wire += o.bytes_over_wire;
    readahead_issued += o.readahead_issued;
    readahead_hits += o.readahead_hits;
    compaction_gather_waves += o.compaction_gather_waves;
    compaction_bytes_read += o.compaction_bytes_read;
    compaction_bytes_written += o.compaction_bytes_written;
    compaction_queue_us += o.compaction_queue_us;
    compaction_offloads += o.compaction_offloads;
    compaction_offload_failures += o.compaction_offload_failures;
    compaction_local_fallbacks += o.compaction_local_fallbacks;
    pod_reads += o.pod_reads;
    hedged_issued += o.hedged_issued;
    hedged_won += o.hedged_won;
    degraded_fragments += o.degraded_fragments;
    repaired_fragments += o.repaired_fragments;
    repaired_bytes += o.repaired_bytes;
    repair_us += o.repair_us;
    return *this;
  }
};

class RangeEngine {
 public:
  /// stocs: the StoCs this range may use (log files, manifest, SSTables —
  /// the placer's list governs SSTable placement and may differ).
  /// block_cache (optional): node-wide data-block cache shared by every
  /// range on the LTC; when null and options.block_cache_bytes > 0 the
  /// engine creates a private one.
  /// compressed_cache (optional): node-wide compressed block tier; when
  /// null and options.compressed_cache_bytes > 0 the engine creates a
  /// private one.
  RangeEngine(const RangeEngineOptions& options, stoc::StocClient* client,
              const std::vector<rdma::NodeId>& stocs,
              sim::CpuThrottle* throttle, ThreadPool* flush_pool,
              ThreadPool* compaction_pool, Cache* block_cache = nullptr,
              Cache* compressed_cache = nullptr);
  ~RangeEngine();

  RangeEngine(const RangeEngine&) = delete;
  RangeEngine& operator=(const RangeEngine&) = delete;

  /// Create the initial active memtable(s). Call once before use (not
  /// needed when recovering/migrating into this engine).
  void Bootstrap();

  Status Put(const Slice& key, const Slice& value);
  Status Delete(const Slice& key);
  Status Get(const Slice& key, std::string* value);
  /// Appends records from start_key onward until *out holds num_records
  /// entries in total (so continuation across ranges composes) or this
  /// range's keyspace is exhausted.
  Status Scan(const Slice& start_key, int num_records,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Drive reorganizations, flush dispatch, and compaction scheduling.
  /// Non-blocking; called periodically by the LtcServer.
  void MaintenanceTick();

  /// Block until no flushes or compactions are in flight and nothing is
  /// queued (tests / orderly shutdown).
  void WaitForQuiescence(bool flush_all = false);

  /// Force every active memtable to rotate and flush (used by tests and
  /// graceful migration).
  void FlushAllMemtables();

  /// Stop accepting writes (reads keep working); used by migration so the
  /// extracted state cannot be invalidated by concurrent puts.
  void BeginDecommission();

  // --- Recovery & migration (Sections 4.5, 8.2.6) ---

  /// Serialize everything a destination LTC needs: version snapshot,
  /// Drange state, last sequence. Log records stay on the StoCs.
  std::string ExtractMigrationState();
  /// Install migrated metadata and rebuild memtables from log records
  /// using `recovery_threads` parallel workers.
  Status InstallFromMigrationState(const Slice& state, int recovery_threads);
  /// Full crash recovery: manifest replay + log replay.
  Status RecoverFromManifest(int recovery_threads);

  RangeStats stats() const;
  DrangeManager* dranges() { return drange_.get(); }
  lsm::VersionSet* versions() { return versions_.get(); }
  lsm::TableCache* table_cache() { return table_cache_.get(); }
  Cache* block_cache() { return block_cache_; }
  /// True if the current version references this SSTable number.
  bool IsFileNumberLive(uint64_t number);
  /// Atomically replace the placement metadata of a live SSTable (same
  /// file number, same key range — only BlockLocations change). Used by
  /// the repair manager after re-replicating fragments away from a dead
  /// StoC. Returns Busy if the file is being compacted (the caller
  /// retries on its next scan: the compaction either keeps the file,
  /// making the swap valid later, or retires it, making repair moot) and
  /// NotFound if the file is no longer live.
  Status SwapFileMeta(const lsm::FileMetaData& updated);
  LookupIndex* lookup_index() { return &lookup_index_; }
  RangeIndex* range_index() { return range_index_.get(); }
  lsm::SSTablePlacer* placer() { return placer_.get(); }
  CompactionScheduler* compaction_scheduler() { return scheduler_.get(); }
  const RangeEngineOptions& options() const { return options_; }
  int num_memtables();
  uint64_t l0_bytes() const { return l0_bytes_.load(); }
  /// For fault-injection tests: how many gets were served degraded.
  uint64_t degraded_gets() const { return degraded_gets_.load(); }

  /// Diagnostic: where does the lookup index say `key` lives, and what is
  /// the newest sequence actually present there (tests/debugging).
  std::string DebugLookupState(const Slice& key);
  /// Diagnostic: one-line snapshot of the background machinery (flush
  /// queue, in-flight work, memtable census) for stuck-state triage.
  std::string DebugMaintenanceState();
  /// Diagnostic: exhaustively locate the newest version of key.
  std::string DebugFindNewest(const Slice& key);

 private:
  struct DrangeMem {
    MemTableRef active;
  };

  MemTableRef NewMemTableLocked(int drange_id);
  /// Route a put; handles stalls and rotation. Returns the memtable.
  Status RouteAndAppend(SequenceNumber seq, ValueType type, const Slice& key,
                        const Slice& value);
  void RotateLocked(int drange_id, std::unique_lock<std::mutex>* lk);
  void FlushTask(MemTableRef mem);
  Status FlushToSSTable(const std::vector<MemTableRef>& mems, int drange_id,
                        uint32_t generation);
  /// Merge small memtables into a fresh one (re-logging its records).
  Status MergeSmallMemtables(const std::vector<MemTableRef>& mems,
                             int drange_id);
  void ScheduleCompactions();
  /// queue_us: time the job waited between scheduling and pool pickup.
  void RunCompaction(lsm::CompactionJob job, uint64_t queue_us);
  void ApplyCompactionResult(const lsm::CompactionJob& job,
                             const lsm::CompactionResult& result);
  void DeleteFileBlocks(const lsm::FileMetaData& meta);
  Status ManifestAppend(const Slice& record);
  Status ReadManifestRecords(std::vector<std::string>* records);
  lsm::FileMetaRef FindL0File(uint64_t number);
  static lsm::FileMetaRef FindL0FileIn(const lsm::VersionRef& version,
                                       uint64_t number);
  Status SearchLevels(const LookupKey& lkey, std::string* value,
                      SequenceNumber* seq_out = nullptr);
  Status RebuildFromLogs(int recovery_threads);
  void HandleReorg(const std::vector<int>& changed);

  RangeEngineOptions options_;
  stoc::StocClient* client_;
  std::vector<rdma::NodeId> stocs_;
  sim::CpuThrottle* throttle_;
  ThreadPool* flush_pool_;
  ThreadPool* compaction_pool_;

  InternalKeyComparator icmp_;
  std::unique_ptr<DrangeManager> drange_;
  std::unique_ptr<lsm::VersionSet> versions_;
  std::unique_ptr<Cache> owned_block_cache_;
  Cache* block_cache_ = nullptr;
  std::unique_ptr<Cache> owned_compressed_cache_;
  Cache* compressed_cache_ = nullptr;
  /// Resolved from options_.compression_codec (null = store raw).
  const Compressor* compressor_ = nullptr;
  std::unique_ptr<lsm::TableCache> table_cache_;
  std::unique_ptr<lsm::SSTablePlacer> placer_;
  std::unique_ptr<lsm::CompactionExecutor> executor_;
  std::unique_ptr<logc::LogClient> logc_;
  LookupIndex lookup_index_;
  MidTable mid_table_;
  std::unique_ptr<RangeIndex> range_index_;

  std::atomic<uint64_t> last_sequence_{0};
  std::atomic<uint64_t> next_mid_{1};
  std::atomic<uint64_t> l0_bytes_{0};

  // Memtable lifecycle. mu_ guards the maps below and rotation; individual
  // memtable writes use the memtable's own lock.
  std::mutex mu_;
  std::condition_variable stall_cv_;
  std::map<int, DrangeMem> actives_;              // by drange id
  /// Span each memtable is registered under in the range index; a put
  /// landing outside it (drange boundary moved between routing and
  /// rotation) expands the registration so scans never miss the key.
  std::map<uint64_t, std::pair<std::string, std::string>> mem_spans_;
  std::map<uint64_t, MemTableRef> all_memtables_;  // by mid
  std::vector<MemTableRef> flush_queue_;
  std::map<int, std::vector<uint64_t>> small_immutables_;  // drange -> mids
  int flushes_inflight_ = 0;

  // Compaction bookkeeping.
  std::mutex compaction_mu_;
  std::set<uint64_t> compacting_files_;
  /// Key-range hulls of in-flight compactions; a new job overlapping any
  /// hull is deferred so concurrent jobs cannot emit overlapping files
  /// into the same level (reorgs shift Drange boundaries over time, so
  /// L0 groups from different epochs may overlap).
  std::vector<std::pair<std::string, std::string>> inflight_hulls_;
  int compactions_inflight_ = 0;
  std::unique_ptr<CompactionScheduler> scheduler_;
  /// L0 file number -> the mids flushed into it (for index upkeep when the
  /// file is compacted away).
  std::map<uint64_t, std::vector<uint64_t>> file_to_mids_;
  /// Generation for actives created after a reorganization.
  uint32_t generation_hint_ = 0;

  mutable std::mutex stats_mu_;
  RangeStats stats_;
  ReadaheadCounters readahead_counters_;
  std::atomic<uint64_t> degraded_gets_{0};
  std::atomic<bool> stopping_{false};
  /// Writers currently inside RouteAndAppend. A decommission must drain
  /// these before the range is handed off (see WaitForQuiescence): their
  /// log appends may still be landing at the StoCs, and a record arriving
  /// after the destination replayed the log files would be acknowledged
  /// here yet invisible there.
  std::atomic<int> foreground_writes_{0};
};

}  // namespace ltc
}  // namespace nova

#endif  // NOVA_LTC_RANGE_ENGINE_H_
