#include "ltc/drange.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "util/coding.h"

namespace nova {
namespace ltc {

DrangeManager::DrangeManager(std::string lower, std::string upper,
                             const DrangeOptions& options)
    : lower_(std::move(lower)), upper_(std::move(upper)), options_(options) {
  Drange d;
  d.lower = lower_;
  d.upper = upper_;
  d.tranges.push_back(Trange{lower_, upper_, 0});
  dranges_.push_back(std::move(d));
}

bool DrangeManager::KeyInDrange(const Drange& d, const Slice& key) const {
  if (d.dup_group >= 0) {
    // Point Drange: contains exactly its lower key.
    return key.compare(d.lower) == 0;
  }
  if (!d.lower.empty() && key.compare(d.lower) < 0) {
    return false;
  }
  if (!d.upper.empty() && key.compare(d.upper) >= 0) {
    return false;
  }
  return true;
}

int DrangeManager::FindDrangeLocked(const Slice& key) const {
  // Dranges are kept sorted by lower bound; duplicated point-Dranges sit
  // adjacent. Linear probe from a binary-searched start (θ is small).
  for (size_t i = 0; i < dranges_.size(); i++) {
    if (KeyInDrange(dranges_[i], key)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int DrangeManager::RouteWrite(const Slice& key) {
  std::unique_lock<std::shared_mutex> l(mu_);
  int idx = FindDrangeLocked(key);
  if (idx < 0) {
    return -1;
  }
  // A duplicated point key may land on any member of its group; this is
  // what spreads synchronization load over several memtables.
  if (dranges_[idx].dup_group >= 0) {
    std::vector<int> members;
    for (size_t i = 0; i < dranges_.size(); i++) {
      if (dranges_[i].dup_group == dranges_[idx].dup_group) {
        members.push_back(static_cast<int>(i));
      }
    }
    idx = members[rng_.Uniform(members.size())];
  }
  Drange& d = dranges_[idx];
  d.writes++;
  for (auto& t : d.tranges) {
    if ((t.lower.empty() || key.compare(t.lower) >= 0) &&
        (t.upper.empty() || key.compare(t.upper) < 0)) {
      t.writes++;
      break;
    }
  }
  total_writes_++;
  if (++sample_counter_ % options_.sample_rate == 0) {
    if (reservoir_.size() < options_.reservoir_size) {
      reservoir_.push_back(key.ToString());
    } else {
      reservoir_[rng_.Uniform(reservoir_.size())] = key.ToString();
    }
  }
  return idx;
}

int DrangeManager::DrangeForKey(const Slice& key) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return FindDrangeLocked(key);
}

int DrangeManager::num_dranges() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  return static_cast<int>(dranges_.size());
}

std::pair<std::string, std::string> DrangeManager::DrangeBounds(int i) const {
  std::shared_lock<std::shared_mutex> l(mu_);
  if (i < 0 || i >= static_cast<int>(dranges_.size())) {
    return {"", ""};
  }
  return {dranges_[i].lower, dranges_[i].upper};
}

double DrangeManager::MaxShareLocked(int* hot_index) const {
  if (total_writes_ == 0) {
    if (hot_index) *hot_index = -1;
    return 0;
  }
  double max_share = 0;
  int hot = -1;
  for (size_t i = 0; i < dranges_.size(); i++) {
    double share = static_cast<double>(dranges_[i].writes) /
                   static_cast<double>(total_writes_);
    if (share > max_share) {
      max_share = share;
      hot = static_cast<int>(i);
    }
  }
  if (hot_index) *hot_index = hot;
  return max_share;
}

bool DrangeManager::NeedsReorg() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  if (frozen_ || total_writes_ < options_.warmup_writes) {
    return false;
  }
  if (major_reorgs_.load() == 0) {
    return true;  // still needs its initial major reorganization
  }
  double target = 1.0 / options_.theta;
  return MaxShareLocked(nullptr) > target + options_.epsilon;
}

std::vector<int> DrangeManager::MaybeReorg() {
  std::unique_lock<std::shared_mutex> l(mu_);
  std::vector<int> changed;
  if (frozen_ || total_writes_ < options_.warmup_writes) {
    return changed;
  }
  double target = 1.0 / options_.theta;
  int hot = -1;
  double max_share = MaxShareLocked(&hot);

  if (major_reorgs_.load() == 0) {
    MajorReorgLocked(&changed);
  } else if (max_share > target * options_.major_factor) {
    MajorReorgLocked(&changed);
  } else if (max_share > target + options_.epsilon && hot >= 0) {
    MinorReorgLocked(hot, &changed);
  }
  if (!changed.empty() && options_.static_after_first_major &&
      major_reorgs_.load() > 0) {
    frozen_ = true;
  }
  return changed;
}

void DrangeManager::MinorReorgLocked(int hot, std::vector<int>* changed) {
  Drange& d = dranges_[hot];
  if (d.dup_group >= 0 || d.tranges.size() <= 1) {
    // A point Drange or single-Trange Drange cannot shed Tranges; a major
    // reorg (duplication) is the only remedy.
    MajorReorgLocked(changed);
    return;
  }
  // Move the colder edge Trange to the matching neighbor (Definition 4.3).
  bool move_first = d.tranges.front().writes <= d.tranges.back().writes;
  if (hot == 0) {
    move_first = false;
  }
  if (hot == static_cast<int>(dranges_.size()) - 1) {
    move_first = true;
  }
  if (move_first && hot > 0 && dranges_[hot - 1].dup_group < 0) {
    Trange t = d.tranges.front();
    d.tranges.erase(d.tranges.begin());
    d.writes -= t.writes;
    d.lower = d.tranges.front().lower;
    Drange& left = dranges_[hot - 1];
    left.upper = t.upper;
    left.writes += t.writes;
    left.tranges.push_back(std::move(t));
    changed->push_back(hot - 1);
    changed->push_back(hot);
    minor_reorgs_.fetch_add(1);
  } else if (!move_first && hot + 1 < static_cast<int>(dranges_.size()) &&
             dranges_[hot + 1].dup_group < 0) {
    Trange t = d.tranges.back();
    d.tranges.pop_back();
    d.writes -= t.writes;
    d.upper = d.tranges.back().upper;
    Drange& right = dranges_[hot + 1];
    right.lower = t.lower;
    right.writes += t.writes;
    right.tranges.insert(right.tranges.begin(), std::move(t));
    changed->push_back(hot);
    changed->push_back(hot + 1);
    minor_reorgs_.fetch_add(1);
  } else {
    MajorReorgLocked(changed);
  }
}

void DrangeManager::MajorReorgLocked(std::vector<int>* changed) {
  if (reservoir_.empty()) {
    return;
  }
  // Build a frequency histogram from the reservoir (Definition 4.4).
  std::map<std::string, uint64_t> freq;
  for (const auto& k : reservoir_) {
    freq[k]++;
  }
  uint64_t total = reservoir_.size();
  double target = static_cast<double>(total) / options_.theta;

  std::vector<Drange> next;
  std::string cursor = lower_;
  double acc = 0;
  int dup_groups = 0;
  auto it = freq.begin();
  std::vector<std::pair<std::string, uint64_t>> bucket;  // keys in progress

  auto flush_bucket = [&](const std::string& upper) {
    Drange d;
    d.lower = cursor;
    d.upper = upper;
    // γ Tranges: quantiles of the bucket's keys.
    size_t per = std::max<size_t>(1, bucket.size() / options_.gamma);
    std::string tlo = cursor;
    for (size_t i = 0; i < bucket.size(); i += per) {
      size_t end = std::min(bucket.size(), i + per);
      std::string thi = end == bucket.size() ? upper : bucket[end].first;
      d.tranges.push_back(Trange{tlo, thi, 0});
      tlo = thi;
      if (static_cast<int>(d.tranges.size()) == options_.gamma - 1 &&
          end < bucket.size()) {
        d.tranges.push_back(Trange{tlo, upper, 0});
        break;
      }
    }
    if (d.tranges.empty()) {
      d.tranges.push_back(Trange{cursor, upper, 0});
    } else {
      d.tranges.back().upper = upper;
    }
    next.push_back(std::move(d));
    cursor = upper;
    bucket.clear();
    acc = 0;
  };

  while (it != freq.end()) {
    const std::string& key = it->first;
    uint64_t count = it->second;
    if (static_cast<double>(count) >= 2.0 * target) {
      // A single key hotter than two Dranges' worth: close the current
      // bucket (covering [cursor, key)), then emit duplicated
      // point-Dranges for it (Section 4.1: "[0,0] is duplicated ...
      // twice the average").
      if (cursor != key) {
        flush_bucket(key);
      }
      int copies = std::max(
          2, static_cast<int>(static_cast<double>(count) / target));
      // The point Drange [key, key]: successor string as exclusive upper.
      std::string upper_key = key + std::string(1, '\0');
      for (int c = 0; c < copies; c++) {
        Drange d;
        d.lower = key;
        d.upper = upper_key;
        d.dup_group = dup_groups;
        d.tranges.push_back(Trange{key, upper_key, 0});
        next.push_back(std::move(d));
      }
      dup_groups++;
      cursor = upper_key;
      ++it;
      continue;
    }
    bucket.emplace_back(key, count);
    acc += static_cast<double>(count);
    ++it;
    if (acc >= target && it != freq.end()) {
      flush_bucket(it->first);
    }
  }
  if (upper_.empty() || cursor != upper_) {
    flush_bucket(upper_);  // cover the tail of the keyspace
  }

  dranges_ = std::move(next);
  total_writes_ = 0;
  for (auto& d : dranges_) {
    d.writes = 0;
  }
  major_reorgs_.fetch_add(1);
  changed->clear();
  for (size_t i = 0; i < dranges_.size(); i++) {
    changed->push_back(static_cast<int>(i));
  }
}

std::vector<std::string> DrangeManager::Boundaries() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  std::vector<std::string> bounds;
  for (size_t i = 0; i + 1 < dranges_.size(); i++) {
    if (!dranges_[i].upper.empty() &&
        (bounds.empty() || bounds.back() != dranges_[i].upper)) {
      bounds.push_back(dranges_[i].upper);
    }
  }
  return bounds;
}

double DrangeManager::LoadImbalance() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  if (total_writes_ == 0 || dranges_.empty()) {
    return 0;
  }
  // Duplicated groups count as one logical Drange.
  std::map<int, uint64_t> group_writes;
  int next_virtual = -2;
  for (const auto& d : dranges_) {
    int key = d.dup_group >= 0 ? d.dup_group + (1 << 20) : next_virtual--;
    group_writes[key] += d.writes;
  }
  double n = static_cast<double>(group_writes.size());
  double mean = 1.0 / n;
  double var = 0;
  for (const auto& [g, w] : group_writes) {
    double share = static_cast<double>(w) / total_writes_;
    var += (share - mean) * (share - mean);
  }
  return std::sqrt(var / n);
}

int DrangeManager::num_duplicated_dranges() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  int n = 0;
  for (const auto& d : dranges_) {
    if (d.dup_group >= 0) {
      n++;
    }
  }
  return n;
}

std::string DrangeManager::Serialize() const {
  std::shared_lock<std::shared_mutex> l(mu_);
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(dranges_.size()));
  for (const auto& d : dranges_) {
    PutLengthPrefixedSlice(&out, d.lower);
    PutLengthPrefixedSlice(&out, d.upper);
    PutVarint32(&out, static_cast<uint32_t>(d.dup_group + 1));
    PutVarint32(&out, static_cast<uint32_t>(d.tranges.size()));
    for (const auto& t : d.tranges) {
      PutLengthPrefixedSlice(&out, t.lower);
      PutLengthPrefixedSlice(&out, t.upper);
    }
  }
  return out;
}

bool DrangeManager::Deserialize(const Slice& input) {
  Slice in = input;
  uint32_t n;
  if (!GetVarint32(&in, &n) || n == 0) {
    return false;
  }
  std::vector<Drange> next;
  for (uint32_t i = 0; i < n; i++) {
    Drange d;
    Slice lo, hi;
    uint32_t dup, nt;
    if (!GetLengthPrefixedSlice(&in, &lo) ||
        !GetLengthPrefixedSlice(&in, &hi) || !GetVarint32(&in, &dup) ||
        !GetVarint32(&in, &nt)) {
      return false;
    }
    d.lower = lo.ToString();
    d.upper = hi.ToString();
    d.dup_group = static_cast<int>(dup) - 1;
    for (uint32_t t = 0; t < nt; t++) {
      Slice tlo, thi;
      if (!GetLengthPrefixedSlice(&in, &tlo) ||
          !GetLengthPrefixedSlice(&in, &thi)) {
        return false;
      }
      d.tranges.push_back(Trange{tlo.ToString(), thi.ToString(), 0});
    }
    next.push_back(std::move(d));
  }
  std::unique_lock<std::shared_mutex> l(mu_);
  dranges_ = std::move(next);
  total_writes_ = 0;
  return true;
}

}  // namespace ltc
}  // namespace nova
