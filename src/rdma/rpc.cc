#include "rdma/rpc.h"

#include <chrono>

#include "sim/cost_model.h"
#include "util/coding.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace nova {
namespace rdma {
namespace {

// Wire framing: u8 kind | u64 id | payload.
enum MsgKind : uint8_t {
  kRequest = 0,
  kResponse = 1,
  kTokenComplete = 2,
  kOneWay = 3,
};

std::string Frame(MsgKind kind, uint64_t id, const Slice& payload) {
  std::string out;
  out.reserve(9 + payload.size());
  out.push_back(static_cast<char>(kind));
  PutFixed64(&out, id);
  out.append(payload.data(), payload.size());
  return out;
}

}  // namespace

void RpcEndpoint::Fulfill(const std::shared_ptr<Future::State>& state,
                          Status status, std::string payload) {
  std::lock_guard<std::mutex> l(state->mu);
  if (state->done) {
    return;
  }
  state->done = true;
  state->status = std::move(status);
  state->payload = std::move(payload);
  state->cv.notify_all();
}

bool Future::ready() const {
  if (state_ == nullptr) {
    return false;
  }
  std::lock_guard<std::mutex> l(state_->mu);
  return state_->done;
}

Status Future::Wait(std::string* payload, int timeout_ms) {
  if (state_ == nullptr) {
    return Status::InvalidArgument("invalid future");
  }
  std::unique_lock<std::mutex> l(state_->mu);
  if (!state_->cv.wait_for(l, std::chrono::milliseconds(timeout_ms),
                           [this] { return state_->done; })) {
    // Timed out: withdraw the waiter slot so a late response is dropped.
    // Losing the withdrawal race means a completer holds the slot and is
    // about to fulfill the state — wait for it. The timeout is typed
    // Unavailable: a peer that never answered is operationally the same
    // as one the fabric reports dead, and callers (circuit breaker,
    // retry policies) key off that code.
    l.unlock();
    if (state_->endpoint == nullptr ||
        !state_->endpoint->AbandonWaiter(
            state_->id, Status::Unavailable("rpc deadline exceeded"))) {
      // No slot to withdraw (Failed() future raced, or completion in
      // flight): the fulfillment is imminent.
      std::unique_lock<std::mutex> l2(state_->mu);
      state_->cv.wait(l2, [this] { return state_->done; });
    }
    l.lock();
  }
  if (payload != nullptr && state_->status.ok()) {
    // Move, don't copy: responses can be whole fragments. The first Wait
    // that passes a payload pointer consumes it (see header contract).
    *payload = std::move(state_->payload);
    state_->payload.clear();
  }
  return state_->status;
}

Status Future::WaitUntil(std::string* payload, const util::Deadline& deadline) {
  // Cap the per-call wait so an infinite deadline still degrades to the
  // historical 30 s default rather than blocking forever.
  int64_t ms = deadline.remaining_ms(30000);
  return Wait(payload, static_cast<int>(ms));
}

bool Future::Cancel() {
  if (state_ == nullptr) {
    return false;
  }
  {
    std::lock_guard<std::mutex> l(state_->mu);
    if (state_->done) {
      return false;  // completion (or timeout/stop) already landed
    }
  }
  if (state_->endpoint == nullptr) {
    return false;  // Failed() future: fulfillment is imminent
  }
  // Losing the withdrawal race to a completer means the result lands
  // anyway — the duplicate-completion case the caller must tolerate.
  return state_->endpoint->AbandonWaiter(state_->id,
                                         Status::IOError("rpc cancelled"));
}

Future Future::Failed(Status s) {
  Future f;
  f.state_ = std::make_shared<State>();
  f.state_->done = true;
  f.state_->status = std::move(s);
  return f;
}

RpcEndpoint::RpcEndpoint(RdmaFabric* fabric, NodeId node, int num_xchg_threads,
                         sim::CpuThrottle* throttle)
    : fabric_(fabric),
      node_(node),
      num_xchg_threads_(num_xchg_threads),
      throttle_(throttle == nullptr ? sim::CpuThrottle::Unlimited()
                                    : throttle) {}

RpcEndpoint::~RpcEndpoint() { Stop(); }

void RpcEndpoint::Start() {
  if (running_.exchange(true)) {
    return;
  }
  stopping_.store(false);
  for (int i = 0; i < num_xchg_threads_; i++) {
    xchg_threads_.emplace_back([this, i] { XchgLoop(i); });
  }
}

void RpcEndpoint::Stop() {
  stopping_.store(true);
  if (!running_.exchange(false)) {
    return;
  }
  // Fail pending waiters BEFORE joining the xchg threads: an xchg thread
  // may be blocked inside a request handler waiting on one of this
  // endpoint's own futures — joined first, Stop would stall for a full
  // RPC timeout. New waiters cannot appear after the sweep: AsyncCall
  // re-checks stopping_ after registering (synchronized via waiters_mu_)
  // and withdraws itself.
  auto fail_pending = [this] {
    std::map<uint64_t, std::shared_ptr<Future::State>> pending;
    {
      std::lock_guard<std::mutex> l(waiters_mu_);
      pending.swap(waiters_);
    }
    for (auto& [id, state] : pending) {
      Fulfill(state, Status::Unavailable("endpoint stopped"), "");
    }
  };
  fail_pending();
  for (auto& t : xchg_threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
  xchg_threads_.clear();
  fail_pending();
}

void RpcEndpoint::XchgLoop(int thread_index) {
  (void)thread_index;
  const sim::CostModel& costs = sim::DefaultCostModel();
  // Exponential back-off when idle (paper Section 3.2): poll aggressively
  // under load, sleep up to ~1 ms when there is no work.
  int idle_us = 1;
  int empty_polls = 0;
  while (running_.load(std::memory_order_relaxed)) {
    InboundMessage msg;
    if (fabric_->PollInbound(node_, &msg)) {
      idle_us = 1;
      throttle_->Charge(costs.xchg_poll_us + costs.rdma_message_us);
      Dispatch(msg);
    } else {
      // Batch the poll charge so an idle node doesn't hammer the throttle
      // mutex; 64 empty polls ≈ one charged slice.
      if (++empty_polls >= 64) {
        throttle_->Charge(costs.xchg_poll_us * empty_polls);
        empty_polls = 0;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(idle_us));
      idle_us = std::min(idle_us * 2, 1000);
    }
  }
}

void RpcEndpoint::Dispatch(const InboundMessage& msg) {
  if (msg.kind == InboundMessage::Kind::kWriteImm) {
    if (write_imm_handler_) {
      write_imm_handler_(msg.src, msg.imm);
    }
    return;
  }
  const std::string& m = msg.payload;
  if (m.size() < 9) {
    NOVA_WARN("malformed rpc frame from node %d", msg.src);
    return;
  }
  MsgKind kind = static_cast<MsgKind>(m[0]);
  uint64_t id = DecodeFixed64(m.data() + 1);
  Slice payload(m.data() + 9, m.size() - 9);
  switch (kind) {
    case kRequest:
      if (request_handler_) {
        request_handler_(msg.src, id, payload);
      }
      break;
    case kOneWay:
      if (request_handler_) {
        request_handler_(msg.src, 0, payload);
      }
      break;
    case kResponse:
    case kTokenComplete:
      CompleteWaiter(id, payload);
      break;
  }
}

Future RpcEndpoint::RegisterWaiter(uint64_t* id) {
  *id = next_id_.fetch_add(1);
  Future f;
  f.state_ = std::make_shared<Future::State>();
  f.state_->endpoint = this;
  f.state_->id = *id;
  std::lock_guard<std::mutex> l(waiters_mu_);
  waiters_[*id] = f.state_;
  return f;
}

void RpcEndpoint::CompleteWaiter(uint64_t id, const Slice& payload) {
  std::shared_ptr<Future::State> state;
  {
    std::lock_guard<std::mutex> l(waiters_mu_);
    auto it = waiters_.find(id);
    if (it == waiters_.end()) {
      return;  // late response after timeout; drop
    }
    state = std::move(it->second);
    waiters_.erase(it);
  }
  Fulfill(state, Status::OK(), payload.ToString());
}

bool RpcEndpoint::AbandonWaiter(uint64_t id, Status status) {
  std::shared_ptr<Future::State> state;
  {
    std::lock_guard<std::mutex> l(waiters_mu_);
    auto it = waiters_.find(id);
    if (it == waiters_.end()) {
      return false;
    }
    state = std::move(it->second);
    waiters_.erase(it);
  }
  Fulfill(state, std::move(status), "");
  return true;
}

size_t RpcEndpoint::num_pending_waiters() {
  std::lock_guard<std::mutex> l(waiters_mu_);
  return waiters_.size();
}

Future RpcEndpoint::AsyncCall(NodeId dst, const Slice& request) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return Future::Failed(Status::Unavailable("endpoint stopped"));
  }
  uint64_t id;
  Future f = RegisterWaiter(&id);
  // Re-check after registering: if Stop() swept the waiter map between
  // the check above and RegisterWaiter, this waiter would wait out its
  // full timeout with nobody left to fulfill it.
  if (stopping_.load(std::memory_order_acquire)) {
    AbandonWaiter(id, Status::Unavailable("endpoint stopped"));
    return Future::Failed(Status::Unavailable("endpoint stopped"));
  }
  throttle_->Charge(sim::DefaultCostModel().rdma_message_us);
  // Failpoint "rpc.send": injected request-direction connection errors
  // (chaos tests drive the circuit breaker through here).
  Status s = util::FailPoint::Check("rpc.send");
  if (s.ok()) {
    s = fabric_->Send(node_, dst, Frame(kRequest, id, request));
  }
  if (!s.ok()) {
    AbandonWaiter(id, s);
    return Future::Failed(s);
  }
  return f;
}

Status RpcEndpoint::Call(NodeId dst, const Slice& request,
                         std::string* response, int timeout_ms) {
  return AsyncCall(dst, request).Wait(response, timeout_ms);
}

Status RpcEndpoint::OneWay(NodeId dst, const Slice& request) {
  if (stopping_.load(std::memory_order_relaxed)) {
    return Status::Unavailable("endpoint stopped");
  }
  throttle_->Charge(sim::DefaultCostModel().rdma_message_us);
  Status s = util::FailPoint::Check("rpc.send");
  if (!s.ok()) {
    return s;
  }
  return fabric_->Send(node_, dst, Frame(kOneWay, 0, request));
}

Status RpcEndpoint::Reply(NodeId dst, uint64_t req_id, const Slice& response) {
  throttle_->Charge(sim::DefaultCostModel().rdma_message_us);
  // Failpoint "rpc.reply": response-direction drops — the caller sees a
  // deadline expiry, not an error (separate site from "rpc.send" so chaos
  // tests can keep failures fast-failing).
  Status s = util::FailPoint::Check("rpc.reply");
  if (!s.ok()) {
    return s;
  }
  return fabric_->Send(node_, dst, Frame(kResponse, req_id, response));
}

uint64_t RpcEndpoint::AllocToken(Future* future) {
  uint64_t id;
  *future = RegisterWaiter(&id);
  return id;
}

Status RpcEndpoint::CompleteToken(NodeId dst, uint64_t token,
                                  const Slice& payload) {
  throttle_->Charge(sim::DefaultCostModel().rdma_message_us);
  return fabric_->Send(node_, dst, Frame(kTokenComplete, token, payload));
}

}  // namespace rdma
}  // namespace nova
