// An in-process emulation of an RDMA fabric (DESIGN.md Section 2).
//
// Semantics preserved from real RDMA (paper Section 2.2):
//  * Nodes register memory regions; one-sided READ/WRITE move bytes
//    between a local buffer and a registered remote region as an
//    initiator-side memcpy — the target's threads are never involved.
//  * A WRITE or SEND may carry 4 bytes of immediate data, in which case
//    the target is notified via its inbound completion queue (which its
//    xchg threads poll).
//  * SEND delivers a message payload to the target's inbound queue.
//  * Reliable connected semantics: no drops; operations to a failed node
//    return Status::Unavailable (connection error).
//
// Timing: network transfer times at 56 Gbps are sub-microsecond for the
// block sizes used here and cannot be reproduced with OS sleeps, so the
// fabric does not sleep; the *CPU* costs of issuing verbs and polling are
// charged to per-node CpuThrottles by callers (see sim/cost_model.h),
// which is the effect the paper measures (xchg threads pulling requests).
#ifndef NOVA_RDMA_FABRIC_H_
#define NOVA_RDMA_FABRIC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace nova {
namespace rdma {

using NodeId = int32_t;

/// Address of a byte range inside a remote node's registered region.
struct RemoteAddr {
  NodeId node = -1;
  uint32_t mr_id = 0;
  uint64_t offset = 0;
};

/// What an xchg thread receives when it polls its completion queue.
struct InboundMessage {
  enum class Kind { kSend, kWriteImm };
  Kind kind = Kind::kSend;
  NodeId src = -1;
  uint32_t imm = 0;
  std::string payload;  // only for kSend
};

struct FabricStats {
  std::atomic<uint64_t> num_sends{0};
  std::atomic<uint64_t> num_reads{0};
  std::atomic<uint64_t> num_writes{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_read{0};
  std::atomic<uint64_t> bytes_written{0};
};

class RdmaFabric {
 public:
  RdmaFabric() = default;

  RdmaFabric(const RdmaFabric&) = delete;
  RdmaFabric& operator=(const RdmaFabric&) = delete;

  /// Bring a node onto the fabric (idempotent; revives a failed node with
  /// empty queues and no registered memory).
  void AddNode(NodeId node);

  /// Take a node off the fabric: pending inbound messages are dropped and
  /// its memory registrations removed — like a machine losing power.
  void RemoveNode(NodeId node);

  bool IsAlive(NodeId node) const;

  /// Register [addr, addr+size) of node's memory for remote access.
  Status RegisterMemory(NodeId node, uint32_t mr_id, char* addr, size_t size);
  Status DeregisterMemory(NodeId node, uint32_t mr_id);

  /// One-sided RDMA READ: copy len bytes from remote into local.
  Status Read(NodeId src, const RemoteAddr& remote, char* local, size_t len);

  /// One-sided RDMA WRITE: copy data into remote. If notify, the target's
  /// completion queue receives a WriteImm message with imm.
  Status Write(NodeId src, const Slice& data, const RemoteAddr& remote,
               bool notify, uint32_t imm);

  /// Two-sided RDMA SEND: deliver msg to dst's inbound queue.
  Status Send(NodeId src, NodeId dst, const Slice& msg, uint32_t imm = 0);

  /// Non-blocking poll of node's inbound queue.
  bool PollInbound(NodeId node, InboundMessage* msg);

  size_t InboundDepth(NodeId node) const;

  FabricStats& stats() { return stats_; }

 private:
  struct MemoryRegion {
    char* addr = nullptr;
    size_t size = 0;
    /// One-sided ops currently copying into/out of this region. Like a
    /// real NIC's MR reference, deregistration must wait for these: a
    /// copy landing after the owner recycles the memory would corrupt
    /// whatever now lives there.
    int pins = 0;
  };

  struct Node {
    bool alive = false;
    std::map<uint32_t, std::shared_ptr<MemoryRegion>> regions;
    std::deque<InboundMessage> inbound;
  };

  /// Resolve a remote address to a host pointer, or fail. On success
  /// `*pin_out` holds the region with its pin count already raised; the
  /// caller must UnpinRegion() once its copy is done.
  Status ResolveLocked(const RemoteAddr& remote, size_t len, char** out,
                       std::shared_ptr<MemoryRegion>* pin_out);
  void UnpinRegion(const std::shared_ptr<MemoryRegion>& region);
  /// Wait (with mu_ held via *l) until no region of `node` is pinned.
  void DrainNodePinsLocked(std::unique_lock<std::mutex>* l, Node* node);

  mutable std::mutex mu_;
  std::condition_variable pin_cv_;
  std::map<NodeId, Node> nodes_;
  FabricStats stats_;
};

}  // namespace rdma
}  // namespace nova

#endif  // NOVA_RDMA_FABRIC_H_
