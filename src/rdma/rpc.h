// Request/response messaging over the RDMA fabric, mirroring the paper's
// thread model (Section 3.2): each node runs a set of dedicated exchange
// (xchg) threads that poll their queue pairs, back off exponentially when
// idle, and delegate actual work to other threads.
//
// Three message kinds ride on RDMA SEND:
//   * requests   — dispatched to the node's request handler (which may
//                  reply inline or hand off to a worker pool and reply
//                  later via Reply());
//   * responses  — fulfill the Future of the matching AsyncCall()/Call()
//                  by request id;
//   * token completions — fulfill the token's Future on the destination.
// Tokens implement the paper's Figure-10 append protocol: the client
// allocates a token, passes it in the open/alloc request, RDMA-WRITEs the
// block with imm = region id, and the StoC completes the token once the
// block is flushed — no extra client->server message.
#ifndef NOVA_RDMA_RPC_H_
#define NOVA_RDMA_RPC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rdma/fabric.h"
#include "sim/cpu_throttle.h"
#include "util/retry.h"

namespace nova {
namespace rdma {

class RpcEndpoint;

/// Completion handle for one asynchronous request/response or token wait.
/// Lightweight and copyable; every copy shares one completion slot, which
/// an xchg thread fulfills when the response (or a failure) lands. A
/// Future may be dropped without waiting — the completion is discarded —
/// but it must not outlive its endpoint.
class Future {
 public:
  Future() = default;  // invalid; Wait fails with InvalidArgument

  bool valid() const { return state_ != nullptr; }
  /// True once the result is available; never blocks.
  bool ready() const;
  /// Block until completion or timeout. On timeout the waiter slot is
  /// withdrawn, so a late response is dropped and every copy of this
  /// future observes the timeout as a typed Status::Unavailable (a wedged
  /// peer is indistinguishable from a dead one at this layer). payload
  /// may be null. The payload is moved out by the first Wait that asks
  /// for it (responses can be whole fragments); later Waits still see the
  /// status but an empty payload.
  Status Wait(std::string* payload, int timeout_ms = 30000);
  /// Deadline-propagating variant: callers thread one util::Deadline down
  /// a whole call chain instead of stacking per-hop 30 s defaults.
  Status WaitUntil(std::string* payload, const util::Deadline& deadline);

  /// Withdraw interest in the result (hedged/duplicated requests: the
  /// losing attempt is cancelled once a winner returns). The waiter slot
  /// is removed so the late response is dropped on arrival, and every
  /// copy of this future observes IOError("rpc cancelled"). Returns false
  /// when the completion already landed (the result stays available) —
  /// the duplicate-completion case, which is safe either way.
  bool Cancel();

  /// An already-completed future carrying s (send-time failures complete
  /// immediately so call sites handle exactly one error path).
  static Future Failed(Status s);

 private:
  friend class RpcEndpoint;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::string payload;
    /// Set for endpoint-registered futures so a timed-out Wait can
    /// withdraw the waiter slot; null for Failed() futures.
    RpcEndpoint* endpoint = nullptr;
    uint64_t id = 0;
  };
  std::shared_ptr<State> state_;
};

class RpcEndpoint {
 public:
  /// Handler for inbound requests. May call Reply() inline (cheap
  /// operations) or enqueue work and Reply() from another thread.
  using RequestHandler =
      std::function<void(NodeId src, uint64_t req_id, const Slice& payload)>;
  /// Handler invoked when a one-sided RDMA WRITE with immediate data lands
  /// in this node's registered memory.
  using WriteImmHandler = std::function<void(NodeId src, uint32_t imm)>;

  RpcEndpoint(RdmaFabric* fabric, NodeId node, int num_xchg_threads,
              sim::CpuThrottle* throttle);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  void set_request_handler(RequestHandler handler) {
    request_handler_ = std::move(handler);
  }
  void set_write_imm_handler(WriteImmHandler handler) {
    write_imm_handler_ = std::move(handler);
  }

  /// Spawn the xchg threads. Handlers must be set before Start().
  void Start();
  /// Join the xchg threads and fail all pending calls.
  void Stop();

  /// Asynchronous request/response: send now, collect the response later
  /// through the returned future (completed by the xchg threads). A send
  /// failure yields an immediately-failed future.
  Future AsyncCall(NodeId dst, const Slice& request);

  /// Synchronous request/response. Fails with Unavailable if dst is dead
  /// or the deadline passes with no response.
  Status Call(NodeId dst, const Slice& request, std::string* response,
              int timeout_ms = 30000);

  /// Send a request without waiting for any response.
  Status OneWay(NodeId dst, const Slice& request);

  /// Server side: complete the Call identified by (src, req_id).
  Status Reply(NodeId dst, uint64_t req_id, const Slice& response);

  /// Token flow (see file comment). AllocToken registers a waiter slot;
  /// *future completes when some node calls CompleteToken(token). An
  /// abandoned token costs a dormant slot until its completion arrives;
  /// reap one that can never complete with future.Wait(nullptr, 0).
  uint64_t AllocToken(Future* future);
  /// Server side: complete a token on node dst.
  Status CompleteToken(NodeId dst, uint64_t token, const Slice& payload);

  NodeId node() const { return node_; }
  RdmaFabric* fabric() { return fabric_; }

  /// Number of registered waiter slots (tests: duplicate completions and
  /// cancellations must not leak slots).
  size_t num_pending_waiters();

 private:
  friend class Future;

  void XchgLoop(int thread_index);
  void Dispatch(const InboundMessage& msg);
  /// Register a fresh waiter slot; the returned future completes when
  /// CompleteWaiter runs for the slot's id.
  Future RegisterWaiter(uint64_t* id);
  /// Complete state exactly once (later attempts are no-ops).
  static void Fulfill(const std::shared_ptr<Future::State>& state,
                      Status status, std::string payload);
  void CompleteWaiter(uint64_t id, const Slice& payload);
  /// Withdraw a pending waiter (timeout and cancellation paths); fails
  /// its future with the given status so every copy unblocks. False if
  /// already completed/withdrawn.
  bool AbandonWaiter(uint64_t id, Status status);

  RdmaFabric* fabric_;
  NodeId node_;
  int num_xchg_threads_;
  sim::CpuThrottle* throttle_;
  RequestHandler request_handler_;
  WriteImmHandler write_imm_handler_;

  std::atomic<bool> running_{false};
  /// Set when Stop() begins, cleared by Start(). New sends fast-fail
  /// Unavailable while set: with the xchg threads gone nothing would
  /// ever fulfill their waiters, and a server shutting down must not
  /// hold its worker pools hostage for a full RPC timeout (see
  /// StocServer::Stop).
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> xchg_threads_;

  /// Pending completions by request/token id. An entry is removed when
  /// its future is fulfilled (xchg thread), withdrawn on timeout, or
  /// failed en masse by Stop().
  std::mutex waiters_mu_;
  std::map<uint64_t, std::shared_ptr<Future::State>> waiters_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace rdma
}  // namespace nova

#endif  // NOVA_RDMA_RPC_H_
