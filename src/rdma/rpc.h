// Request/response messaging over the RDMA fabric, mirroring the paper's
// thread model (Section 3.2): each node runs a set of dedicated exchange
// (xchg) threads that poll their queue pairs, back off exponentially when
// idle, and delegate actual work to other threads.
//
// Three message kinds ride on RDMA SEND:
//   * requests   — dispatched to the node's request handler (which may
//                  reply inline or hand off to a worker pool and reply
//                  later via Reply());
//   * responses  — matched to a blocked Call() by request id;
//   * token completions — complete a WaitToken() on the destination.
// Tokens implement the paper's Figure-10 append protocol: the client
// allocates a token, passes it in the open/alloc request, RDMA-WRITEs the
// block with imm = region id, and the StoC completes the token once the
// block is flushed — no extra client->server message.
#ifndef NOVA_RDMA_RPC_H_
#define NOVA_RDMA_RPC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "rdma/fabric.h"
#include "sim/cpu_throttle.h"

namespace nova {
namespace rdma {

class RpcEndpoint {
 public:
  /// Handler for inbound requests. May call Reply() inline (cheap
  /// operations) or enqueue work and Reply() from another thread.
  using RequestHandler =
      std::function<void(NodeId src, uint64_t req_id, const Slice& payload)>;
  /// Handler invoked when a one-sided RDMA WRITE with immediate data lands
  /// in this node's registered memory.
  using WriteImmHandler = std::function<void(NodeId src, uint32_t imm)>;

  RpcEndpoint(RdmaFabric* fabric, NodeId node, int num_xchg_threads,
              sim::CpuThrottle* throttle);
  ~RpcEndpoint();

  RpcEndpoint(const RpcEndpoint&) = delete;
  RpcEndpoint& operator=(const RpcEndpoint&) = delete;

  void set_request_handler(RequestHandler handler) {
    request_handler_ = std::move(handler);
  }
  void set_write_imm_handler(WriteImmHandler handler) {
    write_imm_handler_ = std::move(handler);
  }

  /// Spawn the xchg threads. Handlers must be set before Start().
  void Start();
  /// Join the xchg threads and fail all pending calls.
  void Stop();

  /// Synchronous request/response. Fails with Unavailable if dst is dead,
  /// IOError on timeout.
  Status Call(NodeId dst, const Slice& request, std::string* response,
              int timeout_ms = 30000);

  /// Send a request without waiting for any response.
  Status OneWay(NodeId dst, const Slice& request);

  /// Server side: complete the Call identified by (src, req_id).
  Status Reply(NodeId dst, uint64_t req_id, const Slice& response);

  /// Token flow (see file comment). AllocToken registers a waiter slot.
  uint64_t AllocToken();
  Status WaitToken(uint64_t token, std::string* payload,
                   int timeout_ms = 30000);
  /// Server side: complete a token on node dst.
  Status CompleteToken(NodeId dst, uint64_t token, const Slice& payload);

  NodeId node() const { return node_; }
  RdmaFabric* fabric() { return fabric_; }

 private:
  struct Waiter {
    bool done = false;
    bool failed = false;
    std::string payload;
  };

  void XchgLoop(int thread_index);
  void Dispatch(const InboundMessage& msg);
  void CompleteWaiter(uint64_t id, const Slice& payload, bool failed);

  RdmaFabric* fabric_;
  NodeId node_;
  int num_xchg_threads_;
  sim::CpuThrottle* throttle_;
  RequestHandler request_handler_;
  WriteImmHandler write_imm_handler_;

  std::atomic<bool> running_{false};
  std::vector<std::thread> xchg_threads_;

  std::mutex waiters_mu_;
  std::condition_variable waiters_cv_;
  std::map<uint64_t, Waiter> waiters_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace rdma
}  // namespace nova

#endif  // NOVA_RDMA_RPC_H_
