#include "rdma/fabric.h"

#include <cstring>

namespace nova {
namespace rdma {

void RdmaFabric::AddNode(NodeId node) {
  std::unique_lock<std::mutex> l(mu_);
  Node& n = nodes_[node];
  n.alive = true;
  DrainNodePinsLocked(&l, &n);
  n.regions.clear();
  n.inbound.clear();
}

void RdmaFabric::RemoveNode(NodeId node) {
  std::unique_lock<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return;
  }
  it->second.alive = false;
  // Drain in-flight one-sided copies before dropping the registrations:
  // the node's owner will recycle (or free) the backing memory as soon
  // as this returns.
  DrainNodePinsLocked(&l, &it->second);
  it->second.regions.clear();
  it->second.inbound.clear();
}

void RdmaFabric::DrainNodePinsLocked(std::unique_lock<std::mutex>* l,
                                     Node* node) {
  pin_cv_.wait(*l, [node] {
    for (const auto& [id, mr] : node->regions) {
      if (mr->pins > 0) {
        return false;
      }
    }
    return true;
  });
}

void RdmaFabric::UnpinRegion(const std::shared_ptr<MemoryRegion>& region) {
  std::lock_guard<std::mutex> l(mu_);
  if (--region->pins == 0) {
    pin_cv_.notify_all();
  }
}

bool RdmaFabric::IsAlive(NodeId node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  return it != nodes_.end() && it->second.alive;
}

Status RdmaFabric::RegisterMemory(NodeId node, uint32_t mr_id, char* addr,
                                  size_t size) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::Unavailable("node not on fabric");
  }
  it->second.regions[mr_id] =
      std::make_shared<MemoryRegion>(MemoryRegion{addr, size, 0});
  return Status::OK();
}

Status RdmaFabric::DeregisterMemory(NodeId node, uint32_t mr_id) {
  std::unique_lock<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return Status::NotFound("node not on fabric");
  }
  auto mr_it = it->second.regions.find(mr_id);
  if (mr_it == it->second.regions.end()) {
    return Status::OK();
  }
  // Like ibv_dereg_mr: completes only once outstanding one-sided ops on
  // the region have finished — the caller frees or recycles the memory
  // the moment this returns, and a late copy would scribble on it.
  std::shared_ptr<MemoryRegion> region = mr_it->second;
  pin_cv_.wait(l, [&region] { return region->pins == 0; });
  it->second.regions.erase(mr_id);
  return Status::OK();
}

Status RdmaFabric::ResolveLocked(const RemoteAddr& remote, size_t len,
                                 char** out,
                                 std::shared_ptr<MemoryRegion>* pin_out) {
  auto it = nodes_.find(remote.node);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::Unavailable("remote node unavailable");
  }
  auto mr_it = it->second.regions.find(remote.mr_id);
  if (mr_it == it->second.regions.end()) {
    return Status::InvalidArgument("unknown memory region");
  }
  const std::shared_ptr<MemoryRegion>& mr = mr_it->second;
  if (remote.offset + len > mr->size) {
    return Status::InvalidArgument("rdma access out of region bounds");
  }
  *out = mr->addr + remote.offset;
  mr->pins++;
  *pin_out = mr;
  return Status::OK();
}

Status RdmaFabric::Read(NodeId src, const RemoteAddr& remote, char* local,
                        size_t len) {
  char* target;
  std::shared_ptr<MemoryRegion> pin;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto self = nodes_.find(src);
    if (self == nodes_.end() || !self->second.alive) {
      return Status::Unavailable("initiator not on fabric");
    }
    Status s = ResolveLocked(remote, len, &target, &pin);
    if (!s.ok()) {
      return s;
    }
  }
  // Like real RDMA, the copy happens without target-side synchronization;
  // protocols must not read regions being concurrently rewritten. The pin
  // only keeps deregistration (memory recycling) at bay.
  memcpy(local, target, len);
  UnpinRegion(pin);
  stats_.num_reads.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_read.fetch_add(len, std::memory_order_relaxed);
  return Status::OK();
}

Status RdmaFabric::Write(NodeId src, const Slice& data,
                         const RemoteAddr& remote, bool notify, uint32_t imm) {
  char* target;
  std::shared_ptr<MemoryRegion> pin;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto self = nodes_.find(src);
    if (self == nodes_.end() || !self->second.alive) {
      return Status::Unavailable("initiator not on fabric");
    }
    Status s = ResolveLocked(remote, data.size(), &target, &pin);
    if (!s.ok()) {
      return s;
    }
  }
  memcpy(target, data.data(), data.size());
  UnpinRegion(pin);
  stats_.num_writes.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_written.fetch_add(data.size(), std::memory_order_relaxed);
  if (notify) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = nodes_.find(remote.node);
    if (it == nodes_.end() || !it->second.alive) {
      return Status::Unavailable("remote node unavailable");
    }
    InboundMessage m;
    m.kind = InboundMessage::Kind::kWriteImm;
    m.src = src;
    m.imm = imm;
    it->second.inbound.push_back(std::move(m));
  }
  return Status::OK();
}

Status RdmaFabric::Send(NodeId src, NodeId dst, const Slice& msg,
                        uint32_t imm) {
  std::lock_guard<std::mutex> l(mu_);
  auto self = nodes_.find(src);
  if (self == nodes_.end() || !self->second.alive) {
    return Status::Unavailable("initiator not on fabric");
  }
  auto it = nodes_.find(dst);
  if (it == nodes_.end() || !it->second.alive) {
    return Status::Unavailable("remote node unavailable");
  }
  InboundMessage m;
  m.kind = InboundMessage::Kind::kSend;
  m.src = src;
  m.imm = imm;
  m.payload = msg.ToString();
  it->second.inbound.push_back(std::move(m));
  stats_.num_sends.fetch_add(1, std::memory_order_relaxed);
  stats_.bytes_sent.fetch_add(msg.size(), std::memory_order_relaxed);
  return Status::OK();
}

bool RdmaFabric::PollInbound(NodeId node, InboundMessage* msg) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end() || !it->second.alive || it->second.inbound.empty()) {
    return false;
  }
  *msg = std::move(it->second.inbound.front());
  it->second.inbound.pop_front();
  return true;
}

size_t RdmaFabric::InboundDepth(NodeId node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return 0;
  }
  return it->second.inbound.size();
}

}  // namespace rdma
}  // namespace nova
