// LogC (paper Section 5): a library integrated into an LTC that maintains
// one log file per memtable. Availability and durability are separable:
//   * kInMemory  — records replicated to in-memory StoC files on
//                  num_replicas StoCs via one-sided RDMA WRITE (StoC CPUs
//                  bypassed); all replicas lost => data loss.
//   * kPersistent — records appended to a persistent StoC file (disk).
//   * kBoth      — both of the above.
// A NIC-path mode routes replication through StoC request handlers (their
// CPU is involved), reproducing the paper's RDMA-vs-NIC service-time
// comparison in Section 8.2.3.
#ifndef NOVA_LOGC_LOG_CLIENT_H_
#define NOVA_LOGC_LOG_CLIENT_H_

#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "logc/log_record.h"
#include "stoc/stoc_client.h"

namespace nova {
namespace logc {

enum class LogMode { kNone, kInMemory, kPersistent, kBoth };

struct LogOptions {
  LogMode mode = LogMode::kInMemory;
  int num_replicas = 3;
  /// Size of each in-memory region; LogC approximates a log file's size by
  /// the memtable size (Section 5), so one region usually suffices.
  uint64_t region_size = 512 << 10;
  /// Replicate via StoC request handlers instead of one-sided RDMA
  /// (involves StoC CPU; slower — Section 8.2.3's NIC comparison).
  bool use_nic_path = false;
};

class LogClient {
 public:
  LogClient(stoc::StocClient* stoc_client, uint32_t range_id,
            const LogOptions& options);

  /// Create the log file for a memtable, replicated across `stocs`
  /// (options.num_replicas of them are used; fewer is allowed).
  Status CreateLogFile(uint64_t memtable_id,
                       const std::vector<rdma::NodeId>& stocs);

  /// Append one record to every replica (and/or the persistent file).
  Status Append(uint64_t memtable_id, const LogRecord& rec);

  /// Drop the log file once its memtable is flushed to an SSTable.
  Status DeleteLogFile(uint64_t memtable_id);

  /// Take ownership of an existing log file's replicas (after recovery or
  /// migration) so a later DeleteLogFile reclaims the StoC memory.
  void Adopt(uint64_t memtable_id,
             std::vector<stoc::InMemFileHandle> replicas);

  bool HasLogFile(uint64_t memtable_id);

  /// Total records appended (all files); for tests.
  uint64_t records_appended() const { return records_appended_; }

  /// Recovery: gather all log records for range_id from the given StoCs,
  /// reading each log file from its first reachable replica with one-sided
  /// RDMA READs, grouped by memtable id. Static: runs without a LogClient
  /// instance (the failed LTC's state is gone).
  /// handles_out (optional) receives every replica handle seen, keyed by
  /// file id, so the caller can Adopt() them.
  static Status FetchAllLogRecords(
      stoc::StocClient* stoc_client, const std::vector<rdma::NodeId>& stocs,
      uint32_t range_id,
      std::map<uint64_t, std::vector<LogRecord>>* by_memtable,
      std::map<uint64_t, std::vector<stoc::InMemFileHandle>>* handles_out =
          nullptr);

 private:
  struct LogFileState {
    std::vector<stoc::InMemFileHandle> replicas;  // in-memory mode
    stoc::StocBlockHandle persistent;             // persistent mode
    rdma::NodeId persistent_stoc = -1;
    uint64_t persistent_file_id = 0;
    uint64_t next_offset = 0;       // within the region chain
    size_t current_region = 0;
    std::mutex mu;                  // serializes offset reservation
    /// Appends in flight between the files_ lookup and completion.
    /// DeleteLogFile drains them before releasing the StoC files: a late
    /// one-sided WriteInMem would otherwise land in slab memory the StoC
    /// has already recycled for another log file.
    std::mutex drain_mu;
    std::condition_variable drain_cv;
    int inflight = 0;
  };

  Status AppendInMemory(LogFileState* state, const Slice& encoded);
  Status NicAppend(const stoc::InMemFileHandle& handle, uint64_t global_offset,
                   const Slice& data);

  stoc::StocClient* stoc_client_;
  uint32_t range_id_;
  LogOptions options_;

  std::mutex mu_;
  /// shared_ptr: an Append racing DeleteLogFile (its memtable rotated and
  /// flushed concurrently) keeps the state alive until it returns; the
  /// losing append targets already-deleted StoC files, which fail or are
  /// ignored, and the record is re-logged on the put retry.
  std::map<uint64_t, std::shared_ptr<LogFileState>> files_;
  std::atomic<uint64_t> records_appended_{0};
};

}  // namespace logc
}  // namespace nova

#endif  // NOVA_LOGC_LOG_CLIENT_H_
