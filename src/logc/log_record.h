// Log record wire format (paper Section 5): self-contained records of the
// form (record size, memtable id, key size, key, value size, value,
// sequence number). A record with size 0 marks the end of the written
// prefix (regions are zero-initialized); size 0xFFFFFFFF is a padding
// marker telling the reader to continue in the next region.
#ifndef NOVA_LOGC_LOG_RECORD_H_
#define NOVA_LOGC_LOG_RECORD_H_

#include <cstdint>
#include <string>

#include "mem/dbformat.h"
#include "util/slice.h"

namespace nova {
namespace logc {

struct LogRecord {
  uint64_t memtable_id = 0;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;
  std::string key;
  std::string value;
};

constexpr uint32_t kPaddingMarker = 0xFFFFFFFFu;
/// Bytes a padding marker occupies (just the length word).
constexpr size_t kPaddingBytes = 4;

void EncodeLogRecord(std::string* dst, const LogRecord& rec);
size_t EncodedLogRecordSize(const LogRecord& rec);

enum class DecodeResult { kRecord, kEnd, kPadding };
/// Parse one record from *input (advancing it). kEnd on a zero length or
/// malformed record; kPadding on a padding marker.
DecodeResult DecodeLogRecord(Slice* input, LogRecord* rec);

}  // namespace logc
}  // namespace nova

#endif  // NOVA_LOGC_LOG_RECORD_H_
