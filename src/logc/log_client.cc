#include "logc/log_client.h"

#include "util/failpoint.h"
#include "util/logging.h"

namespace nova {
namespace logc {

LogClient::LogClient(stoc::StocClient* stoc_client, uint32_t range_id,
                     const LogOptions& options)
    : stoc_client_(stoc_client), range_id_(range_id), options_(options) {}

Status LogClient::CreateLogFile(uint64_t memtable_id,
                                const std::vector<rdma::NodeId>& stocs) {
  if (options_.mode == LogMode::kNone) {
    return Status::OK();
  }
  auto state = std::make_shared<LogFileState>();
  uint64_t file_id =
      stoc::MakeFileId(range_id_, static_cast<uint32_t>(memtable_id),
                       stoc::FileKind::kLog, 0);
  if (options_.mode == LogMode::kInMemory ||
      options_.mode == LogMode::kBoth) {
    int want = std::min<int>(options_.num_replicas,
                             static_cast<int>(stocs.size()));
    // Walk the whole candidate list, skipping unreachable StoCs, so one
    // dead node degrades to fewer replicas instead of failing the create.
    // Returning early here used to leak the regions already opened on
    // the live StoCs — every memtable rotation leaked more until the
    // log slab was exhausted and flushes wedged.
    Status last_error;
    for (size_t r = 0;
         r < stocs.size() && static_cast<int>(state->replicas.size()) < want;
         r++) {
      // Membership-aware placement: don't even attempt suspect/dead StoCs
      // when enough healthy candidates remain — an expired lease means
      // the log region could vanish under the memtable it backs.
      if (!stoc_client_->IsRoutable(stocs[r]) &&
          static_cast<int>(stocs.size() - r) >
              want - static_cast<int>(state->replicas.size())) {
        continue;
      }
      stoc::InMemFileHandle handle;
      Status s = stoc_client_->OpenInMemFile(stocs[r], file_id,
                                             options_.region_size, &handle);
      if (!s.ok()) {
        last_error = s;
        continue;
      }
      state->replicas.push_back(std::move(handle));
    }
    if (state->replicas.empty()) {
      return last_error.ok() ? Status::Unavailable("no log replicas opened")
                             : last_error;
    }
  }
  if (options_.mode == LogMode::kPersistent ||
      options_.mode == LogMode::kBoth) {
    state->persistent_stoc = stocs[0];
    state->persistent_file_id = file_id;
  }
  std::lock_guard<std::mutex> l(mu_);
  files_[memtable_id] = std::move(state);
  return Status::OK();
}

bool LogClient::HasLogFile(uint64_t memtable_id) {
  std::lock_guard<std::mutex> l(mu_);
  return files_.count(memtable_id) > 0;
}

Status LogClient::AppendInMemory(LogFileState* state, const Slice& encoded) {
  // Reserve an offset (and possibly pad into a fresh region) under the
  // file lock; the actual one-sided writes proceed outside it.
  uint64_t write_offset;
  std::vector<std::pair<uint64_t, bool>> padding;  // (offset, needs marker)
  {
    std::lock_guard<std::mutex> l(state->mu);
    uint64_t region_size = state->replicas.front().regions.front().size;
    uint64_t base = state->current_region * region_size;
    uint64_t local = state->next_offset - base;
    if (encoded.size() + kPaddingBytes > region_size) {
      return Status::InvalidArgument("log record larger than region");
    }
    if (local + encoded.size() + kPaddingBytes > region_size) {
      // Write a padding marker and move to a new region on every replica.
      padding.emplace_back(state->next_offset, true);
      for (auto& replica : state->replicas) {
        Status s = stoc_client_->ExtendInMemFile(&replica);
        if (!s.ok()) {
          return s;
        }
      }
      state->current_region++;
      state->next_offset = state->current_region * region_size;
    }
    write_offset = state->next_offset;
    state->next_offset += encoded.size();
  }
  std::string marker;
  if (!padding.empty()) {
    PutFixed32(&marker, kPaddingMarker);
  }
  for (const auto& replica : state->replicas) {
    for (const auto& [off, needs] : padding) {
      Status s = stoc_client_->WriteInMem(replica, off, marker);
      if (!s.ok()) {
        return s;
      }
    }
    Status s = options_.use_nic_path
                   ? NicAppend(replica, write_offset, encoded)
                   : stoc_client_->WriteInMem(replica, write_offset, encoded);
    if (!s.ok()) {
      return s;
    }
  }
  return Status::OK();
}

Status LogClient::Append(uint64_t memtable_id, const LogRecord& rec) {
  if (options_.mode == LogMode::kNone) {
    return Status::OK();
  }
  // Failpoint "logc.append": an injected failure here is reported to the
  // caller BEFORE any replica is written — the write is not acknowledged
  // and the put retries, which is exactly the invariant the chaos test
  // checks (no acked write lost).
  Status fp = util::FailPoint::Check("logc.append");
  if (!fp.ok()) {
    return fp;
  }
  // Hold a reference and register as in flight: a concurrent
  // DeleteLogFile (memtable rotated and flushed under us) must neither
  // free the state mid-append nor release the StoC regions while our
  // one-sided writes are still landing in them. Registration happens
  // under mu_, so DeleteLogFile either erases first (we never see the
  // file) or drains us before touching the regions.
  std::shared_ptr<LogFileState> state;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(memtable_id);
    if (it == files_.end()) {
      return Status::InvalidArgument("no log file for memtable");
    }
    state = it->second;
    std::lock_guard<std::mutex> dl(state->drain_mu);
    state->inflight++;
  }
  struct InflightGuard {
    LogFileState* s;
    ~InflightGuard() {
      std::lock_guard<std::mutex> l(s->drain_mu);
      if (--s->inflight == 0) {
        s->drain_cv.notify_all();
      }
    }
  } guard{state.get()};
  std::string encoded;
  EncodeLogRecord(&encoded, rec);
  if (!state->replicas.empty()) {
    Status s = AppendInMemory(state.get(), encoded);
    if (!s.ok()) {
      return s;
    }
  }
  if (state->persistent_stoc >= 0) {
    stoc::StocBlockHandle handle;
    Status s = stoc_client_->AppendBlock(state->persistent_stoc,
                                         state->persistent_file_id, encoded,
                                         &handle);
    if (!s.ok()) {
      return s;
    }
  }
  records_appended_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status LogClient::DeleteLogFile(uint64_t memtable_id) {
  if (options_.mode == LogMode::kNone) {
    return Status::OK();
  }
  std::shared_ptr<LogFileState> state;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = files_.find(memtable_id);
    if (it == files_.end()) {
      return Status::OK();  // already gone (idempotent)
    }
    state = std::move(it->second);
    files_.erase(it);
  }
  // Drain racing appends before releasing the regions (see Append): no
  // new append can find the file, and the in-flight ones finish within
  // an RPC round trip.
  {
    std::unique_lock<std::mutex> dl(state->drain_mu);
    state->drain_cv.wait(dl, [&] { return state->inflight == 0; });
  }
  for (const auto& replica : state->replicas) {
    stoc_client_->DeleteFile(replica.stoc_id, replica.file_id, true);
  }
  if (state->persistent_stoc >= 0) {
    stoc_client_->DeleteFile(state->persistent_stoc,
                             state->persistent_file_id, false);
  }
  return Status::OK();
}

Status LogClient::NicAppend(const stoc::InMemFileHandle& handle,
                            uint64_t global_offset, const Slice& data) {
  return stoc_client_->NicAppend(handle, global_offset, data);
}

void LogClient::Adopt(uint64_t memtable_id,
                      std::vector<stoc::InMemFileHandle> replicas) {
  auto state = std::make_shared<LogFileState>();
  state->replicas = std::move(replicas);
  std::lock_guard<std::mutex> l(mu_);
  files_[memtable_id] = std::move(state);
}

Status LogClient::FetchAllLogRecords(
    stoc::StocClient* stoc_client, const std::vector<rdma::NodeId>& stocs,
    uint32_t range_id,
    std::map<uint64_t, std::vector<LogRecord>>* by_memtable,
    std::map<uint64_t, std::vector<stoc::InMemFileHandle>>* handles_out) {
  // Collect each log file's first reachable replica (and remember every
  // replica for adoption).
  std::map<uint64_t, stoc::InMemFileHandle> files;
  for (rdma::NodeId stoc : stocs) {
    std::vector<stoc::InMemFileHandle> handles;
    Status s = stoc_client->QueryLogFiles(stoc, range_id, &handles);
    if (!s.ok()) {
      continue;  // this StoC may be down; replicas cover for it
    }
    for (auto& h : handles) {
      if (handles_out != nullptr) {
        (*handles_out)[h.file_id].push_back(h);
      }
      files.emplace(h.file_id, std::move(h));
    }
  }
  for (const auto& [file_id, handle] : files) {
    for (size_t r = 0; r < handle.regions.size(); r++) {
      std::string region_bytes;
      Status s = stoc_client->ReadInMemRegion(handle, r, &region_bytes);
      if (!s.ok()) {
        // The file may have been deleted between the query and the read
        // (its memtable flushed concurrently); its data is durable in the
        // SSTable, so skip it.
        break;
      }
      Slice input(region_bytes);
      bool next_region = false;
      while (!next_region) {
        LogRecord rec;
        switch (DecodeLogRecord(&input, &rec)) {
          case DecodeResult::kRecord:
            (*by_memtable)[rec.memtable_id].push_back(std::move(rec));
            break;
          case DecodeResult::kPadding:
            next_region = true;
            break;
          case DecodeResult::kEnd:
            if (input.size() < 4) {
              // Region exhausted without an explicit end: continue in the
              // next region if there is one.
              next_region = true;
            } else {
              // Genuine end of this log file.
              r = handle.regions.size();
              next_region = true;
            }
            break;
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace logc
}  // namespace nova
