#include "logc/log_record.h"

#include "util/coding.h"

namespace nova {
namespace logc {

void EncodeLogRecord(std::string* dst, const LogRecord& rec) {
  std::string body;
  PutVarint64(&body, rec.memtable_id);
  PutVarint64(&body, rec.sequence);
  body.push_back(static_cast<char>(rec.type));
  PutLengthPrefixedSlice(&body, rec.key);
  PutLengthPrefixedSlice(&body, rec.value);
  PutFixed32(dst, static_cast<uint32_t>(body.size()));
  dst->append(body);
}

size_t EncodedLogRecordSize(const LogRecord& rec) {
  std::string tmp;
  EncodeLogRecord(&tmp, rec);
  return tmp.size();
}

DecodeResult DecodeLogRecord(Slice* input, LogRecord* rec) {
  if (input->size() < 4) {
    return DecodeResult::kEnd;
  }
  uint32_t len = DecodeFixed32(input->data());
  if (len == 0) {
    return DecodeResult::kEnd;
  }
  if (len == kPaddingMarker) {
    input->remove_prefix(kPaddingBytes);
    return DecodeResult::kPadding;
  }
  if (input->size() < 4 + static_cast<size_t>(len)) {
    return DecodeResult::kEnd;
  }
  Slice body(input->data() + 4, len);
  uint64_t mid, seq;
  Slice key, value;
  if (!GetVarint64(&body, &mid) || !GetVarint64(&body, &seq) ||
      body.empty()) {
    return DecodeResult::kEnd;
  }
  uint8_t type = static_cast<uint8_t>(body[0]);
  body.remove_prefix(1);
  if (type > kTypeValue || !GetLengthPrefixedSlice(&body, &key) ||
      !GetLengthPrefixedSlice(&body, &value)) {
    return DecodeResult::kEnd;
  }
  rec->memtable_id = mid;
  rec->sequence = seq;
  rec->type = static_cast<ValueType>(type);
  rec->key = key.ToString();
  rec->value = value.ToString();
  input->remove_prefix(4 + len);
  return DecodeResult::kRecord;
}

}  // namespace logc
}  // namespace nova
