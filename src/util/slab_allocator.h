// Memcached-style slab allocator over a fixed preallocated memory region.
// The paper (Section 7) manages all RDMA READ/WRITE memory this way:
// requests for different sizes allocate and free from size classes carved
// out of a fixed arena, so the RDMA-registered region never grows.
#ifndef NOVA_UTIL_SLAB_ALLOCATOR_H_
#define NOVA_UTIL_SLAB_ALLOCATOR_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace nova {

class SlabAllocator {
 public:
  struct Options {
    size_t total_bytes = 64 << 20;   // size of the preallocated region
    size_t min_chunk = 64;           // smallest size class
    double growth_factor = 2.0;      // size-class growth
    size_t slab_page_bytes = 1 << 20;  // pages handed to a class at a time
  };

  explicit SlabAllocator(const Options& options);
  ~SlabAllocator();

  SlabAllocator(const SlabAllocator&) = delete;
  SlabAllocator& operator=(const SlabAllocator&) = delete;

  /// Returns nullptr when the arena is exhausted or n exceeds the largest
  /// size class. The returned pointer lies inside the registered region.
  char* Allocate(size_t n);

  /// Free a pointer previously returned by Allocate with the same size.
  void Free(char* ptr, size_t n);

  /// Base of the preallocated region (what an RNIC would register).
  char* region_base() const { return region_; }
  size_t region_size() const { return options_.total_bytes; }

  size_t allocated_bytes() const;
  size_t num_size_classes() const { return classes_.size(); }
  /// Chunk size of class index i (for tests/introspection).
  size_t class_chunk_size(size_t i) const { return classes_[i].chunk_size; }

 private:
  struct SizeClass {
    size_t chunk_size;
    std::vector<char*> free_list;
  };

  /// Index of the smallest class whose chunk_size >= n, or -1.
  int ClassFor(size_t n) const;
  /// Carve a fresh slab page into chunks for class c. Returns false when
  /// the region is exhausted.
  bool Grow(SizeClass* c);

  Options options_;
  char* region_;
  size_t region_used_ = 0;  // bump offset for carving slab pages
  mutable std::mutex mu_;
  std::vector<SizeClass> classes_;
  size_t allocated_ = 0;
};

}  // namespace nova

#endif  // NOVA_UTIL_SLAB_ALLOCATOR_H_
