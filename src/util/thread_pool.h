// A fixed-size worker pool with a bounded-wait Shutdown. Components use
// dedicated pools for client workers, compaction threads, reorg threads and
// recovery threads, mirroring the paper's thread model (Section 3.2).
#ifndef NOVA_UTIL_THREAD_POOL_H_
#define NOVA_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace nova {

class ThreadPool {
 public:
  /// Starts num_threads workers immediately. name is used for diagnostics.
  ThreadPool(std::string name, int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue work; returns false if the pool is shutting down.
  bool Submit(std::function<void()> task);

  /// Block until all queued work at the time of the call has drained.
  void Drain();

  /// Stop accepting work, finish queued tasks, join workers.
  void Shutdown();

  int num_threads() const { return static_cast<int>(threads_.size()); }
  size_t queue_depth() const;

 private:
  void WorkerLoop();

  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable drain_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace nova

#endif  // NOVA_UTIL_THREAD_POOL_H_
