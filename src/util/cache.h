// Charge-based sharded LRU cache (LevelDB-lineage design). Entries are
// arbitrary void* values with an explicit charge; the cache holds at most
// `capacity` total charge per instance, sharded by key hash so concurrent
// lookups on different keys rarely contend on the same mutex. Handles act
// as pins: an entry returned by Lookup/Insert stays alive — even if it is
// evicted or erased concurrently — until every handle to it is Released,
// so in-flight iterators survive capacity thrash and file invalidation.
//
// Admission is scan-resistant (two-queue, RocksDB-midpoint-style): each
// shard keeps two eviction queues. kHot accesses (point gets, reader
// entries) live in the hot queue, capped at hot_fraction of capacity;
// kCold admissions (scan readahead, streaming) enter the cold queue,
// which is evicted first — so a scan sweeping the file set can only ever
// displace other cold blocks, never the point-get working set. A cold
// entry touched again by a kHot access is promoted; hot overflow demotes
// the oldest hot entries to the cold queue's MRU end (the "midpoint")
// instead of dropping them. hot_fraction >= 1 disables the split —
// classic single-queue LRU, kept as the bench baseline.
//
// The LTC uses one instance per node as the uncompressed (hot-tier)
// data-block cache for the StoC read path plus the backing store for
// TableCache's open readers, and optionally a second instance as the
// compressed block tier (see docs/block_format.md); the baseline and
// tests use private instances.
#ifndef NOVA_UTIL_CACHE_H_
#define NOVA_UTIL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/slice.h"

namespace nova {

class Cache {
 public:
  virtual ~Cache() = default;

  /// Opaque pin on a cache entry.
  struct Handle {};

  /// Access/admission class for the two-queue policy. kHot is the default
  /// everywhere so callers that never heard of scans behave as before;
  /// scan readahead and other streaming reads pass kCold.
  enum class Priority { kHot, kCold };

  /// Insert key -> value with the given charge against capacity. The
  /// returned handle pins the entry and must be Released. When the entry
  /// leaves the cache for good, deleter(key, value) reclaims the value
  /// (possibly long after eviction, once the last pin drops).
  /// pri=kCold admits into the cold queue (evicted first; cannot displace
  /// hot entries).
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value),
                         Priority pri = Priority::kHot) = 0;

  /// nullptr on miss; otherwise a pin that must be Released. count=false
  /// leaves the hit/miss counters alone (reader-entry lookups, so the
  /// reported stats reflect data-block traffic only). A kHot lookup that
  /// hits a cold-queue entry promotes it (the two-queue "second access"
  /// rule); a kCold lookup never promotes, so a scan re-reading its own
  /// readahead cannot smuggle blocks into the hot queue.
  virtual Handle* Lookup(const Slice& key, bool count = true,
                         Priority pri = Priority::kHot) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;

  /// Remove the entry (pinned readers keep their pins; later lookups miss).
  virtual void Erase(const Slice& key) = 0;

  /// Remove every entry whose key starts with prefix — file invalidation:
  /// one SSTable's reader and data blocks share a key prefix, so evicting
  /// a compacted-away file is one call.
  virtual void EraseWithPrefix(const Slice& prefix) = 0;

  /// Remove every entry whose key satisfies match. One full sweep of the
  /// cache, whatever the number of victims — batch invalidation (e.g.,
  /// all of a compaction's dead files at once) costs the same as one
  /// EraseWithPrefix, not one sweep per file.
  virtual void EraseMatching(const std::function<bool(const Slice&)>& match)
      = 0;

  /// Total charge of resident entries (pinned entries included).
  virtual size_t TotalCharge() const = 0;
  virtual size_t capacity() const = 0;

  /// Lifetime lookup counters (benchmark hit-rate reporting).
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
};

/// A Cache with 2^shard_bits independently locked LRU shards.
/// hot_fraction caps the hot queue's share of each shard's capacity
/// (overflow demotes to the cold queue's MRU end); >= 1 disables the
/// two-queue split entirely — classic LRU, priorities ignored.
Cache* NewShardedLRUCache(size_t capacity, int shard_bits = 4,
                          double hot_fraction = 0.75);

}  // namespace nova

#endif  // NOVA_UTIL_CACHE_H_
