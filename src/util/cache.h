// Charge-based sharded LRU cache (LevelDB-lineage design). Entries are
// arbitrary void* values with an explicit charge; the cache holds at most
// `capacity` total charge per instance, sharded by key hash so concurrent
// lookups on different keys rarely contend on the same mutex. Handles act
// as pins: an entry returned by Lookup/Insert stays alive — even if it is
// evicted or erased concurrently — until every handle to it is Released,
// so in-flight iterators survive capacity thrash and file invalidation.
//
// The LTC uses one instance per node as the data-block cache for the StoC
// read path plus the backing store for TableCache's open readers; the
// baseline and tests use private instances.
#ifndef NOVA_UTIL_CACHE_H_
#define NOVA_UTIL_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "util/slice.h"

namespace nova {

class Cache {
 public:
  virtual ~Cache() = default;

  /// Opaque pin on a cache entry.
  struct Handle {};

  /// Insert key -> value with the given charge against capacity. The
  /// returned handle pins the entry and must be Released. When the entry
  /// leaves the cache for good, deleter(key, value) reclaims the value
  /// (possibly long after eviction, once the last pin drops).
  virtual Handle* Insert(const Slice& key, void* value, size_t charge,
                         void (*deleter)(const Slice& key, void* value)) = 0;

  /// nullptr on miss; otherwise a pin that must be Released. count=false
  /// leaves the hit/miss counters alone (reader-entry lookups, so the
  /// reported stats reflect data-block traffic only).
  virtual Handle* Lookup(const Slice& key, bool count = true) = 0;

  virtual void Release(Handle* handle) = 0;
  virtual void* Value(Handle* handle) = 0;

  /// Remove the entry (pinned readers keep their pins; later lookups miss).
  virtual void Erase(const Slice& key) = 0;

  /// Remove every entry whose key starts with prefix — file invalidation:
  /// one SSTable's reader and data blocks share a key prefix, so evicting
  /// a compacted-away file is one call.
  virtual void EraseWithPrefix(const Slice& prefix) = 0;

  /// Remove every entry whose key satisfies match. One full sweep of the
  /// cache, whatever the number of victims — batch invalidation (e.g.,
  /// all of a compaction's dead files at once) costs the same as one
  /// EraseWithPrefix, not one sweep per file.
  virtual void EraseMatching(const std::function<bool(const Slice&)>& match)
      = 0;

  /// Total charge of resident entries (pinned entries included).
  virtual size_t TotalCharge() const = 0;
  virtual size_t capacity() const = 0;

  /// Lifetime lookup counters (benchmark hit-rate reporting).
  virtual uint64_t hits() const = 0;
  virtual uint64_t misses() const = 0;
};

/// A Cache with 2^shard_bits independently locked LRU shards.
Cache* NewShardedLRUCache(size_t capacity, int shard_bits = 4);

}  // namespace nova

#endif  // NOVA_UTIL_CACHE_H_
