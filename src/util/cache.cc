#include "util/cache.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace nova {

namespace {

uint32_t HashSlice(const Slice& s) {
  // FNV-1a, mixed once at the end; cheap and good enough for shard and
  // bucket selection.
  uint32_t h = 2166136261u;
  for (size_t i = 0; i < s.size(); i++) {
    h ^= static_cast<unsigned char>(s.data()[i]);
    h *= 16777619u;
  }
  h ^= h >> 16;
  h *= 0x85ebca6bu;
  h ^= h >> 13;
  return h;
}

/// Intrusive entry: lives in one hash bucket chain and (while resident)
/// on one of the shard's three circular lists. refs counts the cache's
/// own reference (while resident) plus one per outstanding client handle.
struct LRUHandle {
  void* value;
  void (*deleter)(const Slice&, void*);
  LRUHandle* next_hash;
  LRUHandle* next;
  LRUHandle* prev;
  size_t charge;
  size_t key_length;
  bool in_cache;  // resident (findable by Lookup)?
  bool hot;       // hot-queue member (vs cold/scan queue)?
  uint32_t refs;
  uint32_t hash;
  char key_data[1];  // trailing key bytes

  Slice key() const { return Slice(key_data, key_length); }
};

/// Chained hash table of LRUHandle*, resized to keep ~1 entry per bucket.
class HandleTable {
 public:
  HandleTable() { Resize(); }
  ~HandleTable() { delete[] list_; }

  LRUHandle* Lookup(const Slice& key, uint32_t hash) {
    return *FindPointer(key, hash);
  }

  /// Returns the displaced entry with the same key, if any.
  LRUHandle* Insert(LRUHandle* h) {
    LRUHandle** ptr = FindPointer(h->key(), h->hash);
    LRUHandle* old = *ptr;
    h->next_hash = (old == nullptr ? nullptr : old->next_hash);
    *ptr = h;
    if (old == nullptr) {
      elems_++;
      if (elems_ > length_) {
        Resize();
      }
    }
    return old;
  }

  LRUHandle* Remove(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = FindPointer(key, hash);
    LRUHandle* h = *ptr;
    if (h != nullptr) {
      *ptr = h->next_hash;
      elems_--;
    }
    return h;
  }

  /// Visit every entry (prefix invalidation sweeps).
  template <typename Fn>
  void ForEach(Fn fn) {
    for (uint32_t b = 0; b < length_; b++) {
      for (LRUHandle* h = list_[b]; h != nullptr; h = h->next_hash) {
        fn(h);
      }
    }
  }

 private:
  LRUHandle** FindPointer(const Slice& key, uint32_t hash) {
    LRUHandle** ptr = &list_[hash & (length_ - 1)];
    while (*ptr != nullptr && ((*ptr)->hash != hash || key != (*ptr)->key())) {
      ptr = &(*ptr)->next_hash;
    }
    return ptr;
  }

  void Resize() {
    uint32_t new_length = 16;
    while (new_length < elems_) {
      new_length *= 2;
    }
    LRUHandle** new_list = new LRUHandle*[new_length];
    memset(new_list, 0, sizeof(new_list[0]) * new_length);
    for (uint32_t b = 0; b < length_; b++) {
      LRUHandle* h = list_[b];
      while (h != nullptr) {
        LRUHandle* next = h->next_hash;
        LRUHandle** ptr = &new_list[h->hash & (new_length - 1)];
        h->next_hash = *ptr;
        *ptr = h;
        h = next;
      }
    }
    delete[] list_;
    list_ = new_list;
    length_ = new_length;
  }

  uint32_t length_ = 0;
  uint32_t elems_ = 0;
  LRUHandle** list_ = nullptr;
};

/// One mutex-protected two-queue LRU. hot_lru_ and cold_lru_ hold
/// resident entries nobody has pinned (eviction candidates, oldest
/// first; cold evicted before hot); in_use_ holds resident entries with
/// outstanding handles — they are never evicted, only detached, so a
/// cache smaller than the working set still serves every in-flight read.
class LRUShard {
 public:
  ~LRUShard() {
    assert(in_use_.next == &in_use_);  // callers must release all handles
    for (LRUHandle* list : {&hot_lru_, &cold_lru_}) {
      for (LRUHandle* h = list->next; h != list;) {
        LRUHandle* next = h->next;
        assert(h->refs == 1);
        h->in_cache = false;  // dropping the cache's own reference
        Unref(h);
        h = next;
      }
    }
  }

  void set_capacity(size_t capacity, size_t hot_capacity) {
    capacity_ = capacity;
    hot_capacity_ = hot_capacity;
  }

  LRUHandle* Insert(const Slice& key, uint32_t hash, void* value,
                    size_t charge, void (*deleter)(const Slice&, void*),
                    bool hot) {
    auto* h = static_cast<LRUHandle*>(
        malloc(sizeof(LRUHandle) - 1 + key.size()));
    h->value = value;
    h->deleter = deleter;
    h->charge = charge;
    h->key_length = key.size();
    h->hash = hash;
    h->in_cache = true;
    h->hot = hot;
    h->refs = 2;  // the cache's reference + the returned handle
    memcpy(h->key_data, key.data(), key.size());

    std::lock_guard<std::mutex> l(mu_);
    ListAppend(&in_use_, h);
    usage_ += charge;
    if (hot) {
      hot_usage_ += charge;
    }
    FinishErase(table_.Insert(h));
    MaintainHotLocked();
    EvictLocked();
    return h;
  }

  LRUHandle* Lookup(const Slice& key, uint32_t hash, bool promote) {
    std::lock_guard<std::mutex> l(mu_);
    LRUHandle* h = table_.Lookup(key, hash);
    if (h != nullptr) {
      // Two-queue second-access rule: a hot-class hit on a cold entry
      // promotes it. The list move happens in Ref (unpinned entries) or
      // at Unref time via h->hot (pinned ones).
      if (promote && !h->hot) {
        h->hot = true;
        hot_usage_ += h->charge;
        if (h->refs == 1 && h->in_cache) {
          ListRemove(h);
          ListAppend(&hot_lru_, h);
        }
        MaintainHotLocked();
      }
      Ref(h);
    }
    return h;
  }

  void Release(LRUHandle* h) {
    std::lock_guard<std::mutex> l(mu_);
    Unref(h);
  }

  void Erase(const Slice& key, uint32_t hash) {
    std::lock_guard<std::mutex> l(mu_);
    FinishErase(table_.Remove(key, hash));
  }

  void EraseMatching(const std::function<bool(const Slice&)>& match) {
    std::lock_guard<std::mutex> l(mu_);
    std::vector<LRUHandle*> victims;
    table_.ForEach([&](LRUHandle* h) {
      if (match(h->key())) {
        victims.push_back(h);
      }
    });
    for (LRUHandle* h : victims) {
      FinishErase(table_.Remove(h->key(), h->hash));
    }
  }

  size_t usage() const {
    std::lock_guard<std::mutex> l(mu_);
    return usage_;
  }

 private:
  void Ref(LRUHandle* h) {
    if (h->refs == 1 && h->in_cache) {  // on an lru list: move to in_use_
      ListRemove(h);
      ListAppend(&in_use_, h);
    }
    h->refs++;
  }

  void Unref(LRUHandle* h) {
    assert(h->refs > 0);
    h->refs--;
    if (h->refs == 0) {  // fully released and not resident: reclaim
      assert(!h->in_cache);
      h->deleter(h->key(), h->value);
      free(h);
    } else if (h->in_cache && h->refs == 1) {  // no pins left: evictable
      ListRemove(h);
      ListAppend(h->hot ? &hot_lru_ : &cold_lru_, h);
      EvictLocked();
    }
  }

  /// Detach an entry already removed from the table (no-op on nullptr).
  void FinishErase(LRUHandle* h) {
    if (h != nullptr) {
      assert(h->in_cache);
      h->in_cache = false;
      ListRemove(h);
      usage_ -= h->charge;
      if (h->hot) {
        hot_usage_ -= h->charge;
      }
      Unref(h);
    }
  }

  /// Keep the hot queue within its share: overflow demotes the oldest
  /// unpinned hot entries onto the cold queue's MRU end (the midpoint) —
  /// they age through the cold queue instead of being dropped. Pinned hot
  /// entries cannot be demoted; the loop simply stops when only those
  /// remain over budget.
  void MaintainHotLocked() {
    while (hot_usage_ > hot_capacity_ && hot_lru_.next != &hot_lru_) {
      LRUHandle* old = hot_lru_.next;  // oldest unpinned hot entry
      old->hot = false;
      hot_usage_ -= old->charge;
      ListRemove(old);
      ListAppend(&cold_lru_, old);
    }
  }

  void EvictLocked() {
    // Cold queue first: scans and streams evict each other; the hot
    // working set goes only when there is nothing cold left to shed.
    while (usage_ > capacity_) {
      LRUHandle* old = cold_lru_.next != &cold_lru_ ? cold_lru_.next
                       : hot_lru_.next != &hot_lru_ ? hot_lru_.next
                                                    : nullptr;
      if (old == nullptr) {
        break;  // everything resident is pinned
      }
      assert(old->refs == 1);
      FinishErase(table_.Remove(old->key(), old->hash));
    }
  }

  static void ListRemove(LRUHandle* h) {
    h->next->prev = h->prev;
    h->prev->next = h->next;
  }

  static void ListAppend(LRUHandle* list, LRUHandle* h) {
    // Newest entries go just before `list`, so list->next is the oldest.
    h->next = list;
    h->prev = list->prev;
    h->prev->next = h;
    h->next->prev = h;
  }

  mutable std::mutex mu_;
  size_t capacity_ = 0;
  size_t hot_capacity_ = 0;
  size_t usage_ = 0;
  size_t hot_usage_ = 0;  // includes pinned (in_use_) hot entries
  HandleTable table_;
  // Dummy heads of the circular lists.
  LRUHandle hot_lru_{nullptr, nullptr, nullptr, &hot_lru_, &hot_lru_,
                     0,       0,       false,   false,     0,
                     0,       {0}};
  LRUHandle cold_lru_{nullptr, nullptr, nullptr, &cold_lru_, &cold_lru_,
                      0,       0,       false,   false,      0,
                      0,       {0}};
  LRUHandle in_use_{nullptr, nullptr, nullptr, &in_use_, &in_use_,
                    0,       0,       false,   false,    0,
                    0,       {0}};
};

class ShardedLRUCache final : public Cache {
 public:
  ShardedLRUCache(size_t capacity, int shard_bits, double hot_fraction)
      : shard_bits_(shard_bits), capacity_(capacity),
        two_queue_(hot_fraction < 1.0 && hot_fraction > 0.0),
        shards_(1u << shard_bits) {
    // Round the per-shard capacity up so the shards sum to >= capacity.
    size_t per_shard = (capacity + shards_.size() - 1) / shards_.size();
    // hot_fraction >= 1 (or <= 0): classic LRU — the hot queue takes
    // everything and priorities are coerced to kHot below.
    size_t hot_per_shard =
        two_queue_ ? static_cast<size_t>(per_shard * hot_fraction)
                   : per_shard;
    for (auto& s : shards_) {
      s.set_capacity(per_shard, hot_per_shard);
    }
  }

  Handle* Insert(const Slice& key, void* value, size_t charge,
                 void (*deleter)(const Slice&, void*),
                 Priority pri) override {
    uint32_t hash = HashSlice(key);
    bool hot = !two_queue_ || pri == Priority::kHot;
    return reinterpret_cast<Handle*>(
        ShardFor(hash).Insert(key, hash, value, charge, deleter, hot));
  }

  Handle* Lookup(const Slice& key, bool count, Priority pri) override {
    uint32_t hash = HashSlice(key);
    bool promote = two_queue_ && pri == Priority::kHot;
    LRUHandle* h = ShardFor(hash).Lookup(key, hash, promote);
    if (count) {
      (h != nullptr ? hits_ : misses_)
          .fetch_add(1, std::memory_order_relaxed);
    }
    return reinterpret_cast<Handle*>(h);
  }

  void Release(Handle* handle) override {
    LRUHandle* h = reinterpret_cast<LRUHandle*>(handle);
    ShardFor(h->hash).Release(h);
  }

  void* Value(Handle* handle) override {
    return reinterpret_cast<LRUHandle*>(handle)->value;
  }

  void Erase(const Slice& key) override {
    uint32_t hash = HashSlice(key);
    ShardFor(hash).Erase(key, hash);
  }

  void EraseWithPrefix(const Slice& prefix) override {
    EraseMatching([&prefix](const Slice& key) {
      return key.size() >= prefix.size() &&
             memcmp(key.data(), prefix.data(), prefix.size()) == 0;
    });
  }

  void EraseMatching(
      const std::function<bool(const Slice&)>& match) override {
    // Matching keys hash to arbitrary shards: sweep them all.
    for (auto& s : shards_) {
      s.EraseMatching(match);
    }
  }

  size_t TotalCharge() const override {
    size_t total = 0;
    for (const auto& s : shards_) {
      total += s.usage();
    }
    return total;
  }

  size_t capacity() const override { return capacity_; }
  uint64_t hits() const override {
    return hits_.load(std::memory_order_relaxed);
  }
  uint64_t misses() const override {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  // (shift by 32 is undefined, so single-shard caches index directly)
  LRUShard& ShardFor(uint32_t hash) {
    return shards_[shard_bits_ == 0 ? 0 : hash >> (32 - shard_bits_)];
  }
  const LRUShard& ShardFor(uint32_t hash) const {
    return shards_[shard_bits_ == 0 ? 0 : hash >> (32 - shard_bits_)];
  }

  int shard_bits_;
  size_t capacity_;
  bool two_queue_;
  std::vector<LRUShard> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace

Cache* NewShardedLRUCache(size_t capacity, int shard_bits,
                          double hot_fraction) {
  return new ShardedLRUCache(capacity, shard_bits, hot_fraction);
}

}  // namespace nova
