// A small, fast, reproducible pseudo-random generator (xorshift128+ core)
// plus helpers used across the workload generators and placement policies.
#ifndef NOVA_UTIL_RANDOM_H_
#define NOVA_UTIL_RANDOM_H_

#include <cstdint>

namespace nova {

class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = seed * 0x9e3779b97f4a7c15ull + 1;
    s_[1] = (seed ^ 0xda3e39cb94b95bdbull) | 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; i++) {
      Next64();
    }
  }

  uint64_t Next64() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  uint32_t Next() { return static_cast<uint32_t>(Next64() >> 32); }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next64() % n; }

  /// Returns true with probability 1/n.
  bool OneIn(uint64_t n) { return Uniform(n) == 0; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * (1.0 / (1ull << 53));
  }

  /// Skewed: pick base so that smaller numbers are exponentially likelier.
  uint64_t Skewed(int max_log) {
    return Uniform(1ull << Uniform(max_log + 1));
  }

 private:
  uint64_t s_[2];
};

}  // namespace nova

#endif  // NOVA_UTIL_RANDOM_H_
