// YCSB-style key-choosing distributions: Uniform, Zipfian (Gray et al.'s
// incremental method, as in the YCSB ZipfianGenerator), and a scrambled
// variant that spreads the hot keys over the keyspace. The paper uses the
// YCSB default constant 0.99 ("85% of requests reference 10% of keys") and
// also 0.27 / 0.73 for the skew sweep (Figure 12).
#ifndef NOVA_UTIL_ZIPFIAN_H_
#define NOVA_UTIL_ZIPFIAN_H_

#include <cstdint>

#include "util/random.h"

namespace nova {

/// Interface shared by the key distributions.
class KeyGenerator {
 public:
  virtual ~KeyGenerator() = default;
  /// Next key index in [0, num_keys).
  virtual uint64_t Next(Random* rng) = 0;
  virtual uint64_t num_keys() const = 0;
};

class UniformGenerator final : public KeyGenerator {
 public:
  explicit UniformGenerator(uint64_t num_keys) : num_keys_(num_keys) {}
  uint64_t Next(Random* rng) override { return rng->Uniform(num_keys_); }
  uint64_t num_keys() const override { return num_keys_; }

 private:
  uint64_t num_keys_;
};

class ZipfianGenerator final : public KeyGenerator {
 public:
  /// theta is the Zipfian constant (YCSB default 0.99).
  ZipfianGenerator(uint64_t num_keys, double theta);

  uint64_t Next(Random* rng) override;
  uint64_t num_keys() const override { return num_keys_; }

 private:
  double Zeta(uint64_t n, double theta_val) const;

  uint64_t num_keys_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2theta_;
};

/// Zipfian with rank-0 hotness scattered via an FNV hash, as YCSB's
/// ScrambledZipfianGenerator does; keeps hot keys from clustering in one
/// application range (useful for multi-LTC skew experiments where the paper
/// instead relies on contiguous hot ranges — both modes are provided).
class ScrambledZipfianGenerator final : public KeyGenerator {
 public:
  ScrambledZipfianGenerator(uint64_t num_keys, double theta)
      : zipf_(num_keys, theta), num_keys_(num_keys) {}

  uint64_t Next(Random* rng) override;
  uint64_t num_keys() const override { return num_keys_; }

 private:
  ZipfianGenerator zipf_;
  uint64_t num_keys_;
};

}  // namespace nova

#endif  // NOVA_UTIL_ZIPFIAN_H_
