// Unified retry/deadline machinery (ISSUE 9): a Deadline that propagates
// through RPC call chains (StocClient -> rdma::Future::Wait) so a wedged
// StoC surfaces as a typed Status::Unavailable at the configured budget
// instead of a hard-coded 30 s IOError, and a RetryPolicy with
// exponential backoff + deterministic jitter replacing the scattered
// ad-hoc timeout_ms constants.
#ifndef NOVA_UTIL_RETRY_H_
#define NOVA_UTIL_RETRY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "util/status.h"

namespace nova {
namespace util {

/// An absolute point in time a call chain must finish by. Passed down by
/// value; remaining_ms() shrinks as layers consume budget, so the
/// innermost wait (rdma::Future::Wait) times out exactly when the
/// outermost caller's budget is gone.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// An infinite deadline (never expires).
  Deadline() = default;

  static Deadline After(int64_t ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }
  static Deadline AfterUs(int64_t us) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::microseconds(us);
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return !has_deadline_; }
  bool expired() const { return has_deadline_ && Clock::now() >= at_; }

  /// Milliseconds left, clamped at 0. For infinite deadlines returns
  /// `cap_ms` (callers that need a finite poll interval pass one).
  int64_t remaining_ms(int64_t cap_ms = INT64_MAX) const {
    if (!has_deadline_) return cap_ms;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    at_ - Clock::now())
                    .count();
    return std::max<int64_t>(0, std::min<int64_t>(left, cap_ms));
  }

  Clock::time_point at() const { return at_; }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Exponential backoff with deterministic jitter. One policy object per
/// call site; Backoff(attempt) is stateless so policies can live in
/// options structs and be shared across threads.
struct RetryPolicy {
  int max_attempts = 3;
  int64_t base_backoff_us = 200;
  int64_t max_backoff_us = 50 * 1000;
  /// Jitter fraction in [0,1): each backoff is scaled by a deterministic
  /// per-attempt factor in [1-jitter, 1].
  double jitter = 0.25;

  int64_t BackoffUs(int attempt, uint64_t salt = 0) const {
    if (attempt <= 0) return 0;
    int64_t b = base_backoff_us;
    for (int i = 1; i < attempt && b < max_backoff_us; i++) b *= 2;
    b = std::min(b, max_backoff_us);
    if (jitter > 0) {
      // splitmix64 of (attempt, salt): deterministic, no global state.
      uint64_t z = (static_cast<uint64_t>(attempt) * 0x9e3779b97f4a7c15ull) ^
                   (salt + 0x2545f4914f6cdd1dull);
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      double u = static_cast<double>((z ^ (z >> 31)) >> 11) *
                 (1.0 / 9007199254740992.0);
      b = static_cast<int64_t>(b * (1.0 - jitter * u));
    }
    return b;
  }

  /// True if `s` is worth retrying: transient unavailability or a timed
  /// out RPC, never data errors (Corruption/NotFound/InvalidArgument).
  static bool Retriable(const Status& s) {
    return s.IsUnavailable() || s.IsBusy();
  }

  /// Run `op` (a callable returning Status) up to max_attempts times,
  /// backing off between attempts, never past `deadline`.
  template <typename Op>
  Status Run(const Deadline& deadline, uint64_t salt, Op&& op) const {
    Status s;
    for (int attempt = 0; attempt < max_attempts; attempt++) {
      if (deadline.expired()) {
        return Status::Unavailable("deadline exceeded before attempt");
      }
      s = op();
      if (s.ok() || !Retriable(s)) return s;
      if (attempt + 1 < max_attempts) {
        int64_t backoff = BackoffUs(attempt + 1, salt);
        int64_t budget_us = deadline.remaining_ms(INT64_MAX / 2) * 1000;
        std::this_thread::sleep_for(
            std::chrono::microseconds(std::min(backoff, budget_us)));
      }
    }
    return s;
  }
};

}  // namespace util
}  // namespace nova

#endif  // NOVA_UTIL_RETRY_H_
