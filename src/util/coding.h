// Binary encoding helpers: little-endian fixed-width integers, LEB128
// varints, and length-prefixed slices. Used by the SSTable format, log
// records, the MANIFEST, and RDMA message framing.
#ifndef NOVA_UTIL_CODING_H_
#define NOVA_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/slice.h"

namespace nova {

void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);
void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parse a varint32/64 from *input, advancing it past the parsed bytes.
/// Returns false on malformed input.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Lower-level: encode directly into a caller-provided buffer (which must
/// have room); returns a pointer just past the last written byte.
char* EncodeVarint32(char* dst, uint32_t value);
char* EncodeVarint64(char* dst, uint64_t value);
const char* GetVarint32Ptr(const char* p, const char* limit, uint32_t* value);
const char* GetVarint64Ptr(const char* p, const char* limit, uint64_t* value);

int VarintLength(uint64_t v);

inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));  // little-endian hosts only
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}
inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t result;
  memcpy(&result, ptr, sizeof(result));
  return result;
}

}  // namespace nova

#endif  // NOVA_UTIL_CODING_H_
