#include "util/compressor.h"

#include <cstring>

namespace nova {

namespace {

// NovaLz: an LZ4-block-format-style byte LZ. A compressed stream is a run
// of sequences
//
//   [token][lit-ext...][literals][offset:2 LE][match-ext...]
//
// where the token's high nibble is the literal length and its low nibble
// is (match length - kMinMatch); a nibble of 15 continues in extension
// bytes (each adds 0..255, a value of 255 meaning "more"). Matches copy
// `offset` bytes back into the already-produced output (offset 1..65535,
// overlap allowed — that is how runs compress). The final sequence is
// literals only: the stream simply ends after them.
constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;
constexpr size_t kMinInput = 16;  // below this a match can't pay for itself

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t HashWord(uint32_t v) {
  return (v * 2654435761u) >> (32 - kHashBits);
}

void EmitExtLength(std::string* out, size_t len) {
  while (len >= 255) {
    out->push_back(static_cast<char>(255));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

void EmitSequence(const uint8_t* literals, size_t lit_len, size_t offset,
                  size_t match_len, std::string* out) {
  size_t lit_nib = lit_len < 15 ? lit_len : 15;
  size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  size_t match_nib = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nib << 4) | match_nib));
  if (lit_nib == 15) {
    EmitExtLength(out, lit_len - 15);
  }
  out->append(reinterpret_cast<const char*>(literals), lit_len);
  if (match_len == 0) {
    return;  // final sequence: no offset, stream ends after the literals
  }
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_nib == 15) {
    EmitExtLength(out, match_code - 15);
  }
}

/// Bounds-checked read of a nibble-15 length extension. max caps the
/// accumulated length so a malicious run of 255s cannot overflow.
bool ReadExtLength(const uint8_t** p, const uint8_t* end, size_t max,
                   size_t* len) {
  uint8_t b;
  do {
    if (*p >= end) {
      return false;
    }
    b = **p;
    (*p)++;
    *len += b;
    if (*len > max) {
      return false;
    }
  } while (b == 255);
  return true;
}

class NovaLzCompressor final : public Compressor {
 public:
  uint8_t id() const override { return kNovaLzCompression; }
  const char* name() const override { return "novalz"; }

  bool Compress(const Slice& input, std::string* out) const override {
    const size_t n = input.size();
    if (n < kMinInput || n > 0xffffffffu) {
      return false;
    }
    const size_t out_start = out->size();
    const auto* base = reinterpret_cast<const uint8_t*>(input.data());
    const uint8_t* end = base + n;
    // Greedy match finder: one hash-table slot per 4-byte shingle, last
    // occurrence wins. Position 0 doubles as "empty"; the content compare
    // below makes a stale slot harmless.
    uint32_t table[1u << kHashBits] = {0};
    const uint8_t* ip = base;
    const uint8_t* anchor = base;
    while (ip + kMinMatch <= end) {
      uint32_t word = Load32(ip);
      uint32_t h = HashWord(word);
      const uint8_t* cand = base + table[h];
      table[h] = static_cast<uint32_t>(ip - base);
      if (cand < ip && static_cast<size_t>(ip - cand) <= kMaxOffset &&
          Load32(cand) == word) {
        size_t match_len = kMinMatch;
        while (ip + match_len < end && cand[match_len] == ip[match_len]) {
          match_len++;
        }
        EmitSequence(anchor, static_cast<size_t>(ip - anchor),
                     static_cast<size_t>(ip - cand), match_len, out);
        ip += match_len;
        anchor = ip;
        if (out->size() - out_start >= n) {
          break;  // already not paying for itself
        }
      } else {
        ip++;
      }
    }
    EmitSequence(anchor, static_cast<size_t>(end - anchor), 0, 0, out);
    if (out->size() - out_start >= n) {
      out->resize(out_start);  // incompressible: caller stores raw
      return false;
    }
    return true;
  }

  Status Uncompress(const Slice& input, size_t uncompressed_len,
                    std::string* out) const override {
    out->clear();
    out->reserve(uncompressed_len);
    const auto* p = reinterpret_cast<const uint8_t*>(input.data());
    const uint8_t* end = p + input.size();
    while (p < end) {
      uint8_t token = *p++;
      size_t lit_len = token >> 4;
      if (lit_len == 15 &&
          !ReadExtLength(&p, end, uncompressed_len, &lit_len)) {
        return Status::Corruption("novalz: bad literal length");
      }
      if (lit_len > static_cast<size_t>(end - p)) {
        return Status::Corruption("novalz: literal run past input");
      }
      if (out->size() + lit_len > uncompressed_len) {
        return Status::Corruption("novalz: output overrun");
      }
      out->append(reinterpret_cast<const char*>(p), lit_len);
      p += lit_len;
      if (p == end) {
        break;  // final, literals-only sequence
      }
      if (end - p < 2) {
        return Status::Corruption("novalz: truncated match offset");
      }
      size_t offset = static_cast<size_t>(p[0]) | (static_cast<size_t>(p[1]) << 8);
      p += 2;
      if (offset == 0 || offset > out->size()) {
        return Status::Corruption("novalz: match offset before output start");
      }
      size_t match_len = token & 0x0f;
      if (match_len == 15 &&
          !ReadExtLength(&p, end, uncompressed_len, &match_len)) {
        return Status::Corruption("novalz: bad match length");
      }
      match_len += kMinMatch;
      if (out->size() + match_len > uncompressed_len) {
        return Status::Corruption("novalz: output overrun");
      }
      // Byte-wise so overlapping matches (offset < length) replicate runs.
      size_t from = out->size() - offset;
      for (size_t i = 0; i < match_len; i++) {
        char c = (*out)[from + i];
        out->push_back(c);
      }
    }
    if (out->size() != uncompressed_len) {
      return Status::Corruption("novalz: short decompressed block");
    }
    return Status::OK();
  }
};

}  // namespace

const Compressor* GetCompressor(uint8_t codec_id) {
  static const NovaLzCompressor kNovaLz;
  switch (codec_id) {
    case kNovaLzCompression:
      return &kNovaLz;
    default:
      return nullptr;
  }
}

}  // namespace nova
