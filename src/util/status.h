// Status: the error-reporting currency of the library. Functions that can
// fail return a Status (or a value plus a Status out-param) instead of
// throwing; this matches the Google style used throughout the codebase.
#ifndef NOVA_UTIL_STATUS_H_
#define NOVA_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/slice.h"

namespace nova {

class Status {
 public:
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(const Slice& msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(const Slice& msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(const Slice& msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status InvalidArgument(const Slice& msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(const Slice& msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Unavailable(const Slice& msg) {
    return Status(Code::kUnavailable, msg);
  }
  static Status Busy(const Slice& msg) { return Status(Code::kBusy, msg); }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsBusy() const { return code_ == Code::kBusy; }

  /// Human-readable representation, e.g. "IO error: device failed".
  std::string ToString() const;

 private:
  enum class Code {
    kOk = 0,
    kNotFound,
    kCorruption,
    kNotSupported,
    kInvalidArgument,
    kIOError,
    kUnavailable,
    kBusy,
  };

  Status(Code code, const Slice& msg) : code_(code), msg_(msg.ToString()) {}

  Code code_;
  std::string msg_;
};

}  // namespace nova

#endif  // NOVA_UTIL_STATUS_H_
