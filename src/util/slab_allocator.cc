#include "util/slab_allocator.h"

#include <algorithm>
#include <cstdlib>

namespace nova {

SlabAllocator::SlabAllocator(const Options& options) : options_(options) {
  region_ = static_cast<char*>(malloc(options_.total_bytes));
  size_t size = options_.min_chunk;
  while (size <= options_.slab_page_bytes) {
    classes_.push_back(SizeClass{size, {}});
    size_t next = static_cast<size_t>(size * options_.growth_factor);
    if (next <= size) {
      next = size + 1;
    }
    size = next;
  }
  // Ensure one class that spans a whole slab page for the largest requests.
  if (classes_.empty() ||
      classes_.back().chunk_size != options_.slab_page_bytes) {
    classes_.push_back(SizeClass{options_.slab_page_bytes, {}});
  }
}

SlabAllocator::~SlabAllocator() { free(region_); }

int SlabAllocator::ClassFor(size_t n) const {
  for (size_t i = 0; i < classes_.size(); i++) {
    if (classes_[i].chunk_size >= n) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

bool SlabAllocator::Grow(SizeClass* c) {
  size_t page = options_.slab_page_bytes;
  if (region_used_ + page > options_.total_bytes) {
    return false;
  }
  char* base = region_ + region_used_;
  region_used_ += page;
  size_t count = page / c->chunk_size;
  c->free_list.reserve(c->free_list.size() + count);
  for (size_t i = 0; i < count; i++) {
    c->free_list.push_back(base + i * c->chunk_size);
  }
  return true;
}

char* SlabAllocator::Allocate(size_t n) {
  if (n == 0) {
    n = 1;
  }
  int idx = ClassFor(n);
  if (idx < 0) {
    return nullptr;
  }
  std::lock_guard<std::mutex> l(mu_);
  SizeClass* c = &classes_[idx];
  if (c->free_list.empty() && !Grow(c)) {
    return nullptr;
  }
  char* ptr = c->free_list.back();
  c->free_list.pop_back();
  allocated_ += c->chunk_size;
  return ptr;
}

void SlabAllocator::Free(char* ptr, size_t n) {
  if (ptr == nullptr) {
    return;
  }
  int idx = ClassFor(n == 0 ? 1 : n);
  if (idx < 0) {
    return;
  }
  std::lock_guard<std::mutex> l(mu_);
  SizeClass* c = &classes_[idx];
  c->free_list.push_back(ptr);
  allocated_ -= c->chunk_size;
}

size_t SlabAllocator::allocated_bytes() const {
  std::lock_guard<std::mutex> l(mu_);
  return allocated_;
}

}  // namespace nova
