#include "util/status.h"

namespace nova {

std::string Status::ToString() const {
  const char* type;
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      type = "NotFound: ";
      break;
    case Code::kCorruption:
      type = "Corruption: ";
      break;
    case Code::kNotSupported:
      type = "Not supported: ";
      break;
    case Code::kInvalidArgument:
      type = "Invalid argument: ";
      break;
    case Code::kIOError:
      type = "IO error: ";
      break;
    case Code::kUnavailable:
      type = "Unavailable: ";
      break;
    case Code::kBusy:
      type = "Busy: ";
      break;
    default:
      type = "Unknown code: ";
      break;
  }
  return std::string(type) + msg_;
}

}  // namespace nova
