// Abstract iterator over a sorted key/value sequence, in the LevelDB mold.
// Implemented by memtables, SSTable blocks, whole SSTables, level
// concatenations and merging iterators.
#ifndef NOVA_UTIL_ITERATOR_H_
#define NOVA_UTIL_ITERATOR_H_

#include "util/slice.h"
#include "util/status.h"

namespace nova {

class Iterator {
 public:
  Iterator() = default;
  virtual ~Iterator() = default;

  Iterator(const Iterator&) = delete;
  Iterator& operator=(const Iterator&) = delete;

  virtual bool Valid() const = 0;
  virtual void SeekToFirst() = 0;
  virtual void SeekToLast() = 0;
  /// Position at the first entry with key >= target.
  virtual void Seek(const Slice& target) = 0;
  virtual void Next() = 0;
  virtual void Prev() = 0;
  /// REQUIRES: Valid().
  virtual Slice key() const = 0;
  virtual Slice value() const = 0;
  virtual Status status() const = 0;
};

/// An iterator over nothing (always invalid, OK status).
Iterator* NewEmptyIterator();
/// An always-invalid iterator carrying an error.
Iterator* NewErrorIterator(const Status& status);

}  // namespace nova

#endif  // NOVA_UTIL_ITERATOR_H_
