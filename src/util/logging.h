// Minimal leveled logging to stderr. Defaults to warnings-and-above so that
// tests and benchmarks stay quiet; NOVA_LOG_LEVEL env or SetLogLevel can
// raise verbosity when debugging.
#ifndef NOVA_UTIL_LOGGING_H_
#define NOVA_UTIL_LOGGING_H_

#include <cstdio>

namespace nova {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

}  // namespace nova

#define NOVA_LOG_AT(level, tag, ...)                         \
  do {                                                       \
    if (static_cast<int>(level) >=                           \
        static_cast<int>(::nova::GetLogLevel())) {           \
      fprintf(stderr, "[%s %s:%d] ", tag, __FILE__, __LINE__); \
      fprintf(stderr, __VA_ARGS__);                          \
      fprintf(stderr, "\n");                                 \
    }                                                        \
  } while (0)

#define NOVA_DEBUG(...) NOVA_LOG_AT(::nova::LogLevel::kDebug, "D", __VA_ARGS__)
#define NOVA_INFO(...) NOVA_LOG_AT(::nova::LogLevel::kInfo, "I", __VA_ARGS__)
#define NOVA_WARN(...) NOVA_LOG_AT(::nova::LogLevel::kWarn, "W", __VA_ARGS__)
#define NOVA_ERROR(...) NOVA_LOG_AT(::nova::LogLevel::kError, "E", __VA_ARGS__)

#endif  // NOVA_UTIL_LOGGING_H_
