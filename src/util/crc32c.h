// CRC32C (Castagnoli) checksums, software table implementation. Used to
// protect SSTable blocks, log records, and MANIFEST entries.
#ifndef NOVA_UTIL_CRC32C_H_
#define NOVA_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace nova {
namespace crc32c {

/// Return the crc32c of concat(A, data[0,n-1]) where init_crc is the
/// crc32c of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Return the crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Masked CRCs are stored on disk so that a CRC of a string containing
/// embedded CRCs does not degenerate (LevelDB convention).
inline uint32_t Mask(uint32_t crc) {
  static const uint32_t kMaskDelta = 0xa282ead8ul;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  static const uint32_t kMaskDelta = 0xa282ead8ul;
  uint32_t rot = masked_crc - kMaskDelta;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace nova

#endif  // NOVA_UTIL_CRC32C_H_
