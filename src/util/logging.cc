#include "util/logging.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace nova {
namespace {

std::atomic<int> g_level{-1};

int InitLevelFromEnv() {
  const char* env = getenv("NOVA_LOG_LEVEL");
  if (env == nullptr) {
    return static_cast<int>(LogLevel::kWarn);
  }
  if (strcmp(env, "debug") == 0) return static_cast<int>(LogLevel::kDebug);
  if (strcmp(env, "info") == 0) return static_cast<int>(LogLevel::kInfo);
  if (strcmp(env, "error") == 0) return static_cast<int>(LogLevel::kError);
  return static_cast<int>(LogLevel::kWarn);
}

}  // namespace

LogLevel GetLogLevel() {
  int v = g_level.load(std::memory_order_relaxed);
  if (v < 0) {
    v = InitLevelFromEnv();
    g_level.store(v, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(v);
}

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

}  // namespace nova
