#include "util/iterator.h"

namespace nova {
namespace {

class EmptyIterator : public Iterator {
 public:
  explicit EmptyIterator(const Status& s) : status_(s) {}

  bool Valid() const override { return false; }
  void SeekToFirst() override {}
  void SeekToLast() override {}
  void Seek(const Slice&) override {}
  void Next() override {}
  void Prev() override {}
  Slice key() const override { return Slice(); }
  Slice value() const override { return Slice(); }
  Status status() const override { return status_; }

 private:
  Status status_;
};

}  // namespace

Iterator* NewEmptyIterator() { return new EmptyIterator(Status::OK()); }

Iterator* NewErrorIterator(const Status& status) {
  return new EmptyIterator(status);
}

}  // namespace nova
