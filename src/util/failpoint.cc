#include "util/failpoint.h"

#include <chrono>
#include <map>
#include <mutex>
#include <thread>

namespace nova {
namespace util {

namespace {

struct Site {
  FailPoint::Trigger trigger;
  bool is_error = false;
  Status error;          // is_error
  uint32_t delay_us = 0; // !is_error
  uint64_t checks = 0;   // Checks observed since armed
  uint64_t fires = 0;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  // splitmix64 state: deterministic across platforms, reseedable.
  uint64_t rng_state = 0x9e3779b97f4a7c15ull;

  double NextUniform() {
    uint64_t z = (rng_state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z = z ^ (z >> 31);
    return static_cast<double>(z >> 11) * (1.0 / 9007199254740992.0);
  }
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

}  // namespace

std::atomic<int> FailPoint::armed_count_{0};

void FailPoint::EnableError(const std::string& site, Status error,
                            Trigger trigger) {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  bool fresh = r.sites.find(site) == r.sites.end();
  Site& s = r.sites[site];
  s = Site();
  s.trigger = trigger;
  s.is_error = true;
  s.error = std::move(error);
  if (fresh) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailPoint::EnableDelay(const std::string& site, uint32_t delay_us,
                            Trigger trigger) {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  bool fresh = r.sites.find(site) == r.sites.end();
  Site& s = r.sites[site];
  s = Site();
  s.trigger = trigger;
  s.is_error = false;
  s.delay_us = delay_us;
  if (fresh) armed_count_.fetch_add(1, std::memory_order_relaxed);
}

void FailPoint::Disable(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  if (r.sites.erase(site) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoint::DisableAll() {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  armed_count_.fetch_sub(static_cast<int>(r.sites.size()),
                         std::memory_order_relaxed);
  r.sites.clear();
}

void FailPoint::Seed(uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  // Avoid the all-zero fixed point and decorrelate nearby seeds.
  r.rng_state = seed * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
}

Status FailPoint::Check(const std::string& site) {
  if (armed_count_.load(std::memory_order_relaxed) == 0) return Status::OK();
  Status err;
  uint32_t delay_us = 0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> l(r.mu);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return Status::OK();
    Site& s = it->second;
    s.checks++;
    if (s.checks <= s.trigger.skip) return Status::OK();
    bool fire = false;
    switch (s.trigger.kind) {
      case Trigger::Kind::kAlways:
        fire = true;
        break;
      case Trigger::Kind::kOnce:
        fire = (s.fires == 0);
        break;
      case Trigger::Kind::kEveryNth:
        fire = ((s.checks - s.trigger.skip) % s.trigger.nth == 0);
        break;
      case Trigger::Kind::kProbability:
        fire = (r.NextUniform() < s.trigger.p);
        break;
    }
    if (!fire) return Status::OK();
    s.fires++;
    if (s.is_error) {
      err = s.error;
    } else {
      delay_us = s.delay_us;
    }
  }
  if (delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
  }
  return err.ok() ? Status::OK() : err;
}

uint64_t FailPoint::FireCount(const std::string& site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> l(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fires;
}

}  // namespace util
}  // namespace nova
