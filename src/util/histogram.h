// A thread-safe latency histogram with exponential bucket boundaries.
// Records microsecond values; reports avg, percentiles, min, max. Used by
// the benchmark harness for the paper's avg/p95/p99 response-time tables.
#ifndef NOVA_UTIL_HISTOGRAM_H_
#define NOVA_UTIL_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace nova {

class Histogram {
 public:
  Histogram();

  void Add(uint64_t value_us);
  void Merge(const Histogram& other);
  void Clear();

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double Average() const;
  /// p in [0, 100]; linear interpolation within the matched bucket.
  double Percentile(double p) const;
  uint64_t Min() const { return min_.load(std::memory_order_relaxed); }
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }

  std::string ToString() const;

  static constexpr int kNumBuckets = 154;

 private:
  /// Bucket index for a value; boundaries grow ~12% per bucket.
  static int BucketFor(uint64_t value);
  static uint64_t BucketUpper(int bucket);

  std::atomic<uint64_t> count_;
  std::atomic<uint64_t> sum_;
  std::atomic<uint64_t> min_;
  std::atomic<uint64_t> max_;
  std::vector<std::atomic<uint64_t>> buckets_;
};

}  // namespace nova

#endif  // NOVA_UTIL_HISTOGRAM_H_
