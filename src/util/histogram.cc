#include "util/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace nova {
namespace {

// Precomputed exponential bucket upper bounds: 1, 2, ..., growing by ~12%,
// covering up to ~10^9 us (~17 minutes) in kNumBuckets buckets.
struct Bounds {
  uint64_t upper[Histogram::kNumBuckets];
  Bounds() {
    double v = 1.0;
    for (int i = 0; i < Histogram::kNumBuckets; i++) {
      upper[i] = static_cast<uint64_t>(v);
      v = std::max(v * 1.15, v + 1.0);
    }
  }
};

const Bounds& bounds() {
  static const Bounds b;
  return b;
}

}  // namespace

Histogram::Histogram()
    : count_(0),
      sum_(0),
      min_(std::numeric_limits<uint64_t>::max()),
      max_(0),
      buckets_(kNumBuckets) {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
}

int Histogram::BucketFor(uint64_t value) {
  const auto& b = bounds();
  int lo = 0;
  int hi = kNumBuckets - 1;
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (b.upper[mid] >= value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

uint64_t Histogram::BucketUpper(int bucket) { return bounds().upper[bucket]; }

void Histogram::Add(uint64_t value_us) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value_us, std::memory_order_relaxed);
  uint64_t prev_min = min_.load(std::memory_order_relaxed);
  while (value_us < prev_min &&
         !min_.compare_exchange_weak(prev_min, value_us)) {
  }
  uint64_t prev_max = max_.load(std::memory_order_relaxed);
  while (value_us > prev_max &&
         !max_.compare_exchange_weak(prev_max, value_us)) {
  }
  buckets_[BucketFor(value_us)].fetch_add(1, std::memory_order_relaxed);
}

void Histogram::Merge(const Histogram& other) {
  count_.fetch_add(other.count_.load());
  sum_.fetch_add(other.sum_.load());
  uint64_t omin = other.min_.load();
  uint64_t prev_min = min_.load();
  while (omin < prev_min && !min_.compare_exchange_weak(prev_min, omin)) {
  }
  uint64_t omax = other.max_.load();
  uint64_t prev_max = max_.load();
  while (omax > prev_max && !max_.compare_exchange_weak(prev_max, omax)) {
  }
  for (int i = 0; i < kNumBuckets; i++) {
    buckets_[i].fetch_add(other.buckets_[i].load());
  }
}

void Histogram::Clear() {
  count_.store(0);
  sum_.store(0);
  min_.store(std::numeric_limits<uint64_t>::max());
  max_.store(0);
  for (auto& b : buckets_) {
    b.store(0);
  }
}

double Histogram::Average() const {
  uint64_t c = count_.load();
  if (c == 0) {
    return 0;
  }
  return static_cast<double>(sum_.load()) / static_cast<double>(c);
}

double Histogram::Percentile(double p) const {
  uint64_t total = count_.load();
  if (total == 0) {
    return 0;
  }
  double threshold = total * (p / 100.0);
  uint64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; i++) {
    uint64_t b = buckets_[i].load();
    cumulative += b;
    if (cumulative >= threshold) {
      uint64_t lower = (i == 0) ? 0 : BucketUpper(i - 1);
      uint64_t upper = BucketUpper(i);
      if (b == 0) {
        return static_cast<double>(upper);
      }
      // Linear interpolation within the bucket.
      double frac = (threshold - (cumulative - b)) / static_cast<double>(b);
      return lower + frac * (upper - lower);
    }
  }
  return static_cast<double>(max_.load());
}

std::string Histogram::ToString() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "count=%llu avg=%.1fus p50=%.1fus p95=%.1fus p99=%.1fus "
           "min=%lluus max=%lluus",
           static_cast<unsigned long long>(count()), Average(),
           Percentile(50), Percentile(95), Percentile(99),
           static_cast<unsigned long long>(count() ? Min() : 0),
           static_cast<unsigned long long>(Max()));
  return buf;
}

}  // namespace nova
