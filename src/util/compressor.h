// Pluggable per-block compression for the SSTable block stack. A codec is
// identified by the single byte stored in each block trailer
// (sstable/format.h); codec 0 means the payload is stored raw — both the
// legacy (pre-trailer) format and the incompressible-data fallback.
//
// The built-in codec is a self-contained LZ4-block-style byte LZ
// (token/literals/offset sequences, greedy hash-table match finder): fast
// enough to sit on the flush/compaction path and dependency-free, which
// matters because blocks are decompressed on the LTC read path for every
// hot-tier cache miss.
#ifndef NOVA_UTIL_COMPRESSOR_H_
#define NOVA_UTIL_COMPRESSOR_H_

#include <cstdint>
#include <string>

#include "util/slice.h"
#include "util/status.h"

namespace nova {

/// Codec ids as stored in the block trailer's codec byte.
enum CompressionCodec : uint8_t {
  kNoCompression = 0,
  kNovaLzCompression = 1,
};

class Compressor {
 public:
  virtual ~Compressor() = default;

  /// The codec byte written to block trailers.
  virtual uint8_t id() const = 0;
  virtual const char* name() const = 0;

  /// Append the compressed form of input to *out. Returns false when the
  /// input does not shrink (incompressible data) — the caller then stores
  /// the payload raw under codec 0, so decompression is never on the
  /// critical path for data that would not have paid for it.
  virtual bool Compress(const Slice& input, std::string* out) const = 0;

  /// Decompress input into *out, which must come out to exactly
  /// uncompressed_len bytes. Every read is bounds-checked against the
  /// input and every write against uncompressed_len, so a corrupted or
  /// truncated payload yields Status::Corruption, never an OOB access.
  virtual Status Uncompress(const Slice& input, size_t uncompressed_len,
                            std::string* out) const = 0;
};

/// The registered codec for a trailer byte; nullptr for kNoCompression
/// (raw payloads need no codec) and for unknown ids (callers surface
/// Status::Corruption).
const Compressor* GetCompressor(uint8_t codec_id);

}  // namespace nova

#endif  // NOVA_UTIL_COMPRESSOR_H_
