#include "util/thread_pool.h"

namespace nova {

ThreadPool::ThreadPool(std::string name, int num_threads)
    : name_(std::move(name)) {
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; i++) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutdown_) {
      return false;
    }
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> l(mu_);
  drain_cv_.wait(l, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> l(mu_);
    if (shutdown_) {
      return;
    }
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    if (t.joinable()) {
      t.join();
    }
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> l(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> l(mu_);
      work_cv_.wait(l, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ with an empty queue: exit.
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    task();
    {
      std::lock_guard<std::mutex> l(mu_);
      active_--;
      if (queue_.empty() && active_ == 0) {
        drain_cv_.notify_all();
      }
    }
  }
}

}  // namespace nova
