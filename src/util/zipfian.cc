#include "util/zipfian.h"

#include <cmath>

namespace nova {

ZipfianGenerator::ZipfianGenerator(uint64_t num_keys, double theta)
    : num_keys_(num_keys), theta_(theta) {
  zeta2theta_ = Zeta(2, theta_);
  zetan_ = Zeta(num_keys_, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(num_keys_), 1.0 - theta_)) /
         (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::Zeta(uint64_t n, double theta_val) const {
  double sum = 0;
  for (uint64_t i = 1; i <= n; i++) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta_val);
  }
  return sum;
}

uint64_t ZipfianGenerator::Next(Random* rng) {
  double u = rng->NextDouble();
  double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  uint64_t v = static_cast<uint64_t>(
      static_cast<double>(num_keys_) *
      std::pow(eta_ * u - eta_ + 1.0, alpha_));
  if (v >= num_keys_) {
    v = num_keys_ - 1;
  }
  return v;
}

uint64_t ScrambledZipfianGenerator::Next(Random* rng) {
  uint64_t rank = zipf_.Next(rng);
  // 64-bit FNV-1a over the rank bytes.
  uint64_t hash = 0xcbf29ce484222325ull;
  for (int i = 0; i < 8; i++) {
    hash ^= (rank >> (i * 8)) & 0xff;
    hash *= 0x100000001b3ull;
  }
  return hash % num_keys_;
}

}  // namespace nova
