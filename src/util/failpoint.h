// Deterministic fault injection (ISSUE 9): named failpoint sites compiled
// into the production paths (rpc send, stoc read/append, log append, block
// store) that tests and benches can arm at runtime to inject a typed error
// or a delay. The registry is seedable so probabilistic chaos runs are
// reproducible: the same seed fires the same sites in the same order.
//
// Usage at a site (cheap when nothing is armed — one relaxed atomic load):
//
//   Status s = util::FailPoint::Check("rpc.send");
//   if (!s.ok()) return s;
//
// Usage in a test:
//
//   util::FailPoint::Seed(1234);
//   util::FailPoint::EnableError("rpc.send", Status::Unavailable("inj"),
//                                util::FailPoint::Trigger::Probability(0.05));
//   ... run workload ...
//   util::FailPoint::DisableAll();
#ifndef NOVA_UTIL_FAILPOINT_H_
#define NOVA_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace nova {
namespace util {

class FailPoint {
 public:
  /// When an armed site fires.
  struct Trigger {
    enum class Kind { kAlways, kOnce, kEveryNth, kProbability };
    Kind kind = Kind::kAlways;
    uint32_t nth = 1;     // kEveryNth: fire on every nth Check
    double p = 1.0;       // kProbability: fire with probability p
    uint32_t skip = 0;    // skip the first `skip` Checks before arming

    static Trigger Always() { return Trigger{}; }
    static Trigger Once() { return Trigger{Kind::kOnce, 1, 1.0, 0}; }
    static Trigger EveryNth(uint32_t n) {
      return Trigger{Kind::kEveryNth, n == 0 ? 1 : n, 1.0, 0};
    }
    static Trigger Probability(double p) {
      return Trigger{Kind::kProbability, 1, p, 0};
    }
    Trigger AfterSkipping(uint32_t n) const {
      Trigger t = *this;
      t.skip = n;
      return t;
    }
  };

  /// Arm `site` to return `error` when the trigger fires.
  static void EnableError(const std::string& site, Status error,
                          Trigger trigger = Trigger::Always());
  /// Arm `site` to sleep `delay_us` when the trigger fires (Check still
  /// returns OK — models a slow, not failed, dependency).
  static void EnableDelay(const std::string& site, uint32_t delay_us,
                          Trigger trigger = Trigger::Always());
  static void Disable(const std::string& site);
  static void DisableAll();

  /// Reseed the deterministic RNG used by Probability triggers.
  static void Seed(uint64_t seed);

  /// Evaluate `site`. Returns the armed error if an error action fired,
  /// OK otherwise (after any delay action). Near-free when no site is
  /// armed anywhere in the process.
  static Status Check(const std::string& site);

  /// Times `site` fired since it was armed (testing/diagnostics).
  static uint64_t FireCount(const std::string& site);

 private:
  static std::atomic<int> armed_count_;
};

}  // namespace util
}  // namespace nova

#endif  // NOVA_UTIL_FAILPOINT_H_
