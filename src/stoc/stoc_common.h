// Shared definitions for the Storage Component (StoC) protocol: globally
// unique file ids, block handles, and the request opcodes that ride on the
// RDMA RPC layer.
//
// File ids encode their provenance ("Each file name maintains its range id
// and SSTable file number", paper Section 9) so a restarting StoC can ask
// the owning LTC whether a file is still referenced:
//   [16 bits range id][32 bits number][8 bits kind][8 bits fragment index]
#ifndef NOVA_STOC_STOC_COMMON_H_
#define NOVA_STOC_STOC_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/coding.h"
#include "util/slice.h"
#include "util/status.h"

namespace nova {
namespace stoc {

enum class FileKind : uint8_t {
  kData = 1,      // one SSTable data fragment
  kMeta = 2,      // SSTable metadata block (index + bloom), replicated
  kParity = 3,    // parity block over the data fragments
  kLog = 4,       // LogC log file
  kManifest = 5,  // per-range MANIFEST
};

inline uint64_t MakeFileId(uint32_t range_id, uint32_t number, FileKind kind,
                           uint8_t fragment) {
  return (static_cast<uint64_t>(range_id & 0xffff) << 48) |
         (static_cast<uint64_t>(number) << 16) |
         (static_cast<uint64_t>(kind) << 8) | fragment;
}

inline uint32_t FileIdRange(uint64_t file_id) {
  return static_cast<uint32_t>(file_id >> 48);
}
inline uint32_t FileIdNumber(uint64_t file_id) {
  return static_cast<uint32_t>((file_id >> 16) & 0xffffffff);
}
inline FileKind FileIdKind(uint64_t file_id) {
  return static_cast<FileKind>((file_id >> 8) & 0xff);
}
inline uint8_t FileIdFragment(uint64_t file_id) {
  return static_cast<uint8_t>(file_id & 0xff);
}

/// Location of one block inside a persistent StoC file.
struct StocBlockHandle {
  int32_t stoc_id = -1;
  uint64_t file_id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const {
    PutVarint32(dst, static_cast<uint32_t>(stoc_id));
    PutVarint64(dst, file_id);
    PutVarint64(dst, offset);
    PutVarint64(dst, size);
  }
  bool DecodeFrom(Slice* input) {
    uint32_t sid;
    if (!GetVarint32(input, &sid) || !GetVarint64(input, &file_id) ||
        !GetVarint64(input, &offset) || !GetVarint64(input, &size)) {
      return false;
    }
    stoc_id = static_cast<int32_t>(sid);
    return true;
  }
};

/// One registered memory region of an in-memory StoC file.
struct InMemRegion {
  uint32_t mr_id = 0;
  uint64_t size = 0;
};

/// Client-side handle for an in-memory StoC file (paper Section 6.1: a set
/// of contiguous memory regions written with one-sided RDMA WRITE).
struct InMemFileHandle {
  int32_t stoc_id = -1;
  uint64_t file_id = 0;
  std::vector<InMemRegion> regions;
};

enum StocOp : uint8_t {
  kOpOpenInMemFile = 1,
  kOpExtendInMemFile = 2,
  kOpDeleteFile = 3,
  kOpAllocBlock = 4,
  kOpReadBlock = 5,
  kOpStats = 6,
  kOpQueryLogFiles = 7,
  kOpCompaction = 8,
  kOpListFiles = 9,
  kOpCopyFileTo = 10,
  /// Append to an in-memory file through the server's CPU instead of a
  /// one-sided write — the paper's NIC-path replication (Section 8.2.3).
  kOpNicAppend = 11,
};

/// Response status convention: u8 1=ok followed by payload, or 0 followed
/// by an error message.
inline std::string OkResponse(const Slice& payload = Slice()) {
  std::string r;
  r.push_back(1);
  r.append(payload.data(), payload.size());
  return r;
}
inline std::string ErrorResponse(const Status& s) {
  std::string r;
  r.push_back(0);
  std::string msg = s.ToString();
  r.append(msg);
  return r;
}
inline Status ParseResponse(const Slice& resp, Slice* payload) {
  if (resp.empty()) {
    return Status::IOError("empty stoc response");
  }
  if (resp[0] == 1) {
    *payload = Slice(resp.data() + 1, resp.size() - 1);
    return Status::OK();
  }
  return Status::IOError(Slice(resp.data() + 1, resp.size() - 1));
}

}  // namespace stoc
}  // namespace nova

#endif  // NOVA_STOC_STOC_COMMON_H_
