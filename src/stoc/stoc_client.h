// Client library for talking to StoCs (used by LTCs, LogC, the compaction
// executor, and StoCs themselves during StoC-to-StoC copies). Implements
// the append flow of Figure 10 and the one-sided in-memory file protocol
// of Section 6.1 on top of the shared RpcEndpoint.
#ifndef NOVA_STOC_STOC_CLIENT_H_
#define NOVA_STOC_STOC_CLIENT_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coord/membership.h"
#include "rdma/rpc.h"
#include "stoc/stoc_common.h"
#include "util/histogram.h"
#include "util/retry.h"

namespace nova {
namespace stoc {

struct StocStats {
  int queue_depth = 0;
  uint64_t stored_bytes = 0;
  double cpu_utilization = 0;
  /// Offloaded compactions executing on / completed by the StoC.
  int compactions_inflight = 0;
  uint64_t compactions_done = 0;
};

/// Read-path replica selection and hedging (the paper's power-of-d
/// component selection, §4/§6, extended from placement to reads).
struct ReadPolicy {
  /// Candidates issued up front when a read has >1 replica: the d
  /// least-loaded by (outstanding requests, latency EWMA); first success
  /// wins, the losers are cancelled. 1 = pick the single least-loaded.
  int replica_d = 2;
  /// Speculatively re-issue a straggling read to the next-least-loaded
  /// replica once it has been outstanding longer than the hedge delay.
  bool hedge = true;
  /// Floor for the hedge delay; also used verbatim until the latency
  /// histogram holds hedge_min_samples observations to trust a p99.
  uint64_t hedge_min_delay_us = 2000;
  int hedge_min_samples = 64;
};

class StocClient;

/// Client-side load tracking for one StoC: outstanding read RPCs plus an
/// EWMA of observed read latency. Shared with in-flight PendingReads so a
/// read completing after the client rebalances still settles its StoC.
struct StocLoad {
  std::atomic<int> outstanding{0};
  std::atomic<uint64_t> ewma_us{0};
  /// Lifetime reads issued to this StoC (tests pin replica selection).
  std::atomic<uint64_t> issued{0};
  /// Wire traffic to/from this StoC: request + one-sided write bytes out,
  /// response-body bytes in (benchmarks report bytes_over_wire with it).
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> bytes_received{0};
  /// Test hook: bias added to outstanding when ranking replicas, so load
  /// can be injected deterministically without real in-flight reads.
  std::atomic<int> rank_bias{0};
};

/// An in-flight ReadBlock. Wait() parses the StoC response frame.
/// Move-only: the read owns one unit of its StoC's outstanding-load count
/// until it is waited, cancelled, or dropped.
class PendingRead {
 public:
  PendingRead() = default;
  ~PendingRead() { Settle(false); }
  PendingRead(PendingRead&& o) noexcept { *this = std::move(o); }
  PendingRead& operator=(PendingRead&& o) noexcept;
  PendingRead(const PendingRead&) = delete;
  PendingRead& operator=(const PendingRead&) = delete;

  bool valid() const { return future_.valid(); }
  /// True once the response (or a failure) landed; never blocks.
  bool ready() const { return future_.ready(); }
  Status Wait(std::string* out, int timeout_ms = 30000);
  /// Withdraw a losing duplicated/hedged attempt: the late response is
  /// dropped and the StoC's load count is released now. Safe when the
  /// completion already landed (it is simply discarded).
  void Cancel();

 private:
  friend class StocClient;
  /// Release the outstanding-load unit; feed the latency sample into the
  /// EWMA/histogram only when the read completed successfully.
  void Settle(bool record_latency);

  rdma::Future future_;
  std::shared_ptr<StocLoad> load_;
  StocClient* client_ = nullptr;
  rdma::NodeId stoc_ = -1;
  uint64_t start_us_ = 0;
  bool settled_ = false;
};

/// An in-flight AppendBlock following the Figure-10 flow. The block data
/// slice must stay valid until Arm() returns. Typical batch usage:
/// AsyncAppendBlock all, Arm() all (each waits only the short buffer-grant
/// RPC, then issues the one-sided data write), Wait() all — the slow StoC
/// flushes then overlap across the whole batch.
class PendingAppend {
 public:
  PendingAppend() = default;
  /// Dropping an append that was never driven to completion withdraws its
  /// flush-token slot so the endpoint's waiter map cannot grow unbounded.
  ~PendingAppend() { Abandon(); }
  PendingAppend(PendingAppend&& o) noexcept { *this = std::move(o); }
  PendingAppend& operator=(PendingAppend&& o) noexcept;
  PendingAppend(const PendingAppend&) = delete;
  PendingAppend& operator=(const PendingAppend&) = delete;

  bool valid() const { return client_ != nullptr; }
  /// Step 2: collect the buffer grant and issue the one-sided RDMA WRITE
  /// of the data (immediate data = buffer id). Call exactly once.
  Status Arm();
  /// Step 3: wait for the flush acknowledgment; decodes *handle. Reaps
  /// the completion token on failure, so no cleanup call is needed.
  Status Wait(StocBlockHandle* handle, int timeout_ms = 30000);

 private:
  friend class StocClient;
  void Abandon();

  StocClient* client_ = nullptr;
  rdma::NodeId stoc_ = -1;
  Slice data_;
  rdma::Future alloc_;
  rdma::Future flush_ack_;
  Status armed_status_;
  bool armed_ = false;
  /// True once the flush token cannot dangle: the flush ack was waited
  /// for, or the token was reaped after a failure/abandonment.
  bool settled_ = false;
};

/// One read in a GatherReads batch: candidate replica locations (tried in
/// order) plus the byte range; status/data are filled by the gather.
struct GatherRead {
  struct Target {
    rdma::NodeId stoc = -1;
    uint64_t file_id = 0;
  };
  std::vector<Target> replicas;
  uint64_t offset = 0;
  uint64_t size = 0;  // 0 = whole file

  Status status;
  std::string data;
};

class StocClient {
 public:
  /// endpoint is shared with the owning component (its xchg threads route
  /// our responses); it must outlive this client.
  explicit StocClient(rdma::RpcEndpoint* endpoint) : endpoint_(endpoint) {}

  /// --- Persistent files (Figure 10 flow) ---

  /// Append data as one block of file_id on stoc. On success *handle
  /// locates the block. This performs: alloc RPC, one-sided RDMA WRITE
  /// with immediate data, then waits for the flush acknowledgment.
  Status AppendBlock(rdma::NodeId stoc, uint64_t file_id, const Slice& data,
                     StocBlockHandle* handle);

  /// Read [offset, offset+size) of a persistent file. size 0 = whole file.
  Status ReadBlock(rdma::NodeId stoc, uint64_t file_id, uint64_t offset,
                   uint64_t size, std::string* out);

  /// --- Asynchronous data path (the fan-out substrate: scatter writes,
  /// parity gathers, scan readahead all ride on these) ---

  /// Begin an append (step 1 of Figure 10: the buffer-grant RPC plus the
  /// completion-token registration). See PendingAppend for the protocol.
  PendingAppend AsyncAppendBlock(rdma::NodeId stoc, uint64_t file_id,
                                 const Slice& data);
  /// Begin a read; collect it with PendingRead::Wait.
  PendingRead AsyncReadBlock(rdma::NodeId stoc, uint64_t file_id,
                             uint64_t offset, uint64_t size);
  /// Begin a read against the least-loaded of the candidate replicas
  /// (readahead path: one attempt, no hedging).
  PendingRead AsyncReadLeastLoaded(
      const std::vector<GatherRead::Target>& replicas, uint64_t offset,
      uint64_t size);
  /// Issue every read concurrently under the client's ReadPolicy: each
  /// entry goes to its d least-loaded replicas (first success wins, the
  /// losers are cancelled), fails over to the remaining candidates when
  /// every issued attempt errors, and hedges a straggling entry to the
  /// next-least-loaded replica after the p99-derived hedge delay. Fills
  /// each entry's status/data; returns OK iff every entry succeeded (the
  /// first failure otherwise — all entries are still driven to
  /// completion).
  Status GatherReads(std::vector<GatherRead>* reads, int timeout_ms = 30000);
  /// Single replicated read: a one-entry GatherReads.
  Status ReadReplicated(const std::vector<GatherRead::Target>& replicas,
                        uint64_t offset, uint64_t size, std::string* out,
                        int timeout_ms = 30000);

  /// --- Membership circuit breaker (ISSUE 9) ---
  ///
  /// When set, no reads, writes, or hedges are routed to suspect/dead
  /// StoCs (a half-open trickle of probes excepted, so recovery is
  /// detected), and every RPC outcome feeds the health state machine.
  /// The Membership is owned by the coordinator and must outlive this
  /// client.
  void set_membership(coord::Membership* m) {
    membership_.store(m, std::memory_order_release);
  }
  coord::Membership* membership() const {
    return membership_.load(std::memory_order_acquire);
  }
  /// True when normal traffic may be routed to stoc (no membership set,
  /// or the node is alive).
  bool IsRoutable(rdma::NodeId stoc) const;
  /// Feed an RPC outcome into membership. Only connection-level failures
  /// (Unavailable: dead node, deadline expiry, circuit-relevant injected
  /// faults) count against a node; an application error still proves the
  /// node answered.
  void ReportRpc(rdma::NodeId stoc, const Status& s);

  void set_read_policy(const ReadPolicy& policy) {
    std::lock_guard<std::mutex> l(load_mu_);
    policy_ = policy;
  }
  ReadPolicy read_policy() {
    std::lock_guard<std::mutex> l(load_mu_);
    return policy_;
  }
  /// Per-StoC load state (created on first use). Tests inject rank_bias
  /// through this; the read path updates outstanding/ewma through it.
  std::shared_ptr<StocLoad> load(rdma::NodeId stoc);
  /// Hedge delay currently in force: max(p99 of observed read latency,
  /// policy floor), or the floor alone until enough samples accumulated.
  uint64_t HedgeDelayUs();

  /// Lifetime count of ReadBlock RPCs issued through this client (the
  /// block-cache benchmarks report StoC reads avoided with it).
  uint64_t read_block_calls() const {
    return read_block_calls_.load(std::memory_order_relaxed);
  }
  /// Reads that had a choice of replica and used power-of-d selection.
  uint64_t pod_reads() const {
    return pod_reads_.load(std::memory_order_relaxed);
  }
  /// Speculative second attempts launched / won (straggler mitigation).
  uint64_t hedged_issued() const {
    return hedged_issued_.load(std::memory_order_relaxed);
  }
  uint64_t hedged_won() const {
    return hedged_won_.load(std::memory_order_relaxed);
  }
  /// Lifetime wire traffic through this client, all StoCs: request and
  /// one-sided-write payload bytes out, response-body bytes in. Per-StoC
  /// numbers live in load(stoc)->bytes_sent/bytes_received.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

  Status DeleteFile(rdma::NodeId stoc, uint64_t file_id, bool in_memory);

  /// --- In-memory files (Section 6.1) ---

  Status OpenInMemFile(rdma::NodeId stoc, uint64_t file_id,
                       uint64_t region_size, InMemFileHandle* handle);
  /// Ask the StoC for one more region (when the current one is full).
  Status ExtendInMemFile(InMemFileHandle* handle);
  /// One-sided write at a global offset within the file's region chain.
  /// The data must fit entirely inside one region.
  Status WriteInMem(const InMemFileHandle& handle, uint64_t global_offset,
                    const Slice& data);
  /// One-sided read of a whole region into *out (recovery path).
  Status ReadInMemRegion(const InMemFileHandle& handle, size_t region_index,
                         std::string* out);
  /// Two-sided append to an in-memory file: the StoC's CPU copies the
  /// data (the paper's NIC replication path, Section 8.2.3).
  Status NicAppend(const InMemFileHandle& handle, uint64_t global_offset,
                   const Slice& data);

  /// --- Introspection / management ---

  /// timeout_ms: load probes (power-of-d placement) pass a short budget
  /// so a StoC dying mid-probe cannot stall the caller for the full RPC
  /// timeout.
  Status GetStats(rdma::NodeId stoc, StocStats* stats,
                  int timeout_ms = 30000);
  /// In-memory log files of a range: used by LogC recovery.
  Status QueryLogFiles(rdma::NodeId stoc, uint32_t range_id,
                       std::vector<InMemFileHandle>* handles);
  Status ListFiles(rdma::NodeId stoc, std::vector<uint64_t>* files);
  /// Ask stoc to copy file_id to dst (graceful decommission path).
  Status CopyFileTo(rdma::NodeId stoc, uint64_t file_id, rdma::NodeId dst);
  /// Offloaded compaction round trip.
  Status Compaction(rdma::NodeId stoc, const Slice& job, std::string* result,
                    int timeout_ms = 120000);

  rdma::RpcEndpoint* endpoint() { return endpoint_; }

 private:
  friend class PendingRead;
  friend class PendingAppend;

  /// Account wire traffic for one RPC leg (rollup + per-StoC).
  void CountWire(rdma::NodeId stoc, uint64_t sent, uint64_t received);

  Status SimpleCall(rdma::NodeId stoc, const std::string& req, Slice* body,
                    std::string* storage, int timeout_ms = 30000);
  /// SimpleCall under the unified RetryPolicy, for idempotent
  /// introspection ops only (stats/list/query): transient Unavailable
  /// results are retried with backoff inside the timeout_ms budget.
  Status IdempotentCall(rdma::NodeId stoc, const std::string& req, Slice* body,
                        std::string* storage, int timeout_ms = 30000);
  /// Circuit-breaker admission for a single RPC: normal traffic to alive
  /// nodes, a rate-limited probe to suspect/probing ones, nothing to dead
  /// ones.
  bool AdmitRpc(rdma::NodeId stoc);
  /// Candidate replica indices ranked by load, least-loaded first
  /// (routable before non-routable, then outstanding+bias, then latency
  /// EWMA, then index for determinism).
  std::vector<size_t> RankReplicas(
      const std::vector<GatherRead::Target>& replicas);
  void RecordReadLatency(uint64_t us);

  rdma::RpcEndpoint* endpoint_;
  std::atomic<coord::Membership*> membership_{nullptr};
  std::atomic<uint64_t> read_block_calls_{0};
  std::atomic<uint64_t> pod_reads_{0};
  std::atomic<uint64_t> hedged_issued_{0};
  std::atomic<uint64_t> hedged_won_{0};
  std::atomic<uint64_t> bytes_sent_{0};
  std::atomic<uint64_t> bytes_received_{0};

  std::mutex load_mu_;
  ReadPolicy policy_;
  std::map<rdma::NodeId, std::shared_ptr<StocLoad>> load_;
  /// Observed read latencies feeding the p99-based hedge delay.
  Histogram read_latency_us_;
};

}  // namespace stoc
}  // namespace nova

#endif  // NOVA_STOC_STOC_CLIENT_H_
