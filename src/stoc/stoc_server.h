// The Storage Component (StoC), paper Section 6: a simple server that
// stores, retrieves and manages variable-sized blocks of append-only files
// over RDMA.
//
//  * In-memory StoC files (Section 6.1): sets of contiguous registered
//    memory regions. Clients append with one-sided RDMA WRITE and fetch
//    with one-sided RDMA READ — only open/extend/delete involve this
//    server's CPU. Used by LogC for log-record availability.
//  * Persistent StoC files (Section 6.2, Figure 10): a client asks for a
//    buffer (kOpAllocBlock), RDMA-WRITEs the block with immediate data =
//    the buffer id, the StoC flushes the buffer to its disk and completes
//    the client's token with the resulting StocBlockHandle.
//  * Compaction offloading (Section 4.3): kOpCompaction requests run on a
//    dedicated pool through an injected handler (wired to the LSM
//    compaction executor by the cluster harness, keeping stoc free of a
//    dependency on lsm).
//
// Thread model (Section 3.2): xchg threads poll the RPC endpoint and
// handle only cheap operations inline; storage threads perform device I/O;
// compaction threads run offloaded compactions.
#ifndef NOVA_STOC_STOC_SERVER_H_
#define NOVA_STOC_STOC_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "rdma/rpc.h"
#include "sim/cpu_throttle.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"
#include "stoc/stoc_common.h"
#include "util/random.h"
#include "util/slab_allocator.h"
#include "util/thread_pool.h"

namespace nova {
namespace stoc {

struct StocServerOptions {
  int num_xchg_threads = 2;
  int num_storage_threads = 2;
  int num_compaction_threads = 2;
  /// 0 = unlimited CPU (unit tests); otherwise virtual us/sec.
  double cpu_rate_us_per_sec = 0;
  /// OS page-cache model: probability a read block is cached is
  /// min(1, page_cache_bytes / stored bytes). 0 disables the model.
  uint64_t page_cache_bytes = 0;
  /// RDMA-registered memory managed by the slab allocator (paper Sec. 7).
  size_t slab_bytes = 128 << 20;
  size_t slab_page_bytes = 2 << 20;
};

class StocServer {
 public:
  /// device and store are owned by the caller (the "hardware" of the node;
  /// they survive a crash/restart of this server object).
  StocServer(rdma::RdmaFabric* fabric, rdma::NodeId node,
             SimulatedDevice* device, BlockStore* store,
             const StocServerOptions& options = {});
  ~StocServer();

  StocServer(const StocServer&) = delete;
  StocServer& operator=(const StocServer&) = delete;

  void Start();
  void Stop();

  /// Handler for offloaded compaction payloads; returns the serialized
  /// response. Runs on this StoC's compaction pool.
  using CompactionHandler =
      std::function<std::string(rdma::NodeId src, const Slice& payload)>;
  void set_compaction_handler(CompactionHandler handler) {
    compaction_handler_ = std::move(handler);
  }

  rdma::NodeId node() const { return node_; }
  rdma::RpcEndpoint* endpoint() { return endpoint_.get(); }
  sim::CpuThrottle* throttle() { return throttle_.get(); }
  SimulatedDevice* device() { return device_; }
  BlockStore* store() { return store_; }

  uint64_t cache_hits() const { return cache_hits_.load(); }
  uint64_t cache_misses() const { return cache_misses_.load(); }
  size_t num_in_memory_files();

 private:
  struct Region {
    uint32_t mr_id = 0;
    char* buf = nullptr;
    uint64_t size = 0;
  };
  struct InMemFile {
    std::vector<Region> regions;
    uint64_t region_size = 0;
  };
  struct PendingBlock {
    uint64_t file_id = 0;
    uint64_t token = 0;
    rdma::NodeId client = -1;
    uint64_t size = 0;
    char* buf = nullptr;
  };

  void HandleRequest(rdma::NodeId src, uint64_t req_id, const Slice& payload);
  void HandleWriteImm(rdma::NodeId src, uint32_t imm);

  std::string DoOpenInMemFile(Slice payload);
  std::string DoExtendInMemFile(Slice payload);
  std::string DoDeleteFile(Slice payload);
  std::string DoAllocBlock(rdma::NodeId src, Slice payload);
  void DoReadBlock(rdma::NodeId src, uint64_t req_id, Slice payload);
  std::string DoNicAppend(Slice payload);
  std::string DoStats();
  std::string DoQueryLogFiles(Slice payload);
  std::string DoListFiles();
  void DoCopyFileTo(rdma::NodeId src, uint64_t req_id, Slice payload);

  /// Allocate + register one region; returns nullopt-style failure via ok.
  bool AllocRegion(uint64_t size, Region* region);
  void FreeRegion(const Region& region);

  rdma::RdmaFabric* fabric_;
  rdma::NodeId node_;
  SimulatedDevice* device_;
  BlockStore* store_;
  StocServerOptions options_;

  std::unique_ptr<sim::CpuThrottle> throttle_;
  std::unique_ptr<SlabAllocator> slab_;
  std::unique_ptr<rdma::RpcEndpoint> endpoint_;
  std::unique_ptr<ThreadPool> storage_pool_;
  std::unique_ptr<ThreadPool> compaction_pool_;
  CompactionHandler compaction_handler_;

  std::mutex mu_;
  std::map<uint64_t, InMemFile> in_memory_files_;
  std::map<uint32_t, PendingBlock> pending_blocks_;
  std::atomic<uint32_t> next_mr_id_{1};

  std::mutex rng_mu_;
  Random rng_{0x5706c};
  std::atomic<uint64_t> cache_hits_{0};
  std::atomic<uint64_t> cache_misses_{0};
  /// Offloaded compaction jobs currently executing / completed, reported
  /// through DoStats so LTC schedulers can see StoC compaction load.
  std::atomic<uint32_t> compactions_inflight_{0};
  std::atomic<uint64_t> compactions_done_{0};
  std::atomic<bool> started_{false};
};

}  // namespace stoc
}  // namespace nova

#endif  // NOVA_STOC_STOC_SERVER_H_
