#include "stoc/stoc_server.h"

#include <cstring>

#include "sim/cost_model.h"
#include "util/logging.h"

namespace nova {
namespace stoc {

StocServer::StocServer(rdma::RdmaFabric* fabric, rdma::NodeId node,
                       SimulatedDevice* device, BlockStore* store,
                       const StocServerOptions& options)
    : fabric_(fabric),
      node_(node),
      device_(device),
      store_(store),
      options_(options) {
  throttle_ = std::make_unique<sim::CpuThrottle>(options_.cpu_rate_us_per_sec);
  SlabAllocator::Options slab_opt;
  slab_opt.total_bytes = options_.slab_bytes;
  slab_opt.slab_page_bytes = options_.slab_page_bytes;
  slab_ = std::make_unique<SlabAllocator>(slab_opt);
  endpoint_ = std::make_unique<rdma::RpcEndpoint>(
      fabric_, node_, options_.num_xchg_threads, throttle_.get());
  endpoint_->set_request_handler(
      [this](rdma::NodeId src, uint64_t req_id, const Slice& payload) {
        HandleRequest(src, req_id, payload);
      });
  endpoint_->set_write_imm_handler([this](rdma::NodeId src, uint32_t imm) {
    HandleWriteImm(src, imm);
  });
}

StocServer::~StocServer() { Stop(); }

void StocServer::Start() {
  if (started_.exchange(true)) {
    return;
  }
  fabric_->AddNode(node_);
  storage_pool_ = std::make_unique<ThreadPool>("stoc-storage",
                                               options_.num_storage_threads);
  compaction_pool_ = std::make_unique<ThreadPool>(
      "stoc-compaction", options_.num_compaction_threads);
  endpoint_->Start();
}

void StocServer::Stop() {
  if (!started_.exchange(false)) {
    return;
  }
  endpoint_->Stop();
  if (storage_pool_) {
    storage_pool_->Shutdown();
  }
  if (compaction_pool_) {
    compaction_pool_->Shutdown();
  }
}

size_t StocServer::num_in_memory_files() {
  std::lock_guard<std::mutex> l(mu_);
  return in_memory_files_.size();
}

bool StocServer::AllocRegion(uint64_t size, Region* region) {
  char* buf = slab_->Allocate(size);
  if (buf == nullptr) {
    return false;
  }
  memset(buf, 0, size);
  region->mr_id = next_mr_id_.fetch_add(1);
  region->buf = buf;
  region->size = size;
  Status s = fabric_->RegisterMemory(node_, region->mr_id, buf, size);
  if (!s.ok()) {
    slab_->Free(buf, size);
    return false;
  }
  return true;
}

void StocServer::FreeRegion(const Region& region) {
  fabric_->DeregisterMemory(node_, region.mr_id);
  slab_->Free(region.buf, region.size);
}

void StocServer::HandleRequest(rdma::NodeId src, uint64_t req_id,
                               const Slice& payload) {
  if (payload.empty()) {
    endpoint_->Reply(src, req_id,
                     ErrorResponse(Status::InvalidArgument("empty request")));
    return;
  }
  StocOp op = static_cast<StocOp>(payload[0]);
  Slice body(payload.data() + 1, payload.size() - 1);
  switch (op) {
    case kOpOpenInMemFile:
      endpoint_->Reply(src, req_id, DoOpenInMemFile(body));
      break;
    case kOpExtendInMemFile:
      endpoint_->Reply(src, req_id, DoExtendInMemFile(body));
      break;
    case kOpDeleteFile:
      endpoint_->Reply(src, req_id, DoDeleteFile(body));
      break;
    case kOpAllocBlock:
      endpoint_->Reply(src, req_id, DoAllocBlock(src, body));
      break;
    case kOpReadBlock:
      // Disk work: hand off to a storage thread (paper Section 3.2).
      DoReadBlock(src, req_id, body);
      break;
    case kOpStats:
      endpoint_->Reply(src, req_id, DoStats());
      break;
    case kOpQueryLogFiles:
      endpoint_->Reply(src, req_id, DoQueryLogFiles(body));
      break;
    case kOpListFiles:
      endpoint_->Reply(src, req_id, DoListFiles());
      break;
    case kOpCopyFileTo:
      DoCopyFileTo(src, req_id, body);
      break;
    case kOpNicAppend:
      endpoint_->Reply(src, req_id, DoNicAppend(body));
      break;
    case kOpCompaction: {
      std::string body_copy = body.ToString();
      compactions_inflight_++;
      compaction_pool_->Submit([this, src, req_id, body_copy] {
        if (!compaction_handler_) {
          compactions_inflight_--;
          endpoint_->Reply(src, req_id,
                           ErrorResponse(Status::NotSupported(
                               "no compaction handler installed")));
          return;
        }
        std::string result = compaction_handler_(src, body_copy);
        compactions_inflight_--;
        compactions_done_++;
        endpoint_->Reply(src, req_id, OkResponse(result));
      });
      break;
    }
    default:
      endpoint_->Reply(src, req_id,
                       ErrorResponse(Status::InvalidArgument("bad opcode")));
  }
}

std::string StocServer::DoOpenInMemFile(Slice payload) {
  uint64_t file_id, region_size;
  if (!GetVarint64(&payload, &file_id) ||
      !GetVarint64(&payload, &region_size)) {
    return ErrorResponse(Status::InvalidArgument("bad open request"));
  }
  Region region;
  if (!AllocRegion(region_size, &region)) {
    return ErrorResponse(Status::Busy("stoc memory exhausted"));
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    InMemFile& f = in_memory_files_[file_id];
    // Re-opening an existing file id resets it (fresh log file).
    for (const Region& r : f.regions) {
      FreeRegion(r);
    }
    f.regions.clear();
    f.regions.push_back(region);
    f.region_size = region_size;
  }
  std::string resp;
  PutVarint32(&resp, region.mr_id);
  return OkResponse(resp);
}

std::string StocServer::DoExtendInMemFile(Slice payload) {
  uint64_t file_id;
  if (!GetVarint64(&payload, &file_id)) {
    return ErrorResponse(Status::InvalidArgument("bad extend request"));
  }
  std::lock_guard<std::mutex> l(mu_);
  auto it = in_memory_files_.find(file_id);
  if (it == in_memory_files_.end()) {
    return ErrorResponse(Status::NotFound("no such in-memory file"));
  }
  Region region;
  if (!AllocRegion(it->second.region_size, &region)) {
    return ErrorResponse(Status::Busy("stoc memory exhausted"));
  }
  it->second.regions.push_back(region);
  std::string resp;
  PutVarint32(&resp, region.mr_id);
  return OkResponse(resp);
}

std::string StocServer::DoDeleteFile(Slice payload) {
  uint64_t file_id;
  uint32_t is_mem;
  if (!GetVarint64(&payload, &file_id) || !GetVarint32(&payload, &is_mem)) {
    return ErrorResponse(Status::InvalidArgument("bad delete request"));
  }
  if (is_mem) {
    std::lock_guard<std::mutex> l(mu_);
    auto it = in_memory_files_.find(file_id);
    if (it == in_memory_files_.end()) {
      return ErrorResponse(Status::NotFound("no such in-memory file"));
    }
    for (const Region& r : it->second.regions) {
      FreeRegion(r);
    }
    in_memory_files_.erase(it);
    return OkResponse();
  }
  Status s = store_->Delete(file_id);
  if (!s.ok()) {
    return ErrorResponse(s);
  }
  return OkResponse();
}

std::string StocServer::DoAllocBlock(rdma::NodeId src, Slice payload) {
  uint64_t file_id, size, token;
  if (!GetVarint64(&payload, &file_id) || !GetVarint64(&payload, &size) ||
      !GetVarint64(&payload, &token)) {
    return ErrorResponse(Status::InvalidArgument("bad alloc request"));
  }
  Region region;
  if (!AllocRegion(size, &region)) {
    return ErrorResponse(Status::Busy("stoc file buffer exhausted"));
  }
  {
    std::lock_guard<std::mutex> l(mu_);
    pending_blocks_[region.mr_id] =
        PendingBlock{file_id, token, src, size, region.buf};
  }
  std::string resp;
  PutVarint32(&resp, region.mr_id);
  return OkResponse(resp);
}

void StocServer::HandleWriteImm(rdma::NodeId src, uint32_t imm) {
  (void)src;
  PendingBlock pending;
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = pending_blocks_.find(imm);
    if (it == pending_blocks_.end()) {
      // Appends to in-memory files also raise imm notifications when the
      // writer requests them; nothing to do for those here.
      return;
    }
    pending = it->second;
    pending_blocks_.erase(it);
  }
  // Flush the written buffer to disk on a storage thread (Figure 10,
  // step 3), then complete the client's token (step 4).
  storage_pool_->Submit([this, pending, imm] {
    device_->BlockingIo(SimulatedDevice::IoKind::kWrite, pending.size,
                        pending.file_id);
    uint64_t offset =
        store_->Append(pending.file_id, Slice(pending.buf, pending.size));
    StocBlockHandle handle;
    handle.stoc_id = node_;
    handle.file_id = pending.file_id;
    handle.offset = offset;
    handle.size = pending.size;
    std::string enc;
    handle.EncodeTo(&enc);
    Region region;
    region.mr_id = imm;
    region.buf = pending.buf;
    region.size = pending.size;
    FreeRegion(region);
    endpoint_->CompleteToken(pending.client, pending.token, enc);
  });
}

void StocServer::DoReadBlock(rdma::NodeId src, uint64_t req_id,
                             Slice payload) {
  uint64_t file_id, offset, size;
  if (!GetVarint64(&payload, &file_id) || !GetVarint64(&payload, &offset) ||
      !GetVarint64(&payload, &size)) {
    endpoint_->Reply(src, req_id,
                     ErrorResponse(Status::InvalidArgument("bad read")));
    return;
  }
  storage_pool_->Submit([this, src, req_id, file_id, offset, size] {
    uint64_t n = size;
    if (n == 0) {
      n = store_->FileSize(file_id);
      if (n == 0) {
        endpoint_->Reply(
            src, req_id,
            ErrorResponse(Status::NotFound("no such stoc file")));
        return;
      }
    }
    // OS page-cache model: with small per-StoC datasets most reads hit
    // memory (paper Section 8.2.5's super-linear read scaling).
    bool cached = false;
    if (options_.page_cache_bytes > 0) {
      uint64_t stored = store_->TotalBytes();
      double hit_prob =
          stored == 0 ? 1.0
                      : std::min(1.0, static_cast<double>(
                                          options_.page_cache_bytes) /
                                          static_cast<double>(stored));
      std::lock_guard<std::mutex> l(rng_mu_);
      cached = rng_.NextDouble() < hit_prob;
    }
    if (cached) {
      cache_hits_.fetch_add(1);
    } else {
      cache_misses_.fetch_add(1);
      device_->BlockingIo(SimulatedDevice::IoKind::kRead, n, file_id);
    }
    if (device_->failed()) {
      endpoint_->Reply(src, req_id,
                       ErrorResponse(Status::IOError("device failed")));
      return;
    }
    std::string data;
    Status s = store_->Read(file_id, offset, n, &data);
    if (!s.ok()) {
      endpoint_->Reply(src, req_id, ErrorResponse(s));
      return;
    }
    // The paper RDMA-WRITEs the block into the client's buffer; replying
    // with the payload is the message-equivalent in this emulation.
    endpoint_->Reply(src, req_id, OkResponse(data));
  });
}

std::string StocServer::DoNicAppend(Slice payload) {
  uint64_t file_id, global_offset;
  if (!GetVarint64(&payload, &file_id) ||
      !GetVarint64(&payload, &global_offset)) {
    return ErrorResponse(Status::InvalidArgument("bad nic append"));
  }
  // Unlike the one-sided path, this copy costs StoC CPU.
  throttle_->Charge(sim::DefaultCostModel().nic_log_append_us);
  std::lock_guard<std::mutex> l(mu_);
  auto it = in_memory_files_.find(file_id);
  if (it == in_memory_files_.end()) {
    return ErrorResponse(Status::NotFound("no such in-memory file"));
  }
  uint64_t base = 0;
  for (const Region& region : it->second.regions) {
    if (global_offset < base + region.size) {
      uint64_t local = global_offset - base;
      if (local + payload.size() > region.size) {
        return ErrorResponse(
            Status::InvalidArgument("nic append spans region boundary"));
      }
      memcpy(region.buf + local, payload.data(), payload.size());
      return OkResponse();
    }
    base += region.size;
  }
  return ErrorResponse(Status::InvalidArgument("offset beyond file"));
}

std::string StocServer::DoStats() {
  std::string resp;
  PutVarint32(&resp, static_cast<uint32_t>(device_->QueueDepth()));
  PutVarint64(&resp, store_->TotalBytes());
  PutVarint64(&resp,
              static_cast<uint64_t>(throttle_->Utilization() * 1e6));
  PutVarint32(&resp, compactions_inflight_.load());
  PutVarint64(&resp, compactions_done_.load());
  return OkResponse(resp);
}

std::string StocServer::DoQueryLogFiles(Slice payload) {
  uint32_t range_id;
  if (!GetVarint32(&payload, &range_id)) {
    return ErrorResponse(Status::InvalidArgument("bad query"));
  }
  std::string resp;
  std::lock_guard<std::mutex> l(mu_);
  uint32_t count = 0;
  std::string body;
  for (const auto& [file_id, f] : in_memory_files_) {
    if (FileIdKind(file_id) != FileKind::kLog ||
        FileIdRange(file_id) != range_id) {
      continue;
    }
    count++;
    PutVarint64(&body, file_id);
    PutVarint32(&body, static_cast<uint32_t>(f.regions.size()));
    for (const Region& r : f.regions) {
      PutVarint32(&body, r.mr_id);
      PutVarint64(&body, r.size);
    }
  }
  PutVarint32(&resp, count);
  resp.append(body);
  return OkResponse(resp);
}

std::string StocServer::DoListFiles() {
  std::vector<uint64_t> files = store_->ListFiles();
  std::string resp;
  PutVarint32(&resp, static_cast<uint32_t>(files.size()));
  for (uint64_t id : files) {
    PutVarint64(&resp, id);
  }
  return OkResponse(resp);
}

void StocServer::DoCopyFileTo(rdma::NodeId src, uint64_t req_id,
                              Slice payload) {
  uint64_t file_id;
  uint32_t dst;
  if (!GetVarint64(&payload, &file_id) || !GetVarint32(&payload, &dst)) {
    endpoint_->Reply(src, req_id,
                     ErrorResponse(Status::InvalidArgument("bad copy")));
    return;
  }
  storage_pool_->Submit([this, src, req_id, file_id, dst] {
    uint64_t n = store_->FileSize(file_id);
    if (n == 0) {
      endpoint_->Reply(src, req_id,
                       ErrorResponse(Status::NotFound("no such file")));
      return;
    }
    device_->BlockingIo(SimulatedDevice::IoKind::kRead, n, file_id);
    std::string data;
    Status s = store_->Read(file_id, 0, n, &data);
    if (!s.ok()) {
      endpoint_->Reply(src, req_id, ErrorResponse(s));
      return;
    }
    // Append the whole file as one block on the destination StoC using the
    // standard client flow (StoC-to-StoC RDMA, paper Section 9).
    rdma::Future flush_ack;
    uint64_t token = endpoint_->AllocToken(&flush_ack);
    std::string req;
    req.push_back(kOpAllocBlock);
    PutVarint64(&req, file_id);
    PutVarint64(&req, data.size());
    PutVarint64(&req, token);
    std::string resp;
    s = endpoint_->Call(static_cast<rdma::NodeId>(dst), req, &resp);
    Slice body;
    if (s.ok()) {
      s = ParseResponse(resp, &body);
    }
    uint32_t mr_id = 0;
    if (s.ok() && !GetVarint32(&body, &mr_id)) {
      s = Status::IOError("bad alloc response");
    }
    if (s.ok()) {
      s = fabric_->Write(node_, data, rdma::RemoteAddr{(int)dst, mr_id, 0},
                         true, mr_id);
    }
    if (s.ok()) {
      s = flush_ack.Wait(nullptr);
    } else {
      flush_ack.Wait(nullptr, 0);  // reap the never-to-complete token
    }
    if (!s.ok()) {
      endpoint_->Reply(src, req_id, ErrorResponse(s));
      return;
    }
    endpoint_->Reply(src, req_id, OkResponse());
  });
}

}  // namespace stoc
}  // namespace nova
