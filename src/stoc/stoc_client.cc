#include "stoc/stoc_client.h"

namespace nova {
namespace stoc {

Status StocClient::SimpleCall(rdma::NodeId stoc, const std::string& req,
                              Slice* body, std::string* storage,
                              int timeout_ms) {
  Status s = endpoint_->Call(stoc, req, storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  return ParseResponse(*storage, body);
}

Status StocClient::AppendBlock(rdma::NodeId stoc, uint64_t file_id,
                               const Slice& data, StocBlockHandle* handle) {
  // 1. Ask the StoC for a buffer, registering our completion token.
  uint64_t token = endpoint_->AllocToken();
  std::string req;
  req.push_back(kOpAllocBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, data.size());
  PutVarint64(&req, token);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    // Clean up the never-to-complete token registration.
    endpoint_->WaitToken(token, nullptr, 0);
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    endpoint_->WaitToken(token, nullptr, 0);
    return Status::IOError("bad alloc-block response");
  }
  // 2. One-sided RDMA WRITE of the block, immediate data = buffer id.
  s = endpoint_->fabric()->Write(endpoint_->node(), data,
                                 rdma::RemoteAddr{stoc, mr_id, 0}, true,
                                 mr_id);
  if (!s.ok()) {
    endpoint_->WaitToken(token, nullptr, 0);
    return s;
  }
  // 3-4. The StoC flushes and completes our token with the block handle.
  std::string payload;
  s = endpoint_->WaitToken(token, &payload);
  if (!s.ok()) {
    return s;
  }
  Slice handle_slice(payload);
  if (!handle->DecodeFrom(&handle_slice)) {
    return Status::IOError("bad block handle in flush ack");
  }
  return Status::OK();
}

Status StocClient::ReadBlock(rdma::NodeId stoc, uint64_t file_id,
                             uint64_t offset, uint64_t size,
                             std::string* out) {
  read_block_calls_.fetch_add(1, std::memory_order_relaxed);
  std::string req;
  req.push_back(kOpReadBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, offset);
  PutVarint64(&req, size);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  out->assign(body.data(), body.size());
  return Status::OK();
}

Status StocClient::DeleteFile(rdma::NodeId stoc, uint64_t file_id,
                              bool in_memory) {
  std::string req;
  req.push_back(kOpDeleteFile);
  PutVarint64(&req, file_id);
  PutVarint32(&req, in_memory ? 1 : 0);
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage);
}

Status StocClient::OpenInMemFile(rdma::NodeId stoc, uint64_t file_id,
                                 uint64_t region_size,
                                 InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpOpenInMemFile);
  PutVarint64(&req, file_id);
  PutVarint64(&req, region_size);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad open response");
  }
  handle->stoc_id = stoc;
  handle->file_id = file_id;
  handle->regions = {InMemRegion{mr_id, region_size}};
  return Status::OK();
}

Status StocClient::ExtendInMemFile(InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpExtendInMemFile);
  PutVarint64(&req, handle->file_id);
  std::string storage;
  Slice body;
  Status s = SimpleCall(handle->stoc_id, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad extend response");
  }
  handle->regions.push_back(
      InMemRegion{mr_id, handle->regions.front().size});
  return Status::OK();
}

Status StocClient::WriteInMem(const InMemFileHandle& handle,
                              uint64_t global_offset, const Slice& data) {
  uint64_t base = 0;
  for (const InMemRegion& region : handle.regions) {
    if (global_offset < base + region.size) {
      uint64_t local = global_offset - base;
      if (local + data.size() > region.size) {
        return Status::InvalidArgument("write spans region boundary");
      }
      return endpoint_->fabric()->Write(
          endpoint_->node(), data,
          rdma::RemoteAddr{handle.stoc_id, region.mr_id, local},
          /*notify=*/false, 0);
    }
    base += region.size;
  }
  return Status::InvalidArgument("offset beyond in-memory file");
}

Status StocClient::ReadInMemRegion(const InMemFileHandle& handle,
                                   size_t region_index, std::string* out) {
  if (region_index >= handle.regions.size()) {
    return Status::InvalidArgument("no such region");
  }
  const InMemRegion& region = handle.regions[region_index];
  out->resize(region.size);
  return endpoint_->fabric()->Read(
      endpoint_->node(), rdma::RemoteAddr{handle.stoc_id, region.mr_id, 0},
      out->data(), region.size);
}

Status StocClient::NicAppend(const InMemFileHandle& handle,
                             uint64_t global_offset, const Slice& data) {
  std::string req;
  req.push_back(kOpNicAppend);
  PutVarint64(&req, handle.file_id);
  PutVarint64(&req, global_offset);
  req.append(data.data(), data.size());
  std::string storage;
  Slice body;
  return SimpleCall(handle.stoc_id, req, &body, &storage);
}

Status StocClient::GetStats(rdma::NodeId stoc, StocStats* stats) {
  std::string req;
  req.push_back(kOpStats);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t depth;
  uint64_t stored, util;
  if (!GetVarint32(&body, &depth) || !GetVarint64(&body, &stored) ||
      !GetVarint64(&body, &util)) {
    return Status::IOError("bad stats response");
  }
  stats->queue_depth = static_cast<int>(depth);
  stats->stored_bytes = stored;
  stats->cpu_utilization = static_cast<double>(util) / 1e6;
  return Status::OK();
}

Status StocClient::QueryLogFiles(rdma::NodeId stoc, uint32_t range_id,
                                 std::vector<InMemFileHandle>* handles) {
  std::string req;
  req.push_back(kOpQueryLogFiles);
  PutVarint32(&req, range_id);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad log-files response");
  }
  handles->clear();
  for (uint32_t i = 0; i < count; i++) {
    InMemFileHandle h;
    h.stoc_id = stoc;
    uint32_t nregions;
    if (!GetVarint64(&body, &h.file_id) || !GetVarint32(&body, &nregions)) {
      return Status::IOError("bad log-files entry");
    }
    for (uint32_t r = 0; r < nregions; r++) {
      InMemRegion region;
      if (!GetVarint32(&body, &region.mr_id) ||
          !GetVarint64(&body, &region.size)) {
        return Status::IOError("bad log-files region");
      }
      h.regions.push_back(region);
    }
    handles->push_back(std::move(h));
  }
  return Status::OK();
}

Status StocClient::ListFiles(rdma::NodeId stoc,
                             std::vector<uint64_t>* files) {
  std::string req;
  req.push_back(kOpListFiles);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad list response");
  }
  files->clear();
  for (uint32_t i = 0; i < count; i++) {
    uint64_t id;
    if (!GetVarint64(&body, &id)) {
      return Status::IOError("bad list entry");
    }
    files->push_back(id);
  }
  return Status::OK();
}

Status StocClient::CopyFileTo(rdma::NodeId stoc, uint64_t file_id,
                              rdma::NodeId dst) {
  std::string req;
  req.push_back(kOpCopyFileTo);
  PutVarint64(&req, file_id);
  PutVarint32(&req, static_cast<uint32_t>(dst));
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage, 60000);
}

Status StocClient::Compaction(rdma::NodeId stoc, const Slice& job,
                              std::string* result, int timeout_ms) {
  std::string req;
  req.push_back(kOpCompaction);
  req.append(job.data(), job.size());
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  result->assign(body.data(), body.size());
  return Status::OK();
}

}  // namespace stoc
}  // namespace nova
