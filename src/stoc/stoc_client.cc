#include "stoc/stoc_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "util/failpoint.h"

namespace nova {
namespace stoc {
namespace {

uint64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool StocClient::IsRoutable(rdma::NodeId stoc) const {
  coord::Membership* m = membership();
  return m == nullptr || m->IsRoutable(stoc);
}

bool StocClient::AdmitRpc(rdma::NodeId stoc) {
  coord::Membership* m = membership();
  return m == nullptr || m->IsRoutable(stoc) || m->AllowProbe(stoc);
}

void StocClient::ReportRpc(rdma::NodeId stoc, const Status& s) {
  coord::Membership* m = membership();
  if (m == nullptr) {
    return;
  }
  if (s.IsUnavailable()) {
    m->ReportFailure(stoc);
  } else {
    // Any answer — even an application error — proves the node is up.
    m->ReportSuccess(stoc);
  }
}

void StocClient::CountWire(rdma::NodeId stoc, uint64_t sent,
                           uint64_t received) {
  if (sent > 0) {
    bytes_sent_.fetch_add(sent, std::memory_order_relaxed);
  }
  if (received > 0) {
    bytes_received_.fetch_add(received, std::memory_order_relaxed);
  }
  std::shared_ptr<StocLoad> l = load(stoc);
  if (sent > 0) {
    l->bytes_sent.fetch_add(sent, std::memory_order_relaxed);
  }
  if (received > 0) {
    l->bytes_received.fetch_add(received, std::memory_order_relaxed);
  }
}

Status StocClient::SimpleCall(rdma::NodeId stoc, const std::string& req,
                              Slice* body, std::string* storage,
                              int timeout_ms) {
  Status s = util::FailPoint::Check("stoc.call");
  if (s.ok() && !AdmitRpc(stoc)) {
    // Circuit open: fail fast without contacting (or penalizing) the node.
    return Status::Unavailable("stoc circuit open");
  }
  if (s.ok()) {
    s = endpoint_->Call(stoc, req, storage, timeout_ms);
    CountWire(stoc, req.size(), s.ok() ? storage->size() : 0);
  }
  ReportRpc(stoc, s);
  if (!s.ok()) {
    return s;
  }
  return ParseResponse(*storage, body);
}

Status StocClient::IdempotentCall(rdma::NodeId stoc, const std::string& req,
                                  Slice* body, std::string* storage,
                                  int timeout_ms) {
  util::Deadline deadline = util::Deadline::After(timeout_ms);
  util::RetryPolicy policy;
  return policy.Run(deadline, static_cast<uint64_t>(stoc), [&] {
    return SimpleCall(stoc, req, body, storage,
                      static_cast<int>(deadline.remaining_ms(timeout_ms)));
  });
}

PendingRead& PendingRead::operator=(PendingRead&& o) noexcept {
  if (this == &o) {
    return *this;
  }
  Settle(false);
  future_ = std::move(o.future_);
  load_ = std::move(o.load_);
  client_ = o.client_;
  stoc_ = o.stoc_;
  start_us_ = o.start_us_;
  settled_ = o.settled_;
  o.load_ = nullptr;
  o.client_ = nullptr;
  o.settled_ = true;  // the moved-from read owns no load unit
  return *this;
}

void PendingRead::Settle(bool record_latency) {
  if (settled_) {
    return;
  }
  settled_ = true;
  if (load_ != nullptr) {
    load_->outstanding.fetch_sub(1, std::memory_order_relaxed);
    if (record_latency) {
      uint64_t sample = NowUs() - start_us_;
      // EWMA with 1/8 gain, seeded by the first observation.
      uint64_t prev = load_->ewma_us.load(std::memory_order_relaxed);
      uint64_t next = prev == 0 ? sample : (prev * 7 + sample) / 8;
      load_->ewma_us.store(next, std::memory_order_relaxed);
      if (client_ != nullptr) {
        client_->RecordReadLatency(sample);
      }
    }
  }
}

Status PendingRead::Wait(std::string* out, int timeout_ms) {
  std::string storage;
  Status s = future_.Wait(&storage, timeout_ms);
  Settle(s.ok());
  if (client_ != nullptr) {
    client_->ReportRpc(stoc_, s);
    if (s.ok()) {
      client_->CountWire(stoc_, 0, storage.size());
    }
  }
  if (!s.ok()) {
    return s;
  }
  Slice body;
  s = ParseResponse(storage, &body);
  if (!s.ok()) {
    return s;
  }
  out->assign(body.data(), body.size());
  return Status::OK();
}

void PendingRead::Cancel() {
  future_.Cancel();
  Settle(false);
}

PendingAppend& PendingAppend::operator=(PendingAppend&& o) noexcept {
  if (this == &o) {
    return *this;
  }
  Abandon();
  client_ = o.client_;
  stoc_ = o.stoc_;
  data_ = o.data_;
  alloc_ = std::move(o.alloc_);
  flush_ack_ = std::move(o.flush_ack_);
  armed_status_ = std::move(o.armed_status_);
  armed_ = o.armed_;
  settled_ = o.settled_;
  o.client_ = nullptr;  // the moved-from append owns nothing to reap
  return *this;
}

void PendingAppend::Abandon() {
  if (client_ != nullptr && !settled_) {
    flush_ack_.Wait(nullptr, 0);
    settled_ = true;
  }
}

Status PendingAppend::Arm() {
  if (!valid()) {
    return Status::InvalidArgument("invalid pending append");
  }
  if (armed_) {
    return armed_status_;  // already armed (or rejected by the breaker)
  }
  armed_ = true;
  std::string storage;
  armed_status_ = alloc_.Wait(&storage);
  Slice body;
  if (armed_status_.ok()) {
    client_->CountWire(stoc_, 0, storage.size());
    armed_status_ = ParseResponse(storage, &body);
  }
  uint32_t mr_id = 0;
  if (armed_status_.ok() && !GetVarint32(&body, &mr_id)) {
    armed_status_ = Status::IOError("bad alloc-block response");
  }
  if (armed_status_.ok()) {
    // 2. One-sided RDMA WRITE of the block, immediate data = buffer id.
    rdma::RpcEndpoint* ep = client_->endpoint();
    armed_status_ = ep->fabric()->Write(ep->node(), data_,
                                        rdma::RemoteAddr{stoc_, mr_id, 0},
                                        true, mr_id);
    if (armed_status_.ok()) {
      client_->CountWire(stoc_, data_.size(), 0);
    }
  }
  if (!armed_status_.ok()) {
    flush_ack_.Wait(nullptr, 0);  // reap the never-to-complete token
    settled_ = true;
  }
  client_->ReportRpc(stoc_, armed_status_);
  return armed_status_;
}

Status PendingAppend::Wait(StocBlockHandle* handle, int timeout_ms) {
  if (!valid()) {
    return Status::InvalidArgument("invalid pending append");
  }
  if (!armed_) {
    Status s = Arm();
    if (!s.ok()) {
      return s;
    }
  } else if (!armed_status_.ok()) {
    return armed_status_;
  }
  // 3-4. The StoC flushes and completes our token with the block handle.
  std::string payload;
  Status s = flush_ack_.Wait(&payload, timeout_ms);
  settled_ = true;  // waited (or timed out, which withdrew the slot)
  client_->ReportRpc(stoc_, s);
  if (s.ok()) {
    client_->CountWire(stoc_, 0, payload.size());
  }
  if (!s.ok()) {
    return s;
  }
  Slice handle_slice(payload);
  if (!handle->DecodeFrom(&handle_slice)) {
    return Status::IOError("bad block handle in flush ack");
  }
  return Status::OK();
}

PendingAppend StocClient::AsyncAppendBlock(rdma::NodeId stoc,
                                           uint64_t file_id,
                                           const Slice& data) {
  PendingAppend pending;
  pending.client_ = this;
  pending.stoc_ = stoc;
  pending.data_ = data;
  Status fp = util::FailPoint::Check("stoc.append");
  if (!fp.ok() || !AdmitRpc(stoc)) {
    // Breaker open (or an injected append fault): pre-fail the append
    // before any token or buffer is granted. Injected faults feed the
    // health state machine like a real connection error would.
    if (!fp.ok()) {
      ReportRpc(stoc, fp);
    }
    pending.armed_ = true;
    pending.armed_status_ =
        fp.ok() ? Status::Unavailable("stoc circuit open") : fp;
    pending.settled_ = true;  // no token allocated, nothing to reap
    return pending;
  }
  // 1. Ask the StoC for a buffer, registering our completion token.
  uint64_t token = endpoint_->AllocToken(&pending.flush_ack_);
  std::string req;
  req.push_back(kOpAllocBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, data.size());
  PutVarint64(&req, token);
  pending.alloc_ = endpoint_->AsyncCall(stoc, req);
  CountWire(stoc, req.size(), 0);
  return pending;
}

Status StocClient::AppendBlock(rdma::NodeId stoc, uint64_t file_id,
                               const Slice& data, StocBlockHandle* handle) {
  return AsyncAppendBlock(stoc, file_id, data).Wait(handle);
}

std::shared_ptr<StocLoad> StocClient::load(rdma::NodeId stoc) {
  std::lock_guard<std::mutex> l(load_mu_);
  std::shared_ptr<StocLoad>& slot = load_[stoc];
  if (slot == nullptr) {
    slot = std::make_shared<StocLoad>();
  }
  return slot;
}

void StocClient::RecordReadLatency(uint64_t us) { read_latency_us_.Add(us); }

uint64_t StocClient::HedgeDelayUs() {
  ReadPolicy policy = read_policy();
  if (read_latency_us_.count() <
      static_cast<uint64_t>(policy.hedge_min_samples)) {
    return policy.hedge_min_delay_us;
  }
  return std::max(policy.hedge_min_delay_us,
                  static_cast<uint64_t>(read_latency_us_.Percentile(99)));
}

std::vector<size_t> StocClient::RankReplicas(
    const std::vector<GatherRead::Target>& replicas) {
  struct Ranked {
    size_t index;
    bool routable;
    int outstanding;
    uint64_t ewma;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(replicas.size());
  for (size_t i = 0; i < replicas.size(); i++) {
    std::shared_ptr<StocLoad> l = load(replicas[i].stoc);
    ranked.push_back(
        Ranked{i, IsRoutable(replicas[i].stoc),
               l->outstanding.load(std::memory_order_relaxed) +
                   l->rank_bias.load(std::memory_order_relaxed),
               l->ewma_us.load(std::memory_order_relaxed)});
  }
  std::sort(ranked.begin(), ranked.end(), [](const Ranked& a, const Ranked& b) {
    // Suspect/dead replicas sort last: they receive traffic only when
    // every healthy replica has been exhausted (and even then only the
    // half-open probe trickle is admitted).
    if (a.routable != b.routable) {
      return a.routable;
    }
    if (a.outstanding != b.outstanding) {
      return a.outstanding < b.outstanding;
    }
    if (a.ewma != b.ewma) {
      return a.ewma < b.ewma;
    }
    return a.index < b.index;
  });
  std::vector<size_t> order;
  order.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    order.push_back(r.index);
  }
  return order;
}

PendingRead StocClient::AsyncReadBlock(rdma::NodeId stoc, uint64_t file_id,
                                       uint64_t offset, uint64_t size) {
  Status fp = util::FailPoint::Check("stoc.read");
  if (!fp.ok()) {
    // Injected read fault: pre-failed, feeds the health state machine.
    PendingRead pending;
    pending.client_ = this;
    pending.stoc_ = stoc;
    pending.settled_ = true;  // owns no load unit
    pending.future_ = rdma::Future::Failed(std::move(fp));
    return pending;
  }
  if (!AdmitRpc(stoc)) {
    // Breaker open: fail fast without contacting (or penalizing) the
    // node. client_ stays null so Wait does not report a failure the
    // node never caused.
    PendingRead pending;
    pending.stoc_ = stoc;
    pending.settled_ = true;
    pending.future_ =
        rdma::Future::Failed(Status::Unavailable("stoc circuit open"));
    return pending;
  }
  read_block_calls_.fetch_add(1, std::memory_order_relaxed);
  std::string req;
  req.push_back(kOpReadBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, offset);
  PutVarint64(&req, size);
  PendingRead pending;
  pending.client_ = this;
  pending.load_ = load(stoc);
  pending.load_->outstanding.fetch_add(1, std::memory_order_relaxed);
  pending.load_->issued.fetch_add(1, std::memory_order_relaxed);
  pending.start_us_ = NowUs();
  pending.future_ = endpoint_->AsyncCall(stoc, req);
  CountWire(stoc, req.size(), 0);
  return pending;
}

PendingRead StocClient::AsyncReadLeastLoaded(
    const std::vector<GatherRead::Target>& replicas, uint64_t offset,
    uint64_t size) {
  if (replicas.empty()) {
    return PendingRead();
  }
  const GatherRead::Target& t = replicas[RankReplicas(replicas)[0]];
  return AsyncReadBlock(t.stoc, t.file_id, offset, size);
}

Status StocClient::ReadBlock(rdma::NodeId stoc, uint64_t file_id,
                             uint64_t offset, uint64_t size,
                             std::string* out) {
  return AsyncReadBlock(stoc, file_id, offset, size).Wait(out);
}

Status StocClient::ReadReplicated(
    const std::vector<GatherRead::Target>& replicas, uint64_t offset,
    uint64_t size, std::string* out, int timeout_ms) {
  std::vector<GatherRead> reads(1);
  reads[0].replicas = replicas;
  reads[0].offset = offset;
  reads[0].size = size;
  Status s = GatherReads(&reads, timeout_ms);
  if (s.ok()) {
    *out = std::move(reads[0].data);
  }
  return s;
}

Status StocClient::GatherReads(std::vector<GatherRead>* reads,
                               int timeout_ms) {
  ReadPolicy policy = read_policy();
  struct Attempt {
    PendingRead pending;
    bool done = false;
    bool is_hedge = false;
  };
  struct Entry {
    std::vector<size_t> order;  // candidate indices, least-loaded first
    std::vector<Attempt> attempts;
    size_t next_candidate = 0;
    uint64_t issued_at_us = 0;
    bool hedged = false;
    bool finished = false;
    Status last_error;
  };
  std::vector<Entry> entries(reads->size());
  size_t unfinished = 0;
  for (size_t i = 0; i < reads->size(); i++) {
    GatherRead& r = (*reads)[i];
    Entry& e = entries[i];
    if (r.replicas.empty()) {
      r.status = Status::Unavailable("no replicas");
      e.finished = true;
      continue;
    }
    // Power-of-d selection: rank the candidates by tracked load and fan
    // the read out to the d least-loaded; the first success wins. The
    // breaker caps the fan-out at the routable replicas (they rank
    // first) so suspect/dead StoCs see no speculative traffic — only
    // failover/hedge attempts, which AdmitRpc gates down to the
    // half-open probe trickle.
    e.order = RankReplicas(r.replicas);
    size_t routable = 0;
    for (const GatherRead::Target& t : r.replicas) {
      if (IsRoutable(t.stoc)) {
        routable++;
      }
    }
    size_t d = std::max<size_t>(
        1, std::min<size_t>(policy.replica_d, e.order.size()));
    if (routable > 0) {
      d = std::min(d, routable);
    }
    e.issued_at_us = NowUs();
    for (size_t a = 0; a < d; a++) {
      const GatherRead::Target& t = r.replicas[e.order[e.next_candidate++]];
      e.attempts.push_back(
          Attempt{AsyncReadBlock(t.stoc, t.file_id, r.offset, r.size)});
    }
    if (d > 1) {
      pod_reads_.fetch_add(1, std::memory_order_relaxed);
    }
    unfinished++;
  }

  uint64_t hedge_delay_us = policy.hedge ? HedgeDelayUs() : 0;
  uint64_t deadline_us =
      NowUs() + static_cast<uint64_t>(timeout_ms) * 1000;
  while (unfinished > 0) {
    bool progress = false;
    uint64_t now_us = NowUs();
    for (size_t i = 0; i < reads->size(); i++) {
      GatherRead& r = (*reads)[i];
      Entry& e = entries[i];
      if (e.finished) {
        continue;
      }
      size_t live = 0;
      for (Attempt& a : e.attempts) {
        if (a.done) {
          continue;
        }
        if (!a.pending.ready()) {
          live++;
          continue;
        }
        Status s = a.pending.Wait(&r.data, /*timeout_ms=*/0);
        a.done = true;
        progress = true;
        if (s.ok()) {
          r.status = Status::OK();
          e.finished = true;
          unfinished--;
          if (a.is_hedge) {
            hedged_won_.fetch_add(1, std::memory_order_relaxed);
          }
          // First success wins: withdraw the losing attempts so their
          // late responses are dropped (duplicate completions that
          // already landed are simply discarded).
          for (Attempt& other : e.attempts) {
            if (!other.done) {
              other.pending.Cancel();
              other.done = true;
            }
          }
          break;
        }
        e.last_error = s;
      }
      if (e.finished) {
        continue;
      }
      if (live == 0) {
        // Every issued attempt failed: fail over to the next candidate,
        // or surface the last error once they are exhausted.
        if (e.next_candidate < e.order.size()) {
          const GatherRead::Target& t =
              r.replicas[e.order[e.next_candidate++]];
          e.attempts.push_back(
              Attempt{AsyncReadBlock(t.stoc, t.file_id, r.offset, r.size)});
          progress = true;
        } else {
          r.status = e.last_error.ok()
                         ? Status::Unavailable("all replicas failed")
                         : e.last_error;
          e.finished = true;
          unfinished--;
        }
        continue;
      }
      // Straggler mitigation: one speculative attempt to the next
      // candidate once the entry is outstanding past the hedge delay.
      if (policy.hedge && !e.hedged && e.next_candidate < e.order.size() &&
          now_us - e.issued_at_us >= hedge_delay_us) {
        const GatherRead::Target& t = r.replicas[e.order[e.next_candidate++]];
        Attempt hedge{AsyncReadBlock(t.stoc, t.file_id, r.offset, r.size)};
        hedge.is_hedge = true;
        e.attempts.push_back(std::move(hedge));
        e.hedged = true;
        hedged_issued_.fetch_add(1, std::memory_order_relaxed);
        progress = true;
      }
    }
    if (unfinished == 0) {
      break;
    }
    if (NowUs() >= deadline_us) {
      for (size_t i = 0; i < reads->size(); i++) {
        Entry& e = entries[i];
        if (e.finished) {
          continue;
        }
        for (Attempt& a : e.attempts) {
          if (!a.done) {
            a.pending.Cancel();
            a.done = true;
          }
        }
        (*reads)[i].status = Status::Unavailable("rpc deadline exceeded");
        e.finished = true;
        unfinished--;
      }
      break;
    }
    if (!progress) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  for (const GatherRead& r : *reads) {
    if (!r.status.ok()) {
      return r.status;
    }
  }
  return Status::OK();
}

Status StocClient::DeleteFile(rdma::NodeId stoc, uint64_t file_id,
                              bool in_memory) {
  std::string req;
  req.push_back(kOpDeleteFile);
  PutVarint64(&req, file_id);
  PutVarint32(&req, in_memory ? 1 : 0);
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage);
}

Status StocClient::OpenInMemFile(rdma::NodeId stoc, uint64_t file_id,
                                 uint64_t region_size,
                                 InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpOpenInMemFile);
  PutVarint64(&req, file_id);
  PutVarint64(&req, region_size);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad open response");
  }
  handle->stoc_id = stoc;
  handle->file_id = file_id;
  handle->regions = {InMemRegion{mr_id, region_size}};
  return Status::OK();
}

Status StocClient::ExtendInMemFile(InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpExtendInMemFile);
  PutVarint64(&req, handle->file_id);
  std::string storage;
  Slice body;
  Status s = SimpleCall(handle->stoc_id, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad extend response");
  }
  handle->regions.push_back(
      InMemRegion{mr_id, handle->regions.front().size});
  return Status::OK();
}

Status StocClient::WriteInMem(const InMemFileHandle& handle,
                              uint64_t global_offset, const Slice& data) {
  uint64_t base = 0;
  for (const InMemRegion& region : handle.regions) {
    if (global_offset < base + region.size) {
      uint64_t local = global_offset - base;
      if (local + data.size() > region.size) {
        return Status::InvalidArgument("write spans region boundary");
      }
      Status ws = endpoint_->fabric()->Write(
          endpoint_->node(), data,
          rdma::RemoteAddr{handle.stoc_id, region.mr_id, local},
          /*notify=*/false, 0);
      if (ws.ok()) {
        CountWire(handle.stoc_id, data.size(), 0);
      }
      return ws;
    }
    base += region.size;
  }
  return Status::InvalidArgument("offset beyond in-memory file");
}

Status StocClient::ReadInMemRegion(const InMemFileHandle& handle,
                                   size_t region_index, std::string* out) {
  if (region_index >= handle.regions.size()) {
    return Status::InvalidArgument("no such region");
  }
  const InMemRegion& region = handle.regions[region_index];
  out->resize(region.size);
  Status rs = endpoint_->fabric()->Read(
      endpoint_->node(), rdma::RemoteAddr{handle.stoc_id, region.mr_id, 0},
      out->data(), region.size);
  if (rs.ok()) {
    CountWire(handle.stoc_id, 0, region.size);
  }
  return rs;
}

Status StocClient::NicAppend(const InMemFileHandle& handle,
                             uint64_t global_offset, const Slice& data) {
  std::string req;
  req.push_back(kOpNicAppend);
  PutVarint64(&req, handle.file_id);
  PutVarint64(&req, global_offset);
  req.append(data.data(), data.size());
  std::string storage;
  Slice body;
  return SimpleCall(handle.stoc_id, req, &body, &storage);
}

Status StocClient::GetStats(rdma::NodeId stoc, StocStats* stats,
                            int timeout_ms) {
  std::string req;
  req.push_back(kOpStats);
  std::string storage;
  Slice body;
  Status s = IdempotentCall(stoc, req, &body, &storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  uint32_t depth, comp_inflight;
  uint64_t stored, util, comp_done;
  if (!GetVarint32(&body, &depth) || !GetVarint64(&body, &stored) ||
      !GetVarint64(&body, &util) || !GetVarint32(&body, &comp_inflight) ||
      !GetVarint64(&body, &comp_done)) {
    return Status::IOError("bad stats response");
  }
  stats->queue_depth = static_cast<int>(depth);
  stats->stored_bytes = stored;
  stats->cpu_utilization = static_cast<double>(util) / 1e6;
  stats->compactions_inflight = static_cast<int>(comp_inflight);
  stats->compactions_done = comp_done;
  return Status::OK();
}

Status StocClient::QueryLogFiles(rdma::NodeId stoc, uint32_t range_id,
                                 std::vector<InMemFileHandle>* handles) {
  std::string req;
  req.push_back(kOpQueryLogFiles);
  PutVarint32(&req, range_id);
  std::string storage;
  Slice body;
  Status s = IdempotentCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad log-files response");
  }
  handles->clear();
  for (uint32_t i = 0; i < count; i++) {
    InMemFileHandle h;
    h.stoc_id = stoc;
    uint32_t nregions;
    if (!GetVarint64(&body, &h.file_id) || !GetVarint32(&body, &nregions)) {
      return Status::IOError("bad log-files entry");
    }
    for (uint32_t r = 0; r < nregions; r++) {
      InMemRegion region;
      if (!GetVarint32(&body, &region.mr_id) ||
          !GetVarint64(&body, &region.size)) {
        return Status::IOError("bad log-files region");
      }
      h.regions.push_back(region);
    }
    handles->push_back(std::move(h));
  }
  return Status::OK();
}

Status StocClient::ListFiles(rdma::NodeId stoc,
                             std::vector<uint64_t>* files) {
  std::string req;
  req.push_back(kOpListFiles);
  std::string storage;
  Slice body;
  Status s = IdempotentCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad list response");
  }
  files->clear();
  for (uint32_t i = 0; i < count; i++) {
    uint64_t id;
    if (!GetVarint64(&body, &id)) {
      return Status::IOError("bad list entry");
    }
    files->push_back(id);
  }
  return Status::OK();
}

Status StocClient::CopyFileTo(rdma::NodeId stoc, uint64_t file_id,
                              rdma::NodeId dst) {
  std::string req;
  req.push_back(kOpCopyFileTo);
  PutVarint64(&req, file_id);
  PutVarint32(&req, static_cast<uint32_t>(dst));
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage, 60000);
}

Status StocClient::Compaction(rdma::NodeId stoc, const Slice& job,
                              std::string* result, int timeout_ms) {
  std::string req;
  req.push_back(kOpCompaction);
  req.append(job.data(), job.size());
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  result->assign(body.data(), body.size());
  return Status::OK();
}

}  // namespace stoc
}  // namespace nova
