#include "stoc/stoc_client.h"

namespace nova {
namespace stoc {

Status StocClient::SimpleCall(rdma::NodeId stoc, const std::string& req,
                              Slice* body, std::string* storage,
                              int timeout_ms) {
  Status s = endpoint_->Call(stoc, req, storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  return ParseResponse(*storage, body);
}

Status PendingRead::Wait(std::string* out, int timeout_ms) {
  std::string storage;
  Status s = future_.Wait(&storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  Slice body;
  s = ParseResponse(storage, &body);
  if (!s.ok()) {
    return s;
  }
  out->assign(body.data(), body.size());
  return Status::OK();
}

PendingAppend& PendingAppend::operator=(PendingAppend&& o) noexcept {
  if (this == &o) {
    return *this;
  }
  Abandon();
  client_ = o.client_;
  stoc_ = o.stoc_;
  data_ = o.data_;
  alloc_ = std::move(o.alloc_);
  flush_ack_ = std::move(o.flush_ack_);
  armed_status_ = std::move(o.armed_status_);
  armed_ = o.armed_;
  settled_ = o.settled_;
  o.client_ = nullptr;  // the moved-from append owns nothing to reap
  return *this;
}

void PendingAppend::Abandon() {
  if (client_ != nullptr && !settled_) {
    flush_ack_.Wait(nullptr, 0);
    settled_ = true;
  }
}

Status PendingAppend::Arm() {
  if (!valid()) {
    return Status::InvalidArgument("invalid pending append");
  }
  armed_ = true;
  std::string storage;
  armed_status_ = alloc_.Wait(&storage);
  Slice body;
  if (armed_status_.ok()) {
    armed_status_ = ParseResponse(storage, &body);
  }
  uint32_t mr_id = 0;
  if (armed_status_.ok() && !GetVarint32(&body, &mr_id)) {
    armed_status_ = Status::IOError("bad alloc-block response");
  }
  if (armed_status_.ok()) {
    // 2. One-sided RDMA WRITE of the block, immediate data = buffer id.
    rdma::RpcEndpoint* ep = client_->endpoint();
    armed_status_ = ep->fabric()->Write(ep->node(), data_,
                                        rdma::RemoteAddr{stoc_, mr_id, 0},
                                        true, mr_id);
  }
  if (!armed_status_.ok()) {
    flush_ack_.Wait(nullptr, 0);  // reap the never-to-complete token
    settled_ = true;
  }
  return armed_status_;
}

Status PendingAppend::Wait(StocBlockHandle* handle, int timeout_ms) {
  if (!valid()) {
    return Status::InvalidArgument("invalid pending append");
  }
  if (!armed_) {
    Status s = Arm();
    if (!s.ok()) {
      return s;
    }
  } else if (!armed_status_.ok()) {
    return armed_status_;
  }
  // 3-4. The StoC flushes and completes our token with the block handle.
  std::string payload;
  Status s = flush_ack_.Wait(&payload, timeout_ms);
  settled_ = true;  // waited (or timed out, which withdrew the slot)
  if (!s.ok()) {
    return s;
  }
  Slice handle_slice(payload);
  if (!handle->DecodeFrom(&handle_slice)) {
    return Status::IOError("bad block handle in flush ack");
  }
  return Status::OK();
}

PendingAppend StocClient::AsyncAppendBlock(rdma::NodeId stoc,
                                           uint64_t file_id,
                                           const Slice& data) {
  // 1. Ask the StoC for a buffer, registering our completion token.
  PendingAppend pending;
  pending.client_ = this;
  pending.stoc_ = stoc;
  pending.data_ = data;
  uint64_t token = endpoint_->AllocToken(&pending.flush_ack_);
  std::string req;
  req.push_back(kOpAllocBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, data.size());
  PutVarint64(&req, token);
  pending.alloc_ = endpoint_->AsyncCall(stoc, req);
  return pending;
}

Status StocClient::AppendBlock(rdma::NodeId stoc, uint64_t file_id,
                               const Slice& data, StocBlockHandle* handle) {
  return AsyncAppendBlock(stoc, file_id, data).Wait(handle);
}

PendingRead StocClient::AsyncReadBlock(rdma::NodeId stoc, uint64_t file_id,
                                       uint64_t offset, uint64_t size) {
  read_block_calls_.fetch_add(1, std::memory_order_relaxed);
  std::string req;
  req.push_back(kOpReadBlock);
  PutVarint64(&req, file_id);
  PutVarint64(&req, offset);
  PutVarint64(&req, size);
  PendingRead pending;
  pending.future_ = endpoint_->AsyncCall(stoc, req);
  return pending;
}

Status StocClient::ReadBlock(rdma::NodeId stoc, uint64_t file_id,
                             uint64_t offset, uint64_t size,
                             std::string* out) {
  return AsyncReadBlock(stoc, file_id, offset, size).Wait(out);
}

Status StocClient::GatherReads(std::vector<GatherRead>* reads,
                               int timeout_ms) {
  struct Flight {
    size_t index;
    PendingRead pending;
  };
  // Wave w issues every unfinished entry's w-th replica concurrently, then
  // collects them; only entries that failed wave w (and still have
  // candidates) roll into wave w+1. The first wave therefore runs the
  // whole batch in parallel, and failover costs one extra wave per lost
  // replica instead of serializing the batch.
  size_t wave = 0;
  bool any_pending = true;
  while (any_pending) {
    std::vector<Flight> flights;
    for (size_t i = 0; i < reads->size(); i++) {
      GatherRead& r = (*reads)[i];
      if (wave == 0) {
        r.status = Status::Unavailable("no replicas");
      } else if (r.status.ok()) {
        continue;
      }
      if (wave >= r.replicas.size()) {
        continue;
      }
      const GatherRead::Target& t = r.replicas[wave];
      flights.push_back(
          Flight{i, AsyncReadBlock(t.stoc, t.file_id, r.offset, r.size)});
    }
    for (Flight& f : flights) {
      GatherRead& r = (*reads)[f.index];
      r.status = f.pending.Wait(&r.data, timeout_ms);
    }
    wave++;
    any_pending = false;
    for (const GatherRead& r : *reads) {
      if (!r.status.ok() && wave < r.replicas.size()) {
        any_pending = true;
        break;
      }
    }
  }
  for (const GatherRead& r : *reads) {
    if (!r.status.ok()) {
      return r.status;
    }
  }
  return Status::OK();
}

Status StocClient::DeleteFile(rdma::NodeId stoc, uint64_t file_id,
                              bool in_memory) {
  std::string req;
  req.push_back(kOpDeleteFile);
  PutVarint64(&req, file_id);
  PutVarint32(&req, in_memory ? 1 : 0);
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage);
}

Status StocClient::OpenInMemFile(rdma::NodeId stoc, uint64_t file_id,
                                 uint64_t region_size,
                                 InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpOpenInMemFile);
  PutVarint64(&req, file_id);
  PutVarint64(&req, region_size);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad open response");
  }
  handle->stoc_id = stoc;
  handle->file_id = file_id;
  handle->regions = {InMemRegion{mr_id, region_size}};
  return Status::OK();
}

Status StocClient::ExtendInMemFile(InMemFileHandle* handle) {
  std::string req;
  req.push_back(kOpExtendInMemFile);
  PutVarint64(&req, handle->file_id);
  std::string storage;
  Slice body;
  Status s = SimpleCall(handle->stoc_id, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t mr_id;
  if (!GetVarint32(&body, &mr_id)) {
    return Status::IOError("bad extend response");
  }
  handle->regions.push_back(
      InMemRegion{mr_id, handle->regions.front().size});
  return Status::OK();
}

Status StocClient::WriteInMem(const InMemFileHandle& handle,
                              uint64_t global_offset, const Slice& data) {
  uint64_t base = 0;
  for (const InMemRegion& region : handle.regions) {
    if (global_offset < base + region.size) {
      uint64_t local = global_offset - base;
      if (local + data.size() > region.size) {
        return Status::InvalidArgument("write spans region boundary");
      }
      return endpoint_->fabric()->Write(
          endpoint_->node(), data,
          rdma::RemoteAddr{handle.stoc_id, region.mr_id, local},
          /*notify=*/false, 0);
    }
    base += region.size;
  }
  return Status::InvalidArgument("offset beyond in-memory file");
}

Status StocClient::ReadInMemRegion(const InMemFileHandle& handle,
                                   size_t region_index, std::string* out) {
  if (region_index >= handle.regions.size()) {
    return Status::InvalidArgument("no such region");
  }
  const InMemRegion& region = handle.regions[region_index];
  out->resize(region.size);
  return endpoint_->fabric()->Read(
      endpoint_->node(), rdma::RemoteAddr{handle.stoc_id, region.mr_id, 0},
      out->data(), region.size);
}

Status StocClient::NicAppend(const InMemFileHandle& handle,
                             uint64_t global_offset, const Slice& data) {
  std::string req;
  req.push_back(kOpNicAppend);
  PutVarint64(&req, handle.file_id);
  PutVarint64(&req, global_offset);
  req.append(data.data(), data.size());
  std::string storage;
  Slice body;
  return SimpleCall(handle.stoc_id, req, &body, &storage);
}

Status StocClient::GetStats(rdma::NodeId stoc, StocStats* stats) {
  std::string req;
  req.push_back(kOpStats);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t depth, comp_inflight;
  uint64_t stored, util, comp_done;
  if (!GetVarint32(&body, &depth) || !GetVarint64(&body, &stored) ||
      !GetVarint64(&body, &util) || !GetVarint32(&body, &comp_inflight) ||
      !GetVarint64(&body, &comp_done)) {
    return Status::IOError("bad stats response");
  }
  stats->queue_depth = static_cast<int>(depth);
  stats->stored_bytes = stored;
  stats->cpu_utilization = static_cast<double>(util) / 1e6;
  stats->compactions_inflight = static_cast<int>(comp_inflight);
  stats->compactions_done = comp_done;
  return Status::OK();
}

Status StocClient::QueryLogFiles(rdma::NodeId stoc, uint32_t range_id,
                                 std::vector<InMemFileHandle>* handles) {
  std::string req;
  req.push_back(kOpQueryLogFiles);
  PutVarint32(&req, range_id);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad log-files response");
  }
  handles->clear();
  for (uint32_t i = 0; i < count; i++) {
    InMemFileHandle h;
    h.stoc_id = stoc;
    uint32_t nregions;
    if (!GetVarint64(&body, &h.file_id) || !GetVarint32(&body, &nregions)) {
      return Status::IOError("bad log-files entry");
    }
    for (uint32_t r = 0; r < nregions; r++) {
      InMemRegion region;
      if (!GetVarint32(&body, &region.mr_id) ||
          !GetVarint64(&body, &region.size)) {
        return Status::IOError("bad log-files region");
      }
      h.regions.push_back(region);
    }
    handles->push_back(std::move(h));
  }
  return Status::OK();
}

Status StocClient::ListFiles(rdma::NodeId stoc,
                             std::vector<uint64_t>* files) {
  std::string req;
  req.push_back(kOpListFiles);
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage);
  if (!s.ok()) {
    return s;
  }
  uint32_t count;
  if (!GetVarint32(&body, &count)) {
    return Status::IOError("bad list response");
  }
  files->clear();
  for (uint32_t i = 0; i < count; i++) {
    uint64_t id;
    if (!GetVarint64(&body, &id)) {
      return Status::IOError("bad list entry");
    }
    files->push_back(id);
  }
  return Status::OK();
}

Status StocClient::CopyFileTo(rdma::NodeId stoc, uint64_t file_id,
                              rdma::NodeId dst) {
  std::string req;
  req.push_back(kOpCopyFileTo);
  PutVarint64(&req, file_id);
  PutVarint32(&req, static_cast<uint32_t>(dst));
  std::string storage;
  Slice body;
  return SimpleCall(stoc, req, &body, &storage, 60000);
}

Status StocClient::Compaction(rdma::NodeId stoc, const Slice& job,
                              std::string* result, int timeout_ms) {
  std::string req;
  req.push_back(kOpCompaction);
  req.append(job.data(), job.size());
  std::string storage;
  Slice body;
  Status s = SimpleCall(stoc, req, &body, &storage, timeout_ms);
  if (!s.ok()) {
    return s;
  }
  result->assign(body.data(), body.size());
  return Status::OK();
}

}  // namespace stoc
}  // namespace nova
