// Client library: routes requests to LTCs using a cached copy of the
// coordinator's configuration (paper Section 3: "Nova-LSM clients use this
// configuration information to direct a request to an LTC with relevant
// data"). On a routing miss (range migrated, LTC change) it refreshes the
// configuration and retries — the Rejig-style epoch protocol [30, 31].
#ifndef NOVA_CLIENT_NOVA_CLIENT_H_
#define NOVA_CLIENT_NOVA_CLIENT_H_

#include <string>
#include <vector>

#include "coord/cluster.h"

namespace nova {
namespace client {

class NovaClient {
 public:
  explicit NovaClient(coord::Cluster* cluster);

  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Scan(const Slice& start_key, int num_records,
              std::vector<std::pair<std::string, std::string>>* out);

  /// Times the cached configuration was refreshed due to routing misses.
  uint64_t config_refreshes() const { return config_refreshes_; }

 private:
  /// Returns the LTC for key per the cached config, refreshing on miss.
  ltc::LtcServer* Route(const Slice& key);

  coord::Cluster* cluster_;
  coord::Configuration cached_;
  std::mutex mu_;
  uint64_t config_refreshes_ = 0;
};

}  // namespace client
}  // namespace nova

#endif  // NOVA_CLIENT_NOVA_CLIENT_H_
