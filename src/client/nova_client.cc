#include "client/nova_client.h"

#include <chrono>
#include <thread>

namespace nova {
namespace client {

NovaClient::NovaClient(coord::Cluster* cluster) : cluster_(cluster) {
  cached_ = cluster_->coordinator()->config();
}

ltc::LtcServer* NovaClient::Route(const Slice& key) {
  std::lock_guard<std::mutex> l(mu_);
  int idx = cached_.LtcForKey(key);
  if (idx < 0 ||
      cached_.epoch != cluster_->coordinator()->epoch()) {
    cached_ = cluster_->coordinator()->config();
    config_refreshes_++;
    idx = cached_.LtcForKey(key);
  }
  if (idx < 0) {
    return nullptr;
  }
  return cluster_->ltc(idx);
}

Status NovaClient::Put(const Slice& key, const Slice& value) {
  for (int attempt = 0; attempt < 100; attempt++) {
    ltc::LtcServer* server = Route(key);
    if (server == nullptr) {
      return Status::InvalidArgument("key outside all ranges");
    }
    Status s = server->Put(key, value);
    if (!s.IsInvalidArgument() && !s.IsUnavailable()) {
      return s;
    }
    // Stale config (migration in progress): refresh and retry.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::lock_guard<std::mutex> l(mu_);
    cached_ = cluster_->coordinator()->config();
    config_refreshes_++;
  }
  return Status::Unavailable("range unavailable");
}

Status NovaClient::Get(const Slice& key, std::string* value) {
  for (int attempt = 0; attempt < 100; attempt++) {
    ltc::LtcServer* server = Route(key);
    if (server == nullptr) {
      return Status::InvalidArgument("key outside all ranges");
    }
    Status s = server->Get(key, value);
    if (!s.IsInvalidArgument() && !s.IsUnavailable()) {
      return s;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    std::lock_guard<std::mutex> l(mu_);
    cached_ = cluster_->coordinator()->config();
    config_refreshes_++;
  }
  return Status::Unavailable("range unavailable");
}

Status NovaClient::Delete(const Slice& key) {
  ltc::LtcServer* server = Route(key);
  if (server == nullptr) {
    return Status::InvalidArgument("key outside all ranges");
  }
  return server->Delete(key);
}

Status NovaClient::Scan(
    const Slice& start_key, int num_records,
    std::vector<std::pair<std::string, std::string>>* out) {
  return cluster_->Scan(start_key, num_records, out);
}

}  // namespace client
}  // namespace nova
