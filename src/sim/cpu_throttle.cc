#include "sim/cpu_throttle.h"

#include <algorithm>
#include <thread>

namespace nova {
namespace sim {

CpuThrottle::CpuThrottle(double rate_us_per_sec, double burst_us)
    : rate_(rate_us_per_sec), burst_(burst_us), tokens_(burst_us) {
  last_refill_ = Clock::now();
  start_ = last_refill_;
  window_start_ = last_refill_;
  if (rate_ <= 0) {
    unlimited_ = true;
  }
}

CpuThrottle* CpuThrottle::Unlimited() {
  static CpuThrottle* t = new CpuThrottle(0);
  return t;
}

void CpuThrottle::RefillLocked(Clock::time_point now) {
  double elapsed_sec =
      std::chrono::duration<double>(now - last_refill_).count();
  tokens_ = std::min(burst_, tokens_ + elapsed_sec * rate_);
  last_refill_ = now;
}

void CpuThrottle::Charge(double cost_us) {
  if (unlimited_ || cost_us <= 0) {
    return;
  }
  for (;;) {
    std::chrono::duration<double> wait_sec(0);
    {
      std::lock_guard<std::mutex> l(mu_);
      auto now = Clock::now();
      RefillLocked(now);
      if (tokens_ >= cost_us) {
        tokens_ -= cost_us;
        consumed_total_ += cost_us;
        window_consumed_ += cost_us;
        return;
      }
      wait_sec = std::chrono::duration<double>((cost_us - tokens_) / rate_);
    }
    std::this_thread::sleep_for(wait_sec);
  }
}

bool CpuThrottle::TryCharge(double cost_us) {
  if (unlimited_ || cost_us <= 0) {
    return true;
  }
  std::lock_guard<std::mutex> l(mu_);
  RefillLocked(Clock::now());
  if (tokens_ >= cost_us) {
    tokens_ -= cost_us;
    consumed_total_ += cost_us;
    window_consumed_ += cost_us;
    return true;
  }
  return false;
}

double CpuThrottle::Utilization() const {
  if (unlimited_) {
    return 0;
  }
  std::lock_guard<std::mutex> l(mu_);
  double elapsed_sec =
      std::chrono::duration<double>(Clock::now() - start_).count();
  if (elapsed_sec <= 0) {
    return 0;
  }
  return consumed_total_ / (elapsed_sec * rate_);
}

double CpuThrottle::WindowUtilization() const {
  if (unlimited_) {
    return 0;
  }
  std::lock_guard<std::mutex> l(mu_);
  double elapsed_sec =
      std::chrono::duration<double>(Clock::now() - window_start_).count();
  if (elapsed_sec <= 0) {
    return 0;
  }
  return window_consumed_ / (elapsed_sec * rate_);
}

void CpuThrottle::ResetWindow() {
  std::lock_guard<std::mutex> l(mu_);
  window_consumed_ = 0;
  window_start_ = Clock::now();
}

}  // namespace sim
}  // namespace nova
