// Calibrated virtual-CPU costs (microseconds) charged to a node's
// CpuThrottle for each unit of work. The relative magnitudes follow the
// paper's reported overheads:
//  * maintaining the lookup/range indexes costs ~15-30% of a write's CPU
//    (paper Section 1.2, 8.3.1, 8.3.4);
//  * a get that cannot use the lookup index probes every memtable and L0
//    SSTable, so probe costs are charged per table searched (Challenge 2);
//  * scans charge per record iterated plus per table in the merge set,
//    which makes the range index's 26x/18x effect reproducible;
//  * xchg threads charge per poll, making RDMA polling overhead visible
//    with many nodes (paper Section 8.3.4).
#ifndef NOVA_SIM_COST_MODEL_H_
#define NOVA_SIM_COST_MODEL_H_

namespace nova {
namespace sim {

struct CostModel {
  // Request admission / networking.
  double request_dispatch_us = 2.0;   // parse + route one client request
  double xchg_poll_us = 0.3;          // one poll iteration of an xchg thread
  double rdma_message_us = 1.0;       // initiator-side cost of a verb

  // Write path.
  double put_base_us = 3.0;           // memtable append (skiplist insert)
  double log_append_us = 1.0;         // LogC record construction
  double lookup_index_update_us = 1.0;   // Challenge-2 index maintenance
  double range_index_update_us = 0.5;

  // Read path.
  double get_base_us = 2.0;
  double memtable_probe_us = 1.5;     // search one memtable
  double l0_sstable_probe_us = 2.5;   // search one L0 SSTable (cached bloom)
  double high_level_probe_us = 3.0;   // binary search + block read CPU

  // Scan path.
  double scan_seek_us = 4.0;          // position iterators in one partition
  double scan_per_table_us = 1.5;     // each memtable/SSTable in merge set
  double scan_per_record_us = 0.8;    // iterate one (version of a) record

  // NIC-path log replication: the StoC's CPU copies each record
  // (one-sided RDMA WRITE costs the StoC nothing, Section 8.2.3).
  double nic_log_append_us = 6.0;

  // Background work. Compaction I/O is charged separately from the
  // foreground read/write costs above so benches can attribute
  // interference: each input data block fetched from a StoC and each
  // output SSTable written through the placer costs the compacting node
  // CPU distinct from per-record merge work.
  double compaction_per_record_us = 0.4;
  double compaction_read_block_us = 2.0;
  double compaction_write_sstable_us = 8.0;
  double flush_per_record_us = 0.3;
  double reorg_sample_us = 0.2;
};

/// The process-wide default cost model (mutable for experiments).
CostModel& DefaultCostModel();

}  // namespace sim
}  // namespace nova

#endif  // NOVA_SIM_COST_MODEL_H_
