#include "sim/cost_model.h"

namespace nova {
namespace sim {

CostModel& DefaultCostModel() {
  static CostModel model;
  return model;
}

}  // namespace sim
}  // namespace nova
