// CpuThrottle models the CPU capacity of one simulated node.
//
// The paper's cluster has 32-vcore servers and several experiments hinge on
// an LTC's CPU saturating (e.g., Figures 13-15: "once the CPU of the LTC is
// fully utilized, adding StoCs does not help"). This repository runs the
// whole cluster in one process on a small host, so per-node CPU-boundedness
// cannot come from physical parallelism. Instead every simulated node owns
// a token bucket denominated in microseconds of virtual CPU time; request
// processing charges calibrated costs (see cost_model.h) and blocks when
// the node's budget is exhausted. Utilization is observable for the
// coordinator's load-balancing decisions.
#ifndef NOVA_SIM_CPU_THROTTLE_H_
#define NOVA_SIM_CPU_THROTTLE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace nova {
namespace sim {

class CpuThrottle {
 public:
  /// rate_us_per_sec: virtual CPU microseconds replenished per real second
  /// (1e6 = one virtual core). burst_us: bucket capacity.
  explicit CpuThrottle(double rate_us_per_sec, double burst_us = 20000.0);

  /// Consume cost_us of virtual CPU, sleeping if the bucket is empty.
  void Charge(double cost_us);

  /// Non-blocking variant used by polling threads: consume if available,
  /// otherwise return false immediately.
  bool TryCharge(double cost_us);

  /// Fraction of capacity consumed over the throttle's lifetime [0, 1+].
  double Utilization() const;

  /// Recent utilization since the last call to ResetWindow().
  double WindowUtilization() const;
  void ResetWindow();

  double rate_us_per_sec() const { return rate_; }

  /// Disable throttling entirely (infinite CPU); used by unit tests.
  static CpuThrottle* Unlimited();

 private:
  using Clock = std::chrono::steady_clock;

  void RefillLocked(Clock::time_point now);

  double rate_;
  double burst_;
  mutable std::mutex mu_;
  double tokens_;
  Clock::time_point last_refill_;
  Clock::time_point start_;
  double consumed_total_ = 0;
  double window_consumed_ = 0;
  Clock::time_point window_start_;
  bool unlimited_ = false;
};

}  // namespace sim
}  // namespace nova

#endif  // NOVA_SIM_CPU_THROTTLE_H_
