#include "lsm/version.h"

#include <algorithm>

#include "util/coding.h"

namespace nova {
namespace lsm {

uint64_t Version::LevelBytes(int level) const {
  uint64_t total = 0;
  for (const auto& f : levels_[level]) {
    total += f->data_size;
  }
  return total;
}

int Version::NumFiles() const {
  int n = 0;
  for (const auto& level : levels_) {
    n += static_cast<int>(level.size());
  }
  return n;
}

std::vector<FileMetaRef> Version::OverlappingFiles(int level,
                                                   const Slice& begin,
                                                   const Slice& end) const {
  std::vector<FileMetaRef> result;
  for (const auto& f : levels_[level]) {
    // Intersect [f.smallest, f.largest] with [begin, end] on user keys.
    if (!end.empty() && f->smallest.user_key().compare(end) > 0) {
      continue;
    }
    if (!begin.empty() && f->largest.user_key().compare(begin) < 0) {
      continue;
    }
    result.push_back(f);
  }
  return result;
}

FileMetaRef Version::FileForKey(int level, const Slice& user_key) const {
  const auto& files = levels_[level];
  // Files at levels >= 1 are sorted by smallest key and disjoint.
  int lo = 0;
  int hi = static_cast<int>(files.size()) - 1;
  while (lo <= hi) {
    int mid = (lo + hi) / 2;
    if (files[mid]->largest.user_key().compare(user_key) < 0) {
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  if (lo < static_cast<int>(files.size()) &&
      files[lo]->smallest.user_key().compare(user_key) <= 0) {
    return files[lo];
  }
  return nullptr;
}

void VersionEdit::EncodeTo(std::string* dst) const {
  PutVarint64(dst, last_sequence);
  PutVarint64(dst, next_file_number);
  PutVarint32(dst, static_cast<uint32_t>(new_files.size()));
  for (const auto& [level, meta] : new_files) {
    PutVarint32(dst, level);
    meta.EncodeTo(dst);
  }
  PutVarint32(dst, static_cast<uint32_t>(deleted_files.size()));
  for (const auto& [level, number] : deleted_files) {
    PutVarint32(dst, level);
    PutVarint64(dst, number);
  }
  PutLengthPrefixedSlice(dst, drange_state);
}

Status VersionEdit::DecodeFrom(Slice input) {
  uint32_t n_new, n_del;
  if (!GetVarint64(&input, &last_sequence) ||
      !GetVarint64(&input, &next_file_number) ||
      !GetVarint32(&input, &n_new)) {
    return Status::Corruption("bad version edit header");
  }
  new_files.clear();
  for (uint32_t i = 0; i < n_new; i++) {
    uint32_t level;
    FileMetaData meta;
    if (!GetVarint32(&input, &level)) {
      return Status::Corruption("bad edit file level");
    }
    Status s = meta.DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    new_files.emplace_back(level, std::move(meta));
  }
  if (!GetVarint32(&input, &n_del)) {
    return Status::Corruption("bad edit deletions");
  }
  deleted_files.clear();
  for (uint32_t i = 0; i < n_del; i++) {
    uint32_t level;
    uint64_t number;
    if (!GetVarint32(&input, &level) || !GetVarint64(&input, &number)) {
      return Status::Corruption("bad edit deletion");
    }
    deleted_files.emplace_back(level, number);
  }
  Slice ds;
  if (!GetLengthPrefixedSlice(&input, &ds)) {
    return Status::Corruption("bad edit drange state");
  }
  drange_state = ds.ToString();
  return Status::OK();
}

VersionSet::VersionSet(const LsmOptions& options,
                       std::function<Status(const Slice&)> manifest_append)
    : options_(options), manifest_append_(std::move(manifest_append)) {
  current_ = std::make_shared<Version>(options_.num_levels);
}

VersionRef VersionSet::current() const {
  std::lock_guard<std::mutex> l(mu_);
  return current_;
}

uint64_t VersionSet::ExpectedLevelBytes(int level) const {
  if (level == 0) {
    return options_.l0_compaction_trigger_bytes;
  }
  uint64_t size = options_.base_level_bytes;
  for (int i = 1; i < level; i++) {
    size *= 10;
  }
  return size;
}

VersionRef VersionSet::ApplyLocked(const VersionEdit& edit) {
  auto next = std::make_shared<Version>(options_.num_levels);
  // Start from current files minus deletions.
  for (int level = 0; level < options_.num_levels; level++) {
    for (const auto& f : current_->levels_[level]) {
      bool deleted = false;
      for (const auto& [dl, dn] : edit.deleted_files) {
        if (dl == level && dn == f->number) {
          deleted = true;
          break;
        }
      }
      if (!deleted) {
        next->levels_[level].push_back(f);
      }
    }
  }
  for (const auto& [level, meta] : edit.new_files) {
    next->levels_[level].push_back(std::make_shared<FileMetaData>(meta));
  }
  // Keep levels >= 1 sorted by smallest key; L0 sorted by file number
  // (newest last) so newer tables shadow older ones deterministically.
  InternalKeyComparator icmp;
  std::sort(next->levels_[0].begin(), next->levels_[0].end(),
            [](const FileMetaRef& a, const FileMetaRef& b) {
              return a->number < b->number;
            });
  for (int level = 1; level < options_.num_levels; level++) {
    std::sort(next->levels_[level].begin(), next->levels_[level].end(),
              [&icmp](const FileMetaRef& a, const FileMetaRef& b) {
                return icmp.Compare(a->smallest.Encode(),
                                    b->smallest.Encode()) < 0;
              });
  }
  return next;
}

Status VersionSet::LogAndApply(VersionEdit* edit) {
  std::lock_guard<std::mutex> l(mu_);
  edit->last_sequence = last_sequence_.load();
  edit->next_file_number = next_file_number_.load();
  if (!edit->drange_state.empty()) {
    drange_state_ = edit->drange_state;
  }
  if (manifest_append_) {
    std::string record;
    edit->EncodeTo(&record);
    Status s = manifest_append_(record);
    if (!s.ok()) {
      return s;
    }
  }
  current_ = ApplyLocked(*edit);
  manifest_version_.fetch_add(1);
  return Status::OK();
}

Status VersionSet::Recover(const std::vector<std::string>& records) {
  std::lock_guard<std::mutex> l(mu_);
  current_ = std::make_shared<Version>(options_.num_levels);
  for (const std::string& record : records) {
    VersionEdit edit;
    Status s = edit.DecodeFrom(record);
    if (!s.ok()) {
      return s;
    }
    current_ = ApplyLocked(edit);
    if (edit.last_sequence > last_sequence_.load()) {
      last_sequence_.store(edit.last_sequence);
    }
    if (edit.next_file_number > next_file_number_.load()) {
      next_file_number_.store(edit.next_file_number);
    }
    if (!edit.drange_state.empty()) {
      drange_state_ = edit.drange_state;
    }
    manifest_version_.fetch_add(1);
  }
  return Status::OK();
}

std::string VersionSet::drange_state() const {
  std::lock_guard<std::mutex> l(mu_);
  return drange_state_;
}

}  // namespace lsm
}  // namespace nova
