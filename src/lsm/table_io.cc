#include "lsm/table_io.h"

#include <algorithm>
#include <set>

#include "stoc/stoc_common.h"
#include "util/coding.h"
#include "util/logging.h"

namespace nova {
namespace lsm {

Status StocBlockFetcher::ReadFragment(int fragment, uint64_t offset,
                                      uint64_t size, std::string* out) {
  // Power-of-d replica selection + hedging live in the client: the read
  // goes to the least-loaded replicas, stragglers are hedged, and the
  // remaining candidates serve as failover.
  std::vector<stoc::GatherRead::Target> targets;
  targets.reserve(meta_->fragments[fragment].size());
  for (const BlockLocation& loc : meta_->fragments[fragment]) {
    targets.push_back({loc.stoc_id, loc.file_id});
  }
  return client_->ReadReplicated(targets, offset, size, out);
}

Status StocBlockFetcher::ReconstructFromParity(int fragment,
                                               std::string* full_fragment) {
  if (!meta_->parity.valid()) {
    return Status::Unavailable("fragment lost and no parity block");
  }
  // Parity is the XOR of all fragments zero-padded to the longest one.
  // Gather the parity block and every surviving fragment in one parallel
  // batch (replica failover included) — the degraded read costs one
  // round-trip-ish, not |fragments| serial ones.
  std::vector<stoc::GatherRead> reads;
  reads.emplace_back();
  reads.back().replicas.push_back(
      {meta_->parity.stoc_id, meta_->parity.file_id});
  for (int f = 0; f < static_cast<int>(meta_->fragments.size()); f++) {
    if (f == fragment) {
      continue;
    }
    reads.emplace_back();
    reads.back().size = meta_->fragment_sizes[f];
    for (const BlockLocation& loc : meta_->fragments[f]) {
      reads.back().replicas.push_back({loc.stoc_id, loc.file_id});
    }
  }
  Status s = client_->GatherReads(&reads);
  if (!s.ok()) {
    if (!reads[0].status.ok()) {
      return reads[0].status;  // the parity block itself is gone
    }
    return Status::Unavailable("second fragment loss; parity insufficient");
  }
  std::string acc = std::move(reads[0].data);
  for (size_t i = 1; i < reads.size(); i++) {
    const std::string& other = reads[i].data;
    for (size_t j = 0; j < other.size() && j < acc.size(); j++) {
      acc[j] ^= other[j];
    }
  }
  acc.resize(meta_->fragment_sizes[fragment]);
  *full_fragment = std::move(acc);
  degraded_reads_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

namespace {

/// One readahead read in flight to the least-loaded replica. Failures
/// surface to the caller (the scan iterator), which retries through the
/// reader's synchronous path — full replica failover + parity
/// reconstruction — so a failed prefetch is never silently counted as
/// served-ahead.
class StocPendingFetch : public BlockFetcher::Pending {
 public:
  explicit StocPendingFetch(stoc::PendingRead read) : read_(std::move(read)) {}

  Status Wait(std::string* out) override { return read_.Wait(out); }

 private:
  stoc::PendingRead read_;
};

}  // namespace

std::unique_ptr<BlockFetcher::Pending> StocBlockFetcher::StartFetch(
    int fragment, uint64_t offset, uint64_t size) {
  if (fragment < 0 || fragment >= static_cast<int>(meta_->fragments.size()) ||
      meta_->fragments[fragment].empty()) {
    return nullptr;
  }
  std::vector<stoc::GatherRead::Target> targets;
  targets.reserve(meta_->fragments[fragment].size());
  for (const BlockLocation& loc : meta_->fragments[fragment]) {
    targets.push_back({loc.stoc_id, loc.file_id});
  }
  return std::make_unique<StocPendingFetch>(
      client_->AsyncReadLeastLoaded(targets, offset, size));
}

Status StocBlockFetcher::Fetch(int fragment, uint64_t offset, uint64_t size,
                               std::string* out) {
  if (fragment < 0 || fragment >= static_cast<int>(meta_->fragments.size())) {
    return Status::InvalidArgument("no such fragment");
  }
  Status s = ReadFragment(fragment, offset, size, out);
  if (s.ok()) {
    return s;
  }
  // Degraded mode: rebuild the whole fragment, then slice.
  std::string full;
  Status rs = ReconstructFromParity(fragment, &full);
  if (!rs.ok()) {
    return rs;
  }
  if (offset + size > full.size()) {
    return Status::InvalidArgument("read past reconstructed fragment");
  }
  out->assign(full.data() + offset, size);
  return Status::OK();
}

/// One open reader, stored as a cache entry under the file's 12-byte
/// (range, file) key — the prefix of its data blocks' keys.
struct TableCache::Entry {
  std::unique_ptr<StocBlockFetcher> fetcher;
  std::unique_ptr<SSTableReader> reader;
  std::shared_ptr<std::atomic<size_t>> live_readers;

  ~Entry() {
    if (live_readers != nullptr) {
      live_readers->fetch_sub(1, std::memory_order_relaxed);
    }
  }
};

void TableCache::DeleteEntry(const Slice& /*key*/, void* value) {
  delete static_cast<Entry*>(value);
}

namespace {
void DeleteCachedMetadata(const Slice& /*key*/, void* value) {
  delete static_cast<std::string*>(value);
}
}  // namespace

TableCache::TableCache(stoc::StocClient* client, Cache* cache,
                       uint32_t range_id, bool cache_data_blocks,
                       int readahead_blocks, ReadaheadCounters* readahead,
                       Cache* compressed_cache)
    : client_(client),
      live_readers_(std::make_shared<std::atomic<size_t>>(0)),
      compressed_cache_(compressed_cache),
      range_id_(range_id),
      cache_data_blocks_(cache_data_blocks),
      readahead_blocks_(readahead_blocks),
      readahead_(readahead) {
  if (cache == nullptr) {
    owned_cache_.reset(NewShardedLRUCache(kDefaultReaderCacheBytes));
    cache = owned_cache_.get();
  }
  cache_ = cache;
}

TableCache::~TableCache() {
  if (owned_cache_ == nullptr) {
    // Shared caches outlive us: drop this range's readers and blocks so a
    // departed range does not squat on the node-wide charge budget.
    std::string range_prefix;
    PutFixed32(&range_prefix, range_id_);
    cache_->EraseWithPrefix(range_prefix);
    if (compressed_cache_ != nullptr) {
      compressed_cache_->EraseWithPrefix(range_prefix);
    }
  }
}

Status TableCache::GetReader(const FileMetaRef& meta, Handle* handle) {
  std::string key = BlockCachePrefix(range_id_, meta->number);
  Cache::Handle* h = cache_->Lookup(key, /*count=*/false);
  if (h == nullptr) {
    // The compressed tier keeps the encoded metadata block under the
    // reader's own key (block keys always append an offset, so the bare
    // prefix cannot collide): a reader evicted from the hot tier reopens
    // without a StoC round trip.
    std::string encoded;
    bool cached = false;
    if (compressed_cache_ != nullptr) {
      Cache::Handle* ch = compressed_cache_->Lookup(key);
      if (ch != nullptr) {
        encoded = *static_cast<const std::string*>(
            compressed_cache_->Value(ch));
        compressed_cache_->Release(ch);
        cached = true;
      }
    }
    if (!cached) {
      // Fetch the metadata block via power-of-d replica selection (the
      // replicas are equivalent, so the least-loaded wins). Concurrent
      // misses on the same file may both open it; the loser's entry is
      // displaced and reclaimed once its pins drop.
      std::vector<stoc::GatherRead::Target> targets;
      targets.reserve(meta->meta_replicas.size());
      for (const BlockLocation& loc : meta->meta_replicas) {
        targets.push_back({loc.stoc_id, loc.file_id});
      }
      Status s = client_->ReadReplicated(targets, 0, 0, &encoded);
      if (!s.ok()) {
        return s;
      }
      if (compressed_cache_ != nullptr) {
        auto* copy = new std::string(encoded);
        compressed_cache_->Release(compressed_cache_->Insert(
            key, copy, copy->size() + sizeof(std::string),
            &DeleteCachedMetadata));
      }
    }
    SSTableMetadata table_meta;
    Status s = table_meta.DecodeFrom(encoded);
    if (!s.ok()) {
      return s;
    }
    auto* entry = new Entry;
    entry->fetcher = std::make_unique<StocBlockFetcher>(client_, meta);
    entry->reader = std::make_unique<SSTableReader>(
        std::move(table_meta), entry->fetcher.get(),
        cache_data_blocks_ ? cache_ : nullptr, range_id_, readahead_blocks_,
        readahead_, cache_data_blocks_ ? compressed_cache_ : nullptr);
    entry->live_readers = live_readers_;
    live_readers_->fetch_add(1, std::memory_order_relaxed);
    size_t charge = sizeof(Entry) + sizeof(SSTableReader) +
                    entry->reader->meta().index_contents.size() +
                    entry->reader->meta().bloom.size();
    h = cache_->Insert(key, entry, charge, &DeleteEntry);
  }
  auto* entry = static_cast<Entry*>(cache_->Value(h));
  Cache* cache = cache_;
  handle->pin = std::shared_ptr<void>(
      static_cast<void*>(entry), [cache, h](void*) { cache->Release(h); });
  handle->reader = entry->reader.get();
  return Status::OK();
}

void TableCache::Evict(uint64_t number) {
  // The reader entry and all of the file's data blocks share this prefix
  // in both tiers.
  std::string prefix = BlockCachePrefix(range_id_, number);
  cache_->EraseWithPrefix(prefix);
  if (compressed_cache_ != nullptr) {
    compressed_cache_->EraseWithPrefix(prefix);
  }
}

void TableCache::EvictBatch(const std::vector<uint64_t>& numbers) {
  if (numbers.empty()) {
    return;
  }
  std::set<uint64_t> dead(numbers.begin(), numbers.end());
  std::string range_prefix;
  PutFixed32(&range_prefix, range_id_);
  // The match runs per resident entry under the shard lock: decode the
  // file number in place rather than allocating a prefix string.
  auto match = [&](const Slice& key) {
    return key.size() >= range_prefix.size() + 8 &&
           memcmp(key.data(), range_prefix.data(), range_prefix.size()) ==
               0 &&
           dead.count(DecodeFixed64(key.data() + range_prefix.size())) > 0;
  };
  cache_->EraseMatching(match);
  if (compressed_cache_ != nullptr) {
    compressed_cache_->EraseMatching(match);
  }
}

size_t TableCache::size() const {
  return live_readers_->load(std::memory_order_relaxed);
}

SSTablePlacer::SSTablePlacer(stoc::StocClient* client,
                             const PlacementOptions& options)
    : client_(client), options_(options) {}

void SSTablePlacer::UpdateStocs(const std::vector<rdma::NodeId>& stocs) {
  std::lock_guard<std::mutex> l(mu_);
  options_.stocs = stocs;
}

PlacementOptions SSTablePlacer::options() const {
  std::lock_guard<std::mutex> l(mu_);
  return options_;
}

void SSTablePlacer::set_options(const PlacementOptions& options) {
  std::lock_guard<std::mutex> l(mu_);
  options_ = options;
}

std::vector<rdma::NodeId> SSTablePlacer::PickStocs(int count) {
  PlacementOptions opt = options();
  std::vector<rdma::NodeId> candidates = opt.stocs;
  // Membership exclusion (ISSUE 9): never place new blocks on
  // suspect/dead StoCs while any healthy candidate exists — a placement
  // there either fails outright or produces a replica the repair manager
  // immediately has to re-replicate.
  std::vector<rdma::NodeId> healthy;
  healthy.reserve(candidates.size());
  for (rdma::NodeId n : candidates) {
    if (client_->IsRoutable(n)) {
      healthy.push_back(n);
    }
  }
  if (!healthy.empty()) {
    candidates = std::move(healthy);
  }
  if (count >= static_cast<int>(candidates.size())) {
    return candidates;
  }
  std::vector<rdma::NodeId> picked;
  if (!opt.power_of_d) {
    // Random: choose `count` distinct StoCs.
    std::lock_guard<std::mutex> l(mu_);
    for (int i = 0; i < count; i++) {
      size_t j = i + rng_.Uniform(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
      picked.push_back(candidates[i]);
    }
    return picked;
  }
  // Power-of-d: peek at the disk queues of d = 2*count random StoCs and
  // take the `count` shortest (paper Section 4.4).
  int d = std::min<int>(2 * count, static_cast<int>(candidates.size()));
  {
    // mu_ guards the RNG only. Never hold it across the probe RPCs:
    // UpdateStocs (the KillStoc path) must not block behind a probe
    // waiting on a StoC that just died.
    std::lock_guard<std::mutex> l(mu_);
    for (int i = 0; i < d; i++) {
      size_t j = i + rng_.Uniform(candidates.size() - i);
      std::swap(candidates[i], candidates[j]);
    }
  }
  std::vector<std::pair<int, rdma::NodeId>> depths;
  for (int i = 0; i < d; i++) {
    stoc::StocStats stats;
    int depth = 1 << 20;  // unreachable StoCs sort last
    if (client_->GetStats(candidates[i], &stats, /*timeout_ms=*/100).ok()) {
      depth = stats.queue_depth;
    }
    depths.emplace_back(depth, candidates[i]);
  }
  // Stable sort on depth alone: ties keep the shuffled order. A plain
  // pair-sort would tie-break on NodeId and collapse power-of-d to
  // "always the lowest-numbered StoCs" whenever the cluster is idle.
  std::stable_sort(depths.begin(), depths.end(),
                   [](const std::pair<int, rdma::NodeId>& a,
                      const std::pair<int, rdma::NodeId>& b) {
                     return a.first < b.first;
                   });
  for (int i = 0; i < count; i++) {
    picked.push_back(depths[i].second);
  }
  return picked;
}

/// Everything an in-flight SSTable write owns until its flush acks drain:
/// the built data (append slices point into it), the planned tasks, and
/// the armed appends. The FileMetaData is complete except for the block
/// locations, which Wait fills as acknowledgments arrive.
struct PendingSSTable::State {
  struct WriteTask {
    int fragment;  // >= 0 data, -1 parity, -2 metadata
    int replica;
    rdma::NodeId stoc;
    uint64_t file_id;
    Slice data;
  };
  std::string data;
  std::string parity;
  std::string meta_encoded;
  std::vector<WriteTask> tasks;
  std::vector<stoc::PendingAppend> appends;
  FileMetaData meta;
};

PendingSSTable::PendingSSTable() = default;
PendingSSTable::~PendingSSTable() = default;
PendingSSTable::PendingSSTable(PendingSSTable&&) noexcept = default;
PendingSSTable& PendingSSTable::operator=(PendingSSTable&&) noexcept =
    default;

Status PendingSSTable::Wait(FileMetaData* out) {
  if (state_ == nullptr) {
    return Status::InvalidArgument("no write in flight");
  }
  std::unique_ptr<State> st = std::move(state_);
  Status first_error;
  // One deadline spans the whole ack drain: a wedged StoC costs the batch
  // a single budget, not 30 s per outstanding task.
  util::Deadline deadline = util::Deadline::After(30000);
  for (size_t i = 0; i < st->tasks.size(); i++) {
    const State::WriteTask& t = st->tasks[i];
    stoc::StocBlockHandle handle;
    Status s = st->appends[i].Wait(
        &handle, static_cast<int>(deadline.remaining_ms(30000)));
    if (!s.ok()) {
      if (first_error.ok()) {
        first_error = s;
      }
      continue;  // keep draining so no acknowledgment is orphaned
    }
    if (t.fragment >= 0) {
      st->meta.fragments[t.fragment][t.replica] =
          BlockLocation{t.stoc, t.file_id};
    } else if (t.fragment == -1) {
      st->meta.parity = BlockLocation{t.stoc, t.file_id};
    } else {
      st->meta.meta_replicas[t.replica] = BlockLocation{t.stoc, t.file_id};
    }
  }
  *out = std::move(st->meta);
  return first_error;
}

Status SSTablePlacer::Write(SSTableBuilder::Result&& built, int drange_id,
                            uint32_t generation, FileMetaData* out) {
  PendingSSTable pending;
  Status s = StartWrite(std::move(built), drange_id, generation, &pending);
  if (!s.ok()) {
    return s;
  }
  return pending.Wait(out);
}

Status SSTablePlacer::StartWrite(SSTableBuilder::Result&& built,
                                 int drange_id, uint32_t generation,
                                 PendingSSTable* pending) {
  PlacementOptions opt = options();
  if (opt.stocs.empty()) {
    return Status::InvalidArgument("no stocs configured");
  }

  auto state = std::make_unique<PendingSSTable::State>();
  state->data = std::move(built.data);  // the task slices point into this
  FileMetaData* out = &state->meta;

  // Decide ρ for this SSTable from its size (Figure 9: a small SSTable is
  // partitioned across fewer StoCs).
  int rho = opt.rho;
  if (opt.adjust_rho_by_size && opt.rho > 1) {
    uint64_t frag_target =
        std::max<uint64_t>(1, opt.max_sstable_size / opt.rho);
    uint64_t by_size = (state->data.size() + frag_target - 1) / frag_target;
    rho = static_cast<int>(
        std::clamp<uint64_t>(by_size, 1, static_cast<uint64_t>(opt.rho)));
  }
  rho = std::min<int>(rho, static_cast<int>(opt.stocs.size()));

  // Re-partition the built data into exactly the chosen fragment count.
  // (Builder already split at block boundaries for the requested count.)
  const SSTableMetadata& tmeta = built.meta;
  int nfrags = tmeta.num_fragments();

  out->number = tmeta.file_number;
  out->data_size = state->data.size();
  out->smallest = tmeta.smallest;
  out->largest = tmeta.largest;
  out->drange_id = drange_id;
  out->generation = generation;
  out->fragment_sizes = tmeta.fragment_sizes;
  out->fragments.assign(nfrags, {});

  int replicas = std::max(1, opt.num_data_replicas);
  // One StoC per (fragment, replica), all distinct when possible.
  std::vector<rdma::NodeId> targets = PickStocs(nfrags * replicas);
  if (targets.empty()) {
    return Status::Unavailable("no stocs reachable");
  }

  using WriteTask = PendingSSTable::State::WriteTask;
  std::vector<WriteTask>& tasks = state->tasks;
  uint64_t frag_offset = 0;
  uint64_t max_frag = 0;
  for (int f = 0; f < nfrags; f++) {
    max_frag = std::max(max_frag, tmeta.fragment_sizes[f]);
    for (int r = 0; r < replicas; r++) {
      WriteTask t;
      t.fragment = f;
      t.replica = r;
      t.stoc = targets[(f * replicas + r) % targets.size()];
      t.file_id = stoc::MakeFileId(
          opt.range_id, static_cast<uint32_t>(tmeta.file_number),
          stoc::FileKind::kData, static_cast<uint8_t>(f * 8 + r));
      t.data = Slice(state->data.data() + frag_offset,
                     tmeta.fragment_sizes[f]);
      tasks.push_back(t);
    }
    frag_offset += tmeta.fragment_sizes[f];
  }

  // Parity block over the fragments (Hybrid availability): XOR of all
  // fragments zero-padded to the longest. Computed up front so its append
  // can join the fragment batch below.
  std::string& parity = state->parity;
  if (opt.use_parity && nfrags >= 1) {
    parity.assign(max_frag, '\0');
    uint64_t off = 0;
    for (int f = 0; f < nfrags; f++) {
      for (uint64_t i = 0; i < tmeta.fragment_sizes[f]; i++) {
        parity[i] ^= state->data[off + i];
      }
      off += tmeta.fragment_sizes[f];
    }
    // Prefer a StoC not already hosting a fragment.
    std::set<rdma::NodeId> used;
    for (const auto& t : tasks) {
      used.insert(t.stoc);
    }
    rdma::NodeId parity_stoc = -1;
    for (rdma::NodeId n : opt.stocs) {
      if (!used.count(n) && client_->IsRoutable(n)) {
        parity_stoc = n;
        break;
      }
    }
    for (rdma::NodeId n : opt.stocs) {
      if (parity_stoc >= 0) {
        break;
      }
      if (!used.count(n)) {
        parity_stoc = n;
      }
    }
    if (parity_stoc < 0) {
      parity_stoc = opt.stocs[0];
    }
    WriteTask t;
    t.fragment = -1;  // parity
    t.replica = 0;
    t.stoc = parity_stoc;
    t.file_id = stoc::MakeFileId(
        opt.range_id, static_cast<uint32_t>(tmeta.file_number),
        stoc::FileKind::kParity, 0);
    t.data = Slice(parity);
    tasks.push_back(t);
  }

  // Metadata block replicas (index + bloom); small, so replication is
  // cheap and lets reads use any replica (Section 3.1).
  std::string& meta_encoded = state->meta_encoded;
  tmeta.EncodeTo(&meta_encoded);
  int meta_replicas =
      std::min<int>(std::max(1, opt.num_meta_replicas),
                    static_cast<int>(opt.stocs.size()));
  std::vector<rdma::NodeId> meta_targets = PickStocs(meta_replicas);
  out->meta_replicas.assign(meta_targets.size(), BlockLocation{});
  for (int r = 0; r < static_cast<int>(meta_targets.size()); r++) {
    WriteTask t;
    t.fragment = -2;  // metadata
    t.replica = r;
    t.stoc = meta_targets[r];
    t.file_id = stoc::MakeFileId(
        opt.range_id, static_cast<uint32_t>(tmeta.file_number),
        stoc::FileKind::kMeta, static_cast<uint8_t>(r));
    t.data = Slice(meta_encoded);
    tasks.push_back(t);
  }

  // One async batch for the whole SSTable (the point of scattering: the
  // write uses the disk bandwidth of ρ StoCs at once). Phase 1 queued the
  // buffer-grant RPCs above; Arm() collects each grant and issues the
  // one-sided data write (both cheap). The slow part — every StoC
  // flushing its blocks — stays in flight until PendingSSTable::Wait
  // collects the acknowledgments, so a pipelined caller can keep merging
  // (or building the next output) meanwhile.
  out->fragments.assign(nfrags, std::vector<BlockLocation>(replicas));
  state->appends.reserve(tasks.size());
  for (const WriteTask& t : tasks) {
    state->appends.push_back(
        client_->AsyncAppendBlock(t.stoc, t.file_id, t.data));
  }
  for (stoc::PendingAppend& a : state->appends) {
    a.Arm();  // failures surface again in Wait()
  }
  pending->state_ = std::move(state);
  return Status::OK();
}

}  // namespace lsm
}  // namespace nova
