#include "lsm/file_meta.h"

#include "util/coding.h"

namespace nova {
namespace lsm {
namespace {

void PutLocation(std::string* dst, const BlockLocation& loc) {
  PutVarint32(dst, static_cast<uint32_t>(loc.stoc_id + 1));
  PutVarint64(dst, loc.file_id);
}

bool GetLocation(Slice* input, BlockLocation* loc) {
  uint32_t sid;
  if (!GetVarint32(input, &sid) || !GetVarint64(input, &loc->file_id)) {
    return false;
  }
  loc->stoc_id = static_cast<int32_t>(sid) - 1;
  return true;
}

}  // namespace

void FileMetaData::EncodeTo(std::string* dst) const {
  PutVarint64(dst, number);
  PutVarint64(dst, data_size);
  PutLengthPrefixedSlice(dst, smallest.Encode());
  PutLengthPrefixedSlice(dst, largest.Encode());
  PutVarint32(dst, static_cast<uint32_t>(drange_id + 1));
  PutVarint32(dst, generation);
  PutVarint32(dst, static_cast<uint32_t>(fragments.size()));
  for (const auto& replicas : fragments) {
    PutVarint32(dst, static_cast<uint32_t>(replicas.size()));
    for (const auto& loc : replicas) {
      PutLocation(dst, loc);
    }
  }
  PutVarint32(dst, static_cast<uint32_t>(fragment_sizes.size()));
  for (uint64_t s : fragment_sizes) {
    PutVarint64(dst, s);
  }
  PutVarint32(dst, static_cast<uint32_t>(meta_replicas.size()));
  for (const auto& loc : meta_replicas) {
    PutLocation(dst, loc);
  }
  PutLocation(dst, parity);
}

Status FileMetaData::DecodeFrom(Slice* input) {
  Slice small, large;
  uint32_t did, nfrags, nsizes, nmeta;
  if (!GetVarint64(input, &number) || !GetVarint64(input, &data_size) ||
      !GetLengthPrefixedSlice(input, &small) ||
      !GetLengthPrefixedSlice(input, &large) || !GetVarint32(input, &did) ||
      !GetVarint32(input, &generation) || !GetVarint32(input, &nfrags)) {
    return Status::Corruption("bad file metadata");
  }
  smallest.DecodeFrom(small);
  largest.DecodeFrom(large);
  drange_id = static_cast<int32_t>(did) - 1;
  fragments.clear();
  for (uint32_t i = 0; i < nfrags; i++) {
    uint32_t nreplicas;
    if (!GetVarint32(input, &nreplicas)) {
      return Status::Corruption("bad fragment replicas");
    }
    std::vector<BlockLocation> replicas(nreplicas);
    for (uint32_t r = 0; r < nreplicas; r++) {
      if (!GetLocation(input, &replicas[r])) {
        return Status::Corruption("bad fragment location");
      }
    }
    fragments.push_back(std::move(replicas));
  }
  if (!GetVarint32(input, &nsizes)) {
    return Status::Corruption("bad fragment sizes");
  }
  fragment_sizes.assign(nsizes, 0);
  for (uint32_t i = 0; i < nsizes; i++) {
    if (!GetVarint64(input, &fragment_sizes[i])) {
      return Status::Corruption("bad fragment size");
    }
  }
  if (!GetVarint32(input, &nmeta)) {
    return Status::Corruption("bad meta replicas");
  }
  meta_replicas.assign(nmeta, BlockLocation());
  for (uint32_t i = 0; i < nmeta; i++) {
    if (!GetLocation(input, &meta_replicas[i])) {
      return Status::Corruption("bad meta location");
    }
  }
  if (!GetLocation(input, &parity)) {
    return Status::Corruption("bad parity location");
  }
  return Status::OK();
}

}  // namespace lsm
}  // namespace nova
