// SSTable I/O over StoCs:
//  * StocBlockFetcher — reads a fragment range, failing over across
//    replicas and, when all replicas of a fragment are down, rebuilding
//    the fragment from the other fragments + the parity block (the paper's
//    Hybrid availability, Sections 3.1/4.4.1).
//  * TableCache — LTC-side cache of SSTableMetadata (index + bloom) and
//    open readers, keyed by file number (Section 4.1.1: "LTC caches them
//    in its memory"). Readers live in a sharded, charge-bounded LRU
//    (util/cache.h) — optionally the same instance that caches data
//    blocks — so concurrent gets on different files do not serialize on
//    one mutex and open readers are evicted under memory pressure instead
//    of accumulating forever.
//  * SSTablePlacer — decides ρ from the SSTable's size, picks StoCs by
//    random or power-of-d on disk-queue length, writes the ρ fragments in
//    parallel with R replicas each, an optional parity block, and
//    replicated metadata blocks (Section 4.4, Figure 9/10).
#ifndef NOVA_LSM_TABLE_IO_H_
#define NOVA_LSM_TABLE_IO_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "lsm/file_meta.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "stoc/stoc_client.h"
#include "util/cache.h"
#include "util/random.h"

namespace nova {
namespace lsm {

class StocBlockFetcher : public BlockFetcher {
 public:
  StocBlockFetcher(stoc::StocClient* client, FileMetaRef meta)
      : client_(client), meta_(std::move(meta)) {}

  Status Fetch(int fragment, uint64_t offset, uint64_t size,
               std::string* out) override;

  /// Async fetch for scan readahead: issues the read to the first replica
  /// immediately. A failed read surfaces from Pending::Wait; callers
  /// retry through Fetch (replica failover + parity reconstruction).
  std::unique_ptr<Pending> StartFetch(int fragment, uint64_t offset,
                                      uint64_t size) override;

  /// Number of reads that had to be served by parity reconstruction.
  uint64_t degraded_reads() const { return degraded_reads_; }

 private:
  Status ReadFragment(int fragment, uint64_t offset, uint64_t size,
                      std::string* out);
  Status ReconstructFromParity(int fragment, std::string* full_fragment);

  stoc::StocClient* client_;
  FileMetaRef meta_;
  std::atomic<uint64_t> degraded_reads_{0};
};

class TableCache {
 public:
  /// Capacity of the private reader cache created when no shared cache is
  /// given (readers are small: metadata only).
  static constexpr size_t kDefaultReaderCacheBytes = 64 << 20;

  /// cache (optional): the sharded LRU backing the reader entries — at an
  /// LTC, the node-wide block cache, so readers and data blocks share one
  /// charge budget. When null, a private reader-only cache is created.
  /// cache_data_blocks: opened readers also consult `cache` for data
  /// blocks in ReadBlock (the StoC read-path block cache).
  /// readahead_blocks/readahead: scan-readahead depth and counter sink
  /// handed to every reader this cache opens (see SSTableReader).
  /// compressed_cache (optional): the compressed block tier handed to
  /// every reader (see SSTableReader); invalidation sweeps it alongside
  /// the hot tier.
  explicit TableCache(stoc::StocClient* client, Cache* cache = nullptr,
                      uint32_t range_id = 0, bool cache_data_blocks = false,
                      int readahead_blocks = 0,
                      ReadaheadCounters* readahead = nullptr,
                      Cache* compressed_cache = nullptr);
  ~TableCache();

  /// A pinned reader: keeps the underlying reader (and its fetcher) alive
  /// even if the entry is evicted concurrently (e.g., by a compaction
  /// finishing while a scan is mid-flight).
  struct Handle {
    std::shared_ptr<void> pin;
    SSTableReader* reader = nullptr;
  };

  /// Returns a cached (or freshly opened) pinned reader for the file.
  Status GetReader(const FileMetaRef& meta, Handle* handle);

  /// Drop the file's reader and every cached data block of the file
  /// (compaction apply / file deletion invalidate through this).
  void Evict(uint64_t number);
  /// Same for many files in one cache sweep (a compaction retires all of
  /// its inputs at once; per-file sweeps of a large cache add up).
  void EvictBatch(const std::vector<uint64_t>& numbers);
  /// Resident (not yet reclaimed) reader entries opened by this cache.
  size_t size() const;

  Cache* cache() { return cache_; }

 private:
  struct Entry;
  static void DeleteEntry(const Slice& key, void* value);

  stoc::StocClient* client_;
  std::shared_ptr<std::atomic<size_t>> live_readers_;
  std::unique_ptr<Cache> owned_cache_;
  Cache* cache_;
  Cache* compressed_cache_;
  uint32_t range_id_;
  bool cache_data_blocks_;
  int readahead_blocks_;
  ReadaheadCounters* readahead_;
};

struct PlacementOptions {
  /// Candidate StoCs; mutated by elasticity (add/remove StoC).
  std::vector<rdma::NodeId> stocs;
  /// Maximum scatter width ρ.
  int rho = 1;
  /// Use power-of-d (d = 2ρ) on disk queue length; otherwise random.
  bool power_of_d = true;
  /// Replication degree R for data fragments (1 = no replication).
  int num_data_replicas = 1;
  /// Metadata block replicas (Hybrid uses 3; small blocks).
  int num_meta_replicas = 1;
  /// Construct one parity block over the data fragments (Hybrid).
  bool use_parity = false;
  /// Shrink ρ for small SSTables (paper: a SSTable with few unique keys
  /// after compaction is partitioned across fewer StoCs).
  bool adjust_rho_by_size = true;
  uint64_t max_sstable_size = 512 << 10;
  uint32_t range_id = 0;
};

class SSTablePlacer;

/// An SSTable whose scatter writes are in flight. StartWrite ran phases
/// 1-2 of the Figure-10 flow for every fragment/parity/metadata block
/// (buffer-grant RPC + one-sided data write); Wait drains the flush
/// acknowledgments and fills in the block locations. The compaction
/// executor keeps a small bound of these armed so the merge loop never
/// blocks on a StoC flush. Dropping an unwaited one abandons its appends
/// safely (each PendingAppend reaps its completion token).
class PendingSSTable {
 public:
  PendingSSTable();
  ~PendingSSTable();
  PendingSSTable(PendingSSTable&&) noexcept;
  PendingSSTable& operator=(PendingSSTable&&) noexcept;

  bool valid() const { return state_ != nullptr; }
  /// Collect every flush acknowledgment and fill *out. Call at most once;
  /// the pending state is consumed.
  Status Wait(FileMetaData* out);

 private:
  friend class SSTablePlacer;
  struct State;
  std::unique_ptr<State> state_;
};

class SSTablePlacer {
 public:
  /// options are read under a lock on each write, so elasticity can mutate
  /// them (via UpdateStocs) while the system runs.
  SSTablePlacer(stoc::StocClient* client, const PlacementOptions& options);

  Status Write(SSTableBuilder::Result&& built, int drange_id,
               uint32_t generation, FileMetaData* out);

  /// Async half of Write: pick placements, issue and arm every append,
  /// and hand back the in-flight SSTable without waiting for flush acks.
  /// StartWrite + PendingSSTable::Wait == Write.
  Status StartWrite(SSTableBuilder::Result&& built, int drange_id,
                    uint32_t generation, PendingSSTable* pending);

  void UpdateStocs(const std::vector<rdma::NodeId>& stocs);
  PlacementOptions options() const;
  void set_options(const PlacementOptions& options);

  /// Pick `count` distinct StoCs for writes of `bytes_each` using the
  /// configured policy (exposed for tests and Table 5).
  std::vector<rdma::NodeId> PickStocs(int count);

 private:
  stoc::StocClient* client_;
  mutable std::mutex mu_;
  PlacementOptions options_;
  Random rng_{0x9d1ace};
};

}  // namespace lsm
}  // namespace nova

#endif  // NOVA_LSM_TABLE_IO_H_
