#include "lsm/compaction.h"

#include <algorithm>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "sim/cost_model.h"
#include "sstable/merging_iterator.h"
#include "util/coding.h"
#include "util/logging.h"

namespace nova {
namespace lsm {
namespace {

bool Overlaps(const FileMetaData& a, const FileMetaData& b) {
  return a.smallest.user_key().compare(b.largest.user_key()) <= 0 &&
         b.smallest.user_key().compare(a.largest.user_key()) <= 0;
}

/// Union-find over file indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::string CompactionJob::Serialize() const {
  std::string out;
  PutVarint32(&out, input_level);
  PutVarint32(&out, output_level);
  PutVarint32(&out, static_cast<uint32_t>(inputs.size()));
  for (const auto& f : inputs) {
    f->EncodeTo(&out);
  }
  PutVarint32(&out, static_cast<uint32_t>(inputs_next.size()));
  for (const auto& f : inputs_next) {
    f->EncodeTo(&out);
  }
  PutVarint32(&out, static_cast<uint32_t>(boundaries.size()));
  for (const auto& b : boundaries) {
    PutLengthPrefixedSlice(&out, b);
  }
  PutVarint64(&out, max_output_bytes);
  PutVarint32(&out, is_last_level ? 1 : 0);
  PutVarint64(&out, first_output_number);
  return out;
}

Status CompactionJob::Deserialize(Slice input) {
  uint32_t in_level, out_level, n_in, n_next, n_bounds, last;
  if (!GetVarint32(&input, &in_level) || !GetVarint32(&input, &out_level) ||
      !GetVarint32(&input, &n_in)) {
    return Status::Corruption("bad compaction job");
  }
  input_level = in_level;
  output_level = out_level;
  inputs.clear();
  for (uint32_t i = 0; i < n_in; i++) {
    auto meta = std::make_shared<FileMetaData>();
    Status s = meta->DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    inputs.push_back(std::move(meta));
  }
  if (!GetVarint32(&input, &n_next)) {
    return Status::Corruption("bad compaction job next");
  }
  inputs_next.clear();
  for (uint32_t i = 0; i < n_next; i++) {
    auto meta = std::make_shared<FileMetaData>();
    Status s = meta->DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    inputs_next.push_back(std::move(meta));
  }
  if (!GetVarint32(&input, &n_bounds)) {
    return Status::Corruption("bad compaction job bounds");
  }
  boundaries.clear();
  for (uint32_t i = 0; i < n_bounds; i++) {
    Slice b;
    if (!GetLengthPrefixedSlice(&input, &b)) {
      return Status::Corruption("bad boundary");
    }
    boundaries.push_back(b.ToString());
  }
  if (!GetVarint64(&input, &max_output_bytes) ||
      !GetVarint32(&input, &last) ||
      !GetVarint64(&input, &first_output_number)) {
    return Status::Corruption("bad compaction job tail");
  }
  is_last_level = last != 0;
  return Status::OK();
}

std::string CompactionResult::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(outputs.size()));
  for (const auto& f : outputs) {
    f.EncodeTo(&out);
  }
  PutVarint64(&out, records_in);
  PutVarint64(&out, records_out);
  return out;
}

Status CompactionResult::Deserialize(Slice input) {
  uint32_t n;
  if (!GetVarint32(&input, &n)) {
    return Status::Corruption("bad compaction result");
  }
  outputs.clear();
  for (uint32_t i = 0; i < n; i++) {
    FileMetaData meta;
    Status s = meta.DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    outputs.push_back(std::move(meta));
  }
  if (!GetVarint64(&input, &records_in) ||
      !GetVarint64(&input, &records_out)) {
    return Status::Corruption("bad compaction result tail");
  }
  return Status::OK();
}

double CompactionPicker::Score(const VersionSet& vs, const Version& v,
                               int level) {
  uint64_t expected = vs.ExpectedLevelBytes(level);
  if (expected == 0) {
    return 0;
  }
  return static_cast<double>(v.LevelBytes(level)) /
         static_cast<double>(expected);
}

std::vector<CompactionJob> CompactionPicker::Pick(const VersionSet& vs,
                                                  VersionRef v,
                                                  int max_jobs) {
  // Last level never compacts further.
  int best_level = -1;
  double best_score = 1.0;
  for (int level = 0; level + 1 < v->num_levels(); level++) {
    double score = Score(vs, *v, level);
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  std::vector<CompactionJob> jobs;
  if (best_level < 0) {
    return jobs;
  }
  const int next_level = best_level + 1;
  const auto& level_files = v->files(best_level);
  const auto& next_files = v->files(next_level);

  if (best_level == 0) {
    // Connected components over combined L0 ∪ L1 overlap (Dranges make L0
    // groups mutually exclusive so components ≈ one per Drange).
    size_t n0 = level_files.size();
    size_t n1 = next_files.size();
    UnionFind uf(n0 + n1);
    for (size_t i = 0; i < n0; i++) {
      for (size_t j = i + 1; j < n0; j++) {
        if (Overlaps(*level_files[i], *level_files[j])) {
          uf.Union(i, j);
        }
      }
      for (size_t j = 0; j < n1; j++) {
        if (Overlaps(*level_files[i], *next_files[j])) {
          uf.Union(i, n0 + j);
        }
      }
    }
    std::map<size_t, CompactionJob> by_root;
    for (size_t i = 0; i < n0; i++) {
      by_root[uf.Find(i)].inputs.push_back(level_files[i]);
    }
    for (size_t j = 0; j < n1; j++) {
      auto it = by_root.find(uf.Find(n0 + j));
      if (it != by_root.end()) {
        it->second.inputs_next.push_back(next_files[j]);
      }
    }
    // Largest components first: they gate the write stall.
    std::vector<CompactionJob> all;
    for (auto& [root, job] : by_root) {
      job.input_level = 0;
      job.output_level = 1;
      job.is_last_level = (next_level == v->num_levels() - 1) &&
                          v->files(next_level).empty();
      all.push_back(std::move(job));
    }
    std::sort(all.begin(), all.end(),
              [](const CompactionJob& a, const CompactionJob& b) {
                return a.total_input_bytes() > b.total_input_bytes();
              });
    for (auto& job : all) {
      if (static_cast<int>(jobs.size()) >= max_jobs) {
        break;
      }
      jobs.push_back(std::move(job));
    }
    return jobs;
  }

  // Levels >= 1: one job per input file with unclaimed next-level overlap.
  std::set<uint64_t> claimed_next;
  for (const auto& f : level_files) {
    if (static_cast<int>(jobs.size()) >= max_jobs) {
      break;
    }
    std::vector<FileMetaRef> overlap;
    bool conflict = false;
    for (const auto& nf : next_files) {
      if (Overlaps(*f, *nf)) {
        if (claimed_next.count(nf->number)) {
          conflict = true;
          break;
        }
        overlap.push_back(nf);
      }
    }
    if (conflict) {
      continue;
    }
    CompactionJob job;
    job.input_level = best_level;
    job.output_level = next_level;
    job.inputs = {f};
    job.inputs_next = overlap;
    job.is_last_level = next_level == v->num_levels() - 1;
    for (const auto& nf : overlap) {
      claimed_next.insert(nf->number);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

CompactionExecutor::CompactionExecutor(TableCache* cache,
                                       SSTablePlacer* placer,
                                       sim::CpuThrottle* throttle)
    : cache_(cache),
      placer_(placer),
      throttle_(throttle == nullptr ? sim::CpuThrottle::Unlimited()
                                    : throttle) {}

Status CompactionExecutor::Run(const CompactionJob& job,
                               CompactionResult* result) {
  InternalKeyComparator icmp;
  std::vector<Iterator*> children;
  std::vector<TableCache::Handle> pins;  // keep readers alive for the run
  auto open_all = [&](const std::vector<FileMetaRef>& files) -> Status {
    for (const auto& f : files) {
      TableCache::Handle handle;
      Status s = cache_->GetReader(f, &handle);
      if (!s.ok()) {
        return s;
      }
      pins.push_back(handle);
      // Stream, don't cache: a compaction reads every input block exactly
      // once and then deletes the file — filling the block cache would
      // evict the hot read-path working set for nothing. Readahead is
      // pinned to 0 so compaction streams don't pollute the scan-path
      // readahead_issued/hits counters (give compaction its own counters
      // before pipelining it).
      children.push_back(
          handle.reader->NewIterator(/*fill_cache=*/false,
                                     /*readahead_blocks=*/0));
    }
    return Status::OK();
  };
  Status s = open_all(job.inputs);
  if (s.ok()) {
    s = open_all(job.inputs_next);
  }
  if (!s.ok()) {
    for (Iterator* child : children) {
      delete child;
    }
    return s;
  }

  std::unique_ptr<Iterator> merged(NewMergingIterator(&icmp, children));
  merged->SeekToFirst();

  const sim::CostModel& costs = sim::DefaultCostModel();
  uint64_t next_number = job.first_output_number;
  std::unique_ptr<SSTableBuilder> builder;
  size_t boundary_idx = 0;
  std::string current_user_key;
  bool has_current = false;

  PlacementOptions popt = placer_->options();
  SSTableBuilderOptions bopt;

  auto finish_output = [&]() -> Status {
    if (builder == nullptr || builder->empty()) {
      builder.reset();
      return Status::OK();
    }
    auto built = builder->Finish(next_number++, popt.rho);
    builder.reset();
    FileMetaData out;
    Status ws = placer_->Write(std::move(built), /*drange_id=*/-1,
                               /*generation=*/0, &out);
    if (!ws.ok()) {
      return ws;
    }
    result->outputs.push_back(std::move(out));
    return Status::OK();
  };

  while (merged->Valid()) {
    Slice ikey = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      return Status::Corruption("bad key during compaction");
    }
    result->records_in++;
    throttle_->Charge(costs.compaction_per_record_us);

    bool drop = false;
    if (has_current &&
        Slice(current_user_key).compare(parsed.user_key) == 0) {
      // Older version of a key we already emitted.
      drop = true;
    } else {
      current_user_key.assign(parsed.user_key.data(),
                              parsed.user_key.size());
      has_current = true;
      if (parsed.type == kTypeDeletion && job.is_last_level) {
        drop = true;  // tombstone at the bottom: nothing below to mask
      }
    }
    if (!drop) {
      // Split at Drange boundaries so parallel L0 jobs stay disjoint and
      // at the size cap.
      bool crossed = false;
      while (boundary_idx < job.boundaries.size() &&
             parsed.user_key.compare(job.boundaries[boundary_idx]) >= 0) {
        boundary_idx++;
        crossed = true;
      }
      if (builder != nullptr &&
          (crossed || builder->EstimatedSize() >= job.max_output_bytes)) {
        Status fs = finish_output();
        if (!fs.ok()) {
          return fs;
        }
      }
      if (builder == nullptr) {
        builder = std::make_unique<SSTableBuilder>(bopt);
      }
      builder->Add(ikey, merged->value());
      result->records_out++;
    }
    merged->Next();
  }
  Status it_status = merged->status();
  if (!it_status.ok()) {
    return it_status;
  }
  return finish_output();
}

}  // namespace lsm
}  // namespace nova
