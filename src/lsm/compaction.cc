#include "lsm/compaction.h"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <numeric>
#include <set>

#include "sim/cost_model.h"
#include "sstable/block.h"
#include "sstable/merging_iterator.h"
#include "util/coding.h"
#include "util/logging.h"

namespace nova {
namespace lsm {
namespace {

bool Overlaps(const FileMetaData& a, const FileMetaData& b) {
  return a.smallest.user_key().compare(b.largest.user_key()) <= 0 &&
         b.smallest.user_key().compare(a.largest.user_key()) <= 0;
}

/// Union-find over file indices.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

std::string CompactionJob::Serialize() const {
  std::string out;
  PutVarint32(&out, input_level);
  PutVarint32(&out, output_level);
  PutVarint32(&out, static_cast<uint32_t>(inputs.size()));
  for (const auto& f : inputs) {
    f->EncodeTo(&out);
  }
  PutVarint32(&out, static_cast<uint32_t>(inputs_next.size()));
  for (const auto& f : inputs_next) {
    f->EncodeTo(&out);
  }
  PutVarint32(&out, static_cast<uint32_t>(boundaries.size()));
  for (const auto& b : boundaries) {
    PutLengthPrefixedSlice(&out, b);
  }
  PutVarint64(&out, max_output_bytes);
  PutVarint32(&out, is_last_level ? 1 : 0);
  PutVarint64(&out, first_output_number);
  PutVarint32(&out, static_cast<uint32_t>(std::max(0, readahead_blocks)));
  PutVarint32(&out, static_cast<uint32_t>(std::max(0, compression_codec)));
  return out;
}

Status CompactionJob::Deserialize(Slice input) {
  uint32_t in_level, out_level, n_in, n_next, n_bounds, last;
  if (!GetVarint32(&input, &in_level) || !GetVarint32(&input, &out_level) ||
      !GetVarint32(&input, &n_in)) {
    return Status::Corruption("bad compaction job");
  }
  input_level = in_level;
  output_level = out_level;
  inputs.clear();
  for (uint32_t i = 0; i < n_in; i++) {
    auto meta = std::make_shared<FileMetaData>();
    Status s = meta->DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    inputs.push_back(std::move(meta));
  }
  if (!GetVarint32(&input, &n_next)) {
    return Status::Corruption("bad compaction job next");
  }
  inputs_next.clear();
  for (uint32_t i = 0; i < n_next; i++) {
    auto meta = std::make_shared<FileMetaData>();
    Status s = meta->DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    inputs_next.push_back(std::move(meta));
  }
  if (!GetVarint32(&input, &n_bounds)) {
    return Status::Corruption("bad compaction job bounds");
  }
  boundaries.clear();
  for (uint32_t i = 0; i < n_bounds; i++) {
    Slice b;
    if (!GetLengthPrefixedSlice(&input, &b)) {
      return Status::Corruption("bad boundary");
    }
    boundaries.push_back(b.ToString());
  }
  uint32_t readahead, codec;
  if (!GetVarint64(&input, &max_output_bytes) ||
      !GetVarint32(&input, &last) ||
      !GetVarint64(&input, &first_output_number) ||
      !GetVarint32(&input, &readahead) || !GetVarint32(&input, &codec)) {
    return Status::Corruption("bad compaction job tail");
  }
  is_last_level = last != 0;
  readahead_blocks = static_cast<int>(readahead);
  compression_codec = static_cast<int>(codec);
  return Status::OK();
}

std::string CompactionResult::Serialize() const {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(outputs.size()));
  for (const auto& f : outputs) {
    f.EncodeTo(&out);
  }
  PutVarint64(&out, records_in);
  PutVarint64(&out, records_out);
  PutVarint64(&out, gather_waves);
  PutVarint64(&out, bytes_read);
  PutVarint64(&out, bytes_written);
  PutVarint64(&out, raw_bytes_written);
  return out;
}

Status CompactionResult::Deserialize(Slice input) {
  uint32_t n;
  if (!GetVarint32(&input, &n)) {
    return Status::Corruption("bad compaction result");
  }
  outputs.clear();
  for (uint32_t i = 0; i < n; i++) {
    FileMetaData meta;
    Status s = meta.DecodeFrom(&input);
    if (!s.ok()) {
      return s;
    }
    outputs.push_back(std::move(meta));
  }
  if (!GetVarint64(&input, &records_in) ||
      !GetVarint64(&input, &records_out) ||
      !GetVarint64(&input, &gather_waves) ||
      !GetVarint64(&input, &bytes_read) ||
      !GetVarint64(&input, &bytes_written) ||
      !GetVarint64(&input, &raw_bytes_written)) {
    return Status::Corruption("bad compaction result tail");
  }
  return Status::OK();
}

double CompactionPicker::Score(const VersionSet& vs, const Version& v,
                               int level) {
  uint64_t expected = vs.ExpectedLevelBytes(level);
  if (expected == 0) {
    return 0;
  }
  return static_cast<double>(v.LevelBytes(level)) /
         static_cast<double>(expected);
}

std::vector<CompactionJob> CompactionPicker::Pick(const VersionSet& vs,
                                                  VersionRef v,
                                                  int max_jobs) {
  // Last level never compacts further.
  int best_level = -1;
  double best_score = 1.0;
  for (int level = 0; level + 1 < v->num_levels(); level++) {
    double score = Score(vs, *v, level);
    if (score > best_score) {
      best_score = score;
      best_level = level;
    }
  }
  std::vector<CompactionJob> jobs;
  if (best_level < 0) {
    return jobs;
  }
  const int next_level = best_level + 1;
  const auto& level_files = v->files(best_level);
  const auto& next_files = v->files(next_level);

  if (best_level == 0) {
    // Connected components over combined L0 ∪ L1 overlap (Dranges make L0
    // groups mutually exclusive so components ≈ one per Drange).
    size_t n0 = level_files.size();
    size_t n1 = next_files.size();
    UnionFind uf(n0 + n1);
    for (size_t i = 0; i < n0; i++) {
      for (size_t j = i + 1; j < n0; j++) {
        if (Overlaps(*level_files[i], *level_files[j])) {
          uf.Union(i, j);
        }
      }
      for (size_t j = 0; j < n1; j++) {
        if (Overlaps(*level_files[i], *next_files[j])) {
          uf.Union(i, n0 + j);
        }
      }
    }
    std::map<size_t, CompactionJob> by_root;
    for (size_t i = 0; i < n0; i++) {
      by_root[uf.Find(i)].inputs.push_back(level_files[i]);
    }
    for (size_t j = 0; j < n1; j++) {
      auto it = by_root.find(uf.Find(n0 + j));
      if (it != by_root.end()) {
        it->second.inputs_next.push_back(next_files[j]);
      }
    }
    // Largest components first: they gate the write stall.
    std::vector<CompactionJob> all;
    for (auto& [root, job] : by_root) {
      job.input_level = 0;
      job.output_level = 1;
      job.is_last_level = (next_level == v->num_levels() - 1) &&
                          v->files(next_level).empty();
      all.push_back(std::move(job));
    }
    std::sort(all.begin(), all.end(),
              [](const CompactionJob& a, const CompactionJob& b) {
                return a.total_input_bytes() > b.total_input_bytes();
              });
    for (auto& job : all) {
      if (static_cast<int>(jobs.size()) >= max_jobs) {
        break;
      }
      jobs.push_back(std::move(job));
    }
    return jobs;
  }

  // Levels >= 1: one job per input file with unclaimed next-level overlap.
  std::set<uint64_t> claimed_next;
  for (const auto& f : level_files) {
    if (static_cast<int>(jobs.size()) >= max_jobs) {
      break;
    }
    std::vector<FileMetaRef> overlap;
    bool conflict = false;
    for (const auto& nf : next_files) {
      if (Overlaps(*f, *nf)) {
        if (claimed_next.count(nf->number)) {
          conflict = true;
          break;
        }
        overlap.push_back(nf);
      }
    }
    if (conflict) {
      continue;
    }
    CompactionJob job;
    job.input_level = best_level;
    job.output_level = next_level;
    job.inputs = {f};
    job.inputs_next = overlap;
    job.is_last_level = next_level == v->num_levels() - 1;
    for (const auto& nf : overlap) {
      claimed_next.insert(nf->number);
    }
    jobs.push_back(std::move(job));
  }
  return jobs;
}

namespace {

/// Stage-1 pipeline iterator over one compaction input file. Unlike the
/// scan iterator (which re-seeks its readahead window on every block
/// because scans move unpredictably), a compaction drains the file front
/// to back exactly once, so this iterator keeps a simple FIFO of the next
/// `depth` data blocks in flight and pops the head as the merge advances.
/// A failed prefetch falls back to the reader's synchronous path, which
/// keeps replica failover and parity reconstruction.
class CompactionFileIterator : public Iterator {
 public:
  CompactionFileIterator(const SSTableReader* reader, int depth,
                         ReadaheadCounters* counters,
                         sim::CpuThrottle* throttle,
                         std::atomic<uint64_t>* gather_waves,
                         std::atomic<uint64_t>* bytes_read)
      : reader_(reader),
        depth_(depth),
        counters_(counters),
        throttle_(throttle),
        gather_waves_(gather_waves),
        bytes_read_(bytes_read),
        index_(std::string(reader->meta().index_contents)) {
    std::unique_ptr<Iterator> it(index_.NewIterator(&icmp_));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      BlockHandle h;
      Slice v = it->value();
      if (h.DecodeFrom(&v).ok()) {
        keys_.emplace_back(it->key().data(), it->key().size());
        handles_.push_back(h);
      }
    }
  }

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    forward_ = true;
    cur_ = 0;
    inflight_.clear();
    next_issue_ = 0;
    InitBlock();
    if (block_iter_) {
      block_iter_->SeekToFirst();
    }
    SkipForward();
  }

  void Seek(const Slice& target) override {
    forward_ = true;
    // First block whose index key (>= every key in the block) admits
    // target.
    size_t lo = 0, hi = handles_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (icmp_.Compare(Slice(keys_[mid]), target) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    cur_ = lo;
    inflight_.clear();
    next_issue_ = cur_;
    InitBlock();
    if (block_iter_) {
      block_iter_->Seek(target);
    }
    SkipForward();
  }

  void SeekToLast() override {
    forward_ = false;
    inflight_.clear();
    cur_ = handles_.empty() ? 0 : handles_.size() - 1;
    next_issue_ = handles_.size();
    InitBlock();
    if (block_iter_) {
      block_iter_->SeekToLast();
    }
    SkipBackward();
  }

  void Next() override {
    forward_ = true;
    block_iter_->Next();
    SkipForward();
  }

  void Prev() override {
    forward_ = false;
    block_iter_->Prev();
    SkipBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitBlock() {
    block_iter_.reset();
    block_.reset();
    if (cur_ >= handles_.size()) {
      return;
    }
    Status s = Materialize(cur_);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_.reset(block_->NewIterator(&icmp_));
    TopUp();
  }

  /// Serve block idx from the head of the in-flight FIFO when possible;
  /// otherwise fetch synchronously (failover + parity path).
  Status Materialize(size_t idx) {
    const BlockHandle& handle = handles_[idx];
    while (!inflight_.empty() && inflight_.front().first < idx) {
      inflight_.pop_front();  // passed without materializing (empty block)
    }
    if (!inflight_.empty() && inflight_.front().first > idx) {
      inflight_.clear();  // moved backwards: the window is all stale
    }
    if (next_issue_ <= idx) {
      next_issue_ = idx + 1;
    }
    if (!inflight_.empty() && inflight_.front().first == idx) {
      auto pb = std::move(inflight_.front().second);
      inflight_.pop_front();
      if (reader_
              ->FinishPrefetch(pb.get(), &block_, /*fill_cache=*/false,
                               counters_)
              .ok()) {
        Account(handle);
        return Status::OK();
      }
    }
    Status s = reader_->ReadBlock(handle, &block_, /*fill_cache=*/false);
    if (s.ok()) {
      Account(handle);
    }
    return s;
  }

  void Account(const BlockHandle& handle) {
    bytes_read_->fetch_add(handle.size, std::memory_order_relaxed);
    throttle_->Charge(sim::DefaultCostModel().compaction_read_block_us);
  }

  /// Refill the in-flight window up to depth_. One refill that issues at
  /// least one new fetch counts as a gather wave.
  void TopUp() {
    if (depth_ <= 0 || !forward_) {
      return;
    }
    int issued = 0;
    while (static_cast<int>(inflight_.size()) < depth_ &&
           next_issue_ < handles_.size()) {
      size_t idx = next_issue_++;
      auto pb = reader_->Prefetch(handles_[idx], counters_);
      if (pb != nullptr) {  // null = already cached, nothing to overlap
        inflight_.emplace_back(idx, std::move(pb));
        issued++;
      }
    }
    if (issued > 0) {
      gather_waves_->fetch_add(1, std::memory_order_relaxed);
    }
  }

  void SkipForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (cur_ + 1 >= handles_.size()) {
        block_iter_.reset();
        return;
      }
      cur_++;
      InitBlock();
      if (block_iter_) {
        block_iter_->SeekToFirst();
      }
    }
  }

  void SkipBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (cur_ == 0) {
        block_iter_.reset();
        return;
      }
      cur_--;
      InitBlock();
      if (block_iter_) {
        block_iter_->SeekToLast();
      }
    }
  }

  const SSTableReader* reader_;
  int depth_;
  ReadaheadCounters* counters_;
  sim::CpuThrottle* throttle_;
  std::atomic<uint64_t>* gather_waves_;
  std::atomic<uint64_t>* bytes_read_;
  InternalKeyComparator icmp_;
  Block index_;  // private copy; the reader's index block is not exposed
  std::vector<std::string> keys_;
  std::vector<BlockHandle> handles_;
  size_t cur_ = 0;
  size_t next_issue_ = 0;
  bool forward_ = true;
  std::deque<std::pair<size_t, std::unique_ptr<SSTableReader::PendingBlock>>>
      inflight_;
  std::shared_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

}  // namespace

CompactionInputReader::CompactionInputReader(TableCache* cache,
                                             int readahead_blocks,
                                             sim::CpuThrottle* throttle)
    : cache_(cache),
      readahead_blocks_(readahead_blocks),
      throttle_(throttle == nullptr ? sim::CpuThrottle::Unlimited()
                                    : throttle) {}

CompactionInputReader::~CompactionInputReader() = default;

Status CompactionInputReader::OpenInput(const FileMetaRef& file,
                                        Iterator** iter) {
  TableCache::Handle handle;
  Status s = cache_->GetReader(file, &handle);
  if (!s.ok()) {
    return s;
  }
  pins_.push_back(handle);
  // Stream, don't cache: a compaction reads every input block exactly
  // once and then deletes the file — filling the block cache would evict
  // the hot read-path working set for nothing. Depth 0 degrades to the
  // serial fetch-per-block loop; either way the private counters keep
  // compaction gathers out of the scan-readahead stats.
  *iter = new CompactionFileIterator(handle.reader, readahead_blocks_,
                                     &counters_, throttle_, &gather_waves_,
                                     &bytes_read_);
  return Status::OK();
}

uint64_t CompactionInputReader::gather_waves() const {
  return gather_waves_.load(std::memory_order_relaxed);
}

uint64_t CompactionInputReader::bytes_read() const {
  return bytes_read_.load(std::memory_order_relaxed);
}

CompactionExecutor::CompactionExecutor(TableCache* cache,
                                       SSTablePlacer* placer,
                                       sim::CpuThrottle* throttle)
    : cache_(cache),
      placer_(placer),
      throttle_(throttle == nullptr ? sim::CpuThrottle::Unlimited()
                                    : throttle) {}

Status CompactionExecutor::Run(const CompactionJob& job,
                               CompactionResult* result) {
  InternalKeyComparator icmp;
  CompactionInputReader inputs(cache_, job.readahead_blocks, throttle_);
  std::vector<Iterator*> children;
  auto open_all = [&](const std::vector<FileMetaRef>& files) -> Status {
    for (const auto& f : files) {
      Iterator* it = nullptr;
      Status s = inputs.OpenInput(f, &it);
      if (!s.ok()) {
        return s;
      }
      children.push_back(it);
    }
    return Status::OK();
  };
  Status s = open_all(job.inputs);
  if (s.ok()) {
    s = open_all(job.inputs_next);
  }
  if (!s.ok()) {
    for (Iterator* child : children) {
      delete child;
    }
    return s;
  }

  std::unique_ptr<Iterator> merged(NewMergingIterator(&icmp, children));
  merged->SeekToFirst();

  const sim::CostModel& costs = sim::DefaultCostModel();
  uint64_t next_number = job.first_output_number;
  std::unique_ptr<SSTableBuilder> builder;
  size_t boundary_idx = 0;
  std::string current_user_key;
  bool has_current = false;

  PlacementOptions popt = placer_->options();
  SSTableBuilderOptions bopt;
  bopt.compressor = job.compression_codec > 0
                        ? GetCompressor(static_cast<uint8_t>(
                              job.compression_codec))
                        : nullptr;

  // Stage 3: finished outputs are armed through StartWrite and their
  // flush acks collected while the merge continues; only when
  // kMaxInflightOutputs batches are already in flight does the merge
  // wait for the oldest. Dropping `armed` on an error path abandons the
  // in-flight appends safely. Serial mode (readahead 0) writes inline.
  const bool pipelined = job.readahead_blocks > 0;
  std::deque<PendingSSTable> armed;
  auto drain_oldest = [&]() -> Status {
    FileMetaData out;
    Status ws = armed.front().Wait(&out);
    armed.pop_front();
    if (!ws.ok()) {
      return ws;
    }
    result->bytes_written += out.data_size;
    result->outputs.push_back(std::move(out));
    return Status::OK();
  };
  auto finish_output = [&]() -> Status {
    if (builder == nullptr || builder->empty()) {
      builder.reset();
      return Status::OK();
    }
    auto built = builder->Finish(next_number++, popt.rho);
    builder.reset();
    result->raw_bytes_written += built.raw_bytes;
    throttle_->Charge(costs.compaction_write_sstable_us);
    if (pipelined) {
      PendingSSTable pending;
      Status ws = placer_->StartWrite(std::move(built), /*drange_id=*/-1,
                                      /*generation=*/0, &pending);
      if (!ws.ok()) {
        return ws;
      }
      armed.push_back(std::move(pending));
      while (static_cast<int>(armed.size()) > kMaxInflightOutputs) {
        Status ds = drain_oldest();
        if (!ds.ok()) {
          return ds;
        }
      }
      return Status::OK();
    }
    FileMetaData out;
    Status ws = placer_->Write(std::move(built), /*drange_id=*/-1,
                               /*generation=*/0, &out);
    if (!ws.ok()) {
      return ws;
    }
    result->bytes_written += out.data_size;
    result->outputs.push_back(std::move(out));
    return Status::OK();
  };

  while (merged->Valid()) {
    Slice ikey = merged->key();
    ParsedInternalKey parsed;
    if (!ParseInternalKey(ikey, &parsed)) {
      return Status::Corruption("bad key during compaction");
    }
    result->records_in++;
    throttle_->Charge(costs.compaction_per_record_us);

    bool drop = false;
    if (has_current &&
        Slice(current_user_key).compare(parsed.user_key) == 0) {
      // Older version of a key we already emitted.
      drop = true;
    } else {
      current_user_key.assign(parsed.user_key.data(),
                              parsed.user_key.size());
      has_current = true;
      if (parsed.type == kTypeDeletion && job.is_last_level) {
        drop = true;  // tombstone at the bottom: nothing below to mask
      }
    }
    if (!drop) {
      // Split at Drange boundaries so parallel L0 jobs stay disjoint and
      // at the size cap.
      bool crossed = false;
      while (boundary_idx < job.boundaries.size() &&
             parsed.user_key.compare(job.boundaries[boundary_idx]) >= 0) {
        boundary_idx++;
        crossed = true;
      }
      if (builder != nullptr &&
          (crossed || builder->EstimatedSize() >= job.max_output_bytes)) {
        Status fs = finish_output();
        if (!fs.ok()) {
          return fs;
        }
      }
      if (builder == nullptr) {
        builder = std::make_unique<SSTableBuilder>(bopt);
      }
      builder->Add(ikey, merged->value());
      result->records_out++;
    }
    merged->Next();
  }
  Status s2 = merged->status();
  if (s2.ok()) {
    s2 = finish_output();
  }
  while (s2.ok() && !armed.empty()) {
    s2 = drain_oldest();
  }
  result->gather_waves = inputs.gather_waves();
  result->bytes_read = inputs.bytes_read();
  return s2;
}

}  // namespace lsm
}  // namespace nova
