// Versions and the MANIFEST (paper Section 4.5). A Version is an immutable
// snapshot of the LSM-tree's file layout: Level 0 holds possibly
// overlapping SSTables (disjoint *across* Dranges by construction), higher
// levels are sorted and disjoint. VersionEdits are appended to a per-range
// MANIFEST (replicated at StoCs with a version number so a restarting
// StoC's stale replicas can be detected and discarded).
#ifndef NOVA_LSM_VERSION_H_
#define NOVA_LSM_VERSION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "lsm/file_meta.h"
#include "mem/dbformat.h"
#include "util/status.h"

namespace nova {
namespace lsm {

struct LsmOptions {
  int num_levels = 5;
  /// Compaction triggers when L0 data exceeds this; writes stall at
  /// l0_stop_bytes (paper Challenge 1).
  uint64_t l0_compaction_trigger_bytes = 8 << 20;
  uint64_t l0_stop_bytes = 32 << 20;
  /// Expected size of Level 1; each higher level is 10x larger.
  uint64_t base_level_bytes = 32 << 20;
  uint64_t max_sstable_size = 512 << 10;
};

class Version {
 public:
  explicit Version(int num_levels) : levels_(num_levels) {}

  const std::vector<FileMetaRef>& files(int level) const {
    return levels_[level];
  }
  int num_levels() const { return static_cast<int>(levels_.size()); }

  uint64_t LevelBytes(int level) const;
  int NumFiles() const;

  /// Files in `level` whose key range intersects [begin, end] (user keys).
  std::vector<FileMetaRef> OverlappingFiles(int level, const Slice& begin,
                                            const Slice& end) const;

  /// For levels >= 1 (sorted, disjoint): the single file that may contain
  /// user_key, or nullptr.
  FileMetaRef FileForKey(int level, const Slice& user_key) const;

 private:
  friend class VersionSet;
  std::vector<std::vector<FileMetaRef>> levels_;
};

using VersionRef = std::shared_ptr<const Version>;

struct VersionEdit {
  std::vector<std::pair<int, FileMetaData>> new_files;
  std::vector<std::pair<int, uint64_t>> deleted_files;  // (level, number)
  uint64_t last_sequence = 0;
  uint64_t next_file_number = 0;
  /// Opaque Drange/Trange snapshot appended by the LTC (Section 4.5).
  std::string drange_state;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

/// Owns the current Version; applies edits and writes them to a MANIFEST
/// sink. Thread-safe; readers snapshot with current().
class VersionSet {
 public:
  /// manifest_append persists one encoded edit record (may be null for
  /// tests / baselines that do their own recovery).
  VersionSet(const LsmOptions& options,
             std::function<Status(const Slice&)> manifest_append);

  VersionRef current() const;

  /// Apply the edit, persist it to the manifest, publish a new version.
  Status LogAndApply(VersionEdit* edit);

  /// Rebuild state from manifest records (replayed in order).
  Status Recover(const std::vector<std::string>& records);

  uint64_t NewFileNumber() { return next_file_number_.fetch_add(1); }
  /// Reserve `count` consecutive file numbers; returns the first (used to
  /// hand offloaded compactions a number block, Section 4.3).
  uint64_t ReserveFileNumbers(uint64_t count) {
    return next_file_number_.fetch_add(count);
  }
  uint64_t last_sequence() const { return last_sequence_.load(); }
  void SetLastSequence(uint64_t s) { last_sequence_.store(s); }
  /// Number of edits applied — the manifest version number used for
  /// stale-replica detection.
  uint64_t manifest_version() const { return manifest_version_.load(); }

  const LsmOptions& options() const { return options_; }
  /// Expected byte size of a level (paper: 10x growth above L1).
  uint64_t ExpectedLevelBytes(int level) const;

  /// Latest drange_state persisted via edits (for recovery).
  std::string drange_state() const;

 private:
  VersionRef ApplyLocked(const VersionEdit& edit);

  LsmOptions options_;
  std::function<Status(const Slice&)> manifest_append_;
  mutable std::mutex mu_;
  VersionRef current_;
  std::atomic<uint64_t> next_file_number_{1};
  std::atomic<uint64_t> last_sequence_{0};
  std::atomic<uint64_t> manifest_version_{0};
  std::string drange_state_;
};

}  // namespace lsm
}  // namespace nova

#endif  // NOVA_LSM_VERSION_H_
