// Compaction picking and execution (paper Sections 2.1, 4.3).
//
// Picking: choose the level with the highest ratio of actual to expected
// size, then split its work into *disjoint* jobs that can run in parallel:
// L0 SSTables produced by different Dranges are mutually exclusive, so L0
// jobs are the connected components of key-range overlap among {L0 files}
// ∪ {their overlapping L1 files}. Higher levels produce one job per input
// file whose next-level overlap is unclaimed.
//
// Execution is a three-stage pipeline on the async StoC I/O layer:
//   1. fetch — a CompactionInputReader per input file keeps the next
//      `readahead_blocks` data blocks in flight (StocBlockFetcher::
//      StartFetch under the hood) while the merge drains the current one,
//      so the k-way merge is never gated on a single StoC round-trip;
//   2. merge — the k-way merge keeps only the newest version of each user
//      key (dropping tombstones at the bottom level) and splits outputs at
//      Drange boundaries and the max SSTable size;
//   3. emit — finished outputs are armed through SSTablePlacer::StartWrite
//      (AsyncAppendBlock fan-out) and their flush acknowledgments are
//      collected in the background of further merging, bounded by a small
//      in-flight window.
// With readahead_blocks == 0 all three stages degrade to the serial
// fetch-merge-write loop (the pre-pipeline behavior, kept as the bench
// baseline). Jobs serialize — including the pipeline depth — so an LTC
// can offload them to a StoC (Section 4.3 "Offloading") which runs the
// same executor against its own StoC client.
#ifndef NOVA_LSM_COMPACTION_H_
#define NOVA_LSM_COMPACTION_H_

#include <functional>
#include <string>
#include <vector>

#include "lsm/table_io.h"
#include "lsm/version.h"
#include "sim/cpu_throttle.h"

namespace nova {
namespace lsm {

struct CompactionJob {
  int input_level = 0;
  int output_level = 1;
  std::vector<FileMetaRef> inputs;       // files at input_level
  std::vector<FileMetaRef> inputs_next;  // overlapping files at output_level
  /// Upper bounds (user keys) at which outputs must split so L0 outputs
  /// respect Drange boundaries (Section 4.3).
  std::vector<std::string> boundaries;
  uint64_t max_output_bytes = 512 << 10;
  /// Tombstones can be dropped when compacting into the last level.
  bool is_last_level = false;
  /// Pre-allocated file-number block for the outputs (offloaded StoCs
  /// cannot mint numbers themselves).
  uint64_t first_output_number = 0;
  /// Input-gather pipeline depth: data blocks kept in flight per input
  /// file while the merge drains the current one. 0 = serial executor.
  /// Serialized so an offloaded job honors the scheduling LTC's
  /// compaction_readahead_blocks knob.
  int readahead_blocks = 0;
  /// Codec id (CompressionCodec) the output builders compress data blocks
  /// with; 0 = store raw. Serialized so an offloaded StoC writes outputs
  /// in the same format the scheduling LTC expects to read back.
  int compression_codec = 0;

  uint64_t total_input_bytes() const {
    uint64_t n = 0;
    for (const auto& f : inputs) n += f->data_size;
    for (const auto& f : inputs_next) n += f->data_size;
    return n;
  }

  std::string Serialize() const;
  Status Deserialize(Slice input);
};

struct CompactionResult {
  std::vector<FileMetaData> outputs;
  uint64_t records_in = 0;
  uint64_t records_out = 0;
  /// Pipeline accounting, reported back to the scheduling LTC even for
  /// offloaded jobs: prefetch batches issued by the input readers, input
  /// data-block bytes fetched, and output bytes written.
  uint64_t gather_waves = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// What bytes_written would have been with every output block stored
  /// raw; raw/written is the compaction's compression ratio.
  uint64_t raw_bytes_written = 0;

  std::string Serialize() const;
  Status Deserialize(Slice input);
};

class CompactionPicker {
 public:
  /// Jobs for the most oversized level of v (empty when nothing to do).
  /// At most max_jobs are returned, disjoint by construction.
  static std::vector<CompactionJob> Pick(const VersionSet& vs, VersionRef v,
                                         int max_jobs);

  /// Score of a level (actual/expected size); compaction triggers > 1.
  static double Score(const VersionSet& vs, const Version& v, int level);
};

/// Stage 1 of the pipeline: opens the input files of one compaction and
/// hands out streaming iterators that keep the next `readahead_blocks`
/// data blocks of each file in flight (via the fetcher's async path)
/// while the merge drains the current one. A failed prefetch falls back
/// to the synchronous fetch path, which keeps replica failover and parity
/// reconstruction — so degraded reads work identically under the
/// pipeline. Gather statistics accumulate here across all inputs.
class CompactionInputReader {
 public:
  /// throttle (optional) is charged compaction_read_block_us per data
  /// block actually fetched from a StoC.
  CompactionInputReader(TableCache* cache, int readahead_blocks,
                        sim::CpuThrottle* throttle = nullptr);
  ~CompactionInputReader();

  CompactionInputReader(const CompactionInputReader&) = delete;
  CompactionInputReader& operator=(const CompactionInputReader&) = delete;

  /// Pins the file's reader and returns a streaming iterator over its
  /// internal keys. The iterator is owned by the caller but must not
  /// outlive this reader (which holds the pin).
  Status OpenInput(const FileMetaRef& file, Iterator** iter);

  /// Prefetch batches issued across every input stream.
  uint64_t gather_waves() const;
  /// Data-block bytes consumed across every input stream.
  uint64_t bytes_read() const;

 private:
  TableCache* cache_;
  int readahead_blocks_;
  sim::CpuThrottle* throttle_;
  std::vector<TableCache::Handle> pins_;
  ReadaheadCounters counters_;
  std::atomic<uint64_t> gather_waves_{0};
  std::atomic<uint64_t> bytes_read_{0};
};

class CompactionExecutor {
 public:
  CompactionExecutor(TableCache* cache, SSTablePlacer* placer,
                     sim::CpuThrottle* throttle);

  /// Outputs armed through SSTablePlacer::StartWrite while the merge
  /// continues; the next output only waits when this many flush batches
  /// are already in flight. (Input readahead is a per-job knob —
  /// CompactionJob::readahead_blocks — because it crosses the offload
  /// wire; the output window is an executor constant.)
  static constexpr int kMaxInflightOutputs = 2;

  Status Run(const CompactionJob& job, CompactionResult* result);

 private:
  TableCache* cache_;
  SSTablePlacer* placer_;
  sim::CpuThrottle* throttle_;
};

}  // namespace lsm
}  // namespace nova

#endif  // NOVA_LSM_COMPACTION_H_
