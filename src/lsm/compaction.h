// Compaction picking and execution (paper Sections 2.1, 4.3).
//
// Picking: choose the level with the highest ratio of actual to expected
// size, then split its work into *disjoint* jobs that can run in parallel:
// L0 SSTables produced by different Dranges are mutually exclusive, so L0
// jobs are the connected components of key-range overlap among {L0 files}
// ∪ {their overlapping L1 files}. Higher levels produce one job per input
// file whose next-level overlap is unclaimed.
//
// Execution: a k-way merge over the inputs that keeps only the newest
// version of each user key (and drops tombstones at the bottom level),
// splitting outputs at Drange boundaries and the max SSTable size, and
// writing them through the SSTablePlacer. Jobs serialize, so an LTC can
// offload them to a StoC (Section 4.3 "Offloading") which runs the same
// executor against its own StoC client.
#ifndef NOVA_LSM_COMPACTION_H_
#define NOVA_LSM_COMPACTION_H_

#include <functional>
#include <string>
#include <vector>

#include "lsm/table_io.h"
#include "lsm/version.h"
#include "sim/cpu_throttle.h"

namespace nova {
namespace lsm {

struct CompactionJob {
  int input_level = 0;
  int output_level = 1;
  std::vector<FileMetaRef> inputs;       // files at input_level
  std::vector<FileMetaRef> inputs_next;  // overlapping files at output_level
  /// Upper bounds (user keys) at which outputs must split so L0 outputs
  /// respect Drange boundaries (Section 4.3).
  std::vector<std::string> boundaries;
  uint64_t max_output_bytes = 512 << 10;
  /// Tombstones can be dropped when compacting into the last level.
  bool is_last_level = false;
  /// Pre-allocated file-number block for the outputs (offloaded StoCs
  /// cannot mint numbers themselves).
  uint64_t first_output_number = 0;

  uint64_t total_input_bytes() const {
    uint64_t n = 0;
    for (const auto& f : inputs) n += f->data_size;
    for (const auto& f : inputs_next) n += f->data_size;
    return n;
  }

  std::string Serialize() const;
  Status Deserialize(Slice input);
};

struct CompactionResult {
  std::vector<FileMetaData> outputs;
  uint64_t records_in = 0;
  uint64_t records_out = 0;

  std::string Serialize() const;
  Status Deserialize(Slice input);
};

class CompactionPicker {
 public:
  /// Jobs for the most oversized level of v (empty when nothing to do).
  /// At most max_jobs are returned, disjoint by construction.
  static std::vector<CompactionJob> Pick(const VersionSet& vs, VersionRef v,
                                         int max_jobs);

  /// Score of a level (actual/expected size); compaction triggers > 1.
  static double Score(const VersionSet& vs, const Version& v, int level);
};

class CompactionExecutor {
 public:
  CompactionExecutor(TableCache* cache, SSTablePlacer* placer,
                     sim::CpuThrottle* throttle);

  Status Run(const CompactionJob& job, CompactionResult* result);

 private:
  TableCache* cache_;
  SSTablePlacer* placer_;
  sim::CpuThrottle* throttle_;
};

}  // namespace lsm
}  // namespace nova

#endif  // NOVA_LSM_COMPACTION_H_
