// FileMetaData: everything an LTC must know about one SSTable — key range,
// level bookkeeping, and the *placement* of its pieces across StoCs:
// data fragments (each possibly replicated R times), replicated metadata
// blocks, and an optional parity block (paper Sections 4.4-4.5). This is
// what the MANIFEST persists.
#ifndef NOVA_LSM_FILE_META_H_
#define NOVA_LSM_FILE_META_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace nova {
namespace lsm {

/// One stored copy of a fragment / metadata / parity block.
struct BlockLocation {
  int32_t stoc_id = -1;
  uint64_t file_id = 0;

  bool valid() const { return stoc_id >= 0; }
};

struct FileMetaData {
  uint64_t number = 0;
  uint64_t data_size = 0;  // total data bytes across fragments
  InternalKey smallest;
  InternalKey largest;
  /// Drange that produced this L0 SSTable (-1 for compaction outputs).
  int32_t drange_id = -1;
  uint32_t generation = 0;

  /// fragments[i] lists the R replica locations of data fragment i.
  std::vector<std::vector<BlockLocation>> fragments;
  std::vector<uint64_t> fragment_sizes;
  /// Replicated metadata block (index + bloom), small (Section 3.1).
  std::vector<BlockLocation> meta_replicas;
  /// Parity over the data fragments (Hybrid availability); invalid if off.
  BlockLocation parity;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

using FileMetaRef = std::shared_ptr<FileMetaData>;

}  // namespace lsm
}  // namespace nova

#endif  // NOVA_LSM_FILE_META_H_
