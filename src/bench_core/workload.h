// YCSB-style workload generation and a closed-loop load driver
// (paper Section 8.1): RW50 / SW50 / W100 / R100 over Uniform or Zipfian
// key distributions, 1 KB records, 10-record scans, measured throughput,
// per-second time series, and avg/p95/p99 latencies.
#ifndef NOVA_BENCH_CORE_WORKLOAD_H_
#define NOVA_BENCH_CORE_WORKLOAD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "coord/cluster.h"
#include "util/histogram.h"
#include "util/zipfian.h"

namespace nova {
namespace bench {

enum class WorkloadType { kRW50, kSW50, kW100, kR100 };

const char* WorkloadName(WorkloadType type);

struct WorkloadSpec {
  WorkloadType type = WorkloadType::kW100;
  uint64_t num_keys = 100000;
  size_t value_size = 1024;
  /// <= 0 means Uniform; otherwise the Zipfian constant (0.99 default).
  double zipf_theta = 0;
  int scan_length = 10;
  uint64_t seed = 42;
};

/// "user%012d"-formatted key for index i.
std::string MakeKey(uint64_t i);
/// Interior split points dividing [0, num_keys) evenly into `parts`.
std::vector<std::string> EvenSplitPoints(uint64_t num_keys, int parts);

struct RunResult {
  double ops_per_sec = 0;
  uint64_t total_ops = 0;
  uint64_t errors = 0;
  double duration_sec = 0;
  /// Completed ops per 1-second window (write-stall timelines, Fig 2/20).
  std::vector<uint64_t> per_second;
  std::shared_ptr<Histogram> read_latency;
  std::shared_ptr<Histogram> write_latency;
  std::shared_ptr<Histogram> scan_latency;
};

/// Load `num_keys` records (sequential bulk load across client threads).
void LoadData(coord::Cluster* cluster, const WorkloadSpec& spec,
              int num_threads);

/// Closed-loop run: num_threads clients issue spec's mix for
/// duration_sec. stop (optional) ends the run early when set.
RunResult RunWorkload(coord::Cluster* cluster, const WorkloadSpec& spec,
                      double duration_sec, int num_threads,
                      const std::atomic<bool>* stop = nullptr);

/// Pretty one-line summary ("  RW50 Zipf0.99  12345 ops/s ...").
std::string Summarize(const WorkloadSpec& spec, const RunResult& result);

}  // namespace bench
}  // namespace nova

#endif  // NOVA_BENCH_CORE_WORKLOAD_H_
