#include "bench_core/workload.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

namespace nova {
namespace bench {

const char* WorkloadName(WorkloadType type) {
  switch (type) {
    case WorkloadType::kRW50:
      return "RW50";
    case WorkloadType::kSW50:
      return "SW50";
    case WorkloadType::kW100:
      return "W100";
    case WorkloadType::kR100:
      return "R100";
  }
  return "?";
}

std::string MakeKey(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

std::vector<std::string> EvenSplitPoints(uint64_t num_keys, int parts) {
  std::vector<std::string> splits;
  for (int p = 1; p < parts; p++) {
    splits.push_back(MakeKey(num_keys * p / parts));
  }
  return splits;
}

void LoadData(coord::Cluster* cluster, const WorkloadSpec& spec,
              int num_threads) {
  std::atomic<uint64_t> next{0};
  std::string value(spec.value_size, 'v');
  auto worker = [&] {
    for (;;) {
      uint64_t i = next.fetch_add(1);
      if (i >= spec.num_keys) {
        return;
      }
      cluster->Put(MakeKey(i), value);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; t++) {
    threads.emplace_back(worker);
  }
  for (auto& t : threads) {
    t.join();
  }
}

RunResult RunWorkload(coord::Cluster* cluster, const WorkloadSpec& spec,
                      double duration_sec, int num_threads,
                      const std::atomic<bool>* stop) {
  using Clock = std::chrono::steady_clock;
  RunResult result;
  result.read_latency = std::make_shared<Histogram>();
  result.write_latency = std::make_shared<Histogram>();
  result.scan_latency = std::make_shared<Histogram>();
  int num_windows = static_cast<int>(duration_sec) + 2;
  std::vector<std::atomic<uint64_t>> windows(num_windows);
  for (auto& w : windows) {
    w.store(0);
  }
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> errors{0};
  std::atomic<bool> done{false};

  auto start = Clock::now();
  auto worker = [&](int tid) {
    Random rng(spec.seed + tid * 7919);
    std::unique_ptr<KeyGenerator> gen;
    if (spec.zipf_theta > 0) {
      gen = std::make_unique<ZipfianGenerator>(spec.num_keys,
                                               spec.zipf_theta);
    } else {
      gen = std::make_unique<UniformGenerator>(spec.num_keys);
    }
    std::string value(spec.value_size, 'w');
    std::string read_value;
    while (!done.load(std::memory_order_relaxed) &&
           (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
      uint64_t k = gen->Next(&rng);
      std::string key = MakeKey(k);
      bool write;
      bool scan = false;
      switch (spec.type) {
        case WorkloadType::kW100:
          write = true;
          break;
        case WorkloadType::kR100:
          write = false;
          break;
        case WorkloadType::kRW50:
          write = rng.OneIn(2);
          break;
        case WorkloadType::kSW50:
          write = rng.OneIn(2);
          scan = !write;
          break;
      }
      auto t0 = Clock::now();
      Status s;
      if (write) {
        s = cluster->Put(key, value);
      } else if (scan) {
        std::vector<std::pair<std::string, std::string>> records;
        s = cluster->Scan(key, spec.scan_length, &records);
      } else {
        s = cluster->Get(key, &read_value);
        if (s.IsNotFound()) {
          s = Status::OK();  // racing deletes / unloaded keys are fine
        }
      }
      uint64_t us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - t0)
              .count());
      if (write) {
        result.write_latency->Add(us);
      } else if (scan) {
        result.scan_latency->Add(us);
      } else {
        result.read_latency->Add(us);
      }
      if (!s.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      total.fetch_add(1, std::memory_order_relaxed);
      int window = static_cast<int>(
          std::chrono::duration<double>(Clock::now() - start).count());
      if (window >= 0 && window < num_windows) {
        windows[window].fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; t++) {
    threads.emplace_back(worker, t);
  }
  auto deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(duration_sec));
  while (Clock::now() < deadline &&
         (stop == nullptr || !stop->load(std::memory_order_relaxed))) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  done.store(true);
  for (auto& t : threads) {
    t.join();
  }
  result.duration_sec =
      std::chrono::duration<double>(Clock::now() - start).count();
  result.total_ops = total.load();
  result.errors = errors.load();
  result.ops_per_sec = result.total_ops / result.duration_sec;
  for (int w = 0; w < num_windows; w++) {
    result.per_second.push_back(windows[w].load());
  }
  while (!result.per_second.empty() && result.per_second.back() == 0) {
    result.per_second.pop_back();
  }
  return result;
}

std::string Summarize(const WorkloadSpec& spec, const RunResult& result) {
  char buf[256];
  char dist[32];
  if (spec.zipf_theta > 0) {
    snprintf(dist, sizeof(dist), "Zipf%.2f", spec.zipf_theta);
  } else {
    snprintf(dist, sizeof(dist), "Uniform");
  }
  snprintf(buf, sizeof(buf), "%-5s %-9s %9.0f ops/s (%llu ops, %llu errs)",
           WorkloadName(spec.type), dist, result.ops_per_sec,
           static_cast<unsigned long long>(result.total_ops),
           static_cast<unsigned long long>(result.errors));
  return buf;
}

}  // namespace bench
}  // namespace nova
