// Baseline configurations reproducing the paper's comparators
// (Section 8.3) on the *same* substrate, so measured differences are
// architectural rather than incidental:
//   * LevelDB        — one range per server, 1 active + 1 immutable
//                      memtable, single-threaded compaction, no Dranges,
//                      no lookup/range index, no memtable merging.
//   * LevelDB*       — 64 such ranges (instances) per server.
//   * RocksDB        — one range, 128 memtables, parallel compaction.
//   * RocksDB*       — 64 ranges, 2 memtables each.
//   * RocksDB-tuned  — one range with enumerated knob settings (the bench
//                      harness sweeps and reports the best).
// All run shared-nothing: each server's SSTables go to its co-located
// StoC only (use Cluster + MakeSharedNothing helper).
#ifndef NOVA_BASELINE_BASELINE_H_
#define NOVA_BASELINE_BASELINE_H_

#include "coord/cluster.h"

namespace nova {
namespace baseline {

enum class System {
  kLevelDB,
  kLevelDBStar,
  kRocksDB,
  kRocksDBStar,
  kRocksDBTuned,
  kNovaLsm,
  kNovaLsmR,  // ablation: random memtable choice (Section 8.2.1)
  kNovaLsmS,  // ablation: static Dranges, no memtable merging
};

const char* SystemName(System system);

/// Fill the range/placement templates of `options` for the given system,
/// scaling the per-range memtable budget so every system uses the same
/// total memory. ranges_per_server is ω (64 for the * variants).
void ConfigureSystem(System system, int total_memtables_per_server,
                     coord::ClusterOptions* options, int* ranges_per_server);

/// Restrict every range's SSTable placement to the StoC co-located with
/// its LTC (the shared-nothing layout of Figure 1; requires η == β).
void MakeSharedNothing(coord::Cluster* cluster);

}  // namespace baseline
}  // namespace nova

#endif  // NOVA_BASELINE_BASELINE_H_
