#include "baseline/baseline.h"

namespace nova {
namespace baseline {

const char* SystemName(System system) {
  switch (system) {
    case System::kLevelDB:
      return "LevelDB";
    case System::kLevelDBStar:
      return "LevelDB*";
    case System::kRocksDB:
      return "RocksDB";
    case System::kRocksDBStar:
      return "RocksDB*";
    case System::kRocksDBTuned:
      return "RocksDB-tuned";
    case System::kNovaLsm:
      return "Nova-LSM";
    case System::kNovaLsmR:
      return "Nova-LSM-R";
    case System::kNovaLsmS:
      return "Nova-LSM-S";
  }
  return "?";
}

void ConfigureSystem(System system, int total_memtables_per_server,
                     coord::ClusterOptions* options,
                     int* ranges_per_server) {
  ltc::RangeEngineOptions& r = options->range;
  switch (system) {
    case System::kLevelDB:
      *ranges_per_server = 1;
      r.enable_dranges = false;
      r.enable_lookup_index = false;
      r.enable_range_index = false;
      r.enable_memtable_merge = false;
      r.num_active_memtables = 1;
      r.max_memtables = 2;
      r.max_parallel_compactions = 1;
      break;
    case System::kLevelDBStar:
      *ranges_per_server = 64;
      r.enable_dranges = false;
      r.enable_lookup_index = false;
      r.enable_range_index = false;
      r.enable_memtable_merge = false;
      r.num_active_memtables = 1;
      r.max_memtables = 2;
      r.max_parallel_compactions = 1;
      break;
    case System::kRocksDB:
      *ranges_per_server = 1;
      r.enable_dranges = false;
      r.enable_lookup_index = false;
      r.enable_range_index = false;
      r.enable_memtable_merge = false;
      r.num_active_memtables = 1;
      r.max_memtables = total_memtables_per_server;
      r.max_parallel_compactions = 4;
      break;
    case System::kRocksDBStar:
      *ranges_per_server = 64;
      r.enable_dranges = false;
      r.enable_lookup_index = false;
      r.enable_range_index = false;
      r.enable_memtable_merge = false;
      r.num_active_memtables = 1;
      r.max_memtables = 2;
      r.max_parallel_compactions = 2;
      break;
    case System::kRocksDBTuned:
      // The fig18 harness sweeps knobs; this is the center point.
      *ranges_per_server = 1;
      r.enable_dranges = false;
      r.enable_lookup_index = false;
      r.enable_range_index = false;
      r.enable_memtable_merge = false;
      r.num_active_memtables = 1;
      r.max_memtables = total_memtables_per_server;
      r.max_parallel_compactions = 4;
      r.lsm.l0_stop_bytes *= 2;  // more L0 headroom before stalling
      break;
    case System::kNovaLsm:
      *ranges_per_server = 1;
      r.enable_dranges = true;
      r.enable_lookup_index = true;
      r.enable_range_index = true;
      r.enable_memtable_merge = true;
      r.max_memtables = total_memtables_per_server;
      r.drange.theta =
          std::max(2, total_memtables_per_server / 4);  // α = θ
      r.max_parallel_compactions = std::max(2, r.drange.theta / 2);
      break;
    case System::kNovaLsmR:
      *ranges_per_server = 1;
      r.enable_dranges = false;  // random active memtable choice
      r.enable_lookup_index = true;
      r.enable_range_index = true;
      r.enable_memtable_merge = false;
      r.num_active_memtables = std::max(2, total_memtables_per_server / 4);
      r.max_memtables = total_memtables_per_server;
      r.max_parallel_compactions =
          std::max(2, r.num_active_memtables / 2);
      break;
    case System::kNovaLsmS:
      *ranges_per_server = 1;
      r.enable_dranges = true;
      r.drange.static_after_first_major = true;
      r.enable_lookup_index = true;
      r.enable_range_index = true;
      r.enable_memtable_merge = false;  // no pruning/merging (Section 8.2.1)
      r.max_memtables = total_memtables_per_server;
      r.drange.theta = std::max(2, total_memtables_per_server / 4);
      r.max_parallel_compactions = std::max(2, r.drange.theta / 2);
      break;
  }
}

void MakeSharedNothing(coord::Cluster* cluster) {
  coord::Configuration cfg = cluster->coordinator()->config();
  for (const auto& assignment : cfg.ranges) {
    ltc::RangeEngine* engine =
        cluster->ltc(assignment.ltc_index)->GetRange(assignment.range_id);
    if (engine == nullptr) {
      continue;
    }
    // SSTables of this range land only on the co-located StoC.
    int stoc_index = assignment.ltc_index % cluster->num_stocs();
    engine->placer()->UpdateStocs(
        {coord::Cluster::StocNode(stoc_index)});
  }
}

}  // namespace baseline
}  // namespace nova
