// BlockStore is the durable byte storage behind a StoC's persistent files:
// a map from file id to an append-only buffer. It deliberately lives
// *outside* the StoC server object (owned by the cluster harness), so that
// "crashing" a StoC and restarting it loses all component state but keeps
// the stored bytes — emulating a real disk across process failures. It has
// no timing; timing comes from the SimulatedDevice in front of it.
#ifndef NOVA_STORAGE_BLOCK_STORE_H_
#define NOVA_STORAGE_BLOCK_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/slice.h"
#include "util/status.h"

namespace nova {

class BlockStore {
 public:
  BlockStore() = default;

  BlockStore(const BlockStore&) = delete;
  BlockStore& operator=(const BlockStore&) = delete;

  /// Append data to file_id (creating it if needed); returns the offset the
  /// data landed at.
  uint64_t Append(uint64_t file_id, const Slice& data);

  /// Read [offset, offset+n) of file_id into *out.
  Status Read(uint64_t file_id, uint64_t offset, uint64_t n,
              std::string* out) const;

  Status Delete(uint64_t file_id);
  bool Exists(uint64_t file_id) const;
  uint64_t FileSize(uint64_t file_id) const;

  /// Ids of all stored files (used by a restarting StoC to re-report its
  /// replicas, paper Section 9).
  std::vector<uint64_t> ListFiles() const;

  uint64_t TotalBytes() const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::string> files_;
};

}  // namespace nova

#endif  // NOVA_STORAGE_BLOCK_STORE_H_
