#include "storage/simulated_device.h"

#include <chrono>

namespace nova {

SimulatedDevice::SimulatedDevice(std::string name, const DeviceConfig& config)
    : name_(std::move(name)), config_(config) {
  window_start_ = std::chrono::steady_clock::now();
  worker_ = std::thread([this] { DeviceLoop(); });
}

SimulatedDevice::~SimulatedDevice() {
  {
    std::lock_guard<std::mutex> l(mu_);
    stop_.store(true);
  }
  cv_.notify_all();
  if (worker_.joinable()) {
    worker_.join();
  }
}

void SimulatedDevice::Submit(IoKind kind, uint64_t bytes, uint64_t stream_id,
                             std::function<void()> done) {
  {
    std::lock_guard<std::mutex> l(mu_);
    queue_.push_back(IoRequest{kind, bytes, stream_id, std::move(done)});
    queue_depth_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
}

void SimulatedDevice::BlockingIo(IoKind kind, uint64_t bytes,
                                 uint64_t stream_id) {
  std::mutex m;
  std::condition_variable done_cv;
  bool done = false;
  Submit(kind, bytes, stream_id, [&] {
    std::lock_guard<std::mutex> l(m);
    done = true;
    done_cv.notify_one();
  });
  std::unique_lock<std::mutex> l(m);
  done_cv.wait(l, [&] { return done; });
}

double SimulatedDevice::WindowUtilization() {
  auto now = std::chrono::steady_clock::now();
  double elapsed_us =
      std::chrono::duration<double, std::micro>(now - window_start_).count();
  if (elapsed_us <= 0) {
    return 0;
  }
  return static_cast<double>(window_busy_us_.load()) / elapsed_us;
}

void SimulatedDevice::ResetWindow() {
  window_busy_us_.store(0);
  window_start_ = std::chrono::steady_clock::now();
}

void SimulatedDevice::DeviceLoop() {
  for (;;) {
    IoRequest req;
    {
      std::unique_lock<std::mutex> l(mu_);
      cv_.wait(l, [this] { return stop_.load() || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopped and drained
      }
      req = std::move(queue_.front());
      queue_.pop_front();
    }

    double service_us = 0;
    if (!failed_.load(std::memory_order_acquire)) {
      bool sequential = config_.sequential_optimization &&
                        req.stream_id == last_stream_id_ &&
                        req.kind == IoKind::kWrite;
      last_stream_id_ = req.stream_id;
      service_us = (sequential ? 0.0 : config_.seek_latency_us) +
                   static_cast<double>(req.bytes) * 1e6 /
                       config_.bandwidth_bytes_per_sec;
      service_us *= config_.time_scale;
      // Injected straggler delay bypasses time_scale: tests run at
      // time_scale 0 but still need one slow replica.
      service_us +=
          static_cast<double>(injected_latency_us_.load(std::memory_order_relaxed));
      if (service_us > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::micro>(service_us));
      }
    }

    busy_us_.fetch_add(static_cast<uint64_t>(service_us),
                       std::memory_order_relaxed);
    window_busy_us_.fetch_add(static_cast<uint64_t>(service_us),
                              std::memory_order_relaxed);
    if (req.kind == IoKind::kRead) {
      bytes_read_.fetch_add(req.bytes, std::memory_order_relaxed);
      num_reads_.fetch_add(1, std::memory_order_relaxed);
    } else {
      bytes_written_.fetch_add(req.bytes, std::memory_order_relaxed);
      num_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    queue_depth_.fetch_sub(1, std::memory_order_relaxed);
    if (req.done) {
      req.done();
    }
  }
}

}  // namespace nova
