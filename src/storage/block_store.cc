#include "storage/block_store.h"

#include "util/failpoint.h"

namespace nova {

uint64_t BlockStore::Append(uint64_t file_id, const Slice& data) {
  // Failpoint "blockstore.append": delay-only site (a slow flushing disk)
  // — Append has no error channel, so an armed error action is ignored.
  util::FailPoint::Check("blockstore.append");
  std::lock_guard<std::mutex> l(mu_);
  std::string& f = files_[file_id];
  uint64_t offset = f.size();
  f.append(data.data(), data.size());
  return offset;
}

Status BlockStore::Read(uint64_t file_id, uint64_t offset, uint64_t n,
                        std::string* out) const {
  // Failpoint "blockstore.read": injected media errors or read delays.
  Status fp = util::FailPoint::Check("blockstore.read");
  if (!fp.ok()) {
    return fp;
  }
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(file_id);
  if (it == files_.end()) {
    return Status::NotFound("no such stoc file");
  }
  const std::string& f = it->second;
  if (offset + n > f.size()) {
    return Status::InvalidArgument("read past end of stoc file");
  }
  out->assign(f.data() + offset, n);
  return Status::OK();
}

Status BlockStore::Delete(uint64_t file_id) {
  std::lock_guard<std::mutex> l(mu_);
  if (files_.erase(file_id) == 0) {
    return Status::NotFound("no such stoc file");
  }
  return Status::OK();
}

bool BlockStore::Exists(uint64_t file_id) const {
  std::lock_guard<std::mutex> l(mu_);
  return files_.count(file_id) > 0;
}

uint64_t BlockStore::FileSize(uint64_t file_id) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = files_.find(file_id);
  return it == files_.end() ? 0 : it->second.size();
}

std::vector<uint64_t> BlockStore::ListFiles() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<uint64_t> ids;
  ids.reserve(files_.size());
  for (const auto& [id, data] : files_) {
    ids.push_back(id);
  }
  return ids;
}

uint64_t BlockStore::TotalBytes() const {
  std::lock_guard<std::mutex> l(mu_);
  uint64_t total = 0;
  for (const auto& [id, data] : files_) {
    total += data.size();
  }
  return total;
}

}  // namespace nova
