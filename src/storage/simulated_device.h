// SimulatedDevice models one StoC's disk: a FIFO request queue served by a
// single device thread where each request costs seek + bytes/bandwidth of
// real (scaled) wall-clock time.
//
// The paper's experiments run on one 1 TB hard disk per node; every
// phenomenon it reports — write stalls when flushes outrun the disk,
// queuing delays when SSTable writes collide on one StoC (Challenge 3),
// power-of-d peeking at disk queue lengths, seek amplification when a
// SSTable is scattered too widely (Section 8.2.5) — emerges from exactly
// this queue+seek+bandwidth mechanism. Defaults are scaled 1/64 together
// with all data sizes (DESIGN.md Section 2): 2 MB/s ≙ 128 MB/s effective
// HDD bandwidth at full scale.
#ifndef NOVA_STORAGE_SIMULATED_DEVICE_H_
#define NOVA_STORAGE_SIMULATED_DEVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace nova {

struct DeviceConfig {
  double bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  double seek_latency_us = 1500.0;
  /// Multiplier on all service times (0 disables timing; unit tests).
  double time_scale = 1.0;
  /// Consecutive requests to the same file id skip the seek (sequential
  /// append optimization; favors small scatter width ρ as in Table 5).
  bool sequential_optimization = true;
};

class SimulatedDevice {
 public:
  enum class IoKind { kRead, kWrite };

  explicit SimulatedDevice(std::string name, const DeviceConfig& config);
  ~SimulatedDevice();

  SimulatedDevice(const SimulatedDevice&) = delete;
  SimulatedDevice& operator=(const SimulatedDevice&) = delete;

  /// Enqueue an I/O; done runs on the device thread after the simulated
  /// service time elapses. stream_id identifies the file for the
  /// sequentiality model.
  void Submit(IoKind kind, uint64_t bytes, uint64_t stream_id,
              std::function<void()> done);

  /// Blocking convenience wrappers.
  void BlockingIo(IoKind kind, uint64_t bytes, uint64_t stream_id);

  /// Number of requests queued or in service — what power-of-d peeks at.
  int QueueDepth() const { return queue_depth_.load(std::memory_order_relaxed); }

  /// Fault injection: a failed device rejects service by completing
  /// requests immediately with failed() observable by the caller layer.
  void Fail() { failed_.store(true, std::memory_order_release); }
  void Repair() { failed_.store(false, std::memory_order_release); }
  bool failed() const { return failed_.load(std::memory_order_acquire); }

  /// Straggler injection: extra wall-clock delay added to every request's
  /// service time, applied even at time_scale 0. Makes this StoC a
  /// deterministic straggler for replica-selection / hedging tests and
  /// the latency-skew benchmark scenarios.
  void InjectLatency(uint64_t us) {
    injected_latency_us_.store(us, std::memory_order_relaxed);
  }
  uint64_t injected_latency_us() const {
    return injected_latency_us_.load(std::memory_order_relaxed);
  }

  // Cumulative statistics.
  uint64_t bytes_read() const { return bytes_read_.load(); }
  uint64_t bytes_written() const { return bytes_written_.load(); }
  uint64_t num_reads() const { return num_reads_.load(); }
  uint64_t num_writes() const { return num_writes_.load(); }
  /// Total simulated time the device spent serving requests, in us.
  uint64_t busy_us() const { return busy_us_.load(); }
  /// Device utilization over the window since ResetWindow().
  double WindowUtilization();
  void ResetWindow();

  const DeviceConfig& config() const { return config_; }
  const std::string& name() const { return name_; }

 private:
  struct IoRequest {
    IoKind kind;
    uint64_t bytes;
    uint64_t stream_id;
    std::function<void()> done;
  };

  void DeviceLoop();

  std::string name_;
  DeviceConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<IoRequest> queue_;
  std::atomic<int> queue_depth_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> injected_latency_us_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> num_reads_{0};
  std::atomic<uint64_t> num_writes_{0};
  std::atomic<uint64_t> busy_us_{0};
  uint64_t last_stream_id_ = ~0ull;
  std::atomic<uint64_t> window_busy_us_{0};
  std::chrono::steady_clock::time_point window_start_;
  std::thread worker_;
};

}  // namespace nova

#endif  // NOVA_STORAGE_SIMULATED_DEVICE_H_
