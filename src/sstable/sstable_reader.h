// Reads one SSTable through a BlockFetcher. The metadata (index + bloom)
// is memory-resident — the LTC caches it (paper Section 4.1.1) — so a get
// costs at most one fragment fetch, and none when the bloom filter rules
// the key out.
#ifndef NOVA_SSTABLE_SSTABLE_READER_H_
#define NOVA_SSTABLE_SSTABLE_READER_H_

#include <memory>
#include <string>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/iterator.h"

namespace nova {

class SSTableReader {
 public:
  /// fetcher must outlive the reader and any iterator it creates.
  SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher);

  /// True if the bloom filter admits the key (or there is no filter).
  bool KeyMayMatch(const Slice& user_key) const;

  /// Same contract as MemTable::Get: returns true if this table has an
  /// entry (value or tombstone) for the key at/before the snapshot. *seq
  /// (optional) receives the matched entry's sequence number.
  bool Get(const LookupKey& lookup_key, std::string* value, Status* s,
           SequenceNumber* seq = nullptr);

  /// Iterator over all internal keys in the table.
  Iterator* NewIterator() const;

  const SSTableMetadata& meta() const { return meta_; }

 private:
  Status ReadBlock(const BlockHandle& handle,
                   std::unique_ptr<Block>* block) const;

  SSTableMetadata meta_;
  BlockFetcher* fetcher_;
  InternalKeyComparator icmp_;
  std::unique_ptr<Block> index_block_;
};

}  // namespace nova

#endif  // NOVA_SSTABLE_SSTABLE_READER_H_
