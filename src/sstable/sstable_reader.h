// Reads one SSTable through a BlockFetcher. The metadata (index + bloom)
// is memory-resident — the LTC caches it (paper Section 4.1.1) — and data
// blocks are optionally served from a shared charge-based LRU block cache
// (keyed by range/file number/block offset), so a warm get costs no
// fragment fetch at all; a cold one costs at most one, and none when the
// bloom filter rules the key out.
#ifndef NOVA_SSTABLE_SSTABLE_READER_H_
#define NOVA_SSTABLE_SSTABLE_READER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/cache.h"
#include "util/iterator.h"

namespace nova {

/// Cache key for one data block: range id, file number, global offset.
/// TableCache's reader entries use the 12-byte (range, file) prefix of the
/// same layout, so EraseWithPrefix(BlockCachePrefix(...)) invalidates a
/// dead file's reader and every cached block in one sweep.
std::string BlockCachePrefix(uint32_t range_id, uint64_t file_number);
std::string BlockCacheKey(uint32_t range_id, uint64_t file_number,
                          uint64_t offset);

/// Scan-readahead accounting, shared by every reader of one range so the
/// RangeEngine can roll the numbers into RangeStats.
struct ReadaheadCounters {
  std::atomic<uint64_t> issued{0};
  std::atomic<uint64_t> hits{0};
};

class SSTableReader {
 public:
  /// fetcher must outlive the reader and any iterator it creates.
  /// block_cache (optional, shared across readers and ranges; keyed by
  /// range_id so per-range file numbers cannot collide) serves repeated
  /// data-block reads from LTC memory instead of StoC round-trips; it must
  /// outlive the reader and any iterator. With a null cache every
  /// ReadBlock fetches from the StoC, as before.
  /// readahead_blocks: how many data blocks a scan iterator prefetches
  /// past its current position (0 = off); readahead (optional) receives
  /// issued/hit counts and must outlive the reader.
  /// compressed_cache (optional): the compressed block tier. Misses in
  /// block_cache that hit here decompress in LTC memory instead of
  /// costing a StoC round-trip; network fills land in both tiers, so a
  /// block evicted from the small hot tier "falls back" to its compressed
  /// copy rather than being lost. Only consulted for block_format >= 1
  /// files (the trailer makes the stored bytes self-describing).
  SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher,
                Cache* block_cache = nullptr, uint32_t range_id = 0,
                int readahead_blocks = 0,
                ReadaheadCounters* readahead = nullptr,
                Cache* compressed_cache = nullptr);

  /// True if the bloom filter admits the key (or there is no filter).
  bool KeyMayMatch(const Slice& user_key) const;

  /// Same contract as MemTable::Get: returns true if this table has an
  /// entry (value or tombstone) for the key at/before the snapshot. *seq
  /// (optional) receives the matched entry's sequence number.
  bool Get(const LookupKey& lookup_key, std::string* value, Status* s,
           SequenceNumber* seq = nullptr);

  /// Iterator over all internal keys in the table. fill_cache=false
  /// serves hits from the block cache but leaves misses uncached —
  /// compactions stream every block once and must not flush the working
  /// set (nor cache blocks of files they are about to delete).
  /// readahead_blocks: -1 = the reader's configured value; 0 disables
  /// prefetching for this iterator; >0 overrides the depth.
  Iterator* NewIterator(bool fill_cache = true,
                        int readahead_blocks = -1) const;

  /// Fetch (or serve from a cache tier) the data block at handle. The
  /// returned shared_ptr pins the cached entry, so a block stays usable
  /// while iterators hold it even if the cache evicts it concurrently.
  /// pri: cache admission class — point gets default to kHot; scan
  /// iterators pass kCold so a sweep cannot evict the get working set.
  Status ReadBlock(const BlockHandle& handle, std::shared_ptr<Block>* block,
                   bool fill_cache = true,
                   Cache::Priority pri = Cache::Priority::kHot) const;

  /// --- Scan readahead (used by the iterator; exposed for tests) ---

  /// One data block being prefetched ahead of a scan.
  struct PendingBlock {
    uint64_t offset = 0;
    uint64_t size = 0;
    std::unique_ptr<BlockFetcher::Pending> pending;
  };

  /// Begin an async fetch of the block at handle. Returns null when the
  /// block is already cached or the fetcher has no async path.
  std::unique_ptr<PendingBlock> Prefetch(const BlockHandle& handle) const {
    return Prefetch(handle, readahead_);
  }
  /// Same, but charging the issue to an explicit counter sink (null = no
  /// accounting). Compaction input streams pass their own counters so
  /// background gathers never pollute the scan-readahead stats.
  std::unique_ptr<PendingBlock> Prefetch(const BlockHandle& handle,
                                         ReadaheadCounters* counters) const;
  /// Complete a prefetch and hand the block over, inserting it into the
  /// block cache like ReadBlock when fill_cache. Counts a readahead hit.
  Status FinishPrefetch(PendingBlock* pb, std::shared_ptr<Block>* block,
                        bool fill_cache = true) const {
    return FinishPrefetch(pb, block, fill_cache, readahead_);
  }
  Status FinishPrefetch(PendingBlock* pb, std::shared_ptr<Block>* block,
                        bool fill_cache, ReadaheadCounters* counters) const;

  int readahead_blocks() const { return readahead_blocks_; }
  const SSTableMetadata& meta() const { return meta_; }

 private:
  /// The index block is materialized lazily so a bloom-rejected Get never
  /// touches (or allocates) it — bloom-before-index on the read path.
  Block* index_block() const;
  /// Shared tail of ReadBlock/FinishPrefetch for bytes that arrived over
  /// the wire: verify/decode the stored block (crc before decompression)
  /// and install the result into the cache tiers (uncompressed into the
  /// hot tier under pri, verbatim stored bytes into the compressed tier)
  /// or hand back a private block.
  Status InstallBlock(std::string stored, uint64_t offset, uint64_t size,
                      bool fill_cache, Cache::Priority pri,
                      std::shared_ptr<Block>* block) const;
  /// Insert an already-decoded block into the hot tier (or wrap it
  /// privately when uncached) and hand back the pin.
  std::shared_ptr<Block> InstallHot(std::string raw, uint64_t offset,
                                    bool fill_cache,
                                    Cache::Priority pri) const;

  SSTableMetadata meta_;
  BlockFetcher* fetcher_;
  Cache* block_cache_;
  Cache* compressed_cache_;
  uint32_t range_id_;
  int readahead_blocks_;
  ReadaheadCounters* readahead_;
  InternalKeyComparator icmp_;
  mutable std::once_flag index_once_;
  mutable std::unique_ptr<Block> index_block_;
};

}  // namespace nova

#endif  // NOVA_SSTABLE_SSTABLE_READER_H_
