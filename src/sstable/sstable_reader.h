// Reads one SSTable through a BlockFetcher. The metadata (index + bloom)
// is memory-resident — the LTC caches it (paper Section 4.1.1) — and data
// blocks are optionally served from a shared charge-based LRU block cache
// (keyed by range/file number/block offset), so a warm get costs no
// fragment fetch at all; a cold one costs at most one, and none when the
// bloom filter rules the key out.
#ifndef NOVA_SSTABLE_SSTABLE_READER_H_
#define NOVA_SSTABLE_SSTABLE_READER_H_

#include <memory>
#include <string>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/format.h"
#include "util/cache.h"
#include "util/iterator.h"

namespace nova {

/// Cache key for one data block: range id, file number, global offset.
/// TableCache's reader entries use the 12-byte (range, file) prefix of the
/// same layout, so EraseWithPrefix(BlockCachePrefix(...)) invalidates a
/// dead file's reader and every cached block in one sweep.
std::string BlockCachePrefix(uint32_t range_id, uint64_t file_number);
std::string BlockCacheKey(uint32_t range_id, uint64_t file_number,
                          uint64_t offset);

class SSTableReader {
 public:
  /// fetcher must outlive the reader and any iterator it creates.
  /// block_cache (optional, shared across readers and ranges; keyed by
  /// range_id so per-range file numbers cannot collide) serves repeated
  /// data-block reads from LTC memory instead of StoC round-trips; it must
  /// outlive the reader and any iterator. With a null cache every
  /// ReadBlock fetches from the StoC, as before.
  SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher,
                Cache* block_cache = nullptr, uint32_t range_id = 0);

  /// True if the bloom filter admits the key (or there is no filter).
  bool KeyMayMatch(const Slice& user_key) const;

  /// Same contract as MemTable::Get: returns true if this table has an
  /// entry (value or tombstone) for the key at/before the snapshot. *seq
  /// (optional) receives the matched entry's sequence number.
  bool Get(const LookupKey& lookup_key, std::string* value, Status* s,
           SequenceNumber* seq = nullptr);

  /// Iterator over all internal keys in the table. fill_cache=false
  /// serves hits from the block cache but leaves misses uncached —
  /// compactions stream every block once and must not flush the working
  /// set (nor cache blocks of files they are about to delete).
  Iterator* NewIterator(bool fill_cache = true) const;

  /// Fetch (or serve from the block cache) the data block at handle. The
  /// returned shared_ptr pins the cached entry, so a block stays usable
  /// while iterators hold it even if the cache evicts it concurrently.
  Status ReadBlock(const BlockHandle& handle, std::shared_ptr<Block>* block,
                   bool fill_cache = true) const;

  const SSTableMetadata& meta() const { return meta_; }

 private:
  SSTableMetadata meta_;
  BlockFetcher* fetcher_;
  Cache* block_cache_;
  uint32_t range_id_;
  InternalKeyComparator icmp_;
  std::unique_ptr<Block> index_block_;
};

}  // namespace nova

#endif  // NOVA_SSTABLE_SSTABLE_READER_H_
