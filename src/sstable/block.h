// Data/index block format (LevelDB-compatible design): entries with shared
// key-prefix compression and restart points every kBlockRestartInterval
// keys, followed by the restart offset array and its count.
#ifndef NOVA_SSTABLE_BLOCK_H_
#define NOVA_SSTABLE_BLOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "util/iterator.h"
#include "util/slice.h"

namespace nova {

static const int kBlockRestartInterval = 16;

class BlockBuilder {
 public:
  BlockBuilder();

  /// Keys must be added in (internal-key) sorted order.
  void Add(const Slice& key, const Slice& value);
  /// Finish and return the serialized block contents (valid until Reset).
  Slice Finish();
  void Reset();

  size_t CurrentSizeEstimate() const;
  bool empty() const { return buffer_.empty(); }

 private:
  std::string buffer_;
  std::vector<uint32_t> restarts_;
  int counter_;
  bool finished_;
  std::string last_key_;
};

/// An immutable, owned block plus iterator support.
class Block {
 public:
  /// Takes ownership of contents.
  explicit Block(std::string contents);

  size_t size() const { return contents_.size(); }

  /// Iterates internal keys using cmp.
  Iterator* NewIterator(const InternalKeyComparator* cmp) const;

 private:
  class Iter;

  std::string contents_;
  uint32_t restart_offset_;
  uint32_t num_restarts_;
};

}  // namespace nova

#endif  // NOVA_SSTABLE_BLOCK_H_
