#include "sstable/sstable_builder.h"

#include <cassert>

#include "sstable/bloom.h"

namespace nova {

SSTableBuilder::SSTableBuilder(const SSTableBuilderOptions& options)
    : options_(options) {}

void SSTableBuilder::Add(const Slice& internal_key, const Slice& value) {
  assert(num_entries_ == 0 || icmp_.Compare(internal_key, last_key_) > 0);
  if (num_entries_ == 0) {
    first_key_.assign(internal_key.data(), internal_key.size());
  }
  Slice user_key = ExtractUserKey(internal_key);
  if (user_keys_.empty() || Slice(user_keys_.back()) != user_key) {
    user_keys_.push_back(user_key.ToString());
  }
  data_block_.Add(internal_key, value);
  last_key_.assign(internal_key.data(), internal_key.size());
  num_entries_++;
  if (data_block_.CurrentSizeEstimate() >= options_.block_size) {
    FlushBlock();
  }
}

uint64_t SSTableBuilder::EstimatedSize() const {
  return data_.size() + data_block_.CurrentSizeEstimate();
}

void SSTableBuilder::FlushBlock() {
  if (data_block_.empty()) {
    return;
  }
  Slice contents = data_block_.Finish();
  BlockHandle handle;
  handle.offset = data_.size();
  // The handle covers the *stored* block — payload (compressed when that
  // shrinks it) plus trailer — so fragment partitioning, Locate, and
  // readahead windows keep working on stored offsets unchanged.
  EncodeBlockTo(contents, options_.compressor, &data_);
  handle.size = data_.size() - handle.offset;
  raw_bytes_ += contents.size() + kBlockTrailerSize;
  block_offsets_.push_back(handle.offset);
  index_keys_.push_back(last_key_);
  index_handles_.push_back(handle);
  data_block_.Reset();
}

SSTableBuilder::Result SSTableBuilder::Finish(uint64_t file_number,
                                              int num_fragments) {
  FlushBlock();

  Result result;
  result.meta.file_number = file_number;
  result.meta.data_size = data_.size();
  result.meta.num_entries = num_entries_;
  result.meta.block_format = 1;  // every block carries the trailer
  result.raw_bytes = raw_bytes_;
  if (!first_key_.empty()) {
    result.meta.smallest.DecodeFrom(first_key_);
    result.meta.largest.DecodeFrom(last_key_);
  }

  // Index block: last key of each data block -> handle.
  BlockBuilder index_block;
  for (size_t i = 0; i < index_keys_.size(); i++) {
    std::string handle_enc;
    index_handles_[i].EncodeTo(&handle_enc);
    index_block.Add(index_keys_[i], handle_enc);
  }
  Slice index_contents = index_block.Finish();
  result.meta.index_contents.assign(index_contents.data(),
                                    index_contents.size());

  // Bloom filter over distinct user keys.
  std::vector<Slice> key_slices;
  key_slices.reserve(user_keys_.size());
  for (const auto& k : user_keys_) {
    key_slices.emplace_back(k);
  }
  result.meta.bloom =
      BloomFilter::Create(key_slices, options_.bloom_bits_per_key);

  // Partition data blocks into fragments at block boundaries, targeting
  // equal fragment sizes.
  int nblocks = static_cast<int>(block_offsets_.size());
  int frags = num_fragments;
  if (frags < 1) frags = 1;
  if (frags > nblocks && nblocks > 0) frags = nblocks;
  if (nblocks == 0) frags = 1;

  result.meta.fragment_sizes.assign(frags, 0);
  if (nblocks > 0) {
    uint64_t target = (data_.size() + frags - 1) / frags;
    int frag = 0;
    for (int b = 0; b < nblocks; b++) {
      uint64_t block_size = (b + 1 < nblocks)
                                ? block_offsets_[b + 1] - block_offsets_[b]
                                : data_.size() - block_offsets_[b];
      // Move to the next fragment if this one met its target and there are
      // fragments left to fill.
      if (frag + 1 < frags && result.meta.fragment_sizes[frag] >= target) {
        frag++;
      }
      result.meta.fragment_sizes[frag] += block_size;
    }
    while (!result.meta.fragment_sizes.empty() &&
           result.meta.fragment_sizes.back() == 0) {
      result.meta.fragment_sizes.pop_back();
    }
  }

  result.data = std::move(data_);
  return result;
}

}  // namespace nova
