// On-"disk" SSTable layout. A Nova-LSM SSTable is not one file: its data
// blocks are partitioned into ρ fragments, each stored as a StoC file on a
// (usually) different StoC, and a small metadata block (index + bloom +
// fragment map) that is replicated (paper Sections 4.4, 3.1).
//
//   fragment 0: [stored block][stored block]...
//   fragment 1: [stored block]...
//   ...
//   metadata  : fragment sizes | index block | bloom | smallest/largest |
//               num_entries | block_format | crc32c
//
// The index block maps last-key-in-block -> BlockHandle(global offset,
// size); SSTableMetadata::Locate translates a global offset into
// (fragment, local offset), which is this repo's equivalent of the paper's
// "convert index block to StoC block handles".
//
// A *stored* block (block_format >= 1) is the block contents — compressed
// when the codec saves space — followed by a 9-byte trailer:
//
//   [payload][codec:1][uncompressed_len:4 LE][crc32c:4 LE]
//
// The crc covers payload + codec + uncompressed_len and is verified
// BEFORE any decompression, so a corrupted payload is reported as
// Status::Corruption instead of being fed to the decoder. Codec 0 means
// the payload is stored raw. block_format 0 is the legacy trailerless
// layout (files written before compression existed); readers handle both.
// See docs/block_format.md.
#ifndef NOVA_SSTABLE_FORMAT_H_
#define NOVA_SSTABLE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "util/compressor.h"
#include "util/slice.h"
#include "util/status.h"

namespace nova {

/// codec byte + fixed32 uncompressed length + fixed32 crc32c.
constexpr size_t kBlockTrailerSize = 9;

/// Append `raw` block contents to *dst as a stored block: compressed under
/// `compressor` when that shrinks it (codec 0 / raw otherwise), plus the
/// trailer. Null compressor always stores raw (still checksummed).
void EncodeBlockTo(const Slice& raw, const Compressor* compressor,
                   std::string* dst);

/// Verify a stored block's trailer (crc first, then codec) and place the
/// uncompressed contents in *raw. Returns Corruption — never crashes — on
/// a checksum mismatch, an unknown codec byte, or a truncated payload.
Status DecodeBlock(const Slice& stored, std::string* raw);

struct BlockHandle {
  uint64_t offset = 0;  // global offset within the SSTable's data stream
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

struct SSTableMetadata {
  uint64_t file_number = 0;
  uint64_t data_size = 0;
  std::vector<uint64_t> fragment_sizes;
  std::string index_contents;
  std::string bloom;
  InternalKey smallest;
  InternalKey largest;
  uint64_t num_entries = 0;
  /// 0 = legacy trailerless data blocks; >= 1 = each block carries the
  /// codec/length/crc trailer. Decoded as 0 from metadata written before
  /// the field existed, so old files stay readable.
  uint32_t block_format = 0;

  int num_fragments() const { return static_cast<int>(fragment_sizes.size()); }

  /// Translate a global data offset to a fragment and offset within it.
  /// Returns false if the offset is out of range.
  bool Locate(uint64_t global_offset, int* fragment,
              uint64_t* local_offset) const;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

/// Pulls a byte range of one fragment; implemented over the StoC client by
/// the LTC and over a local device by the monolithic baseline.
///
/// Replica-selection contract: when the fragment is stored on several
/// replicas, the fetcher — not the table reader — decides which replica
/// serves a given fetch. The StoC-backed implementation fans a Fetch out
/// to the d least-loaded replicas (power-of-d over queue depth and EWMA
/// read latency) and returns the first success, hedging stragglers after
/// a p99-derived delay; StartFetch goes to the single least-loaded
/// replica since readahead is advisory. Readers therefore always ask for
/// (fragment, offset, size) and never name a replica.
class BlockFetcher {
 public:
  /// An in-flight asynchronous fetch started with StartFetch.
  class Pending {
   public:
    virtual ~Pending() = default;
    virtual Status Wait(std::string* out) = 0;
  };

  virtual ~BlockFetcher() = default;
  virtual Status Fetch(int fragment, uint64_t offset, uint64_t size,
                       std::string* out) = 0;
  /// Begin an asynchronous fetch of the same range. Returns null when the
  /// fetcher has no async path (callers then skip readahead or fall back
  /// to the synchronous Fetch).
  virtual std::unique_ptr<Pending> StartFetch(int /*fragment*/,
                                              uint64_t /*offset*/,
                                              uint64_t /*size*/) {
    return nullptr;
  }
};

}  // namespace nova

#endif  // NOVA_SSTABLE_FORMAT_H_
