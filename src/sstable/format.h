// On-"disk" SSTable layout. A Nova-LSM SSTable is not one file: its data
// blocks are partitioned into ρ fragments, each stored as a StoC file on a
// (usually) different StoC, and a small metadata block (index + bloom +
// fragment map) that is replicated (paper Sections 4.4, 3.1).
//
//   fragment 0: [data block][data block]...
//   fragment 1: [data block]...
//   ...
//   metadata  : fragment sizes | index block | bloom | smallest/largest |
//               num_entries | crc32c
//
// The index block maps last-key-in-block -> BlockHandle(global offset,
// size); SSTableMetadata::Locate translates a global offset into
// (fragment, local offset), which is this repo's equivalent of the paper's
// "convert index block to StoC block handles".
#ifndef NOVA_SSTABLE_FORMAT_H_
#define NOVA_SSTABLE_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "util/slice.h"
#include "util/status.h"

namespace nova {

struct BlockHandle {
  uint64_t offset = 0;  // global offset within the SSTable's data stream
  uint64_t size = 0;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice* input);
};

struct SSTableMetadata {
  uint64_t file_number = 0;
  uint64_t data_size = 0;
  std::vector<uint64_t> fragment_sizes;
  std::string index_contents;
  std::string bloom;
  InternalKey smallest;
  InternalKey largest;
  uint64_t num_entries = 0;

  int num_fragments() const { return static_cast<int>(fragment_sizes.size()); }

  /// Translate a global data offset to a fragment and offset within it.
  /// Returns false if the offset is out of range.
  bool Locate(uint64_t global_offset, int* fragment,
              uint64_t* local_offset) const;

  void EncodeTo(std::string* dst) const;
  Status DecodeFrom(Slice input);
};

/// Pulls a byte range of one fragment; implemented over the StoC client by
/// the LTC and over a local device by the monolithic baseline.
///
/// Replica-selection contract: when the fragment is stored on several
/// replicas, the fetcher — not the table reader — decides which replica
/// serves a given fetch. The StoC-backed implementation fans a Fetch out
/// to the d least-loaded replicas (power-of-d over queue depth and EWMA
/// read latency) and returns the first success, hedging stragglers after
/// a p99-derived delay; StartFetch goes to the single least-loaded
/// replica since readahead is advisory. Readers therefore always ask for
/// (fragment, offset, size) and never name a replica.
class BlockFetcher {
 public:
  /// An in-flight asynchronous fetch started with StartFetch.
  class Pending {
   public:
    virtual ~Pending() = default;
    virtual Status Wait(std::string* out) = 0;
  };

  virtual ~BlockFetcher() = default;
  virtual Status Fetch(int fragment, uint64_t offset, uint64_t size,
                       std::string* out) = 0;
  /// Begin an asynchronous fetch of the same range. Returns null when the
  /// fetcher has no async path (callers then skip readahead or fall back
  /// to the synchronous Fetch).
  virtual std::unique_ptr<Pending> StartFetch(int /*fragment*/,
                                              uint64_t /*offset*/,
                                              uint64_t /*size*/) {
    return nullptr;
  }
};

}  // namespace nova

#endif  // NOVA_SSTABLE_FORMAT_H_
