// Bloom filter over user keys, one filter per SSTable. The paper caches
// every SSTable's bloom filter at the LTC so a get skips SSTables whose
// filter rules the key out (Section 4.1.1).
#ifndef NOVA_SSTABLE_BLOOM_H_
#define NOVA_SSTABLE_BLOOM_H_

#include <string>
#include <vector>

#include "util/slice.h"

namespace nova {

class BloomFilter {
 public:
  /// Build a filter over keys with bits_per_key (10 ≈ 1% false positives).
  static std::string Create(const std::vector<Slice>& keys, int bits_per_key);

  /// May return true for keys not in the filter (false positives), never
  /// false for keys that are.
  static bool KeyMayMatch(const Slice& key, const Slice& filter);
};

}  // namespace nova

#endif  // NOVA_SSTABLE_BLOOM_H_
