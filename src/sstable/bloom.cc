#include "sstable/bloom.h"

#include <cstdint>

namespace nova {
namespace {

uint32_t BloomHash(const Slice& key) {
  // Murmur-inspired hash (LevelDB's Hash function shape).
  const uint32_t seed = 0xbc9f1d34;
  const uint32_t m = 0xc6a4a793;
  const char* data = key.data();
  size_t n = key.size();
  uint32_t h = seed ^ (static_cast<uint32_t>(n) * m);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t w;
    memcpy(&w, data + i, 4);
    h += w;
    h *= m;
    h ^= (h >> 16);
  }
  for (; i < n; i++) {
    h += static_cast<uint8_t>(data[i]) << ((i % 4) * 8);
  }
  h *= m;
  h ^= (h >> 24);
  return h;
}

}  // namespace

std::string BloomFilter::Create(const std::vector<Slice>& keys,
                                int bits_per_key) {
  // k = bits_per_key * ln(2), clamped.
  int k = static_cast<int>(bits_per_key * 0.69);
  if (k < 1) k = 1;
  if (k > 30) k = 30;

  size_t bits = keys.size() * bits_per_key;
  if (bits < 64) bits = 64;
  size_t bytes = (bits + 7) / 8;
  bits = bytes * 8;

  std::string filter(bytes, '\0');
  filter.push_back(static_cast<char>(k));  // remember k in the last byte
  char* array = filter.data();
  for (const Slice& key : keys) {
    uint32_t h = BloomHash(key);
    const uint32_t delta = (h >> 17) | (h << 15);  // rotate right 17 bits
    for (int j = 0; j < k; j++) {
      const uint32_t bitpos = h % bits;
      array[bitpos / 8] |= (1 << (bitpos % 8));
      h += delta;
    }
  }
  return filter;
}

bool BloomFilter::KeyMayMatch(const Slice& key, const Slice& filter) {
  const size_t len = filter.size();
  if (len < 2) {
    return false;
  }
  const char* array = filter.data();
  const size_t bits = (len - 1) * 8;
  const int k = array[len - 1];
  if (k > 30) {
    // Reserved for future encodings: be conservative.
    return true;
  }
  uint32_t h = BloomHash(key);
  const uint32_t delta = (h >> 17) | (h << 15);
  for (int j = 0; j < k; j++) {
    const uint32_t bitpos = h % bits;
    if ((array[bitpos / 8] & (1 << (bitpos % 8))) == 0) {
      return false;
    }
    h += delta;
  }
  return true;
}

}  // namespace nova
