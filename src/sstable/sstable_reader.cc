#include "sstable/sstable_reader.h"

#include "sstable/bloom.h"

namespace nova {

SSTableReader::SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher)
    : meta_(std::move(meta)), fetcher_(fetcher) {
  index_block_ = std::make_unique<Block>(meta_.index_contents);
}

bool SSTableReader::KeyMayMatch(const Slice& user_key) const {
  if (meta_.bloom.empty()) {
    return true;
  }
  return BloomFilter::KeyMayMatch(user_key, meta_.bloom);
}

Status SSTableReader::ReadBlock(const BlockHandle& handle,
                                std::unique_ptr<Block>* block) const {
  int fragment;
  uint64_t local_offset;
  if (!meta_.Locate(handle.offset, &fragment, &local_offset)) {
    return Status::Corruption("block offset outside fragment map");
  }
  std::string contents;
  Status s = fetcher_->Fetch(fragment, local_offset, handle.size, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.size() != handle.size) {
    return Status::Corruption("short block read");
  }
  *block = std::make_unique<Block>(std::move(contents));
  return Status::OK();
}

bool SSTableReader::Get(const LookupKey& lookup_key, std::string* value,
                        Status* s, SequenceNumber* seq) {
  if (!KeyMayMatch(lookup_key.user_key())) {
    return false;
  }
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  index_iter->Seek(lookup_key.internal_key());
  if (!index_iter->Valid()) {
    return false;
  }
  BlockHandle handle;
  Slice handle_contents = index_iter->value();
  Status hs = handle.DecodeFrom(&handle_contents);
  if (!hs.ok()) {
    *s = hs;
    return true;  // surfaced as an error, not silently missing
  }
  std::unique_ptr<Block> block;
  Status bs = ReadBlock(handle, &block);
  if (!bs.ok()) {
    *s = bs;
    return true;
  }
  std::unique_ptr<Iterator> block_iter(block->NewIterator(&icmp_));
  block_iter->Seek(lookup_key.internal_key());
  if (!block_iter->Valid()) {
    return false;
  }
  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    *s = Status::Corruption("bad internal key in sstable");
    return true;
  }
  if (parsed.user_key != lookup_key.user_key()) {
    return false;
  }
  if (seq != nullptr) {
    *seq = parsed.sequence;
  }
  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound(Slice());
    return true;
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  *s = Status::OK();
  return true;
}

namespace {

/// Two-level iterator: walks the index block; materializes one data block
/// at a time through the fetcher.
class SSTableIterator : public Iterator {
 public:
  SSTableIterator(const SSTableReader* reader, const SSTableMetadata* meta,
                  BlockFetcher* fetcher, const InternalKeyComparator* icmp,
                  Iterator* index_iter)
      : reader_(reader),
        meta_(meta),
        fetcher_(fetcher),
        icmp_(icmp),
        index_iter_(index_iter) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToFirst();
    }
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToLast();
    }
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_) {
      block_iter_->Seek(target);
    }
    SkipEmptyBlocksForward();
  }

  void Next() override {
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitDataBlock() {
    block_iter_.reset();
    block_.reset();
    if (!index_iter_->Valid()) {
      return;
    }
    BlockHandle handle;
    Slice handle_contents = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_contents);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    int fragment;
    uint64_t local_offset;
    if (!meta_->Locate(handle.offset, &fragment, &local_offset)) {
      status_ = Status::Corruption("block offset outside fragment map");
      return;
    }
    std::string contents;
    s = fetcher_->Fetch(fragment, local_offset, handle.size, &contents);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_ = std::make_unique<Block>(std::move(contents));
    block_iter_.reset(block_->NewIterator(icmp_));
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyBlocksBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToLast();
      }
    }
  }

  [[maybe_unused]] const SSTableReader* reader_;
  const SSTableMetadata* meta_;
  BlockFetcher* fetcher_;
  const InternalKeyComparator* icmp_;
  std::unique_ptr<Iterator> index_iter_;
  std::unique_ptr<Block> block_;
  std::unique_ptr<Iterator> block_iter_;
  Status status_;
};

}  // namespace

Iterator* SSTableReader::NewIterator() const {
  return new SSTableIterator(this, &meta_, fetcher_, &icmp_,
                             index_block_->NewIterator(&icmp_));
}

}  // namespace nova
