#include "sstable/sstable_reader.h"

#include "sstable/bloom.h"
#include "util/coding.h"

namespace nova {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<Block*>(value);
}

void DeleteCachedStoredBytes(const Slice& /*key*/, void* value) {
  delete static_cast<std::string*>(value);
}

/// A shared_ptr that releases the cache pin (not the block) when dropped;
/// the cache's deleter frees the block once it is evicted and unpinned.
std::shared_ptr<Block> PinnedBlock(Cache* cache, Cache::Handle* handle) {
  Block* block = static_cast<Block*>(cache->Value(handle));
  return std::shared_ptr<Block>(
      block, [cache, handle](Block*) { cache->Release(handle); });
}

}  // namespace

std::string BlockCachePrefix(uint32_t range_id, uint64_t file_number) {
  std::string key;
  PutFixed32(&key, range_id);
  PutFixed64(&key, file_number);
  return key;
}

std::string BlockCacheKey(uint32_t range_id, uint64_t file_number,
                          uint64_t offset) {
  std::string key = BlockCachePrefix(range_id, file_number);
  PutFixed64(&key, offset);
  return key;
}

SSTableReader::SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher,
                             Cache* block_cache, uint32_t range_id,
                             int readahead_blocks,
                             ReadaheadCounters* readahead,
                             Cache* compressed_cache)
    : meta_(std::move(meta)),
      fetcher_(fetcher),
      block_cache_(block_cache),
      // Legacy trailerless blocks are not self-describing, so they cannot
      // live in the compressed tier.
      compressed_cache_(meta_.block_format >= 1 ? compressed_cache : nullptr),
      range_id_(range_id),
      readahead_blocks_(readahead_blocks),
      readahead_(readahead) {}

Block* SSTableReader::index_block() const {
  std::call_once(index_once_, [this] {
    index_block_ = std::make_unique<Block>(meta_.index_contents);
  });
  return index_block_.get();
}

bool SSTableReader::KeyMayMatch(const Slice& user_key) const {
  if (meta_.bloom.empty()) {
    return true;
  }
  return BloomFilter::KeyMayMatch(user_key, meta_.bloom);
}

Status SSTableReader::ReadBlock(const BlockHandle& handle,
                                std::shared_ptr<Block>* block,
                                bool fill_cache,
                                Cache::Priority pri) const {
  std::string cache_key;
  if (block_cache_ != nullptr || compressed_cache_ != nullptr) {
    cache_key = BlockCacheKey(range_id_, meta_.file_number, handle.offset);
  }
  if (block_cache_ != nullptr) {
    // Compaction streams (fill_cache=false) stay out of the hit/miss
    // stats: they are one-shot reads, not read-path traffic.
    Cache::Handle* h =
        block_cache_->Lookup(cache_key, /*count=*/fill_cache, pri);
    if (h != nullptr) {
      *block = PinnedBlock(block_cache_, h);
      return Status::OK();
    }
  }
  if (compressed_cache_ != nullptr) {
    // Hot-tier miss, compressed-tier hit: decompress in place — no StoC
    // round-trip. The decoded block is (re)installed into the hot tier;
    // the compressed copy stays resident until its own LRU retires it.
    Cache::Handle* ch =
        compressed_cache_->Lookup(cache_key, /*count=*/fill_cache, pri);
    if (ch != nullptr) {
      const auto* stored =
          static_cast<const std::string*>(compressed_cache_->Value(ch));
      std::string raw;
      Status ds = DecodeBlock(*stored, &raw);
      compressed_cache_->Release(ch);
      if (ds.ok()) {
        *block = InstallHot(std::move(raw), handle.offset, fill_cache, pri);
        return Status::OK();
      }
      // A poisoned tier entry (should not happen — inserts were verified)
      // is dropped and the block refetched rather than surfaced.
      compressed_cache_->Erase(cache_key);
    }
  }
  int fragment;
  uint64_t local_offset;
  if (!meta_.Locate(handle.offset, &fragment, &local_offset)) {
    return Status::Corruption("block offset outside fragment map");
  }
  std::string contents;
  // Which replica serves this range is the fetcher's call (power-of-d
  // plus hedging over the StoC client); the reader only names the
  // fragment-relative range. See BlockFetcher in sstable/format.h.
  Status s = fetcher_->Fetch(fragment, local_offset, handle.size, &contents);
  if (!s.ok()) {
    return s;
  }
  return InstallBlock(std::move(contents), handle.offset, handle.size,
                      fill_cache, pri, block);
}

std::shared_ptr<Block> SSTableReader::InstallHot(std::string raw,
                                                 uint64_t offset,
                                                 bool fill_cache,
                                                 Cache::Priority pri) const {
  if (block_cache_ != nullptr && fill_cache) {
    auto* b = new Block(std::move(raw));
    Cache::Handle* h = block_cache_->Insert(
        BlockCacheKey(range_id_, meta_.file_number, offset), b,
        b->size() + sizeof(Block), &DeleteCachedBlock, pri);
    return PinnedBlock(block_cache_, h);
  }
  return std::make_shared<Block>(std::move(raw));
}

Status SSTableReader::InstallBlock(std::string stored, uint64_t offset,
                                   uint64_t size, bool fill_cache,
                                   Cache::Priority pri,
                                   std::shared_ptr<Block>* block) const {
  if (stored.size() != size) {
    return Status::Corruption("short block read");
  }
  std::string raw;
  if (meta_.block_format >= 1) {
    // crc is checked before the codec ever runs; see DecodeBlock.
    Status s = DecodeBlock(stored, &raw);
    if (!s.ok()) {
      return s;
    }
  } else {
    raw = std::move(stored);  // legacy: the stored bytes are the block
  }
  if (compressed_cache_ != nullptr && fill_cache) {
    // Both tiers are filled on a network read, so eviction from the small
    // hot tier demotes to the compressed copy instead of dropping the
    // block (RocksDB-style).
    auto* copy = new std::string(std::move(stored));
    size_t charge = copy->size() + sizeof(std::string);
    compressed_cache_->Release(compressed_cache_->Insert(
        BlockCacheKey(range_id_, meta_.file_number, offset), copy, charge,
        &DeleteCachedStoredBytes, pri));
  }
  *block = InstallHot(std::move(raw), offset, fill_cache, pri);
  return Status::OK();
}

std::unique_ptr<SSTableReader::PendingBlock> SSTableReader::Prefetch(
    const BlockHandle& handle, ReadaheadCounters* counters) const {
  // Already resident in either tier: the iterator's ReadBlock will hit
  // (decompressing from the compressed tier if need be); nothing to do.
  // kCold lookups so probing cannot promote scan blocks into the hot set.
  for (Cache* cache : {block_cache_, compressed_cache_}) {
    if (cache == nullptr) {
      continue;
    }
    Cache::Handle* h = cache->Lookup(
        BlockCacheKey(range_id_, meta_.file_number, handle.offset),
        /*count=*/false, Cache::Priority::kCold);
    if (h != nullptr) {
      cache->Release(h);
      return nullptr;
    }
  }
  int fragment;
  uint64_t local_offset;
  if (!meta_.Locate(handle.offset, &fragment, &local_offset)) {
    return nullptr;
  }
  auto pending = fetcher_->StartFetch(fragment, local_offset, handle.size);
  if (pending == nullptr) {
    return nullptr;
  }
  if (counters != nullptr) {
    counters->issued.fetch_add(1, std::memory_order_relaxed);
  }
  auto pb = std::make_unique<PendingBlock>();
  pb->offset = handle.offset;
  pb->size = handle.size;
  pb->pending = std::move(pending);
  return pb;
}

Status SSTableReader::FinishPrefetch(PendingBlock* pb,
                                     std::shared_ptr<Block>* block,
                                     bool fill_cache,
                                     ReadaheadCounters* counters) const {
  std::string contents;
  Status s = pb->pending->Wait(&contents);
  if (s.ok()) {
    // Readahead is scan traffic by definition: cold admission.
    s = InstallBlock(std::move(contents), pb->offset, pb->size, fill_cache,
                     Cache::Priority::kCold, block);
  }
  if (s.ok() && counters != nullptr) {
    counters->hits.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

bool SSTableReader::Get(const LookupKey& lookup_key, std::string* value,
                        Status* s, SequenceNumber* seq) {
  // Bloom before index: a rejected key never materializes or seeks the
  // index block (ROADMAP read-path follow-on).
  if (!KeyMayMatch(lookup_key.user_key())) {
    return false;
  }
  std::unique_ptr<Iterator> index_iter(index_block()->NewIterator(&icmp_));
  index_iter->Seek(lookup_key.internal_key());
  if (!index_iter->Valid()) {
    return false;
  }
  BlockHandle handle;
  Slice handle_contents = index_iter->value();
  Status hs = handle.DecodeFrom(&handle_contents);
  if (!hs.ok()) {
    *s = hs;
    return true;  // surfaced as an error, not silently missing
  }
  std::shared_ptr<Block> block;
  Status bs = ReadBlock(handle, &block);
  if (!bs.ok()) {
    *s = bs;
    return true;
  }
  std::unique_ptr<Iterator> block_iter(block->NewIterator(&icmp_));
  block_iter->Seek(lookup_key.internal_key());
  if (!block_iter->Valid()) {
    return false;
  }
  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    *s = Status::Corruption("bad internal key in sstable");
    return true;
  }
  if (parsed.user_key != lookup_key.user_key()) {
    return false;
  }
  if (seq != nullptr) {
    *seq = parsed.sequence;
  }
  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound(Slice());
    return true;
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  *s = Status::OK();
  return true;
}

namespace {

/// Two-level iterator: walks the index block; materializes one data block
/// at a time through the reader (which consults the block cache first).
/// With readahead_blocks > 0 it keeps that many upcoming data blocks in
/// flight (issued to the StoC asynchronously) while the current block
/// drains, so a forward scan overlaps compute with fragment round-trips.
class SSTableIterator : public Iterator {
 public:
  SSTableIterator(const SSTableReader* reader,
                  const InternalKeyComparator* icmp, Iterator* index_iter,
                  Iterator* peek_iter, bool fill_cache, int readahead_blocks)
      : reader_(reader),
        icmp_(icmp),
        index_iter_(index_iter),
        peek_iter_(peek_iter),
        fill_cache_(fill_cache),
        readahead_blocks_(readahead_blocks) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    forward_ = true;
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToFirst();
    }
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    forward_ = false;
    index_iter_->SeekToLast();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToLast();
    }
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    forward_ = true;
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_) {
      block_iter_->Seek(target);
    }
    SkipEmptyBlocksForward();
  }

  void Next() override {
    forward_ = true;
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    forward_ = false;
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitDataBlock() {
    block_iter_.reset();
    block_.reset();
    if (!index_iter_->Valid()) {
      return;
    }
    BlockHandle handle;
    Slice handle_contents = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_contents);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    s = MaterializeBlock(handle);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_.reset(block_->NewIterator(icmp_));
    IssueReadahead(handle.offset);
  }

  /// Serve the block from a matching in-flight prefetch when one exists
  /// (a readahead hit), falling back to the reader's normal path.
  Status MaterializeBlock(const BlockHandle& handle) {
    for (auto it = prefetched_.begin(); it != prefetched_.end(); ++it) {
      if ((*it)->offset != handle.offset) {
        continue;
      }
      std::unique_ptr<SSTableReader::PendingBlock> pb = std::move(*it);
      prefetched_.erase(it);
      if (reader_->FinishPrefetch(pb.get(), &block_, fill_cache_).ok()) {
        return Status::OK();
      }
      break;  // prefetch failed; retry through the synchronous path
    }
    // Scans admit cold: a sweep fills the cold queue and cannot evict the
    // point-get working set (see Cache::Priority).
    return reader_->ReadBlock(handle, &block_, fill_cache_,
                              Cache::Priority::kCold);
  }

  /// Keep the next readahead_blocks_ data blocks in flight. Prefetches
  /// outside that window — blocks the scan has passed, or far-ahead
  /// leftovers after a backward re-seek — are dropped (an abandoned
  /// response is discarded by the RPC layer). Forward scans only: a
  /// backward scan never revisits the blocks ahead of it, so prefetching
  /// there would be pure waste.
  void IssueReadahead(uint64_t /*current_offset*/) {
    if (readahead_blocks_ <= 0 || !forward_) {
      return;
    }
    // The window: the next readahead_blocks_ index entries.
    std::vector<BlockHandle> wanted;
    peek_iter_->Seek(index_iter_->key());
    for (int i = 0; i < readahead_blocks_ && peek_iter_->Valid(); i++) {
      peek_iter_->Next();
      if (!peek_iter_->Valid()) {
        break;
      }
      BlockHandle handle;
      Slice contents = peek_iter_->value();
      if (!handle.DecodeFrom(&contents).ok()) {
        break;
      }
      wanted.push_back(handle);
    }
    auto in_window = [&wanted](uint64_t offset) {
      for (const BlockHandle& h : wanted) {
        if (h.offset == offset) {
          return true;
        }
      }
      return false;
    };
    for (auto it = prefetched_.begin(); it != prefetched_.end();) {
      it = in_window((*it)->offset) ? it + 1 : prefetched_.erase(it);
    }
    for (const BlockHandle& handle : wanted) {
      bool in_flight = false;
      for (const auto& pb : prefetched_) {
        in_flight |= pb->offset == handle.offset;
      }
      if (in_flight) {
        continue;
      }
      auto pb = reader_->Prefetch(handle);
      if (pb != nullptr) {
        prefetched_.push_back(std::move(pb));
      }
    }
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyBlocksBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToLast();
      }
    }
  }

  const SSTableReader* reader_;
  const InternalKeyComparator* icmp_;
  std::unique_ptr<Iterator> index_iter_;
  /// Second cursor over the index block, used to peek ahead of
  /// index_iter_ when issuing readahead without disturbing it; null when
  /// this iterator has readahead disabled.
  std::unique_ptr<Iterator> peek_iter_;
  std::shared_ptr<Block> block_;  // pins the cached entry while in use
  std::unique_ptr<Iterator> block_iter_;
  bool fill_cache_;
  int readahead_blocks_;
  /// Scan direction, maintained by the movement methods; readahead only
  /// pays off while moving forward.
  bool forward_ = true;
  std::vector<std::unique_ptr<SSTableReader::PendingBlock>> prefetched_;
  Status status_;
};

}  // namespace

Iterator* SSTableReader::NewIterator(bool fill_cache,
                                     int readahead_blocks) const {
  if (readahead_blocks < 0) {
    readahead_blocks = readahead_blocks_;
  }
  // The peek cursor exists only when this iterator actually reads ahead.
  return new SSTableIterator(
      this, &icmp_, index_block()->NewIterator(&icmp_),
      readahead_blocks > 0 ? index_block()->NewIterator(&icmp_) : nullptr,
      fill_cache, readahead_blocks);
}

}  // namespace nova
