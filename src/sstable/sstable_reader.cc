#include "sstable/sstable_reader.h"

#include "sstable/bloom.h"
#include "util/coding.h"

namespace nova {

namespace {

void DeleteCachedBlock(const Slice& /*key*/, void* value) {
  delete static_cast<Block*>(value);
}

/// A shared_ptr that releases the cache pin (not the block) when dropped;
/// the cache's deleter frees the block once it is evicted and unpinned.
std::shared_ptr<Block> PinnedBlock(Cache* cache, Cache::Handle* handle) {
  Block* block = static_cast<Block*>(cache->Value(handle));
  return std::shared_ptr<Block>(
      block, [cache, handle](Block*) { cache->Release(handle); });
}

}  // namespace

std::string BlockCachePrefix(uint32_t range_id, uint64_t file_number) {
  std::string key;
  PutFixed32(&key, range_id);
  PutFixed64(&key, file_number);
  return key;
}

std::string BlockCacheKey(uint32_t range_id, uint64_t file_number,
                          uint64_t offset) {
  std::string key = BlockCachePrefix(range_id, file_number);
  PutFixed64(&key, offset);
  return key;
}

SSTableReader::SSTableReader(SSTableMetadata meta, BlockFetcher* fetcher,
                             Cache* block_cache, uint32_t range_id)
    : meta_(std::move(meta)),
      fetcher_(fetcher),
      block_cache_(block_cache),
      range_id_(range_id) {
  index_block_ = std::make_unique<Block>(meta_.index_contents);
}

bool SSTableReader::KeyMayMatch(const Slice& user_key) const {
  if (meta_.bloom.empty()) {
    return true;
  }
  return BloomFilter::KeyMayMatch(user_key, meta_.bloom);
}

Status SSTableReader::ReadBlock(const BlockHandle& handle,
                                std::shared_ptr<Block>* block,
                                bool fill_cache) const {
  std::string cache_key;
  if (block_cache_ != nullptr) {
    cache_key = BlockCacheKey(range_id_, meta_.file_number, handle.offset);
    // Compaction streams (fill_cache=false) stay out of the hit/miss
    // stats: they are one-shot reads, not read-path traffic.
    Cache::Handle* h = block_cache_->Lookup(cache_key, /*count=*/fill_cache);
    if (h != nullptr) {
      *block = PinnedBlock(block_cache_, h);
      return Status::OK();
    }
  }
  int fragment;
  uint64_t local_offset;
  if (!meta_.Locate(handle.offset, &fragment, &local_offset)) {
    return Status::Corruption("block offset outside fragment map");
  }
  std::string contents;
  Status s = fetcher_->Fetch(fragment, local_offset, handle.size, &contents);
  if (!s.ok()) {
    return s;
  }
  if (contents.size() != handle.size) {
    return Status::Corruption("short block read");
  }
  if (block_cache_ != nullptr && fill_cache) {
    auto* b = new Block(std::move(contents));
    Cache::Handle* h = block_cache_->Insert(
        cache_key, b, b->size() + sizeof(Block), &DeleteCachedBlock);
    *block = PinnedBlock(block_cache_, h);
  } else {
    *block = std::make_shared<Block>(std::move(contents));
  }
  return Status::OK();
}

bool SSTableReader::Get(const LookupKey& lookup_key, std::string* value,
                        Status* s, SequenceNumber* seq) {
  if (!KeyMayMatch(lookup_key.user_key())) {
    return false;
  }
  std::unique_ptr<Iterator> index_iter(index_block_->NewIterator(&icmp_));
  index_iter->Seek(lookup_key.internal_key());
  if (!index_iter->Valid()) {
    return false;
  }
  BlockHandle handle;
  Slice handle_contents = index_iter->value();
  Status hs = handle.DecodeFrom(&handle_contents);
  if (!hs.ok()) {
    *s = hs;
    return true;  // surfaced as an error, not silently missing
  }
  std::shared_ptr<Block> block;
  Status bs = ReadBlock(handle, &block);
  if (!bs.ok()) {
    *s = bs;
    return true;
  }
  std::unique_ptr<Iterator> block_iter(block->NewIterator(&icmp_));
  block_iter->Seek(lookup_key.internal_key());
  if (!block_iter->Valid()) {
    return false;
  }
  ParsedInternalKey parsed;
  if (!ParseInternalKey(block_iter->key(), &parsed)) {
    *s = Status::Corruption("bad internal key in sstable");
    return true;
  }
  if (parsed.user_key != lookup_key.user_key()) {
    return false;
  }
  if (seq != nullptr) {
    *seq = parsed.sequence;
  }
  if (parsed.type == kTypeDeletion) {
    *s = Status::NotFound(Slice());
    return true;
  }
  value->assign(block_iter->value().data(), block_iter->value().size());
  *s = Status::OK();
  return true;
}

namespace {

/// Two-level iterator: walks the index block; materializes one data block
/// at a time through the reader (which consults the block cache first).
class SSTableIterator : public Iterator {
 public:
  SSTableIterator(const SSTableReader* reader,
                  const InternalKeyComparator* icmp, Iterator* index_iter,
                  bool fill_cache)
      : reader_(reader),
        icmp_(icmp),
        index_iter_(index_iter),
        fill_cache_(fill_cache) {}

  bool Valid() const override {
    return block_iter_ != nullptr && block_iter_->Valid();
  }

  void SeekToFirst() override {
    index_iter_->SeekToFirst();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToFirst();
    }
    SkipEmptyBlocksForward();
  }

  void SeekToLast() override {
    index_iter_->SeekToLast();
    InitDataBlock();
    if (block_iter_) {
      block_iter_->SeekToLast();
    }
    SkipEmptyBlocksBackward();
  }

  void Seek(const Slice& target) override {
    index_iter_->Seek(target);
    InitDataBlock();
    if (block_iter_) {
      block_iter_->Seek(target);
    }
    SkipEmptyBlocksForward();
  }

  void Next() override {
    block_iter_->Next();
    SkipEmptyBlocksForward();
  }

  void Prev() override {
    block_iter_->Prev();
    SkipEmptyBlocksBackward();
  }

  Slice key() const override { return block_iter_->key(); }
  Slice value() const override { return block_iter_->value(); }
  Status status() const override { return status_; }

 private:
  void InitDataBlock() {
    block_iter_.reset();
    block_.reset();
    if (!index_iter_->Valid()) {
      return;
    }
    BlockHandle handle;
    Slice handle_contents = index_iter_->value();
    Status s = handle.DecodeFrom(&handle_contents);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    s = reader_->ReadBlock(handle, &block_, fill_cache_);
    if (!s.ok()) {
      status_ = s;
      return;
    }
    block_iter_.reset(block_->NewIterator(icmp_));
  }

  void SkipEmptyBlocksForward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Next();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToFirst();
      }
    }
  }

  void SkipEmptyBlocksBackward() {
    while (block_iter_ == nullptr || !block_iter_->Valid()) {
      if (!index_iter_->Valid()) {
        block_iter_.reset();
        return;
      }
      index_iter_->Prev();
      InitDataBlock();
      if (block_iter_) {
        block_iter_->SeekToLast();
      }
    }
  }

  const SSTableReader* reader_;
  const InternalKeyComparator* icmp_;
  std::unique_ptr<Iterator> index_iter_;
  std::shared_ptr<Block> block_;  // pins the cached entry while in use
  std::unique_ptr<Iterator> block_iter_;
  bool fill_cache_;
  Status status_;
};

}  // namespace

Iterator* SSTableReader::NewIterator(bool fill_cache) const {
  return new SSTableIterator(this, &icmp_, index_block_->NewIterator(&icmp_),
                             fill_cache);
}

}  // namespace nova
