#include "sstable/format.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace nova {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

void EncodeBlockTo(const Slice& raw, const Compressor* compressor,
                   std::string* dst) {
  const size_t start = dst->size();
  uint8_t codec = kNoCompression;
  if (compressor != nullptr && compressor->Compress(raw, dst)) {
    codec = compressor->id();
  } else {
    dst->append(raw.data(), raw.size());
  }
  dst->push_back(static_cast<char>(codec));
  PutFixed32(dst, static_cast<uint32_t>(raw.size()));
  // The crc spans payload + codec + uncompressed_len, so a flipped codec
  // byte or length is caught by the same check as a payload flip.
  uint32_t crc = crc32c::Value(dst->data() + start, dst->size() - start);
  PutFixed32(dst, crc32c::Mask(crc));
}

Status DecodeBlock(const Slice& stored, std::string* raw) {
  if (stored.size() < kBlockTrailerSize) {
    return Status::Corruption("stored block shorter than its trailer");
  }
  const size_t payload_len = stored.size() - kBlockTrailerSize;
  const char* trailer = stored.data() + payload_len;
  // Checksum first: nothing downstream (codec dispatch, decompression)
  // ever sees bytes that failed the crc.
  uint32_t expected = crc32c::Unmask(DecodeFixed32(trailer + 5));
  if (crc32c::Value(stored.data(), payload_len + 5) != expected) {
    return Status::Corruption("block checksum mismatch");
  }
  uint8_t codec = static_cast<uint8_t>(trailer[0]);
  uint32_t uncompressed_len = DecodeFixed32(trailer + 1);
  Slice payload(stored.data(), payload_len);
  if (codec == kNoCompression) {
    if (payload_len != uncompressed_len) {
      return Status::Corruption("raw block length mismatch");
    }
    raw->assign(payload.data(), payload.size());
    return Status::OK();
  }
  const Compressor* compressor = GetCompressor(codec);
  if (compressor == nullptr) {
    return Status::Corruption("unknown block codec");
  }
  return compressor->Uncompress(payload, uncompressed_len, raw);
}

bool SSTableMetadata::Locate(uint64_t global_offset, int* fragment,
                             uint64_t* local_offset) const {
  uint64_t base = 0;
  for (size_t i = 0; i < fragment_sizes.size(); i++) {
    if (global_offset < base + fragment_sizes[i]) {
      *fragment = static_cast<int>(i);
      *local_offset = global_offset - base;
      return true;
    }
    base += fragment_sizes[i];
  }
  return false;
}

void SSTableMetadata::EncodeTo(std::string* dst) const {
  std::string body;
  PutVarint64(&body, file_number);
  PutVarint64(&body, data_size);
  PutVarint32(&body, static_cast<uint32_t>(fragment_sizes.size()));
  for (uint64_t s : fragment_sizes) {
    PutVarint64(&body, s);
  }
  PutLengthPrefixedSlice(&body, index_contents);
  PutLengthPrefixedSlice(&body, bloom);
  PutLengthPrefixedSlice(&body, smallest.Encode());
  PutLengthPrefixedSlice(&body, largest.Encode());
  PutVarint64(&body, num_entries);
  PutVarint32(&body, block_format);
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  dst->append(body);
}

Status SSTableMetadata::DecodeFrom(Slice input) {
  if (input.size() < 4) {
    return Status::Corruption("sstable metadata too short");
  }
  Slice body(input.data(), input.size() - 4);
  uint32_t expected =
      crc32c::Unmask(DecodeFixed32(input.data() + input.size() - 4));
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("sstable metadata checksum mismatch");
  }
  uint32_t nfrags;
  Slice idx, blm, small, large;
  if (!GetVarint64(&body, &file_number) || !GetVarint64(&body, &data_size) ||
      !GetVarint32(&body, &nfrags)) {
    return Status::Corruption("bad sstable metadata header");
  }
  fragment_sizes.clear();
  fragment_sizes.reserve(nfrags);
  for (uint32_t i = 0; i < nfrags; i++) {
    uint64_t s;
    if (!GetVarint64(&body, &s)) {
      return Status::Corruption("bad fragment sizes");
    }
    fragment_sizes.push_back(s);
  }
  if (!GetLengthPrefixedSlice(&body, &idx) ||
      !GetLengthPrefixedSlice(&body, &blm) ||
      !GetLengthPrefixedSlice(&body, &small) ||
      !GetLengthPrefixedSlice(&body, &large) ||
      !GetVarint64(&body, &num_entries)) {
    return Status::Corruption("bad sstable metadata body");
  }
  // Metadata written before compression shipped ends right after
  // num_entries: absent field = format 0 = trailerless blocks.
  block_format = 0;
  if (!body.empty() && !GetVarint32(&body, &block_format)) {
    return Status::Corruption("bad sstable metadata block format");
  }
  index_contents = idx.ToString();
  bloom = blm.ToString();
  smallest.DecodeFrom(small);
  largest.DecodeFrom(large);
  return Status::OK();
}

}  // namespace nova
