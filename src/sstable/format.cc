#include "sstable/format.h"

#include "util/coding.h"
#include "util/crc32c.h"

namespace nova {

void BlockHandle::EncodeTo(std::string* dst) const {
  PutVarint64(dst, offset);
  PutVarint64(dst, size);
}

Status BlockHandle::DecodeFrom(Slice* input) {
  if (GetVarint64(input, &offset) && GetVarint64(input, &size)) {
    return Status::OK();
  }
  return Status::Corruption("bad block handle");
}

bool SSTableMetadata::Locate(uint64_t global_offset, int* fragment,
                             uint64_t* local_offset) const {
  uint64_t base = 0;
  for (size_t i = 0; i < fragment_sizes.size(); i++) {
    if (global_offset < base + fragment_sizes[i]) {
      *fragment = static_cast<int>(i);
      *local_offset = global_offset - base;
      return true;
    }
    base += fragment_sizes[i];
  }
  return false;
}

void SSTableMetadata::EncodeTo(std::string* dst) const {
  std::string body;
  PutVarint64(&body, file_number);
  PutVarint64(&body, data_size);
  PutVarint32(&body, static_cast<uint32_t>(fragment_sizes.size()));
  for (uint64_t s : fragment_sizes) {
    PutVarint64(&body, s);
  }
  PutLengthPrefixedSlice(&body, index_contents);
  PutLengthPrefixedSlice(&body, bloom);
  PutLengthPrefixedSlice(&body, smallest.Encode());
  PutLengthPrefixedSlice(&body, largest.Encode());
  PutVarint64(&body, num_entries);
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  dst->append(body);
}

Status SSTableMetadata::DecodeFrom(Slice input) {
  if (input.size() < 4) {
    return Status::Corruption("sstable metadata too short");
  }
  Slice body(input.data(), input.size() - 4);
  uint32_t expected =
      crc32c::Unmask(DecodeFixed32(input.data() + input.size() - 4));
  if (crc32c::Value(body.data(), body.size()) != expected) {
    return Status::Corruption("sstable metadata checksum mismatch");
  }
  uint32_t nfrags;
  Slice idx, blm, small, large;
  if (!GetVarint64(&body, &file_number) || !GetVarint64(&body, &data_size) ||
      !GetVarint32(&body, &nfrags)) {
    return Status::Corruption("bad sstable metadata header");
  }
  fragment_sizes.clear();
  fragment_sizes.reserve(nfrags);
  for (uint32_t i = 0; i < nfrags; i++) {
    uint64_t s;
    if (!GetVarint64(&body, &s)) {
      return Status::Corruption("bad fragment sizes");
    }
    fragment_sizes.push_back(s);
  }
  if (!GetLengthPrefixedSlice(&body, &idx) ||
      !GetLengthPrefixedSlice(&body, &blm) ||
      !GetLengthPrefixedSlice(&body, &small) ||
      !GetLengthPrefixedSlice(&body, &large) ||
      !GetVarint64(&body, &num_entries)) {
    return Status::Corruption("bad sstable metadata body");
  }
  index_contents = idx.ToString();
  bloom = blm.ToString();
  smallest.DecodeFrom(small);
  largest.DecodeFrom(large);
  return Status::OK();
}

}  // namespace nova
