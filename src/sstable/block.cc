#include "sstable/block.h"

#include <algorithm>
#include <cassert>

#include "util/coding.h"

namespace nova {

BlockBuilder::BlockBuilder() : counter_(0), finished_(false) {
  restarts_.push_back(0);
}

void BlockBuilder::Reset() {
  buffer_.clear();
  restarts_.clear();
  restarts_.push_back(0);
  counter_ = 0;
  finished_ = false;
  last_key_.clear();
}

size_t BlockBuilder::CurrentSizeEstimate() const {
  return buffer_.size() + restarts_.size() * sizeof(uint32_t) +
         sizeof(uint32_t);
}

void BlockBuilder::Add(const Slice& key, const Slice& value) {
  assert(!finished_);
  size_t shared = 0;
  if (counter_ < kBlockRestartInterval) {
    // Count shared prefix with the previous key.
    const size_t min_length = std::min(last_key_.size(), key.size());
    while (shared < min_length && last_key_[shared] == key[shared]) {
      shared++;
    }
  } else {
    restarts_.push_back(static_cast<uint32_t>(buffer_.size()));
    counter_ = 0;
  }
  const size_t non_shared = key.size() - shared;

  PutVarint32(&buffer_, static_cast<uint32_t>(shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(non_shared));
  PutVarint32(&buffer_, static_cast<uint32_t>(value.size()));
  buffer_.append(key.data() + shared, non_shared);
  buffer_.append(value.data(), value.size());

  last_key_.resize(shared);
  last_key_.append(key.data() + shared, non_shared);
  counter_++;
}

Slice BlockBuilder::Finish() {
  for (uint32_t restart : restarts_) {
    PutFixed32(&buffer_, restart);
  }
  PutFixed32(&buffer_, static_cast<uint32_t>(restarts_.size()));
  finished_ = true;
  return Slice(buffer_);
}

Block::Block(std::string contents) : contents_(std::move(contents)) {
  if (contents_.size() < sizeof(uint32_t)) {
    num_restarts_ = 0;
    restart_offset_ = 0;
    return;
  }
  num_restarts_ = DecodeFixed32(contents_.data() + contents_.size() - 4);
  restart_offset_ = static_cast<uint32_t>(contents_.size()) - 4 -
                    num_restarts_ * sizeof(uint32_t);
}

class Block::Iter : public Iterator {
 public:
  Iter(const Block* block, const InternalKeyComparator* cmp)
      : block_(block),
        cmp_(cmp),
        current_(block->restart_offset_),
        restart_index_(block->num_restarts_) {}

  bool Valid() const override { return current_ < block_->restart_offset_; }
  Slice key() const override { return key_; }
  Slice value() const override { return value_; }
  Status status() const override { return status_; }

  void Next() override {
    assert(Valid());
    ParseNextKey();
  }

  void Prev() override {
    assert(Valid());
    // Back up to the restart point before current_, then scan forward.
    const uint32_t original = current_;
    while (GetRestartPoint(restart_index_) >= original) {
      if (restart_index_ == 0) {
        current_ = block_->restart_offset_;
        restart_index_ = block_->num_restarts_;
        return;
      }
      restart_index_--;
    }
    SeekToRestartPoint(restart_index_);
    do {
    } while (ParseNextKey() && NextEntryOffset() < original);
  }

  void Seek(const Slice& target) override {
    // Binary search over restart points for the last restart with a key
    // < target, then linear scan.
    uint32_t left = 0;
    uint32_t right = block_->num_restarts_ - 1;
    if (block_->num_restarts_ == 0) {
      current_ = block_->restart_offset_;
      return;
    }
    while (left < right) {
      uint32_t mid = (left + right + 1) / 2;
      SeekToRestartPoint(mid);
      ParseNextKey();
      if (cmp_->Compare(key_, target) < 0) {
        left = mid;
      } else {
        right = mid - 1;
      }
    }
    SeekToRestartPoint(left);
    while (ParseNextKey()) {
      if (cmp_->Compare(key_, target) >= 0) {
        return;
      }
    }
  }

  void SeekToFirst() override {
    SeekToRestartPoint(0);
    ParseNextKey();
  }

  void SeekToLast() override {
    if (block_->num_restarts_ == 0) {
      return;
    }
    SeekToRestartPoint(block_->num_restarts_ - 1);
    while (ParseNextKey() && NextEntryOffset() < block_->restart_offset_) {
    }
  }

 private:
  uint32_t NextEntryOffset() const {
    return static_cast<uint32_t>((value_.data() + value_.size()) -
                                 block_->contents_.data());
  }

  uint32_t GetRestartPoint(uint32_t index) const {
    if (index >= block_->num_restarts_) {
      return block_->restart_offset_;
    }
    return DecodeFixed32(block_->contents_.data() + block_->restart_offset_ +
                         index * sizeof(uint32_t));
  }

  void SeekToRestartPoint(uint32_t index) {
    key_.clear();
    restart_index_ = index;
    uint32_t offset = GetRestartPoint(index);
    // value_ is positioned so NextEntryOffset() returns offset.
    value_ = Slice(block_->contents_.data() + offset, 0);
    current_ = offset;
  }

  bool ParseNextKey() {
    current_ = NextEntryOffset();
    if (current_ >= block_->restart_offset_) {
      current_ = block_->restart_offset_;
      restart_index_ = block_->num_restarts_;
      return false;
    }
    const char* p = block_->contents_.data() + current_;
    const char* limit = block_->contents_.data() + block_->restart_offset_;
    uint32_t shared, non_shared, value_length;
    p = GetVarint32Ptr(p, limit, &shared);
    if (p == nullptr) {
      status_ = Status::Corruption("bad block entry");
      return false;
    }
    p = GetVarint32Ptr(p, limit, &non_shared);
    if (p == nullptr) {
      status_ = Status::Corruption("bad block entry");
      return false;
    }
    p = GetVarint32Ptr(p, limit, &value_length);
    if (p == nullptr || p + non_shared + value_length > limit) {
      status_ = Status::Corruption("bad block entry");
      return false;
    }
    key_.resize(shared);
    key_.append(p, non_shared);
    value_ = Slice(p + non_shared, value_length);
    while (restart_index_ + 1 < block_->num_restarts_ &&
           GetRestartPoint(restart_index_ + 1) < current_) {
      restart_index_++;
    }
    return true;
  }

  const Block* block_;
  const InternalKeyComparator* cmp_;
  uint32_t current_;        // offset of current entry in contents
  uint32_t restart_index_;  // restart block containing current_
  std::string key_;
  Slice value_;
  Status status_;
};

Iterator* Block::NewIterator(const InternalKeyComparator* cmp) const {
  if (num_restarts_ == 0) {
    return NewEmptyIterator();
  }
  return new Iter(this, cmp);
}

}  // namespace nova
