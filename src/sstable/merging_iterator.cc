#include "sstable/merging_iterator.h"

#include <memory>

namespace nova {
namespace {

class MergingIterator : public Iterator {
 public:
  MergingIterator(const InternalKeyComparator* comparator,
                  std::vector<Iterator*> children)
      : comparator_(comparator), current_(nullptr), direction_(kForward) {
    children_.reserve(children.size());
    for (Iterator* child : children) {
      children_.emplace_back(child);
    }
  }

  bool Valid() const override { return current_ != nullptr; }

  void SeekToFirst() override {
    for (auto& child : children_) {
      child->SeekToFirst();
    }
    FindSmallest();
    direction_ = kForward;
  }

  void SeekToLast() override {
    for (auto& child : children_) {
      child->SeekToLast();
    }
    FindLargest();
    direction_ = kReverse;
  }

  void Seek(const Slice& target) override {
    for (auto& child : children_) {
      child->Seek(target);
    }
    FindSmallest();
    direction_ = kForward;
  }

  void Next() override {
    // If we were going backward, reposition all non-current children to
    // the first entry after key() (LevelDB's direction-switch dance).
    if (direction_ != kForward) {
      std::string saved_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(saved_key);
          if (child->Valid() &&
              comparator_->Compare(saved_key, child->key()) == 0) {
            child->Next();
          }
        }
      }
      direction_ = kForward;
    }
    current_->Next();
    FindSmallest();
  }

  void Prev() override {
    if (direction_ != kReverse) {
      std::string saved_key = key().ToString();
      for (auto& child : children_) {
        if (child.get() != current_) {
          child->Seek(saved_key);
          if (child->Valid()) {
            child->Prev();
          } else {
            child->SeekToLast();
          }
        }
      }
      direction_ = kReverse;
    }
    current_->Prev();
    FindLargest();
  }

  Slice key() const override { return current_->key(); }
  Slice value() const override { return current_->value(); }

  Status status() const override {
    for (const auto& child : children_) {
      Status s = child->status();
      if (!s.ok()) {
        return s;
      }
    }
    return Status::OK();
  }

 private:
  enum Direction { kForward, kReverse };

  void FindSmallest() {
    Iterator* smallest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (smallest == nullptr ||
            comparator_->Compare(child->key(), smallest->key()) < 0) {
          smallest = child.get();
        }
      }
    }
    current_ = smallest;
  }

  void FindLargest() {
    Iterator* largest = nullptr;
    for (auto& child : children_) {
      if (child->Valid()) {
        if (largest == nullptr ||
            comparator_->Compare(child->key(), largest->key()) > 0) {
          largest = child.get();
        }
      }
    }
    current_ = largest;
  }

  const InternalKeyComparator* comparator_;
  std::vector<std::unique_ptr<Iterator>> children_;
  Iterator* current_;
  Direction direction_;
};

}  // namespace

Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children) {
  if (children.empty()) {
    return NewEmptyIterator();
  }
  if (children.size() == 1) {
    return children[0];
  }
  return new MergingIterator(comparator, std::move(children));
}

}  // namespace nova
