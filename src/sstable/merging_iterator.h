// K-way merging iterator over child iterators, used by compaction (merge
// inputs), scans (memtables + L0 SSTables + higher levels), and recovery.
#ifndef NOVA_SSTABLE_MERGING_ITERATOR_H_
#define NOVA_SSTABLE_MERGING_ITERATOR_H_

#include <vector>

#include "mem/dbformat.h"
#include "util/iterator.h"

namespace nova {

/// Returns an iterator yielding the union of the children in internal-key
/// order. Takes ownership of the children.
Iterator* NewMergingIterator(const InternalKeyComparator* comparator,
                             std::vector<Iterator*> children);

}  // namespace nova

#endif  // NOVA_SSTABLE_MERGING_ITERATOR_H_
