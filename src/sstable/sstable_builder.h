// Builds one SSTable from internal keys added in sorted order: data blocks
// (flushed at ~block_size), an index block, a bloom filter over user keys,
// and the fragment partition map for scattering across ρ StoCs.
#ifndef NOVA_SSTABLE_SSTABLE_BUILDER_H_
#define NOVA_SSTABLE_SSTABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/format.h"

namespace nova {

struct SSTableBuilderOptions {
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
};

class SSTableBuilder {
 public:
  explicit SSTableBuilder(const SSTableBuilderOptions& options = {});

  /// Keys must arrive in strictly increasing internal-key order.
  void Add(const Slice& internal_key, const Slice& value);

  uint64_t num_entries() const { return num_entries_; }
  /// Data bytes accumulated so far (pre-index/bloom); used to honor the
  /// max SSTable size during compaction.
  uint64_t EstimatedSize() const;
  bool empty() const { return num_entries_ == 0; }

  struct Result {
    std::string data;       // all data blocks, concatenated
    SSTableMetadata meta;   // fragment_sizes populated per num_fragments
  };

  /// Finalize. num_fragments is clamped to [1, #data blocks]; fragments
  /// split only at block boundaries so one block never spans two StoCs.
  Result Finish(uint64_t file_number, int num_fragments);

 private:
  void FlushBlock();

  SSTableBuilderOptions options_;
  InternalKeyComparator icmp_;
  BlockBuilder data_block_;
  std::string data_;
  std::vector<uint64_t> block_offsets_;  // start offset of each data block
  std::vector<std::string> index_keys_;  // last key per flushed block
  std::vector<BlockHandle> index_handles_;
  std::vector<std::string> user_keys_;   // distinct user keys for the bloom
  std::string last_key_;
  std::string first_key_;
  uint64_t num_entries_ = 0;
};

}  // namespace nova

#endif  // NOVA_SSTABLE_SSTABLE_BUILDER_H_
