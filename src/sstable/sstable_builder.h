// Builds one SSTable from internal keys added in sorted order: data blocks
// (flushed at ~block_size), an index block, a bloom filter over user keys,
// and the fragment partition map for scattering across ρ StoCs.
#ifndef NOVA_SSTABLE_SSTABLE_BUILDER_H_
#define NOVA_SSTABLE_SSTABLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/format.h"

namespace nova {

struct SSTableBuilderOptions {
  size_t block_size = 4096;
  int bloom_bits_per_key = 10;
  /// Per-block codec; null stores every block raw (codec 0). Blocks that
  /// do not shrink under the codec fall back to raw individually, so an
  /// incompressible block never pays decompression on the read path.
  const Compressor* compressor = nullptr;
};

class SSTableBuilder {
 public:
  explicit SSTableBuilder(const SSTableBuilderOptions& options = {});

  /// Keys must arrive in strictly increasing internal-key order.
  void Add(const Slice& internal_key, const Slice& value);

  uint64_t num_entries() const { return num_entries_; }
  /// Data bytes accumulated so far (pre-index/bloom); used to honor the
  /// max SSTable size during compaction.
  uint64_t EstimatedSize() const;
  bool empty() const { return num_entries_ == 0; }

  struct Result {
    std::string data;       // all stored data blocks, concatenated
    SSTableMetadata meta;   // fragment_sizes populated per num_fragments
    /// What data.size() would have been with no codec (raw payloads +
    /// trailers): data.size() / raw_bytes is the file's compression
    /// ratio, rolled into RangeStats for the bytes-over-wire benches.
    uint64_t raw_bytes = 0;
  };

  /// Finalize. num_fragments is clamped to [1, #data blocks]; fragments
  /// split only at block boundaries so one block never spans two StoCs.
  Result Finish(uint64_t file_number, int num_fragments);

 private:
  void FlushBlock();

  SSTableBuilderOptions options_;
  InternalKeyComparator icmp_;
  BlockBuilder data_block_;
  std::string data_;
  std::vector<uint64_t> block_offsets_;  // start offset of each data block
  std::vector<std::string> index_keys_;  // last key per flushed block
  std::vector<BlockHandle> index_handles_;
  std::vector<std::string> user_keys_;   // distinct user keys for the bloom
  std::string last_key_;
  std::string first_key_;
  uint64_t num_entries_ = 0;
  uint64_t raw_bytes_ = 0;  // stored size had every block been raw
};

}  // namespace nova

#endif  // NOVA_SSTABLE_SSTABLE_BUILDER_H_
