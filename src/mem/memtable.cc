#include "mem/memtable.h"

#include <set>

#include "util/coding.h"

namespace nova {

static Slice GetLengthPrefixedSliceAt(const char* data) {
  uint32_t len;
  const char* p = data;
  p = GetVarint32Ptr(p, p + 5, &len);
  return Slice(p, len);
}

int MemTable::KeyComparator::operator()(const char* aptr,
                                        const char* bptr) const {
  Slice a = GetLengthPrefixedSliceAt(aptr);
  Slice b = GetLengthPrefixedSliceAt(bptr);
  return comparator.Compare(a, b);
}

MemTable::MemTable(const InternalKeyComparator& comparator, uint64_t id)
    : id_(id), comparator_{comparator}, table_(comparator_, &arena_),
      num_entries_(0) {}

void MemTable::MarkImmutable() {
  std::lock_guard<std::mutex> l(write_mu_);
  immutable_.store(true, std::memory_order_release);
}

bool MemTable::AddIfActive(SequenceNumber seq, ValueType type,
                           const Slice& key, const Slice& value) {
  std::lock_guard<std::mutex> l(write_mu_);
  if (immutable_.load(std::memory_order_relaxed)) {
    return false;
  }
  AddLocked(seq, type, key, value);
  return true;
}

void MemTable::Add(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value) {
  std::lock_guard<std::mutex> l(write_mu_);
  AddLocked(seq, type, key, value);
}

void MemTable::AddLocked(SequenceNumber seq, ValueType type, const Slice& key,
                         const Slice& value) {
  // Entry format:
  //   varint32 internal_key_size | user_key | 8-byte tag |
  //   varint32 value_size       | value
  size_t key_size = key.size();
  size_t val_size = value.size();
  size_t internal_key_size = key_size + 8;
  const size_t encoded_len = VarintLength(internal_key_size) +
                             internal_key_size + VarintLength(val_size) +
                             val_size;
  char* buf = arena_.Allocate(encoded_len);
  char* p = EncodeVarint32(buf, static_cast<uint32_t>(internal_key_size));
  memcpy(p, key.data(), key_size);
  p += key_size;
  EncodeFixed64(p, PackSequenceAndType(seq, type));
  p += 8;
  p = EncodeVarint32(p, static_cast<uint32_t>(val_size));
  memcpy(p, value.data(), val_size);
  assert(p + val_size == buf + encoded_len);
  table_.Insert(buf);
  num_entries_.fetch_add(1, std::memory_order_relaxed);
}

bool MemTable::Get(const LookupKey& lookup_key, std::string* value, Status* s,
                   SequenceNumber* seq) {
  Slice memkey = lookup_key.memtable_key();
  Table::Iterator iter(&table_);
  iter.Seek(memkey.data());
  if (iter.Valid()) {
    // iter is positioned at the first entry with internal key >= the
    // target (same user key, seq <= snapshot, or a later user key).
    const char* entry = iter.key();
    uint32_t key_length;
    const char* key_ptr = GetVarint32Ptr(entry, entry + 5, &key_length);
    if (comparator_.comparator.CompareUserKeys(
            Slice(key_ptr, key_length - 8), lookup_key.user_key()) == 0) {
      const uint64_t tag = DecodeFixed64(key_ptr + key_length - 8);
      if (seq != nullptr) {
        *seq = tag >> 8;
      }
      switch (static_cast<ValueType>(tag & 0xff)) {
        case kTypeValue: {
          Slice v = GetLengthPrefixedSliceAt(key_ptr + key_length);
          value->assign(v.data(), v.size());
          *s = Status::OK();
          return true;
        }
        case kTypeDeletion:
          *s = Status::NotFound(Slice());
          return true;
      }
    }
  }
  return false;
}

uint64_t MemTable::CountUniqueKeys() const {
  Table::Iterator iter(&table_);
  iter.SeekToFirst();
  uint64_t unique = 0;
  std::string prev;
  bool has_prev = false;
  while (iter.Valid()) {
    Slice ikey = GetLengthPrefixedSliceAt(iter.key());
    Slice user_key = ExtractUserKey(ikey);
    if (!has_prev || Slice(prev) != user_key) {
      unique++;
      prev.assign(user_key.data(), user_key.size());
      has_prev = true;
    }
    iter.Next();
  }
  return unique;
}

std::string MemTable::SmallestUserKey() const {
  Table::Iterator iter(&table_);
  iter.SeekToFirst();
  if (!iter.Valid()) {
    return "";
  }
  Slice ikey = GetLengthPrefixedSliceAt(iter.key());
  return ExtractUserKey(ikey).ToString();
}

std::string MemTable::LargestUserKey() const {
  Table::Iterator iter(&table_);
  iter.SeekToLast();
  if (!iter.Valid()) {
    return "";
  }
  Slice ikey = GetLengthPrefixedSliceAt(iter.key());
  return ExtractUserKey(ikey).ToString();
}

class MemTableIterator : public Iterator {
 public:
  explicit MemTableIterator(MemTable::Table* table) : iter_(table) {}

  bool Valid() const override { return iter_.Valid(); }
  void Seek(const Slice& k) override {
    // Build a temporary memtable key for the seek target.
    scratch_.clear();
    PutVarint32(&scratch_, static_cast<uint32_t>(k.size()));
    scratch_.append(k.data(), k.size());
    iter_.Seek(scratch_.data());
  }
  void SeekToFirst() override { iter_.SeekToFirst(); }
  void SeekToLast() override { iter_.SeekToLast(); }
  void Next() override { iter_.Next(); }
  void Prev() override { iter_.Prev(); }
  Slice key() const override { return GetLengthPrefixedSliceAt(iter_.key()); }
  Slice value() const override {
    Slice key_slice = GetLengthPrefixedSliceAt(iter_.key());
    return GetLengthPrefixedSliceAt(key_slice.data() + key_slice.size());
  }
  Status status() const override { return Status::OK(); }

 private:
  MemTable::Table::Iterator iter_;
  std::string scratch_;
};

Iterator* MemTable::NewIterator() { return new MemTableIterator(&table_); }

}  // namespace nova
