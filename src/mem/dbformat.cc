#include "mem/dbformat.h"

#include <cstring>

namespace nova {

void AppendInternalKey(std::string* result, const ParsedInternalKey& key) {
  result->append(key.user_key.data(), key.user_key.size());
  PutFixed64(result, PackSequenceAndType(key.sequence, key.type));
}

bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result) {
  if (internal_key.size() < 8) {
    return false;
  }
  uint64_t tag = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  uint8_t c = tag & 0xff;
  result->sequence = tag >> 8;
  result->type = static_cast<ValueType>(c);
  result->user_key = Slice(internal_key.data(), internal_key.size() - 8);
  return c <= static_cast<uint8_t>(kTypeValue);
}

int InternalKeyComparator::Compare(const Slice& akey, const Slice& bkey) const {
  int r = ExtractUserKey(akey).compare(ExtractUserKey(bkey));
  if (r == 0) {
    const uint64_t anum = DecodeFixed64(akey.data() + akey.size() - 8);
    const uint64_t bnum = DecodeFixed64(bkey.data() + bkey.size() - 8);
    if (anum > bnum) {
      r = -1;
    } else if (anum < bnum) {
      r = +1;
    }
  }
  return r;
}

LookupKey::LookupKey(const Slice& user_key, SequenceNumber sequence) {
  size_t usize = user_key.size();
  size_t needed = usize + 13;  // conservative
  char* dst;
  if (needed <= sizeof(space_)) {
    dst = space_;
  } else {
    dst = new char[needed];
  }
  start_ = dst;
  dst = EncodeVarint32(dst, static_cast<uint32_t>(usize + 8));
  kstart_ = dst;
  memcpy(dst, user_key.data(), usize);
  dst += usize;
  EncodeFixed64(dst, PackSequenceAndType(sequence, kValueTypeForSeek));
  dst += 8;
  end_ = dst;
}

LookupKey::~LookupKey() {
  if (start_ != space_) {
    delete[] start_;
  }
}

}  // namespace nova
