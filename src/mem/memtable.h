// MemTable: a sorted in-memory table of (internal key, value) entries over a
// skiplist. Nova-LSM keeps many memtables per range (δ of them, α active —
// one active memtable per Drange, more for duplicated Dranges). Each
// memtable carries:
//   * a unique id (`mid`) used by the lookup index's MIDToTable indirection
//     (paper Section 4.1.1),
//   * a generation id incremented by Drange reorganizations so flushes can
//     preserve ordering across boundary changes (paper Section 4.1),
//   * the id of its Drange and of its LogC log file.
// Adds take a per-memtable mutex (writers to *different* memtables never
// contend — the point of multiple active memtables); reads are lock-free.
#ifndef NOVA_MEM_MEMTABLE_H_
#define NOVA_MEM_MEMTABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "mem/arena.h"
#include "mem/dbformat.h"
#include "mem/skiplist.h"
#include "util/iterator.h"
#include "util/status.h"

namespace nova {

class MemTable {
 public:
  MemTable(const InternalKeyComparator& comparator, uint64_t id);
  ~MemTable() = default;

  MemTable(const MemTable&) = delete;
  MemTable& operator=(const MemTable&) = delete;

  /// Thread-safe append of an entry. type is kTypeValue or kTypeDeletion.
  void Add(SequenceNumber seq, ValueType type, const Slice& key,
           const Slice& value);

  /// Like Add, but fails (returns false) if the table has been marked
  /// immutable. MarkImmutable() and this method synchronize on the write
  /// mutex, so after MarkImmutable() returns, every successful AddIfActive
  /// is visible to flush iterators — a put can never vanish into a table
  /// that is being flushed.
  bool AddIfActive(SequenceNumber seq, ValueType type, const Slice& key,
                   const Slice& value);

  /// If the memtable contains a value for key at or before the snapshot in
  /// lookup_key, stores it in *value and returns true. If it contains a
  /// deletion, stores NotFound in *s and returns true. *seq (optional)
  /// receives the sequence number of the matched entry.
  bool Get(const LookupKey& lookup_key, std::string* value, Status* s,
           SequenceNumber* seq = nullptr);

  /// Iterator over internal keys. Safe concurrently with Adds. The caller
  /// must keep this MemTable alive while the iterator is in use.
  Iterator* NewIterator();

  size_t ApproximateMemoryUsage() const { return arena_.MemoryUsage(); }
  /// Number of entries added (versions, not unique keys).
  uint64_t num_entries() const {
    return num_entries_.load(std::memory_order_relaxed);
  }
  /// Exact count of distinct user keys (walks the table; used by the flush
  /// policy's "<100 unique keys" test, paper Section 4.2).
  uint64_t CountUniqueKeys() const;

  /// Smallest/largest user key currently present; empty strings if empty.
  /// (Walks head/tail of the skiplist; O(log n).)
  std::string SmallestUserKey() const;
  std::string LargestUserKey() const;

  uint64_t id() const { return id_; }

  uint32_t generation() const {
    return generation_.load(std::memory_order_relaxed);
  }
  void set_generation(uint32_t g) {
    generation_.store(g, std::memory_order_relaxed);
  }

  int drange_id() const { return drange_id_.load(std::memory_order_relaxed); }
  void set_drange_id(int d) {
    drange_id_.store(d, std::memory_order_relaxed);
  }

  uint64_t log_file_id() const {
    return log_file_id_.load(std::memory_order_relaxed);
  }
  void set_log_file_id(uint64_t id) {
    log_file_id_.store(id, std::memory_order_relaxed);
  }

  /// Marked when the table stops accepting writes.
  bool immutable() const { return immutable_.load(std::memory_order_acquire); }
  void MarkImmutable();

 private:
  friend class MemTableIterator;

  struct KeyComparator {
    InternalKeyComparator comparator;
    /// Entries are length-prefixed internal keys.
    int operator()(const char* a, const char* b) const;
  };

  typedef SkipList<const char*, KeyComparator> Table;

  void AddLocked(SequenceNumber seq, ValueType type, const Slice& key,
                 const Slice& value);

  const uint64_t id_;
  KeyComparator comparator_;
  Arena arena_;
  Table table_;
  std::mutex write_mu_;
  std::atomic<uint64_t> num_entries_;
  std::atomic<uint32_t> generation_{0};
  std::atomic<int> drange_id_{-1};
  std::atomic<uint64_t> log_file_id_{0};
  std::atomic<bool> immutable_{false};
};

using MemTableRef = std::shared_ptr<MemTable>;

}  // namespace nova

#endif  // NOVA_MEM_MEMTABLE_H_
