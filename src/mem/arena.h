// Arena: block-based bump allocator backing one memtable's skiplist nodes
// and key/value copies. Freed wholesale when the memtable is dropped.
#ifndef NOVA_MEM_ARENA_H_
#define NOVA_MEM_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace nova {

class Arena {
 public:
  Arena();
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  char* Allocate(size_t bytes);
  /// Aligned for pointer-sized access (skiplist nodes).
  char* AllocateAligned(size_t bytes);

  /// Total memory footprint of the arena (blocks + bookkeeping).
  size_t MemoryUsage() const {
    return memory_usage_.load(std::memory_order_relaxed);
  }

 private:
  char* AllocateFallback(size_t bytes);
  char* AllocateNewBlock(size_t block_bytes);

  char* alloc_ptr_;
  size_t alloc_bytes_remaining_;
  std::vector<char*> blocks_;
  std::atomic<size_t> memory_usage_;
};

}  // namespace nova

#endif  // NOVA_MEM_ARENA_H_
