// Internal key format shared by memtables, SSTables and compaction.
//
// An internal key is: user_key | 8-byte tag, where tag packs a 56-bit
// monotonically increasing sequence number (the version of the key, paper
// Section 2.1) with an 8-bit value type. Internal keys order by user key
// ascending, then sequence number descending, so the newest version of a
// key sorts first.
#ifndef NOVA_MEM_DBFORMAT_H_
#define NOVA_MEM_DBFORMAT_H_

#include <cstdint>
#include <string>

#include "util/coding.h"
#include "util/slice.h"

namespace nova {

typedef uint64_t SequenceNumber;

static const SequenceNumber kMaxSequenceNumber = ((0x1ull << 56) - 1);

enum ValueType : uint8_t {
  kTypeDeletion = 0x0,
  kTypeValue = 0x1,
};
// When seeking, we want all entries with sequence <= snapshot; kTypeValue
// sorts before kTypeDeletion at equal (key, seq) in our descending order.
static const ValueType kValueTypeForSeek = kTypeValue;

inline uint64_t PackSequenceAndType(SequenceNumber seq, ValueType t) {
  return (seq << 8) | t;
}

struct ParsedInternalKey {
  Slice user_key;
  SequenceNumber sequence = 0;
  ValueType type = kTypeValue;

  ParsedInternalKey() = default;
  ParsedInternalKey(const Slice& u, SequenceNumber seq, ValueType t)
      : user_key(u), sequence(seq), type(t) {}
};

void AppendInternalKey(std::string* result, const ParsedInternalKey& key);
bool ParseInternalKey(const Slice& internal_key, ParsedInternalKey* result);

inline Slice ExtractUserKey(const Slice& internal_key) {
  return Slice(internal_key.data(), internal_key.size() - 8);
}

inline SequenceNumber ExtractSequence(const Slice& internal_key) {
  uint64_t tag = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return tag >> 8;
}

inline ValueType ExtractValueType(const Slice& internal_key) {
  uint64_t tag = DecodeFixed64(internal_key.data() + internal_key.size() - 8);
  return static_cast<ValueType>(tag & 0xff);
}

/// Orders internal keys: user key ascending (bytewise), then sequence
/// descending, then type descending.
class InternalKeyComparator {
 public:
  InternalKeyComparator() = default;

  int Compare(const Slice& a, const Slice& b) const;
  int CompareUserKeys(const Slice& a, const Slice& b) const {
    return a.compare(b);
  }
};

/// Helper bundling the two encodings of a get's target key:
/// memtable_key = varint32(len(ikey)) | ikey ;  internal_key = ikey.
class LookupKey {
 public:
  LookupKey(const Slice& user_key, SequenceNumber sequence);
  ~LookupKey();

  LookupKey(const LookupKey&) = delete;
  LookupKey& operator=(const LookupKey&) = delete;

  Slice memtable_key() const { return Slice(start_, end_ - start_); }
  Slice internal_key() const { return Slice(kstart_, end_ - kstart_); }
  Slice user_key() const { return Slice(kstart_, end_ - kstart_ - 8); }

 private:
  const char* start_;
  const char* kstart_;
  const char* end_;
  char space_[200];  // avoids allocation for short keys
};

/// An owned internal key (used in file metadata: smallest/largest).
class InternalKey {
 public:
  InternalKey() = default;
  InternalKey(const Slice& user_key, SequenceNumber s, ValueType t) {
    AppendInternalKey(&rep_, ParsedInternalKey(user_key, s, t));
  }

  void DecodeFrom(const Slice& s) { rep_.assign(s.data(), s.size()); }
  Slice Encode() const { return rep_; }
  Slice user_key() const { return ExtractUserKey(rep_); }
  bool empty() const { return rep_.empty(); }
  void Clear() { rep_.clear(); }

 private:
  std::string rep_;
};

}  // namespace nova

#endif  // NOVA_MEM_DBFORMAT_H_
