// In-process simulated cluster: η LTCs + β StoCs on one RDMA fabric, each
// node with its own CPU throttle, and each StoC with its own simulated
// disk and durable block store (which survive StoC crashes). This is the
// repo's stand-in for the paper's 10-node CloudLab testbed (DESIGN.md
// Section 2) and the entry point used by integration tests, benchmarks
// and examples.
#ifndef NOVA_COORD_CLUSTER_H_
#define NOVA_COORD_CLUSTER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "coord/coordinator.h"
#include "ltc/ltc_server.h"
#include "stoc/stoc_server.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"

namespace nova {
namespace coord {

struct ClusterOptions {
  int num_ltcs = 1;   // η
  int num_stocs = 1;  // β
  /// Interior split points partitioning the keyspace into ranges, assigned
  /// to LTCs round-robin blocks (ω = (splits+1)/η ranges per LTC).
  std::vector<std::string> split_points;

  DeviceConfig device;
  stoc::StocServerOptions stoc;
  ltc::LtcServerOptions ltc;
  /// Failure-detector tuning (suspect threshold, death verdict delay,
  /// rejoin probes). Tests and the MTTF bench shrink dead_after_ms so a
  /// KillStoc turns into a death verdict — and automatic repair — fast.
  MembershipOptions membership;
  /// Template for every range (theta, δ, τ, log mode, ...). range_id,
  /// lower, upper are filled per range.
  ltc::RangeEngineOptions range;
  /// SSTable placement template (ρ, power-of-d, replication, parity).
  lsm::PlacementOptions placement;
};

class Cluster {
 public:
  explicit Cluster(const ClusterOptions& options);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  void Start();
  void Stop();

  // --- Data path (used by clients/benchmarks; routed via the config) ---
  Status Put(const Slice& key, const Slice& value);
  Status Get(const Slice& key, std::string* value);
  Status Delete(const Slice& key);
  Status Scan(const Slice& start_key, int num_records,
              std::vector<std::pair<std::string, std::string>>* out);

  // --- Membership & elasticity (paper Sections 8.2.6, 9) ---
  void KillStoc(int index);
  void RestartStoc(int index);
  /// Crash an LTC: its server stops, memtables are lost.
  void KillLtc(int index);
  /// Recover a crashed LTC's ranges onto dst_ltc (or spread across all
  /// alive LTCs when dst_ltc < 0) from manifests + log records.
  Status RecoverLtcRanges(int crashed_ltc, int dst_ltc,
                          int recovery_threads);
  /// Live-migrate one range between LTCs (metadata + log replay).
  Status MigrateRange(uint32_t range_id, int dst_ltc, int recovery_threads);
  /// Add a new StoC (elastic scale-out); new SSTables use it immediately.
  int AddStoc();
  /// Gracefully remove a StoC: its blocks are copied elsewhere first.
  Status RemoveStocGraceful(int index);
  /// Delete files on a (re-added) StoC that no range references anymore.
  Status GcStocFiles(int index);

  // --- Accessors ---
  ltc::LtcServer* ltc(int index) { return ltcs_[index].get(); }
  stoc::StocServer* stoc(int index) { return stocs_[index].get(); }
  SimulatedDevice* device(int index) { return devices_[index].get(); }
  BlockStore* block_store(int index) { return stores_[index].get(); }
  rdma::RdmaFabric* fabric() { return &fabric_; }
  Coordinator* coordinator() { return &coordinator_; }
  int num_ltcs() const { return static_cast<int>(ltcs_.size()); }
  int num_stocs() const { return static_cast<int>(stocs_.size()); }
  std::vector<rdma::NodeId> AliveStocNodes();
  const ClusterOptions& options() const { return options_; }

  static rdma::NodeId LtcNode(int index) { return index; }
  static rdma::NodeId StocNode(int index) { return 1000 + index; }

  /// Aggregate stats over all LTCs.
  ltc::RangeStats TotalStats();

 private:
  void WireStoc(int index);
  void RefreshPlacements();
  ltc::RangeEngineOptions RangeOptionsFor(const RangeAssignment& r);

  ClusterOptions options_;
  rdma::RdmaFabric fabric_;
  Coordinator coordinator_;

  std::vector<std::unique_ptr<SimulatedDevice>> devices_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<stoc::StocServer>> stocs_;
  std::vector<std::unique_ptr<rdma::RpcEndpoint>> stoc_client_endpoints_;
  std::vector<std::unique_ptr<stoc::StocClient>> stoc_clients_;
  std::vector<bool> stoc_alive_;

  std::vector<std::unique_ptr<ltc::LtcServer>> ltcs_;
  std::vector<bool> ltc_alive_;

  std::mutex config_mu_;
  bool started_ = false;
};

}  // namespace coord
}  // namespace nova

#endif  // NOVA_COORD_CLUSTER_H_
