#include "coord/coordinator.h"

namespace nova {
namespace coord {

int Configuration::LtcForKey(const Slice& key) const {
  for (const auto& r : ranges) {
    bool ge_lower = r.lower.empty() || key.compare(r.lower) >= 0;
    bool lt_upper = r.upper.empty() || key.compare(r.upper) < 0;
    if (ge_lower && lt_upper) {
      return r.ltc_index;
    }
  }
  return -1;
}

Configuration Coordinator::config() const {
  std::lock_guard<std::mutex> l(mu_);
  return config_;
}

void Coordinator::UpdateConfig(Configuration config) {
  std::lock_guard<std::mutex> l(mu_);
  config.epoch = config_.epoch + 1;
  config_ = std::move(config);
}

uint64_t Coordinator::epoch() const {
  std::lock_guard<std::mutex> l(mu_);
  return config_.epoch;
}

void Coordinator::GrantLease(rdma::NodeId node) {
  {
    std::lock_guard<std::mutex> l(mu_);
    leases_[node] = Clock::now() + std::chrono::milliseconds(lease_ms_);
  }
  membership_.NodeJoined(node);
}

bool Coordinator::Heartbeat(rdma::NodeId node) {
  {
    std::lock_guard<std::mutex> l(mu_);
    auto it = leases_.find(node);
    if (it == leases_.end() || it->second < Clock::now()) {
      // Expired: the node must stop serving. Note the missed renewal so
      // the death clock starts even if no client traffic touches it.
      if (it != leases_.end()) leases_.erase(it);
      membership_.MarkSuspect(node);
      return false;
    }
    it->second = Clock::now() + std::chrono::milliseconds(lease_ms_);
  }
  membership_.ReportSuccess(node);
  return true;
}

bool Coordinator::IsLeaseValid(rdma::NodeId node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = leases_.find(node);
  return it != leases_.end() && it->second >= Clock::now();
}

void Coordinator::ExpireLease(rdma::NodeId node) {
  {
    std::lock_guard<std::mutex> l(mu_);
    leases_.erase(node);
  }
  membership_.MarkSuspect(node);
}

}  // namespace coord
}  // namespace nova
