// Per-StoC health membership (ISSUE 9 tentpole, layer 1): a state machine
//
//     alive --(failure_threshold consecutive RPC failures,
//              or an expired lease)--> suspect
//     suspect --(dead_after_ms with no successful contact)--> dead
//     suspect --(one successful contact)--> alive
//     dead --(lease re-granted, i.e. the process came back)--> probing
//     probing --(rejoin_probes consecutive successes)--> alive
//
// driven from two directions: the Coordinator's lease bookkeeping
// (authoritative verdicts: expiry, re-grant) and passive observations
// from `StocClient` (per-call ReportSuccess/ReportFailure — the circuit
// breaker's sensor). Suspect and dead nodes are not routable; a trickle
// of half-open probes (AllowProbe) is allowed through so recovery is
// detected without a thundering herd.
//
// The suspect->dead promotion is evaluated lazily on read (health(),
// IsRoutable(), DeadStocs()) so no dedicated timer thread is needed:
// any reader — the repair scan, a routing decision — observes the
// promotion at the same wall-clock boundary.
#ifndef NOVA_COORD_MEMBERSHIP_H_
#define NOVA_COORD_MEMBERSHIP_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "rdma/fabric.h"

namespace nova {
namespace coord {

enum class NodeHealth { kAlive, kSuspect, kDead, kProbing };

const char* NodeHealthName(NodeHealth h);

struct MembershipOptions {
  /// Consecutive RPC failures before alive -> suspect.
  int failure_threshold = 3;
  /// Time in suspect with no successful contact before the death verdict.
  int dead_after_ms = 2000;
  /// Consecutive probe successes before probing -> alive.
  int rejoin_probes = 2;
  /// Minimum spacing between half-open probes to a suspect/probing node.
  int probe_interval_ms = 100;
};

class Membership {
 public:
  explicit Membership(MembershipOptions options = MembershipOptions())
      : options_(options) {}

  Membership(const Membership&) = delete;
  Membership& operator=(const Membership&) = delete;

  /// A node joined (lease granted). A brand-new or alive node is admitted
  /// at kAlive; a node previously declared dead re-enters at kProbing and
  /// must earn its way back via AllowProbe + ReportSuccess.
  void NodeJoined(rdma::NodeId node);

  /// Authoritative bad news from the coordinator (lease expired / force
  /// expire): alive -> suspect immediately, starting the death clock.
  void MarkSuspect(rdma::NodeId node);
  /// Force the death verdict (tests, operator action).
  void MarkDead(rdma::NodeId node);

  /// Passive per-RPC observations from clients.
  void ReportSuccess(rdma::NodeId node);
  void ReportFailure(rdma::NodeId node);

  NodeHealth health(rdma::NodeId node) const;

  /// Circuit breaker: route normal traffic only to alive nodes. Unknown
  /// nodes are routable (membership is opt-in per node).
  bool IsRoutable(rdma::NodeId node) const;

  /// Half-open gate: true if a single probe may be sent to a
  /// suspect/probing node now (spaced probe_interval_ms apart). Alive
  /// nodes always pass; dead nodes never do (they must rejoin via
  /// NodeJoined first).
  bool AllowProbe(rdma::NodeId node);

  /// Nodes currently under the death verdict (promotes due suspects).
  std::vector<rdma::NodeId> DeadNodes() const;

  /// Monotonic counter bumped on every state transition; cheap change
  /// detection for pollers (repair scan, placement refresh).
  uint64_t version() const;

  MembershipOptions options() const { return options_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct NodeState {
    NodeHealth health = NodeHealth::kAlive;
    int consecutive_failures = 0;
    int probe_successes = 0;
    Clock::time_point suspect_since{};
    Clock::time_point last_probe{};
  };

  /// Promote suspect -> dead if the death clock ran out. Caller holds mu_.
  void PromoteLocked(NodeState* s) const;

  MembershipOptions options_;
  mutable std::mutex mu_;
  mutable std::map<rdma::NodeId, NodeState> nodes_;
  mutable uint64_t version_ = 0;
};

}  // namespace coord
}  // namespace nova

#endif  // NOVA_COORD_MEMBERSHIP_H_
