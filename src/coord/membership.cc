#include "coord/membership.h"

namespace nova {
namespace coord {

const char* NodeHealthName(NodeHealth h) {
  switch (h) {
    case NodeHealth::kAlive:
      return "alive";
    case NodeHealth::kSuspect:
      return "suspect";
    case NodeHealth::kDead:
      return "dead";
    case NodeHealth::kProbing:
      return "probing";
  }
  return "unknown";
}

void Membership::NodeJoined(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    nodes_[node] = NodeState();
    version_++;
    return;
  }
  NodeState& s = it->second;
  if (s.health == NodeHealth::kDead) {
    // The process came back: half-open, earn trust via probes.
    s.health = NodeHealth::kProbing;
    s.probe_successes = 0;
    s.consecutive_failures = 0;
    s.last_probe = Clock::time_point();
    version_++;
  } else if (s.health == NodeHealth::kSuspect) {
    s.health = NodeHealth::kAlive;
    s.consecutive_failures = 0;
    version_++;
  }
}

void Membership::MarkSuspect(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  NodeState& s = nodes_[node];
  if (s.health == NodeHealth::kAlive || s.health == NodeHealth::kProbing) {
    s.health = NodeHealth::kSuspect;
    s.suspect_since = Clock::now();
    s.probe_successes = 0;
    version_++;
  }
}

void Membership::MarkDead(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  NodeState& s = nodes_[node];
  if (s.health != NodeHealth::kDead) {
    s.health = NodeHealth::kDead;
    version_++;
  }
}

void Membership::ReportSuccess(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  NodeState& s = it->second;
  s.consecutive_failures = 0;
  if (s.health == NodeHealth::kSuspect) {
    s.health = NodeHealth::kAlive;
    version_++;
  } else if (s.health == NodeHealth::kProbing) {
    s.probe_successes++;
    if (s.probe_successes >= options_.rejoin_probes) {
      s.health = NodeHealth::kAlive;
      s.probe_successes = 0;
      version_++;
    }
  }
}

void Membership::ReportFailure(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return;
  NodeState& s = it->second;
  s.consecutive_failures++;
  if (s.health == NodeHealth::kAlive &&
      s.consecutive_failures >= options_.failure_threshold) {
    s.health = NodeHealth::kSuspect;
    s.suspect_since = Clock::now();
    version_++;
  } else if (s.health == NodeHealth::kProbing) {
    // A failed probe resets the trust counter and restarts the death
    // clock from suspect — the node is not actually back.
    s.health = NodeHealth::kSuspect;
    s.suspect_since = Clock::now();
    s.probe_successes = 0;
    version_++;
  }
}

void Membership::PromoteLocked(NodeState* s) const {
  if (s->health == NodeHealth::kSuspect &&
      Clock::now() - s->suspect_since >=
          std::chrono::milliseconds(options_.dead_after_ms)) {
    s->health = NodeHealth::kDead;
    version_++;
  }
}

NodeHealth Membership::health(rdma::NodeId node) const {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return NodeHealth::kAlive;
  PromoteLocked(&it->second);
  return it->second.health;
}

bool Membership::IsRoutable(rdma::NodeId node) const {
  return health(node) == NodeHealth::kAlive;
}

bool Membership::AllowProbe(rdma::NodeId node) {
  std::lock_guard<std::mutex> l(mu_);
  auto it = nodes_.find(node);
  if (it == nodes_.end()) return true;
  NodeState& s = it->second;
  PromoteLocked(&s);
  switch (s.health) {
    case NodeHealth::kAlive:
      return true;
    case NodeHealth::kDead:
      return false;
    case NodeHealth::kSuspect:
    case NodeHealth::kProbing: {
      auto now = Clock::now();
      if (now - s.last_probe >=
          std::chrono::milliseconds(options_.probe_interval_ms)) {
        s.last_probe = now;
        return true;
      }
      return false;
    }
  }
  return false;
}

std::vector<rdma::NodeId> Membership::DeadNodes() const {
  std::lock_guard<std::mutex> l(mu_);
  std::vector<rdma::NodeId> dead;
  for (auto& [node, s] : nodes_) {
    PromoteLocked(&s);
    if (s.health == NodeHealth::kDead) dead.push_back(node);
  }
  return dead;
}

uint64_t Membership::version() const {
  std::lock_guard<std::mutex> l(mu_);
  return version_;
}

}  // namespace coord
}  // namespace nova
