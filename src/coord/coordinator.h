// The coordinator (paper Section 3, Figure 3): maintains the cluster
// configuration — which LTC owns each range, which StoCs exist — versioned
// by an epoch, and grants time-based leases to LTCs and StoCs. Clients
// cache the configuration and re-fetch on epoch change; a node that cannot
// renew its lease must stop serving (tested, not wall-clock enforced in
// the data path).
#ifndef NOVA_COORD_COORDINATOR_H_
#define NOVA_COORD_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "coord/membership.h"
#include "rdma/fabric.h"
#include "util/status.h"

namespace nova {
namespace coord {

struct RangeAssignment {
  uint32_t range_id = 0;
  std::string lower;
  std::string upper;
  int ltc_index = 0;  // index into the cluster's LTC list
};

struct Configuration {
  uint64_t epoch = 0;
  std::vector<RangeAssignment> ranges;
  std::vector<int> alive_stocs;  // indices into the cluster's StoC list

  /// LTC index owning key, or -1.
  int LtcForKey(const Slice& key) const;
};

class Coordinator {
 public:
  explicit Coordinator(int lease_ms = 1000,
                       MembershipOptions membership_options = {})
      : lease_ms_(lease_ms), membership_(membership_options) {}

  Configuration config() const;
  /// Replace the configuration (bumps the epoch).
  void UpdateConfig(Configuration config);
  uint64_t epoch() const;

  // --- Leases (Section 3: piggybacked on heartbeats) ---
  /// Grants/renews the lease and admits the node into membership (a node
  /// previously declared dead re-enters at kProbing — see membership.h).
  void GrantLease(rdma::NodeId node);
  /// Heartbeat: renews the lease; false if it had already expired (the
  /// node must stop serving and re-join via GrantLease). A successful
  /// heartbeat also counts as a health contact: it clears a suspect
  /// verdict and advances a probing node toward alive.
  bool Heartbeat(rdma::NodeId node);
  bool IsLeaseValid(rdma::NodeId node) const;
  /// Force-expire (simulates losing contact with the node). The node
  /// immediately becomes suspect; the membership death clock starts.
  void ExpireLease(rdma::NodeId node);

  /// Per-node health state machine (ISSUE 9). Shared with StocClients
  /// (circuit breaker) and the RepairManager (death verdicts); the
  /// Coordinator outlives both in every composition (Cluster, tests).
  Membership* membership() { return &membership_; }

 private:
  using Clock = std::chrono::steady_clock;

  int lease_ms_;
  mutable std::mutex mu_;
  Configuration config_;
  std::map<rdma::NodeId, Clock::time_point> leases_;
  Membership membership_;
};

}  // namespace coord
}  // namespace nova

#endif  // NOVA_COORD_COORDINATOR_H_
