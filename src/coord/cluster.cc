#include "coord/cluster.h"

#include <chrono>
#include <thread>

#include "lsm/compaction.h"
#include "util/logging.h"

namespace nova {
namespace coord {

Cluster::Cluster(const ClusterOptions& options)
    : options_(options), coordinator_(1000, options.membership) {}

Cluster::~Cluster() { Stop(); }

std::vector<rdma::NodeId> Cluster::AliveStocNodes() {
  std::vector<rdma::NodeId> nodes;
  for (size_t i = 0; i < stocs_.size(); i++) {
    if (stoc_alive_[i]) {
      nodes.push_back(StocNode(static_cast<int>(i)));
    }
  }
  return nodes;
}

void Cluster::WireStoc(int index) {
  stocs_[index]->set_compaction_handler(
      [this, index](rdma::NodeId, const Slice& payload) -> std::string {
        lsm::CompactionJob job;
        if (!job.Deserialize(payload).ok()) {
          return "";
        }
        uint32_t range_id = 0;
        if (!job.inputs.empty() && !job.inputs[0]->meta_replicas.empty()) {
          range_id =
              stoc::FileIdRange(job.inputs[0]->meta_replicas[0].file_id);
        }
        lsm::TableCache cache(stoc_clients_[index].get());
        lsm::PlacementOptions p = options_.placement;
        p.stocs = AliveStocNodes();
        p.range_id = range_id;
        p.max_sstable_size = options_.range.max_sstable_size;
        lsm::SSTablePlacer placer(stoc_clients_[index].get(), p);
        lsm::CompactionExecutor exec(&cache, &placer,
                                     stocs_[index]->throttle());
        lsm::CompactionResult result;
        if (!exec.Run(job, &result).ok()) {
          return "";  // the LTC retries the job later
        }
        return result.Serialize();
      });
}

ltc::RangeEngineOptions Cluster::RangeOptionsFor(const RangeAssignment& r) {
  ltc::RangeEngineOptions opt = options_.range;
  opt.range_id = r.range_id;
  opt.lower = r.lower;
  opt.upper = r.upper;
  return opt;
}

void Cluster::RefreshPlacements() {
  std::vector<rdma::NodeId> nodes = AliveStocNodes();
  for (size_t l = 0; l < ltcs_.size(); l++) {
    if (!ltc_alive_[l]) {
      continue;
    }
    for (ltc::RangeEngine* engine : ltcs_[l]->ranges()) {
      engine->placer()->UpdateStocs(nodes);
    }
  }
}

void Cluster::Start() {
  if (started_) {
    return;
  }
  started_ = true;

  for (int i = 0; i < options_.num_stocs; i++) {
    devices_.push_back(std::make_unique<SimulatedDevice>(
        "stoc-" + std::to_string(i), options_.device));
    stores_.push_back(std::make_unique<BlockStore>());
    stocs_.push_back(std::make_unique<stoc::StocServer>(
        &fabric_, StocNode(i), devices_.back().get(), stores_.back().get(),
        options_.stoc));
    stoc_clients_.push_back(
        std::make_unique<stoc::StocClient>(stocs_.back()->endpoint()));
    stoc_clients_.back()->set_membership(coordinator_.membership());
    stoc_alive_.push_back(true);
    WireStoc(i);
    stocs_[i]->Start();
    coordinator_.GrantLease(StocNode(i));
  }

  for (int i = 0; i < options_.num_ltcs; i++) {
    ltc::LtcServerOptions lopt = options_.ltc;
    lopt.node = LtcNode(i);
    ltcs_.push_back(std::make_unique<ltc::LtcServer>(&fabric_, lopt));
    // Every LTC's StoC client enforces the coordinator's membership
    // verdicts (circuit breaker + placement exclusion + repair trigger).
    ltcs_.back()->stoc_client()->set_membership(coordinator_.membership());
    ltc_alive_.push_back(true);
    ltcs_[i]->Start();
    coordinator_.GrantLease(LtcNode(i));
  }

  // Partition the keyspace into ranges and assign contiguous blocks of
  // ranges to LTCs (the paper's range partitioning, Section 3).
  Configuration config;
  int num_ranges = static_cast<int>(options_.split_points.size()) + 1;
  std::vector<rdma::NodeId> stoc_nodes = AliveStocNodes();
  for (int r = 0; r < num_ranges; r++) {
    RangeAssignment a;
    a.range_id = static_cast<uint32_t>(r);
    a.lower = (r == 0) ? "" : options_.split_points[r - 1];
    a.upper = (r == num_ranges - 1) ? "" : options_.split_points[r];
    a.ltc_index = r * options_.num_ltcs / num_ranges;
    config.ranges.push_back(a);

    ltc::RangeEngine* engine =
        ltcs_[a.ltc_index]->AddRange(RangeOptionsFor(a), stoc_nodes);
    lsm::PlacementOptions p = options_.placement;
    p.stocs = stoc_nodes;
    p.range_id = a.range_id;
    p.max_sstable_size = options_.range.max_sstable_size;
    engine->placer()->set_options(p);
  }
  for (int i = 0; i < options_.num_stocs; i++) {
    config.alive_stocs.push_back(i);
  }
  coordinator_.UpdateConfig(std::move(config));
}

void Cluster::Stop() {
  if (!started_) {
    return;
  }
  started_ = false;
  for (size_t i = 0; i < ltcs_.size(); i++) {
    ltcs_[i]->Stop();
  }
  for (size_t i = 0; i < stocs_.size(); i++) {
    stocs_[i]->Stop();
  }
}

Status Cluster::Put(const Slice& key, const Slice& value) {
  for (int attempt = 0; attempt < 200; attempt++) {
    Configuration cfg = coordinator_.config();
    int idx = cfg.LtcForKey(key);
    if (idx < 0) {
      return Status::InvalidArgument("key outside all ranges");
    }
    if (ltc_alive_[idx]) {
      Status s = ltcs_[idx]->Put(key, value);
      if (!s.IsInvalidArgument() && !s.IsUnavailable()) {
        return s;
      }
    }
    // The range is migrating or its LTC is down; wait for a new config.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Unavailable("range unavailable");
}

Status Cluster::Get(const Slice& key, std::string* value) {
  for (int attempt = 0; attempt < 200; attempt++) {
    Configuration cfg = coordinator_.config();
    int idx = cfg.LtcForKey(key);
    if (idx < 0) {
      return Status::InvalidArgument("key outside all ranges");
    }
    if (ltc_alive_[idx]) {
      Status s = ltcs_[idx]->Get(key, value);
      if (!s.IsInvalidArgument() && !s.IsUnavailable()) {
        return s;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Unavailable("range unavailable");
}

Status Cluster::Delete(const Slice& key) {
  Configuration cfg = coordinator_.config();
  int idx = cfg.LtcForKey(key);
  if (idx < 0 || !ltc_alive_[idx]) {
    return Status::Unavailable("range unavailable");
  }
  return ltcs_[idx]->Delete(key);
}

Status Cluster::Scan(
    const Slice& start_key, int num_records,
    std::vector<std::pair<std::string, std::string>>* out) {
  for (int attempt = 0; attempt < 200; attempt++) {
    Configuration cfg = coordinator_.config();
    int idx = cfg.LtcForKey(start_key);
    if (idx < 0) {
      return Status::InvalidArgument("key outside all ranges");
    }
    if (ltc_alive_[idx]) {
      Status s = ltcs_[idx]->Scan(start_key, num_records, out);
      if (!s.IsInvalidArgument() && !s.IsUnavailable()) {
        // Scans spanning LTCs: continue on the next LTC (read committed).
        while (s.ok() && static_cast<int>(out->size()) < num_records &&
               !out->empty()) {
          // Find the range containing the last returned key and continue
          // past its LTC's upper bound if another LTC follows.
          const std::string& last = out->back().first;
          int cur = cfg.LtcForKey(last);
          std::string next_lower;
          for (const auto& r : cfg.ranges) {
            if (r.ltc_index == cur &&
                (r.lower.empty() || last >= r.lower) &&
                (r.upper.empty() || last < r.upper)) {
              next_lower = r.upper;
              break;
            }
          }
          if (next_lower.empty()) {
            break;
          }
          int next_idx = cfg.LtcForKey(next_lower);
          if (next_idx < 0 || next_idx == idx || !ltc_alive_[next_idx]) {
            break;
          }
          idx = next_idx;
          // num_records is the total target on `out` (see RangeEngine::Scan).
          s = ltcs_[idx]->Scan(next_lower, num_records, out);
        }
        return s;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return Status::Unavailable("range unavailable");
}

void Cluster::KillStoc(int index) {
  stoc_alive_[index] = false;
  stocs_[index]->Stop();
  fabric_.RemoveNode(StocNode(index));
  coordinator_.ExpireLease(StocNode(index));
  RefreshPlacements();
}

void Cluster::RestartStoc(int index) {
  // The device and block store survived the crash; only component state
  // is rebuilt. In-memory StoC files (log replicas) are lost — that is
  // exactly the availability tradeoff Section 5 describes.
  stocs_[index] = std::make_unique<stoc::StocServer>(
      &fabric_, StocNode(index), devices_[index].get(),
      stores_[index].get(), options_.stoc);
  stoc_clients_[index] =
      std::make_unique<stoc::StocClient>(stocs_[index]->endpoint());
  stoc_clients_[index]->set_membership(coordinator_.membership());
  WireStoc(index);
  stocs_[index]->Start();
  stoc_alive_[index] = true;
  // The lease re-grant moves a dead node to probing; drive the half-open
  // probes from here so the StoC earns its way back to alive (and into
  // placement) without waiting for organic read traffic to find it.
  coordinator_.GrantLease(StocNode(index));
  rdma::NodeId node = StocNode(index);
  Membership* membership = coordinator_.membership();
  stoc::StocClient* prober = nullptr;
  for (size_t l = 0; l < ltcs_.size(); l++) {
    if (ltc_alive_[l]) {
      prober = ltcs_[l]->stoc_client();
      break;
    }
  }
  if (prober != nullptr) {
    for (int p = 0; p < 10 * membership->options().rejoin_probes &&
                    membership->health(node) != NodeHealth::kAlive;
         p++) {
      stoc::StocStats stats;
      prober->GetStats(node, &stats);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(membership->options().probe_interval_ms) +
          std::chrono::milliseconds(1));
    }
  }
  RefreshPlacements();
}

void Cluster::KillLtc(int index) {
  ltc_alive_[index] = false;
  ltcs_[index]->Stop();
  fabric_.RemoveNode(LtcNode(index));
  coordinator_.ExpireLease(LtcNode(index));
}

Status Cluster::RecoverLtcRanges(int crashed_ltc, int dst_ltc,
                                 int recovery_threads) {
  Configuration cfg = coordinator_.config();
  std::vector<rdma::NodeId> stoc_nodes = AliveStocNodes();
  int rr = 0;
  for (auto& r : cfg.ranges) {
    if (r.ltc_index != crashed_ltc) {
      continue;
    }
    int target = dst_ltc;
    if (target < 0) {
      // Scatter across the η-1 surviving LTCs (Section 4.5).
      do {
        target = rr++ % static_cast<int>(ltcs_.size());
      } while (!ltc_alive_[target] || target == crashed_ltc);
    }
    ltc::RangeEngine* engine = ltcs_[target]->AddRangeForRecovery(
        RangeOptionsFor(r), stoc_nodes);
    lsm::PlacementOptions p = options_.placement;
    p.stocs = stoc_nodes;
    p.range_id = r.range_id;
    p.max_sstable_size = options_.range.max_sstable_size;
    engine->placer()->set_options(p);
    Status s = engine->RecoverFromManifest(recovery_threads);
    if (!s.ok() && !s.IsNotFound()) {
      return s;
    }
    engine->Bootstrap();
    r.ltc_index = target;
  }
  coordinator_.UpdateConfig(std::move(cfg));
  return Status::OK();
}

Status Cluster::MigrateRange(uint32_t range_id, int dst_ltc,
                             int recovery_threads) {
  Configuration cfg = coordinator_.config();
  int src = -1;
  RangeAssignment* assignment = nullptr;
  for (auto& r : cfg.ranges) {
    if (r.range_id == range_id) {
      src = r.ltc_index;
      assignment = &r;
      break;
    }
  }
  if (src < 0 || assignment == nullptr) {
    return Status::NotFound("no such range");
  }
  if (src == dst_ltc) {
    return Status::OK();
  }
  // 1. Stop serving writes at the source and drain its background work so
  //    every record is either in the version snapshot or in a surviving
  //    log file at the StoCs.
  ltc::RangeEngine* old = ltcs_[src]->DetachRange(range_id);
  if (old == nullptr) {
    return Status::NotFound("range not at source LTC");
  }
  old->BeginDecommission();
  old->WaitForQuiescence();
  // 2. Ship the metadata (LSM-tree, Dranges, indexes' seeds) — paper
  //    Section 9: ~1% of migrated bytes; log records stay at StoCs. The
  //    source's memtables are discarded; the destination rebuilds them
  //    from the log records.
  std::string state = old->ExtractMigrationState();

  // 3. Install at the destination and rebuild memtables from log records
  //    with parallel background threads.
  std::vector<rdma::NodeId> stoc_nodes = AliveStocNodes();
  ltc::RangeEngine* engine = ltcs_[dst_ltc]->AddRangeForRecovery(
      RangeOptionsFor(*assignment), stoc_nodes);
  lsm::PlacementOptions p = options_.placement;
  p.stocs = stoc_nodes;
  p.range_id = range_id;
  p.max_sstable_size = options_.range.max_sstable_size;
  engine->placer()->set_options(p);
  Status s = engine->InstallFromMigrationState(state, recovery_threads);
  if (!s.ok()) {
    return s;
  }
  engine->Bootstrap();
  // 4. Publish the new configuration.
  assignment->ltc_index = dst_ltc;
  coordinator_.UpdateConfig(std::move(cfg));
  return Status::OK();
}

int Cluster::AddStoc() {
  int index = static_cast<int>(stocs_.size());
  devices_.push_back(std::make_unique<SimulatedDevice>(
      "stoc-" + std::to_string(index), options_.device));
  stores_.push_back(std::make_unique<BlockStore>());
  stocs_.push_back(std::make_unique<stoc::StocServer>(
      &fabric_, StocNode(index), devices_.back().get(),
      stores_.back().get(), options_.stoc));
  stoc_clients_.push_back(
      std::make_unique<stoc::StocClient>(stocs_.back()->endpoint()));
  stoc_clients_.back()->set_membership(coordinator_.membership());
  stoc_alive_.push_back(true);
  WireStoc(index);
  stocs_[index]->Start();
  coordinator_.GrantLease(StocNode(index));
  // LTCs assign new SSTables to the new StoC immediately (Section 9).
  RefreshPlacements();
  Configuration cfg = coordinator_.config();
  cfg.alive_stocs.push_back(index);
  coordinator_.UpdateConfig(std::move(cfg));
  return index;
}

Status Cluster::RemoveStocGraceful(int index) {
  rdma::NodeId node = StocNode(index);
  // 1. No new placements on the departing StoC.
  stoc_alive_[index] = false;
  RefreshPlacements();
  std::vector<rdma::NodeId> alive = AliveStocNodes();
  if (alive.empty()) {
    return Status::InvalidArgument("cannot remove the last StoC");
  }
  // 2. Copy every referenced block elsewhere and update file metadata
  //    (Section 9: the LTC identifies fragments and instructs the source
  //    StoC to copy them to destinations).
  int rr = 0;
  for (size_t l = 0; l < ltcs_.size(); l++) {
    if (!ltc_alive_[l]) {
      continue;
    }
    for (ltc::RangeEngine* engine : ltcs_[l]->ranges()) {
      engine->WaitForQuiescence();
      lsm::VersionRef v = engine->versions()->current();
      for (int level = 0; level < v->num_levels(); level++) {
        for (const auto& f : v->files(level)) {
          lsm::FileMetaData updated = *f;
          bool touched = false;
          auto relocate = [&](lsm::BlockLocation* loc) -> Status {
            if (loc->stoc_id != node) {
              return Status::OK();
            }
            rdma::NodeId dst = alive[rr++ % alive.size()];
            Status cs = ltcs_[l]->stoc_client()->CopyFileTo(
                node, loc->file_id, dst);
            if (!cs.ok()) {
              return cs;
            }
            loc->stoc_id = dst;
            touched = true;
            return Status::OK();
          };
          for (auto& replicas : updated.fragments) {
            for (auto& loc : replicas) {
              Status cs = relocate(&loc);
              if (!cs.ok()) return cs;
            }
          }
          for (auto& loc : updated.meta_replicas) {
            Status cs = relocate(&loc);
            if (!cs.ok()) return cs;
          }
          if (updated.parity.valid()) {
            Status cs = relocate(&updated.parity);
            if (!cs.ok()) return cs;
          }
          if (touched) {
            lsm::VersionEdit edit;
            edit.deleted_files.emplace_back(level, f->number);
            edit.new_files.emplace_back(level, updated);
            Status es = engine->versions()->LogAndApply(&edit);
            if (!es.ok()) {
              return es;
            }
            engine->table_cache()->Evict(f->number);
          }
        }
      }
    }
  }
  // 3. Shut the StoC down.
  stocs_[index]->Stop();
  fabric_.RemoveNode(node);
  coordinator_.ExpireLease(node);
  Configuration cfg = coordinator_.config();
  cfg.alive_stocs.clear();
  for (size_t i = 0; i < stocs_.size(); i++) {
    if (stoc_alive_[i]) {
      cfg.alive_stocs.push_back(static_cast<int>(i));
    }
  }
  coordinator_.UpdateConfig(std::move(cfg));
  return Status::OK();
}

Status Cluster::GcStocFiles(int index) {
  // A re-added StoC enumerates its files and asks the owning LTC whether
  // each is still referenced; unreferenced files are deleted (Section 9).
  std::vector<uint64_t> files;
  rdma::NodeId node = StocNode(index);
  // Use any alive LTC's client to query.
  stoc::StocClient* client = nullptr;
  for (size_t l = 0; l < ltcs_.size(); l++) {
    if (ltc_alive_[l]) {
      client = ltcs_[l]->stoc_client();
      break;
    }
  }
  if (client == nullptr) {
    return Status::Unavailable("no alive ltc");
  }
  Status s = client->ListFiles(node, &files);
  if (!s.ok()) {
    return s;
  }
  Configuration cfg = coordinator_.config();
  for (uint64_t file_id : files) {
    stoc::FileKind kind = stoc::FileIdKind(file_id);
    if (kind == stoc::FileKind::kManifest || kind == stoc::FileKind::kLog) {
      continue;  // always kept
    }
    uint32_t range_id = stoc::FileIdRange(file_id);
    uint32_t number = stoc::FileIdNumber(file_id);
    bool referenced = false;
    for (const auto& r : cfg.ranges) {
      if (r.range_id == range_id && ltc_alive_[r.ltc_index]) {
        ltc::RangeEngine* engine =
            ltcs_[r.ltc_index]->GetRange(range_id);
        if (engine != nullptr && engine->IsFileNumberLive(number)) {
          referenced = true;
        }
        break;
      }
    }
    if (!referenced) {
      client->DeleteFile(node, file_id, false);
    }
  }
  return Status::OK();
}

ltc::RangeStats Cluster::TotalStats() {
  ltc::RangeStats total;
  for (size_t i = 0; i < ltcs_.size(); i++) {
    if (!ltc_alive_[i]) {
      continue;
    }
    total += ltcs_[i]->TotalStats();
  }
  return total;
}

}  // namespace coord
}  // namespace nova
