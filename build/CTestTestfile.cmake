# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/block_cache_test[1]_include.cmake")
include("/root/repo/build/churn_test[1]_include.cmake")
include("/root/repo/build/integration_test[1]_include.cmake")
include("/root/repo/build/lsm_test[1]_include.cmake")
include("/root/repo/build/ltc_test[1]_include.cmake")
include("/root/repo/build/mem_test[1]_include.cmake")
include("/root/repo/build/sstable_test[1]_include.cmake")
include("/root/repo/build/stoc_logc_test[1]_include.cmake")
include("/root/repo/build/storage_rdma_test[1]_include.cmake")
include("/root/repo/build/util_test[1]_include.cmake")
add_test(example_fault_tolerance "/root/repo/build/fault_tolerance")
set_tests_properties(example_fault_tolerance PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(example_iot_ingest "/root/repo/build/iot_ingest")
set_tests_properties(example_iot_ingest PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(example_quickstart "/root/repo/build/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
add_test(example_social_feed "/root/repo/build/social_feed")
set_tests_properties(example_social_feed PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;51;add_test;/root/repo/CMakeLists.txt;0;")
