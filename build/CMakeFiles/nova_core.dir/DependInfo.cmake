
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/baseline.cc" "CMakeFiles/nova_core.dir/src/baseline/baseline.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/baseline/baseline.cc.o.d"
  "/root/repo/src/bench_core/workload.cc" "CMakeFiles/nova_core.dir/src/bench_core/workload.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/bench_core/workload.cc.o.d"
  "/root/repo/src/client/nova_client.cc" "CMakeFiles/nova_core.dir/src/client/nova_client.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/client/nova_client.cc.o.d"
  "/root/repo/src/coord/cluster.cc" "CMakeFiles/nova_core.dir/src/coord/cluster.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/coord/cluster.cc.o.d"
  "/root/repo/src/coord/coordinator.cc" "CMakeFiles/nova_core.dir/src/coord/coordinator.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/coord/coordinator.cc.o.d"
  "/root/repo/src/logc/log_client.cc" "CMakeFiles/nova_core.dir/src/logc/log_client.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/logc/log_client.cc.o.d"
  "/root/repo/src/logc/log_record.cc" "CMakeFiles/nova_core.dir/src/logc/log_record.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/logc/log_record.cc.o.d"
  "/root/repo/src/lsm/compaction.cc" "CMakeFiles/nova_core.dir/src/lsm/compaction.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/lsm/compaction.cc.o.d"
  "/root/repo/src/lsm/file_meta.cc" "CMakeFiles/nova_core.dir/src/lsm/file_meta.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/lsm/file_meta.cc.o.d"
  "/root/repo/src/lsm/table_io.cc" "CMakeFiles/nova_core.dir/src/lsm/table_io.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/lsm/table_io.cc.o.d"
  "/root/repo/src/lsm/version.cc" "CMakeFiles/nova_core.dir/src/lsm/version.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/lsm/version.cc.o.d"
  "/root/repo/src/ltc/drange.cc" "CMakeFiles/nova_core.dir/src/ltc/drange.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/ltc/drange.cc.o.d"
  "/root/repo/src/ltc/lookup_index.cc" "CMakeFiles/nova_core.dir/src/ltc/lookup_index.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/ltc/lookup_index.cc.o.d"
  "/root/repo/src/ltc/ltc_server.cc" "CMakeFiles/nova_core.dir/src/ltc/ltc_server.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/ltc/ltc_server.cc.o.d"
  "/root/repo/src/ltc/range_engine.cc" "CMakeFiles/nova_core.dir/src/ltc/range_engine.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/ltc/range_engine.cc.o.d"
  "/root/repo/src/ltc/range_index.cc" "CMakeFiles/nova_core.dir/src/ltc/range_index.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/ltc/range_index.cc.o.d"
  "/root/repo/src/mem/arena.cc" "CMakeFiles/nova_core.dir/src/mem/arena.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/mem/arena.cc.o.d"
  "/root/repo/src/mem/dbformat.cc" "CMakeFiles/nova_core.dir/src/mem/dbformat.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/mem/dbformat.cc.o.d"
  "/root/repo/src/mem/memtable.cc" "CMakeFiles/nova_core.dir/src/mem/memtable.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/mem/memtable.cc.o.d"
  "/root/repo/src/rdma/fabric.cc" "CMakeFiles/nova_core.dir/src/rdma/fabric.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/rdma/fabric.cc.o.d"
  "/root/repo/src/rdma/rpc.cc" "CMakeFiles/nova_core.dir/src/rdma/rpc.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/rdma/rpc.cc.o.d"
  "/root/repo/src/sim/cost_model.cc" "CMakeFiles/nova_core.dir/src/sim/cost_model.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sim/cost_model.cc.o.d"
  "/root/repo/src/sim/cpu_throttle.cc" "CMakeFiles/nova_core.dir/src/sim/cpu_throttle.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sim/cpu_throttle.cc.o.d"
  "/root/repo/src/sstable/block.cc" "CMakeFiles/nova_core.dir/src/sstable/block.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/block.cc.o.d"
  "/root/repo/src/sstable/bloom.cc" "CMakeFiles/nova_core.dir/src/sstable/bloom.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/bloom.cc.o.d"
  "/root/repo/src/sstable/format.cc" "CMakeFiles/nova_core.dir/src/sstable/format.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/format.cc.o.d"
  "/root/repo/src/sstable/merging_iterator.cc" "CMakeFiles/nova_core.dir/src/sstable/merging_iterator.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/merging_iterator.cc.o.d"
  "/root/repo/src/sstable/sstable_builder.cc" "CMakeFiles/nova_core.dir/src/sstable/sstable_builder.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/sstable_builder.cc.o.d"
  "/root/repo/src/sstable/sstable_reader.cc" "CMakeFiles/nova_core.dir/src/sstable/sstable_reader.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/sstable/sstable_reader.cc.o.d"
  "/root/repo/src/stoc/stoc_client.cc" "CMakeFiles/nova_core.dir/src/stoc/stoc_client.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/stoc/stoc_client.cc.o.d"
  "/root/repo/src/stoc/stoc_server.cc" "CMakeFiles/nova_core.dir/src/stoc/stoc_server.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/stoc/stoc_server.cc.o.d"
  "/root/repo/src/storage/block_store.cc" "CMakeFiles/nova_core.dir/src/storage/block_store.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/storage/block_store.cc.o.d"
  "/root/repo/src/storage/simulated_device.cc" "CMakeFiles/nova_core.dir/src/storage/simulated_device.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/storage/simulated_device.cc.o.d"
  "/root/repo/src/util/cache.cc" "CMakeFiles/nova_core.dir/src/util/cache.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/cache.cc.o.d"
  "/root/repo/src/util/coding.cc" "CMakeFiles/nova_core.dir/src/util/coding.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/coding.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "CMakeFiles/nova_core.dir/src/util/crc32c.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/crc32c.cc.o.d"
  "/root/repo/src/util/histogram.cc" "CMakeFiles/nova_core.dir/src/util/histogram.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/histogram.cc.o.d"
  "/root/repo/src/util/iterator.cc" "CMakeFiles/nova_core.dir/src/util/iterator.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/iterator.cc.o.d"
  "/root/repo/src/util/logging.cc" "CMakeFiles/nova_core.dir/src/util/logging.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/logging.cc.o.d"
  "/root/repo/src/util/slab_allocator.cc" "CMakeFiles/nova_core.dir/src/util/slab_allocator.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/slab_allocator.cc.o.d"
  "/root/repo/src/util/status.cc" "CMakeFiles/nova_core.dir/src/util/status.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/status.cc.o.d"
  "/root/repo/src/util/thread_pool.cc" "CMakeFiles/nova_core.dir/src/util/thread_pool.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/thread_pool.cc.o.d"
  "/root/repo/src/util/zipfian.cc" "CMakeFiles/nova_core.dir/src/util/zipfian.cc.o" "gcc" "CMakeFiles/nova_core.dir/src/util/zipfian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
