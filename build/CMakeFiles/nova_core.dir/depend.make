# Empty dependencies file for nova_core.
# This may be replaced when dependencies are built.
