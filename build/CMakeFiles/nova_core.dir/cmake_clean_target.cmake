file(REMOVE_RECURSE
  "libnova_core.a"
)
