# Empty dependencies file for bench_fig13_stoc_scaling.
# This may be replaced when dependencies are built.
