# Empty dependencies file for bench_fig15_5ltc_stoc_scaling.
# This may be replaced when dependencies are built.
