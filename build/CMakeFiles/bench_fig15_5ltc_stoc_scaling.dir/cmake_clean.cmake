file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_5ltc_stoc_scaling.dir/bench/bench_fig15_5ltc_stoc_scaling.cc.o"
  "CMakeFiles/bench_fig15_5ltc_stoc_scaling.dir/bench/bench_fig15_5ltc_stoc_scaling.cc.o.d"
  "bench_fig15_5ltc_stoc_scaling"
  "bench_fig15_5ltc_stoc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_5ltc_stoc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
