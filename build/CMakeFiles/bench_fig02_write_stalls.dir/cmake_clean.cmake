file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_write_stalls.dir/bench/bench_fig02_write_stalls.cc.o"
  "CMakeFiles/bench_fig02_write_stalls.dir/bench/bench_fig02_write_stalls.cc.o.d"
  "bench_fig02_write_stalls"
  "bench_fig02_write_stalls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_write_stalls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
