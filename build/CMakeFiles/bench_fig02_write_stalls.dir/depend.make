# Empty dependencies file for bench_fig02_write_stalls.
# This may be replaced when dependencies are built.
