# Empty dependencies file for bench_fig18bcd_ten_nodes.
# This may be replaced when dependencies are built.
