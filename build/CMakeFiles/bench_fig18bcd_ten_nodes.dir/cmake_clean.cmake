file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18bcd_ten_nodes.dir/bench/bench_fig18bcd_ten_nodes.cc.o"
  "CMakeFiles/bench_fig18bcd_ten_nodes.dir/bench/bench_fig18bcd_ten_nodes.cc.o.d"
  "bench_fig18bcd_ten_nodes"
  "bench_fig18bcd_ten_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18bcd_ten_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
