# Empty dependencies file for bench_fig12_skew.
# This may be replaced when dependencies are built.
