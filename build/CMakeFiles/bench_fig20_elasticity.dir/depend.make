# Empty dependencies file for bench_fig20_elasticity.
# This may be replaced when dependencies are built.
