file(REMOVE_RECURSE
  "CMakeFiles/bench_fig20_elasticity.dir/bench/bench_fig20_elasticity.cc.o"
  "CMakeFiles/bench_fig20_elasticity.dir/bench/bench_fig20_elasticity.cc.o.d"
  "bench_fig20_elasticity"
  "bench_fig20_elasticity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig20_elasticity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
