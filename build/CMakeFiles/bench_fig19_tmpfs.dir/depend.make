# Empty dependencies file for bench_fig19_tmpfs.
# This may be replaced when dependencies are built.
