file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_tmpfs.dir/bench/bench_fig19_tmpfs.cc.o"
  "CMakeFiles/bench_fig19_tmpfs.dir/bench/bench_fig19_tmpfs.cc.o.d"
  "bench_fig19_tmpfs"
  "bench_fig19_tmpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_tmpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
