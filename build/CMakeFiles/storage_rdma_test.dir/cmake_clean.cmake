file(REMOVE_RECURSE
  "CMakeFiles/storage_rdma_test.dir/tests/storage_rdma_test.cc.o"
  "CMakeFiles/storage_rdma_test.dir/tests/storage_rdma_test.cc.o.d"
  "storage_rdma_test"
  "storage_rdma_test.pdb"
  "storage_rdma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_rdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
