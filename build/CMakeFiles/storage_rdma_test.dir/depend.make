# Empty dependencies file for storage_rdma_test.
# This may be replaced when dependencies are built.
