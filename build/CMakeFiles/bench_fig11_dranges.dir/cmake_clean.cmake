file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dranges.dir/bench/bench_fig11_dranges.cc.o"
  "CMakeFiles/bench_fig11_dranges.dir/bench/bench_fig11_dranges.cc.o.d"
  "bench_fig11_dranges"
  "bench_fig11_dranges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dranges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
