# Empty dependencies file for bench_fig11_dranges.
# This may be replaced when dependencies are built.
