# Empty dependencies file for bench_block_cache.
# This may be replaced when dependencies are built.
