file(REMOVE_RECURSE
  "CMakeFiles/bench_block_cache.dir/bench/bench_block_cache.cc.o"
  "CMakeFiles/bench_block_cache.dir/bench/bench_block_cache.cc.o.d"
  "bench_block_cache"
  "bench_block_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
