file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_replication.dir/bench/bench_fig16_replication.cc.o"
  "CMakeFiles/bench_fig16_replication.dir/bench/bench_fig16_replication.cc.o.d"
  "bench_fig16_replication"
  "bench_fig16_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
