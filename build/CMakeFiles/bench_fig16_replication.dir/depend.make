# Empty dependencies file for bench_fig16_replication.
# This may be replaced when dependencies are built.
