# Empty dependencies file for social_feed.
# This may be replaced when dependencies are built.
