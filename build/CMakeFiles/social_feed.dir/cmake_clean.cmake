file(REMOVE_RECURSE
  "CMakeFiles/social_feed.dir/examples/social_feed.cpp.o"
  "CMakeFiles/social_feed.dir/examples/social_feed.cpp.o.d"
  "social_feed"
  "social_feed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_feed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
