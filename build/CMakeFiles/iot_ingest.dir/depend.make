# Empty dependencies file for iot_ingest.
# This may be replaced when dependencies are built.
