file(REMOVE_RECURSE
  "CMakeFiles/iot_ingest.dir/examples/iot_ingest.cpp.o"
  "CMakeFiles/iot_ingest.dir/examples/iot_ingest.cpp.o.d"
  "iot_ingest"
  "iot_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iot_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
