file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_migration.dir/bench/bench_table06_migration.cc.o"
  "CMakeFiles/bench_table06_migration.dir/bench/bench_table06_migration.cc.o.d"
  "bench_table06_migration"
  "bench_table06_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
