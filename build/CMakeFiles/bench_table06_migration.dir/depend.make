# Empty dependencies file for bench_table06_migration.
# This may be replaced when dependencies are built.
