file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_latency.dir/bench/bench_table07_latency.cc.o"
  "CMakeFiles/bench_table07_latency.dir/bench/bench_table07_latency.cc.o.d"
  "bench_table07_latency"
  "bench_table07_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
