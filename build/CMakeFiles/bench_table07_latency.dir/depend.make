# Empty dependencies file for bench_table07_latency.
# This may be replaced when dependencies are built.
