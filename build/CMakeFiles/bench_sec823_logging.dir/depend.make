# Empty dependencies file for bench_sec823_logging.
# This may be replaced when dependencies are built.
