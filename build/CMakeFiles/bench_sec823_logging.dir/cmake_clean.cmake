file(REMOVE_RECURSE
  "CMakeFiles/bench_sec823_logging.dir/bench/bench_sec823_logging.cc.o"
  "CMakeFiles/bench_sec823_logging.dir/bench/bench_sec823_logging.cc.o.d"
  "bench_sec823_logging"
  "bench_sec823_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec823_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
