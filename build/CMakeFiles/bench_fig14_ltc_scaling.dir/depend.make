# Empty dependencies file for bench_fig14_ltc_scaling.
# This may be replaced when dependencies are built.
