file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_memory.dir/bench/bench_table04_memory.cc.o"
  "CMakeFiles/bench_table04_memory.dir/bench/bench_table04_memory.cc.o.d"
  "bench_table04_memory"
  "bench_table04_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
