# Empty dependencies file for bench_table04_memory.
# This may be replaced when dependencies are built.
