file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_shared_disk.dir/bench/bench_fig01_shared_disk.cc.o"
  "CMakeFiles/bench_fig01_shared_disk.dir/bench/bench_fig01_shared_disk.cc.o.d"
  "bench_fig01_shared_disk"
  "bench_fig01_shared_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_shared_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
