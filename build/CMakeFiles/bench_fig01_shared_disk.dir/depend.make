# Empty dependencies file for bench_fig01_shared_disk.
# This may be replaced when dependencies are built.
