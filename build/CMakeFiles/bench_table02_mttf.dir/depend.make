# Empty dependencies file for bench_table02_mttf.
# This may be replaced when dependencies are built.
