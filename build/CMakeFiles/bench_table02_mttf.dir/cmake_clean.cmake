file(REMOVE_RECURSE
  "CMakeFiles/bench_table02_mttf.dir/bench/bench_table02_mttf.cc.o"
  "CMakeFiles/bench_table02_mttf.dir/bench/bench_table02_mttf.cc.o.d"
  "bench_table02_mttf"
  "bench_table02_mttf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_mttf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
