# Empty dependencies file for bench_table05_power_of_d.
# This may be replaced when dependencies are built.
