file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_power_of_d.dir/bench/bench_table05_power_of_d.cc.o"
  "CMakeFiles/bench_table05_power_of_d.dir/bench/bench_table05_power_of_d.cc.o.d"
  "bench_table05_power_of_d"
  "bench_table05_power_of_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_power_of_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
