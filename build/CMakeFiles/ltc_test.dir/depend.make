# Empty dependencies file for ltc_test.
# This may be replaced when dependencies are built.
