file(REMOVE_RECURSE
  "CMakeFiles/ltc_test.dir/tests/ltc_test.cc.o"
  "CMakeFiles/ltc_test.dir/tests/ltc_test.cc.o.d"
  "ltc_test"
  "ltc_test.pdb"
  "ltc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ltc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
