# Empty dependencies file for bench_fig18a_one_node.
# This may be replaced when dependencies are built.
