file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18a_one_node.dir/bench/bench_fig18a_one_node.cc.o"
  "CMakeFiles/bench_fig18a_one_node.dir/bench/bench_fig18a_one_node.cc.o.d"
  "bench_fig18a_one_node"
  "bench_fig18a_one_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18a_one_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
