# Empty dependencies file for stoc_logc_test.
# This may be replaced when dependencies are built.
