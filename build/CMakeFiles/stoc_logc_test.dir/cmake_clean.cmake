file(REMOVE_RECURSE
  "CMakeFiles/stoc_logc_test.dir/tests/stoc_logc_test.cc.o"
  "CMakeFiles/stoc_logc_test.dir/tests/stoc_logc_test.cc.o.d"
  "stoc_logc_test"
  "stoc_logc_test.pdb"
  "stoc_logc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stoc_logc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
