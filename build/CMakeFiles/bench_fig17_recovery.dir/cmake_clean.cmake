file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_recovery.dir/bench/bench_fig17_recovery.cc.o"
  "CMakeFiles/bench_fig17_recovery.dir/bench/bench_fig17_recovery.cc.o.d"
  "bench_fig17_recovery"
  "bench_fig17_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
