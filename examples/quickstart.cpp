// Quickstart: bring up a small Nova-LSM cluster (2 LTCs + 3 StoCs over
// the in-process RDMA fabric), write, read, scan, and inspect the
// component statistics.
#include <cstdio>

#include "client/nova_client.h"
#include "coord/cluster.h"

using namespace nova;

int main() {
  // 1. Describe the cluster: η=2 LTCs, β=3 StoCs, two key ranges.
  coord::ClusterOptions options;
  options.num_ltcs = 2;
  options.num_stocs = 3;
  options.split_points = {"m"};  // range 0 = [-inf,"m"), range 1 = ["m",inf)
  options.device.time_scale = 0;  // instant disks for the demo
  options.range.memtable_size = 64 << 10;
  options.placement.rho = 2;  // scatter SSTables over 2 StoCs

  coord::Cluster cluster(options);
  cluster.Start();

  // 2. Clients route by key through the coordinator's configuration.
  client::NovaClient client(&cluster);
  client.Put("apple", "red");
  client.Put("banana", "yellow");
  client.Put("melon", "green");

  std::string value;
  if (client.Get("banana", &value).ok()) {
    printf("banana -> %s\n", value.c_str());
  }

  // 3. Scans merge memtables, Level0 and higher levels — and continue
  //    across ranges (and LTCs) transparently.
  std::vector<std::pair<std::string, std::string>> records;
  client.Scan("a", 10, &records);
  printf("scan from 'a':\n");
  for (const auto& [k, v] : records) {
    printf("  %s = %s\n", k.c_str(), v.c_str());
  }

  // 4. Deletes are tombstones until compaction discards them.
  client.Delete("apple");
  printf("after delete, apple found? %s\n",
         client.Get("apple", &value).IsNotFound() ? "no" : "yes");

  // 5. Component statistics.
  auto stats = cluster.TotalStats();
  printf("puts=%llu gets=%llu flushes=%llu compactions=%llu\n",
         static_cast<unsigned long long>(stats.puts),
         static_cast<unsigned long long>(stats.gets),
         static_cast<unsigned long long>(stats.flushes),
         static_cast<unsigned long long>(stats.compactions));

  cluster.Stop();
  return 0;
}
