// Fault-tolerance tour: Hybrid availability (parity + replicated
// metadata) keeps reads alive through a StoC loss, and an LTC crash is
// healed by replaying the replicated MANIFEST and in-memory log records
// onto another LTC (paper Sections 4.4.1, 4.5, 8.2.8).
#include <cstdio>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "util/random.h"

using namespace nova;

int main() {
  coord::ClusterOptions options;
  options.num_ltcs = 2;
  options.num_stocs = 4;
  options.split_points = {bench::MakeKey(5000)};
  options.device.time_scale = 0;
  options.range.memtable_size = 16 << 10;
  options.range.drange.theta = 4;
  // Hybrid: parity over rho=3 data fragments + 3 metadata replicas.
  options.placement.rho = 3;
  options.placement.use_parity = true;
  options.placement.num_meta_replicas = 3;
  options.range.log.num_replicas = 3;
  options.range.manifest_replicas = 3;
  coord::Cluster cluster(options);
  cluster.Start();

  Random rng(7);
  printf("writing 10000 records...\n");
  for (int i = 0; i < 10000; i++) {
    cluster.Put(bench::MakeKey(rng.Uniform(10000)),
                "value-" + std::to_string(i));
  }
  for (auto* engine : cluster.ltc(0)->ranges()) {
    engine->FlushAllMemtables();
    engine->WaitForQuiescence(true);
  }

  // --- StoC failure: parity reconstruction serves the lost fragments ---
  printf("killing StoC 1...\n");
  cluster.KillStoc(1);
  int ok = 0, failed = 0;
  for (int i = 0; i < 2000; i++) {
    std::string value;
    Status s = cluster.Get(bench::MakeKey(rng.Uniform(10000)), &value);
    (s.ok() || s.IsNotFound()) ? ok++ : failed++;
  }
  printf("reads with one StoC down: %d ok, %d failed\n", ok, failed);
  cluster.RestartStoc(1);
  cluster.GcStocFiles(1);  // drop blocks no range references anymore

  // --- LTC crash: ranges recovered onto the surviving LTC ---
  printf("killing LTC 0 and recovering its ranges onto LTC 1...\n");
  cluster.KillLtc(0);
  auto t0 = std::chrono::steady_clock::now();
  cluster.RecoverLtcRanges(0, 1, /*recovery_threads=*/4);
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  printf("recovery took %.2f s\n", sec);
  ok = failed = 0;
  for (int i = 0; i < 2000; i++) {
    std::string value;
    Status s = cluster.Get(bench::MakeKey(rng.Uniform(10000)), &value);
    (s.ok() || s.IsNotFound()) ? ok++ : failed++;
  }
  printf("reads after recovery: %d ok, %d failed\n", ok, failed);
  cluster.Stop();
  return 0;
}
