// Social-feed scenario (the paper's motivating skewed workload): a few
// celebrity accounts take most of the writes. Dranges absorb the skew —
// watch the manager duplicate the hot point-Dranges and keep the write
// load balanced, while the memtable-merge policy keeps re-written hot
// keys in memory instead of pounding the disks.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "util/random.h"

using namespace nova;

int main() {
  coord::ClusterOptions options;
  options.num_ltcs = 1;
  options.num_stocs = 4;
  options.device.time_scale = 0.05;  // fast-forward the disks
  options.range.memtable_size = 32 << 10;
  options.range.max_memtables = 24;
  options.range.drange.theta = 8;
  options.range.drange.warmup_writes = 500;
  options.range.drange.sample_rate = 1;
  options.range.unique_key_threshold = 64;
  coord::Cluster cluster(options);
  cluster.Start();

  // Watchdog: this example once ate the whole ctest timeout when every
  // writer parked on the L0 stall gate after a lost compaction wakeup.
  // If that class of bug regresses, dump the maintenance state (which
  // memtables are pinned, what the scheduler is doing, stall counters)
  // and abort, so the hang is diagnosable from the test log.
  std::atomic<int> progress{0};
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(90);
    while (!done.load()) {
      if (std::chrono::steady_clock::now() > deadline) {
        auto* engine = cluster.ltc(0)->ranges()[0];
        auto stats = engine->stats();
        fprintf(stderr,
                "social_feed watchdog fired at put %d/100000\n"
                "stalls: %llu events, %llu us\n%s\n",
                progress.load(),
                static_cast<unsigned long long>(stats.stall_events),
                static_cast<unsigned long long>(stats.stall_us),
                engine->DebugMaintenanceState().c_str());
        fflush(stderr);
        abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(250));
    }
  });

  // 100k posts: 60% go to 3 celebrity timelines, the rest uniform.
  Random rng(2024);
  const uint64_t kUsers = 20000;
  for (int i = 0; i < 100000; i++) {
    uint64_t user;
    if (rng.Uniform(10) < 6) {
      user = rng.Uniform(3);  // celebrities: keys 0..2
    } else {
      user = 3 + rng.Uniform(kUsers - 3);
    }
    std::string key = bench::MakeKey(user);
    cluster.Put(key, "post#" + std::to_string(i));
    progress.store(i + 1, std::memory_order_relaxed);
  }

  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->WaitForQuiescence();
  auto* dranges = engine->dranges();
  auto stats = engine->stats();
  printf("dranges: %d (%d duplicated for hot keys)\n",
         dranges->num_dranges(), dranges->num_duplicated_dranges());
  printf("reorganizations: %llu major, %llu minor\n",
         static_cast<unsigned long long>(dranges->num_major_reorgs()),
         static_cast<unsigned long long>(dranges->num_minor_reorgs()));
  printf("write-load imbalance (stddev of shares): %.4f\n",
         dranges->LoadImbalance());
  printf("flushes=%llu, memtable merges (disk writes avoided)=%llu\n",
         static_cast<unsigned long long>(stats.flushes),
         static_cast<unsigned long long>(stats.memtable_merges));

  // Reads of the hot timeline hit memory via the lookup index.
  std::string value;
  cluster.Get(bench::MakeKey(0), &value);
  printf("celebrity timeline head: %s\n", value.c_str());
  stats = engine->stats();
  printf("lookup index hits=%llu misses=%llu\n",
         static_cast<unsigned long long>(stats.lookup_index_hits),
         static_cast<unsigned long long>(stats.lookup_index_misses));

  done.store(true);
  watchdog.join();
  cluster.Stop();
  return 0;
}
