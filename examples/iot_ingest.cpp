// IoT ingestion scenario: relentless appends from thousands of sensors
// (write-intensive — what LSM-trees are for, paper Section 1) plus
// periodic dashboard scans. Demonstrates elastic StoC scale-out when the
// disks fall behind: watch stall time collapse after AddStoc().
#include <cstdio>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "util/random.h"

using namespace nova;

static void IngestBatch(coord::Cluster* cluster, int batch, int records) {
  Random rng(batch);
  for (int i = 0; i < records; i++) {
    uint64_t sensor = rng.Uniform(5000);
    // Key = sensor id + timestamp so per-sensor data is scan-adjacent.
    char key[48];
    snprintf(key, sizeof(key), "sensor%06llu/t%08d",
             static_cast<unsigned long long>(sensor), batch * records + i);
    cluster->Put(key, "telemetry-payload-0123456789");
  }
}

int main() {
  coord::ClusterOptions options;
  options.num_ltcs = 1;
  options.num_stocs = 1;  // deliberately under-provisioned
  options.device.time_scale = 0.2;
  options.device.bandwidth_bytes_per_sec = 4 << 20;
  options.range.memtable_size = 32 << 10;
  options.range.max_memtables = 16;
  options.range.drange.theta = 4;
  coord::Cluster cluster(options);
  cluster.Start();

  auto stall_pct = [&](uint64_t stall_us, double window_sec) {
    return 100.0 * stall_us / 1e6 / window_sec;
  };

  // Phase 1: one StoC struggles with the ingest rate.
  auto t0 = std::chrono::steady_clock::now();
  IngestBatch(&cluster, 0, 20000);
  double sec1 =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  auto s1 = cluster.TotalStats();
  printf("phase 1 (beta=1): %5.0f puts/s, stall %.0f%%\n", 20000 / sec1,
         stall_pct(s1.stall_us, sec1));

  // Phase 2: scale out the storage tier; new SSTables immediately use
  // the added disks (power-of-d finds the idle queues).
  cluster.AddStoc();
  cluster.AddStoc();
  t0 = std::chrono::steady_clock::now();
  IngestBatch(&cluster, 1, 20000);
  double sec2 =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  auto s2 = cluster.TotalStats();
  printf("phase 2 (beta=3): %5.0f puts/s, stall %.0f%%\n", 20000 / sec2,
         stall_pct(s2.stall_us - s1.stall_us, sec2));

  // Dashboard query: latest 5 readings of one sensor range.
  std::vector<std::pair<std::string, std::string>> rows;
  cluster.Scan("sensor000042/", 5, &rows);
  printf("dashboard scan (sensor 42):\n");
  for (auto& [k, v] : rows) {
    printf("  %s\n", k.c_str());
  }
  cluster.Stop();
  return 0;
}
