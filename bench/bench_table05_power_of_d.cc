// Table 5: W100 Uniform throughput as a function of the scatter width ρ
// under Random vs power-of-d placement, with a tiny memory budget
// (α=1, δ=2 — the config where flush latency dominates).
// Paper: ρ=1 27.6k (random) vs 42.7k (power-of-2); ρ=10 ≈ 52k for both.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunPoint(const BenchConfig& cfg, int rho, bool power_of_d) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 10);
  opt.range.max_memtables = 2;
  opt.range.drange.theta = 1;
  opt.range.num_active_memtables = 1;
  opt.range.max_parallel_compactions = 1;
  opt.placement.rho = rho;
  opt.placement.power_of_d = power_of_d;
  opt.placement.adjust_rho_by_size = false;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader(
      "Table 5: rho x {Random, power-of-d}, W100 Uniform, alpha=1 delta=2");
  printf("%-5s %12s %14s\n", "rho", "Random", "Power-of-d");
  for (int rho : {1, 3, 10}) {
    double rnd = RunPoint(cfg, rho, false);
    double pod = RunPoint(cfg, rho, true);
    printf("%-5d %12.0f %14.0f\n", rho, rnd, pod);
    fflush(stdout);
  }
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
