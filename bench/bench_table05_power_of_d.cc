// Table 5: W100 Uniform throughput as a function of the scatter width ρ
// under Random vs power-of-d placement, with a tiny memory budget
// (α=1, δ=2 — the config where flush latency dominates).
// Paper: ρ=1 27.6k (random) vs 42.7k (power-of-2); ρ=10 ≈ 52k for both.
//
// Extension: the same power-of-d idea applied to the read path. R100
// Zipfian over 2-way replicated SSTables with one straggling StoC disk:
// d=1 must eat the straggler's latency whenever it looks least loaded,
// d=2 fans out and the fast replica wins, and hedging caps whatever
// stragglers slip through — visible in the p99/p999 columns.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunPoint(const BenchConfig& cfg, int rho, bool power_of_d) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 10);
  opt.range.max_memtables = 2;
  opt.range.drange.theta = 1;
  opt.range.num_active_memtables = 1;
  opt.range.max_parallel_compactions = 1;
  opt.placement.rho = rho;
  opt.placement.power_of_d = power_of_d;
  opt.placement.adjust_rho_by_size = false;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

struct ReadPoint {
  double ops = 0;
  double avg_us = 0;
  double p99_us = 0;
  double p999_us = 0;
  uint64_t pod_reads = 0;
  uint64_t hedged_issued = 0;
  uint64_t hedged_won = 0;
};

ReadPoint RunReadPoint(const BenchConfig& cfg, int d, bool hedge) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 4);
  opt.placement.num_data_replicas = 2;
  opt.placement.num_meta_replicas = 2;
  opt.stoc.page_cache_bytes = 0;  // every read pays real device time
  opt.ltc.read_replica_d = d;
  opt.ltc.read_hedging = hedge;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = std::max<uint64_t>(cfg.num_keys / 4, 100);
  spec.value_size = cfg.value_size;
  LoadData(&cluster, spec, cfg.client_threads);
  for (auto* engine : cluster.ltc(0)->ranges()) {
    engine->FlushAllMemtables();
    engine->WaitForQuiescence(/*flush_all=*/true);
  }
  // One straggling disk; replica selection / hedging can route around it.
  cluster.device(0)->InjectLatency(10 * 1000);
  spec.type = WorkloadType::kR100;
  spec.zipf_theta = 0.99;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  ltc::RangeStats stats = cluster.TotalStats();
  ReadPoint out;
  out.ops = r.ops_per_sec;
  out.avg_us = r.read_latency->Average();
  out.p99_us = r.read_latency->Percentile(99);
  out.p999_us = r.read_latency->Percentile(99.9);
  out.pod_reads = stats.pod_reads;
  out.hedged_issued = stats.hedged_issued;
  out.hedged_won = stats.hedged_won;
  cluster.Stop();
  return out;
}

void Run(const BenchConfig& cfg) {
  JsonArtifact art("table05_power_of_d");
  PrintHeader(
      "Table 5: rho x {Random, power-of-d}, W100 Uniform, alpha=1 delta=2");
  printf("%-5s %12s %14s\n", "rho", "Random", "Power-of-d");
  for (int rho : {1, 3, 10}) {
    double rnd = RunPoint(cfg, rho, false);
    double pod = RunPoint(cfg, rho, true);
    printf("%-5d %12.0f %14.0f\n", rho, rnd, pod);
    fflush(stdout);
    art.Add("write_rho=" + std::to_string(rho),
            {{"random_ops", rnd}, {"pod_ops", pod}});
  }

  PrintHeader(
      "Read-path power-of-d: R100 Zipf 0.99, 2 replicas, one StoC +10ms");
  printf("%-18s %10s %9s %9s %9s %8s %8s\n", "policy", "ops/s", "avg_ms",
         "p99_ms", "p999_ms", "hedged", "won");
  struct Config {
    const char* label;
    int d;
    bool hedge;
  };
  // d=1+hedge isolates hedging (with 2 replicas, d=2 already fans out to
  // both, leaving no candidate to hedge to — hedged stays 0 there).
  for (const Config& c : {Config{"d=1", 1, false},
                          Config{"d=1+hedge", 1, true},
                          Config{"d=2", 2, false},
                          Config{"d=2+hedge", 2, true}}) {
    ReadPoint p = RunReadPoint(cfg, c.d, c.hedge);
    printf("%-18s %10.0f %9.2f %9.2f %9.2f %8llu %8llu\n", c.label, p.ops,
           p.avg_us / 1000.0, p.p99_us / 1000.0, p.p999_us / 1000.0,
           static_cast<unsigned long long>(p.hedged_issued),
           static_cast<unsigned long long>(p.hedged_won));
    fflush(stdout);
    art.Add(std::string("read_") + c.label,
            {{"ops", p.ops},
             {"avg_us", p.avg_us},
             {"p99_us", p.p99_us},
             {"p999_us", p.p999_us},
             {"pod_reads", static_cast<double>(p.pod_reads)},
             {"hedged_issued", static_cast<double>(p.hedged_issued)},
             {"hedged_won", static_cast<double>(p.hedged_won)}});
  }
  art.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
