// Figure 15: β ∈ {1,3,5,10} with η=5 LTCs, ρ=1, Uniform.
// Paper: RW50 scales super-linearly (page-cache effect as per-StoC data
// shrinks), W100 sub-linearly past 3 StoCs (write stalls), SW50 flattens
// once the 5 LTCs' CPUs saturate (~3 StoCs).
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 15: scaling StoCs with eta=5 (rho=1, Uniform)");
  printf("%-6s", "wload");
  for (int beta : {1, 3, 5, 10}) {
    printf("   beta=%-2d  ", beta);
  }
  printf(" scal(10/1)\n");
  JsonArtifact json("fig15_5ltc_stoc_scaling");
  for (WorkloadType type :
       {WorkloadType::kRW50, WorkloadType::kW100, WorkloadType::kSW50}) {
    printf("%-6s", WorkloadName(type));
    double first = 0, last = 0;
    for (int beta : {1, 3, 5, 10}) {
      coord::ClusterOptions opt = PaperScaledOptions(5, beta);
      opt.split_points = EvenSplitPoints(cfg.num_keys, 5);
      opt.placement.rho = 1;
      coord::Cluster cluster(opt);
      cluster.Start();
      WorkloadSpec spec;
      spec.num_keys = cfg.num_keys;
      spec.value_size = cfg.value_size;
      spec.type = WorkloadType::kW100;
      LoadData(&cluster, spec, cfg.client_threads);
      spec.type = type;
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
      cluster.Stop();
      if (beta == 1) first = r.ops_per_sec;
      last = r.ops_per_sec;
      printf(" %10.0f ", r.ops_per_sec);
      fflush(stdout);
      char label[48];
      snprintf(label, sizeof(label), "%s/beta%d", WorkloadName(type), beta);
      json.Add(label, {{"ops_per_sec", r.ops_per_sec}});
    }
    printf(" %8.2fx\n", first > 0 ? last / first : 0);
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
