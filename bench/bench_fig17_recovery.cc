// Figure 17: LTC recovery duration.
//  (a) vs the number of memtables to recover (1 recovery thread): RDMA
//      READ of the log records runs at line rate; reconstructing the
//      memtables dominates.
//  (b) vs the number of recovery threads (δ = 64/256-equivalent).
// Paper: 4 GB of log records fetched < 1 s; 256 memtables recover in 13 s
// with 1 thread and 1.5 s with 32.
#include <chrono>

#include "bench_common.h"

namespace nova {
namespace bench {

double RecoverOnce(const BenchConfig& cfg, int memtables, int threads) {
  coord::ClusterOptions opt = PaperScaledOptions(2, 3);
  opt.device.time_scale = 0;  // isolate recovery CPU/log-read time
  opt.range.max_memtables = memtables + 2;
  opt.range.drange.theta = std::max(1, memtables / 2);
  opt.range.memtable_size = 64 << 10;
  opt.range.log.num_replicas = 3;
  // Keep everything in memtables: no flush pressure.
  opt.range.lsm.l0_stop_bytes = 1 << 30;
  opt.split_points = EvenSplitPoints(cfg.num_keys, 2);
  coord::Cluster cluster(opt);
  cluster.Start();
  // Fill roughly `memtables` memtables worth of log records in range 0.
  uint64_t records = memtables * (56ull << 10) / (cfg.value_size + 32);
  std::string value(cfg.value_size, 'r');
  Random rng(99);
  for (uint64_t i = 0; i < records; i++) {
    cluster.Put(MakeKey(rng.Uniform(cfg.num_keys / 2)), value);
  }
  cluster.KillLtc(0);
  auto t0 = std::chrono::steady_clock::now();
  cluster.RecoverLtcRanges(0, 1, threads);
  double sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  cluster.Stop();
  return sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 17: recovery duration");
  JsonArtifact artifact("fig17_recovery");
  printf("-- (a) memtables to recover (1 recovery thread) --\n");
  for (int memtables : {1, 8, 16, 32}) {
    double sec = RecoverOnce(cfg, memtables, 1);
    printf("delta=%-4d  %6.2f s\n", memtables, sec);
    fflush(stdout);
    artifact.Add("delta=" + std::to_string(memtables),
                 {{"memtables", memtables}, {"threads", 1},
                  {"recovery_seconds", sec}});
  }
  printf("-- (b) recovery threads (delta=32) --\n");
  for (int threads : {1, 2, 4, 8, 16}) {
    double sec = RecoverOnce(cfg, 32, threads);
    printf("threads=%-3d %6.2f s\n", threads, sec);
    fflush(stdout);
    artifact.Add("threads=" + std::to_string(threads),
                 {{"memtables", 32}, {"threads", threads},
                  {"recovery_seconds", sec}});
  }
  artifact.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
