// Figure 12: impact of skew — throughput of RW50/W100/SW50 as the access
// pattern moves from Uniform through Zipf 0.27 / 0.73 / 0.99.
// Paper: RW50 and W100 *gain* with skew (memtable hits; fewer unique keys
// so memtable merging avoids disk writes); SW50 *loses* (scans iterate
// many versions of hot keys).
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 12: impact of skew (eta=1, beta=10, rho=1, theta=16)");
  printf("%-6s %12s %12s %12s %12s\n", "wload", "Uniform", "Zipf0.27",
         "Zipf0.73", "Zipf0.99");
  JsonArtifact json("fig12_skew");
  for (WorkloadType type :
       {WorkloadType::kRW50, WorkloadType::kW100, WorkloadType::kSW50}) {
    printf("%-6s", WorkloadName(type));
    double base = 0;
    for (double theta : {0.0, 0.27, 0.73, 0.99}) {
      coord::ClusterOptions opt = PaperScaledOptions(1, 10);
      opt.range.drange.theta = 16;
      opt.range.max_memtables = 64;
      coord::Cluster cluster(opt);
      cluster.Start();
      WorkloadSpec spec;
      spec.num_keys = cfg.num_keys;
      spec.value_size = cfg.value_size;
      spec.type = WorkloadType::kW100;
      LoadData(&cluster, spec, cfg.client_threads);
      spec.type = type;
      spec.zipf_theta = theta;
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
      cluster.Stop();
      if (theta == 0.0) {
        base = r.ops_per_sec;
        printf(" %12.0f", r.ops_per_sec);
      } else {
        printf(" %8.0f(%.2f)", r.ops_per_sec,
               base > 0 ? r.ops_per_sec / base : 0);
      }
      fflush(stdout);
      char label[48];
      snprintf(label, sizeof(label), "%s/zipf%.2f", WorkloadName(type),
               theta);
      json.Add(label, {{"ops_per_sec", r.ops_per_sec},
                       {"vs_uniform", base > 0 ? r.ops_per_sec / base : 1}});
    }
    printf("\n");
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
