// LTC-side block cache. Two experiments:
//  1. Zipfian read-heavy throughput and StoC reads avoided at several
//     cache sizes vs. the uncached baseline (block_cache_bytes = 0). The
//     read path without a cache pays one StoC ReadBlock round-trip per
//     get; a warm cache serves hot blocks from LTC memory.
//  2. Mixed scan+get A/B over {compression, compressed tier, admission
//     policy}: full-keyspace scans interleaved with point gets of a hot
//     working set. Two-queue admission keeps the scan flood out of the
//     point-get working set; the compressed tier absorbs hot-tier misses
//     without StoC round trips; compression shrinks bytes_over_wire.
#include "bench_common.h"

#include "util/random.h"

namespace nova {
namespace bench {

namespace {

uint64_t TotalStocReads(coord::Cluster* cluster) {
  uint64_t total = 0;
  for (int i = 0; i < cluster->num_ltcs(); i++) {
    total += cluster->ltc(i)->stoc_client()->read_block_calls();
  }
  return total;
}

/// Cache-sensitive read-path cluster: unthrottled CPUs and a milder disk
/// so the StoC round-trips (not the virtual CPU or the load phase)
/// dominate.
coord::ClusterOptions ReadPathOptions() {
  coord::ClusterOptions opt = PaperScaledOptions(1, 4);
  opt.ltc.cpu_rate_us_per_sec = 0;
  opt.stoc.cpu_rate_us_per_sec = 0;
  opt.device.bandwidth_bytes_per_sec = 8.0 * 1024 * 1024;
  opt.device.seek_latency_us = 400;
  return opt;
}

void CacheSizeSweep(const BenchConfig& cfg, JsonArtifact* json) {
  PrintHeader(
      "Block cache: Zipf0.99 R100 vs block_cache_bytes (eta=1, beta=4)");
  printf("%-12s %10s %8s %14s %10s %8s\n", "cache", "ops/s", "speedup",
         "stoc-reads/1k", "reduction", "hit%");

  const size_t kSizes[] = {0, 256 << 10, 1 << 20, 4 << 20, 16 << 20};
  double base_ops = 0;
  double base_reads_per_op = 0;
  for (size_t cache_bytes : kSizes) {
    coord::ClusterOptions opt = ReadPathOptions();
    opt.ltc.block_cache_bytes = cache_bytes;
    coord::Cluster cluster(opt);
    cluster.Start();

    WorkloadSpec spec;
    spec.num_keys = cfg.num_keys;
    spec.value_size = cfg.value_size;
    spec.type = WorkloadType::kW100;
    LoadData(&cluster, spec, cfg.client_threads);
    // Push everything into SSTables so every get exercises the StoC read
    // path rather than the memtables.
    for (auto* engine : cluster.ltc(0)->ranges()) {
      engine->FlushAllMemtables();
      engine->WaitForQuiescence(/*flush_all=*/true);
    }

    spec.type = WorkloadType::kR100;
    spec.zipf_theta = 0.99;
    // Warm the cache (--warmup=N controls the window; default half the
    // measurement window), then measure. Hit% is windowed like the
    // StoC-read delta so load/warm-up misses don't understate the steady
    // state — raise --warmup when large caches look cold-start noisy.
    if (cfg.WarmupSeconds() > 0) {
      RunWorkload(&cluster, spec, cfg.WarmupSeconds(), cfg.client_threads);
    }
    uint64_t reads_before = TotalStocReads(&cluster);
    ltc::RangeStats before = cluster.TotalStats();
    RunResult r = RunWorkload(&cluster, spec, cfg.seconds,
                              cfg.client_threads);
    uint64_t reads = TotalStocReads(&cluster) - reads_before;
    ltc::RangeStats stats = cluster.TotalStats();
    cluster.Stop();

    double reads_per_op =
        r.total_ops > 0 ? static_cast<double>(reads) / r.total_ops : 0;
    uint64_t hits = stats.block_cache_hits - before.block_cache_hits;
    uint64_t lookups =
        hits + stats.block_cache_misses - before.block_cache_misses;
    double hit_pct = lookups > 0 ? 100.0 * hits / lookups : 0;
    char label[32];
    if (cache_bytes == 0) {
      snprintf(label, sizeof(label), "off");
      base_ops = r.ops_per_sec;
      base_reads_per_op = reads_per_op;
    } else {
      snprintf(label, sizeof(label), "%zuKB", cache_bytes >> 10);
    }
    printf("%-12s %10.0f %7.2fx %14.1f %9.2fx %7.1f%%\n", label,
           r.ops_per_sec, base_ops > 0 ? r.ops_per_sec / base_ops : 1.0,
           1000.0 * reads_per_op,
           reads_per_op > 0 && base_reads_per_op > 0
               ? base_reads_per_op / reads_per_op
               : 0.0,
           hit_pct);
    fflush(stdout);
    json->Add(std::string("sweep/") + label,
              {{"cache_bytes", static_cast<double>(cache_bytes)},
               {"ops_per_sec", r.ops_per_sec},
               {"stoc_reads_per_1k", 1000.0 * reads_per_op},
               {"hit_pct", hit_pct}});
  }
}

/// One A/B cell of the mixed scan+get experiment.
struct MixConfig {
  const char* label;
  int codec;               // range compression_codec (-1 = raw blocks)
  size_t compressed_bytes; // 0 = single tier
  double hot_fraction;     // >= 1.0 = classic LRU admission
};

void ScanGetMix(const BenchConfig& cfg, JsonArtifact* json) {
  PrintHeader(
      "Mixed scan+get A/B: compression x cache tiers x admission policy");
  printf("%-24s %9s %12s %9s %9s %9s\n", "config", "get-hit%",
         "get-stoc/1k", "scan s", "wire-MB", "raw/st");

  // The working set fits the hot tier with room to spare; the full
  // dataset is several times the hot tier, so every scan sweep is a
  // cache flood.
  const uint64_t kKeys = std::max<uint64_t>(2000, cfg.num_keys / 3);
  const uint64_t kWorkingSet = kKeys / 20;
  const int kRounds = 3;
  const int kGetsPerRound = 2000;

  const MixConfig kConfigs[] = {
      {"comp+2tier+2queue", 0, 8 << 20, 0.75},
      {"comp+2tier+classic", 0, 8 << 20, 1.0},
      {"comp+1tier+2queue", 0, 0, 0.75},
      {"comp+1tier+classic", 0, 0, 1.0},
      {"raw+1tier+2queue", -1, 0, 0.75},
  };
  for (const MixConfig& c : kConfigs) {
    coord::ClusterOptions opt = ReadPathOptions();
    opt.ltc.block_cache_bytes = 1 << 20;
    opt.ltc.compressed_cache_bytes = c.compressed_bytes;
    opt.ltc.cache_hot_fraction = c.hot_fraction;
    opt.range.compression_codec = c.codec;
    coord::Cluster cluster(opt);
    cluster.Start();

    WorkloadSpec spec;
    spec.num_keys = kKeys;
    spec.value_size = cfg.value_size;
    spec.type = WorkloadType::kW100;
    LoadData(&cluster, spec, cfg.client_threads);
    for (auto* engine : cluster.ltc(0)->ranges()) {
      engine->FlushAllMemtables();
      engine->WaitForQuiescence(/*flush_all=*/true);
    }

    // Warm the point-get working set, then alternate full-keyspace scan
    // sweeps with bursts of working-set gets. Hit rate and StoC reads
    // are windowed over the get bursts only, so they answer: did the
    // scan flood evict the point-get working set?
    Random rng(42);
    std::string value;
    for (uint64_t i = 0; i < kWorkingSet; i++) {
      cluster.Get(MakeKey(i), &value);
    }
    uint64_t get_hits = 0, get_lookups = 0, get_reads = 0, gets = 0;
    double scan_seconds = 0;
    for (int round = 0; round < kRounds; round++) {
      auto scan_start = std::chrono::steady_clock::now();
      for (uint64_t start = 0; start < kKeys; start += 1000) {
        std::vector<std::pair<std::string, std::string>> out;
        cluster.Scan(MakeKey(start), 1000, &out);
      }
      scan_seconds += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - scan_start)
                          .count();
      ltc::RangeStats before = cluster.TotalStats();
      uint64_t reads_before = TotalStocReads(&cluster);
      for (int g = 0; g < kGetsPerRound; g++) {
        cluster.Get(MakeKey(rng.Uniform(kWorkingSet)), &value);
      }
      ltc::RangeStats after = cluster.TotalStats();
      uint64_t hits =
          (after.block_cache_hits - before.block_cache_hits) +
          (after.block_cache_compressed_hits -
           before.block_cache_compressed_hits);
      uint64_t misses =
          (after.block_cache_misses - before.block_cache_misses) +
          (after.block_cache_compressed_misses -
           before.block_cache_compressed_misses);
      get_hits += hits;
      get_lookups += hits + misses;
      get_reads += TotalStocReads(&cluster) - reads_before;
      gets += kGetsPerRound;
    }
    ltc::RangeStats stats = cluster.TotalStats();
    cluster.Stop();

    double hit_pct = get_lookups > 0 ? 100.0 * get_hits / get_lookups : 0;
    double reads_per_1k =
        gets > 0 ? 1000.0 * static_cast<double>(get_reads) / gets : 0;
    double wire_mb =
        static_cast<double>(stats.bytes_over_wire) / (1024.0 * 1024.0);
    double ratio = stats.sstable_stored_bytes > 0
                       ? static_cast<double>(stats.sstable_raw_bytes) /
                             stats.sstable_stored_bytes
                       : 0;
    printf("%-24s %8.1f%% %12.1f %9.2f %9.1f %8.2fx\n", c.label, hit_pct,
           reads_per_1k, scan_seconds, wire_mb, ratio);
    fflush(stdout);
    json->Add(std::string("mix/") + c.label,
              {{"get_hit_pct", hit_pct},
               {"get_stoc_reads_per_1k", reads_per_1k},
               {"scan_seconds", scan_seconds},
               {"bytes_over_wire", static_cast<double>(stats.bytes_over_wire)},
               {"compressed_ratio", ratio}});
  }
}

}  // namespace

void Run(const BenchConfig& cfg) {
  JsonArtifact json("block_cache");
  CacheSizeSweep(cfg, &json);
  ScanGetMix(cfg, &json);
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
