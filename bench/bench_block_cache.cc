// LTC-side block cache: Zipfian read-heavy throughput and StoC reads
// avoided at several cache sizes vs. the uncached baseline
// (block_cache_bytes = 0). The read path without a cache pays one StoC
// ReadBlock round-trip per get; a warm cache serves hot blocks from LTC
// memory, so both ops/s and the StoC read count improve with capacity
// until the hot set fits.
#include "bench_common.h"

namespace nova {
namespace bench {

namespace {

uint64_t TotalStocReads(coord::Cluster* cluster) {
  uint64_t total = 0;
  for (int i = 0; i < cluster->num_ltcs(); i++) {
    total += cluster->ltc(i)->stoc_client()->read_block_calls();
  }
  return total;
}

}  // namespace

void Run(const BenchConfig& cfg) {
  PrintHeader(
      "Block cache: Zipf0.99 R100 vs block_cache_bytes (eta=1, beta=4)");
  printf("%-12s %10s %8s %14s %10s %8s\n", "cache", "ops/s", "speedup",
         "stoc-reads/1k", "reduction", "hit%");

  const size_t kSizes[] = {0, 256 << 10, 1 << 20, 4 << 20, 16 << 20};
  double base_ops = 0;
  double base_reads_per_op = 0;
  for (size_t cache_bytes : kSizes) {
    coord::ClusterOptions opt = PaperScaledOptions(1, 4);
    // Read-path experiment: unthrottled CPUs and a milder disk so the
    // StoC round-trips (not the virtual CPU or the load phase) dominate.
    opt.ltc.cpu_rate_us_per_sec = 0;
    opt.stoc.cpu_rate_us_per_sec = 0;
    opt.device.bandwidth_bytes_per_sec = 8.0 * 1024 * 1024;
    opt.device.seek_latency_us = 400;
    opt.ltc.block_cache_bytes = cache_bytes;
    coord::Cluster cluster(opt);
    cluster.Start();

    WorkloadSpec spec;
    spec.num_keys = cfg.num_keys;
    spec.value_size = cfg.value_size;
    spec.type = WorkloadType::kW100;
    LoadData(&cluster, spec, cfg.client_threads);
    // Push everything into SSTables so every get exercises the StoC read
    // path rather than the memtables.
    for (auto* engine : cluster.ltc(0)->ranges()) {
      engine->FlushAllMemtables();
      engine->WaitForQuiescence(/*flush_all=*/true);
    }

    spec.type = WorkloadType::kR100;
    spec.zipf_theta = 0.99;
    // Warm the cache (--warmup=N controls the window; default half the
    // measurement window), then measure. Hit% is windowed like the
    // StoC-read delta so load/warm-up misses don't understate the steady
    // state — raise --warmup when large caches look cold-start noisy.
    if (cfg.WarmupSeconds() > 0) {
      RunWorkload(&cluster, spec, cfg.WarmupSeconds(), cfg.client_threads);
    }
    uint64_t reads_before = TotalStocReads(&cluster);
    ltc::RangeStats before = cluster.TotalStats();
    RunResult r = RunWorkload(&cluster, spec, cfg.seconds,
                              cfg.client_threads);
    uint64_t reads = TotalStocReads(&cluster) - reads_before;
    ltc::RangeStats stats = cluster.TotalStats();
    cluster.Stop();

    double reads_per_op =
        r.total_ops > 0 ? static_cast<double>(reads) / r.total_ops : 0;
    uint64_t hits = stats.block_cache_hits - before.block_cache_hits;
    uint64_t lookups =
        hits + stats.block_cache_misses - before.block_cache_misses;
    double hit_pct = lookups > 0 ? 100.0 * hits / lookups : 0;
    char label[32];
    if (cache_bytes == 0) {
      snprintf(label, sizeof(label), "off");
      base_ops = r.ops_per_sec;
      base_reads_per_op = reads_per_op;
    } else {
      snprintf(label, sizeof(label), "%zuKB", cache_bytes >> 10);
    }
    printf("%-12s %10.0f %7.2fx %14.1f %9.2fx %7.1f%%\n", label,
           r.ops_per_sec, base_ops > 0 ? r.ops_per_sec / base_ops : 1.0,
           1000.0 * reads_per_op,
           reads_per_op > 0 && base_reads_per_op > 0
               ? base_reads_per_op / reads_per_op
               : 0.0,
           hit_pct);
    fflush(stdout);
  }
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
