// Table 7: average / p95 / p99 / p999 response times under a LOW load
// (few client threads) with the 2 TB-equivalent database and Zipfian
// access: R100, RW50, SW50, W100 for LevelDB*, RocksDB* (shared-nothing:
// 85% of requests queue on one disk) vs Nova-LSM (indexes + all 10
// disks). Paper: Nova-LSM improves avg/p95/p99 by >3x.
//
// The tail columns (p99/p999) are also measured under a slow-StoC
// scenario for Nova-LSM: one straggling disk, with the read path's
// power-of-d replica selection and hedging absorbing the skew.
#include "bench_common.h"

namespace nova {
namespace bench {

void RunSystem(const BenchConfig& cfg, baseline::System system,
               JsonArtifact* art, uint64_t straggler_us) {
  coord::ClusterOptions opt = PaperScaledOptions(10, 10);
  int ranges_per_server = 1;
  baseline::ConfigureSystem(system, 16, &opt, &ranges_per_server);
  opt.split_points =
      EvenSplitPoints(cfg.num_keys * 2, 10 * std::min(ranges_per_server, 4));
  bool nova = system == baseline::System::kNovaLsm;
  opt.placement.rho = nova ? 3 : 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  if (!nova) {
    baseline::MakeSharedNothing(&cluster);
  }
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys * 2;  // "2 TB" scaled
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  if (straggler_us > 0) {
    cluster.device(0)->InjectLatency(straggler_us);
  }
  std::string row_label = baseline::SystemName(system);
  if (straggler_us > 0) {
    row_label += "+straggler";
  }
  printf("%-22s", row_label.c_str());
  for (WorkloadType type : {WorkloadType::kR100, WorkloadType::kRW50,
                            WorkloadType::kSW50, WorkloadType::kW100}) {
    spec.type = type;
    spec.zipf_theta = 0.99;
    // Low system load: 2 closed-loop clients (paper: 60 threads on a
    // 10-node cluster ≙ light).
    RunResult r = RunWorkload(&cluster, spec, cfg.seconds, 2);
    Histogram merged;
    merged.Merge(*r.read_latency);
    merged.Merge(*r.write_latency);
    merged.Merge(*r.scan_latency);
    printf(" | %6.1f %6.1f %6.1f %6.1f", merged.Average() / 1000.0,
           merged.Percentile(95) / 1000.0, merged.Percentile(99) / 1000.0,
           merged.Percentile(99.9) / 1000.0);
    fflush(stdout);
    art->Add(row_label + "_" + WorkloadName(type),
             {{"avg_us", merged.Average()},
              {"p95_us", merged.Percentile(95)},
              {"p99_us", merged.Percentile(99)},
              {"p999_us", merged.Percentile(99.9)}});
  }
  printf("\n");
  cluster.Stop();
}

void Run(const BenchConfig& cfg) {
  JsonArtifact art("table07_latency");
  PrintHeader("Table 7: response times (ms), Zipfian, 2TB-eq, low load");
  printf("%-22s | %27s | %27s | %27s | %27s\n", "",
         "R100 avg/p95/p99/p999", "RW50 avg/p95/p99/p999",
         "SW50 avg/p95/p99/p999", "W100 avg/p95/p99/p999");
  RunSystem(cfg, baseline::System::kLevelDBStar, &art, 0);
  RunSystem(cfg, baseline::System::kRocksDBStar, &art, 0);
  RunSystem(cfg, baseline::System::kNovaLsm, &art, 0);
  // The slow-StoC tail scenario: one disk +10 ms; Nova's replicated read
  // path (power-of-d + hedging) keeps the p99/p999 columns bounded.
  RunSystem(cfg, baseline::System::kNovaLsm, &art, 10 * 1000);
  art.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
