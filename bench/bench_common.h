// Shared setup for the paper-reproduction benchmarks. All benchmarks run
// the simulated cluster with constants scaled 1/64 from the paper
// (DESIGN.md Section 2): τ = 256 KB memtables, 2 MB/s + 1.5 ms-seek disks,
// "10 GB database" ≙ 160k 1 KB records. Durations are scaled so every
// binary finishes in tens of seconds; pass --seconds=N to lengthen runs.
#ifndef NOVA_BENCH_BENCH_COMMON_H_
#define NOVA_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "baseline/baseline.h"
#include "bench_core/workload.h"
#include "coord/cluster.h"

namespace nova {
namespace bench {

struct BenchConfig {
  double seconds = 2.5;       // measurement window per data point
  uint64_t num_keys = 24000;  // ≙ paper's 10 GB at 1/64 scale+reduced count
  int client_threads = 8;
  size_t value_size = 1024;
  /// Warm-up window run before the measurement window (cache-sensitive
  /// benches); < 0 = the bench's default (half the measurement window).
  double warmup_seconds = -1;
  /// Machine-readable results: benches that support it also write their
  /// numbers to this path as JSON (e.g. BENCH_compaction.json) so perf
  /// regressions are diffable across PRs. Empty = stdout only.
  std::string json_path;

  double WarmupSeconds() const {
    return warmup_seconds < 0 ? seconds / 2 : warmup_seconds;
  }
};

inline BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig cfg;
  for (int i = 1; i < argc; i++) {
    double d;
    long long n;
    if (sscanf(argv[i], "--seconds=%lf", &d) == 1) {
      cfg.seconds = d;
    } else if (sscanf(argv[i], "--warmup=%lf", &d) == 1) {
      cfg.warmup_seconds = d;
    } else if (sscanf(argv[i], "--keys=%lld", &n) == 1) {
      cfg.num_keys = n;
    } else if (sscanf(argv[i], "--threads=%lld", &n) == 1) {
      cfg.client_threads = static_cast<int>(n);
    } else if (strncmp(argv[i], "--json=", 7) == 0) {
      cfg.json_path = argv[i] + 7;
    }
  }
  return cfg;
}

/// Flat JSON artifact: one object per measured configuration, numeric
/// fields only. Kept deliberately simple — labels must not contain
/// quotes or backslashes.
class JsonArtifact {
 public:
  explicit JsonArtifact(std::string bench) : bench_(std::move(bench)) {}

  void Add(std::string label,
           std::vector<std::pair<std::string, double>> fields) {
    rows_.emplace_back(std::move(label), std::move(fields));
  }

  /// Writes {"bench": ..., "results": [...]}; no-op on an empty path (no
  /// --json flag given).
  void Write(const std::string& path) const {
    if (path.empty()) {
      return;
    }
    FILE* f = fopen(path.c_str(), "w");
    if (f == nullptr) {
      fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    fprintf(f, "{\n  \"bench\": \"%s\",\n  \"results\": [\n", bench_.c_str());
    for (size_t i = 0; i < rows_.size(); i++) {
      fprintf(f, "    {\"label\": \"%s\"", rows_[i].first.c_str());
      for (const auto& [key, value] : rows_[i].second) {
        fprintf(f, ", \"%s\": %.6g", key.c_str(), value);
      }
      fprintf(f, "}%s\n", i + 1 < rows_.size() ? "," : "");
    }
    fprintf(f, "  ]\n}\n");
    fclose(f);
    printf("wrote %s\n", path.c_str());
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>>
      rows_;
};

/// Paper-scaled cluster defaults: per-node CPU throttle, HDD-like device.
inline coord::ClusterOptions PaperScaledOptions(int ltcs, int stocs) {
  coord::ClusterOptions opt;
  opt.num_ltcs = ltcs;
  opt.num_stocs = stocs;
  // Scaled HDD: 2 MB/s ≙ 128 MB/s, 1.5 ms seek.
  opt.device.bandwidth_bytes_per_sec = 2.0 * 1024 * 1024;
  opt.device.seek_latency_us = 1500;
  // Per-node virtual CPU (LTCs bottleneck on CPU in the paper's
  // CPU-intensive workloads; StoCs rarely do).
  opt.ltc.cpu_rate_us_per_sec = 400000;   // 0.4 virtual cores
  opt.stoc.cpu_rate_us_per_sec = 800000;
  // τ = 256 KB; δ = 32 memtables (≙ 8 MB per range budget by default —
  // individual benches override α/δ per experiment).
  opt.range.memtable_size = 256 << 10;
  opt.range.max_memtables = 32;
  opt.range.drange.theta = 8;
  opt.range.drange.warmup_writes = 2000;
  opt.range.max_sstable_size = 256 << 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 4 << 20;
  opt.range.lsm.l0_stop_bytes = 32 << 20;  // ≙ paper's 2 GB L0 cap
  opt.range.lsm.base_level_bytes = 16 << 20;
  opt.range.max_parallel_compactions = 4;
  opt.range.log.mode = logc::LogMode::kNone;  // paper default: disabled
  opt.range.manifest_replicas = 1;
  opt.placement.rho = 1;
  opt.placement.power_of_d = true;
  opt.stoc.page_cache_bytes = 8 << 20;  // ≙ a few GB of page cache
  opt.stoc.slab_bytes = 192 << 20;
  opt.stoc.slab_page_bytes = 512 << 10;
  return opt;
}

inline void PrintHeader(const char* title) {
  printf("==================================================================\n");
  printf("%s\n", title);
  printf("(simulated cluster, constants scaled 1/64 — see DESIGN.md)\n");
  printf("==================================================================\n");
  fflush(stdout);
}

}  // namespace bench
}  // namespace nova

#endif  // NOVA_BENCH_BENCH_COMMON_H_
