// Table 2: analytical MTTF of one SSTable and of the whole storage layer
// as a function of the scatter width ρ, with no redundancy (R=1) vs a
// parity-based technique, using the RAID-style model of [59] with the
// paper's assumptions: StoC MTTF = 4.3 months, repair time = 1 hour,
// β = 10 StoCs.
//
// ISSUE 9 extension: the analytical model takes the repair window as an
// *assumption* (1 hour). With the repair manager in place we can also
// *measure* it — kill a StoC under load and time how long fragments stay
// degraded before automatic re-replication closes the window. The
// measured section reports that window alongside the analytical rows.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_common.h"

namespace {

constexpr double kHoursPerYear = 24 * 365.0;
constexpr double kStocMttfHours = 4.3 * 30 * 24;  // 4.3 months
constexpr double kRepairHours = 1.0;
constexpr int kBeta = 10;

// With no redundancy, a ρ-fragment SSTable dies when any of its ρ StoCs
// dies: MTTF = MTTF_stoc / ρ.
double MttfNoRedundancy(int rho) { return kStocMttfHours / rho; }

// With one parity block (ρ data + 1 parity on distinct StoCs), data loss
// needs a second failure among the remaining ρ StoCs within the repair
// window: MTTF ≈ MTTF^2 / ((ρ+1) * ρ * repair).
double MttfParity(int rho) {
  return kStocMttfHours * kStocMttfHours /
         ((rho + 1.0) * rho * kRepairHours);
}

// Storage layer: blocks of SSTables are scattered across all β StoCs, so
// layer MTTF is independent of ρ (paper's observation).
double LayerNoRedundancy() { return kStocMttfHours / kBeta; }
double LayerParity() {
  return kStocMttfHours * kStocMttfHours /
         (kBeta * (kBeta - 1.0) * kRepairHours);
}

std::string Fmt(double hours) {
  char buf[64];
  if (hours >= kHoursPerYear) {
    snprintf(buf, sizeof(buf), "%.0f yrs", hours / kHoursPerYear);
  } else if (hours >= 24 * 30) {
    snprintf(buf, sizeof(buf), "%.1f months", hours / (24 * 30));
  } else {
    snprintf(buf, sizeof(buf), "%.0f days", hours / 24);
  }
  return buf;
}

struct MeasuredRepair {
  double window_seconds = 0;   // first degraded seen -> all repaired
  double repair_seconds = 0;   // repair manager's own accumulated window
  double repaired_fragments = 0;
  double repaired_bytes = 0;
  double peak_degraded = 0;
};

// Kill a loaded StoC and measure how long the repair manager takes to
// drive degraded_fragments back to zero — no operator action in between.
bool MeasureRepairWindow(const nova::bench::BenchConfig& cfg,
                         MeasuredRepair* out) {
  using namespace nova;
  coord::ClusterOptions opt = bench::PaperScaledOptions(1, 4);
  // Wall-clock repair measurement: drop the simulated-disk and
  // virtual-CPU scaling so the window reflects detector verdict plus
  // re-replication I/O, not the 1/64 throttle model.
  opt.device.time_scale = 0;
  opt.ltc.cpu_rate_us_per_sec = 0;
  opt.stoc.cpu_rate_us_per_sec = 0;
  opt.placement.rho = 2;
  opt.placement.num_data_replicas = 1;
  opt.placement.num_meta_replicas = 2;
  opt.placement.use_parity = true;
  opt.range.manifest_replicas = 1;  // manifest pinned to StoC 0
  opt.membership.failure_threshold = 2;
  opt.membership.dead_after_ms = 150;
  opt.membership.rejoin_probes = 1;
  opt.membership.probe_interval_ms = 5;
  opt.ltc.repair.scan_interval_ms = 10;
  coord::Cluster cluster(opt);
  cluster.Start();

  Random rng(42);
  ZipfianGenerator zipf(cfg.num_keys, 0.99);
  std::string value(cfg.value_size, 'm');
  for (uint64_t i = 0; i < cfg.num_keys; i++) {
    cluster.Put(bench::MakeKey(zipf.Next(&rng)), value);
  }
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  // Kill the last StoC (StoC 0 holds the manifest replica).
  cluster.KillStoc(opt.num_stocs - 1);
  auto killed = std::chrono::steady_clock::now();
  auto deadline = killed + std::chrono::seconds(60);
  uint64_t peak = 0;
  bool healed = false;
  std::chrono::steady_clock::time_point healed_at;
  while (std::chrono::steady_clock::now() < deadline) {
    ltc::RangeStats stats = cluster.TotalStats();
    peak = std::max(peak, stats.degraded_fragments);
    // Unthrottled repair can finish between two polls, so the transient
    // gauge peak is best-effort; repaired_fragments is the ground truth
    // that the window opened and closed.
    if (stats.repaired_fragments > 0 && stats.degraded_fragments == 0) {
      healed = true;
      healed_at = std::chrono::steady_clock::now();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ltc::RangeStats stats = cluster.TotalStats();
  if (healed) {
    out->window_seconds =
        std::chrono::duration<double>(healed_at - killed).count();
    out->repair_seconds = stats.repair_us / 1e6;
    out->repaired_fragments = static_cast<double>(stats.repaired_fragments);
    out->repaired_bytes = static_cast<double>(stats.repaired_bytes);
    out->peak_degraded = static_cast<double>(peak);
  }
  cluster.Stop();
  return healed;
}

}  // namespace

int main(int argc, char** argv) {
  nova::bench::BenchConfig cfg = nova::bench::ParseArgs(argc, argv);
  nova::bench::JsonArtifact artifact("table02_mttf");
  printf("==================================================================\n");
  printf("Table 2: MTTF of a SSTable / storage layer vs rho (beta=10,\n");
  printf("StoC MTTF=4.3 months, repair=1h) — analytical model of [59]\n");
  printf("==================================================================\n");
  printf("%-4s %16s %16s %16s %16s %10s\n", "rho", "SSTable R=1",
         "SSTable Parity", "Storage R=1", "Storage Parity", "overhead");
  for (int rho : {1, 3, 5}) {
    printf("%-4d %16s %16s %16s %16s %9.0f%%\n", rho,
           Fmt(MttfNoRedundancy(rho)).c_str(), Fmt(MttfParity(rho)).c_str(),
           Fmt(LayerNoRedundancy()).c_str(), Fmt(LayerParity()).c_str(),
           100.0 / rho);
    artifact.Add("rho=" + std::to_string(rho),
                 {{"sstable_r1_hours", MttfNoRedundancy(rho)},
                  {"sstable_parity_hours", MttfParity(rho)},
                  {"storage_r1_hours", LayerNoRedundancy()},
                  {"storage_parity_hours", LayerParity()},
                  {"space_overhead_pct", 100.0 / rho}});
  }
  printf("\nPaper: rho=1 -> 4.3 months / 554 yrs; rho=3 -> 1.4 months / 91\n");
  printf("yrs; rho=5 -> 26 days / 36 yrs; storage layer 13 days without\n");
  printf("redundancy.\n");

  printf("\nMeasured repair window (rho=2 + parity on 4 StoCs, automatic\n");
  printf("re-replication after a StoC death verdict):\n");
  MeasuredRepair measured;
  if (MeasureRepairWindow(cfg, &measured)) {
    printf("  kill -> fully repaired   %8.3f s (detector + repair)\n",
           measured.window_seconds);
    printf("  repair manager window    %8.3f s\n", measured.repair_seconds);
    printf("  fragments re-replicated  %8.0f (peak degraded %.0f)\n",
           measured.repaired_fragments, measured.peak_degraded);
    printf("  bytes rewritten          %8.0f\n", measured.repaired_bytes);
    artifact.Add("measured_repair",
                 {{"window_seconds", measured.window_seconds},
                  {"repair_seconds", measured.repair_seconds},
                  {"repaired_fragments", measured.repaired_fragments},
                  {"repaired_bytes", measured.repaired_bytes},
                  {"peak_degraded", measured.peak_degraded}});
  } else {
    printf("  repair did not converge within 60 s (see logs)\n");
  }
  printf("\nThe analytical model assumes a 1 h repair window on real\n");
  printf("hardware; the measured window above is the simulated cluster's\n");
  printf("actual detector verdict + re-replication time for the loaded\n");
  printf("fraction of a scaled-down store.\n");
  artifact.Write(cfg.json_path);
  return 0;
}
