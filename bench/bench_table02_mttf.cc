// Table 2: analytical MTTF of one SSTable and of the whole storage layer
// as a function of the scatter width ρ, with no redundancy (R=1) vs a
// parity-based technique, using the RAID-style model of [59] with the
// paper's assumptions: StoC MTTF = 4.3 months, repair time = 1 hour,
// β = 10 StoCs.
#include <cmath>
#include <string>
#include <cstdio>

namespace {

constexpr double kHoursPerYear = 24 * 365.0;
constexpr double kStocMttfHours = 4.3 * 30 * 24;  // 4.3 months
constexpr double kRepairHours = 1.0;
constexpr int kBeta = 10;

// With no redundancy, a ρ-fragment SSTable dies when any of its ρ StoCs
// dies: MTTF = MTTF_stoc / ρ.
double MttfNoRedundancy(int rho) { return kStocMttfHours / rho; }

// With one parity block (ρ data + 1 parity on distinct StoCs), data loss
// needs a second failure among the remaining ρ StoCs within the repair
// window: MTTF ≈ MTTF^2 / ((ρ+1) * ρ * repair).
double MttfParity(int rho) {
  return kStocMttfHours * kStocMttfHours /
         ((rho + 1.0) * rho * kRepairHours);
}

// Storage layer: blocks of SSTables are scattered across all β StoCs, so
// layer MTTF is independent of ρ (paper's observation).
double LayerNoRedundancy() { return kStocMttfHours / kBeta; }
double LayerParity() {
  return kStocMttfHours * kStocMttfHours /
         (kBeta * (kBeta - 1.0) * kRepairHours);
}

std::string Fmt(double hours) {
  char buf[64];
  if (hours >= kHoursPerYear) {
    snprintf(buf, sizeof(buf), "%.0f yrs", hours / kHoursPerYear);
  } else if (hours >= 24 * 30) {
    snprintf(buf, sizeof(buf), "%.1f months", hours / (24 * 30));
  } else {
    snprintf(buf, sizeof(buf), "%.0f days", hours / 24);
  }
  return buf;
}

}  // namespace

int main() {
  printf("==================================================================\n");
  printf("Table 2: MTTF of a SSTable / storage layer vs rho (beta=10,\n");
  printf("StoC MTTF=4.3 months, repair=1h) — analytical model of [59]\n");
  printf("==================================================================\n");
  printf("%-4s %16s %16s %16s %16s %10s\n", "rho", "SSTable R=1",
         "SSTable Parity", "Storage R=1", "Storage Parity", "overhead");
  for (int rho : {1, 3, 5}) {
    printf("%-4d %16s %16s %16s %16s %9.0f%%\n", rho,
           Fmt(MttfNoRedundancy(rho)).c_str(), Fmt(MttfParity(rho)).c_str(),
           Fmt(LayerNoRedundancy()).c_str(), Fmt(LayerParity()).c_str(),
           100.0 / rho);
  }
  printf("\nPaper: rho=1 -> 4.3 months / 554 yrs; rho=3 -> 1.4 months / 91\n");
  printf("yrs; rho=5 -> 26 days / 36 yrs; storage layer 13 days without\n");
  printf("redundancy.\n");
  return 0;
}
