// Figure 13: throughput and scalability of one LTC as β grows 1→10
// (ρ=1, power-of-2, α=64-equiv). Paper: W100 scales best; RW50/SW50 hit
// the LTC's CPU around 5 StoCs; Zipfian saturates the LTC CPU earlier.
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 13: scaling StoCs with one LTC (rho=1, power-of-2)");
  printf("%-6s %-8s", "wload", "dist");
  for (int beta : {1, 3, 5, 10}) {
    printf("   beta=%-2d  ", beta);
  }
  printf(" scal(10/1)\n");
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig13_stoc_scaling");
  for (const Point& p : points) {
    printf("%-6s %-8s", WorkloadName(p.type),
           p.theta > 0 ? "Zipfian" : "Uniform");
    double first = 0, last = 0;
    for (int beta : {1, 3, 5, 10}) {
      coord::ClusterOptions opt = PaperScaledOptions(1, beta);
      opt.placement.rho = 1;
      coord::Cluster cluster(opt);
      cluster.Start();
      WorkloadSpec spec;
      spec.num_keys = cfg.num_keys;
      spec.value_size = cfg.value_size;
      spec.type = WorkloadType::kW100;
      LoadData(&cluster, spec, cfg.client_threads);
      spec.type = p.type;
      spec.zipf_theta = p.theta;
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
      cluster.Stop();
      if (beta == 1) first = r.ops_per_sec;
      last = r.ops_per_sec;
      printf(" %10.0f ", r.ops_per_sec);
      fflush(stdout);
      char label[48];
      snprintf(label, sizeof(label), "%s/%s/beta%d", WorkloadName(p.type),
               p.theta > 0 ? "Zipfian" : "Uniform", beta);
      json.Add(label, {{"ops_per_sec", r.ops_per_sec}});
    }
    printf(" %8.2fx\n", first > 0 ? last / first : 0);
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
