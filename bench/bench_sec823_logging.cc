// Section 8.2.3: logging overhead.
//  (a) Put service time: logging disabled vs 3x in-memory replication via
//      one-sided RDMA vs the NIC path (StoC CPUs do the copies).
//      Paper: 0.49 ms vs 0.51 ms (+4%) vs 1.07 ms (2.1x RDMA).
//  (b) Throughput impact of logging under W100 Uniform and Zipfian.
#include "bench_common.h"

namespace nova {
namespace bench {

void RunServiceTime(const BenchConfig& cfg, JsonArtifact* json,
                    const char* label, logc::LogMode mode, bool nic) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 3);
  opt.range.log.mode = mode;
  opt.range.log.num_replicas = 3;
  opt.range.log.use_nic_path = nic;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys / 4;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds / 2, 4);
  printf("%-34s avg %7.0f us  p95 %7.0f us  (%6.0f ops/s)\n", label,
         r.write_latency->Average(), r.write_latency->Percentile(95),
         r.ops_per_sec);
  fflush(stdout);
  json->Add(std::string("service/") + label,
            {{"avg_us", r.write_latency->Average()},
             {"p95_us", r.write_latency->Percentile(95)},
             {"ops_per_sec", r.ops_per_sec}});
  cluster.Stop();
}

void RunThroughput(const BenchConfig& cfg, JsonArtifact* json,
                   const char* label, double theta, logc::LogMode mode) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 10);
  opt.range.log.mode = mode;
  opt.range.log.num_replicas = 3;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  spec.zipf_theta = theta;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  printf("%-34s %9.0f ops/s\n", label, r.ops_per_sec);
  fflush(stdout);
  json->Add(std::string("throughput/") + label,
            {{"ops_per_sec", r.ops_per_sec}});
  cluster.Stop();
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Section 8.2.3: logging overhead");
  JsonArtifact json("sec823_logging");
  printf("-- put service time (3 replicas) --\n");
  RunServiceTime(cfg, &json, "logging disabled", logc::LogMode::kNone, false);
  RunServiceTime(cfg, &json, "RDMA in-memory replication x3",
                 logc::LogMode::kInMemory, false);
  RunServiceTime(cfg, &json, "NIC-path replication x3 (StoC CPU)",
                 logc::LogMode::kInMemory, true);
  printf("-- W100 throughput --\n");
  RunThroughput(cfg, &json, "Uniform, logging off", 0, logc::LogMode::kNone);
  RunThroughput(cfg, &json, "Uniform, logging on", 0,
                logc::LogMode::kInMemory);
  RunThroughput(cfg, &json, "Zipfian, logging off", 0.99,
                logc::LogMode::kNone);
  RunThroughput(cfg, &json, "Zipfian, logging on", 0.99,
                logc::LogMode::kInMemory);
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
