// Figure 16: SSTable replication degree R ∈ {1, 2, 3, Hybrid} under
// Uniform (η=1, β=10). (a) throughput: replication consumes disk
// bandwidth, halving W100 at R=2; SW50 (CPU-bound) barely moves.
// (b) per-StoC disk bandwidth utilization for W100.
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 16: SSTable replication (Uniform, eta=1, beta=10)");
  struct Mode {
    const char* label;
    int replicas;
    bool parity;
  };
  Mode modes[] = {{"R=1", 1, false},
                  {"R=2", 2, false},
                  {"R=3", 3, false},
                  {"Hybrid", 1, true}};
  printf("%-6s", "wload");
  for (const Mode& m : modes) {
    printf(" %12s", m.label);
  }
  printf("\n");
  JsonArtifact json("fig16_replication");
  for (WorkloadType type :
       {WorkloadType::kRW50, WorkloadType::kW100, WorkloadType::kSW50}) {
    printf("%-6s", WorkloadName(type));
    for (const Mode& m : modes) {
      coord::ClusterOptions opt = PaperScaledOptions(1, 10);
      opt.placement.rho = 3;
      opt.placement.num_data_replicas = m.replicas;
      opt.placement.use_parity = m.parity;
      opt.placement.num_meta_replicas = m.parity ? 3 : 1;
      coord::Cluster cluster(opt);
      cluster.Start();
      WorkloadSpec spec;
      spec.num_keys = cfg.num_keys;
      spec.value_size = cfg.value_size;
      spec.type = WorkloadType::kW100;
      LoadData(&cluster, spec, cfg.client_threads);
      spec.type = type;
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
      printf(" %12.0f", r.ops_per_sec);
      fflush(stdout);
      double util_sum = 0;
      if (type == WorkloadType::kW100) {
        // (b): record per-StoC disk bandwidth for the W100 row.
        printf("\n    %s disk util:", m.label);
        for (int i = 0; i < cluster.num_stocs(); i++) {
          double util = cluster.device(i)->WindowUtilization();
          util_sum += util;
          printf(" %2.0f%%", 100.0 * util);
        }
        printf("\n%-6s", "");
      }
      cluster.Stop();
      json.Add(std::string(WorkloadName(type)) + "/" + m.label,
               {{"ops_per_sec", r.ops_per_sec},
                {"avg_disk_util_pct",
                 type == WorkloadType::kW100
                     ? 100.0 * util_sum / cluster.num_stocs()
                     : 0}});
    }
    printf("\n");
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
