// Table 4: vertical scalability — W100 Uniform throughput as the memory
// assigned to one LTC grows (α/δ doubling, τ fixed), η=1, β=10, ρ=1.
// Paper: 8.9k ops/s at 32 MB (δ=2) rising super-linearly to ~246k at
// 4 GB (δ=256), leveling off once StoC bandwidth saturates.
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Table 4: W100 Uniform vs memory size (eta=1, beta=10, rho=1)");
  printf("%-12s %5s %5s %12s %10s\n", "memory(eq)", "alpha", "delta",
         "ops/s", "stall%");
  struct Row {
    const char* label;
    int alpha;
    int delta;
  };
  // τ=256 KB: δ=2 ≙ the paper's 32 MB two-memtable config at 1/64 scale.
  Row rows[] = {{"32 MB", 1, 2},   {"64 MB", 2, 4},   {"128 MB", 4, 8},
                {"256 MB", 8, 16}, {"512 MB", 16, 32}, {"1 GB", 32, 64},
                {"2 GB", 64, 128}};
  JsonArtifact json("table04_memory");
  for (const Row& row : rows) {
    coord::ClusterOptions opt = PaperScaledOptions(1, 10);
    opt.range.max_memtables = row.delta;
    opt.range.drange.theta = row.alpha;
    opt.range.num_active_memtables = row.alpha;
    opt.range.max_parallel_compactions = std::max(1, row.alpha / 2);
    opt.placement.rho = 1;
    coord::Cluster cluster(opt);
    cluster.Start();
    WorkloadSpec spec;
    spec.num_keys = cfg.num_keys;
    spec.value_size = cfg.value_size;
    spec.type = WorkloadType::kW100;
    RunResult r =
        RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
    auto stats = cluster.TotalStats();
    printf("%-12s %5d %5d %12.0f %9.1f%%\n", row.label, row.alpha,
           row.delta, r.ops_per_sec,
           100.0 * stats.stall_us / 1e6 / r.duration_sec /
               cfg.client_threads);
    fflush(stdout);
    json.Add(row.label,
             {{"alpha", static_cast<double>(row.alpha)},
              {"delta", static_cast<double>(row.delta)},
              {"ops_per_sec", r.ops_per_sec},
              {"stall_pct", 100.0 * stats.stall_us / 1e6 / r.duration_sec /
                                cfg.client_threads}});
    cluster.Stop();
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
