// Figure 18b-d: ten servers with 100 GB / 1 TB / 2 TB-equivalent databases
// (scaled: larger key counts shrink the page-cache hit rate, as in the
// paper where bigger databases exhaust the OS cache). Systems: LevelDB*,
// RocksDB*, RocksDB-tuned (all shared-nothing), Nova-LSM (shared-disk,
// ρ=3 power-of-6) with and without logging.
// Paper: >10x wins for Nova-LSM on Zipfian; comparable on Uniform reads.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunSystem(const BenchConfig& cfg, baseline::System system,
                 uint64_t num_keys, WorkloadType type, double theta,
                 bool logging) {
  coord::ClusterOptions opt = PaperScaledOptions(10, 10);
  int ranges_per_server = 1;
  baseline::ConfigureSystem(system, 16, &opt, &ranges_per_server);
  opt.split_points =
      EvenSplitPoints(num_keys, 10 * std::min(ranges_per_server, 4));
  bool nova = system == baseline::System::kNovaLsm;
  opt.placement.rho = nova ? 3 : 1;
  if (logging) {
    opt.range.log.mode = logc::LogMode::kInMemory;
    opt.range.log.num_replicas = 3;
  }
  coord::Cluster cluster(opt);
  cluster.Start();
  if (!nova) {
    baseline::MakeSharedNothing(&cluster);
  }
  WorkloadSpec spec;
  spec.num_keys = num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = type;
  spec.zipf_theta = theta;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 18b-d: ten nodes, growing databases");
  struct Db {
    const char* label;
    uint64_t keys;
  };
  Db dbs[] = {{"100GB-eq", cfg.num_keys},
              {"1TB-eq", cfg.num_keys * 2},
              {"2TB-eq", cfg.num_keys * 4}};
  struct Sys {
    baseline::System system;
    bool logging;
    const char* label;
  };
  Sys systems[] = {{baseline::System::kLevelDBStar, false, "LevelDB*"},
                   {baseline::System::kRocksDBStar, false, "RocksDB*"},
                   {baseline::System::kNovaLsm, false, "Nova-LSM"},
                   {baseline::System::kNovaLsm, true, "Nova+Log"}};
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig18bcd_ten_nodes");
  for (const Db& db : dbs) {
    printf("--- %s (%llu keys) ---\n", db.label,
           static_cast<unsigned long long>(db.keys));
    printf("%-6s %-8s", "wload", "dist");
    for (const Sys& s : systems) {
      printf(" %11s", s.label);
    }
    printf("\n");
    for (const Point& p : points) {
      printf("%-6s %-8s", WorkloadName(p.type),
             p.theta > 0 ? "Zipfian" : "Uniform");
      for (const Sys& s : systems) {
        double ops =
            RunSystem(cfg, s.system, db.keys, p.type, p.theta, s.logging);
        printf(" %11.0f", ops);
        fflush(stdout);
        json.Add(std::string(db.label) + "/" + WorkloadName(p.type) +
                     (p.theta > 0 ? "/Zipfian/" : "/Uniform/") + s.label,
                 {{"ops_per_sec", ops}});
      }
      printf("\n");
    }
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::BenchConfig cfg = nova::bench::ParseArgs(argc, argv);
  cfg.seconds = std::max(2.0, cfg.seconds / 2);  // many cells; keep it brisk
  nova::bench::Run(cfg);
  return 0;
}
