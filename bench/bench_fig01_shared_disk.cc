// Figure 1: shared-nothing vs shared-disk with a range-partitioned
// database across 10 servers (each hosting one LTC + one StoC).
// Shared-nothing: each LTC writes SSTables only to its local StoC.
// Shared-disk: blocks scatter across ρ=3 of the β=10 StoCs (power-of-6).
// The paper reports ~1-1.6x improvement for Uniform and 9-14x for Zipfian.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunConfig(const BenchConfig& cfg, WorkloadType type, double theta,
                 bool shared_disk) {
  coord::ClusterOptions opt = PaperScaledOptions(10, 10);
  opt.split_points = EvenSplitPoints(cfg.num_keys, 10);
  if (shared_disk) {
    opt.placement.rho = 3;
    opt.placement.power_of_d = true;
  } else {
    opt.placement.rho = 1;
  }
  coord::Cluster cluster(opt);
  cluster.Start();
  if (!shared_disk) {
    baseline::MakeSharedNothing(&cluster);
  }
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = type;
  spec.zipf_theta = 0;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.zipf_theta = theta;
  spec.type = type;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader(
      "Figure 1: shared-nothing vs shared-disk, 10 servers, rho=3 "
      "power-of-6");
  printf("%-6s %-8s %15s %15s %8s\n", "wload", "dist", "shared-nothing",
         "shared-disk", "factor");
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig01_shared_disk");
  for (const Point& p : points) {
    double sn = RunConfig(cfg, p.type, p.theta, false);
    double sd = RunConfig(cfg, p.type, p.theta, true);
    printf("%-6s %-8s %15.0f %15.0f %7.1fx\n", WorkloadName(p.type),
           p.theta > 0 ? "Zipfian" : "Uniform", sn, sd, sd / sn);
    fflush(stdout);
    json.Add(std::string(WorkloadName(p.type)) +
                 (p.theta > 0 ? "/Zipfian" : "/Uniform"),
             {{"shared_nothing_ops", sn},
              {"shared_disk_ops", sd},
              {"factor", sn > 0 ? sd / sn : 0}});
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
