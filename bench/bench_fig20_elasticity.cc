// Figure 20: elasticity.
//  (a) SW50 Uniform (CPU-bound): start with 1 LTC, add LTCs (migrating
//      half the ranges each time), then remove them. Peak throughput
//      follows the LTC count.
//  (b) RW50 Uniform (disk-bound): start with 3 LTCs + 3 StoCs, add StoCs
//      one at a time, then remove them gracefully. Throughput follows the
//      aggregate disk bandwidth.
#include <thread>

#include "bench_common.h"

namespace nova {
namespace bench {

void RunLtcElasticity(const BenchConfig& cfg, JsonArtifact* json) {
  printf("-- (a) SW50 Uniform: +LTC / -LTC --\n");
  coord::ClusterOptions opt = PaperScaledOptions(3, 10);
  opt.split_points = EvenSplitPoints(cfg.num_keys, 6);
  opt.placement.rho = 3;
  coord::Cluster cluster(opt);
  cluster.Start();
  // Start with everything on LTC 0.
  for (uint32_t r = 0; r < 6; r++) {
    cluster.MigrateRange(r, 0, 4);
  }
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = WorkloadType::kSW50;

  std::atomic<bool> stop{false};
  std::thread driver([&] {
    int step = 0;
    auto phase = [&](const char* label) {
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads, &stop);
      printf("%-8s %9.0f ops/s  timeline:", label, r.ops_per_sec);
      for (uint64_t w : r.per_second) {
        printf(" %llu", static_cast<unsigned long long>(w));
      }
      printf("\n");
      fflush(stdout);
      char key[48];
      snprintf(key, sizeof(key), "ltc/%d/%s", step++, label);
      json->Add(key, {{"ops_per_sec", r.ops_per_sec}});
    };
    phase("1 LTC");
    // +1 LTC: move half the ranges.
    for (uint32_t r = 3; r < 6; r++) cluster.MigrateRange(r, 1, 4);
    phase("+1 LTC");
    for (uint32_t r = 4; r < 6; r++) cluster.MigrateRange(r, 2, 4);
    phase("+1 LTC");
    for (uint32_t r = 4; r < 6; r++) cluster.MigrateRange(r, 1, 4);
    phase("-1 LTC");
    for (uint32_t r = 3; r < 6; r++) cluster.MigrateRange(r, 0, 4);
    phase("-1 LTC");
  });
  driver.join();
  cluster.Stop();
}

void RunStocElasticity(const BenchConfig& cfg, JsonArtifact* json) {
  printf("-- (b) RW50 Uniform: +StoC / -StoC --\n");
  coord::ClusterOptions opt = PaperScaledOptions(3, 3);
  opt.split_points = EvenSplitPoints(cfg.num_keys, 3);
  opt.placement.rho = 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = WorkloadType::kRW50;

  int step = 0;
  auto phase = [&](const char* label) {
    RunResult r =
        RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
    int alive = static_cast<int>(cluster.AliveStocNodes().size());
    printf("%-8s %9.0f ops/s (beta=%d alive)\n", label, r.ops_per_sec,
           alive);
    fflush(stdout);
    char key[48];
    snprintf(key, sizeof(key), "stoc/%d/%s", step++, label);
    json->Add(key, {{"ops_per_sec", r.ops_per_sec},
                    {"alive_stocs", static_cast<double>(alive)}});
  };
  phase("3 StoC");
  std::vector<int> added;
  for (int i = 0; i < 3; i++) {
    added.push_back(cluster.AddStoc());
    phase("+1 StoC");
  }
  for (int i = 2; i >= 0; i--) {
    cluster.RemoveStocGraceful(added[i]);
    phase("-1 StoC");
  }
  cluster.Stop();
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 20: elasticity (adding/removing LTCs and StoCs)");
  JsonArtifact json("fig20_elasticity");
  RunLtcElasticity(cfg, &json);
  RunStocElasticity(cfg, &json);
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
