// Figure 14: scaling LTCs η ∈ {1..5} with β=10 StoCs, ρ=3 (power-of-6),
// Uniform. Paper: SW50 scales super-linearly (the database starts fitting
// in aggregate memtables), RW50/W100 sub-linearly (disk bandwidth and
// write stalls take over).
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 14: scaling LTCs (beta=10, rho=3, Uniform)");
  printf("%-6s", "wload");
  for (int eta = 1; eta <= 5; eta++) {
    printf("    eta=%-2d  ", eta);
  }
  printf(" scal(5/1)\n");
  JsonArtifact json("fig14_ltc_scaling");
  for (WorkloadType type :
       {WorkloadType::kRW50, WorkloadType::kW100, WorkloadType::kSW50}) {
    printf("%-6s", WorkloadName(type));
    double first = 0, last = 0;
    for (int eta = 1; eta <= 5; eta++) {
      coord::ClusterOptions opt = PaperScaledOptions(eta, 10);
      opt.split_points = EvenSplitPoints(cfg.num_keys, eta);
      opt.placement.rho = 3;
      coord::Cluster cluster(opt);
      cluster.Start();
      WorkloadSpec spec;
      spec.num_keys = cfg.num_keys;
      spec.value_size = cfg.value_size;
      spec.type = WorkloadType::kW100;
      LoadData(&cluster, spec, cfg.client_threads);
      spec.type = type;
      RunResult r =
          RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
      cluster.Stop();
      if (eta == 1) first = r.ops_per_sec;
      last = r.ops_per_sec;
      printf(" %10.0f ", r.ops_per_sec);
      fflush(stdout);
      char label[48];
      snprintf(label, sizeof(label), "%s/eta%d", WorkloadName(type), eta);
      json.Add(label, {{"ops_per_sec", r.ops_per_sec}});
    }
    printf(" %8.2fx\n", first > 0 ? last / first : 0);
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
