// Figure 11: Dranges ablation — Nova-LSM vs Nova-LSM-R (random memtable
// choice; L0 SSTables span the keyspace, one giant compaction) vs
// Nova-LSM-S (Dranges without pruning/merging). η=1, β=10, ρ=1, α=64-equiv.
// Paper: Nova-LSM beats -R by 3-6x on RW50/W100 and by 26x/18x on SW50;
// it matches -S on Uniform and wins on Zipfian (memtable merging).
#include "bench_common.h"

namespace nova {
namespace bench {

double RunSystem(const BenchConfig& cfg, baseline::System system,
                 WorkloadType type, double theta) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 10);
  int ranges_per_server = 1;
  baseline::ConfigureSystem(system, 32, &opt, &ranges_per_server);
  opt.placement.rho = 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = type;
  spec.zipf_theta = theta;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader(
      "Figure 11: Nova-LSM vs Nova-LSM-R vs Nova-LSM-S "
      "(eta=1, beta=10, rho=1)");
  printf("%-6s %-8s %12s %12s %12s %8s %8s\n", "wload", "dist", "Nova-R",
         "Nova-S", "Nova-LSM", "vs R", "vs S");
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig11_dranges");
  for (const Point& p : points) {
    double r = RunSystem(cfg, baseline::System::kNovaLsmR, p.type, p.theta);
    double s = RunSystem(cfg, baseline::System::kNovaLsmS, p.type, p.theta);
    double nova = RunSystem(cfg, baseline::System::kNovaLsm, p.type, p.theta);
    printf("%-6s %-8s %12.0f %12.0f %12.0f %7.1fx %7.1fx\n",
           WorkloadName(p.type), p.theta > 0 ? "Zipfian" : "Uniform", r, s,
           nova, nova / r, nova / s);
    fflush(stdout);
    json.Add(std::string(WorkloadName(p.type)) +
                 (p.theta > 0 ? "/Zipfian" : "/Uniform"),
             {{"nova_r_ops", r},
              {"nova_s_ops", s},
              {"nova_ops", nova},
              {"vs_r", r > 0 ? nova / r : 0},
              {"vs_s", s > 0 ? nova / s : 0}});
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
