// Figure 19: storage as fast as memory (the paper uses tmpfs). Devices
// have (near) zero service time, so the CPU becomes the bottleneck:
// Nova-LSM still wins on Zipfian (2-7x vs LevelDB*) but loses 10-30% on
// Uniform to its index maintenance and xchg polling.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunSystem(const BenchConfig& cfg, baseline::System system,
                 WorkloadType type, double theta) {
  coord::ClusterOptions opt = PaperScaledOptions(10, 10);
  // tmpfs: effectively infinite bandwidth, no seeks.
  opt.device.bandwidth_bytes_per_sec = 4e9;
  opt.device.seek_latency_us = 0;
  int ranges_per_server = 1;
  baseline::ConfigureSystem(system, 16, &opt, &ranges_per_server);
  opt.split_points =
      EvenSplitPoints(cfg.num_keys, 10 * std::min(ranges_per_server, 4));
  bool nova = system == baseline::System::kNovaLsm;
  opt.placement.rho = nova ? 3 : 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  if (!nova) {
    baseline::MakeSharedNothing(&cluster);
  }
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = type;
  spec.zipf_theta = theta;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 19: tmpfs-speed storage (CPU-bound), 10 nodes");
  baseline::System systems[] = {baseline::System::kLevelDBStar,
                                baseline::System::kRocksDBStar,
                                baseline::System::kNovaLsm};
  printf("%-6s %-8s", "wload", "dist");
  for (auto s : systems) {
    printf(" %13s", baseline::SystemName(s));
  }
  printf("\n");
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig19_tmpfs");
  for (const Point& p : points) {
    printf("%-6s %-8s", WorkloadName(p.type),
           p.theta > 0 ? "Zipfian" : "Uniform");
    for (auto s : systems) {
      double ops = RunSystem(cfg, s, p.type, p.theta);
      printf(" %13.0f", ops);
      fflush(stdout);
      json.Add(std::string(WorkloadName(p.type)) +
                   (p.theta > 0 ? "/Zipfian/" : "/Uniform/") +
                   baseline::SystemName(s),
               {{"ops_per_sec", ops}});
    }
    printf("\n");
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
