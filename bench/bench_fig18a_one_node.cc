// Figure 18a: one server, "10 GB" database — Nova-LSM vs LevelDB,
// LevelDB* (64 instances), RocksDB, RocksDB*, RocksDB-tuned. Everything
// runs on the shared substrate (1 LTC + 1 co-located StoC); differences
// are architectural. Paper: comparable on Uniform (Nova loses up to ~15%
// on SW50 from index upkeep), 7-105x wins on Zipfian.
#include "bench_common.h"

namespace nova {
namespace bench {

double RunSystem(const BenchConfig& cfg, baseline::System system,
                 WorkloadType type, double theta) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 1);
  int ranges_per_server = 1;
  baseline::ConfigureSystem(system, 32, &opt, &ranges_per_server);
  if (ranges_per_server > 1) {
    opt.split_points = EvenSplitPoints(cfg.num_keys, ranges_per_server);
  }
  opt.placement.rho = 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  LoadData(&cluster, spec, cfg.client_threads);
  spec.type = type;
  spec.zipf_theta = theta;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
  cluster.Stop();
  return r.ops_per_sec;
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 18a: one node, 10 GB-equivalent database");
  baseline::System systems[] = {
      baseline::System::kLevelDB,     baseline::System::kLevelDBStar,
      baseline::System::kRocksDB,     baseline::System::kRocksDBStar,
      baseline::System::kRocksDBTuned, baseline::System::kNovaLsm};
  printf("%-6s %-8s", "wload", "dist");
  for (auto s : systems) {
    printf(" %13s", baseline::SystemName(s));
  }
  printf("\n");
  struct Point {
    WorkloadType type;
    double theta;
  };
  Point points[] = {
      {WorkloadType::kRW50, 0},    {WorkloadType::kRW50, 0.99},
      {WorkloadType::kW100, 0},    {WorkloadType::kW100, 0.99},
      {WorkloadType::kSW50, 0},    {WorkloadType::kSW50, 0.99},
  };
  JsonArtifact json("fig18a_one_node");
  for (const Point& p : points) {
    printf("%-6s %-8s", WorkloadName(p.type),
           p.theta > 0 ? "Zipfian" : "Uniform");
    for (auto s : systems) {
      double ops = RunSystem(cfg, s, p.type, p.theta);
      printf(" %13.0f", ops);
      fflush(stdout);
      json.Add(std::string(WorkloadName(p.type)) +
                   (p.theta > 0 ? "/Zipfian/" : "/Uniform/") +
                   baseline::SystemName(s),
               {{"ops_per_sec", ops}});
    }
    printf("\n");
  }
  json.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
