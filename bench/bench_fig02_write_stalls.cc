// Figure 2: write-stall behaviour of four configurations, shown as a
// throughput timeline of W100/Uniform:
//   (i)   δ=2 memtables (32 MB-equivalent), 1 StoC
//   (ii)  δ=2, 10 StoCs
//   (iii) δ=128-equivalent, 1 StoC
//   (iv)  δ=128-equivalent, 10 StoCs
// The paper reports a 27x average-throughput gap between (i) and (iv) and
// visibly sparse timelines (stall gaps) for the small configurations.
#include "bench_common.h"

namespace nova {
namespace bench {

void RunConfig(const BenchConfig& cfg, const char* label, int memtables,
               int stocs) {
  coord::ClusterOptions opt = PaperScaledOptions(1, stocs);
  opt.range.max_memtables = memtables;
  opt.range.drange.theta = std::max(1, memtables / 4);
  opt.range.max_parallel_compactions = std::max(1, memtables / 8);
  opt.placement.rho = 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds * 2,
                            cfg.client_threads);
  auto stats = cluster.TotalStats();
  // stall_us accumulates across client threads; normalize per thread.
  printf("%-28s avg %8.0f ops/s  stall %5.1f%%  timeline:",
         label, r.ops_per_sec,
         100.0 * stats.stall_us / 1e6 / r.duration_sec /
             cfg.client_threads);
  for (uint64_t w : r.per_second) {
    printf(" %llu", static_cast<unsigned long long>(w));
  }
  printf("\n");
  fflush(stdout);
  cluster.Stop();
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 2: write stalls vs (memtables, StoCs), W100 Uniform");
  RunConfig(cfg, "(i)   2 memtables,  1 StoC", 2, 1);
  RunConfig(cfg, "(ii)  2 memtables, 10 StoC", 2, 10);
  RunConfig(cfg, "(iii) 32 memtables, 1 StoC", 32, 1);
  RunConfig(cfg, "(iv)  32 memtables,10 StoC", 32, 10);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
