// Figure 2: write-stall behaviour of four configurations, shown as a
// throughput timeline of W100/Uniform:
//   (i)   δ=2 memtables (32 MB-equivalent), 1 StoC
//   (ii)  δ=2, 10 StoCs
//   (iii) δ=128-equivalent, 1 StoC
//   (iv)  δ=128-equivalent, 10 StoCs
// The paper reports a 27x average-throughput gap between (i) and (iv) and
// visibly sparse timelines (stall gaps) for the small configurations.
//
// A second section measures the pipelined compaction executor (§4.3): a
// fixed write load followed by a timed flush+compaction drain, comparing
// serial block gather against readahead depths 2 and 4. Results land in
// --json=<path> (BENCH_compaction.json) when the flag is given.
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_common.h"
#include "util/zipfian.h"

namespace nova {
namespace bench {

void RunConfig(const BenchConfig& cfg, const char* label, int memtables,
               int stocs) {
  coord::ClusterOptions opt = PaperScaledOptions(1, stocs);
  opt.range.max_memtables = memtables;
  opt.range.drange.theta = std::max(1, memtables / 4);
  opt.range.max_parallel_compactions = std::max(1, memtables / 8);
  opt.placement.rho = 1;
  coord::Cluster cluster(opt);
  cluster.Start();
  WorkloadSpec spec;
  spec.num_keys = cfg.num_keys;
  spec.value_size = cfg.value_size;
  spec.type = WorkloadType::kW100;
  RunResult r = RunWorkload(&cluster, spec, cfg.seconds * 2,
                            cfg.client_threads);
  auto stats = cluster.TotalStats();
  // stall_us accumulates across client threads; normalize per thread.
  printf("%-28s avg %8.0f ops/s  stall %5.1f%%  timeline:",
         label, r.ops_per_sec,
         100.0 * stats.stall_us / 1e6 / r.duration_sec /
             cfg.client_threads);
  for (uint64_t w : r.per_second) {
    printf(" %llu", static_cast<unsigned long long>(w));
  }
  printf("\n");
  fflush(stdout);
  cluster.Stop();
}

// Fixed write load, then a timed flush + compaction drain. `readahead` < 0
// forces the serial (one block in flight) gather path; >= 2 pipelines block
// fetches and SSTable flush acks through the async StoC I/O layer.
void RunCompactionDrain(const BenchConfig& cfg, const char* label,
                        int readahead, JsonArtifact* artifact) {
  coord::ClusterOptions opt = PaperScaledOptions(1, 4);
  opt.range.compaction_readahead_blocks = readahead;
  coord::Cluster cluster(opt);
  cluster.Start();
  Random rng(42);  // same seed per config: identical load, different drain
  std::string value(cfg.value_size, 'c');
  for (uint64_t i = 0; i < cfg.num_keys; i++) {
    char key[32];
    snprintf(key, sizeof(key), "%016llu",
             static_cast<unsigned long long>(rng.Uniform(cfg.num_keys)));
    if (!cluster.Put(key, value).ok()) {
      fprintf(stderr, "put failed during load\n");
      return;
    }
  }
  // Foreground Zipf reads run against the background compaction drain so
  // the numbers capture interference, not just isolated drain time.
  std::atomic<bool> drain_done{false};
  std::atomic<uint64_t> fg_reads{0};
  std::thread reader([&]() {
    ZipfianGenerator zipf(cfg.num_keys, 0.99);
    Random rng(7);
    std::string value;
    while (!drain_done.load(std::memory_order_relaxed)) {
      char key[32];
      snprintf(key, sizeof(key), "%016llu",
               static_cast<unsigned long long>(zipf.Next(&rng)));
      cluster.Get(key, &value);  // NotFound for unwritten keys is fine
      fg_reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  auto start = std::chrono::steady_clock::now();
  for (auto* engine : cluster.ltc(0)->ranges()) {
    engine->FlushAllMemtables();
    engine->WaitForQuiescence(/*flush_all=*/true);
  }
  double drain_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  drain_done.store(true);
  reader.join();
  double fg_reads_per_sec = fg_reads.load() / drain_sec;
  auto stats = cluster.TotalStats();
  printf("%-26s drain %7.3f s  fg reads %7.0f ops/s  compactions %4llu  "
         "waves %6llu  read %6.1f MB  wrote %6.1f MB  queue %7.1f ms\n",
         label, drain_sec, fg_reads_per_sec,
         static_cast<unsigned long long>(stats.compactions),
         static_cast<unsigned long long>(stats.compaction_gather_waves),
         stats.compaction_bytes_read / 1048576.0,
         stats.compaction_bytes_written / 1048576.0,
         stats.compaction_queue_us / 1000.0);
  fflush(stdout);
  artifact->Add(label,
                {{"readahead_blocks", static_cast<double>(readahead)},
                 {"drain_seconds", drain_sec},
                 {"fg_reads_per_sec", fg_reads_per_sec},
                 {"compactions", static_cast<double>(stats.compactions)},
                 {"gather_waves",
                  static_cast<double>(stats.compaction_gather_waves)},
                 {"bytes_read", static_cast<double>(stats.compaction_bytes_read)},
                 {"bytes_written",
                  static_cast<double>(stats.compaction_bytes_written)},
                 {"queue_us", static_cast<double>(stats.compaction_queue_us)}});
  cluster.Stop();
}

void Run(const BenchConfig& cfg) {
  PrintHeader("Figure 2: write stalls vs (memtables, StoCs), W100 Uniform");
  RunConfig(cfg, "(i)   2 memtables,  1 StoC", 2, 1);
  RunConfig(cfg, "(ii)  2 memtables, 10 StoC", 2, 10);
  RunConfig(cfg, "(iii) 32 memtables, 1 StoC", 32, 1);
  RunConfig(cfg, "(iv)  32 memtables,10 StoC", 32, 10);

  PrintHeader("Compaction drain: serial vs pipelined gather (Section 4.3)");
  JsonArtifact artifact("compaction_drain");
  RunCompactionDrain(cfg, "serial gather", -1, &artifact);
  RunCompactionDrain(cfg, "readahead 2", 2, &artifact);
  RunCompactionDrain(cfg, "readahead 4", 4, &artifact);
  artifact.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
