// Table 6: load balancing across LTCs under Zipfian — 85% of requests hit
// the first LTC's ranges, saturating its CPU. Migrating its hot ranges to
// the other LTCs raises throughput 1.7x (W100) to 4.2x (SW50).
// η=5, β=10, ω=64 ranges total here, ρ=1.
#include "bench_common.h"

namespace nova {
namespace bench {

void Run(const BenchConfig& cfg) {
  PrintHeader(
      "Table 6: range migration under Zipfian (eta=5, beta=10, omega=64)");
  JsonArtifact artifact("table06_migration");
  printf("%-6s %16s %16s %12s\n", "wload", "before (ops/s)",
         "after (ops/s)", "improvement");
  for (WorkloadType type :
       {WorkloadType::kRW50, WorkloadType::kSW50, WorkloadType::kW100}) {
    coord::ClusterOptions opt = PaperScaledOptions(5, 10);
    // 64 ranges so hot ones can move individually (ω = 64 / 5 per LTC).
    opt.split_points = EvenSplitPoints(cfg.num_keys, 64);
    opt.range.max_memtables = 8;
    opt.range.drange.theta = 4;
    opt.placement.rho = 1;
    coord::Cluster cluster(opt);
    cluster.Start();
    WorkloadSpec spec;
    spec.num_keys = cfg.num_keys;
    spec.value_size = cfg.value_size;
    spec.type = WorkloadType::kW100;
    LoadData(&cluster, spec, cfg.client_threads);
    spec.type = type;
    spec.zipf_theta = 0.99;
    RunResult before =
        RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);

    // The coordinator observes LTC 0 saturated (hot keys are the low ids)
    // and scatters its ranges across the other LTCs.
    coord::Configuration c = cluster.coordinator()->config();
    int moved = 0;
    for (const auto& r : c.ranges) {
      if (r.ltc_index == 0 && moved < 10) {
        cluster.MigrateRange(r.range_id, 1 + (moved % 4), 4);
        moved++;
      }
    }
    RunResult after =
        RunWorkload(&cluster, spec, cfg.seconds, cfg.client_threads);
    printf("%-6s %16.0f %16.0f %11.2fx\n", WorkloadName(type),
           before.ops_per_sec, after.ops_per_sec,
           after.ops_per_sec / before.ops_per_sec);
    fflush(stdout);
    artifact.Add(WorkloadName(type),
                 {{"before_ops_per_sec", before.ops_per_sec},
                  {"after_ops_per_sec", after.ops_per_sec},
                  {"improvement", after.ops_per_sec / before.ops_per_sec}});
    cluster.Stop();
  }
  artifact.Write(cfg.json_path);
}

}  // namespace bench
}  // namespace nova

int main(int argc, char** argv) {
  nova::bench::Run(nova::bench::ParseArgs(argc, argv));
  return 0;
}
