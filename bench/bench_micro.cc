// Microbenchmarks of the substrate components (google-benchmark):
// memtable insert/lookup, bloom filter, SSTable build/read, slab
// allocator, log record codec, the RDMA fabric emulation, the StoC scan
// path with/without readahead, and the pipelined compaction executor.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "logc/log_record.h"
#include "lsm/compaction.h"
#include "lsm/table_io.h"
#include "mem/memtable.h"
#include "rdma/fabric.h"
#include "sstable/bloom.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "stoc/stoc_server.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"
#include "util/slab_allocator.h"
#include "util/zipfian.h"

namespace nova {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp;
  auto mem = std::make_shared<MemTable>(icmp, 1);
  uint64_t seq = 1;
  std::string value(128, 'v');
  Random rng(1);
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, Key(rng.Uniform(100000)), value);
    if (seq % 100000 == 0) {
      state.PauseTiming();
      mem = std::make_shared<MemTable>(icmp, seq);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp;
  MemTable mem(icmp, 1);
  std::string value(128, 'v');
  for (uint64_t i = 0; i < 10000; i++) {
    mem.Add(i + 1, kTypeValue, Key(i), value);
  }
  Random rng(2);
  std::string out;
  for (auto _ : state) {
    LookupKey lkey(Key(rng.Uniform(10000)), kMaxSequenceNumber);
    Status s;
    benchmark::DoNotOptimize(mem.Get(lkey, &out, &s));
  }
}
BENCHMARK(BM_MemTableGet);

void BM_BloomCheck(benchmark::State& state) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back(Key(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BloomFilter::KeyMayMatch(Key(rng.Uniform(20000)), filter));
  }
}
BENCHMARK(BM_BloomCheck);

void BM_SSTableBuild(benchmark::State& state) {
  std::string value(1024, 'v');
  for (auto _ : state) {
    SSTableBuilder builder;
    for (int i = 0; i < 256; i++) {
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(Key(i), i + 1, kTypeValue));
      builder.Add(ikey, value);
    }
    auto result = builder.Finish(1, 3);
    benchmark::DoNotOptimize(result.data.size());
  }
}
BENCHMARK(BM_SSTableBuild);

void BM_SlabAllocator(benchmark::State& state) {
  SlabAllocator::Options opt;
  SlabAllocator slab(opt);
  for (auto _ : state) {
    char* p = slab.Allocate(1024);
    benchmark::DoNotOptimize(p);
    slab.Free(p, 1024);
  }
}
BENCHMARK(BM_SlabAllocator);

void BM_LogRecordCodec(benchmark::State& state) {
  logc::LogRecord rec;
  rec.memtable_id = 7;
  rec.sequence = 1234;
  rec.key = Key(42);
  rec.value = std::string(1024, 'v');
  for (auto _ : state) {
    std::string buf;
    logc::EncodeLogRecord(&buf, rec);
    Slice in(buf);
    logc::LogRecord out;
    benchmark::DoNotOptimize(logc::DecodeLogRecord(&in, &out));
  }
}
BENCHMARK(BM_LogRecordCodec);

void BM_FabricOneSidedWrite(benchmark::State& state) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  std::vector<char> region(1 << 20);
  fabric.RegisterMemory(1, 1, region.data(), region.size());
  std::string data(state.range(0), 'x');
  uint64_t offset = 0;
  for (auto _ : state) {
    fabric.Write(0, data, rdma::RemoteAddr{1, 1, offset}, false, 0);
    offset = (offset + data.size()) % (region.size() - data.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FabricOneSidedWrite)->Arg(128)->Arg(1024)->Arg(16384);

/// Four StoCs on simulated disks hosting one SSTable scattered with
/// ρ = 4, scanned end to end through StocBlockFetcher. Built once and
/// leaked: google-benchmark re-enters the function per configuration.
struct ScanEnv {
  static constexpr int kNumStocs = 4;
  static constexpr uint64_t kNumKeys = 512;

  rdma::RdmaFabric fabric;
  std::vector<std::unique_ptr<SimulatedDevice>> devices;
  std::vector<std::unique_ptr<BlockStore>> stores;
  std::vector<std::unique_ptr<stoc::StocServer>> servers;
  std::unique_ptr<rdma::RpcEndpoint> endpoint;
  std::unique_ptr<stoc::StocClient> client;
  lsm::FileMetaRef meta;
  SSTableMetadata table_meta;

  static ScanEnv* Get() {
    static ScanEnv* env = new ScanEnv();
    return env;
  }

  ScanEnv() {
    // Fast-disk profile: device service per 4 KB block is small enough
    // that the per-block RPC round trip dominates a serial scan — which
    // is exactly what readahead hides.
    DeviceConfig dcfg;
    dcfg.bandwidth_bytes_per_sec = 64.0 * 1024 * 1024;
    dcfg.seek_latency_us = 200;
    for (int i = 0; i < kNumStocs; i++) {
      devices.push_back(std::make_unique<SimulatedDevice>(
          "scan-d" + std::to_string(i), dcfg));
      stores.push_back(std::make_unique<BlockStore>());
      servers.push_back(std::make_unique<stoc::StocServer>(
          &fabric, 1000 + i, devices[i].get(), stores[i].get(),
          stoc::StocServerOptions{}));
      servers[i]->Start();
    }
    fabric.AddNode(0);
    endpoint = std::make_unique<rdma::RpcEndpoint>(&fabric, 0, 2, nullptr);
    endpoint->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
    endpoint->Start();
    client = std::make_unique<stoc::StocClient>(endpoint.get());

    SSTableBuilder builder;
    std::string value(512, 'v');
    for (uint64_t i = 0; i < kNumKeys; i++) {
      std::string ikey;
      AppendInternalKey(&ikey,
                        ParsedInternalKey(Key(i), i + 1, kTypeValue));
      builder.Add(ikey, value);
    }
    auto built = builder.Finish(/*file_number=*/1, kNumStocs);
    table_meta = built.meta;

    lsm::PlacementOptions popt;
    for (int i = 0; i < kNumStocs; i++) {
      popt.stocs.push_back(1000 + i);
    }
    popt.rho = kNumStocs;
    popt.power_of_d = false;
    popt.adjust_rho_by_size = false;
    lsm::SSTablePlacer placer(client.get(), popt);
    auto out = std::make_shared<lsm::FileMetaData>();
    Status s = placer.Write(std::move(built), 0, 0, out.get());
    if (!s.ok()) {
      fprintf(stderr, "scan env setup failed: %s\n", s.ToString().c_str());
      abort();
    }
    meta = out;
  }
};

/// Full forward scan of the scattered SSTable; Arg = readahead_blocks
/// (0 = the strictly serial one-round-trip-per-block baseline).
void BM_SSTableScanReadahead(benchmark::State& state) {
  ScanEnv* env = ScanEnv::Get();
  lsm::StocBlockFetcher fetcher(env->client.get(), env->meta);
  SSTableReader reader(env->table_meta, &fetcher, /*block_cache=*/nullptr,
                       /*range_id=*/0,
                       /*readahead_blocks=*/static_cast<int>(state.range(0)));
  for (auto _ : state) {
    std::unique_ptr<Iterator> it(reader.NewIterator());
    uint64_t records = 0;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      records++;
    }
    if (records != ScanEnv::kNumKeys) {
      state.SkipWithError("scan returned wrong record count");
      break;
    }
  }
  state.SetItemsProcessed(state.iterations() * ScanEnv::kNumKeys);
}
BENCHMARK(BM_SSTableScanReadahead)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Four overlapping L0 SSTables scattered across four StoCs, compacted
/// into L1 by the CompactionExecutor. Built once and leaked, like ScanEnv.
struct CompactionEnv {
  static constexpr int kNumStocs = 4;
  static constexpr int kNumInputs = 4;
  static constexpr uint64_t kKeysPerInput = 512;

  rdma::RdmaFabric fabric;
  std::vector<std::unique_ptr<SimulatedDevice>> devices;
  std::vector<std::unique_ptr<BlockStore>> stores;
  std::vector<std::unique_ptr<stoc::StocServer>> servers;
  std::unique_ptr<rdma::RpcEndpoint> endpoint;
  std::unique_ptr<stoc::StocClient> client;
  std::vector<lsm::FileMetaRef> inputs;

  static CompactionEnv* Get() {
    static CompactionEnv* env = new CompactionEnv();
    return env;
  }

  lsm::PlacementOptions PlacementOpts() const {
    lsm::PlacementOptions popt;
    for (int i = 0; i < kNumStocs; i++) {
      popt.stocs.push_back(2000 + i);
    }
    popt.rho = 2;
    popt.power_of_d = false;
    popt.adjust_rho_by_size = false;
    return popt;
  }

  CompactionEnv() {
    DeviceConfig dcfg;
    dcfg.bandwidth_bytes_per_sec = 64.0 * 1024 * 1024;
    dcfg.seek_latency_us = 200;
    for (int i = 0; i < kNumStocs; i++) {
      devices.push_back(std::make_unique<SimulatedDevice>(
          "compact-d" + std::to_string(i), dcfg));
      stores.push_back(std::make_unique<BlockStore>());
      servers.push_back(std::make_unique<stoc::StocServer>(
          &fabric, 2000 + i, devices[i].get(), stores[i].get(),
          stoc::StocServerOptions{}));
      servers[i]->Start();
    }
    fabric.AddNode(10);
    endpoint = std::make_unique<rdma::RpcEndpoint>(&fabric, 10, 2, nullptr);
    endpoint->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
    endpoint->Start();
    client = std::make_unique<stoc::StocClient>(endpoint.get());

    // Input i holds keys j with j % kNumInputs == i: fully interleaved
    // ranges, so the merge really alternates across all inputs.
    lsm::SSTablePlacer placer(client.get(), PlacementOpts());
    std::string value(512, 'v');
    for (int i = 0; i < kNumInputs; i++) {
      SSTableBuilder builder;
      for (uint64_t j = i; j < kKeysPerInput * kNumInputs; j += kNumInputs) {
        std::string ikey;
        AppendInternalKey(&ikey,
                          ParsedInternalKey(Key(j), j + 1, kTypeValue));
        builder.Add(ikey, value);
      }
      auto built = builder.Finish(/*file_number=*/i + 1, /*num_fragments=*/2);
      auto out = std::make_shared<lsm::FileMetaData>();
      Status s = placer.Write(std::move(built), 0, 0, out.get());
      if (!s.ok()) {
        fprintf(stderr, "compaction env setup failed: %s\n",
                s.ToString().c_str());
        abort();
      }
      inputs.push_back(out);
    }
  }

  void DeleteOutputs(const lsm::CompactionResult& result) {
    for (const auto& meta : result.outputs) {
      for (const auto& replicas : meta.fragments) {
        for (const auto& loc : replicas) {
          client->DeleteFile(loc.stoc_id, loc.file_id, false);
        }
      }
      for (const auto& loc : meta.meta_replicas) {
        client->DeleteFile(loc.stoc_id, loc.file_id, false);
      }
      if (meta.parity.valid()) {
        client->DeleteFile(meta.parity.stoc_id, meta.parity.file_id, false);
      }
    }
  }
};

/// One full 4-way compaction per iteration; Arg = job.readahead_blocks
/// (0 = serial input gather and synchronous output writes).
void BM_CompactionPipeline(benchmark::State& state) {
  CompactionEnv* env = CompactionEnv::Get();
  static uint64_t next_output_number = 1000;
  for (auto _ : state) {
    lsm::TableCache cache(env->client.get());
    lsm::SSTablePlacer placer(env->client.get(), env->PlacementOpts());
    lsm::CompactionExecutor exec(&cache, &placer, /*throttle=*/nullptr);
    lsm::CompactionJob job;
    job.input_level = 0;
    job.inputs = env->inputs;
    job.max_output_bytes = 256 << 10;
    job.is_last_level = true;
    job.first_output_number = next_output_number;
    next_output_number += 64;
    job.readahead_blocks = static_cast<int>(state.range(0));
    lsm::CompactionResult result;
    Status s = exec.Run(job, &result);
    if (!s.ok() || result.outputs.empty()) {
      state.SkipWithError("compaction failed");
      break;
    }
    state.PauseTiming();
    env->DeleteOutputs(result);
    state.ResumeTiming();
  }
  state.SetItemsProcessed(state.iterations() * CompactionEnv::kKeysPerInput *
                          CompactionEnv::kNumInputs);
}
BENCHMARK(BM_CompactionPipeline)
    ->Arg(0)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1000000, 0.99);
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(&rng));
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace nova

// Same --json=<path> flag as the cluster benches (bench_common.h), mapped
// onto google-benchmark's native JSON reporter. Everything else passes
// through to benchmark::Initialize unchanged.
int main(int argc, char** argv) {
  std::vector<std::string> storage;
  std::vector<char*> args;
  storage.reserve(argc + 1);
  for (int i = 0; i < argc; i++) {
    if (strncmp(argv[i], "--json=", 7) == 0) {
      storage.push_back(std::string("--benchmark_out=") + (argv[i] + 7));
      storage.push_back("--benchmark_out_format=json");
    } else {
      storage.push_back(argv[i]);
    }
  }
  for (auto& s : storage) {
    args.push_back(s.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
