// Microbenchmarks of the substrate components (google-benchmark):
// memtable insert/lookup, bloom filter, SSTable build/read, slab
// allocator, log record codec, and the RDMA fabric emulation.
#include <benchmark/benchmark.h>

#include <memory>

#include "logc/log_record.h"
#include "mem/memtable.h"
#include "rdma/fabric.h"
#include "sstable/bloom.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "util/slab_allocator.h"
#include "util/zipfian.h"

namespace nova {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

void BM_MemTableAdd(benchmark::State& state) {
  InternalKeyComparator icmp;
  auto mem = std::make_shared<MemTable>(icmp, 1);
  uint64_t seq = 1;
  std::string value(128, 'v');
  Random rng(1);
  for (auto _ : state) {
    mem->Add(seq++, kTypeValue, Key(rng.Uniform(100000)), value);
    if (seq % 100000 == 0) {
      state.PauseTiming();
      mem = std::make_shared<MemTable>(icmp, seq);
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_MemTableAdd);

void BM_MemTableGet(benchmark::State& state) {
  InternalKeyComparator icmp;
  MemTable mem(icmp, 1);
  std::string value(128, 'v');
  for (uint64_t i = 0; i < 10000; i++) {
    mem.Add(i + 1, kTypeValue, Key(i), value);
  }
  Random rng(2);
  std::string out;
  for (auto _ : state) {
    LookupKey lkey(Key(rng.Uniform(10000)), kMaxSequenceNumber);
    Status s;
    benchmark::DoNotOptimize(mem.Get(lkey, &out, &s));
  }
}
BENCHMARK(BM_MemTableGet);

void BM_BloomCheck(benchmark::State& state) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 10000; i++) {
    keys.push_back(Key(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  Random rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BloomFilter::KeyMayMatch(Key(rng.Uniform(20000)), filter));
  }
}
BENCHMARK(BM_BloomCheck);

void BM_SSTableBuild(benchmark::State& state) {
  std::string value(1024, 'v');
  for (auto _ : state) {
    SSTableBuilder builder;
    for (int i = 0; i < 256; i++) {
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(Key(i), i + 1, kTypeValue));
      builder.Add(ikey, value);
    }
    auto result = builder.Finish(1, 3);
    benchmark::DoNotOptimize(result.data.size());
  }
}
BENCHMARK(BM_SSTableBuild);

void BM_SlabAllocator(benchmark::State& state) {
  SlabAllocator::Options opt;
  SlabAllocator slab(opt);
  for (auto _ : state) {
    char* p = slab.Allocate(1024);
    benchmark::DoNotOptimize(p);
    slab.Free(p, 1024);
  }
}
BENCHMARK(BM_SlabAllocator);

void BM_LogRecordCodec(benchmark::State& state) {
  logc::LogRecord rec;
  rec.memtable_id = 7;
  rec.sequence = 1234;
  rec.key = Key(42);
  rec.value = std::string(1024, 'v');
  for (auto _ : state) {
    std::string buf;
    logc::EncodeLogRecord(&buf, rec);
    Slice in(buf);
    logc::LogRecord out;
    benchmark::DoNotOptimize(logc::DecodeLogRecord(&in, &out));
  }
}
BENCHMARK(BM_LogRecordCodec);

void BM_FabricOneSidedWrite(benchmark::State& state) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  std::vector<char> region(1 << 20);
  fabric.RegisterMemory(1, 1, region.data(), region.size());
  std::string data(state.range(0), 'x');
  uint64_t offset = 0;
  for (auto _ : state) {
    fabric.Write(0, data, rdma::RemoteAddr{1, 1, offset}, false, 0);
    offset = (offset + data.size()) % (region.size() - data.size());
  }
  state.SetBytesProcessed(state.iterations() * data.size());
}
BENCHMARK(BM_FabricOneSidedWrite)->Arg(128)->Arg(1024)->Arg(16384);

void BM_ZipfianNext(benchmark::State& state) {
  ZipfianGenerator gen(1000000, 0.99);
  Random rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen.Next(&rng));
  }
}
BENCHMARK(BM_ZipfianNext);

}  // namespace
}  // namespace nova

BENCHMARK_MAIN();
