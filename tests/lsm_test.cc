// Unit & property tests for the LSM metadata layer: file metadata and
// version-edit serialization, version queries, compaction picking
// (disjointness invariants under parameter sweeps), and placement.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "lsm/compaction.h"
#include "lsm/file_meta.h"
#include "lsm/table_io.h"
#include "lsm/version.h"
#include "util/random.h"

namespace nova {
namespace lsm {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

FileMetaData MakeFile(uint64_t number, uint64_t lo, uint64_t hi,
                      int drange = -1) {
  FileMetaData f;
  f.number = number;
  f.data_size = 1000;
  f.smallest = InternalKey(Key(lo), 1, kTypeValue);
  f.largest = InternalKey(Key(hi), 1, kTypeValue);
  f.drange_id = drange;
  f.fragments = {{BlockLocation{0, number * 10}}};
  f.fragment_sizes = {1000};
  f.meta_replicas = {BlockLocation{0, number * 10 + 1}};
  return f;
}

TEST(FileMetaTest, EncodeDecodeRoundTrip) {
  FileMetaData f = MakeFile(42, 100, 200, 3);
  f.fragments = {{BlockLocation{1, 11}, BlockLocation{2, 22}},
                 {BlockLocation{3, 33}}};
  f.fragment_sizes = {600, 400};
  f.meta_replicas = {BlockLocation{1, 44}, BlockLocation{2, 55}};
  f.parity = BlockLocation{4, 66};
  f.generation = 7;

  std::string buf;
  f.EncodeTo(&buf);
  Slice in(buf);
  FileMetaData g;
  ASSERT_TRUE(g.DecodeFrom(&in).ok());
  EXPECT_EQ(g.number, 42u);
  EXPECT_EQ(g.drange_id, 3);
  EXPECT_EQ(g.generation, 7u);
  ASSERT_EQ(g.fragments.size(), 2u);
  EXPECT_EQ(g.fragments[0][1].stoc_id, 2);
  EXPECT_EQ(g.fragments[0][1].file_id, 22u);
  EXPECT_EQ(g.fragment_sizes, f.fragment_sizes);
  EXPECT_EQ(g.parity.stoc_id, 4);
  EXPECT_EQ(g.smallest.user_key().ToString(), Key(100));
}

TEST(VersionEditTest, RoundTripWithDrangeState) {
  VersionEdit edit;
  edit.new_files.emplace_back(0, MakeFile(1, 0, 99));
  edit.new_files.emplace_back(2, MakeFile(2, 100, 199));
  edit.deleted_files.emplace_back(1, 77);
  edit.drange_state = "opaque-drange-bytes";
  std::string buf;
  edit.EncodeTo(&buf);
  VersionEdit out;
  ASSERT_TRUE(out.DecodeFrom(buf).ok());
  ASSERT_EQ(out.new_files.size(), 2u);
  EXPECT_EQ(out.new_files[1].first, 2);
  ASSERT_EQ(out.deleted_files.size(), 1u);
  EXPECT_EQ(out.deleted_files[0].second, 77u);
  EXPECT_EQ(out.drange_state, "opaque-drange-bytes");
}

TEST(VersionSetTest, ApplyAndRecover) {
  LsmOptions opt;
  std::vector<std::string> manifest;
  VersionSet vs(opt, [&manifest](const Slice& rec) {
    manifest.emplace_back(rec.data(), rec.size());
    return Status::OK();
  });

  VersionEdit e1;
  e1.new_files.emplace_back(0, MakeFile(1, 0, 99));
  e1.new_files.emplace_back(0, MakeFile(2, 100, 199));
  ASSERT_TRUE(vs.LogAndApply(&e1).ok());
  VersionEdit e2;
  e2.deleted_files.emplace_back(0, 1);
  e2.new_files.emplace_back(1, MakeFile(3, 0, 99));
  ASSERT_TRUE(vs.LogAndApply(&e2).ok());

  VersionRef v = vs.current();
  EXPECT_EQ(v->files(0).size(), 1u);
  EXPECT_EQ(v->files(0)[0]->number, 2u);
  EXPECT_EQ(v->files(1).size(), 1u);
  EXPECT_EQ(vs.manifest_version(), 2u);

  // Replay into a fresh VersionSet.
  VersionSet vs2(opt, nullptr);
  ASSERT_TRUE(vs2.Recover(manifest).ok());
  VersionRef v2 = vs2.current();
  EXPECT_EQ(v2->files(0).size(), 1u);
  EXPECT_EQ(v2->files(0)[0]->number, 2u);
  EXPECT_EQ(v2->files(1).size(), 1u);
  EXPECT_EQ(vs2.manifest_version(), 2u);
}

TEST(VersionTest, FileForKeyBinarySearch) {
  LsmOptions opt;
  VersionSet vs(opt, nullptr);
  VersionEdit e;
  e.new_files.emplace_back(1, MakeFile(1, 0, 99));
  e.new_files.emplace_back(1, MakeFile(2, 100, 199));
  e.new_files.emplace_back(1, MakeFile(3, 300, 399));
  ASSERT_TRUE(vs.LogAndApply(&e).ok());
  VersionRef v = vs.current();
  ASSERT_NE(v->FileForKey(1, Key(150)), nullptr);
  EXPECT_EQ(v->FileForKey(1, Key(150))->number, 2u);
  EXPECT_EQ(v->FileForKey(1, Key(0))->number, 1u);
  EXPECT_EQ(v->FileForKey(1, Key(399))->number, 3u);
  EXPECT_EQ(v->FileForKey(1, Key(250)), nullptr);  // gap
  EXPECT_EQ(v->FileForKey(1, Key(999)), nullptr);  // past the end
}

TEST(VersionTest, OverlappingFiles) {
  LsmOptions opt;
  VersionSet vs(opt, nullptr);
  VersionEdit e;
  e.new_files.emplace_back(0, MakeFile(1, 0, 150));
  e.new_files.emplace_back(0, MakeFile(2, 100, 250));
  e.new_files.emplace_back(0, MakeFile(3, 300, 400));
  ASSERT_TRUE(vs.LogAndApply(&e).ok());
  VersionRef v = vs.current();
  auto overlap = v->OverlappingFiles(0, Key(120), Key(140));
  EXPECT_EQ(overlap.size(), 2u);
  overlap = v->OverlappingFiles(0, Key(260), Key(290));
  EXPECT_TRUE(overlap.empty());
  overlap = v->OverlappingFiles(0, Key(0), "");  // unbounded above
  EXPECT_EQ(overlap.size(), 3u);
}

/// Property: compaction jobs picked for any level are pairwise disjoint —
/// no file (input or next-level) appears in two jobs.
class CompactionPickerProperty : public testing::TestWithParam<int> {};

TEST_P(CompactionPickerProperty, JobsAreDisjoint) {
  int seed = GetParam();
  Random rng(seed);
  LsmOptions opt;
  opt.l0_compaction_trigger_bytes = 1;  // always compact
  VersionSet vs(opt, nullptr);
  VersionEdit e;
  uint64_t number = 1;
  // L0: files produced by 4 "Dranges" (disjoint groups, overlapping
  // within a group), plus some L1 files.
  for (int d = 0; d < 4; d++) {
    uint64_t lo = d * 1000;
    for (int i = 0; i < 1 + static_cast<int>(rng.Uniform(4)); i++) {
      uint64_t a = lo + rng.Uniform(400);
      uint64_t b = a + 1 + rng.Uniform(400);
      e.new_files.emplace_back(0, MakeFile(number++, a, std::min(b, lo + 999), d));
    }
  }
  for (int i = 0; i < 6; i++) {
    uint64_t a = i * 600;
    e.new_files.emplace_back(1, MakeFile(number++, a, a + 550));
  }
  ASSERT_TRUE(vs.LogAndApply(&e).ok());

  auto jobs = CompactionPicker::Pick(vs, vs.current(), 16);
  ASSERT_FALSE(jobs.empty());
  std::set<uint64_t> seen;
  for (const auto& job : jobs) {
    for (const auto& f : job.inputs) {
      EXPECT_TRUE(seen.insert(f->number).second)
          << "file " << f->number << " in two jobs";
    }
    for (const auto& f : job.inputs_next) {
      EXPECT_TRUE(seen.insert(f->number).second)
          << "file " << f->number << " in two jobs";
    }
    // Within a job, every next-level file overlaps some input.
    for (const auto& nf : job.inputs_next) {
      bool overlaps_any = false;
      for (const auto& f : job.inputs) {
        if (f->smallest.user_key().compare(nf->largest.user_key()) <= 0 &&
            nf->smallest.user_key().compare(f->largest.user_key()) <= 0) {
          overlaps_any = true;
        }
      }
      EXPECT_TRUE(overlaps_any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompactionPickerProperty,
                         testing::Range(1, 12));

TEST(CompactionPickerTest, PicksMostOversizedLevel) {
  LsmOptions opt;
  opt.l0_compaction_trigger_bytes = 100000;  // L0 fine
  opt.base_level_bytes = 500;                // L1 hugely oversized
  VersionSet vs(opt, nullptr);
  VersionEdit e;
  e.new_files.emplace_back(1, MakeFile(1, 0, 99));
  e.new_files.emplace_back(1, MakeFile(2, 100, 199));
  e.new_files.emplace_back(2, MakeFile(3, 0, 500));
  ASSERT_TRUE(vs.LogAndApply(&e).ok());
  auto jobs = CompactionPicker::Pick(vs, vs.current(), 4);
  ASSERT_FALSE(jobs.empty());
  EXPECT_EQ(jobs[0].input_level, 1);
  EXPECT_EQ(jobs[0].output_level, 2);
}

TEST(CompactionPickerTest, NothingToDoWhenUnderLimits) {
  LsmOptions opt;
  VersionSet vs(opt, nullptr);
  VersionEdit e;
  e.new_files.emplace_back(0, MakeFile(1, 0, 99));
  ASSERT_TRUE(vs.LogAndApply(&e).ok());
  auto jobs = CompactionPicker::Pick(vs, vs.current(), 4);
  EXPECT_TRUE(jobs.empty());  // 1000 bytes < trigger
}

TEST(CompactionJobTest, SerializeRoundTrip) {
  CompactionJob job;
  job.input_level = 0;
  job.output_level = 1;
  job.inputs.push_back(std::make_shared<FileMetaData>(MakeFile(1, 0, 99)));
  job.inputs_next.push_back(
      std::make_shared<FileMetaData>(MakeFile(2, 50, 150)));
  job.boundaries = {Key(50), Key(90)};
  job.max_output_bytes = 12345;
  job.is_last_level = true;
  job.first_output_number = 77;
  job.readahead_blocks = 4;
  job.compression_codec = 1;

  CompactionJob out;
  ASSERT_TRUE(out.Deserialize(job.Serialize()).ok());
  EXPECT_EQ(out.input_level, 0);
  EXPECT_EQ(out.output_level, 1);
  ASSERT_EQ(out.inputs.size(), 1u);
  EXPECT_EQ(out.inputs[0]->number, 1u);
  EXPECT_EQ(out.boundaries, job.boundaries);
  EXPECT_EQ(out.max_output_bytes, 12345u);
  EXPECT_TRUE(out.is_last_level);
  EXPECT_EQ(out.first_output_number, 77u);
  EXPECT_EQ(out.readahead_blocks, 4);
  EXPECT_EQ(out.compression_codec, 1);
}

TEST(CompactionResultTest, SerializeRoundTrip) {
  CompactionResult result;
  result.outputs.push_back(MakeFile(9, 0, 50));
  result.records_in = 100;
  result.records_out = 80;
  result.gather_waves = 7;
  result.bytes_read = 4096;
  result.bytes_written = 2048;
  result.raw_bytes_written = 4000;
  CompactionResult out;
  ASSERT_TRUE(out.Deserialize(result.Serialize()).ok());
  ASSERT_EQ(out.outputs.size(), 1u);
  EXPECT_EQ(out.outputs[0].number, 9u);
  EXPECT_EQ(out.records_in, 100u);
  EXPECT_EQ(out.records_out, 80u);
  EXPECT_EQ(out.gather_waves, 7u);
  EXPECT_EQ(out.bytes_read, 4096u);
  EXPECT_EQ(out.bytes_written, 2048u);
  EXPECT_EQ(out.raw_bytes_written, 4000u);
}

/// Fuzz-ish: random jobs — empty input lists, empty boundary sets, huge
/// file numbers, zero/large readahead — must round-trip exactly, and a
/// truncated encoding must fail cleanly rather than misparse.
TEST(CompactionJobTest, SerializeRoundTripFuzz) {
  Random rng(20260807);
  for (int iter = 0; iter < 200; iter++) {
    CompactionJob job;
    job.input_level = rng.Uniform(6);
    job.output_level = job.input_level + 1;
    uint32_t n_in = rng.Uniform(5);
    for (uint32_t i = 0; i < n_in; i++) {
      uint64_t lo = rng.Uniform(10000);
      job.inputs.push_back(std::make_shared<FileMetaData>(
          MakeFile(rng.Next(), lo, lo + rng.Uniform(500))));
    }
    uint32_t n_next = rng.Uniform(4);  // often 0: pure L0 components
    for (uint32_t i = 0; i < n_next; i++) {
      uint64_t lo = rng.Uniform(10000);
      job.inputs_next.push_back(std::make_shared<FileMetaData>(
          MakeFile(rng.Next(), lo, lo + rng.Uniform(500))));
    }
    uint32_t n_bounds = rng.Uniform(5);
    for (uint32_t i = 0; i < n_bounds; i++) {
      job.boundaries.push_back(Key(rng.Uniform(100000)));
    }
    if (rng.OneIn(5)) {
      job.boundaries.push_back("");  // empty boundary key
    }
    job.max_output_bytes = rng.OneIn(3) ? 0 : (uint64_t{1} << rng.Uniform(40));
    job.is_last_level = rng.OneIn(2);
    job.first_output_number = rng.Next();
    job.readahead_blocks = rng.OneIn(3) ? 0 : static_cast<int>(rng.Uniform(64));
    job.compression_codec = rng.OneIn(2) ? 0 : static_cast<int>(rng.Uniform(4));

    std::string encoded = job.Serialize();
    CompactionJob out;
    ASSERT_TRUE(out.Deserialize(encoded).ok()) << "iter " << iter;
    EXPECT_EQ(out.input_level, job.input_level);
    EXPECT_EQ(out.output_level, job.output_level);
    ASSERT_EQ(out.inputs.size(), job.inputs.size());
    for (size_t i = 0; i < job.inputs.size(); i++) {
      EXPECT_EQ(out.inputs[i]->number, job.inputs[i]->number);
      EXPECT_EQ(out.inputs[i]->smallest.Encode().ToString(),
                job.inputs[i]->smallest.Encode().ToString());
    }
    ASSERT_EQ(out.inputs_next.size(), job.inputs_next.size());
    for (size_t i = 0; i < job.inputs_next.size(); i++) {
      EXPECT_EQ(out.inputs_next[i]->number, job.inputs_next[i]->number);
    }
    EXPECT_EQ(out.boundaries, job.boundaries);
    EXPECT_EQ(out.max_output_bytes, job.max_output_bytes);
    EXPECT_EQ(out.is_last_level, job.is_last_level);
    EXPECT_EQ(out.first_output_number, job.first_output_number);
    EXPECT_EQ(out.readahead_blocks, job.readahead_blocks);
    EXPECT_EQ(out.compression_codec, job.compression_codec);

    // Re-encoding the decoded job must be byte-identical (canonical form).
    EXPECT_EQ(out.Serialize(), encoded) << "iter " << iter;

    // Any strict prefix must be rejected, not misread.
    if (!encoded.empty()) {
      size_t cut = rng.Uniform(static_cast<uint32_t>(encoded.size()));
      CompactionJob trunc;
      EXPECT_FALSE(trunc.Deserialize(Slice(encoded.data(), cut)).ok())
          << "iter " << iter << " cut " << cut;
    }
  }
}

}  // namespace
}  // namespace lsm
}  // namespace nova
