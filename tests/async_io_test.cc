// Tests for the asynchronous StoC I/O pipeline: Future/AsyncCall
// semantics (out-of-order completion), GatherReads (parallel fan-out,
// replica failover, mixed success/failure), thread-free scatter writes,
// degraded parity gathers through one batched read, and scan readahead
// (hit accounting + identical iteration results with readahead on/off).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "lsm/table_io.h"
#include "rdma/rpc.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "stoc/stoc_client.h"
#include "stoc/stoc_server.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"

namespace nova {
namespace {

std::string Key(uint64_t i) { return bench::MakeKey(i); }

// ---------------------------------------------------------------------------
// RPC-layer future semantics.
// ---------------------------------------------------------------------------

class AsyncRpcTest : public testing::Test {
 protected:
  void SetUp() override {
    fabric_.AddNode(0);
    fabric_.AddNode(1);
    client_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, 0, 2, nullptr);
    server_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, 1, 2, nullptr);
    client_->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
  }

  void TearDown() override {
    client_->Stop();
    server_->Stop();
  }

  rdma::RdmaFabric fabric_;
  std::unique_ptr<rdma::RpcEndpoint> client_;
  std::unique_ptr<rdma::RpcEndpoint> server_;
};

TEST_F(AsyncRpcTest, FuturesCompleteOutOfOrder) {
  // The server batches three requests and answers them newest-first, so
  // the first-issued future completes last.
  std::mutex mu;
  std::vector<std::pair<uint64_t, std::string>> batch;
  server_->set_request_handler(
      [&](rdma::NodeId src, uint64_t req_id, const Slice& payload) {
        std::vector<std::pair<uint64_t, std::string>> ready;
        {
          std::lock_guard<std::mutex> l(mu);
          batch.emplace_back(req_id, payload.ToString());
          if (batch.size() == 3) {
            ready.swap(batch);
          }
        }
        for (auto it = ready.rbegin(); it != ready.rend(); ++it) {
          server_->Reply(src, it->first, "echo:" + it->second);
        }
      });
  server_->Start();
  client_->Start();

  rdma::Future f1 = client_->AsyncCall(1, "a");
  rdma::Future f2 = client_->AsyncCall(1, "b");
  rdma::Future f3 = client_->AsyncCall(1, "c");
  ASSERT_TRUE(f1.valid());
  ASSERT_TRUE(f2.valid());
  ASSERT_TRUE(f3.valid());

  std::string r3, r1, r2;
  ASSERT_TRUE(f3.Wait(&r3).ok());
  ASSERT_TRUE(f1.Wait(&r1).ok());
  ASSERT_TRUE(f2.Wait(&r2).ok());
  EXPECT_EQ(r1, "echo:a");
  EXPECT_EQ(r2, "echo:b");
  EXPECT_EQ(r3, "echo:c");
}

TEST_F(AsyncRpcTest, AsyncCallToDeadNodeFailsImmediately) {
  client_->Start();
  fabric_.RemoveNode(1);
  rdma::Future f = client_->AsyncCall(1, "ping");
  ASSERT_TRUE(f.valid());
  EXPECT_TRUE(f.ready());
  EXPECT_TRUE(f.Wait(nullptr).IsUnavailable());
}

TEST_F(AsyncRpcTest, WaitTimesOutWhenNoReply) {
  // Server swallows requests: every copy of the future sees the timeout.
  server_->set_request_handler(
      [](rdma::NodeId, uint64_t, const Slice&) {});
  server_->Start();
  client_->Start();
  rdma::Future f = client_->AsyncCall(1, "void");
  rdma::Future copy = f;
  EXPECT_TRUE(f.Wait(nullptr, 50).IsUnavailable());
  EXPECT_TRUE(copy.ready());
  EXPECT_TRUE(copy.Wait(nullptr, 50).IsUnavailable());
}

// ---------------------------------------------------------------------------
// StoC client batch primitives over real StoC servers.
// ---------------------------------------------------------------------------

class AsyncStocTest : public testing::Test {
 protected:
  static constexpr rdma::NodeId kClientNode = 0;
  static constexpr rdma::NodeId kStoc0 = 1000;
  static constexpr int kNumStocs = 4;

  void SetUp() override {
    DeviceConfig dcfg;
    dcfg.time_scale = 0;
    for (int i = 0; i < kNumStocs; i++) {
      devices_.push_back(
          std::make_unique<SimulatedDevice>("d" + std::to_string(i), dcfg));
      stores_.push_back(std::make_unique<BlockStore>());
      stoc::StocServerOptions opt;
      opt.slab_bytes = 16 << 20;
      opt.slab_page_bytes = 256 << 10;
      servers_.push_back(std::make_unique<stoc::StocServer>(
          &fabric_, kStoc0 + i, devices_[i].get(), stores_[i].get(), opt));
      servers_[i]->Start();
    }
    fabric_.AddNode(kClientNode);
    endpoint_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, kClientNode, 2,
                                                    nullptr);
    endpoint_->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
    endpoint_->Start();
    client_ = std::make_unique<stoc::StocClient>(endpoint_.get());
  }

  void TearDown() override {
    endpoint_->Stop();
    for (auto& s : servers_) {
      s->Stop();
    }
  }

  void KillStoc(int index) {
    servers_[index]->Stop();
    fabric_.RemoveNode(kStoc0 + index);
  }

  /// A ρ=3 + parity + 2 meta replica SSTable written through the async
  /// scatter path; returns the placement and the built bytes.
  lsm::FileMetaRef WriteScatteredTable(SSTableBuilder::Result&& built,
                                       std::string* data_copy) {
    *data_copy = built.data;
    lsm::PlacementOptions popt;
    for (int i = 0; i < kNumStocs; i++) {
      popt.stocs.push_back(kStoc0 + i);
    }
    popt.rho = 3;
    popt.power_of_d = false;
    popt.adjust_rho_by_size = false;
    popt.use_parity = true;
    popt.num_meta_replicas = 2;
    lsm::SSTablePlacer placer(client_.get(), popt);
    auto out = std::make_shared<lsm::FileMetaData>();
    Status s = placer.Write(std::move(built), 0, 0, out.get());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  static SSTableBuilder::Result BuildTable(int num_keys, int num_fragments) {
    SSTableBuilder builder;
    std::string value(256, 'v');
    for (int i = 0; i < num_keys; i++) {
      std::string ikey;
      AppendInternalKey(&ikey,
                        ParsedInternalKey(Key(i), i + 1, kTypeValue));
      builder.Add(ikey, value);
    }
    return builder.Finish(/*file_number=*/1, num_fragments);
  }

  rdma::RdmaFabric fabric_;
  std::vector<std::unique_ptr<SimulatedDevice>> devices_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<stoc::StocServer>> servers_;
  std::unique_ptr<rdma::RpcEndpoint> endpoint_;
  std::unique_ptr<stoc::StocClient> client_;
};

TEST_F(AsyncStocTest, GatherReadsParallelSuccess) {
  uint64_t f0 = stoc::MakeFileId(1, 1, stoc::FileKind::kData, 0);
  uint64_t f1 = stoc::MakeFileId(1, 2, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle h;
  ASSERT_TRUE(client_->AppendBlock(kStoc0, f0, "abcdefgh", &h).ok());
  ASSERT_TRUE(client_->AppendBlock(kStoc0 + 1, f1, "01234567", &h).ok());

  std::vector<stoc::GatherRead> reads(3);
  reads[0].replicas = {{kStoc0, f0}};  // whole file
  reads[1].replicas = {{kStoc0 + 1, f1}};
  reads[1].offset = 2;
  reads[1].size = 4;
  reads[2].replicas = {{kStoc0, f0}};
  reads[2].offset = 4;
  reads[2].size = 4;
  ASSERT_TRUE(client_->GatherReads(&reads).ok());
  EXPECT_EQ(reads[0].data, "abcdefgh");
  EXPECT_EQ(reads[1].data, "2345");
  EXPECT_EQ(reads[2].data, "efgh");
}

TEST_F(AsyncStocTest, GatherReadsMixedFailureAndFailover) {
  uint64_t good = stoc::MakeFileId(1, 3, stoc::FileKind::kData, 0);
  uint64_t replica2 = stoc::MakeFileId(1, 4, stoc::FileKind::kData, 1);
  uint64_t missing = stoc::MakeFileId(1, 5, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle h;
  ASSERT_TRUE(client_->AppendBlock(kStoc0, good, "solid", &h).ok());
  ASSERT_TRUE(client_->AppendBlock(kStoc0 + 2, replica2, "backup", &h).ok());

  std::vector<stoc::GatherRead> reads(3);
  reads[0].replicas = {{kStoc0, good}};
  // First replica is missing; the second wave fails over to stoc2.
  reads[1].replicas = {{kStoc0 + 1, missing}, {kStoc0 + 2, replica2}};
  // No replica exists anywhere: the entry (and the batch) must fail
  // without poisoning the other entries.
  reads[2].replicas = {{kStoc0 + 1, missing}};
  Status s = client_->GatherReads(&reads);
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(reads[0].status.ok());
  EXPECT_EQ(reads[0].data, "solid");
  EXPECT_TRUE(reads[1].status.ok());
  EXPECT_EQ(reads[1].data, "backup");
  EXPECT_FALSE(reads[2].status.ok());
}

TEST_F(AsyncStocTest, ScatterWriteRoundTrip) {
  auto built = BuildTable(/*num_keys=*/200, /*num_fragments=*/3);
  ASSERT_EQ(built.meta.num_fragments(), 3);
  std::string data;
  lsm::FileMetaRef meta = WriteScatteredTable(std::move(built), &data);

  ASSERT_EQ(meta->fragments.size(), 3u);
  EXPECT_TRUE(meta->parity.valid());
  EXPECT_EQ(meta->meta_replicas.size(), 2u);
  for (const auto& loc : meta->meta_replicas) {
    EXPECT_TRUE(loc.valid());
  }
  // Every fragment reads back as the matching slice of the built data.
  uint64_t offset = 0;
  for (int f = 0; f < 3; f++) {
    ASSERT_EQ(meta->fragments[f].size(), 1u);
    std::string frag;
    ASSERT_TRUE(client_
                    ->ReadBlock(meta->fragments[f][0].stoc_id,
                                meta->fragments[f][0].file_id, 0, 0, &frag)
                    .ok());
    EXPECT_EQ(frag, data.substr(offset, meta->fragment_sizes[f]));
    offset += meta->fragment_sizes[f];
  }
}

TEST_F(AsyncStocTest, DegradedParityGatherReconstructsLostFragment) {
  auto built = BuildTable(/*num_keys=*/200, /*num_fragments=*/3);
  std::string data;
  lsm::FileMetaRef meta = WriteScatteredTable(std::move(built), &data);

  // Lose the StoC hosting fragment 1 (and only that one, so the parity
  // gather can still reach the parity block and the other fragments).
  int lost_stoc = meta->fragments[1][0].stoc_id;
  EXPECT_NE(meta->parity.stoc_id, lost_stoc);
  KillStoc(lost_stoc - kStoc0);

  lsm::StocBlockFetcher fetcher(client_.get(), meta);
  std::string frag;
  ASSERT_TRUE(
      fetcher.Fetch(1, 0, meta->fragment_sizes[1], &frag).ok());
  uint64_t offset = meta->fragment_sizes[0];
  EXPECT_EQ(frag, data.substr(offset, meta->fragment_sizes[1]));
  EXPECT_GE(fetcher.degraded_reads(), 1u);

  // A sliced read of the lost fragment reconstructs and re-slices.
  std::string slice;
  ASSERT_TRUE(fetcher.Fetch(1, 10, 64, &slice).ok());
  EXPECT_EQ(slice, data.substr(offset + 10, 64));
}

TEST_F(AsyncStocTest, ReadaheadIteratorMatchesSerialScan) {
  auto built = BuildTable(/*num_keys=*/300, /*num_fragments=*/3);
  SSTableMetadata table_meta = built.meta;
  std::string data;
  lsm::FileMetaRef meta = WriteScatteredTable(std::move(built), &data);

  lsm::StocBlockFetcher fetcher(client_.get(), meta);
  ReadaheadCounters counters;
  SSTableReader reader(table_meta, &fetcher, /*block_cache=*/nullptr,
                       /*range_id=*/0, /*readahead_blocks=*/2, &counters);

  auto collect = [](Iterator* raw) {
    std::unique_ptr<Iterator> it(raw);
    std::vector<std::pair<std::string, std::string>> rows;
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      rows.emplace_back(it->key().ToString(), it->value().ToString());
    }
    return rows;
  };
  auto serial = collect(reader.NewIterator(true, /*readahead_blocks=*/0));
  EXPECT_EQ(counters.issued.load(), 0u);
  auto ahead = collect(reader.NewIterator(true, /*readahead_blocks=*/2));
  EXPECT_EQ(ahead, serial);
  EXPECT_EQ(serial.size(), 300u);
  EXPECT_GT(counters.issued.load(), 0u);
  EXPECT_GT(counters.hits.load(), 0u);
  EXPECT_LE(counters.hits.load(), counters.issued.load());
}

// ---------------------------------------------------------------------------
// Scan readahead end to end through the cluster.
// ---------------------------------------------------------------------------

coord::ClusterOptions ReadaheadClusterOptions(int readahead_blocks) {
  coord::ClusterOptions opt;
  opt.num_ltcs = 1;
  opt.num_stocs = 3;
  opt.device.time_scale = 0;
  // Memtables sized so a flush spans several 4 KB data blocks — a
  // single-block SSTable has nothing to read ahead.
  opt.range.memtable_size = 32 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 64 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.lsm.l0_compaction_trigger_bytes = 32 << 10;
  opt.range.lsm.l0_stop_bytes = 256 << 10;
  opt.range.lsm.base_level_bytes = 128 << 10;
  opt.range.log.mode = logc::LogMode::kNone;
  opt.placement.rho = 2;
  opt.stoc.slab_bytes = 64 << 20;
  opt.stoc.slab_page_bytes = 256 << 10;
  opt.ltc.readahead_blocks = readahead_blocks;
  return opt;
}

std::vector<std::pair<std::string, std::string>> LoadAndScan(
    int readahead_blocks, uint64_t* readahead_issued,
    uint64_t* readahead_hits) {
  coord::Cluster cluster(ReadaheadClusterOptions(readahead_blocks));
  cluster.Start();
  for (int i = 0; i < 800; i++) {
    EXPECT_TRUE(cluster
                    .Put(Key(i % 400),
                         std::string(512, 'v') + std::to_string(i))
                    .ok());
  }
  for (auto* engine : cluster.ltc(0)->ranges()) {
    engine->FlushAllMemtables();
    engine->WaitForQuiescence(/*flush_all=*/true);
  }
  std::vector<std::pair<std::string, std::string>> rows;
  EXPECT_TRUE(cluster.Scan(Key(0), 400, &rows).ok());
  ltc::RangeStats stats = cluster.TotalStats();
  *readahead_issued = stats.readahead_issued;
  *readahead_hits = stats.readahead_hits;
  cluster.Stop();
  return rows;
}

TEST(ScanReadaheadClusterTest, HitsCountedAndResultsIdentical) {
  uint64_t issued_off = 0, hits_off = 0, issued_on = 0, hits_on = 0;
  auto rows_off = LoadAndScan(/*readahead_blocks=*/-1, &issued_off,
                              &hits_off);
  auto rows_on = LoadAndScan(/*readahead_blocks=*/2, &issued_on, &hits_on);
  EXPECT_EQ(rows_off, rows_on);
  EXPECT_EQ(rows_on.size(), 400u);
  EXPECT_EQ(issued_off, 0u);
  EXPECT_EQ(hits_off, 0u);
  EXPECT_GT(issued_on, 0u);
  EXPECT_GT(hits_on, 0u);
}

}  // namespace
}  // namespace nova
