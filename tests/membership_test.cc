// ISSUE 9: failure detection, the circuit breaker, and automatic repair.
//  * Membership state machine unit tests (alive -> suspect -> dead ->
//    probing -> alive, probe spacing, lease-expiry integration).
//  * Circuit breaker: no RPCs routed to suspect/dead StoCs; placement
//    excludes them.
//  * Repair end-to-end: R=3 under a Zipfian load, KillStoc drives
//    degraded_fragments to a peak and back to zero with no operator
//    action, and post-repair reads take the normal (non-parity) path.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "coord/coordinator.h"
#include "coord/membership.h"
#include "util/random.h"
#include "util/zipfian.h"

namespace nova {
namespace {

using coord::Membership;
using coord::MembershipOptions;
using coord::NodeHealth;

MembershipOptions FastMembership() {
  MembershipOptions m;
  m.failure_threshold = 2;
  m.dead_after_ms = 100;
  m.rejoin_probes = 1;
  m.probe_interval_ms = 5;
  return m;
}

TEST(MembershipTest, FailureThresholdDrivesSuspect) {
  Membership m(FastMembership());
  m.NodeJoined(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kAlive);
  EXPECT_TRUE(m.IsRoutable(1000));
  m.ReportFailure(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kAlive);  // below threshold
  m.ReportFailure(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kSuspect);
  EXPECT_FALSE(m.IsRoutable(1000));
  // One success clears the suspicion entirely.
  m.ReportSuccess(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kAlive);
  // A success also resets the consecutive-failure counter.
  m.ReportFailure(1000);
  m.ReportSuccess(1000);
  m.ReportFailure(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kAlive);
}

TEST(MembershipTest, SuspectPromotesToDeadAfterDeadline) {
  Membership m(FastMembership());
  m.NodeJoined(1000);
  m.MarkSuspect(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kSuspect);
  EXPECT_TRUE(m.DeadNodes().empty());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // Promotion is lazy: any read observes it.
  EXPECT_EQ(m.health(1000), NodeHealth::kDead);
  ASSERT_EQ(m.DeadNodes().size(), 1u);
  EXPECT_EQ(m.DeadNodes()[0], 1000);
  EXPECT_FALSE(m.IsRoutable(1000));
  // Dead nodes are not probed; they must rejoin through the coordinator.
  EXPECT_FALSE(m.AllowProbe(1000));
}

TEST(MembershipTest, DeadRejoinsThroughProbing) {
  Membership m(FastMembership());
  m.NodeJoined(1000);
  m.MarkDead(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kDead);
  m.NodeJoined(1000);  // lease re-granted
  EXPECT_EQ(m.health(1000), NodeHealth::kProbing);
  EXPECT_FALSE(m.IsRoutable(1000));
  EXPECT_TRUE(m.AllowProbe(1000));
  // Probes are spaced probe_interval_ms apart.
  EXPECT_FALSE(m.AllowProbe(1000));
  m.ReportSuccess(1000);  // rejoin_probes = 1
  EXPECT_EQ(m.health(1000), NodeHealth::kAlive);
  EXPECT_TRUE(m.IsRoutable(1000));
}

TEST(MembershipTest, ProbingFailureFallsBackToSuspect) {
  Membership m(FastMembership());
  m.NodeJoined(1000);
  m.MarkDead(1000);
  m.NodeJoined(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kProbing);
  m.ReportFailure(1000);
  EXPECT_EQ(m.health(1000), NodeHealth::kSuspect);
  // ... and the death clock restarts from this fresh suspicion.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(m.health(1000), NodeHealth::kDead);
}

TEST(MembershipTest, UnknownNodesAreRoutable) {
  Membership m(FastMembership());
  EXPECT_TRUE(m.IsRoutable(42));
  EXPECT_EQ(m.health(42), NodeHealth::kAlive);
}

TEST(MembershipTest, VersionBumpsOnTransitions) {
  Membership m(FastMembership());
  uint64_t v0 = m.version();
  m.NodeJoined(1000);
  uint64_t v1 = m.version();
  EXPECT_GT(v1, v0);
  m.MarkSuspect(1000);
  EXPECT_GT(m.version(), v1);
}

TEST(CoordinatorMembershipTest, HeartbeatLeaseExpiryMarksSuspect) {
  coord::Coordinator coordinator(/*lease_ms=*/50, FastMembership());
  coordinator.GrantLease(1000);
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kAlive);
  EXPECT_TRUE(coordinator.Heartbeat(1000));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  // The lease lapsed: the heartbeat is rejected and the node is suspect.
  EXPECT_FALSE(coordinator.Heartbeat(1000));
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kSuspect);
  // Re-granting the lease (the node came back before the death verdict)
  // restores it.
  coordinator.GrantLease(1000);
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kAlive);
}

TEST(CoordinatorMembershipTest, ExpireLeaseThenVerdictThenRejoin) {
  coord::Coordinator coordinator(/*lease_ms=*/1000, FastMembership());
  coordinator.GrantLease(1000);
  coordinator.ExpireLease(1000);
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kSuspect);
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kDead);
  coordinator.GrantLease(1000);
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kProbing);
  coordinator.membership()->ReportSuccess(1000);
  EXPECT_EQ(coordinator.membership()->health(1000), NodeHealth::kAlive);
}

coord::ClusterOptions RepairClusterOptions(int stocs) {
  coord::ClusterOptions opt;
  opt.num_ltcs = 1;
  opt.num_stocs = stocs;
  opt.device.time_scale = 0;
  opt.membership = FastMembership();
  opt.range.memtable_size = 8 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 16 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.lsm.l0_compaction_trigger_bytes = 64 << 10;
  opt.range.lsm.l0_stop_bytes = 512 << 10;
  opt.range.manifest_replicas = 1;  // manifest pinned to StoC 0
  opt.ltc.repair.scan_interval_ms = 10;
  return opt;
}

/// Lost pieces across every live file of the engine, judged against the
/// given StoC (the test-side mirror of the repair scan's gauge).
int PiecesOnStoc(ltc::RangeEngine* engine, rdma::NodeId stoc) {
  int n = 0;
  lsm::VersionRef v = engine->versions()->current();
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      for (const auto& replicas : f->fragments) {
        for (const auto& loc : replicas) {
          if (loc.stoc_id == stoc) n++;
        }
      }
      for (const auto& loc : f->meta_replicas) {
        if (loc.stoc_id == stoc) n++;
      }
      if (f->parity.valid() && f->parity.stoc_id == stoc) n++;
    }
  }
  return n;
}

TEST(BreakerTest, KilledStocIsExcludedFromRoutingAndPlacement) {
  coord::ClusterOptions opt = RepairClusterOptions(4);
  opt.ltc.repair.enabled = false;  // isolate the breaker from repair
  coord::Cluster cluster(opt);
  cluster.Start();
  stoc::StocClient* client = cluster.ltc(0)->stoc_client();
  rdma::NodeId victim = coord::Cluster::StocNode(3);
  EXPECT_TRUE(client->IsRoutable(victim));
  cluster.KillStoc(3);
  // ExpireLease marks the node suspect immediately: not routable.
  EXPECT_FALSE(client->IsRoutable(victim));
  // Placement never picks it (RefreshPlacements dropped it, and the
  // placer additionally filters by routability).
  auto* engine = cluster.ltc(0)->ranges()[0];
  for (int i = 0; i < 20; i++) {
    for (rdma::NodeId n : engine->placer()->PickStocs(3)) {
      EXPECT_NE(n, victim);
    }
  }
  // An RPC to the dead node fast-fails as Unavailable (circuit open or
  // fabric failure — either way typed, not a 30 s timeout).
  stoc::StocStats stats;
  Status s = client->GetStats(victim, &stats);
  EXPECT_TRUE(s.IsUnavailable()) << s.ToString();
  cluster.Stop();
}

TEST(RepairTest, ReplicatedFragmentsRepairAfterDeathVerdict) {
  // R=3 data replicas + 3 meta replicas on 4 StoCs under a Zipfian load.
  coord::ClusterOptions opt = RepairClusterOptions(4);
  opt.placement.rho = 1;
  opt.placement.num_data_replicas = 3;
  opt.placement.num_meta_replicas = 3;
  coord::Cluster cluster(opt);
  cluster.Start();
  Random rng(7);
  ZipfianGenerator zipf(600, 0.99);
  for (int i = 0; i < 3000; i++) {
    ASSERT_TRUE(cluster
                    .Put(bench::MakeKey(zipf.Next(&rng)),
                         "v" + std::to_string(i))
                    .ok());
  }
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  // Kill a StoC that actually holds pieces (not StoC 0: the manifest
  // replica lives there).
  int victim_index = -1;
  for (int i = opt.num_stocs - 1; i >= 1; i--) {
    if (PiecesOnStoc(engine, coord::Cluster::StocNode(i)) > 0) {
      victim_index = i;
      break;
    }
  }
  ASSERT_GE(victim_index, 1) << "load produced no placements off StoC 0";
  rdma::NodeId victim = coord::Cluster::StocNode(victim_index);
  int lost = PiecesOnStoc(engine, victim);
  cluster.KillStoc(victim_index);

  // No operator action below this line: the death verdict lands after
  // dead_after_ms and the repair manager re-replicates everything.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  uint64_t peak_degraded = 0;
  bool healed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    ltc::RangeStats stats = cluster.TotalStats();
    peak_degraded = std::max(peak_degraded, stats.degraded_fragments);
    if (peak_degraded > 0 && stats.degraded_fragments == 0 &&
        PiecesOnStoc(engine, victim) == 0) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(healed) << "degraded pieces never reached zero (peak "
                      << peak_degraded << ", lost " << lost << ")";
  // `lost` is an upper bound, not an exact expectation: background
  // compaction can retire files (and their pieces) between the pre-kill
  // count and the repair scan, so the gauge peak and the repaired total
  // may come in slightly under it.
  EXPECT_GT(peak_degraded, 0u);

  ltc::RangeStats stats = cluster.TotalStats();
  EXPECT_GT(stats.repaired_fragments, 0u);
  EXPECT_GT(stats.repaired_bytes, 0u);
  EXPECT_GT(stats.repair_us, 0u) << "measured repair window not recorded";

  // Post-repair reads take the normal path: no live file references the
  // dead StoC anymore, and every key reads back with the node still down.
  EXPECT_EQ(PiecesOnStoc(engine, victim), 0);
  uint64_t degraded_before = engine->degraded_gets();
  for (int k = 0; k < 600; k++) {
    std::string value;
    Status s = cluster.Get(bench::MakeKey(k), &value);
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << k << " " << s.ToString();
  }
  EXPECT_EQ(engine->degraded_gets(), degraded_before);
  cluster.Stop();
}

TEST(RepairTest, ParityFragmentsRebuiltWhenAllReplicasLost) {
  // rho=2 fragments, R=1, plus a parity block: losing a StoC loses whole
  // fragments, which must be rebuilt by XOR and re-placed.
  coord::ClusterOptions opt = RepairClusterOptions(4);
  opt.placement.rho = 2;
  opt.placement.num_data_replicas = 1;
  opt.placement.num_meta_replicas = 2;
  opt.placement.use_parity = true;
  coord::Cluster cluster(opt);
  cluster.Start();
  Random rng(11);
  for (int i = 0; i < 2500; i++) {
    ASSERT_TRUE(cluster
                    .Put(bench::MakeKey(rng.Uniform(500)),
                         "p" + std::to_string(i))
                    .ok());
  }
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  int victim_index = -1;
  for (int i = opt.num_stocs - 1; i >= 1; i--) {
    if (PiecesOnStoc(engine, coord::Cluster::StocNode(i)) > 0) {
      victim_index = i;
      break;
    }
  }
  ASSERT_GE(victim_index, 1);
  rdma::NodeId victim = coord::Cluster::StocNode(victim_index);
  cluster.KillStoc(victim_index);

  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool healed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster.TotalStats().degraded_fragments == 0 &&
        cluster.TotalStats().repaired_fragments > 0 &&
        PiecesOnStoc(engine, victim) == 0) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(healed);
  // Every key still reads back with the victim down and its fragments
  // rebuilt from parity.
  for (int k = 0; k < 500; k++) {
    std::string value;
    Status s = cluster.Get(bench::MakeKey(k), &value);
    EXPECT_TRUE(s.ok() || s.IsNotFound()) << k << " " << s.ToString();
  }
  cluster.Stop();
}

TEST(RepairTest, RebuiltFragmentsAreByteIdenticalCompressedImages) {
  // Fragments are stored as compressed trailered blocks. The XOR-parity
  // rebuild must reproduce the on-StoC fragment image byte for byte —
  // not merely bytes that decode to the same rows — or checksums and
  // fragment_sizes would drift on the repaired copy.
  coord::ClusterOptions opt = RepairClusterOptions(4);
  opt.placement.rho = 2;
  opt.placement.num_data_replicas = 1;
  opt.placement.num_meta_replicas = 2;
  opt.placement.use_parity = true;
  coord::Cluster cluster(opt);
  cluster.Start();
  Random rng(13);
  for (int i = 0; i < 2500; i++) {
    ASSERT_TRUE(cluster
                    .Put(bench::MakeKey(rng.Uniform(500)),
                         "q" + std::to_string(i))
                    .ok());
  }
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  int victim_index = -1;
  for (int i = opt.num_stocs - 1; i >= 1; i--) {
    if (PiecesOnStoc(engine, coord::Cluster::StocNode(i)) > 0) {
      victim_index = i;
      break;
    }
  }
  ASSERT_GE(victim_index, 1);
  rdma::NodeId victim = coord::Cluster::StocNode(victim_index);

  // Snapshot every data-fragment image the victim holds, while it is
  // still alive.
  stoc::StocClient* client = cluster.ltc(0)->stoc_client();
  struct FragmentImage {
    uint64_t number;
    size_t fragment;
    std::string bytes;
  };
  std::vector<FragmentImage> images;
  {
    lsm::VersionRef v = engine->versions()->current();
    for (int level = 0; level < v->num_levels(); level++) {
      for (const auto& f : v->files(level)) {
        for (size_t i = 0; i < f->fragments.size(); i++) {
          for (const auto& loc : f->fragments[i]) {
            if (loc.stoc_id != victim) {
              continue;
            }
            std::string bytes;
            ASSERT_TRUE(
                client->ReadBlock(victim, loc.file_id, 0, 0, &bytes).ok());
            ASSERT_EQ(bytes.size(), f->fragment_sizes[i]);
            images.push_back({f->number, i, std::move(bytes)});
          }
        }
      }
    }
  }
  ASSERT_FALSE(images.empty()) << "victim holds no data fragments";

  cluster.KillStoc(victim_index);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  bool healed = false;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cluster.TotalStats().degraded_fragments == 0 &&
        cluster.TotalStats().repaired_fragments > 0 &&
        PiecesOnStoc(engine, victim) == 0) {
      healed = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(healed);

  // Compare every snapshotted fragment still live (compaction may have
  // retired some files in the window) against its re-placed copy.
  int compared = 0;
  lsm::VersionRef v = engine->versions()->current();
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      for (const FragmentImage& img : images) {
        if (img.number != f->number) {
          continue;
        }
        ASSERT_LT(img.fragment, f->fragments.size());
        for (const auto& loc : f->fragments[img.fragment]) {
          ASSERT_TRUE(loc.valid());
          ASSERT_NE(loc.stoc_id, victim);
          std::string bytes;
          ASSERT_TRUE(
              client->ReadBlock(loc.stoc_id, loc.file_id, 0, 0, &bytes).ok());
          EXPECT_TRUE(bytes == img.bytes)
              << "rebuilt fragment " << img.fragment << " of file "
              << img.number << " differs from the lost image";
          compared++;
        }
      }
    }
  }
  EXPECT_GT(compared, 0) << "every snapshotted file was compacted away";

  // Sanity: the images this test compared really were compressed ones.
  ltc::RangeStats stats = cluster.TotalStats();
  EXPECT_GT(stats.sstable_raw_bytes, stats.sstable_stored_bytes);
  cluster.Stop();
}

TEST(RepairTest, RestartedStocRejoinsRotation) {
  coord::ClusterOptions opt = RepairClusterOptions(3);
  opt.placement.num_data_replicas = 2;
  coord::Cluster cluster(opt);
  cluster.Start();
  stoc::StocClient* client = cluster.ltc(0)->stoc_client();
  rdma::NodeId victim = coord::Cluster::StocNode(2);
  cluster.KillStoc(2);
  EXPECT_FALSE(client->IsRoutable(victim));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(cluster.coordinator()->membership()->health(victim),
            NodeHealth::kDead);
  // RestartStoc re-grants the lease and drives the half-open probes; the
  // node must come back alive and routable without further action.
  cluster.RestartStoc(2);
  EXPECT_EQ(cluster.coordinator()->membership()->health(victim),
            NodeHealth::kAlive);
  EXPECT_TRUE(client->IsRoutable(victim));
  cluster.Stop();
}

}  // namespace
}  // namespace nova
