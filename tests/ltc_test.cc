#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "ltc/drange.h"
#include "ltc/lookup_index.h"
#include "ltc/range_index.h"
#include "util/random.h"
#include "util/zipfian.h"

namespace nova {
namespace ltc {
namespace {

std::string Key(uint64_t i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "user%012llu",
           static_cast<unsigned long long>(i));
  return buf;
}

TEST(DrangeTest, StartsWithOneDrange) {
  DrangeOptions opt;
  DrangeManager mgr("", "", opt);
  EXPECT_EQ(mgr.num_dranges(), 1);
  EXPECT_EQ(mgr.RouteWrite(Key(5)), 0);
  EXPECT_TRUE(mgr.Boundaries().empty());
}

TEST(DrangeTest, MajorReorgBuildsThetaDranges) {
  DrangeOptions opt;
  opt.theta = 8;
  opt.warmup_writes = 512;
  opt.sample_rate = 1;
  DrangeManager mgr("", "", opt);
  Random rng(5);
  for (int i = 0; i < 2000; i++) {
    mgr.RouteWrite(Key(rng.Uniform(10000)));
  }
  ASSERT_TRUE(mgr.NeedsReorg());
  auto changed = mgr.MaybeReorg();
  EXPECT_FALSE(changed.empty());
  EXPECT_GE(mgr.num_dranges(), opt.theta);
  EXPECT_EQ(mgr.num_major_reorgs(), 1u);
  // Every key routes somewhere and boundaries are sorted.
  auto bounds = mgr.Boundaries();
  for (size_t i = 1; i < bounds.size(); i++) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  for (int i = 0; i < 200; i++) {
    EXPECT_GE(mgr.RouteWrite(Key(rng.Uniform(10000))), 0);
  }
}

TEST(DrangeTest, UniformLoadIsBalancedAfterReorg) {
  DrangeOptions opt;
  opt.theta = 8;
  opt.warmup_writes = 512;
  opt.sample_rate = 1;
  DrangeManager mgr("", "", opt);
  Random rng(6);
  UniformGenerator gen(100000);
  for (int i = 0; i < 4000; i++) {
    mgr.RouteWrite(Key(gen.Next(&rng)));
  }
  mgr.MaybeReorg();
  for (int i = 0; i < 40000; i++) {
    mgr.RouteWrite(Key(gen.Next(&rng)));
  }
  // Paper Section 8.2.1: near-zero imbalance for Uniform.
  EXPECT_LT(mgr.LoadImbalance(), 0.05);
}

TEST(DrangeTest, HotPointKeyGetsDuplicated) {
  DrangeOptions opt;
  opt.theta = 8;
  opt.warmup_writes = 256;
  opt.sample_rate = 1;
  DrangeManager mgr("", "", opt);
  Random rng(7);
  // Key 0 takes ~50% of writes — far more than 2/θ.
  for (int i = 0; i < 4000; i++) {
    if (rng.OneIn(2)) {
      mgr.RouteWrite(Key(0));
    } else {
      mgr.RouteWrite(Key(1 + rng.Uniform(10000)));
    }
  }
  mgr.MaybeReorg();
  EXPECT_GT(mgr.num_duplicated_dranges(), 1);
  // Writes of the hot key spread across the duplicates.
  std::set<int> targets;
  for (int i = 0; i < 200; i++) {
    targets.insert(mgr.RouteWrite(Key(0)));
  }
  EXPECT_GT(targets.size(), 1u);
}

TEST(DrangeTest, MinorReorgMovesTranges) {
  DrangeOptions opt;
  opt.theta = 4;
  opt.gamma = 4;
  opt.warmup_writes = 256;
  opt.sample_rate = 1;
  opt.epsilon = 0.1;
  DrangeManager mgr("", "", opt);
  Random rng(8);
  // Uniform warm-up then a skewed phase concentrated in one drange.
  for (int i = 0; i < 2000; i++) {
    mgr.RouteWrite(Key(rng.Uniform(10000)));
  }
  mgr.MaybeReorg();
  uint64_t majors = mgr.num_major_reorgs();
  for (int i = 0; i < 4000; i++) {
    mgr.RouteWrite(Key(rng.Uniform(2500)));  // first quarter of keyspace
  }
  if (mgr.NeedsReorg()) {
    mgr.MaybeReorg();
  }
  EXPECT_GE(mgr.num_minor_reorgs() + (mgr.num_major_reorgs() - majors), 1u);
}

TEST(DrangeTest, SerializeRoundTrip) {
  DrangeOptions opt;
  opt.theta = 4;
  opt.warmup_writes = 128;
  opt.sample_rate = 1;
  DrangeManager mgr("", "", opt);
  Random rng(9);
  for (int i = 0; i < 1000; i++) {
    mgr.RouteWrite(Key(rng.Uniform(1000)));
  }
  mgr.MaybeReorg();
  std::string state = mgr.Serialize();

  DrangeManager restored("", "", opt);
  ASSERT_TRUE(restored.Deserialize(state));
  EXPECT_EQ(restored.num_dranges(), mgr.num_dranges());
  for (int i = 0; i < mgr.num_dranges(); i++) {
    EXPECT_EQ(restored.DrangeBounds(i), mgr.DrangeBounds(i));
  }
}

TEST(DrangeTest, StaticModeFreezesAfterFirstMajor) {
  DrangeOptions opt;
  opt.theta = 4;
  opt.warmup_writes = 128;
  opt.sample_rate = 1;
  opt.static_after_first_major = true;
  DrangeManager mgr("", "", opt);
  Random rng(10);
  for (int i = 0; i < 1000; i++) {
    mgr.RouteWrite(Key(rng.Uniform(1000)));
  }
  mgr.MaybeReorg();
  EXPECT_EQ(mgr.num_major_reorgs(), 1u);
  // Extreme skew afterwards must not trigger anything.
  for (int i = 0; i < 5000; i++) {
    mgr.RouteWrite(Key(1));
  }
  EXPECT_FALSE(mgr.NeedsReorg());
  EXPECT_TRUE(mgr.MaybeReorg().empty());
}

TEST(LookupIndexTest, UpdateLookupErase) {
  LookupIndex idx;
  idx.Update("a", 1, 10);
  idx.Update("b", 2, 11);
  uint64_t mid;
  ASSERT_TRUE(idx.Lookup("a", &mid));
  EXPECT_EQ(mid, 1u);
  EXPECT_FALSE(idx.Lookup("c", &mid));
  idx.EraseIf("a", 99);  // wrong mid: no-op
  EXPECT_TRUE(idx.Lookup("a", &mid));
  idx.EraseIf("a", 1);
  EXPECT_FALSE(idx.Lookup("a", &mid));
  EXPECT_EQ(idx.size(), 1u);
}

TEST(LookupIndexTest, StaleSequenceNeverOverwrites) {
  LookupIndex idx;
  idx.Update("k", 5, 100);
  idx.Update("k", 3, 50);  // older write racing in late
  uint64_t mid;
  ASSERT_TRUE(idx.Lookup("k", &mid));
  EXPECT_EQ(mid, 5u);
}

TEST(LookupIndexTest, UpdateIfIn) {
  LookupIndex idx;
  idx.Update("k", 5, 100);
  idx.UpdateIfIn("k", {1, 2}, 9);  // 5 not in set: no-op
  uint64_t mid;
  idx.Lookup("k", &mid);
  EXPECT_EQ(mid, 5u);
  idx.UpdateIfIn("k", {5}, 9);
  idx.Lookup("k", &mid);
  EXPECT_EQ(mid, 9u);
}

TEST(MidTableTest, MemtableToFileHandoff) {
  MidTable table;
  InternalKeyComparator icmp;
  auto mem = std::make_shared<MemTable>(icmp, 7);
  table.SetMemtable(7, mem);
  MidTable::Entry e;
  ASSERT_TRUE(table.Get(7, &e));
  EXPECT_FALSE(e.is_file);
  EXPECT_EQ(e.memtable.get(), mem.get());
  table.SetFile(7, 42);
  ASSERT_TRUE(table.Get(7, &e));
  EXPECT_TRUE(e.is_file);
  EXPECT_EQ(e.file_number, 42u);
  EXPECT_EQ(e.memtable, nullptr);
  table.Erase(7);
  EXPECT_FALSE(table.Get(7, &e));
}

TEST(RangeIndexTest, CollectAndSplit) {
  RangeIndex idx("", "");
  idx.AddMemtable(1, "", "");
  idx.AddL0File(100, Key(0), Key(499));
  auto view = idx.Collect(Key(250));
  ASSERT_TRUE(view.valid);
  EXPECT_EQ(view.memtables.size(), 1u);
  EXPECT_EQ(view.l0_files.size(), 1u);

  idx.SplitAt(Key(500));
  EXPECT_EQ(idx.num_partitions(), 2u);
  // Both halves inherited the entries.
  auto left = idx.Collect(Key(100));
  auto right = idx.Collect(Key(900));
  EXPECT_EQ(left.memtables.size(), 1u);
  EXPECT_EQ(right.memtables.size(), 1u);
  EXPECT_EQ(left.upper, Key(500));

  // A new memtable bounded to the right half lands only there.
  idx.AddMemtable(2, Key(500), "");
  left = idx.Collect(Key(100));
  right = idx.Collect(Key(900));
  EXPECT_EQ(left.memtables.size(), 1u);
  EXPECT_EQ(right.memtables.size(), 2u);

  idx.RemoveMemtable(1);
  idx.RemoveL0File(100);
  left = idx.Collect(Key(100));
  EXPECT_TRUE(left.memtables.empty());
  EXPECT_TRUE(left.l0_files.empty());
}

TEST(RangeIndexTest, SplitIsIdempotent) {
  RangeIndex idx("", "");
  idx.SplitAt(Key(100));
  idx.SplitAt(Key(100));
  EXPECT_EQ(idx.num_partitions(), 2u);
}

TEST(RangeIndexTest, CollectOutsideReturnsFirstAfter) {
  RangeIndex idx(Key(100), Key(200));
  auto view = idx.Collect(Key(150));
  EXPECT_TRUE(view.valid);
  view = idx.Collect(Key(500));  // past the end
  EXPECT_FALSE(view.valid);
}

}  // namespace
}  // namespace ltc
}  // namespace nova
