// Stress/property tests for the concurrency invariants documented in
// DESIGN.md §8: concurrent writers+readers under aggressive Drange
// reorganization, memtable merging, and parallel compaction must never
// produce stale reads, lost writes, or scan gaps.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace nova {
namespace {

coord::ClusterOptions ChurnOptions(int stocs) {
  coord::ClusterOptions opt;
  opt.num_ltcs = 1;
  opt.num_stocs = stocs;
  opt.device.time_scale = 0;
  opt.range.memtable_size = 8 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 16 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.drange.sample_rate = 1;
  opt.range.drange.epsilon = 0.04;  // reorg aggressively
  opt.range.unique_key_threshold = 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 32 << 10;
  opt.range.lsm.l0_stop_bytes = 256 << 10;
  opt.range.lsm.base_level_bytes = 128 << 10;
  opt.range.log.num_replicas = std::min(3, stocs);
  opt.range.log.region_size = 64 << 10;
  opt.range.manifest_replicas = std::min(3, stocs);
  return opt;
}

class ChurnTest : public testing::TestWithParam<int> {};

TEST_P(ChurnTest, NoStaleReadsUnderReorgChurn) {
  int seed = GetParam();
  coord::Cluster cluster(ChurnOptions(3));
  cluster.Start();
  Random rng(seed);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 5000; i++) {
    std::string key = bench::MakeKey(rng.Uniform(700));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster.Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString() << " "
                        << engine->DebugLookupState(key);
    EXPECT_EQ(got, value) << key << " " << engine->DebugLookupState(key)
                          << " newest " << engine->DebugFindNewest(key);
  }
  cluster.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnTest, testing::Range(100, 106));

TEST(ChurnConcurrentTest, WritersAndReadersRace) {
  coord::Cluster cluster(ChurnOptions(3));
  cluster.Start();
  const int kKeys = 300;
  // Per-key monotonically increasing values; readers must never observe a
  // value older than one they have already seen for that key.
  std::vector<std::atomic<int>> committed(kKeys);
  for (auto& c : committed) {
    c.store(-1);
  }
  std::atomic<bool> stop{false};
  std::atomic<int> violations{0};

  // Watchdog: this race once hung to the ctest timeout via a lost stall
  // wakeup (every writer parked on the L0 stall gate after the last
  // scheduled compaction's notify slipped through the predicate/block
  // window). Abort with per-writer progress instead of silently eating
  // the timeout budget, so a regression is diagnosable from the log.
  std::vector<std::atomic<int>> writer_progress(3);
  for (auto& p : writer_progress) {
    p.store(0);
  }
  std::atomic<bool> test_done{false};
  std::thread watchdog([&] {
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(100);
    while (!test_done.load()) {
      if (std::chrono::steady_clock::now() > deadline) {
        fprintf(stderr, "WritersAndReadersRace watchdog fired; writer puts:");
        for (auto& p : writer_progress) {
          fprintf(stderr, " %d", p.load());
        }
        fprintf(stderr, "/3000 each\n");
        fflush(stderr);
        abort();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < 3; w++) {
    writers.emplace_back([&, w] {
      Random rng(w * 31 + 1);
      for (int i = 0; i < 3000 && !stop.load(); i++) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        int version = w * 100000 + i;
        if (cluster.Put(bench::MakeKey(k), std::to_string(version)).ok()) {
          // Remember some committed version (not necessarily the newest).
          committed[k].store(version, std::memory_order_relaxed);
        }
        writer_progress[w].store(i + 1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r] {
      Random rng(r * 77 + 5);
      while (!stop.load()) {
        int k = static_cast<int>(rng.Uniform(kKeys));
        int known = committed[k].load(std::memory_order_relaxed);
        std::string got;
        Status s = cluster.Get(bench::MakeKey(k), &got);
        if (s.ok() && known >= 0) {
          // A read must see *some* committed write for the key (any
          // writer); complete absence after a committed write is a loss.
          if (got.empty()) {
            violations.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  stop.store(true);
  for (auto& t : readers) {
    t.join();
  }
  EXPECT_EQ(violations.load(), 0);

  // Final state: the last writer-recorded version per key must be
  // readable or superseded by a newer committed one (same writer ids).
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->WaitForQuiescence(true);
  int missing = 0;
  for (int k = 0; k < kKeys; k++) {
    if (committed[k].load() < 0) {
      continue;
    }
    std::string got;
    if (!cluster.Get(bench::MakeKey(k), &got).ok()) {
      missing++;
    }
  }
  EXPECT_EQ(missing, 0);
  test_done.store(true);
  watchdog.join();
  cluster.Stop();
}

// ISSUE 9 chaos suite: kill/restart StoCs while failpoints inject RPC
// errors, under a live write load. Invariant: no acked write is ever
// lost — every Put the cluster acknowledged must read back correctly
// once the dust settles. Each seed drives both the failpoint RNG and
// the workload, so a failing seed replays deterministically.
class ChaosTest : public testing::TestWithParam<int> {
 protected:
  void TearDown() override { util::FailPoint::DisableAll(); }
};

TEST_P(ChaosTest, NoAckedWriteLostUnderFaultsAndStocChurn) {
  int seed = GetParam();
  coord::ClusterOptions opt = ChurnOptions(4);
  // Manifest replicas live on StoC indices [0, manifest_replicas): only
  // index 3 is safe to kill.
  opt.placement.num_data_replicas = 2;
  opt.placement.num_meta_replicas = 2;
  opt.membership.failure_threshold = 2;
  opt.membership.dead_after_ms = 100;
  opt.membership.rejoin_probes = 1;
  opt.membership.probe_interval_ms = 5;
  opt.ltc.repair.scan_interval_ms = 10;
  coord::Cluster cluster(opt);
  cluster.Start();

  util::FailPoint::Seed(seed);
  // logc.append fires before any replica write, so an injected failure
  // there surfaces as an unacked Put — never a torn ack.
  util::FailPoint::EnableError("rpc.send",
                               Status::Unavailable("chaos: rpc.send"),
                               util::FailPoint::Trigger::Probability(0.01));
  util::FailPoint::EnableError("logc.append",
                               Status::Unavailable("chaos: logc.append"),
                               util::FailPoint::Trigger::Probability(0.02));

  std::atomic<bool> stop{false};
  std::mutex oracle_mu;
  std::map<std::string, std::string> oracle;
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; w++) {
    writers.emplace_back([&, w] {
      Random rng(seed * 131 + w);
      int i = 0;
      while (!stop.load()) {
        // Disjoint per-writer keyspaces: with a shared key, oracle-update
        // order could invert LSM write order and fake a stale read.
        std::string key = bench::MakeKey(w * 250 + rng.Uniform(250));
        std::string value = std::to_string(w) + ":" + std::to_string(i++);
        // Only acked writes enter the oracle; Put's internal retry loop
        // absorbs injected Unavailable errors.
        if (cluster.Put(key, value).ok()) {
          std::lock_guard<std::mutex> l(oracle_mu);
          oracle[key] = value;
        }
      }
    });
  }

  // StoC churn: kill the (only safe) last StoC, let the death verdict
  // land and repair run, bring it back, repeat.
  for (int round = 0; round < 2; round++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    cluster.KillStoc(3);
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    cluster.RestartStoc(3);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  stop.store(true);
  for (auto& t : writers) {
    t.join();
  }

  // Settle: stop injecting, let compaction/repair drain, then verify
  // every acked write against the oracle (the victim StoC is back up).
  util::FailPoint::DisableAll();
  auto* engine = cluster.ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  std::lock_guard<std::mutex> l(oracle_mu);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster.Get(key, &got);
    ASSERT_TRUE(s.ok()) << "seed " << seed << " lost acked write " << key
                        << ": " << s.ToString() << " "
                        << engine->DebugLookupState(key);
    EXPECT_EQ(got, value) << "seed " << seed << " stale read " << key;
  }
  cluster.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, testing::Range(1, 11));

TEST(ChurnConcurrentTest, MigrationUnderLoad) {
  coord::ClusterOptions opt = ChurnOptions(3);
  opt.num_ltcs = 2;
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  coord::Cluster cluster(opt);
  cluster.Start();
  std::atomic<bool> stop{false};
  std::mutex oracle_mu;
  std::map<std::string, std::string> oracle;
  std::thread writer([&] {
    Random rng(3);
    int i = 0;
    while (!stop.load()) {
      std::string key = bench::MakeKey(rng.Uniform(400));
      std::string value = "v" + std::to_string(i++);
      if (cluster.Put(key, value).ok()) {
        std::lock_guard<std::mutex> l(oracle_mu);
        oracle[key] = value;
      }
    }
  });
  // Bounce range 0 between the two LTCs while the writer runs.
  for (int m = 0; m < 4; m++) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(cluster.MigrateRange(0, (m % 2 == 0) ? 1 : 0, 2).ok());
  }
  stop.store(true);
  writer.join();
  std::lock_guard<std::mutex> l(oracle_mu);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster.Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value) << key;
  }
  cluster.Stop();
}

}  // namespace
}  // namespace nova
