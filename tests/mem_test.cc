#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mem/arena.h"
#include "mem/dbformat.h"
#include "mem/memtable.h"
#include "mem/skiplist.h"
#include "util/random.h"

namespace nova {
namespace {

TEST(ArenaTest, AllocatesAndTracks) {
  Arena arena;
  std::vector<char*> ptrs;
  for (int i = 1; i < 1000; i += 7) {
    char* p = arena.Allocate(i);
    ASSERT_NE(p, nullptr);
    memset(p, 0xab, i);  // must be writable
    ptrs.push_back(p);
  }
  EXPECT_GT(arena.MemoryUsage(), 0u);
  char* aligned = arena.AllocateAligned(100);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(aligned) % sizeof(void*), 0u);
}

struct IntComparator {
  int operator()(const uint64_t& a, const uint64_t& b) const {
    if (a < b) return -1;
    if (a > b) return +1;
    return 0;
  }
};

TEST(SkipListTest, InsertAndLookup) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  Random rng(301);
  std::set<uint64_t> keys;
  for (int i = 0; i < 2000; i++) {
    uint64_t k = rng.Uniform(10000);
    if (keys.insert(k).second) {
      list.Insert(k);
    }
  }
  for (uint64_t k = 0; k < 10000; k++) {
    EXPECT_EQ(list.Contains(k), keys.count(k) > 0) << k;
  }
  // Iteration order matches the sorted set.
  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  for (uint64_t k : keys) {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), k);
    iter.Next();
  }
  EXPECT_FALSE(iter.Valid());
}

TEST(SkipListTest, SeekSemantics) {
  Arena arena;
  SkipList<uint64_t, IntComparator> list(IntComparator(), &arena);
  for (uint64_t k = 0; k < 100; k += 10) {
    list.Insert(k);
  }
  SkipList<uint64_t, IntComparator>::Iterator iter(&list);
  iter.Seek(35);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 40u);
  iter.Prev();
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.key(), 30u);
  iter.SeekToLast();
  EXPECT_EQ(iter.key(), 90u);
  iter.Seek(1000);
  EXPECT_FALSE(iter.Valid());
}

TEST(DbFormatTest, InternalKeyOrdering) {
  InternalKeyComparator cmp;
  auto make = [](const std::string& ukey, SequenceNumber seq, ValueType t) {
    std::string s;
    AppendInternalKey(&s, ParsedInternalKey(ukey, seq, t));
    return s;
  };
  // Same user key: higher sequence sorts first.
  std::string a = make("k", 100, kTypeValue);
  std::string b = make("k", 50, kTypeValue);
  EXPECT_LT(cmp.Compare(a, b), 0);
  // Different user keys order bytewise regardless of sequence.
  std::string c = make("a", 1, kTypeValue);
  std::string d = make("b", 1000, kTypeValue);
  EXPECT_LT(cmp.Compare(c, d), 0);
  // Round trip.
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(a, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "k");
  EXPECT_EQ(parsed.sequence, 100u);
  EXPECT_EQ(parsed.type, kTypeValue);
}

TEST(DbFormatTest, LookupKeyParts) {
  LookupKey lkey("user_key_1", 42);
  EXPECT_EQ(lkey.user_key().ToString(), "user_key_1");
  EXPECT_EQ(ExtractSequence(lkey.internal_key()), 42u);
  EXPECT_EQ(ExtractUserKey(lkey.internal_key()).ToString(), "user_key_1");
}

class MemTableTest : public testing::Test {
 protected:
  MemTableTest() : mem_(std::make_shared<MemTable>(icmp_, 1)) {}

  bool Get(const std::string& key, SequenceNumber snapshot, std::string* value,
           Status* s) {
    LookupKey lkey(key, snapshot);
    return mem_->Get(lkey, value, s);
  }

  InternalKeyComparator icmp_;
  MemTableRef mem_;
};

TEST_F(MemTableTest, AddGetVersions) {
  mem_->Add(10, kTypeValue, "apple", "v1");
  mem_->Add(20, kTypeValue, "apple", "v2");
  mem_->Add(15, kTypeValue, "banana", "b1");

  std::string value;
  Status s;
  // Latest visible at a fresh snapshot.
  ASSERT_TRUE(Get("apple", kMaxSequenceNumber, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v2");
  // Snapshot isolation: at sequence 12 only v1 is visible.
  ASSERT_TRUE(Get("apple", 12, &value, &s));
  EXPECT_EQ(value, "v1");
  // Below the first write: not found in this table.
  EXPECT_FALSE(Get("apple", 5, &value, &s));
  // Unknown key.
  EXPECT_FALSE(Get("cherry", kMaxSequenceNumber, &value, &s));
}

TEST_F(MemTableTest, DeletionTombstone) {
  mem_->Add(10, kTypeValue, "k", "v");
  mem_->Add(20, kTypeDeletion, "k", "");
  std::string value;
  Status s;
  ASSERT_TRUE(Get("k", kMaxSequenceNumber, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
  ASSERT_TRUE(Get("k", 15, &value, &s));
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(value, "v");
}

TEST_F(MemTableTest, IteratorSortedAndComplete) {
  const int n = 500;
  Random rng(17);
  for (int i = 0; i < n; i++) {
    char buf[16];
    snprintf(buf, sizeof(buf), "key%06llu",
             static_cast<unsigned long long>(rng.Uniform(100000)));
    mem_->Add(i + 1, kTypeValue, buf, "value");
  }
  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();
  int count = 0;
  std::string prev;
  while (iter->Valid()) {
    std::string cur = iter->key().ToString();
    if (!prev.empty()) {
      EXPECT_LT(icmp_.Compare(prev, cur), 0);
    }
    prev = cur;
    count++;
    iter->Next();
  }
  EXPECT_EQ(count, n);
}

TEST_F(MemTableTest, UniqueKeyCountAndBounds) {
  mem_->Add(1, kTypeValue, "b", "1");
  mem_->Add(2, kTypeValue, "b", "2");
  mem_->Add(3, kTypeValue, "a", "3");
  mem_->Add(4, kTypeValue, "c", "4");
  mem_->Add(5, kTypeValue, "c", "5");
  EXPECT_EQ(mem_->CountUniqueKeys(), 3u);
  EXPECT_EQ(mem_->SmallestUserKey(), "a");
  EXPECT_EQ(mem_->LargestUserKey(), "c");
  EXPECT_EQ(mem_->num_entries(), 5u);
}

TEST_F(MemTableTest, ConcurrentWritersAndReaders) {
  // Multiple writers to the same memtable must be safe (per-table mutex);
  // readers run lock-free concurrently.
  const int kWriters = 4;
  const int kPerWriter = 2000;
  std::atomic<uint64_t> seq{1};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; w++) {
    threads.emplace_back([&, w] {
      for (int i = 0; i < kPerWriter; i++) {
        char buf[32];
        snprintf(buf, sizeof(buf), "w%d-key%05d", w, i);
        mem_->Add(seq.fetch_add(1), kTypeValue, buf, "v");
      }
    });
  }
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      std::string value;
      Status s;
      LookupKey lkey("w0-key00000", kMaxSequenceNumber);
      mem_->Get(lkey, &value, &s);
    }
  });
  for (auto& t : threads) {
    t.join();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(mem_->num_entries(),
            static_cast<uint64_t>(kWriters * kPerWriter));
  EXPECT_EQ(mem_->CountUniqueKeys(),
            static_cast<uint64_t>(kWriters * kPerWriter));
}

TEST_F(MemTableTest, MetadataFields) {
  EXPECT_EQ(mem_->id(), 1u);
  mem_->set_generation(3);
  EXPECT_EQ(mem_->generation(), 3u);
  mem_->set_drange_id(7);
  EXPECT_EQ(mem_->drange_id(), 7);
  mem_->set_log_file_id(99);
  EXPECT_EQ(mem_->log_file_id(), 99u);
  EXPECT_FALSE(mem_->immutable());
  mem_->MarkImmutable();
  EXPECT_TRUE(mem_->immutable());
}

}  // namespace
}  // namespace nova
