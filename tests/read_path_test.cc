// Tests for the StoC read path's load-aware replica selection: power-of-d
// fan-out over the d least-loaded replicas, hedged requests for
// stragglers, cancellation of losing attempts (duplicate-completion
// safety at the RPC layer), and the stat-counter rollup through
// LtcServer::TotalStats.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ltc/ltc_server.h"
#include "rdma/rpc.h"
#include "stoc/stoc_client.h"
#include "stoc/stoc_server.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"

namespace nova {
namespace {

uint64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

class ReadPathTest : public testing::Test {
 protected:
  static constexpr rdma::NodeId kClientNode = 0;
  static constexpr rdma::NodeId kStoc0 = 1000;
  static constexpr int kNumStocs = 3;

  void SetUp() override {
    DeviceConfig dcfg;
    dcfg.time_scale = 0;
    for (int i = 0; i < kNumStocs; i++) {
      devices_.push_back(
          std::make_unique<SimulatedDevice>("d" + std::to_string(i), dcfg));
      stores_.push_back(std::make_unique<BlockStore>());
      stoc::StocServerOptions opt;
      opt.slab_bytes = 16 << 20;
      opt.slab_page_bytes = 256 << 10;
      servers_.push_back(std::make_unique<stoc::StocServer>(
          &fabric_, kStoc0 + i, devices_[i].get(), stores_[i].get(), opt));
      servers_[i]->Start();
    }
    fabric_.AddNode(kClientNode);
    endpoint_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, kClientNode, 2,
                                                    nullptr);
    endpoint_->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
    endpoint_->Start();
    client_ = std::make_unique<stoc::StocClient>(endpoint_.get());
  }

  void TearDown() override {
    endpoint_->Stop();
    for (auto& s : servers_) {
      s->Stop();
    }
  }

  /// Store the same block on every StoC under one file id; returns the
  /// replica target list for reads.
  std::vector<stoc::GatherRead::Target> Replicate(uint64_t file_id,
                                                  const std::string& data) {
    std::vector<stoc::GatherRead::Target> targets;
    for (int i = 0; i < kNumStocs; i++) {
      stoc::StocBlockHandle handle;
      EXPECT_TRUE(
          client_->AppendBlock(kStoc0 + i, file_id, data, &handle).ok());
      targets.push_back({kStoc0 + i, file_id});
    }
    return targets;
  }

  rdma::RdmaFabric fabric_;
  std::vector<std::unique_ptr<SimulatedDevice>> devices_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<stoc::StocServer>> servers_;
  std::unique_ptr<rdma::RpcEndpoint> endpoint_;
  std::unique_ptr<stoc::StocClient> client_;
};

TEST_F(ReadPathTest, PowerOfDPicksLeastLoadedReplica) {
  uint64_t fid = stoc::MakeFileId(1, 1, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "replicated-block");

  stoc::ReadPolicy policy;
  policy.replica_d = 1;
  policy.hedge = false;
  client_->set_read_policy(policy);

  // Load is injected deterministically: replicas 0 and 2 look busy.
  client_->load(kStoc0 + 0)->rank_bias.store(5);
  client_->load(kStoc0 + 2)->rank_bias.store(5);
  for (int i = 0; i < 10; i++) {
    std::string out;
    ASSERT_TRUE(client_->ReadReplicated(targets, 0, 0, &out).ok());
    EXPECT_EQ(out, "replicated-block");
  }
  EXPECT_EQ(client_->load(kStoc0 + 0)->issued.load(), 0u);
  EXPECT_EQ(client_->load(kStoc0 + 1)->issued.load(), 10u);
  EXPECT_EQ(client_->load(kStoc0 + 2)->issued.load(), 0u);

  // Shift the load: now replica 1 is the busy one; ties between 0 and 2
  // break by replica order, so 0 serves.
  client_->load(kStoc0 + 0)->rank_bias.store(0);
  client_->load(kStoc0 + 1)->rank_bias.store(5);
  client_->load(kStoc0 + 2)->rank_bias.store(0);
  std::string out;
  ASSERT_TRUE(client_->ReadReplicated(targets, 0, 0, &out).ok());
  EXPECT_EQ(client_->load(kStoc0 + 0)->issued.load(), 1u);
  EXPECT_EQ(client_->load(kStoc0 + 1)->issued.load(), 10u);
}

TEST_F(ReadPathTest, PowerOfDFansOutToDReplicas) {
  uint64_t fid = stoc::MakeFileId(1, 2, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "fan-out");

  stoc::ReadPolicy policy;
  policy.replica_d = 2;
  policy.hedge = false;
  client_->set_read_policy(policy);

  client_->load(kStoc0 + 1)->rank_bias.store(9);  // ranks last
  uint64_t pod_before = client_->pod_reads();
  std::string out;
  ASSERT_TRUE(client_->ReadReplicated(targets, 0, 0, &out).ok());
  EXPECT_EQ(out, "fan-out");
  // Both least-loaded replicas were tried up front; the busy one not at
  // all (both issued attempts succeed, so failover never reaches it).
  EXPECT_EQ(client_->load(kStoc0 + 0)->issued.load(), 1u);
  EXPECT_EQ(client_->load(kStoc0 + 1)->issued.load(), 0u);
  EXPECT_EQ(client_->load(kStoc0 + 2)->issued.load(), 1u);
  EXPECT_EQ(client_->pod_reads(), pod_before + 1);

  // Outstanding-load units all returned once the gather settled winners
  // and cancelled losers; no waiter slot leaked in the endpoint.
  for (int i = 0; i < kNumStocs; i++) {
    EXPECT_EQ(client_->load(kStoc0 + i)->outstanding.load(), 0);
  }
  EXPECT_EQ(endpoint_->num_pending_waiters(), 0u);
}

TEST_F(ReadPathTest, HedgedRequestWinsOverDelayedStoc) {
  uint64_t fid = stoc::MakeFileId(1, 3, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "hedge-me");

  // Replica 0 becomes a straggler after the data was stored.
  devices_[0]->InjectLatency(300 * 1000);

  stoc::ReadPolicy policy;
  policy.replica_d = 1;
  policy.hedge = true;
  policy.hedge_min_delay_us = 3000;
  client_->set_read_policy(policy);

  // All load equal -> ranking falls back to replica order, so the
  // straggler is picked first and only the hedge can finish quickly.
  std::vector<stoc::GatherRead::Target> two = {targets[0], targets[1]};
  uint64_t start = NowUs();
  std::string out;
  ASSERT_TRUE(client_->ReadReplicated(two, 0, 0, &out).ok());
  uint64_t elapsed = NowUs() - start;
  EXPECT_EQ(out, "hedge-me");
  // The hedge fired and won: way faster than the injected 300 ms.
  EXPECT_LT(elapsed, 150 * 1000u);
  EXPECT_EQ(client_->hedged_issued(), 1u);
  EXPECT_EQ(client_->hedged_won(), 1u);
  EXPECT_EQ(client_->load(kStoc0 + 1)->issued.load(), 1u);
  // The losing attempt was cancelled: its load unit is released now even
  // though its response is still ~300 ms out, and its waiter slot is
  // withdrawn so the late response will be dropped on arrival.
  EXPECT_EQ(client_->load(kStoc0 + 0)->outstanding.load(), 0);
  EXPECT_EQ(endpoint_->num_pending_waiters(), 0u);
}

TEST_F(ReadPathTest, CancelReleasesLoadAndDropsLateResponse) {
  uint64_t fid = stoc::MakeFileId(1, 4, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "cancel-me");

  devices_[0]->InjectLatency(200 * 1000);
  stoc::PendingRead slow =
      client_->AsyncReadBlock(kStoc0, fid, 0, 0);
  ASSERT_TRUE(slow.valid());
  EXPECT_EQ(client_->load(kStoc0)->outstanding.load(), 1);

  slow.Cancel();
  EXPECT_EQ(client_->load(kStoc0)->outstanding.load(), 0);
  EXPECT_EQ(endpoint_->num_pending_waiters(), 0u);
  std::string out;
  EXPECT_FALSE(slow.Wait(&out).ok());

  // The client stays fully usable while the cancelled response is still
  // in flight; when it lands it hits a withdrawn waiter and is dropped.
  ASSERT_TRUE(
      client_->ReadReplicated({targets[1]}, 0, 0, &out).ok());
  EXPECT_EQ(out, "cancel-me");
}

TEST_F(ReadPathTest, CancelAfterCompletionKeepsResult) {
  uint64_t fid = stoc::MakeFileId(1, 5, stoc::FileKind::kData, 0);
  Replicate(fid, "already-done");

  stoc::PendingRead read = client_->AsyncReadBlock(kStoc0 + 1, fid, 0, 0);
  ASSERT_TRUE(read.valid());
  // Let the completion land before cancelling (duplicate-completion
  // ordering: cancel loses the race, the result must survive).
  for (int i = 0; i < 10000 && !read.ready(); i++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(read.ready());
  read.Cancel();
  std::string out;
  ASSERT_TRUE(read.Wait(&out).ok());
  EXPECT_EQ(out, "already-done");
  EXPECT_EQ(endpoint_->num_pending_waiters(), 0u);
}

TEST_F(ReadPathTest, HedgeDelayUsesFloorUntilEnoughSamples) {
  stoc::ReadPolicy policy;
  policy.hedge_min_delay_us = 7000;
  policy.hedge_min_samples = 64;
  client_->set_read_policy(policy);
  // No samples yet: the p99 is meaningless, so the floor rules.
  EXPECT_EQ(client_->HedgeDelayUs(), 7000u);
}

TEST_F(ReadPathTest, FailoverExhaustsReplicasBeforeFailing) {
  uint64_t fid = stoc::MakeFileId(1, 6, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "failover");

  stoc::ReadPolicy policy;
  policy.replica_d = 2;
  policy.hedge = false;
  client_->set_read_policy(policy);

  // The two preferred replicas serve failures (failed devices complete
  // requests immediately with an error); the read must still succeed off
  // the third.
  devices_[0]->Fail();
  devices_[1]->Fail();
  std::string out;
  ASSERT_TRUE(client_->ReadReplicated(targets, 0, 0, &out).ok());
  EXPECT_EQ(out, "failover");
  EXPECT_EQ(client_->load(kStoc0 + 2)->issued.load(), 1u);

  // With every replica failing, the gather reports the failure.
  devices_[2]->Fail();
  EXPECT_FALSE(client_->ReadReplicated(targets, 0, 0, &out).ok());
  EXPECT_EQ(endpoint_->num_pending_waiters(), 0u);
}

TEST_F(ReadPathTest, StatCountersRollUpThroughLtcServer) {
  uint64_t fid = stoc::MakeFileId(1, 7, stoc::FileKind::kData, 0);
  auto targets = Replicate(fid, "rollup");

  ltc::LtcServerOptions opt;
  opt.node = 1;
  opt.read_replica_d = 2;
  opt.read_hedging = true;
  ltc::LtcServer server(&fabric_, opt);
  server.Start();

  // A replicated read through the LTC's shared client counts as one
  // power-of-d read node-wide.
  std::string out;
  ASSERT_TRUE(
      server.stoc_client()->ReadReplicated(targets, 0, 0, &out).ok());
  EXPECT_EQ(out, "rollup");
  ltc::RangeStats stats = server.TotalStats();
  EXPECT_EQ(stats.pod_reads, 1u);

  // Force a hedge through the server's client: straggle the first-ranked
  // replica and shrink the hedge delay.
  stoc::ReadPolicy policy = server.stoc_client()->read_policy();
  policy.replica_d = 1;
  policy.hedge_min_delay_us = 3000;
  server.stoc_client()->set_read_policy(policy);
  devices_[0]->InjectLatency(300 * 1000);
  // The first read left an EWMA on its winning replica, which would rank
  // the fast replica first; pin the straggler to the front instead.
  server.stoc_client()->load(kStoc0 + 1)->rank_bias.store(1);
  ASSERT_TRUE(server.stoc_client()
                  ->ReadReplicated({targets[0], targets[1]}, 0, 0, &out)
                  .ok());
  stats = server.TotalStats();
  // GE, not EQ: the first read ran under the server's default policy,
  // where a CI-load hiccup past the hedge floor legitimately hedges too.
  EXPECT_GE(stats.hedged_issued, 1u);
  EXPECT_GE(stats.hedged_won, 1u);
  server.Stop();
}

}  // namespace
}  // namespace nova
