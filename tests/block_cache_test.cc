// The LTC-side block cache: ShardedLRUCache unit tests (charge-based
// eviction, pinning, prefix invalidation, concurrency) and end-to-end
// tests through the cluster — warm gets avoid StoC reads, a capacity-
// thrashed cache stays correct under concurrent gets/scans, and
// compacted-away files' cached blocks are invalidated (no stale reads).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "sstable/sstable_reader.h"
#include "util/cache.h"
#include "util/random.h"

namespace nova {
namespace {

using coord::Cluster;
using coord::ClusterOptions;

// ---------------------------------------------------------------------------
// ShardedLRUCache unit tests.
// ---------------------------------------------------------------------------

/// Tracks deletions so tests can observe evictions.
struct Tracker {
  std::atomic<int> deletions{0};
};

struct TrackedValue {
  Tracker* tracker;
  int id;
};

void DeleteTracked(const Slice&, void* value) {
  auto* v = static_cast<TrackedValue*>(value);
  v->tracker->deletions.fetch_add(1);
  delete v;
}

Cache::Handle* InsertTracked(Cache* cache, Tracker* tracker,
                             const std::string& key, int id, size_t charge,
                             Cache::Priority pri = Cache::Priority::kHot) {
  return cache->Insert(key, new TrackedValue{tracker, id}, charge,
                       &DeleteTracked, pri);
}

int ValueId(Cache* cache, Cache::Handle* h) {
  return static_cast<TrackedValue*>(cache->Value(h))->id;
}

TEST(ShardedLRUCacheTest, InsertLookupErase) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 10));
  cache->Release(InsertTracked(cache.get(), &tracker, "b", 2, 10));

  Cache::Handle* h = cache->Lookup("a");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 1);
  cache->Release(h);

  cache->Erase("a");
  EXPECT_EQ(cache->Lookup("a"), nullptr);
  EXPECT_EQ(tracker.deletions.load(), 1);
  EXPECT_EQ(cache->TotalCharge(), 10u);

  h = cache->Lookup("b");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 2);
  cache->Release(h);
}

TEST(ShardedLRUCacheTest, InsertDisplacesSameKey) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "k", 1, 10));
  cache->Release(InsertTracked(cache.get(), &tracker, "k", 2, 10));
  EXPECT_EQ(tracker.deletions.load(), 1);  // first value reclaimed
  Cache::Handle* h = cache->Lookup("k");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 2);
  cache->Release(h);
  EXPECT_EQ(cache->TotalCharge(), 10u);
}

TEST(ShardedLRUCacheTest, ChargeBasedLRUEviction) {
  // One shard so recency order is global and deterministic.
  std::unique_ptr<Cache> cache(NewShardedLRUCache(100, /*shard_bits=*/0));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 40));
  cache->Release(InsertTracked(cache.get(), &tracker, "b", 2, 40));
  // Touch "a" so "b" is the LRU victim.
  Cache::Handle* h = cache->Lookup("a");
  cache->Release(h);
  cache->Release(InsertTracked(cache.get(), &tracker, "c", 3, 40));

  EXPECT_EQ(cache->Lookup("b"), nullptr);  // evicted
  h = cache->Lookup("a");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  h = cache->Lookup("c");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  EXPECT_EQ(tracker.deletions.load(), 1);
  EXPECT_LE(cache->TotalCharge(), 100u);
}

TEST(ShardedLRUCacheTest, PinnedEntriesSurviveEviction) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(50, /*shard_bits=*/0));
  Tracker tracker;
  Cache::Handle* pinned = InsertTracked(cache.get(), &tracker, "pin", 1, 40);

  // Thrash far past capacity: the pinned entry may be detached from the
  // cache but its value must stay alive while the handle is held.
  for (int i = 0; i < 20; i++) {
    cache->Release(
        InsertTracked(cache.get(), &tracker, "k" + std::to_string(i), i, 40));
  }
  EXPECT_EQ(ValueId(cache.get(), pinned), 1);
  int deletions_while_pinned = tracker.deletions.load();
  cache->Release(pinned);
  // Once released, the (evicted or resident) entry is reclaimable; erase
  // in case it is still resident.
  cache->Erase("pin");
  EXPECT_GE(tracker.deletions.load(), deletions_while_pinned);
  EXPECT_LE(cache->TotalCharge(), 50u);
}

TEST(ShardedLRUCacheTest, EraseWithPrefix) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  std::string file_a = BlockCachePrefix(7, 42);
  std::string file_b = BlockCachePrefix(7, 43);
  for (uint64_t off = 0; off < 5; off++) {
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 BlockCacheKey(7, 42, off * 4096), 1, 10));
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 BlockCacheKey(7, 43, off * 4096), 2, 10));
  }
  cache->EraseWithPrefix(file_a);
  EXPECT_EQ(tracker.deletions.load(), 5);
  for (uint64_t off = 0; off < 5; off++) {
    EXPECT_EQ(cache->Lookup(BlockCacheKey(7, 42, off * 4096)), nullptr);
    Cache::Handle* h = cache->Lookup(BlockCacheKey(7, 43, off * 4096));
    ASSERT_NE(h, nullptr);
    cache->Release(h);
  }
  EXPECT_EQ(cache->TotalCharge(), 50u);
}

TEST(ShardedLRUCacheTest, HitMissCounters) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 10));
  Cache::Handle* h = cache->Lookup("a");
  cache->Release(h);
  EXPECT_EQ(cache->Lookup("nope"), nullptr);
  h = cache->Lookup("a", /*count=*/false);
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
}

TEST(ShardedLRUCacheTest, ConcurrentThrash) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(2 << 10));
  Tracker tracker;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < 5000; i++) {
        std::string key = "k" + std::to_string(rng.Uniform(200));
        int expect = static_cast<int>(key.size()) * 1000;
        switch (rng.Uniform(3)) {
          case 0:
            cache->Release(
                InsertTracked(cache.get(), &tracker, key, expect, 64));
            break;
          case 1: {
            Cache::Handle* h = cache->Lookup(key);
            if (h != nullptr) {
              if (ValueId(cache.get(), h) != expect) {
                failed.store(true);
              }
              cache->Release(h);
            }
            break;
          }
          default:
            cache->Erase(key);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache->TotalCharge(), 2u << 10);
}

// ---------------------------------------------------------------------------
// Two-queue (scan-resistant) admission. All single-shard so queue order
// is global and deterministic.
// ---------------------------------------------------------------------------

TEST(TwoQueueLRUCacheTest, ColdInsertsCannotEvictHotWorkingSet) {
  // Hot budget 50 of 100: the two point-get blocks fit entirely in the
  // hot queue; a scan flood many times the cache size may only evict
  // other scan blocks.
  std::unique_ptr<Cache> cache(
      NewShardedLRUCache(100, /*shard_bits=*/0, /*hot_fraction=*/0.5));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "h0", 0, 20));
  cache->Release(InsertTracked(cache.get(), &tracker, "h1", 1, 20));
  for (int i = 0; i < 20; i++) {
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 "scan" + std::to_string(i), 100 + i, 20,
                                 Cache::Priority::kCold));
  }
  for (const char* key : {"h0", "h1"}) {
    Cache::Handle* h = cache->Lookup(key, /*count=*/false);
    ASSERT_NE(h, nullptr) << key << " evicted by a scan flood";
    cache->Release(h);
  }
  EXPECT_LE(cache->TotalCharge(), 100u);
}

TEST(TwoQueueLRUCacheTest, HotLookupPromotesColdEntryColdLookupDoesNot) {
  std::unique_ptr<Cache> cache(
      NewShardedLRUCache(100, /*shard_bits=*/0, /*hot_fraction=*/0.5));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "promoted", 1, 20,
                               Cache::Priority::kCold));
  cache->Release(InsertTracked(cache.get(), &tracker, "left_cold", 2, 20,
                               Cache::Priority::kCold));
  // A point-get touch (kHot lookup) moves the entry to the hot queue...
  Cache::Handle* h = cache->Lookup("promoted");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  // ...while an iterator touch (kCold lookup) leaves it in the cold
  // queue, where the subsequent flood ages it out.
  h = cache->Lookup("left_cold", /*count=*/true, Cache::Priority::kCold);
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  for (int i = 0; i < 20; i++) {
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 "scan" + std::to_string(i), 100 + i, 20,
                                 Cache::Priority::kCold));
  }
  h = cache->Lookup("promoted", /*count=*/false);
  ASSERT_NE(h, nullptr) << "promoted entry fell to the scan flood";
  cache->Release(h);
  EXPECT_EQ(cache->Lookup("left_cold", /*count=*/false), nullptr);
}

TEST(TwoQueueLRUCacheTest, HotOverflowDemotesOldestToColdMidpoint) {
  // Hot budget 40: three 20-charge hot inserts overflow it, demoting the
  // oldest (h0) onto the cold queue — still resident (usage 60 < 100),
  // but now first in line for eviction.
  std::unique_ptr<Cache> cache(
      NewShardedLRUCache(100, /*shard_bits=*/0, /*hot_fraction=*/0.4));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "h0", 0, 20));
  cache->Release(InsertTracked(cache.get(), &tracker, "h1", 1, 20));
  cache->Release(InsertTracked(cache.get(), &tracker, "h2", 2, 20));
  EXPECT_EQ(tracker.deletions.load(), 0);  // demoted, never evicted
  for (const char* key : {"h0", "h1", "h2"}) {
    // kCold lookups: residency probes that do not reshuffle the queues.
    Cache::Handle* h =
        cache->Lookup(key, /*count=*/false, Cache::Priority::kCold);
    ASSERT_NE(h, nullptr) << key;
    cache->Release(h);
  }
  // Push usage past capacity: the demoted h0 is the cold LRU victim;
  // the still-hot h1/h2 survive.
  for (int i = 0; i < 3; i++) {
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 "c" + std::to_string(i), 100 + i, 20,
                                 Cache::Priority::kCold));
  }
  EXPECT_EQ(cache->Lookup("h0", /*count=*/false, Cache::Priority::kCold),
            nullptr);
  for (const char* key : {"h1", "h2"}) {
    Cache::Handle* h =
        cache->Lookup(key, /*count=*/false, Cache::Priority::kCold);
    ASSERT_NE(h, nullptr) << key;
    cache->Release(h);
  }
  EXPECT_LE(cache->TotalCharge(), 100u);
}

TEST(TwoQueueLRUCacheTest, HotFractionOneIsClassicLRU) {
  // hot_fraction >= 1 disables the split: priorities are coerced to hot
  // and eviction is pure recency order.
  std::unique_ptr<Cache> cache(
      NewShardedLRUCache(100, /*shard_bits=*/0, /*hot_fraction=*/1.0));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 40));
  cache->Release(InsertTracked(cache.get(), &tracker, "b", 2, 40,
                               Cache::Priority::kCold));
  Cache::Handle* h = cache->Lookup("a");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  // Overflow evicts the LRU entry ("b") even though "a" was the kCold-
  // insert peer's elder: no cold queue exists to evict first.
  cache->Release(InsertTracked(cache.get(), &tracker, "c", 3, 40,
                               Cache::Priority::kCold));
  EXPECT_EQ(cache->Lookup("b", /*count=*/false), nullptr);
  for (const char* key : {"a", "c"}) {
    h = cache->Lookup(key, /*count=*/false);
    ASSERT_NE(h, nullptr) << key;
    cache->Release(h);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: block cache through the cluster read path.
// ---------------------------------------------------------------------------

std::string Key(uint64_t i) { return bench::MakeKey(i); }

ClusterOptions FastOptions(size_t block_cache_bytes) {
  ClusterOptions opt;
  opt.num_ltcs = 1;
  opt.num_stocs = 2;
  opt.device.time_scale = 0;
  opt.ltc.block_cache_bytes = block_cache_bytes;
  opt.range.memtable_size = 8 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 16 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.drange.sample_rate = 1;
  opt.range.unique_key_threshold = 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 32 << 10;
  opt.range.lsm.l0_stop_bytes = 256 << 10;
  opt.range.lsm.base_level_bytes = 128 << 10;
  opt.range.log.num_replicas = 2;
  opt.range.log.region_size = 64 << 10;
  opt.range.manifest_replicas = 2;
  opt.placement.rho = 1;
  opt.stoc.slab_bytes = 64 << 20;
  opt.stoc.slab_page_bytes = 256 << 10;
  return opt;
}

class BlockCacheClusterTest : public testing::Test {
 protected:
  void StartCluster(const ClusterOptions& opt) {
    if (cluster_) {
      cluster_->Stop();  // A/B tests restart with different options
    }
    cluster_ = std::make_unique<Cluster>(opt);
    cluster_->Start();
  }

  void TearDown() override {
    if (cluster_) {
      cluster_->Stop();
    }
  }

  /// Everything into SSTables so gets exercise the StoC read path.
  void FlushAll() {
    for (auto* engine : cluster_->ltc(0)->ranges()) {
      engine->FlushAllMemtables();
      engine->WaitForQuiescence(/*flush_all=*/true);
    }
  }

  uint64_t StocReads() {
    return cluster_->ltc(0)->stoc_client()->read_block_calls();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(BlockCacheClusterTest, WarmGetsAvoidStocReads) {
  StartCluster(FastOptions(/*block_cache_bytes=*/8 << 20));
  const int kKeys = 400;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "value" + std::to_string(i)).ok());
  }
  FlushAll();

  auto read_all = [&] {
    for (int i = 0; i < kKeys; i++) {
      std::string value;
      Status s = cluster_->Get(Key(i), &value);
      ASSERT_TRUE(s.ok()) << Key(i) << " " << s.ToString();
      ASSERT_EQ(value, "value" + std::to_string(i));
    }
  };
  read_all();  // cold pass: populates the cache
  uint64_t after_cold = StocReads();
  read_all();  // warm pass: everything from LTC memory
  uint64_t warm_reads = StocReads() - after_cold;
  EXPECT_EQ(warm_reads, 0u) << "warm gets should not touch the StoC";

  ltc::RangeStats stats = cluster_->TotalStats();
  EXPECT_GT(stats.block_cache_hits, 0u);
  EXPECT_GT(stats.block_cache_bytes, 0u);
}

TEST_F(BlockCacheClusterTest, ZeroBytesDisablesCaching) {
  StartCluster(FastOptions(/*block_cache_bytes=*/0));
  EXPECT_EQ(cluster_->ltc(0)->block_cache(), nullptr);
  const int kKeys = 100;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  FlushAll();
  std::string value;
  ASSERT_TRUE(cluster_->Get(Key(0), &value).ok());
  uint64_t before = StocReads();
  ASSERT_TRUE(cluster_->Get(Key(0), &value).ok());
  EXPECT_GT(StocReads(), before);  // every get re-fetches from the StoC
  EXPECT_EQ(cluster_->TotalStats().block_cache_hits, 0u);
}

TEST_F(BlockCacheClusterTest, TinyCacheThrashStaysCorrect) {
  // Cache far smaller than the working set: constant eviction, including
  // of entries other threads hold pinned.
  StartCluster(FastOptions(/*block_cache_bytes=*/8 << 10));
  const int kKeys = 600;
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < kKeys; i++) {
    std::string v = "val" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(Key(i), v).ok());
    oracle[Key(i)] = v;
  }
  FlushAll();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Random rng(77 + t);
      for (int i = 0; i < 400 && !failed.load(); i++) {
        uint64_t k = rng.Uniform(kKeys);
        if (t % 2 == 0) {
          std::string value;
          Status s = cluster_->Get(Key(k), &value);
          if (!s.ok() || value != oracle[Key(k)]) {
            failed.store(true);
          }
        } else {
          std::vector<std::pair<std::string, std::string>> out;
          Status s = cluster_->Scan(Key(k), 10, &out);
          if (!s.ok()) {
            failed.store(true);
            continue;
          }
          auto it = oracle.lower_bound(Key(k));
          for (const auto& [key, value] : out) {
            if (it == oracle.end() || it->first != key ||
                it->second != value) {
              failed.store(true);
              break;
            }
            ++it;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  // The cache respected its budget throughout (usage counts resident
  // entries only; pinned-but-evicted blocks are off the books).
  EXPECT_LE(cluster_->TotalStats().block_cache_bytes, (8u << 10) + 4096u);
}

TEST_F(BlockCacheClusterTest, CompactedFilesAreInvalidated) {
  ClusterOptions opt = FastOptions(/*block_cache_bytes=*/8 << 20);
  // Raw blocks: the L0 compaction trigger is byte-based and this test's
  // few fixed rounds must exceed it regardless of how well the payload
  // compresses.
  opt.range.compression_codec = -1;
  StartCluster(opt);
  auto* engine = cluster_->ltc(0)->ranges()[0];
  const int kKeys = 300;
  std::map<std::string, std::string> oracle;

  // Several overwrite+flush rounds so L0 accumulates and compacts.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < kKeys; i++) {
      std::string v = "r" + std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(cluster_->Put(Key(i), v).ok());
      oracle[Key(i)] = v;
    }
    FlushAll();
    // Read everything: caches blocks of the current file set.
    for (const auto& [key, value] : oracle) {
      std::string got;
      ASSERT_TRUE(cluster_->Get(key, &got).ok());
      ASSERT_EQ(got, value) << key << " round " << round;
    }
  }
  ASSERT_GT(engine->stats().compactions, 0u);

  // Every file compacted away must have no cached reader or blocks left
  // (the reader's cache key is exactly the file's key prefix).
  Cache* cache = cluster_->ltc(0)->block_cache();
  ASSERT_NE(cache, nullptr);
  lsm::VersionRef v = engine->versions()->current();
  std::set<uint64_t> live;
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      live.insert(f->number);
    }
  }
  ASSERT_FALSE(live.empty());
  uint64_t max_number = *live.rbegin();
  int dead_cached = 0;
  for (uint64_t number = 1; number <= max_number; number++) {
    if (live.count(number)) {
      continue;
    }
    uint32_t range_id = engine->options().range_id;
    Cache::Handle* h =
        cache->Lookup(BlockCachePrefix(range_id, number), /*count=*/false);
    if (h != nullptr) {
      dead_cached++;
      cache->Release(h);
    }
  }
  EXPECT_EQ(dead_cached, 0) << "compacted-away files still cached";
}

/// Options for the two-tier / admission tests: a dataset several times
/// the hot tier, big memtables (few files, so reader metadata stays
/// small), and compaction pushed out of the way so the file set is
/// stable between the measured passes.
ClusterOptions TierOptions(size_t hot_bytes) {
  ClusterOptions opt = FastOptions(hot_bytes);
  opt.range.memtable_size = 64 << 10;
  opt.range.max_sstable_size = 256 << 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 4 << 20;
  opt.range.lsm.l0_stop_bytes = 16 << 20;
  return opt;
}

std::string BulkyValue(int i) {
  return std::string(1000, 'v') + std::to_string(i);
}

TEST_F(BlockCacheClusterTest, CompressedTierServesEvictionsWithoutStoc) {
  // Hot tier (128 KB) far smaller than the ~1.1 MB uncompressed dataset;
  // compressed tier big enough for everything. The warm pass misses the
  // hot tier constantly, but every miss lands in the compressed tier and
  // decompresses in place — zero StoC round trips.
  ClusterOptions opt = TierOptions(/*hot_bytes=*/128 << 10);
  opt.ltc.compressed_cache_bytes = 8 << 20;
  StartCluster(opt);
  const int kKeys = 1000;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), BulkyValue(i)).ok());
  }
  FlushAll();

  auto read_all = [&] {
    for (int i = 0; i < kKeys; i++) {
      std::string value;
      Status s = cluster_->Get(Key(i), &value);
      ASSERT_TRUE(s.ok()) << Key(i) << " " << s.ToString();
      ASSERT_EQ(value, BulkyValue(i));
    }
  };
  read_all();  // cold: fills both tiers from the StoCs
  uint64_t after_cold = StocReads();
  ASSERT_GT(after_cold, 0u);
  read_all();  // warm: hot misses are absorbed by the compressed tier
  EXPECT_EQ(StocReads() - after_cold, 0u)
      << "hot-tier misses went to the StoC instead of the compressed tier";

  ltc::RangeStats stats = cluster_->TotalStats();
  EXPECT_GT(stats.block_cache_compressed_hits, 0u);
  EXPECT_GT(stats.block_cache_compressed_bytes, 0u);
  // The compressed tier holds the dataset in far less than its raw size.
  EXPECT_GT(stats.sstable_raw_bytes, stats.sstable_stored_bytes);
  EXPECT_GT(stats.bytes_over_wire, 0u);
}

TEST_F(BlockCacheClusterTest, ScanFloodKeepsPointGetWorkingSetWithTwoQueue) {
  // A/B over the admission policy with an identical workload: warm a
  // point-get working set, sweep the whole keyspace with a scan, then
  // measure how many StoC reads it takes to serve the working set again.
  // Two-queue admission (scan blocks enter cold) must preserve the
  // working set; classic LRU (hot_fraction 1.0) flushes it.
  const int kKeys = 1000;
  const int kWorkingSet = 40;
  auto rewarm_reads = [&](double hot_fraction) {
    ClusterOptions opt = TierOptions(/*hot_bytes=*/384 << 10);
    opt.ltc.cache_hot_fraction = hot_fraction;
    StartCluster(opt);
    for (int i = 0; i < kKeys; i++) {
      EXPECT_TRUE(cluster_->Put(Key(i), BulkyValue(i)).ok());
    }
    FlushAll();
    auto get_working_set = [&] {
      for (int i = 0; i < kWorkingSet; i++) {
        std::string value;
        Status s = cluster_->Get(Key(i), &value);
        EXPECT_TRUE(s.ok()) << Key(i) << " " << s.ToString();
        EXPECT_EQ(value, BulkyValue(i));
      }
    };
    get_working_set();  // warm the hot queue
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE(cluster_->Scan(Key(0), kKeys, &out).ok());
    EXPECT_EQ(out.size(), static_cast<size_t>(kKeys));
    uint64_t after_scan = StocReads();
    get_working_set();
    return StocReads() - after_scan;
  };

  uint64_t two_queue = rewarm_reads(/*hot_fraction=*/0.75);
  uint64_t classic = rewarm_reads(/*hot_fraction=*/1.0);
  EXPECT_EQ(two_queue, 0u)
      << "scan flood evicted the point-get working set despite cold admission";
  EXPECT_GT(classic, two_queue)
      << "control: classic LRU should have had to re-fetch the working set";
}

}  // namespace
}  // namespace nova
