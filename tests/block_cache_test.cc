// The LTC-side block cache: ShardedLRUCache unit tests (charge-based
// eviction, pinning, prefix invalidation, concurrency) and end-to-end
// tests through the cluster — warm gets avoid StoC reads, a capacity-
// thrashed cache stays correct under concurrent gets/scans, and
// compacted-away files' cached blocks are invalidated (no stale reads).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "sstable/sstable_reader.h"
#include "util/cache.h"
#include "util/random.h"

namespace nova {
namespace {

using coord::Cluster;
using coord::ClusterOptions;

// ---------------------------------------------------------------------------
// ShardedLRUCache unit tests.
// ---------------------------------------------------------------------------

/// Tracks deletions so tests can observe evictions.
struct Tracker {
  std::atomic<int> deletions{0};
};

struct TrackedValue {
  Tracker* tracker;
  int id;
};

void DeleteTracked(const Slice&, void* value) {
  auto* v = static_cast<TrackedValue*>(value);
  v->tracker->deletions.fetch_add(1);
  delete v;
}

Cache::Handle* InsertTracked(Cache* cache, Tracker* tracker,
                             const std::string& key, int id, size_t charge) {
  return cache->Insert(key, new TrackedValue{tracker, id}, charge,
                       &DeleteTracked);
}

int ValueId(Cache* cache, Cache::Handle* h) {
  return static_cast<TrackedValue*>(cache->Value(h))->id;
}

TEST(ShardedLRUCacheTest, InsertLookupErase) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 10));
  cache->Release(InsertTracked(cache.get(), &tracker, "b", 2, 10));

  Cache::Handle* h = cache->Lookup("a");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 1);
  cache->Release(h);

  cache->Erase("a");
  EXPECT_EQ(cache->Lookup("a"), nullptr);
  EXPECT_EQ(tracker.deletions.load(), 1);
  EXPECT_EQ(cache->TotalCharge(), 10u);

  h = cache->Lookup("b");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 2);
  cache->Release(h);
}

TEST(ShardedLRUCacheTest, InsertDisplacesSameKey) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "k", 1, 10));
  cache->Release(InsertTracked(cache.get(), &tracker, "k", 2, 10));
  EXPECT_EQ(tracker.deletions.load(), 1);  // first value reclaimed
  Cache::Handle* h = cache->Lookup("k");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ValueId(cache.get(), h), 2);
  cache->Release(h);
  EXPECT_EQ(cache->TotalCharge(), 10u);
}

TEST(ShardedLRUCacheTest, ChargeBasedLRUEviction) {
  // One shard so recency order is global and deterministic.
  std::unique_ptr<Cache> cache(NewShardedLRUCache(100, /*shard_bits=*/0));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 40));
  cache->Release(InsertTracked(cache.get(), &tracker, "b", 2, 40));
  // Touch "a" so "b" is the LRU victim.
  Cache::Handle* h = cache->Lookup("a");
  cache->Release(h);
  cache->Release(InsertTracked(cache.get(), &tracker, "c", 3, 40));

  EXPECT_EQ(cache->Lookup("b"), nullptr);  // evicted
  h = cache->Lookup("a");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  h = cache->Lookup("c");
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  EXPECT_EQ(tracker.deletions.load(), 1);
  EXPECT_LE(cache->TotalCharge(), 100u);
}

TEST(ShardedLRUCacheTest, PinnedEntriesSurviveEviction) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(50, /*shard_bits=*/0));
  Tracker tracker;
  Cache::Handle* pinned = InsertTracked(cache.get(), &tracker, "pin", 1, 40);

  // Thrash far past capacity: the pinned entry may be detached from the
  // cache but its value must stay alive while the handle is held.
  for (int i = 0; i < 20; i++) {
    cache->Release(
        InsertTracked(cache.get(), &tracker, "k" + std::to_string(i), i, 40));
  }
  EXPECT_EQ(ValueId(cache.get(), pinned), 1);
  int deletions_while_pinned = tracker.deletions.load();
  cache->Release(pinned);
  // Once released, the (evicted or resident) entry is reclaimable; erase
  // in case it is still resident.
  cache->Erase("pin");
  EXPECT_GE(tracker.deletions.load(), deletions_while_pinned);
  EXPECT_LE(cache->TotalCharge(), 50u);
}

TEST(ShardedLRUCacheTest, EraseWithPrefix) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  std::string file_a = BlockCachePrefix(7, 42);
  std::string file_b = BlockCachePrefix(7, 43);
  for (uint64_t off = 0; off < 5; off++) {
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 BlockCacheKey(7, 42, off * 4096), 1, 10));
    cache->Release(InsertTracked(cache.get(), &tracker,
                                 BlockCacheKey(7, 43, off * 4096), 2, 10));
  }
  cache->EraseWithPrefix(file_a);
  EXPECT_EQ(tracker.deletions.load(), 5);
  for (uint64_t off = 0; off < 5; off++) {
    EXPECT_EQ(cache->Lookup(BlockCacheKey(7, 42, off * 4096)), nullptr);
    Cache::Handle* h = cache->Lookup(BlockCacheKey(7, 43, off * 4096));
    ASSERT_NE(h, nullptr);
    cache->Release(h);
  }
  EXPECT_EQ(cache->TotalCharge(), 50u);
}

TEST(ShardedLRUCacheTest, HitMissCounters) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(1 << 20));
  Tracker tracker;
  cache->Release(InsertTracked(cache.get(), &tracker, "a", 1, 10));
  Cache::Handle* h = cache->Lookup("a");
  cache->Release(h);
  EXPECT_EQ(cache->Lookup("nope"), nullptr);
  h = cache->Lookup("a", /*count=*/false);
  ASSERT_NE(h, nullptr);
  cache->Release(h);
  EXPECT_EQ(cache->hits(), 1u);
  EXPECT_EQ(cache->misses(), 1u);
}

TEST(ShardedLRUCacheTest, ConcurrentThrash) {
  std::unique_ptr<Cache> cache(NewShardedLRUCache(2 << 10));
  Tracker tracker;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < 5000; i++) {
        std::string key = "k" + std::to_string(rng.Uniform(200));
        int expect = static_cast<int>(key.size()) * 1000;
        switch (rng.Uniform(3)) {
          case 0:
            cache->Release(
                InsertTracked(cache.get(), &tracker, key, expect, 64));
            break;
          case 1: {
            Cache::Handle* h = cache->Lookup(key);
            if (h != nullptr) {
              if (ValueId(cache.get(), h) != expect) {
                failed.store(true);
              }
              cache->Release(h);
            }
            break;
          }
          default:
            cache->Erase(key);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_FALSE(failed.load());
  EXPECT_LE(cache->TotalCharge(), 2u << 10);
}

// ---------------------------------------------------------------------------
// End-to-end: block cache through the cluster read path.
// ---------------------------------------------------------------------------

std::string Key(uint64_t i) { return bench::MakeKey(i); }

ClusterOptions FastOptions(size_t block_cache_bytes) {
  ClusterOptions opt;
  opt.num_ltcs = 1;
  opt.num_stocs = 2;
  opt.device.time_scale = 0;
  opt.ltc.block_cache_bytes = block_cache_bytes;
  opt.range.memtable_size = 8 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 16 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.drange.sample_rate = 1;
  opt.range.unique_key_threshold = 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 32 << 10;
  opt.range.lsm.l0_stop_bytes = 256 << 10;
  opt.range.lsm.base_level_bytes = 128 << 10;
  opt.range.log.num_replicas = 2;
  opt.range.log.region_size = 64 << 10;
  opt.range.manifest_replicas = 2;
  opt.placement.rho = 1;
  opt.stoc.slab_bytes = 64 << 20;
  opt.stoc.slab_page_bytes = 256 << 10;
  return opt;
}

class BlockCacheClusterTest : public testing::Test {
 protected:
  void StartCluster(const ClusterOptions& opt) {
    cluster_ = std::make_unique<Cluster>(opt);
    cluster_->Start();
  }

  void TearDown() override {
    if (cluster_) {
      cluster_->Stop();
    }
  }

  /// Everything into SSTables so gets exercise the StoC read path.
  void FlushAll() {
    for (auto* engine : cluster_->ltc(0)->ranges()) {
      engine->FlushAllMemtables();
      engine->WaitForQuiescence(/*flush_all=*/true);
    }
  }

  uint64_t StocReads() {
    return cluster_->ltc(0)->stoc_client()->read_block_calls();
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(BlockCacheClusterTest, WarmGetsAvoidStocReads) {
  StartCluster(FastOptions(/*block_cache_bytes=*/8 << 20));
  const int kKeys = 400;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "value" + std::to_string(i)).ok());
  }
  FlushAll();

  auto read_all = [&] {
    for (int i = 0; i < kKeys; i++) {
      std::string value;
      Status s = cluster_->Get(Key(i), &value);
      ASSERT_TRUE(s.ok()) << Key(i) << " " << s.ToString();
      ASSERT_EQ(value, "value" + std::to_string(i));
    }
  };
  read_all();  // cold pass: populates the cache
  uint64_t after_cold = StocReads();
  read_all();  // warm pass: everything from LTC memory
  uint64_t warm_reads = StocReads() - after_cold;
  EXPECT_EQ(warm_reads, 0u) << "warm gets should not touch the StoC";

  ltc::RangeStats stats = cluster_->TotalStats();
  EXPECT_GT(stats.block_cache_hits, 0u);
  EXPECT_GT(stats.block_cache_bytes, 0u);
}

TEST_F(BlockCacheClusterTest, ZeroBytesDisablesCaching) {
  StartCluster(FastOptions(/*block_cache_bytes=*/0));
  EXPECT_EQ(cluster_->ltc(0)->block_cache(), nullptr);
  const int kKeys = 100;
  for (int i = 0; i < kKeys; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  FlushAll();
  std::string value;
  ASSERT_TRUE(cluster_->Get(Key(0), &value).ok());
  uint64_t before = StocReads();
  ASSERT_TRUE(cluster_->Get(Key(0), &value).ok());
  EXPECT_GT(StocReads(), before);  // every get re-fetches from the StoC
  EXPECT_EQ(cluster_->TotalStats().block_cache_hits, 0u);
}

TEST_F(BlockCacheClusterTest, TinyCacheThrashStaysCorrect) {
  // Cache far smaller than the working set: constant eviction, including
  // of entries other threads hold pinned.
  StartCluster(FastOptions(/*block_cache_bytes=*/8 << 10));
  const int kKeys = 600;
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < kKeys; i++) {
    std::string v = "val" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(Key(i), v).ok());
    oracle[Key(i)] = v;
  }
  FlushAll();

  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; t++) {
    threads.emplace_back([&, t] {
      Random rng(77 + t);
      for (int i = 0; i < 400 && !failed.load(); i++) {
        uint64_t k = rng.Uniform(kKeys);
        if (t % 2 == 0) {
          std::string value;
          Status s = cluster_->Get(Key(k), &value);
          if (!s.ok() || value != oracle[Key(k)]) {
            failed.store(true);
          }
        } else {
          std::vector<std::pair<std::string, std::string>> out;
          Status s = cluster_->Scan(Key(k), 10, &out);
          if (!s.ok()) {
            failed.store(true);
            continue;
          }
          auto it = oracle.lower_bound(Key(k));
          for (const auto& [key, value] : out) {
            if (it == oracle.end() || it->first != key ||
                it->second != value) {
              failed.store(true);
              break;
            }
            ++it;
          }
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_FALSE(failed.load());
  // The cache respected its budget throughout (usage counts resident
  // entries only; pinned-but-evicted blocks are off the books).
  EXPECT_LE(cluster_->TotalStats().block_cache_bytes, (8u << 10) + 4096u);
}

TEST_F(BlockCacheClusterTest, CompactedFilesAreInvalidated) {
  StartCluster(FastOptions(/*block_cache_bytes=*/8 << 20));
  auto* engine = cluster_->ltc(0)->ranges()[0];
  const int kKeys = 300;
  std::map<std::string, std::string> oracle;

  // Several overwrite+flush rounds so L0 accumulates and compacts.
  for (int round = 0; round < 6; round++) {
    for (int i = 0; i < kKeys; i++) {
      std::string v = "r" + std::to_string(round) + "_" + std::to_string(i);
      ASSERT_TRUE(cluster_->Put(Key(i), v).ok());
      oracle[Key(i)] = v;
    }
    FlushAll();
    // Read everything: caches blocks of the current file set.
    for (const auto& [key, value] : oracle) {
      std::string got;
      ASSERT_TRUE(cluster_->Get(key, &got).ok());
      ASSERT_EQ(got, value) << key << " round " << round;
    }
  }
  ASSERT_GT(engine->stats().compactions, 0u);

  // Every file compacted away must have no cached reader or blocks left
  // (the reader's cache key is exactly the file's key prefix).
  Cache* cache = cluster_->ltc(0)->block_cache();
  ASSERT_NE(cache, nullptr);
  lsm::VersionRef v = engine->versions()->current();
  std::set<uint64_t> live;
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      live.insert(f->number);
    }
  }
  ASSERT_FALSE(live.empty());
  uint64_t max_number = *live.rbegin();
  int dead_cached = 0;
  for (uint64_t number = 1; number <= max_number; number++) {
    if (live.count(number)) {
      continue;
    }
    uint32_t range_id = engine->options().range_id;
    Cache::Handle* h =
        cache->Lookup(BlockCachePrefix(range_id, number), /*count=*/false);
    if (h != nullptr) {
      dead_cached++;
      cache->Release(h);
    }
  }
  EXPECT_EQ(dead_cached, 0) << "compacted-away files still cached";
}

}  // namespace
}  // namespace nova
