#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "rdma/fabric.h"
#include "rdma/rpc.h"
#include "sim/cpu_throttle.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"

namespace nova {
namespace {

TEST(BlockStoreTest, AppendReadDelete) {
  BlockStore store;
  uint64_t off0 = store.Append(1, "hello");
  uint64_t off1 = store.Append(1, "world");
  EXPECT_EQ(off0, 0u);
  EXPECT_EQ(off1, 5u);
  std::string out;
  ASSERT_TRUE(store.Read(1, 0, 10, &out).ok());
  EXPECT_EQ(out, "helloworld");
  ASSERT_TRUE(store.Read(1, 5, 5, &out).ok());
  EXPECT_EQ(out, "world");
  EXPECT_TRUE(store.Read(1, 6, 5, &out).IsInvalidArgument());
  EXPECT_TRUE(store.Read(2, 0, 1, &out).IsNotFound());
  EXPECT_EQ(store.FileSize(1), 10u);
  EXPECT_TRUE(store.Exists(1));
  EXPECT_EQ(store.TotalBytes(), 10u);
  ASSERT_TRUE(store.Delete(1).ok());
  EXPECT_FALSE(store.Exists(1));
  EXPECT_TRUE(store.Delete(1).IsNotFound());
}

TEST(BlockStoreTest, ListFiles) {
  BlockStore store;
  store.Append(3, "a");
  store.Append(1, "b");
  store.Append(7, "c");
  auto files = store.ListFiles();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], 1u);
  EXPECT_EQ(files[1], 3u);
  EXPECT_EQ(files[2], 7u);
}

TEST(SimulatedDeviceTest, CompletesRequests) {
  DeviceConfig cfg;
  cfg.time_scale = 0;  // no sleeping in unit tests
  SimulatedDevice dev("d0", cfg);
  std::atomic<int> completed{0};
  for (int i = 0; i < 100; i++) {
    dev.Submit(SimulatedDevice::IoKind::kWrite, 1024, i,
               [&] { completed.fetch_add(1); });
  }
  dev.BlockingIo(SimulatedDevice::IoKind::kRead, 4096, 0);
  EXPECT_EQ(completed.load(), 100);  // FIFO: all prior writes done
  EXPECT_EQ(dev.num_writes(), 100u);
  EXPECT_EQ(dev.num_reads(), 1u);
  EXPECT_EQ(dev.bytes_written(), 100u * 1024);
  EXPECT_EQ(dev.bytes_read(), 4096u);
}

TEST(SimulatedDeviceTest, ServiceTimeMatchesModel) {
  DeviceConfig cfg;
  cfg.bandwidth_bytes_per_sec = 10 * 1024 * 1024;
  cfg.seek_latency_us = 2000;
  cfg.sequential_optimization = false;
  SimulatedDevice dev("d0", cfg);
  auto start = std::chrono::steady_clock::now();
  // 10 writes of 100 KB: 10 * (2 ms + ~9.8 ms) ≈ 118 ms.
  for (int i = 0; i < 9; i++) {
    dev.Submit(SimulatedDevice::IoKind::kWrite, 100 * 1024, i, nullptr);
  }
  dev.BlockingIo(SimulatedDevice::IoKind::kWrite, 100 * 1024, 9);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_GT(elapsed_ms, 90);
  EXPECT_LT(elapsed_ms, 400);
  EXPECT_GT(dev.busy_us(), 100000u);
}

TEST(SimulatedDeviceTest, SequentialWritesSkipSeek) {
  DeviceConfig cfg;
  cfg.bandwidth_bytes_per_sec = 100 * 1024 * 1024;
  cfg.seek_latency_us = 5000;
  SimulatedDevice dev("d0", cfg);
  auto start = std::chrono::steady_clock::now();
  // Same stream id: only the first write seeks. 20 * 1KB ≈ 5 ms + ~0.2 ms.
  for (int i = 0; i < 19; i++) {
    dev.Submit(SimulatedDevice::IoKind::kWrite, 1024, 42, nullptr);
  }
  dev.BlockingIo(SimulatedDevice::IoKind::kWrite, 1024, 42);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(elapsed_ms, 60);  // far less than 20 seeks (100 ms)
}

TEST(SimulatedDeviceTest, QueueDepthVisible) {
  DeviceConfig cfg;
  cfg.bandwidth_bytes_per_sec = 1024 * 1024;
  cfg.seek_latency_us = 20000;  // slow: requests pile up
  cfg.sequential_optimization = false;
  SimulatedDevice dev("d0", cfg);
  for (int i = 0; i < 10; i++) {
    dev.Submit(SimulatedDevice::IoKind::kWrite, 10, i, nullptr);
  }
  EXPECT_GE(dev.QueueDepth(), 5);
  dev.BlockingIo(SimulatedDevice::IoKind::kWrite, 10, 99);
  EXPECT_EQ(dev.QueueDepth(), 0);
}

TEST(SimulatedDeviceTest, FailedDeviceServesInstantly) {
  DeviceConfig cfg;
  cfg.seek_latency_us = 50000;
  SimulatedDevice dev("d0", cfg);
  dev.Fail();
  auto start = std::chrono::steady_clock::now();
  dev.BlockingIo(SimulatedDevice::IoKind::kWrite, 1 << 20, 0);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  EXPECT_LT(elapsed_ms, 20);
  EXPECT_TRUE(dev.failed());
  dev.Repair();
  EXPECT_FALSE(dev.failed());
}

TEST(FabricTest, OneSidedReadWrite) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  char region[1024] = {0};
  ASSERT_TRUE(fabric.RegisterMemory(1, 7, region, sizeof(region)).ok());

  // Node 0 writes into node 1's region without node 1 doing anything.
  rdma::RemoteAddr addr{1, 7, 100};
  ASSERT_TRUE(fabric.Write(0, Slice("payload"), addr, false, 0).ok());
  EXPECT_EQ(memcmp(region + 100, "payload", 7), 0);

  char local[8] = {0};
  ASSERT_TRUE(fabric.Read(0, addr, local, 7).ok());
  EXPECT_EQ(memcmp(local, "payload", 7), 0);

  // Bounds are enforced.
  rdma::RemoteAddr bad{1, 7, 1020};
  EXPECT_TRUE(fabric.Write(0, Slice("too-long"), bad, false, 0)
                  .IsInvalidArgument());
  rdma::RemoteAddr unknown{1, 99, 0};
  EXPECT_TRUE(fabric.Read(0, unknown, local, 1).IsInvalidArgument());
}

TEST(FabricTest, WriteWithImmediateNotifies) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  char region[64];
  fabric.RegisterMemory(1, 1, region, sizeof(region));
  ASSERT_TRUE(
      fabric.Write(0, Slice("x"), rdma::RemoteAddr{1, 1, 0}, true, 1234)
          .ok());
  rdma::InboundMessage msg;
  ASSERT_TRUE(fabric.PollInbound(1, &msg));
  EXPECT_EQ(msg.kind, rdma::InboundMessage::Kind::kWriteImm);
  EXPECT_EQ(msg.imm, 1234u);
  EXPECT_EQ(msg.src, 0);
  EXPECT_FALSE(fabric.PollInbound(1, &msg));
}

TEST(FabricTest, SendDelivers) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  ASSERT_TRUE(fabric.Send(0, 1, "hello rpc").ok());
  rdma::InboundMessage msg;
  ASSERT_TRUE(fabric.PollInbound(1, &msg));
  EXPECT_EQ(msg.kind, rdma::InboundMessage::Kind::kSend);
  EXPECT_EQ(msg.payload, "hello rpc");
}

TEST(FabricTest, DeadNodeUnavailable) {
  rdma::RdmaFabric fabric;
  fabric.AddNode(0);
  fabric.AddNode(1);
  char region[64];
  fabric.RegisterMemory(1, 1, region, sizeof(region));
  fabric.RemoveNode(1);
  EXPECT_TRUE(fabric.Send(0, 1, "x").IsUnavailable());
  EXPECT_TRUE(fabric.Write(0, Slice("x"), rdma::RemoteAddr{1, 1, 0}, false, 0)
                  .IsUnavailable());
  char local[1];
  EXPECT_TRUE(fabric.Read(0, rdma::RemoteAddr{1, 1, 0}, local, 1)
                  .IsUnavailable());
  // Revival starts clean: old registrations are gone.
  fabric.AddNode(1);
  EXPECT_TRUE(fabric.Read(0, rdma::RemoteAddr{1, 1, 0}, local, 1)
                  .IsInvalidArgument());
}

class RpcTest : public testing::Test {
 protected:
  void SetUp() override {
    fabric_.AddNode(0);
    fabric_.AddNode(1);
    client_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, 0, 2, nullptr);
    server_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, 1, 2, nullptr);
  }

  rdma::RdmaFabric fabric_;
  std::unique_ptr<rdma::RpcEndpoint> client_;
  std::unique_ptr<rdma::RpcEndpoint> server_;
};

TEST_F(RpcTest, EchoCall) {
  server_->set_request_handler(
      [this](rdma::NodeId src, uint64_t req_id, const Slice& payload) {
        server_->Reply(src, req_id, "echo:" + payload.ToString());
      });
  client_->set_request_handler([](rdma::NodeId, uint64_t, const Slice&) {});
  server_->Start();
  client_->Start();

  std::string response;
  ASSERT_TRUE(client_->Call(1, "ping", &response).ok());
  EXPECT_EQ(response, "echo:ping");
}

TEST_F(RpcTest, ConcurrentCalls) {
  server_->set_request_handler(
      [this](rdma::NodeId src, uint64_t req_id, const Slice& payload) {
        server_->Reply(src, req_id, payload);
      });
  server_->Start();
  client_->Start();

  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; t++) {
    threads.emplace_back([this, t, &failures] {
      for (int i = 0; i < 50; i++) {
        std::string req = "t" + std::to_string(t) + "-" + std::to_string(i);
        std::string resp;
        if (!client_->Call(1, req, &resp).ok() || resp != req) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RpcTest, TokenCompletion) {
  // Server completes the token only after the imm write lands, emulating
  // the Figure-10 append flow.
  server_->set_write_imm_handler([this](rdma::NodeId src, uint32_t imm) {
    // imm carries the low bits of the client's token in this test.
    server_->CompleteToken(src, imm, "flushed");
  });
  server_->set_request_handler([](rdma::NodeId, uint64_t, const Slice&) {});
  server_->Start();
  client_->Start();

  char region[256];
  fabric_.RegisterMemory(1, 3, region, sizeof(region));

  rdma::Future completion;
  uint64_t token = client_->AllocToken(&completion);
  ASSERT_LT(token, 1u << 31);  // fits in imm for the test
  ASSERT_TRUE(fabric_
                  .Write(0, Slice("block-bytes"), rdma::RemoteAddr{1, 3, 0},
                         true, static_cast<uint32_t>(token))
                  .ok());
  std::string payload;
  ASSERT_TRUE(completion.Wait(&payload).ok());
  EXPECT_EQ(payload, "flushed");
  EXPECT_EQ(memcmp(region, "block-bytes", 11), 0);
}

TEST_F(RpcTest, CallToDeadNodeFailsFast) {
  client_->Start();
  fabric_.RemoveNode(1);
  std::string response;
  EXPECT_TRUE(client_->Call(1, "ping", &response).IsUnavailable());
}

TEST_F(RpcTest, CallTimesOut) {
  // Server alive but never replies.
  server_->set_request_handler([](rdma::NodeId, uint64_t, const Slice&) {});
  server_->Start();
  client_->Start();
  std::string response;
  auto start = std::chrono::steady_clock::now();
  Status s = client_->Call(1, "ping", &response, 200);
  // Timeouts are typed Unavailable so a wedged StoC is handled like a
  // dead one (ISSUE 9 satellite).
  EXPECT_TRUE(s.IsUnavailable());
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_GE(ms, 180);
}

TEST(CpuThrottleTest, LimitsRate) {
  // 100k us/sec with 10k burst: consuming 60k us must take >= ~0.4 s.
  sim::CpuThrottle throttle(100000, 10000);
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 60; i++) {
    throttle.Charge(1000);
  }
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(sec, 0.35);
  EXPECT_GT(throttle.Utilization(), 0.5);
}

TEST(CpuThrottleTest, TryChargeNonBlocking) {
  sim::CpuThrottle throttle(1000, 500);
  EXPECT_TRUE(throttle.TryCharge(400));
  EXPECT_FALSE(throttle.TryCharge(400));  // bucket nearly empty
}

TEST(CpuThrottleTest, UnlimitedNeverBlocks) {
  auto* t = sim::CpuThrottle::Unlimited();
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 1000; i++) {
    t->Charge(1e6);
  }
  double sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(sec, 0.5);
}

}  // namespace
}  // namespace nova
