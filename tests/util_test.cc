#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "util/coding.h"
#include "util/crc32c.h"
#include "util/histogram.h"
#include "util/random.h"
#include "util/slab_allocator.h"
#include "util/slice.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/zipfian.h"

namespace nova {
namespace {

TEST(SliceTest, Basics) {
  Slice s("hello");
  EXPECT_EQ(s.size(), 5u);
  EXPECT_EQ(s.ToString(), "hello");
  EXPECT_TRUE(s.starts_with("he"));
  EXPECT_FALSE(s.starts_with("eh"));
  s.remove_prefix(2);
  EXPECT_EQ(s.ToString(), "llo");
  EXPECT_LT(Slice("a").compare("b"), 0);
  EXPECT_GT(Slice("b").compare("a"), 0);
  EXPECT_EQ(Slice("ab").compare("ab"), 0);
  EXPECT_LT(Slice("a").compare("ab"), 0);
}

TEST(StatusTest, CodesAndMessages) {
  EXPECT_TRUE(Status::OK().ok());
  Status nf = Status::NotFound("missing");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: missing");
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string s;
  PutFixed32(&s, 0xdeadbeef);
  PutFixed64(&s, 0x123456789abcdef0ull);
  Slice in(s);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x123456789abcdef0ull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTrip) {
  std::string s;
  std::vector<uint64_t> values;
  for (uint64_t v = 0; v < 64; v++) {
    values.push_back(v);
    values.push_back(1ull << v);
    values.push_back((1ull << v) - 1);
  }
  for (uint64_t v : values) {
    PutVarint64(&s, v);
  }
  Slice in(s);
  for (uint64_t v : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, v);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32Truncated) {
  std::string s;
  PutVarint32(&s, 1u << 30);
  s.resize(s.size() - 1);  // chop the final byte
  Slice in(s);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string s;
  PutLengthPrefixedSlice(&s, "abc");
  PutLengthPrefixedSlice(&s, "");
  PutLengthPrefixedSlice(&s, std::string(300, 'x'));
  Slice in(s);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out.ToString(), "abc");
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &out));
  EXPECT_EQ(out.size(), 300u);
}

TEST(Crc32cTest, KnownProperties) {
  // Distinct inputs yield distinct CRCs; Extend composes.
  uint32_t a = crc32c::Value("hello", 5);
  uint32_t b = crc32c::Value("world", 5);
  EXPECT_NE(a, b);
  uint32_t ab = crc32c::Value("helloworld", 10);
  EXPECT_EQ(ab, crc32c::Extend(a, "world", 5));
  // Mask/Unmask are inverses and masking changes the value.
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(a)), a);
  EXPECT_NE(crc32c::Mask(a), a);
}

TEST(Crc32cTest, StandardVector) {
  // CRC32C of "123456789" is 0xE3069283 (iSCSI test vector).
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xE3069283u);
}

TEST(RandomTest, UniformBounds) {
  Random rng(42);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.Uniform(17), 17u);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.Next64() == b.Next64()) {
      same++;
    }
  }
  EXPECT_LT(same, 5);
}

TEST(ZipfianTest, DefaultConstantIsSkewed) {
  // With theta=0.99 the paper reports ~85% of requests to 10% of keys.
  const uint64_t n = 10000;
  ZipfianGenerator gen(n, 0.99);
  Random rng(7);
  uint64_t hits_in_top10pct = 0;
  const int draws = 200000;
  for (int i = 0; i < draws; i++) {
    if (gen.Next(&rng) < n / 10) {
      hits_in_top10pct++;
    }
  }
  double frac = static_cast<double>(hits_in_top10pct) / draws;
  EXPECT_GT(frac, 0.75);
  EXPECT_LT(frac, 0.95);
}

TEST(ZipfianTest, LowerThetaLessSkewed) {
  const uint64_t n = 10000;
  Random rng(7);
  auto frac_top10 = [&](double theta) {
    ZipfianGenerator gen(n, theta);
    uint64_t hits = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; i++) {
      if (gen.Next(&rng) < n / 10) {
        hits++;
      }
    }
    return static_cast<double>(hits) / draws;
  };
  double f27 = frac_top10(0.27);
  double f73 = frac_top10(0.73);
  double f99 = frac_top10(0.99);
  EXPECT_LT(f27, f73);
  EXPECT_LT(f73, f99);
}

TEST(ZipfianTest, UniformIsEven) {
  const uint64_t n = 1000;
  UniformGenerator gen(n);
  Random rng(3);
  std::vector<int> counts(n, 0);
  for (int i = 0; i < 100000; i++) {
    counts[gen.Next(&rng)]++;
  }
  int min = counts[0], max = counts[0];
  for (int c : counts) {
    min = std::min(min, c);
    max = std::max(max, c);
  }
  EXPECT_GT(min, 30);
  EXPECT_LT(max, 300);
}

TEST(ZipfianTest, ScrambledCoversRange) {
  ScrambledZipfianGenerator gen(1000, 0.99);
  Random rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; i++) {
    uint64_t k = gen.Next(&rng);
    ASSERT_LT(k, 1000u);
    seen.insert(k);
  }
  EXPECT_GT(seen.size(), 50u);
}

TEST(HistogramTest, PercentilesAndMerge) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Add(i);
  }
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_NEAR(h.Average(), 500.5, 1.0);
  EXPECT_NEAR(h.Percentile(50), 500, 80);
  EXPECT_NEAR(h.Percentile(99), 990, 160);
  EXPECT_EQ(h.Min(), 1u);
  EXPECT_EQ(h.Max(), 1000u);

  Histogram h2;
  h2.Add(5000);
  h2.Merge(h);
  EXPECT_EQ(h2.count(), 1001u);
  EXPECT_EQ(h2.Max(), 5000u);
  h2.Clear();
  EXPECT_EQ(h2.count(), 0u);
}

TEST(SlabAllocatorTest, AllocFreeReuse) {
  SlabAllocator::Options opt;
  opt.total_bytes = 4 << 20;
  opt.slab_page_bytes = 64 << 10;
  SlabAllocator slab(opt);
  char* a = slab.Allocate(100);
  ASSERT_NE(a, nullptr);
  EXPECT_GE(a, slab.region_base());
  EXPECT_LT(a, slab.region_base() + slab.region_size());
  slab.Free(a, 100);
  char* b = slab.Allocate(100);
  EXPECT_EQ(a, b);  // freed chunk is reused
  slab.Free(b, 100);
  EXPECT_EQ(slab.allocated_bytes(), 0u);
}

TEST(SlabAllocatorTest, SizeClassesGrow) {
  SlabAllocator::Options opt;
  SlabAllocator slab(opt);
  ASSERT_GT(slab.num_size_classes(), 3u);
  for (size_t i = 1; i < slab.num_size_classes(); i++) {
    EXPECT_GT(slab.class_chunk_size(i), slab.class_chunk_size(i - 1));
  }
}

TEST(SlabAllocatorTest, Exhaustion) {
  SlabAllocator::Options opt;
  opt.total_bytes = 128 << 10;
  opt.slab_page_bytes = 64 << 10;
  SlabAllocator slab(opt);
  std::vector<char*> ptrs;
  for (;;) {
    char* p = slab.Allocate(60 << 10);
    if (p == nullptr) {
      break;
    }
    ptrs.push_back(p);
  }
  EXPECT_EQ(ptrs.size(), 2u);  // two 64 KB pages fit
  EXPECT_EQ(slab.Allocate(60 << 10), nullptr);
  for (char* p : ptrs) {
    slab.Free(p, 60 << 10);
  }
  EXPECT_NE(slab.Allocate(60 << 10), nullptr);
}

TEST(SlabAllocatorTest, OversizeRejected) {
  SlabAllocator::Options opt;
  opt.slab_page_bytes = 1 << 20;
  SlabAllocator slab(opt);
  EXPECT_EQ(slab.Allocate(2 << 20), nullptr);
}

TEST(ThreadPoolTest, ExecutesAll) {
  ThreadPool pool("test", 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(pool.Submit([&count] { count.fetch_add(1); }));
  }
  pool.Drain();
  EXPECT_EQ(count.load(), 100);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPoolTest, ShutdownFinishesQueued) {
  ThreadPool pool("test", 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; i++) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 50);
}

}  // namespace
}  // namespace nova
