// Unit tests for the Storage Component server/client pair and the
// Logging Component, over the RDMA fabric emulation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "logc/log_client.h"
#include "logc/log_record.h"
#include "rdma/rpc.h"
#include "stoc/stoc_client.h"
#include "stoc/stoc_server.h"
#include "storage/block_store.h"
#include "storage/simulated_device.h"

namespace nova {
namespace {

class StocTest : public testing::Test {
 protected:
  static constexpr rdma::NodeId kClientNode = 0;
  static constexpr rdma::NodeId kStoc0 = 1000;
  static constexpr rdma::NodeId kStoc1 = 1001;

  void SetUp() override {
    DeviceConfig dcfg;
    dcfg.time_scale = 0;
    for (int i = 0; i < 2; i++) {
      devices_.push_back(
          std::make_unique<SimulatedDevice>("d" + std::to_string(i), dcfg));
      stores_.push_back(std::make_unique<BlockStore>());
      stoc::StocServerOptions opt;
      opt.slab_bytes = 16 << 20;
      opt.slab_page_bytes = 256 << 10;
      servers_.push_back(std::make_unique<stoc::StocServer>(
          &fabric_, kStoc0 + i, devices_[i].get(), stores_[i].get(), opt));
      servers_[i]->Start();
    }
    fabric_.AddNode(kClientNode);
    endpoint_ = std::make_unique<rdma::RpcEndpoint>(&fabric_, kClientNode, 2,
                                                    nullptr);
    endpoint_->set_request_handler(
        [](rdma::NodeId, uint64_t, const Slice&) {});
    endpoint_->Start();
    client_ = std::make_unique<stoc::StocClient>(endpoint_.get());
  }

  void TearDown() override {
    endpoint_->Stop();
    for (auto& s : servers_) {
      s->Stop();
    }
  }

  rdma::RdmaFabric fabric_;
  std::vector<std::unique_ptr<SimulatedDevice>> devices_;
  std::vector<std::unique_ptr<BlockStore>> stores_;
  std::vector<std::unique_ptr<stoc::StocServer>> servers_;
  std::unique_ptr<rdma::RpcEndpoint> endpoint_;
  std::unique_ptr<stoc::StocClient> client_;
};

TEST_F(StocTest, PersistentAppendAndRead) {
  uint64_t file_id = stoc::MakeFileId(1, 7, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle handle;
  ASSERT_TRUE(
      client_->AppendBlock(kStoc0, file_id, "block-contents", &handle).ok());
  EXPECT_EQ(handle.stoc_id, kStoc0);
  EXPECT_EQ(handle.offset, 0u);
  EXPECT_EQ(handle.size, 14u);

  std::string data;
  ASSERT_TRUE(client_->ReadBlock(kStoc0, file_id, 0, 14, &data).ok());
  EXPECT_EQ(data, "block-contents");
  // Whole-file read with size 0.
  ASSERT_TRUE(client_->ReadBlock(kStoc0, file_id, 0, 0, &data).ok());
  EXPECT_EQ(data, "block-contents");
  // The flush went through the simulated device.
  EXPECT_GE(devices_[0]->num_writes(), 1u);
}

TEST_F(StocTest, MultipleAppendsAccumulate) {
  uint64_t file_id = stoc::MakeFileId(1, 8, stoc::FileKind::kManifest, 0);
  stoc::StocBlockHandle h1, h2;
  ASSERT_TRUE(client_->AppendBlock(kStoc0, file_id, "aaa", &h1).ok());
  ASSERT_TRUE(client_->AppendBlock(kStoc0, file_id, "bbbb", &h2).ok());
  EXPECT_EQ(h1.offset, 0u);
  EXPECT_EQ(h2.offset, 3u);
  std::string data;
  ASSERT_TRUE(client_->ReadBlock(kStoc0, file_id, 0, 0, &data).ok());
  EXPECT_EQ(data, "aaabbbb");
}

TEST_F(StocTest, DeleteFile) {
  uint64_t file_id = stoc::MakeFileId(1, 9, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle handle;
  ASSERT_TRUE(client_->AppendBlock(kStoc0, file_id, "x", &handle).ok());
  ASSERT_TRUE(client_->DeleteFile(kStoc0, file_id, false).ok());
  std::string data;
  EXPECT_FALSE(client_->ReadBlock(kStoc0, file_id, 0, 0, &data).ok());
}

TEST_F(StocTest, StatsReportQueueAndBytes) {
  uint64_t file_id = stoc::MakeFileId(1, 10, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle handle;
  client_->AppendBlock(kStoc0, file_id, std::string(1000, 'x'), &handle);
  stoc::StocStats stats;
  ASSERT_TRUE(client_->GetStats(kStoc0, &stats).ok());
  EXPECT_EQ(stats.stored_bytes, 1000u);
  EXPECT_GE(stats.queue_depth, 0);
}

TEST_F(StocTest, InMemFileOneSidedWriteAndRead) {
  uint64_t file_id = stoc::MakeFileId(2, 1, stoc::FileKind::kLog, 0);
  stoc::InMemFileHandle handle;
  ASSERT_TRUE(client_->OpenInMemFile(kStoc0, file_id, 4096, &handle).ok());
  ASSERT_EQ(handle.regions.size(), 1u);
  ASSERT_TRUE(client_->WriteInMem(handle, 100, "log-record").ok());
  std::string region;
  ASSERT_TRUE(client_->ReadInMemRegion(handle, 0, &region).ok());
  EXPECT_EQ(region.substr(100, 10), "log-record");
  // Region is zero-initialized elsewhere.
  EXPECT_EQ(region[0], '\0');
  // Extending adds a second region of the same size.
  ASSERT_TRUE(client_->ExtendInMemFile(&handle).ok());
  ASSERT_EQ(handle.regions.size(), 2u);
  ASSERT_TRUE(client_->WriteInMem(handle, 4096 + 5, "second").ok());
  ASSERT_TRUE(client_->ReadInMemRegion(handle, 1, &region).ok());
  EXPECT_EQ(region.substr(5, 6), "second");
}

TEST_F(StocTest, WriteSpanningRegionRejected) {
  uint64_t file_id = stoc::MakeFileId(2, 2, stoc::FileKind::kLog, 0);
  stoc::InMemFileHandle handle;
  ASSERT_TRUE(client_->OpenInMemFile(kStoc0, file_id, 128, &handle).ok());
  EXPECT_TRUE(client_->WriteInMem(handle, 120, "0123456789")
                  .IsInvalidArgument());
}

TEST_F(StocTest, CopyFileToAnotherStoc) {
  uint64_t file_id = stoc::MakeFileId(3, 1, stoc::FileKind::kData, 0);
  stoc::StocBlockHandle handle;
  ASSERT_TRUE(
      client_->AppendBlock(kStoc0, file_id, "payload-to-copy", &handle).ok());
  ASSERT_TRUE(client_->CopyFileTo(kStoc0, file_id, kStoc1).ok());
  std::string data;
  ASSERT_TRUE(client_->ReadBlock(kStoc1, file_id, 0, 0, &data).ok());
  EXPECT_EQ(data, "payload-to-copy");
}

TEST_F(StocTest, QueryLogFilesFiltersByRange) {
  stoc::InMemFileHandle h1, h2, h3;
  client_->OpenInMemFile(kStoc0, stoc::MakeFileId(5, 1, stoc::FileKind::kLog, 0),
                         256, &h1);
  client_->OpenInMemFile(kStoc0, stoc::MakeFileId(5, 2, stoc::FileKind::kLog, 0),
                         256, &h2);
  client_->OpenInMemFile(kStoc0, stoc::MakeFileId(6, 1, stoc::FileKind::kLog, 0),
                         256, &h3);
  std::vector<stoc::InMemFileHandle> handles;
  ASSERT_TRUE(client_->QueryLogFiles(kStoc0, 5, &handles).ok());
  EXPECT_EQ(handles.size(), 2u);
  ASSERT_TRUE(client_->QueryLogFiles(kStoc0, 7, &handles).ok());
  EXPECT_TRUE(handles.empty());
}

TEST_F(StocTest, FileIdEncoding) {
  uint64_t id = stoc::MakeFileId(42, 123456, stoc::FileKind::kParity, 3);
  EXPECT_EQ(stoc::FileIdRange(id), 42u);
  EXPECT_EQ(stoc::FileIdNumber(id), 123456u);
  EXPECT_EQ(stoc::FileIdKind(id), stoc::FileKind::kParity);
  EXPECT_EQ(stoc::FileIdFragment(id), 3);
}

TEST(LogRecordTest, EncodeDecodeRoundTrip) {
  logc::LogRecord rec;
  rec.memtable_id = 77;
  rec.sequence = 123456789;
  rec.type = kTypeValue;
  rec.key = "the-key";
  rec.value = std::string(500, 'v');
  std::string buf;
  logc::EncodeLogRecord(&buf, rec);
  Slice in(buf);
  logc::LogRecord out;
  ASSERT_EQ(logc::DecodeLogRecord(&in, &out), logc::DecodeResult::kRecord);
  EXPECT_EQ(out.memtable_id, 77u);
  EXPECT_EQ(out.sequence, 123456789u);
  EXPECT_EQ(out.key, "the-key");
  EXPECT_EQ(out.value, rec.value);
  EXPECT_TRUE(in.empty());
}

TEST(LogRecordTest, EndAndPaddingMarkers) {
  std::string buf(8, '\0');  // zeroed region tail
  Slice in(buf);
  logc::LogRecord out;
  EXPECT_EQ(logc::DecodeLogRecord(&in, &out), logc::DecodeResult::kEnd);

  std::string pad;
  PutFixed32(&pad, logc::kPaddingMarker);
  Slice pin(pad);
  EXPECT_EQ(logc::DecodeLogRecord(&pin, &out), logc::DecodeResult::kPadding);
  EXPECT_TRUE(pin.empty());
}

TEST(LogRecordTest, TruncatedRecordIsEnd) {
  logc::LogRecord rec;
  rec.key = "k";
  rec.value = "v";
  std::string buf;
  logc::EncodeLogRecord(&buf, rec);
  buf.resize(buf.size() - 1);
  Slice in(buf);
  logc::LogRecord out;
  EXPECT_EQ(logc::DecodeLogRecord(&in, &out), logc::DecodeResult::kEnd);
}

class LogClientTest : public StocTest {};

TEST_F(LogClientTest, AppendAndRecover) {
  logc::LogOptions opt;
  opt.num_replicas = 2;
  opt.region_size = 8 << 10;
  logc::LogClient logc(client_.get(), /*range_id=*/9, opt);
  ASSERT_TRUE(logc.CreateLogFile(1, {kStoc0, kStoc1}).ok());
  for (int i = 0; i < 50; i++) {
    logc::LogRecord rec;
    rec.memtable_id = 1;
    rec.sequence = i + 1;
    rec.key = "key" + std::to_string(i);
    rec.value = "value" + std::to_string(i);
    ASSERT_TRUE(logc.Append(1, rec).ok());
  }
  std::map<uint64_t, std::vector<logc::LogRecord>> by_memtable;
  ASSERT_TRUE(logc::LogClient::FetchAllLogRecords(
                  client_.get(), {kStoc0, kStoc1}, 9, &by_memtable)
                  .ok());
  ASSERT_EQ(by_memtable.size(), 1u);
  EXPECT_EQ(by_memtable[1].size(), 50u);
  EXPECT_EQ(by_memtable[1][49].value, "value49");
}

TEST_F(LogClientTest, SurvivesOneReplicaLoss) {
  logc::LogOptions opt;
  opt.num_replicas = 2;
  opt.region_size = 8 << 10;
  logc::LogClient logc(client_.get(), 9, opt);
  ASSERT_TRUE(logc.CreateLogFile(1, {kStoc0, kStoc1}).ok());
  logc::LogRecord rec;
  rec.memtable_id = 1;
  rec.sequence = 5;
  rec.key = "k";
  rec.value = "v";
  ASSERT_TRUE(logc.Append(1, rec).ok());
  // Kill replica 0; recovery must use replica 1.
  servers_[0]->Stop();
  fabric_.RemoveNode(kStoc0);
  std::map<uint64_t, std::vector<logc::LogRecord>> by_memtable;
  ASSERT_TRUE(logc::LogClient::FetchAllLogRecords(
                  client_.get(), {kStoc0, kStoc1}, 9, &by_memtable)
                  .ok());
  ASSERT_EQ(by_memtable[1].size(), 1u);
  EXPECT_EQ(by_memtable[1][0].value, "v");
}

TEST_F(LogClientTest, MultiRegionLogFile) {
  logc::LogOptions opt;
  opt.num_replicas = 1;
  opt.region_size = 2048;  // force region extension
  logc::LogClient logc(client_.get(), 9, opt);
  ASSERT_TRUE(logc.CreateLogFile(2, {kStoc0}).ok());
  std::string big_value(700, 'x');
  for (int i = 0; i < 10; i++) {
    logc::LogRecord rec;
    rec.memtable_id = 2;
    rec.sequence = i + 1;
    rec.key = "k" + std::to_string(i);
    rec.value = big_value;
    ASSERT_TRUE(logc.Append(2, rec).ok()) << i;
  }
  std::map<uint64_t, std::vector<logc::LogRecord>> by_memtable;
  ASSERT_TRUE(logc::LogClient::FetchAllLogRecords(client_.get(), {kStoc0}, 9,
                                                  &by_memtable)
                  .ok());
  EXPECT_EQ(by_memtable[2].size(), 10u);
}

TEST_F(LogClientTest, DeleteLogFileReclaims) {
  logc::LogOptions opt;
  opt.num_replicas = 1;
  opt.region_size = 8 << 10;
  logc::LogClient logc(client_.get(), 9, opt);
  ASSERT_TRUE(logc.CreateLogFile(3, {kStoc0}).ok());
  EXPECT_EQ(servers_[0]->num_in_memory_files(), 1u);
  ASSERT_TRUE(logc.DeleteLogFile(3).ok());
  EXPECT_EQ(servers_[0]->num_in_memory_files(), 0u);
  EXPECT_FALSE(logc.HasLogFile(3));
}

TEST_F(LogClientTest, NicPathAppends) {
  logc::LogOptions opt;
  opt.num_replicas = 1;
  opt.region_size = 8 << 10;
  opt.use_nic_path = true;
  logc::LogClient logc(client_.get(), 9, opt);
  ASSERT_TRUE(logc.CreateLogFile(4, {kStoc0}).ok());
  logc::LogRecord rec;
  rec.memtable_id = 4;
  rec.sequence = 1;
  rec.key = "nic";
  rec.value = "path";
  ASSERT_TRUE(logc.Append(4, rec).ok());
  std::map<uint64_t, std::vector<logc::LogRecord>> by_memtable;
  ASSERT_TRUE(logc::LogClient::FetchAllLogRecords(client_.get(), {kStoc0}, 9,
                                                  &by_memtable)
                  .ok());
  EXPECT_EQ(by_memtable[4].size(), 1u);
}

}  // namespace
}  // namespace nova
