// End-to-end tests of the full in-process cluster: LTCs + StoCs over the
// RDMA fabric emulation, exercised against a std::map oracle, plus fault
// injection (StoC loss with replication/parity, LTC crash + recovery),
// range migration and elasticity.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "baseline/baseline.h"
#include "bench_core/workload.h"
#include "coord/cluster.h"
#include "client/nova_client.h"
#include "lsm/version.h"
#include "util/random.h"

namespace nova {
namespace {

using coord::Cluster;
using coord::ClusterOptions;

std::string Key(uint64_t i) { return bench::MakeKey(i); }

/// Small, fast cluster: no device timing, unlimited CPU, tiny memtables so
/// flush/compaction trigger quickly.
ClusterOptions FastOptions(int ltcs, int stocs) {
  ClusterOptions opt;
  opt.num_ltcs = ltcs;
  opt.num_stocs = stocs;
  opt.device.time_scale = 0;
  opt.range.memtable_size = 8 << 10;
  opt.range.max_memtables = 8;
  opt.range.max_sstable_size = 16 << 10;
  opt.range.drange.theta = 4;
  opt.range.drange.warmup_writes = 200;
  opt.range.drange.sample_rate = 1;
  opt.range.unique_key_threshold = 10;
  opt.range.lsm.l0_compaction_trigger_bytes = 32 << 10;
  opt.range.lsm.l0_stop_bytes = 256 << 10;
  opt.range.lsm.base_level_bytes = 128 << 10;
  opt.range.log.num_replicas = std::min(3, stocs);
  opt.range.log.region_size = 64 << 10;
  opt.range.manifest_replicas = std::min(3, stocs);
  opt.placement.rho = 1;
  opt.stoc.slab_bytes = 64 << 20;
  opt.stoc.slab_page_bytes = 256 << 10;
  return opt;
}

class IntegrationTest : public testing::Test {
 protected:
  void StartCluster(const ClusterOptions& opt) {
    cluster_ = std::make_unique<Cluster>(opt);
    cluster_->Start();
  }

  void TearDown() override {
    if (cluster_) {
      cluster_->Stop();
    }
  }

  std::unique_ptr<Cluster> cluster_;
};

TEST_F(IntegrationTest, PutGetRoundTrip) {
  StartCluster(FastOptions(1, 2));
  ASSERT_TRUE(cluster_->Put("hello", "world").ok());
  std::string value;
  ASSERT_TRUE(cluster_->Get("hello", &value).ok());
  EXPECT_EQ(value, "world");
  EXPECT_TRUE(cluster_->Get("missing", &value).IsNotFound());
}

TEST_F(IntegrationTest, OverwriteAndDelete) {
  StartCluster(FastOptions(1, 2));
  ASSERT_TRUE(cluster_->Put("k", "v1").ok());
  ASSERT_TRUE(cluster_->Put("k", "v2").ok());
  std::string value;
  ASSERT_TRUE(cluster_->Get("k", &value).ok());
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(cluster_->Delete("k").ok());
  EXPECT_TRUE(cluster_->Get("k", &value).IsNotFound());
}

TEST_F(IntegrationTest, OracleConsistencyThroughFlushesAndCompactions) {
  StartCluster(FastOptions(1, 3));
  std::map<std::string, std::string> oracle;
  Random rng(11);
  // Enough writes to force many flushes and L0->L1 compactions.
  for (int i = 0; i < 6000; i++) {
    std::string key = Key(rng.Uniform(800));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(/*flush_all=*/true);
  EXPECT_GT(engine->stats().flushes, 0u);
  EXPECT_GT(engine->stats().compactions, 0u);

  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value) << key;
  }
}

TEST_F(IntegrationTest, ScanMatchesOracle) {
  StartCluster(FastOptions(1, 2));
  std::map<std::string, std::string> oracle;
  Random rng(12);
  for (int i = 0; i < 3000; i++) {
    std::string key = Key(rng.Uniform(500));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  // Scans from random positions must equal the oracle's next-10.
  for (int trial = 0; trial < 50; trial++) {
    std::string start = Key(rng.Uniform(500));
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(cluster_->Scan(start, 10, &got).ok());
    auto it = oracle.lower_bound(start);
    for (const auto& [k, v] : got) {
      ASSERT_NE(it, oracle.end());
      EXPECT_EQ(k, it->first);
      EXPECT_EQ(v, it->second);
      ++it;
    }
    size_t expected =
        std::min<size_t>(10, std::distance(oracle.lower_bound(start),
                                           oracle.end()));
    EXPECT_EQ(got.size(), expected);
  }
}

TEST_F(IntegrationTest, ScanSeesDeletes) {
  StartCluster(FastOptions(1, 2));
  for (int i = 0; i < 20; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "v").ok());
  }
  ASSERT_TRUE(cluster_->Delete(Key(3)).ok());
  ASSERT_TRUE(cluster_->Delete(Key(4)).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(cluster_->Scan(Key(2), 4, &got).ok());
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].first, Key(2));
  EXPECT_EQ(got[1].first, Key(5));
  EXPECT_EQ(got[2].first, Key(6));
  EXPECT_EQ(got[3].first, Key(7));
}

// Regression: in the LevelDB*/RocksDB* ablation (no range index) Scan
// merges the whole table set in one pass, but used to step `pos = upper`
// and re-collect the same set forever whenever a non-final range held
// fewer than num_records keys past the start — bench_table07's SW50
// baseline row hung on exactly this.
TEST_F(IntegrationTest, BaselineScanTerminatesAtRangeBoundary) {
  ClusterOptions opt = FastOptions(1, 2);
  opt.range.enable_range_index = false;
  opt.range.enable_dranges = false;
  opt.range.enable_lookup_index = false;
  opt.split_points = bench::EvenSplitPoints(100, 4);  // 4 ranges, 25 keys each
  StartCluster(opt);
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i), "v" + std::to_string(i)).ok());
  }
  // Start two keys before the first range boundary and ask for ten: the
  // first range supplies two, the rest stream from the ranges after it.
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(cluster_->Scan(Key(23), 10, &got).ok());
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(got[i].first, Key(23 + i));
  }
}

TEST_F(IntegrationTest, MultiLtcRouting) {
  ClusterOptions opt = FastOptions(2, 2);
  opt.split_points = bench::EvenSplitPoints(1000, 4);  // 4 ranges, 2 LTCs
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 1000; i += 7) {
    std::string key = Key(i);
    ASSERT_TRUE(cluster_->Put(key, "v" + std::to_string(i)).ok());
    oracle[key] = "v" + std::to_string(i);
  }
  for (const auto& [key, value] : oracle) {
    std::string got;
    ASSERT_TRUE(cluster_->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
  // A scan crossing a range boundary (read committed across ranges).
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(cluster_->Scan(Key(245), 5, &got).ok());
  EXPECT_EQ(got.size(), 5u);
  EXPECT_EQ(got[0].first, Key(245));
  EXPECT_EQ(got[1].first, Key(252));
}

TEST_F(IntegrationTest, ClientRoutesAndRefreshesConfig) {
  ClusterOptions opt = FastOptions(2, 2);
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  StartCluster(opt);
  client::NovaClient client(cluster_.get());
  ASSERT_TRUE(client.Put(Key(10), "a").ok());
  ASSERT_TRUE(client.Put(Key(900), "b").ok());
  std::string value;
  ASSERT_TRUE(client.Get(Key(10), &value).ok());
  EXPECT_EQ(value, "a");
  // Migrate range 0 to LTC 1 and keep using the same client.
  ASSERT_TRUE(cluster_->MigrateRange(0, 1, 2).ok());
  ASSERT_TRUE(client.Get(Key(10), &value).ok());
  EXPECT_EQ(value, "a");
  ASSERT_TRUE(client.Put(Key(10), "a2").ok());
  ASSERT_TRUE(client.Get(Key(10), &value).ok());
  EXPECT_EQ(value, "a2");
}

TEST_F(IntegrationTest, MemtableMergeAvoidsFlushes) {
  ClusterOptions opt = FastOptions(1, 2);
  opt.range.unique_key_threshold = 50;
  StartCluster(opt);
  // Hammer a handful of keys: memtables fill with versions of few unique
  // keys and must merge instead of flushing (Section 4.2).
  for (int i = 0; i < 4000; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i % 5), "value-" + std::to_string(i)).ok());
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->WaitForQuiescence();
  auto stats = engine->stats();
  EXPECT_GT(stats.memtable_merges, 0u);
  // The latest values are still correct.
  std::string value;
  ASSERT_TRUE(cluster_->Get(Key(0), &value).ok());
  EXPECT_TRUE(value.rfind("value-", 0) == 0);
}

TEST_F(IntegrationTest, LtcCrashRecoveryFromLogsAndManifest) {
  ClusterOptions opt = FastOptions(2, 3);
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  Random rng(13);
  for (int i = 0; i < 2500; i++) {
    std::string key = Key(rng.Uniform(400));  // range 0 only
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  // Some data flushed, some still in memtables backed only by log records.
  cluster_->KillLtc(0);
  ASSERT_TRUE(cluster_->RecoverLtcRanges(0, 1, 4).ok());
  auto* recovered = cluster_->ltc(1)->GetRange(0);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value) << key
                          << " newest=" << recovered->DebugFindNewest(key)
                          << " index=" << recovered->DebugLookupState(key);
  }
}

/// Seeded repro loop for the recovery stale-read flake: the lookup-index
/// rebuild used to re-index only L0, so a key whose newest version had
/// already been compacted into L1+ before the crash got a consistent-but-
/// stale index entry (live operation leaves a dangling slot carrying the
/// newest seq instead). 20 seeds run the whole crash/recover/verify path;
/// each is its own ctest entry, so the loop parallelizes under ctest -j.
class RecoveryRepro : public testing::TestWithParam<int> {};

TEST_P(RecoveryRepro, CrashRecoveryMatchesOracle) {
  ClusterOptions opt = FastOptions(2, 3);
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  Cluster cluster(opt);
  cluster.Start();
  std::map<std::string, std::string> oracle;
  Random rng(GetParam());
  for (int i = 0; i < 2500; i++) {
    std::string key = Key(rng.Uniform(400));  // range 0 only
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster.Put(key, value).ok());
    oracle[key] = value;
  }
  cluster.KillLtc(0);
  ASSERT_TRUE(cluster.RecoverLtcRanges(0, 1, 4).ok());
  auto* recovered = cluster.ltc(1)->GetRange(0);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster.Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value) << key
                          << " newest=" << recovered->DebugFindNewest(key)
                          << " index=" << recovered->DebugLookupState(key);
  }
  cluster.Stop();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryRepro, testing::Range(200, 220));

TEST_F(IntegrationTest, RangeMigrationPreservesData) {
  ClusterOptions opt = FastOptions(2, 3);
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  Random rng(14);
  for (int i = 0; i < 2000; i++) {
    std::string key = Key(rng.Uniform(400));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  ASSERT_TRUE(cluster_->MigrateRange(0, 1, 4).ok());
  auto* migrated = cluster_->ltc(1)->GetRange(0);
  for (const auto& [key, value] : oracle) {
    std::string got;
    ASSERT_TRUE(cluster_->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value) << key
                          << " newest=" << migrated->DebugFindNewest(key)
                          << " index=" << migrated->DebugLookupState(key);
  }
  // The migrated range keeps serving writes on the new LTC.
  ASSERT_TRUE(cluster_->Put(Key(1), "after-migration").ok());
  std::string got;
  ASSERT_TRUE(cluster_->Get(Key(1), &got).ok());
  EXPECT_EQ(got, "after-migration");
}

TEST_F(IntegrationTest, StocFailureWithReplicationKeepsReads) {
  ClusterOptions opt = FastOptions(1, 3);
  opt.placement.num_data_replicas = 2;
  opt.placement.num_meta_replicas = 2;
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 1500; i++) {
    std::string key = Key(i % 300);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  cluster_->KillStoc(1);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, StocFailureWithParityReconstructs) {
  ClusterOptions opt = FastOptions(1, 4);
  opt.placement.rho = 3;
  opt.placement.use_parity = true;
  opt.placement.num_meta_replicas = 3;
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 1500; i++) {
    std::string key = Key(i % 300);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  // Evict cached readers so reads re-resolve through (possibly degraded)
  // fragment fetches.
  cluster_->KillStoc(2);
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, OffloadedCompactionProducesSameData) {
  // Run the identical workload against a local-compaction cluster and an
  // offloaded one, then assert both expose the exact same logical
  // key/value set (which also matches the oracle). Scans read through
  // every level, so differing compaction outputs would diverge here.
  auto run_workload =
      [](Cluster* cluster) -> std::map<std::string, std::string> {
    std::map<std::string, std::string> oracle;
    Random rng(15);
    for (int i = 0; i < 5000; i++) {
      std::string key = Key(rng.Uniform(600));
      std::string value = "v" + std::to_string(i);
      EXPECT_TRUE(cluster->Put(key, value).ok());
      oracle[key] = value;
    }
    auto* engine = cluster->ltc(0)->ranges()[0];
    engine->FlushAllMemtables();
    engine->WaitForQuiescence(true);
    return oracle;
  };
  auto scan_all = [](Cluster* cluster) {
    std::vector<std::pair<std::string, std::string>> out;
    EXPECT_TRUE(cluster->Scan("", 100000, &out).ok());
    return out;
  };

  ClusterOptions local_opt = FastOptions(1, 3);
  local_opt.range.offload_compaction = false;
  StartCluster(local_opt);
  std::map<std::string, std::string> oracle = run_workload(cluster_.get());
  auto local_contents = scan_all(cluster_.get());
  EXPECT_GT(cluster_->ltc(0)->ranges()[0]->stats().compactions, 0u);
  cluster_->Stop();

  ClusterOptions off_opt = FastOptions(1, 3);
  off_opt.range.offload_compaction = true;
  StartCluster(off_opt);
  std::map<std::string, std::string> oracle2 = run_workload(cluster_.get());
  ASSERT_EQ(oracle, oracle2);
  auto* engine = cluster_->ltc(0)->ranges()[0];
  auto stats = engine->stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_GT(stats.compaction_offloads, 0u);

  // Byte-identical logical contents: offloaded scan == local scan ==
  // oracle.
  auto offloaded_contents = scan_all(cluster_.get());
  ASSERT_EQ(offloaded_contents.size(), local_contents.size());
  ASSERT_EQ(offloaded_contents.size(), oracle.size());
  for (size_t i = 0; i < offloaded_contents.size(); i++) {
    EXPECT_EQ(offloaded_contents[i], local_contents[i]) << i;
  }
  for (const auto& [key, value] : oracle) {
    std::string got;
    ASSERT_TRUE(cluster_->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, DegradedCompactionReconstructsFromParity) {
  // Compaction inputs scattered with parity keep merging correctly after
  // a StoC dies: the input gather's async prefetch to the dead replica
  // fails, falls back to the synchronous fetch path, and reconstructs the
  // missing fragment from the surviving fragments + parity.
  ClusterOptions opt = FastOptions(1, 4);
  opt.placement.rho = 3;
  opt.placement.use_parity = true;
  opt.placement.num_meta_replicas = 3;
  opt.ltc.compaction_readahead_blocks = 4;  // exercise the pipeline
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 2500; i++) {
    std::string key = Key(i % 400);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  uint64_t compactions_before = engine->stats().compactions;

  // Kill a StoC holding fragments of the files written above, then keep
  // writing so the picker compacts those degraded files.
  cluster_->KillStoc(2);
  for (int i = 0; i < 2500; i++) {
    std::string key = Key(i % 400);
    std::string value = "w" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);
  EXPECT_GT(engine->stats().compactions, compactions_before);

  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, FailedOffloadRetriesLocally) {
  // Break every StoC's compaction handler: offloads come back empty (the
  // seed dropped such jobs on the floor); the scheduler must fall back to
  // local execution so compactions still complete and data stays intact.
  ClusterOptions opt = FastOptions(1, 3);
  opt.range.offload_compaction = true;
  StartCluster(opt);
  for (int i = 0; i < 3; i++) {
    cluster_->stoc(i)->set_compaction_handler(
        [](rdma::NodeId, const Slice&) -> std::string { return ""; });
  }
  std::map<std::string, std::string> oracle;
  Random rng(16);
  for (int i = 0; i < 4000; i++) {
    std::string key = Key(rng.Uniform(500));
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  auto stats = engine->stats();
  EXPECT_GT(stats.compactions, 0u);
  EXPECT_EQ(stats.compaction_offloads, 0u);
  EXPECT_GT(stats.compaction_offload_failures, 0u);
  EXPECT_EQ(stats.compaction_local_fallbacks,
            stats.compaction_offload_failures);
  for (const auto& [key, value] : oracle) {
    std::string got;
    ASSERT_TRUE(cluster_->Get(key, &got).ok()) << key;
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, AddStocAndGracefulRemove) {
  ClusterOptions opt = FastOptions(1, 2);
  StartCluster(opt);
  std::map<std::string, std::string> oracle;
  for (int i = 0; i < 1200; i++) {
    std::string key = Key(i % 250);
    std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(cluster_->Put(key, value).ok());
    oracle[key] = value;
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  int added = cluster_->AddStoc();
  EXPECT_EQ(added, 2);
  // New writes may now land on the new StoC.
  for (int i = 0; i < 1200; i++) {
    std::string key = Key(300 + i % 250);
    ASSERT_TRUE(cluster_->Put(key, "n" + std::to_string(i)).ok());
    oracle[key] = "n" + std::to_string(i);
  }
  engine->FlushAllMemtables();
  engine->WaitForQuiescence(true);

  // Gracefully remove StoC 0: its blocks must be copied elsewhere first.
  ASSERT_TRUE(cluster_->RemoveStocGraceful(0).ok());
  for (const auto& [key, value] : oracle) {
    std::string got;
    Status s = cluster_->Get(key, &got);
    ASSERT_TRUE(s.ok()) << key << " " << s.ToString();
    EXPECT_EQ(got, value);
  }
}

TEST_F(IntegrationTest, LeasesExpireAndRenew) {
  StartCluster(FastOptions(1, 1));
  auto* coordinator = cluster_->coordinator();
  EXPECT_TRUE(coordinator->IsLeaseValid(coord::Cluster::LtcNode(0)));
  EXPECT_TRUE(coordinator->Heartbeat(coord::Cluster::LtcNode(0)));
  coordinator->ExpireLease(coord::Cluster::LtcNode(0));
  EXPECT_FALSE(coordinator->IsLeaseValid(coord::Cluster::LtcNode(0)));
  EXPECT_FALSE(coordinator->Heartbeat(coord::Cluster::LtcNode(0)));
}

TEST_F(IntegrationTest, SharedNothingPlacementRestrictsStocs) {
  ClusterOptions opt = FastOptions(2, 2);
  opt.split_points = bench::EvenSplitPoints(1000, 2);
  StartCluster(opt);
  baseline::MakeSharedNothing(cluster_.get());
  for (int i = 0; i < 1500; i++) {
    ASSERT_TRUE(cluster_->Put(Key(i % 400), std::string(200, 'x')).ok());
  }
  auto* engine = cluster_->ltc(0)->ranges()[0];
  engine->FlushAllMemtables();
  engine->WaitForQuiescence();
  // Every SSTable block of range 0 lives on StoC 0.
  lsm::VersionRef v = engine->versions()->current();
  for (int level = 0; level < v->num_levels(); level++) {
    for (const auto& f : v->files(level)) {
      for (const auto& replicas : f->fragments) {
        for (const auto& loc : replicas) {
          EXPECT_EQ(loc.stoc_id, coord::Cluster::StocNode(0));
        }
      }
    }
  }
}

}  // namespace
}  // namespace nova
