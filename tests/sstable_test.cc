#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/bloom.h"
#include "sstable/format.h"
#include "sstable/merging_iterator.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "util/random.h"

namespace nova {
namespace {

std::string IKey(const std::string& ukey, SequenceNumber seq,
                 ValueType t = kTypeValue) {
  std::string s;
  AppendInternalKey(&s, ParsedInternalKey(ukey, seq, t));
  return s;
}

std::string KeyNum(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder;
  InternalKeyComparator icmp;
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i++) {
    entries.emplace_back(IKey(KeyNum(i), 1), "value" + std::to_string(i));
  }
  for (auto& [k, v] : entries) {
    builder.Add(k, v);
  }
  Block block(builder.Finish().ToString());
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));

  iter->SeekToFirst();
  for (auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seek to an existing key and to a gap.
  iter->Seek(IKey(KeyNum(42), 1));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "value42");
  iter->Seek(IKey(KeyNum(42) + "x", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "value43");

  // Backward iteration.
  iter->SeekToLast();
  for (int i = 99; i >= 0; i--) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value().ToString(), "value" + std::to_string(i));
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BloomTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(KeyNum(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  for (auto& k : keys) {
    EXPECT_TRUE(BloomFilter::KeyMayMatch(k, filter)) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(KeyNum(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  int false_positives = 0;
  for (int i = 1000; i < 11000; i++) {
    if (BloomFilter::KeyMayMatch(KeyNum(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key ≈ 1% FP; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST(FormatTest, MetadataRoundTrip) {
  SSTableMetadata meta;
  meta.file_number = 77;
  meta.data_size = 1000;
  meta.fragment_sizes = {400, 300, 300};
  meta.index_contents = "fake-index";
  meta.bloom = "fake-bloom";
  meta.smallest.DecodeFrom(IKey("aaa", 5));
  meta.largest.DecodeFrom(IKey("zzz", 9));
  meta.num_entries = 123;

  std::string encoded;
  meta.EncodeTo(&encoded);
  SSTableMetadata decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(decoded.file_number, 77u);
  EXPECT_EQ(decoded.data_size, 1000u);
  EXPECT_EQ(decoded.fragment_sizes, meta.fragment_sizes);
  EXPECT_EQ(decoded.index_contents, "fake-index");
  EXPECT_EQ(decoded.bloom, "fake-bloom");
  EXPECT_EQ(decoded.smallest.user_key().ToString(), "aaa");
  EXPECT_EQ(decoded.largest.user_key().ToString(), "zzz");
  EXPECT_EQ(decoded.num_entries, 123u);
}

TEST(FormatTest, MetadataChecksumDetectsCorruption) {
  SSTableMetadata meta;
  meta.file_number = 1;
  std::string encoded;
  meta.EncodeTo(&encoded);
  encoded[encoded.size() / 2] ^= 0x40;
  SSTableMetadata decoded;
  EXPECT_TRUE(decoded.DecodeFrom(encoded).IsCorruption());
}

TEST(FormatTest, LocateMapsOffsets) {
  SSTableMetadata meta;
  meta.fragment_sizes = {100, 200, 50};
  int frag;
  uint64_t local;
  ASSERT_TRUE(meta.Locate(0, &frag, &local));
  EXPECT_EQ(frag, 0);
  EXPECT_EQ(local, 0u);
  ASSERT_TRUE(meta.Locate(99, &frag, &local));
  EXPECT_EQ(frag, 0);
  ASSERT_TRUE(meta.Locate(100, &frag, &local));
  EXPECT_EQ(frag, 1);
  EXPECT_EQ(local, 0u);
  ASSERT_TRUE(meta.Locate(349, &frag, &local));
  EXPECT_EQ(frag, 2);
  EXPECT_EQ(local, 49u);
  EXPECT_FALSE(meta.Locate(350, &frag, &local));
}

/// Serves fragment reads from an in-memory copy of the SSTable data,
/// counting fetches (stands in for the StoC client in these tests).
class MemoryFetcher : public BlockFetcher {
 public:
  MemoryFetcher(const std::string& data,
                const std::vector<uint64_t>& fragment_sizes) {
    uint64_t off = 0;
    for (uint64_t size : fragment_sizes) {
      fragments_.push_back(data.substr(off, size));
      off += size;
    }
  }

  Status Fetch(int fragment, uint64_t offset, uint64_t size,
               std::string* out) override {
    fetches_++;
    if (fragment < 0 || fragment >= static_cast<int>(fragments_.size())) {
      return Status::InvalidArgument("bad fragment");
    }
    const std::string& f = fragments_[fragment];
    if (offset + size > f.size()) {
      return Status::InvalidArgument("bad range");
    }
    out->assign(f.data() + offset, size);
    return Status::OK();
  }

  int fetches() const { return fetches_; }

 private:
  std::vector<std::string> fragments_;
  int fetches_ = 0;
};

class SSTableRoundTrip
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SSTableRoundTrip, BuildScatterRead) {
  auto [num_keys, block_size, fragments] = GetParam();
  SSTableBuilderOptions opt;
  opt.block_size = block_size;
  SSTableBuilder builder(opt);
  std::map<std::string, std::string> model;
  for (int i = 0; i < num_keys; i++) {
    std::string k = KeyNum(i);
    std::string v = "value-" + std::to_string(i * 31 % 997);
    builder.Add(IKey(k, i + 1), v);
    model[k] = v;
  }
  auto result = builder.Finish(9, fragments);
  EXPECT_EQ(result.meta.num_entries, static_cast<uint64_t>(num_keys));
  EXPECT_GE(result.meta.num_fragments(), 1);
  EXPECT_LE(result.meta.num_fragments(), fragments);
  uint64_t total = 0;
  for (uint64_t s : result.meta.fragment_sizes) {
    total += s;
  }
  EXPECT_EQ(total, result.data.size());

  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  // Point lookups for every key.
  for (auto& [k, v] : model) {
    LookupKey lkey(k, kMaxSequenceNumber);
    std::string value;
    Status s;
    ASSERT_TRUE(reader.Get(lkey, &value, &s)) << k;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(value, v);
  }
  // Missing keys are not found (bloom may or may not short-circuit).
  LookupKey missing("nonexistent-key", kMaxSequenceNumber);
  std::string value;
  Status s;
  EXPECT_FALSE(reader.Get(missing, &value, &s));

  // Full scan equals the model.
  std::unique_ptr<Iterator> iter(reader.NewIterator());
  iter->SeekToFirst();
  auto it = model.begin();
  while (iter->Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), it->first);
    EXPECT_EQ(iter->value().ToString(), it->second);
    ++it;
    iter->Next();
  }
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SSTableRoundTrip,
    testing::Values(std::make_tuple(10, 4096, 1),
                    std::make_tuple(500, 512, 1),
                    std::make_tuple(500, 512, 3),
                    std::make_tuple(500, 512, 10),
                    std::make_tuple(2000, 4096, 4),
                    std::make_tuple(1, 4096, 3),
                    std::make_tuple(3000, 256, 64)));

TEST(SSTableReaderTest, DeletionVisible) {
  SSTableBuilder builder;
  builder.Add(IKey("a", 10, kTypeDeletion), "");
  builder.Add(IKey("b", 5, kTypeValue), "bv");
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  LookupKey lkey("a", kMaxSequenceNumber);
  std::string value;
  Status s;
  ASSERT_TRUE(reader.Get(lkey, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(SSTableReaderTest, SnapshotRespected) {
  SSTableBuilder builder;
  builder.Add(IKey("a", 30, kTypeValue), "v30");
  builder.Add(IKey("a", 10, kTypeValue), "v10");
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  std::string value;
  Status s;
  LookupKey at20("a", 20);
  ASSERT_TRUE(reader.Get(at20, &value, &s));
  EXPECT_EQ(value, "v10");
  LookupKey at40("a", 40);
  ASSERT_TRUE(reader.Get(at40, &value, &s));
  EXPECT_EQ(value, "v30");
  LookupKey at5("a", 5);
  EXPECT_FALSE(reader.Get(at5, &value, &s));
}

TEST(SSTableReaderTest, BloomSkipsFetches) {
  SSTableBuilder builder;
  for (int i = 0; i < 100; i++) {
    builder.Add(IKey(KeyNum(i), 1), "v");
  }
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);
  int misses_fetched = 0;
  for (int i = 1000; i < 1200; i++) {
    int before = fetcher.fetches();
    std::string value;
    Status s;
    reader.Get(LookupKey(KeyNum(i), kMaxSequenceNumber), &value, &s);
    misses_fetched += fetcher.fetches() - before;
  }
  // Nearly all misses must be answered by the bloom filter alone.
  EXPECT_LT(misses_fetched, 20);
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  InternalKeyComparator icmp;
  // Three SSTables with interleaved keys.
  std::vector<std::unique_ptr<MemoryFetcher>> fetchers;
  std::vector<std::unique_ptr<SSTableReader>> readers;
  std::map<std::string, std::string> model;
  for (int t = 0; t < 3; t++) {
    SSTableBuilder builder;
    for (int i = t; i < 300; i += 3) {
      std::string k = KeyNum(i);
      std::string v = "v" + std::to_string(i);
      builder.Add(IKey(k, 1), v);
      model[k] = v;
    }
    auto result = builder.Finish(t, 2);
    fetchers.push_back(std::make_unique<MemoryFetcher>(
        result.data, result.meta.fragment_sizes));
    readers.push_back(
        std::make_unique<SSTableReader>(result.meta, fetchers.back().get()));
  }
  std::vector<Iterator*> children;
  for (auto& r : readers) {
    children.push_back(r->NewIterator());
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(&icmp, children));
  merged->SeekToFirst();
  auto it = model.begin();
  while (merged->Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), it->first);
    ++it;
    merged->Next();
  }
  EXPECT_EQ(it, model.end());

  // Seek into the middle then iterate backward one step.
  merged->Seek(IKey(KeyNum(150), kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), KeyNum(150));
  merged->Prev();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), KeyNum(149));
}

}  // namespace
}  // namespace nova
