#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mem/dbformat.h"
#include "sstable/block.h"
#include "sstable/bloom.h"
#include "sstable/format.h"
#include "sstable/merging_iterator.h"
#include "sstable/sstable_builder.h"
#include "sstable/sstable_reader.h"
#include "util/coding.h"
#include "util/compressor.h"
#include "util/crc32c.h"
#include "util/random.h"

namespace nova {
namespace {

std::string IKey(const std::string& ukey, SequenceNumber seq,
                 ValueType t = kTypeValue) {
  std::string s;
  AppendInternalKey(&s, ParsedInternalKey(ukey, seq, t));
  return s;
}

std::string KeyNum(int i) {
  char buf[32];
  snprintf(buf, sizeof(buf), "key%08d", i);
  return buf;
}

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder;
  InternalKeyComparator icmp;
  std::vector<std::pair<std::string, std::string>> entries;
  for (int i = 0; i < 100; i++) {
    entries.emplace_back(IKey(KeyNum(i), 1), "value" + std::to_string(i));
  }
  for (auto& [k, v] : entries) {
    builder.Add(k, v);
  }
  Block block(builder.Finish().ToString());
  std::unique_ptr<Iterator> iter(block.NewIterator(&icmp));

  iter->SeekToFirst();
  for (auto& [k, v] : entries) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->key().ToString(), k);
    EXPECT_EQ(iter->value().ToString(), v);
    iter->Next();
  }
  EXPECT_FALSE(iter->Valid());

  // Seek to an existing key and to a gap.
  iter->Seek(IKey(KeyNum(42), 1));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "value42");
  iter->Seek(IKey(KeyNum(42) + "x", kMaxSequenceNumber));
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->value().ToString(), "value43");

  // Backward iteration.
  iter->SeekToLast();
  for (int i = 99; i >= 0; i--) {
    ASSERT_TRUE(iter->Valid());
    EXPECT_EQ(iter->value().ToString(), "value" + std::to_string(i));
    iter->Prev();
  }
  EXPECT_FALSE(iter->Valid());
}

TEST(BloomTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(KeyNum(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  for (auto& k : keys) {
    EXPECT_TRUE(BloomFilter::KeyMayMatch(k, filter)) << k;
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  std::vector<Slice> slices;
  for (int i = 0; i < 1000; i++) {
    keys.push_back(KeyNum(i));
  }
  for (auto& k : keys) {
    slices.emplace_back(k);
  }
  std::string filter = BloomFilter::Create(slices, 10);
  int false_positives = 0;
  for (int i = 1000; i < 11000; i++) {
    if (BloomFilter::KeyMayMatch(KeyNum(i), filter)) {
      false_positives++;
    }
  }
  // 10 bits/key ≈ 1% FP; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST(FormatTest, MetadataRoundTrip) {
  SSTableMetadata meta;
  meta.file_number = 77;
  meta.data_size = 1000;
  meta.fragment_sizes = {400, 300, 300};
  meta.index_contents = "fake-index";
  meta.bloom = "fake-bloom";
  meta.smallest.DecodeFrom(IKey("aaa", 5));
  meta.largest.DecodeFrom(IKey("zzz", 9));
  meta.num_entries = 123;

  std::string encoded;
  meta.EncodeTo(&encoded);
  SSTableMetadata decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(decoded.file_number, 77u);
  EXPECT_EQ(decoded.data_size, 1000u);
  EXPECT_EQ(decoded.fragment_sizes, meta.fragment_sizes);
  EXPECT_EQ(decoded.index_contents, "fake-index");
  EXPECT_EQ(decoded.bloom, "fake-bloom");
  EXPECT_EQ(decoded.smallest.user_key().ToString(), "aaa");
  EXPECT_EQ(decoded.largest.user_key().ToString(), "zzz");
  EXPECT_EQ(decoded.num_entries, 123u);
}

TEST(FormatTest, MetadataChecksumDetectsCorruption) {
  SSTableMetadata meta;
  meta.file_number = 1;
  std::string encoded;
  meta.EncodeTo(&encoded);
  encoded[encoded.size() / 2] ^= 0x40;
  SSTableMetadata decoded;
  EXPECT_TRUE(decoded.DecodeFrom(encoded).IsCorruption());
}

TEST(FormatTest, LocateMapsOffsets) {
  SSTableMetadata meta;
  meta.fragment_sizes = {100, 200, 50};
  int frag;
  uint64_t local;
  ASSERT_TRUE(meta.Locate(0, &frag, &local));
  EXPECT_EQ(frag, 0);
  EXPECT_EQ(local, 0u);
  ASSERT_TRUE(meta.Locate(99, &frag, &local));
  EXPECT_EQ(frag, 0);
  ASSERT_TRUE(meta.Locate(100, &frag, &local));
  EXPECT_EQ(frag, 1);
  EXPECT_EQ(local, 0u);
  ASSERT_TRUE(meta.Locate(349, &frag, &local));
  EXPECT_EQ(frag, 2);
  EXPECT_EQ(local, 49u);
  EXPECT_FALSE(meta.Locate(350, &frag, &local));
}

/// Serves fragment reads from an in-memory copy of the SSTable data,
/// counting fetches (stands in for the StoC client in these tests).
class MemoryFetcher : public BlockFetcher {
 public:
  MemoryFetcher(const std::string& data,
                const std::vector<uint64_t>& fragment_sizes) {
    uint64_t off = 0;
    for (uint64_t size : fragment_sizes) {
      fragments_.push_back(data.substr(off, size));
      off += size;
    }
  }

  Status Fetch(int fragment, uint64_t offset, uint64_t size,
               std::string* out) override {
    fetches_++;
    if (fragment < 0 || fragment >= static_cast<int>(fragments_.size())) {
      return Status::InvalidArgument("bad fragment");
    }
    const std::string& f = fragments_[fragment];
    if (offset + size > f.size()) {
      return Status::InvalidArgument("bad range");
    }
    out->assign(f.data() + offset, size);
    return Status::OK();
  }

  int fetches() const { return fetches_; }

 private:
  std::vector<std::string> fragments_;
  int fetches_ = 0;
};

class SSTableRoundTrip
    : public testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SSTableRoundTrip, BuildScatterRead) {
  auto [num_keys, block_size, fragments] = GetParam();
  SSTableBuilderOptions opt;
  opt.block_size = block_size;
  SSTableBuilder builder(opt);
  std::map<std::string, std::string> model;
  for (int i = 0; i < num_keys; i++) {
    std::string k = KeyNum(i);
    std::string v = "value-" + std::to_string(i * 31 % 997);
    builder.Add(IKey(k, i + 1), v);
    model[k] = v;
  }
  auto result = builder.Finish(9, fragments);
  EXPECT_EQ(result.meta.num_entries, static_cast<uint64_t>(num_keys));
  EXPECT_GE(result.meta.num_fragments(), 1);
  EXPECT_LE(result.meta.num_fragments(), fragments);
  uint64_t total = 0;
  for (uint64_t s : result.meta.fragment_sizes) {
    total += s;
  }
  EXPECT_EQ(total, result.data.size());

  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  // Point lookups for every key.
  for (auto& [k, v] : model) {
    LookupKey lkey(k, kMaxSequenceNumber);
    std::string value;
    Status s;
    ASSERT_TRUE(reader.Get(lkey, &value, &s)) << k;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(value, v);
  }
  // Missing keys are not found (bloom may or may not short-circuit).
  LookupKey missing("nonexistent-key", kMaxSequenceNumber);
  std::string value;
  Status s;
  EXPECT_FALSE(reader.Get(missing, &value, &s));

  // Full scan equals the model.
  std::unique_ptr<Iterator> iter(reader.NewIterator());
  iter->SeekToFirst();
  auto it = model.begin();
  while (iter->Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(ExtractUserKey(iter->key()).ToString(), it->first);
    EXPECT_EQ(iter->value().ToString(), it->second);
    ++it;
    iter->Next();
  }
  EXPECT_EQ(it, model.end());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SSTableRoundTrip,
    testing::Values(std::make_tuple(10, 4096, 1),
                    std::make_tuple(500, 512, 1),
                    std::make_tuple(500, 512, 3),
                    std::make_tuple(500, 512, 10),
                    std::make_tuple(2000, 4096, 4),
                    std::make_tuple(1, 4096, 3),
                    std::make_tuple(3000, 256, 64)));

TEST(SSTableReaderTest, DeletionVisible) {
  SSTableBuilder builder;
  builder.Add(IKey("a", 10, kTypeDeletion), "");
  builder.Add(IKey("b", 5, kTypeValue), "bv");
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  LookupKey lkey("a", kMaxSequenceNumber);
  std::string value;
  Status s;
  ASSERT_TRUE(reader.Get(lkey, &value, &s));
  EXPECT_TRUE(s.IsNotFound());
}

TEST(SSTableReaderTest, SnapshotRespected) {
  SSTableBuilder builder;
  builder.Add(IKey("a", 30, kTypeValue), "v30");
  builder.Add(IKey("a", 10, kTypeValue), "v10");
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);

  std::string value;
  Status s;
  LookupKey at20("a", 20);
  ASSERT_TRUE(reader.Get(at20, &value, &s));
  EXPECT_EQ(value, "v10");
  LookupKey at40("a", 40);
  ASSERT_TRUE(reader.Get(at40, &value, &s));
  EXPECT_EQ(value, "v30");
  LookupKey at5("a", 5);
  EXPECT_FALSE(reader.Get(at5, &value, &s));
}

TEST(SSTableReaderTest, BloomSkipsFetches) {
  SSTableBuilder builder;
  for (int i = 0; i < 100; i++) {
    builder.Add(IKey(KeyNum(i), 1), "v");
  }
  auto result = builder.Finish(1, 1);
  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);
  int misses_fetched = 0;
  for (int i = 1000; i < 1200; i++) {
    int before = fetcher.fetches();
    std::string value;
    Status s;
    reader.Get(LookupKey(KeyNum(i), kMaxSequenceNumber), &value, &s);
    misses_fetched += fetcher.fetches() - before;
  }
  // Nearly all misses must be answered by the bloom filter alone.
  EXPECT_LT(misses_fetched, 20);
}

// ---------------------------------------------------------------------------
// Compression + stored-block corruption safety.
// ---------------------------------------------------------------------------

TEST(CompressorTest, RoundTripCompressible) {
  const Compressor* c = GetCompressor(kNovaLzCompression);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->id(), kNovaLzCompression);

  // Repetitive payloads (the workloads' 'vvvv...' values) must shrink and
  // round-trip byte-identically.
  std::string input;
  for (int i = 0; i < 200; i++) {
    input += "key" + std::to_string(i % 17) + std::string(40, 'v');
  }
  std::string compressed;
  ASSERT_TRUE(c->Compress(input, &compressed));
  EXPECT_LT(compressed.size(), input.size());
  std::string output;
  ASSERT_TRUE(c->Uncompress(compressed, input.size(), &output).ok());
  EXPECT_EQ(output, input);
}

TEST(CompressorTest, RoundTripSweep) {
  const Compressor* c = GetCompressor(kNovaLzCompression);
  ASSERT_NE(c, nullptr);
  Random rng(301);
  for (int trial = 0; trial < 200; trial++) {
    // Mixed-entropy inputs: runs, small alphabets, varying lengths.
    std::string input;
    int len = rng.Uniform(3000);
    int alphabet = 1 + rng.Uniform(30);
    while (static_cast<int>(input.size()) < len) {
      char ch = static_cast<char>('a' + rng.Uniform(alphabet));
      input.append(1 + rng.Uniform(12), ch);
    }
    input.resize(len);
    std::string compressed;
    if (!c->Compress(input, &compressed)) {
      continue;  // incompressible: caller stores raw
    }
    std::string output;
    ASSERT_TRUE(c->Uncompress(compressed, input.size(), &output).ok())
        << "trial " << trial;
    ASSERT_EQ(output, input) << "trial " << trial;
  }
}

TEST(CompressorTest, IncompressibleFallsBackToRaw) {
  const Compressor* c = GetCompressor(kNovaLzCompression);
  ASSERT_NE(c, nullptr);
  // High-entropy bytes do not shrink: Compress refuses...
  Random rng(77);
  std::string input;
  for (int i = 0; i < 4096; i++) {
    input.push_back(static_cast<char>(rng.Next()));
  }
  std::string compressed;
  EXPECT_FALSE(c->Compress(input, &compressed));

  // ...and EncodeBlockTo stores the payload raw (codec 0), still decodable.
  std::string stored;
  EncodeBlockTo(input, c, &stored);
  ASSERT_EQ(stored.size(), input.size() + kBlockTrailerSize);
  EXPECT_EQ(static_cast<uint8_t>(stored[input.size()]), kNoCompression);
  std::string raw;
  ASSERT_TRUE(DecodeBlock(stored, &raw).ok());
  EXPECT_EQ(raw, input);
}

TEST(FormatTest, StoredBlockRoundTrip) {
  std::string input(2000, 'x');
  for (const Compressor* c :
       {GetCompressor(kNovaLzCompression), (const Compressor*)nullptr}) {
    std::string stored;
    EncodeBlockTo(input, c, &stored);
    std::string raw;
    ASSERT_TRUE(DecodeBlock(stored, &raw).ok());
    EXPECT_EQ(raw, input);
  }
}

TEST(FormatTest, BitFlipIsCorruptionNotCrash) {
  std::string input;
  for (int i = 0; i < 100; i++) {
    input += KeyNum(i) + std::string(20, 'v');
  }
  std::string stored;
  EncodeBlockTo(input, GetCompressor(kNovaLzCompression), &stored);
  ASSERT_LT(stored.size(), input.size());  // actually compressed

  // Flip every byte (payload, codec, length, crc): the crc covers all of
  // them, so each flip must surface as a non-ok Status — never reach the
  // decoder, never crash, never return wrong bytes.
  for (size_t i = 0; i < stored.size(); i++) {
    std::string corrupt = stored;
    corrupt[i] ^= 0x40;
    std::string raw;
    Status s = DecodeBlock(corrupt, &raw);
    EXPECT_FALSE(s.ok()) << "byte " << i;
  }
}

TEST(FormatTest, UnknownCodecByteIsCorruption) {
  std::string input(500, 'y');
  std::string stored;
  EncodeBlockTo(input, nullptr, &stored);
  // Forge a trailer naming a codec this build does not know, with a valid
  // crc, so the check past the checksum is exercised.
  size_t codec_pos = stored.size() - kBlockTrailerSize;
  stored[codec_pos] = static_cast<char>(0x7f);
  uint32_t crc = crc32c::Value(stored.data(), stored.size() - 4);
  stored.resize(stored.size() - 4);
  PutFixed32(&stored, crc32c::Mask(crc));
  std::string raw;
  Status s = DecodeBlock(stored, &raw);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("unknown block codec"), std::string::npos);
}

TEST(FormatTest, TruncatedStoredBlockIsCorruption) {
  std::string input(1000, 'z');
  std::string stored;
  EncodeBlockTo(input, GetCompressor(kNovaLzCompression), &stored);
  // Any prefix — including ones shorter than the trailer — must fail
  // cleanly.
  for (size_t len = 0; len < stored.size(); len++) {
    std::string raw;
    Status s = DecodeBlock(Slice(stored.data(), len), &raw);
    EXPECT_FALSE(s.ok()) << "length " << len;
  }
}

TEST(FormatTest, MetadataBlockFormatRoundTripAndLegacyDefault) {
  SSTableMetadata meta;
  meta.file_number = 3;
  meta.data_size = 10;
  meta.fragment_sizes = {10};
  meta.smallest.DecodeFrom(IKey("a", 1));
  meta.largest.DecodeFrom(IKey("b", 2));
  meta.num_entries = 2;
  meta.block_format = 1;
  std::string encoded;
  meta.EncodeTo(&encoded);
  SSTableMetadata decoded;
  ASSERT_TRUE(decoded.DecodeFrom(encoded).ok());
  EXPECT_EQ(decoded.block_format, 1u);

  // A metadata block written before the field existed (body ends right
  // after num_entries) decodes as format 0 — old files stay readable.
  std::string body;
  PutVarint64(&body, meta.file_number);
  PutVarint64(&body, meta.data_size);
  PutVarint32(&body, 1);
  PutVarint64(&body, 10);
  PutLengthPrefixedSlice(&body, meta.index_contents);
  PutLengthPrefixedSlice(&body, meta.bloom);
  PutLengthPrefixedSlice(&body, meta.smallest.Encode());
  PutLengthPrefixedSlice(&body, meta.largest.Encode());
  PutVarint64(&body, meta.num_entries);
  PutFixed32(&body, crc32c::Mask(crc32c::Value(body.data(), body.size())));
  SSTableMetadata legacy;
  ASSERT_TRUE(legacy.DecodeFrom(body).ok());
  EXPECT_EQ(legacy.block_format, 0u);
  EXPECT_EQ(legacy.num_entries, 2u);
}

TEST(SSTableReaderTest, CompressedTableReadsBack) {
  SSTableBuilderOptions opt;
  opt.block_size = 1024;
  opt.compressor = GetCompressor(kNovaLzCompression);
  SSTableBuilder builder(opt);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 500; i++) {
    std::string k = KeyNum(i);
    std::string v = std::string(64, 'v') + std::to_string(i);
    builder.Add(IKey(k, i + 1), v);
    model[k] = v;
  }
  auto result = builder.Finish(5, 3);
  EXPECT_EQ(result.meta.block_format, 1u);
  // The 'v'-runs compress well: the stored table is smaller than raw.
  EXPECT_LT(result.data.size(), result.raw_bytes);

  MemoryFetcher fetcher(result.data, result.meta.fragment_sizes);
  SSTableReader reader(result.meta, &fetcher);
  for (auto& [k, v] : model) {
    LookupKey lkey(k, kMaxSequenceNumber);
    std::string value;
    Status s;
    ASSERT_TRUE(reader.Get(lkey, &value, &s)) << k;
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(value, v);
  }
  std::unique_ptr<Iterator> iter(reader.NewIterator());
  size_t n = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    n++;
  }
  EXPECT_EQ(n, model.size());
}

TEST(SSTableReaderTest, CorruptFragmentSurfacesAsStatusNotCrash) {
  SSTableBuilderOptions opt;
  opt.block_size = 512;
  opt.compressor = GetCompressor(kNovaLzCompression);
  SSTableBuilder builder(opt);
  for (int i = 0; i < 200; i++) {
    builder.Add(IKey(KeyNum(i), i + 1), "value" + std::string(30, 'w'));
  }
  auto result = builder.Finish(6, 1);

  // Flip one byte at a time across the whole fragment. A get whose block
  // is intact may still succeed — but it must return the right bytes; a
  // get landing in the corrupted block must fail with a status (crc
  // verified before decompression), never crash, never return garbage.
  const std::string expected = "value" + std::string(30, 'w');
  int failed_gets = 0;
  for (size_t pos = 0; pos < result.data.size();
       pos += 1 + pos % 7) {  // stride keeps the sweep fast but dense
    std::string corrupt = result.data;
    corrupt[pos] ^= 0x01;
    MemoryFetcher fetcher(corrupt, result.meta.fragment_sizes);
    SSTableReader reader(result.meta, &fetcher);
    for (int i = 0; i < 200; i += 23) {
      LookupKey lkey(KeyNum(i), kMaxSequenceNumber);
      std::string value;
      Status s;
      bool found = reader.Get(lkey, &value, &s);
      if (found && s.ok()) {
        ASSERT_EQ(value, expected) << "byte " << pos << " key " << i;
      } else {
        failed_gets++;
      }
    }
  }
  // The sweep covered every block, so some gets must have hit the
  // corruption and been rejected.
  EXPECT_GT(failed_gets, 0);
}

TEST(SSTableReaderTest, LegacyTrailerlessTableReadsBack) {
  // Build a modern table, then rewrite it the way the pre-compression
  // builder laid it out: raw block contents, no trailers, block_format 0.
  SSTableBuilderOptions opt;
  opt.block_size = 512;
  opt.compressor = GetCompressor(kNovaLzCompression);
  SSTableBuilder builder(opt);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 300; i++) {
    std::string k = KeyNum(i);
    std::string v = "legacy" + std::to_string(i);
    builder.Add(IKey(k, i + 1), v);
    model[k] = v;
  }
  auto result = builder.Finish(8, 1);

  InternalKeyComparator icmp;
  Block index(result.meta.index_contents);
  std::unique_ptr<Iterator> it(index.NewIterator(&icmp));
  std::string legacy_data;
  BlockBuilder legacy_index;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    Slice v = it->value();
    BlockHandle handle;
    ASSERT_TRUE(handle.DecodeFrom(&v).ok());
    std::string raw;
    ASSERT_TRUE(
        DecodeBlock(Slice(result.data.data() + handle.offset, handle.size),
                    &raw)
            .ok());
    BlockHandle legacy_handle;
    legacy_handle.offset = legacy_data.size();
    legacy_handle.size = raw.size();
    legacy_data += raw;
    std::string encoded;
    legacy_handle.EncodeTo(&encoded);
    legacy_index.Add(it->key(), encoded);
  }
  SSTableMetadata legacy_meta = result.meta;
  legacy_meta.index_contents = legacy_index.Finish().ToString();
  legacy_meta.fragment_sizes = {legacy_data.size()};
  legacy_meta.data_size = legacy_data.size();
  legacy_meta.block_format = 0;

  MemoryFetcher fetcher(legacy_data, legacy_meta.fragment_sizes);
  SSTableReader reader(legacy_meta, &fetcher);
  for (auto& [k, v] : model) {
    LookupKey lkey(k, kMaxSequenceNumber);
    std::string value;
    Status s;
    ASSERT_TRUE(reader.Get(lkey, &value, &s)) << k;
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(value, v);
  }
}

TEST(MergingIteratorTest, MergesSortedStreams) {
  InternalKeyComparator icmp;
  // Three SSTables with interleaved keys.
  std::vector<std::unique_ptr<MemoryFetcher>> fetchers;
  std::vector<std::unique_ptr<SSTableReader>> readers;
  std::map<std::string, std::string> model;
  for (int t = 0; t < 3; t++) {
    SSTableBuilder builder;
    for (int i = t; i < 300; i += 3) {
      std::string k = KeyNum(i);
      std::string v = "v" + std::to_string(i);
      builder.Add(IKey(k, 1), v);
      model[k] = v;
    }
    auto result = builder.Finish(t, 2);
    fetchers.push_back(std::make_unique<MemoryFetcher>(
        result.data, result.meta.fragment_sizes));
    readers.push_back(
        std::make_unique<SSTableReader>(result.meta, fetchers.back().get()));
  }
  std::vector<Iterator*> children;
  for (auto& r : readers) {
    children.push_back(r->NewIterator());
  }
  std::unique_ptr<Iterator> merged(NewMergingIterator(&icmp, children));
  merged->SeekToFirst();
  auto it = model.begin();
  while (merged->Valid()) {
    ASSERT_NE(it, model.end());
    EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), it->first);
    ++it;
    merged->Next();
  }
  EXPECT_EQ(it, model.end());

  // Seek into the middle then iterate backward one step.
  merged->Seek(IKey(KeyNum(150), kMaxSequenceNumber));
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), KeyNum(150));
  merged->Prev();
  ASSERT_TRUE(merged->Valid());
  EXPECT_EQ(ExtractUserKey(merged->key()).ToString(), KeyNum(149));
}

}  // namespace
}  // namespace nova
